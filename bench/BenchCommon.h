// Shared helpers for the experiment harnesses (one binary per paper table /
// figure; see DESIGN.md's experiment index).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "pipeline/Suite.h"
#include "workload/LoopGenerator.h"

namespace rapt::bench {

/// The evaluation corpus: 211 synthetic Spec95-like loops (the substitution
/// for the paper's extracted Fortran loops; DESIGN.md).
[[nodiscard]] inline std::vector<Loop> corpus() {
  return generateCorpus(GeneratorParams{});
}

/// The six clustered machines of the paper's meta-model.
struct MachineCase {
  int clusters;
  CopyModel model;
};
inline constexpr MachineCase kMachineCases[] = {
    {2, CopyModel::Embedded}, {2, CopyModel::CopyUnit},
    {4, CopyModel::Embedded}, {4, CopyModel::CopyUnit},
    {8, CopyModel::Embedded}, {8, CopyModel::CopyUnit},
};

/// Suite options used by all table/figure benches. Simulation/validation is
/// on by default — every measured loop is also checked bit-exact; pass
/// simulate=false for quick sweeps.
[[nodiscard]] inline PipelineOptions benchOptions(bool simulate = true) {
  PipelineOptions opt;
  opt.simulate = simulate;
  return opt;
}

inline void printFailures(const SuiteResult& s, const char* label) {
  if (s.failures == 0) return;
  std::printf("!! %s: %d loops failed:\n", label, s.failures);
  for (const LoopResult& r : s.loops) {
    if (!r.ok) std::printf("   %s: %s\n", r.loopName.c_str(), r.error.c_str());
  }
}

}  // namespace rapt::bench
