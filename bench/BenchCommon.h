// Shared helpers for the experiment harnesses (one binary per paper table /
// figure; see DESIGN.md's experiment index).
//
// Besides the corpus and machine cases, this header carries the bench
// observability output: every harness builds a BenchReport and writes a
// BENCH_<name>.json next to its text table (schema "rapt-bench-v1",
// documented field by field in docs/metrics.md). EXPERIMENTS.md cites those
// files, and the per-stage timings give the repo its perf trajectory.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/Suite.h"
#include "support/Json.h"
#include "workload/LoopGenerator.h"

namespace rapt::bench {

/// The evaluation corpus: 211 synthetic Spec95-like loops (the substitution
/// for the paper's extracted Fortran loops; DESIGN.md).
[[nodiscard]] inline std::vector<Loop> corpus() {
  return generateCorpus(GeneratorParams{});
}

/// The six clustered machines of the paper's meta-model.
struct MachineCase {
  int clusters;
  CopyModel model;
};
inline constexpr MachineCase kMachineCases[] = {
    {2, CopyModel::Embedded}, {2, CopyModel::CopyUnit},
    {4, CopyModel::Embedded}, {4, CopyModel::CopyUnit},
    {8, CopyModel::Embedded}, {8, CopyModel::CopyUnit},
};

/// Suite options used by all table/figure benches. Simulation/validation is
/// on by default — every measured loop is also checked bit-exact; pass
/// simulate=false for quick sweeps. Benches run the suite on all hardware
/// threads (`threads = 0`); results are bit-identical to serial (Suite.h).
[[nodiscard]] inline PipelineOptions benchOptions(bool simulate = true) {
  PipelineOptions opt;
  opt.simulate = simulate;
  opt.threads = 0;
  return opt;
}

inline void printFailures(const SuiteResult& s, const char* label) {
  if (s.failures == 0) return;
  std::printf("!! %s: %d loops failed:\n", label, s.failures);
  for (const LoopResult& r : s.loops) {
    if (!r.ok)
      std::printf("   %s [%s]: %s\n", r.loopName.c_str(),
                  failureClassName(r.failureClass), r.error.c_str());
  }
}

// ---- BENCH_<name>.json emission (schema: docs/metrics.md) ----

/// Lowercase machine-readable copy-model token ("embedded" / "copy-unit").
[[nodiscard]] inline const char* copyModelToken(CopyModel m) {
  return m == CopyModel::Embedded ? "embedded" : "copy-unit";
}

[[nodiscard]] inline Json machineJson(const MachineDesc& m) {
  Json j = Json::object();
  j["name"] = m.name;
  j["clusters"] = m.numClusters;
  j["fusPerCluster"] = m.fusPerCluster;
  j["copyModel"] = copyModelToken(m.copyModel);
  j["intRegsPerBank"] = m.intRegsPerBank;
  j["fltRegsPerBank"] = m.fltRegsPerBank;
  j["intCopyLatency"] = m.lat.intCopy;
  j["fltCopyLatency"] = m.lat.fltCopy;
  return j;
}

[[nodiscard]] inline Json stagesJson(const PipelineTrace& t) {
  Json j = Json::object();
  j["analysisNs"] = t.analysisNs;
  j["idealScheduleNs"] = t.idealScheduleNs;
  j["rcgBuildNs"] = t.rcgBuildNs;
  j["partitionNs"] = t.partitionNs;
  j["copyInsertNs"] = t.copyInsertNs;
  j["rescheduleNs"] = t.rescheduleNs;
  j["regallocNs"] = t.regallocNs;
  j["emitNs"] = t.emitNs;
  j["verifyNs"] = t.verifyNs;
  j["simulateNs"] = t.simulateNs;
  j["totalNs"] = t.totalNs;
  return j;
}

[[nodiscard]] inline Json countersJson(const PipelineTrace& t) {
  Json j = Json::object();
  j["idealCycles"] = t.idealCycles;
  j["rescheduleAttempts"] = t.rescheduleAttempts;
  j["iiEscalations"] = t.iiEscalations;
  j["spillRetries"] = t.spillRetries;
  j["simulatedCycles"] = t.simulatedCycles;
  j["verifiedOps"] = t.verifiedOps;
  j["verifyViolations"] = t.verifyViolations;
  j["diagErrors"] = t.diagErrors;
  j["diagWarnings"] = t.diagWarnings;
  j["schedPlacements"] = t.schedPlacements;
  j["recoverySteps"] = t.recoverySteps;
  j["fallbackUsed"] = t.fallbackUsed;
  j["faultsInjected"] = t.faultsInjected;
  return j;
}

[[nodiscard]] inline Json aggregatesJson(const SuiteResult& s) {
  Json j = Json::object();
  j["loops"] = static_cast<std::int64_t>(s.loops.size());
  j["failures"] = s.failures;
  Json byClass = Json::object();
  for (int c = 0; c < kNumFailureClasses; ++c) {
    byClass[failureClassName(static_cast<FailureClass>(c))] =
        s.failuresByClass[static_cast<std::size_t>(c)];
  }
  j["failuresByClass"] = std::move(byClass);
  j["validated"] = s.validatedCount;
  j["meanIdealIpc"] = s.meanIdealIpc;
  j["meanClusteredIpc"] = s.meanClusteredIpc;
  j["arithMeanNormalized"] = s.arithMeanNormalized;
  j["harmMeanNormalized"] = s.harmMeanNormalized;
  j["totalBodyCopies"] = s.totalBodyCopies;
  Json percent = Json::array();
  Json count = Json::array();
  for (int b = 0; b < DegradationHistogram::kNumBuckets; ++b) {
    percent.push(s.histogram.percent(b));
    count.push(s.histogram.count(b));
  }
  j["histogramPercent"] = std::move(percent);
  j["histogramCount"] = std::move(count);
  return j;
}

/// Accumulates one JSON case per measured configuration and writes
/// BENCH_<name>.json on `write()` (into $RAPT_BENCH_DIR or the working
/// directory).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)), doc_(Json::object()) {
    doc_["schema"] = "rapt-bench-v1";
    doc_["bench"] = name_;
    doc_["generator"] = "bench_" + name_;
    doc_["cases"] = Json::array();
  }

  /// Top-level free-form metadata (e.g. corpusLoops, notes).
  Json& operator[](const std::string& key) { return doc_[key]; }

  /// The standard case: one runSuite call on one machine. Returns the case
  /// object so callers can attach extra "params" fields.
  Json& addSuiteCase(const std::string& label, const MachineDesc& machine,
                     const SuiteResult& s) {
    Json c = Json::object();
    c["label"] = label;
    c["machine"] = machineJson(machine);
    c["aggregates"] = aggregatesJson(s);
    c["stages"] = stagesJson(s.trace);
    c["counters"] = countersJson(s.trace);
    Json suite = Json::object();
    suite["wallNs"] = s.suiteWallNs;
    suite["threads"] = s.threadsUsed;
    c["suite"] = std::move(suite);
    return doc_["cases"].push(std::move(c));
  }

  /// A fully custom case (benches that do not run the loop suite).
  Json& addCase(Json c) { return doc_["cases"].push(std::move(c)); }

  /// Writes BENCH_<name>.json; prints the path so runs are self-describing.
  bool write() const {
    std::string dir;
    if (const char* env = std::getenv("RAPT_BENCH_DIR")) dir = std::string(env) + "/";
    const std::string path = dir + "BENCH_" + name_ + ".json";
    const bool ok = doc_.writeFile(path);
    if (ok) std::printf("\nwrote %s\n", path.c_str());
    return ok;
  }

 private:
  std::string name_;
  Json doc_;
};

}  // namespace rapt::bench
