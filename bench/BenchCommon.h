// Shared helpers for the experiment harnesses (one binary per paper table /
// figure; see DESIGN.md's experiment index).
//
// Besides the corpus and machine cases, this header carries the bench
// observability output: every harness builds a BenchReport and writes a
// BENCH_<name>.json next to its text table (schema "rapt-bench-v1",
// documented field by field in docs/metrics.md). EXPERIMENTS.md cites those
// files, and the per-stage timings give the repo its perf trajectory.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/Suite.h"
#include "support/ArgParser.h"
#include "support/Durability.h"
#include "support/Interrupt.h"
#include "support/Json.h"
#include "workload/LoopGenerator.h"

namespace rapt::bench {

/// $RAPT_BENCH_DIR with a trailing slash, or "" (the working directory) —
/// where BENCH_*.json reports and bench journals land.
[[nodiscard]] inline std::string benchDir() {
  if (const char* env = std::getenv("RAPT_BENCH_DIR")) return std::string(env) + "/";
  return {};
}

/// The evaluation corpus: 211 synthetic Spec95-like loops (the substitution
/// for the paper's extracted Fortran loops; DESIGN.md).
[[nodiscard]] inline std::vector<Loop> corpus() {
  return generateCorpus(GeneratorParams{});
}

/// The six clustered machines of the paper's meta-model.
struct MachineCase {
  int clusters;
  CopyModel model;
};
inline constexpr MachineCase kMachineCases[] = {
    {2, CopyModel::Embedded}, {2, CopyModel::CopyUnit},
    {4, CopyModel::Embedded}, {4, CopyModel::CopyUnit},
    {8, CopyModel::Embedded}, {8, CopyModel::CopyUnit},
};

/// Suite options used by all table/figure benches. Simulation/validation is
/// on by default — every measured loop is also checked bit-exact; pass
/// simulate=false for quick sweeps. Benches run the suite on all hardware
/// threads (`threads = 0`); results are bit-identical to serial (Suite.h).
[[nodiscard]] inline PipelineOptions benchOptions(bool simulate = true) {
  PipelineOptions opt;
  opt.simulate = simulate;
  opt.threads = 0;
  return opt;
}

inline void printFailures(const SuiteResult& s, const char* label) {
  if (s.failures == 0) return;
  std::printf("!! %s: %d loops failed:\n", label, s.failures);
  for (const LoopResult& r : s.loops) {
    if (!r.ok)
      std::printf("   %s [%s]: %s\n", r.loopName.c_str(),
                  failureClassName(r.failureClass), r.error.c_str());
  }
}

// ---- BENCH_<name>.json emission (schema: docs/metrics.md) ----

/// Lowercase machine-readable copy-model token ("embedded" / "copy-unit").
[[nodiscard]] inline const char* copyModelToken(CopyModel m) {
  return m == CopyModel::Embedded ? "embedded" : "copy-unit";
}

[[nodiscard]] inline Json machineJson(const MachineDesc& m) {
  Json j = Json::object();
  j["name"] = m.name;
  j["clusters"] = m.numClusters;
  j["fusPerCluster"] = m.fusPerCluster;
  j["copyModel"] = copyModelToken(m.copyModel);
  j["intRegsPerBank"] = m.intRegsPerBank;
  j["fltRegsPerBank"] = m.fltRegsPerBank;
  j["intCopyLatency"] = m.lat.intCopy;
  j["fltCopyLatency"] = m.lat.fltCopy;
  return j;
}

[[nodiscard]] inline Json stagesJson(const PipelineTrace& t) {
  Json j = Json::object();
  j["analysisNs"] = t.analysisNs;
  j["idealScheduleNs"] = t.idealScheduleNs;
  j["rcgBuildNs"] = t.rcgBuildNs;
  j["partitionNs"] = t.partitionNs;
  j["copyInsertNs"] = t.copyInsertNs;
  j["rescheduleNs"] = t.rescheduleNs;
  j["regallocNs"] = t.regallocNs;
  j["emitNs"] = t.emitNs;
  j["verifyNs"] = t.verifyNs;
  j["certifyNs"] = t.certifyNs;
  j["simulateNs"] = t.simulateNs;
  j["totalNs"] = t.totalNs;
  return j;
}

[[nodiscard]] inline Json countersJson(const PipelineTrace& t) {
  Json j = Json::object();
  j["idealCycles"] = t.idealCycles;
  j["rescheduleAttempts"] = t.rescheduleAttempts;
  j["iiEscalations"] = t.iiEscalations;
  j["spillRetries"] = t.spillRetries;
  j["simulatedCycles"] = t.simulatedCycles;
  j["verifiedOps"] = t.verifiedOps;
  j["verifyViolations"] = t.verifyViolations;
  j["certifiedValues"] = t.certifiedValues;
  j["certifyViolations"] = t.certifyViolations;
  j["diagErrors"] = t.diagErrors;
  j["diagWarnings"] = t.diagWarnings;
  j["schedPlacements"] = t.schedPlacements;
  j["recoverySteps"] = t.recoverySteps;
  j["fallbackUsed"] = t.fallbackUsed;
  j["faultsInjected"] = t.faultsInjected;
  return j;
}

[[nodiscard]] inline Json aggregatesJson(const SuiteResult& s) {
  Json j = Json::object();
  j["loops"] = static_cast<std::int64_t>(s.loops.size());
  j["failures"] = s.failures;
  Json byClass = Json::object();
  for (int c = 0; c < kNumFailureClasses; ++c) {
    byClass[failureClassName(static_cast<FailureClass>(c))] =
        s.failuresByClass[static_cast<std::size_t>(c)];
  }
  j["failuresByClass"] = std::move(byClass);
  j["validated"] = s.validatedCount;
  j["certified"] = s.certifiedCount;
  j["meanIdealIpc"] = s.meanIdealIpc;
  j["meanClusteredIpc"] = s.meanClusteredIpc;
  j["arithMeanNormalized"] = s.arithMeanNormalized;
  j["harmMeanNormalized"] = s.harmMeanNormalized;
  j["totalBodyCopies"] = s.totalBodyCopies;
  Json percent = Json::array();
  Json count = Json::array();
  for (int b = 0; b < DegradationHistogram::kNumBuckets; ++b) {
    percent.push(s.histogram.percent(b));
    count.push(s.histogram.count(b));
  }
  j["histogramPercent"] = std::move(percent);
  j["histogramCount"] = std::move(count);
  return j;
}

/// Accumulates one JSON case per measured configuration and writes
/// BENCH_<name>.json on `write()` (into $RAPT_BENCH_DIR or the working
/// directory).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)), doc_(Json::object()) {
    doc_["schema"] = "rapt-bench-v1";
    doc_["bench"] = name_;
    doc_["generator"] = "bench_" + name_;
    doc_["cases"] = Json::array();
  }

  /// Top-level free-form metadata (e.g. corpusLoops, notes).
  Json& operator[](const std::string& key) { return doc_[key]; }

  /// The standard case: one runSuite call on one machine. Returns the case
  /// object so callers can attach extra "params" fields.
  Json& addSuiteCase(const std::string& label, const MachineDesc& machine,
                     const SuiteResult& s) {
    Json c = Json::object();
    c["label"] = label;
    c["machine"] = machineJson(machine);
    c["aggregates"] = aggregatesJson(s);
    c["stages"] = stagesJson(s.trace);
    c["counters"] = countersJson(s.trace);
    Json suite = Json::object();
    suite["wallNs"] = s.suiteWallNs;
    suite["threads"] = s.threadsUsed;
    suite["isolation"] = suiteIsolationName(s.isolationUsed);
    if (s.resumedRows > 0) suite["resumedRows"] = s.resumedRows;
    if (s.quarantinedRows > 0) suite["quarantinedRows"] = s.quarantinedRows;
    c["suite"] = std::move(suite);
    return doc_["cases"].push(std::move(c));
  }

  /// A fully custom case (benches that do not run the loop suite).
  Json& addCase(Json c) { return doc_["cases"].push(std::move(c)); }

  /// Writes BENCH_<name>.json ATOMICALLY AND DURABLY (temp file fsync'd
  /// before rename, parent dir fsync'd after — support/Durability.h): an
  /// interrupt or crash mid-write can never leave a torn report where a
  /// previous good one stood, and a crash right after cannot roll the new
  /// report back to zero bytes. Prints the path so runs are self-describing.
  bool write() const {
    const std::string path = benchDir() + "BENCH_" + name_ + ".json";
    if (!writeFileDurable(path, doc_.dump())) return false;
    std::printf("\nwrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  Json doc_;
};

// ---- shared bench CLI + supervised suite runs (docs/robustness.md) ----

/// The common harness every table/figure/ablation bench runs through:
///
///   bench_x [--jobs N] [--isolation inprocess|subprocess] [--timeout-ms T]
///           [--memory-mb M] [--resume]
///
/// It installs the SIGINT/SIGTERM wind-down guard (support/Interrupt.h),
/// applies the suite-level knobs to every run() call, and journals each case
/// to $RAPT_BENCH_DIR/JOURNAL_<bench>_<label>.jsonl so an interrupted or
/// killed bench resumes with --resume to the bit-identical aggregate. A
/// case's journal is deleted once the case completes un-interrupted (the
/// report row is durable then); interrupted journals are kept for resume.
class BenchHarness {
 public:
  /// Parses the shared flags; exits 0 on --help and 2 on a bad command line.
  BenchHarness(std::string name, int argc, char** argv) : name_(std::move(name)) {
    std::string isolationToken = suiteIsolationName(isolation_);
    ArgParser args("bench_" + name_,
                   "paper experiment harness (docs/metrics.md; shared flags: "
                   "docs/robustness.md)");
    args.addInt("jobs", &jobs_, "suite worker threads (0 = all hardware threads)");
    args.addString("isolation", &isolationToken,
                   "suite isolation: inprocess | subprocess");
    args.addInt64("timeout-ms", &timeoutMs_,
                  "per-loop wall watchdog under subprocess isolation");
    args.addInt64("memory-mb", &memoryMb_,
                  "per-loop RLIMIT_AS in MiB under subprocess isolation "
                  "(0 = unlimited; keep 0 under ASan)");
    args.addFlag("resume", &resume_,
                 "replay completed rows from this bench's journals");
    if (!args.parse(argc, argv)) std::exit(args.helpRequested() ? 0 : 2);
    if (!parseSuiteIsolation(isolationToken, isolation_)) {
      std::fprintf(stderr, "bench_%s: bad --isolation '%s' (inprocess|subprocess)\n",
                   name_.c_str(), isolationToken.c_str());
      std::exit(2);
    }
  }

  /// runSuite under the shared knobs, journaled per (bench, label).
  [[nodiscard]] SuiteResult run(const std::string& label,
                                std::span<const Loop> loops,
                                const MachineDesc& machine, PipelineOptions opt) {
    opt.threads = jobs_;
    opt.isolation = isolation_;
    opt.workerTimeoutMs = timeoutMs_;
    opt.workerMemoryBytes = memoryMb_ * 1024 * 1024;
    opt.journalPath = journalPath(label);
    opt.resume = resume_;
    const SuiteResult s = runSuite(loops, machine, opt);
    if (!s.interrupted) std::remove(opt.journalPath.c_str());
    return s;
  }

  /// Writes the report — partial and marked when interrupted — and converts
  /// the outcome into the process exit status: 0 clean, 1 write failure,
  /// 128+signal after SIGINT/SIGTERM (the shell convention for killed-by).
  [[nodiscard]] int finish(BenchReport& report) const {
    if (interruptRequested()) {
      report["interrupted"] = true;
      std::printf("\ninterrupted: partial report; journals kept, rerun with "
                  "--resume to finish\n");
    }
    if (!report.write()) return 1;
    return interruptRequested() ? 128 + interruptSignal() : 0;
  }

  /// True once SIGINT/SIGTERM arrived: benches should stop starting cases.
  [[nodiscard]] bool interrupted() const { return interruptRequested(); }

  [[nodiscard]] std::string journalPath(const std::string& label) const {
    std::string safe;
    for (char c : label) {
      const auto u = static_cast<unsigned char>(c);
      safe += (std::isalnum(u) != 0 || c == '-' || c == '_' || c == '.') ? c : '_';
    }
    return benchDir() + "JOURNAL_" + name_ + "_" + safe + ".jsonl";
  }

 private:
  std::string name_;
  int jobs_ = 0;
  SuiteIsolation isolation_ = SuiteIsolation::InProcess;
  std::int64_t timeoutMs_ = 120'000;
  std::int64_t memoryMb_ = 0;
  bool resume_ = false;
  InterruptGuard guard_;
};

}  // namespace rapt::bench
