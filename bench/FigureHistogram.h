// Shared implementation of Figures 5-7: the degradation histogram for one
// cluster count, embedded and copy-unit series side by side. Each figure
// binary also emits BENCH_<benchName>.json (docs/metrics.md) carrying the
// full bucket distributions plus per-stage timings.
#pragma once

#include "BenchCommon.h"
#include "support/TextTable.h"

namespace rapt::bench {

inline int runFigureHistogram(int clusters, const char* figure,
                              const char* benchName, const char* paperNote,
                              int argc, char** argv) {
  BenchHarness bench(benchName, argc, argv);
  const std::vector<Loop> loops = corpus();
  const PipelineOptions opt = benchOptions();
  BenchReport report(benchName);
  report["corpusLoops"] = static_cast<std::int64_t>(loops.size());
  report["figure"] = figure;

  DegradationHistogram hist[2];
  for (int m = 0; m < 2 && !bench.interrupted(); ++m) {
    const CopyModel model = m == 0 ? CopyModel::Embedded : CopyModel::CopyUnit;
    const MachineDesc machine = MachineDesc::paper16(clusters, model);
    const SuiteResult s = bench.run(machine.name, loops, machine, opt);
    printFailures(s, machine.name.c_str());
    report.addSuiteCase(machine.name, machine, s);
    hist[m] = s.histogram;
  }

  std::printf("%s. Achieved II on %d Clusters with %d Units Each\n", figure,
              clusters, 16 / clusters);
  std::printf("(percent of %zu loops per degradation bucket)\n\n", loops.size());
  TextTable t;
  t.row().cell("Bucket").cell("Embedded %").cell("Copy Unit %");
  for (int b = 0; b < DegradationHistogram::kNumBuckets; ++b) {
    t.row()
        .cell(DegradationHistogram::bucketLabel(b))
        .cell(hist[0].percent(b), 1)
        .cell(hist[1].percent(b), 1);
  }
  std::printf("%s\n", t.render().c_str());

  // A quick text bar chart of the headline series.
  for (int m = 0; m < 2; ++m) {
    std::printf("%s:\n", m == 0 ? "Embedded" : "Copy Unit");
    for (int b = 0; b < DegradationHistogram::kNumBuckets; ++b) {
      const int bar = static_cast<int>(hist[m].percent(b) / 2.0 + 0.5);
      std::printf("  %-6s |%s %.1f%%\n",
                  DegradationHistogram::bucketLabel(b).c_str(),
                  std::string(static_cast<std::size_t>(bar), '#').c_str(),
                  hist[m].percent(b));
    }
  }
  std::printf("\npaper: %s\n", paperNote);
  return bench.finish(report);
}

}  // namespace rapt::bench
