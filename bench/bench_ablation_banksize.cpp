// Ablation A4: register-bank size vs spill-driven II growth. Software
// pipelining "places enormous requirements on an ILP architecture's register
// resources" (§2); when a bank cannot be coloured, the pipeline relaxes II
// and reschedules (fewer overlapped iterations => fewer simultaneously live
// values). This sweep shows where the paper's 32-register banks sit on that
// curve. Emits BENCH_ablation_banksize.json (docs/metrics.md).
#include "BenchCommon.h"
#include "support/TextTable.h"

using namespace rapt;
using namespace rapt::bench;

int main(int argc, char** argv) {
  BenchHarness bench("ablation_banksize", argc, argv);
  const std::vector<Loop> loops = corpus();
  BenchReport report("ablation_banksize");
  report["corpusLoops"] = static_cast<std::int64_t>(loops.size());

  TextTable t;
  t.row().cell("Regs/bank").cell("ArithMean").cell("loops w/ alloc retries")
      .cell("mean retries").cell("failures");
  for (int regs : {8, 12, 16, 24, 32, 64}) {
    if (bench.interrupted()) break;
    MachineDesc m = MachineDesc::paper16(4, CopyModel::Embedded);
    m.intRegsPerBank = regs;
    m.fltRegsPerBank = regs;
    PipelineOptions opt = benchOptions(/*simulate=*/false);
    opt.maxAllocRetries = 16;
    const SuiteResult s = bench.run(std::to_string(regs) + "-regs", loops, m, opt);
    int retried = 0;
    double retries = 0;
    for (const LoopResult& r : s.loops) {
      if (r.allocRetries > 0) ++retried;
      retries += r.allocRetries;
    }
    Json& c = report.addSuiteCase(std::to_string(regs) + "-regs", m, s);
    Json params = Json::object();
    params["regsPerBank"] = regs;
    params["loopsWithAllocRetries"] = retried;
    c["params"] = std::move(params);
    t.row()
        .cell(regs)
        .cell(s.arithMeanNormalized, 1)
        .cell(retried)
        .cell(retries / static_cast<double>(loops.size()), 2)
        .cell(s.failures);
  }
  std::printf(
      "Ablation A4: bank size vs allocation-driven II relaxation\n"
      "(4 clusters x 4 FUs, embedded copies)\n\n%s",
      t.render().c_str());
  return bench.finish(report);
}
