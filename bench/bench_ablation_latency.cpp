// Ablation A3: inter-cluster copy latency sensitivity. The paper uses 2
// cycles for integer and 3 for floating copies and notes that Nystrom &
// Eichenberger and Ozer et al. assume 1 cycle — one of the stated reasons
// their degradations differ (§6.3). This sweep quantifies that effect.
// Emits BENCH_ablation_latency.json (docs/metrics.md).
#include "BenchCommon.h"
#include "support/TextTable.h"

using namespace rapt;
using namespace rapt::bench;

int main(int argc, char** argv) {
  BenchHarness bench("ablation_latency", argc, argv);
  const std::vector<Loop> loops = corpus();
  BenchReport report("ablation_latency");
  report["corpusLoops"] = static_cast<std::int64_t>(loops.size());
  struct LatCase {
    int intCopy, fltCopy;
    const char* note;
  };
  constexpr LatCase kCases[] = {
      {1, 1, "Nystrom/Ozer assumption"},
      {2, 3, "paper Section 6.1"},
      {4, 6, "slow interconnect"},
  };

  TextTable t;
  t.row().cell("Copy latency (int/flt)").cell("Clusters").cell("Model")
      .cell("ArithMean").cell("0%-loops");
  for (const LatCase& lc : kCases) {
    for (int clusters : {2, 4, 8}) {
      for (CopyModel model : {CopyModel::Embedded, CopyModel::CopyUnit}) {
        if (bench.interrupted()) break;
        MachineDesc m = MachineDesc::paper16(clusters, model);
        m.lat.intCopy = lc.intCopy;
        m.lat.fltCopy = lc.fltCopy;
        const std::string label = std::to_string(lc.intCopy) + "/" +
                                  std::to_string(lc.fltCopy) + " " + m.name;
        const SuiteResult s =
            bench.run(label, loops, m, benchOptions(/*simulate=*/false));
        Json& c = report.addSuiteCase(label, m, s);
        Json params = Json::object();
        params["note"] = lc.note;
        c["params"] = std::move(params);
        t.row()
            .cell(std::to_string(lc.intCopy) + "/" + std::to_string(lc.fltCopy))
            .cell(clusters)
            .cell(copyModelName(model))
            .cell(s.arithMeanNormalized, 1)
            .cell(s.histogram.percent(0), 1);
      }
    }
  }
  std::printf("Ablation A3: copy latency sensitivity\n\n%s", t.render().c_str());
  std::printf("\n(1/1 latency approximates the related work's machine assumptions)\n");
  return bench.finish(report);
}
