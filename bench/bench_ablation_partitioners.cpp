// Ablation A2: the greedy RCG partitioner against the baselines (round-robin
// spreading, uniform random, and a BUG-style bottom-up operation-DAG
// partitioner after Ellis) on all three cluster counts, embedded model.
// Emits BENCH_ablation_partitioners.json (docs/metrics.md).
#include "BenchCommon.h"
#include "support/TextTable.h"

using namespace rapt;
using namespace rapt::bench;

int main(int argc, char** argv) {
  BenchHarness bench("ablation_partitioners", argc, argv);
  const std::vector<Loop> loops = corpus();
  BenchReport report("ablation_partitioners");
  report["corpusLoops"] = static_cast<std::int64_t>(loops.size());
  constexpr PartitionerKind kKinds[] = {
      PartitionerKind::GreedyRcg, PartitionerKind::BugLike,
      PartitionerKind::UasLike, PartitionerKind::RoundRobin,
      PartitionerKind::Random};

  TextTable t;
  t.row().cell("Partitioner").cell("Clusters").cell("ArithMean").cell("HarmMean")
      .cell("0%-loops").cell("copies/loop");
  for (PartitionerKind kind : kKinds) {
    for (int clusters : {2, 4, 8}) {
      if (bench.interrupted()) break;
      PipelineOptions opt = benchOptions(/*simulate=*/false);
      opt.partitioner = kind;
      // A pure ablation: a rung of the recovery ladder silently swapping in
      // GreedyRcg would contaminate the baseline columns.
      opt.partitionerFallback = false;
      const MachineDesc m = MachineDesc::paper16(clusters, CopyModel::Embedded);
      const std::string label = std::string(partitionerName(kind)) + "/" + m.name;
      const SuiteResult s = bench.run(label, loops, m, opt);
      Json& c = report.addSuiteCase(label, m, s);
      Json params = Json::object();
      params["partitioner"] = partitionerName(kind);
      c["params"] = std::move(params);
      t.row()
          .cell(partitionerName(kind))
          .cell(clusters)
          .cell(s.arithMeanNormalized, 1)
          .cell(s.harmMeanNormalized, 1)
          .cell(s.histogram.percent(0), 1)
          .cell(static_cast<double>(s.totalBodyCopies) /
                    static_cast<double>(loops.size()),
                1);
    }
  }
  std::printf("Ablation A2: partitioner comparison (embedded model)\n\n%s",
              t.render().c_str());
  return bench.finish(report);
}
