// Ablation A2: the greedy RCG partitioner against the baselines (round-robin
// spreading, uniform random, and a BUG-style bottom-up operation-DAG
// partitioner after Ellis) on all three cluster counts, embedded model.
#include "BenchCommon.h"
#include "support/TextTable.h"

using namespace rapt;
using namespace rapt::bench;

int main() {
  const std::vector<Loop> loops = corpus();
  constexpr PartitionerKind kKinds[] = {
      PartitionerKind::GreedyRcg, PartitionerKind::BugLike,
      PartitionerKind::UasLike, PartitionerKind::RoundRobin,
      PartitionerKind::Random};

  TextTable t;
  t.row().cell("Partitioner").cell("Clusters").cell("ArithMean").cell("HarmMean")
      .cell("0%-loops").cell("copies/loop");
  for (PartitionerKind kind : kKinds) {
    for (int clusters : {2, 4, 8}) {
      PipelineOptions opt = benchOptions(/*simulate=*/false);
      opt.partitioner = kind;
      const SuiteResult s =
          runSuite(loops, MachineDesc::paper16(clusters, CopyModel::Embedded), opt);
      t.row()
          .cell(partitionerName(kind))
          .cell(clusters)
          .cell(s.arithMeanNormalized, 1)
          .cell(s.harmMeanNormalized, 1)
          .cell(s.histogram.percent(0), 1)
          .cell(static_cast<double>(s.totalBodyCopies) /
                    static_cast<double>(loops.size()),
                1);
    }
  }
  std::printf("Ablation A2: partitioner comparison (embedded model)\n\n%s",
              t.render().c_str());
  return 0;
}
