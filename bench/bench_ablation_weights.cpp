// Ablation A1: sensitivity of the result to the reconstructed RCG weight
// constants (the paper's exact formulas are garbled in the scan; DESIGN.md
// documents our reconstruction). Sweeps each constant around its default on
// the 4-cluster embedded machine and reports the corpus arithmetic mean
// normalized kernel size. A flat response means the conclusions do not hang
// on the reconstruction. Emits BENCH_ablation_weights.json (docs/metrics.md).
#include "BenchCommon.h"
#include "support/TextTable.h"

using namespace rapt;
using namespace rapt::bench;

namespace {

double meanFor(BenchHarness& bench, const std::vector<Loop>& loops,
               const RcgWeights& w, BenchReport& report,
               const std::string& constant, double value) {
  PipelineOptions opt = benchOptions(/*simulate=*/false);
  opt.weights = w;
  const MachineDesc m = MachineDesc::paper16(4, CopyModel::Embedded);
  const std::string label = constant + "=" + formatFixed(value, 2);
  const SuiteResult s = bench.run(label, loops, m, opt);
  Json& c = report.addSuiteCase(label, m, s);
  Json params = Json::object();
  params["constant"] = constant;
  params["value"] = value;
  c["params"] = std::move(params);
  return s.arithMeanNormalized;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("ablation_weights", argc, argv);
  const std::vector<Loop> loops = corpus();
  BenchReport report("ablation_weights");
  report["corpusLoops"] = static_cast<std::int64_t>(loops.size());
  TextTable t;
  t.row().cell("Constant").cell("Value").cell("ArithMean(4cl,emb)");

  const RcgWeights base;
  t.row().cell("(defaults)").cell("-").cell(
      meanFor(bench, loops, base, report, "defaults", 0.0), 1);

  for (double v : {1.0, 2.0, 4.0, 8.0}) {
    RcgWeights w = base;
    w.critBonus = v;
    t.row().cell("critBonus").cell(formatFixed(v, 1)).cell(
        meanFor(bench, loops, w, report, "critBonus", v), 1);
  }
  for (double v : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    RcgWeights w = base;
    w.sep = v;
    t.row().cell("sep").cell(formatFixed(v, 2)).cell(
        meanFor(bench, loops, w, report, "sep", v), 1);
  }
  for (double v : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    RcgWeights w = base;
    w.balance = v;
    t.row().cell("balance").cell(formatFixed(v, 1)).cell(
        meanFor(bench, loops, w, report, "balance", v), 1);
  }
  for (double v : {1.0, 2.0, 10.0}) {
    RcgWeights w = base;
    w.depthBase = v;
    t.row().cell("depthBase").cell(formatFixed(v, 0)).cell(
        meanFor(bench, loops, w, report, "depthBase", v), 1);
  }

  std::printf("Ablation A1: RCG weight constants (lower mean = better)\n\n%s",
              t.render().c_str());
  std::printf(
      "\nNote: balance=0 shows the balance term's contribution; sep=0 disables\n"
      "the same-instruction separation rule entirely.\n");
  return bench.finish(report);
}
