// Extension E5: off-line stochastic tuning of the RCG weights (paper §7:
// "we will investigate fine-tuning our greedy heuristic by using off-line
// stochastic optimization techniques", citing their earlier GA work [5]).
//
// A seeded random search over the weight constants, scored on a training
// slice of the corpus (4-cluster embedded arithmetic mean) and confirmed on
// a held-out slice — the minimal honest version of the proposed study.
// Emits BENCH_ext_autotune.json (docs/metrics.md).
#include "BenchCommon.h"
#include "support/Rng.h"
#include "support/TextTable.h"

using namespace rapt;
using namespace rapt::bench;

namespace {

double score(BenchHarness& bench, const std::string& label,
             const std::vector<Loop>& loops, const RcgWeights& w) {
  PipelineOptions opt = benchOptions(/*simulate=*/false);
  opt.weights = w;
  const SuiteResult s =
      bench.run(label, loops, MachineDesc::paper16(4, CopyModel::Embedded), opt);
  return s.arithMeanNormalized;
}

Json weightsJson(const RcgWeights& w) {
  Json j = Json::object();
  j["critBonus"] = w.critBonus;
  j["base"] = w.base;
  j["depthBase"] = w.depthBase;
  j["sep"] = w.sep;
  j["balance"] = w.balance;
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("ext_autotune", argc, argv);
  // Train on even corpus indices, hold out the odd ones.
  GeneratorParams params;
  std::vector<Loop> train, holdout;
  for (int i = 0; i < params.count; ++i) {
    (i % 2 == 0 ? train : holdout).push_back(generateLoop(params, i));
  }

  const RcgWeights defaults;
  const double defaultTrain = score(bench, "defaults-train", train, defaults);
  const double defaultHoldout = score(bench, "defaults-holdout", holdout, defaults);

  SplitMix64 rng(0x7e57ed);
  RcgWeights best = defaults;
  double bestTrain = defaultTrain;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials && !bench.interrupted(); ++t) {
    RcgWeights w;
    w.critBonus = 0.5 + rng.uniform01() * 7.5;
    w.base = 0.25 + rng.uniform01() * 2.0;
    w.depthBase = 1.0 + rng.uniform01() * 9.0;
    w.sep = rng.uniform01() * 1.5;
    w.balance = rng.uniform01() * 3.0;
    const double s = score(bench, "trial-" + std::to_string(t), train, w);
    if (s < bestTrain) {
      bestTrain = s;
      best = w;
    }
  }
  const double tunedHoldout = score(bench, "tuned-holdout", holdout, best);

  BenchReport report("ext_autotune");
  report["trials"] = kTrials;
  report["trainLoops"] = static_cast<std::int64_t>(train.size());
  report["holdoutLoops"] = static_cast<std::int64_t>(holdout.size());
  for (int which = 0; which < 2; ++which) {
    Json c = Json::object();
    c["label"] = which == 0 ? "defaults" : "tuned";
    c["params"] = weightsJson(which == 0 ? defaults : best);
    Json agg = Json::object();
    agg["trainArithMeanNormalized"] = which == 0 ? defaultTrain : bestTrain;
    agg["holdoutArithMeanNormalized"] = which == 0 ? defaultHoldout : tunedHoldout;
    c["aggregates"] = std::move(agg);
    report.addCase(std::move(c));
  }

  TextTable t;
  t.row().cell("Config").cell("critBonus").cell("base").cell("depthBase").cell("sep")
      .cell("balance").cell("train").cell("holdout");
  t.row().cell("defaults").cell(defaults.critBonus, 2).cell(defaults.base, 2)
      .cell(defaults.depthBase, 1).cell(defaults.sep, 2).cell(defaults.balance, 2)
      .cell(defaultTrain, 1).cell(defaultHoldout, 1);
  t.row().cell("tuned").cell(best.critBonus, 2).cell(best.base, 2)
      .cell(best.depthBase, 1).cell(best.sep, 2).cell(best.balance, 2)
      .cell(bestTrain, 1).cell(tunedHoldout, 1);
  std::printf(
      "Extension E5: stochastic weight tuning (%d random trials, 4cl embedded)\n\n%s"
      "\nA small but transferable win is the expected outcome: the ablation\n"
      "(A1) already shows the objective is fairly flat around the defaults.\n",
      kTrials, t.render().c_str());
  return bench.finish(report);
}
