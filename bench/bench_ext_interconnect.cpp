// Extension E4: three interconnect strategies head to head (paper §3).
//
// The paper evaluates embedded copies and copy units, and argues that
// Janssen & Corporaal's TTA-style network (every FU reaches every bank,
// no copy ops) wins on schedule quality but loses on processor cycle time
// [15]. This bench quantifies the schedule-quality side: the same greedy RCG
// partition scheduled under all three models, network latency 1 and 2.
// Emits BENCH_ext_interconnect.json (docs/metrics.md).
#include "BenchCommon.h"

#include "ddg/Ddg.h"
#include "partition/GreedyPartitioner.h"
#include "partition/RemoteAccess.h"
#include "partition/Rcg.h"
#include "support/TextTable.h"

using namespace rapt;
using namespace rapt::bench;

int main(int argc, char** argv) {
  BenchHarness bench("ext_interconnect", argc, argv);
  const std::vector<Loop> loops = corpus();
  BenchReport report("ext_interconnect");
  report["corpusLoops"] = static_cast<std::int64_t>(loops.size());

  TextTable t;
  t.row().cell("Clusters").cell("Embedded").cell("Copy Unit").cell("Network lat 1")
      .cell("Network lat 2");
  for (int clusters : {2, 4, 8}) {
    if (bench.interrupted()) break;
    double means[4] = {0, 0, 0, 0};
    int counts[4] = {0, 0, 0, 0};
    // Embedded / copy-unit via the standard pipeline.
    for (int m = 0; m < 2; ++m) {
      const MachineDesc machine = MachineDesc::paper16(
          clusters, m == 0 ? CopyModel::Embedded : CopyModel::CopyUnit);
      const SuiteResult s = bench.run(machine.name, loops, machine, benchOptions(false));
      report.addSuiteCase(machine.name, machine, s);
      means[m] = s.arithMeanNormalized;
      counts[m] = static_cast<int>(loops.size()) - s.failures;
    }
    // Network models share the embedded machine's FU arrangement.
    const MachineDesc machine = MachineDesc::paper16(clusters, CopyModel::Embedded);
    const MachineDesc ideal = idealCounterpart(machine);
    for (const Loop& loop : loops) {
      const Ddg ddg = Ddg::build(loop, machine.lat);
      const std::vector<OpConstraint> free(loop.body.size());
      const auto idealRes = moduloSchedule(ddg, ideal, free);
      if (!idealRes.success) continue;
      const Rcg rcg = Rcg::build(loop, ddg, idealRes.schedule, RcgWeights{});
      const Partition part = greedyPartition(rcg, clusters, RcgWeights{});
      for (int p = 1; p <= 2; ++p) {
        const RemoteAccessResult r =
            scheduleWithRemoteAccess(loop, part, machine, p);
        if (!r.ok) continue;
        means[1 + p] += 100.0 * r.clusteredII / idealRes.schedule.ii;
        ++counts[1 + p];
      }
    }
    for (int p = 2; p < 4; ++p) means[p] /= std::max(1, counts[p]);
    for (int p = 1; p <= 2; ++p) {
      Json c = Json::object();
      c["label"] = std::to_string(clusters) + "cl-network-lat" + std::to_string(p);
      Json params = Json::object();
      params["clusters"] = clusters;
      params["networkLatency"] = p;
      c["params"] = std::move(params);
      Json agg = Json::object();
      agg["loops"] = counts[1 + p];
      agg["arithMeanNormalized"] = means[1 + p];
      c["aggregates"] = std::move(agg);
      report.addCase(std::move(c));
    }
    t.row().cell(clusters).cell(means[0], 1).cell(means[1], 1).cell(means[2], 1)
        .cell(means[3], 1);
  }
  std::printf("Extension E4: interconnect strategies (arith mean normalized II)\n\n%s",
              t.render().c_str());
  std::printf(
      "\nThe network model needs no copy operations, only latency on remote\n"
      "reads -- the schedule-quality advantage the paper concedes to TTAs\n"
      "before rejecting them on cycle-time grounds (Section 3).\n");
  return bench.finish(report);
}
