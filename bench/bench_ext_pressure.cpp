// Extension E3: lifetime-sensitive scheduling (the Swing contrast, §6.3).
//
// The paper uses "standard" Rau modulo scheduling and notes that Nystrom &
// Eichenberger's use of Swing scheduling — which minimizes register
// lifetimes — "could have an effect on the partitioning of registers". This
// bench measures the register-pressure half of that effect: with the
// lifetime-compaction post-pass on, values rotate through fewer MVE names
// and MaxLive falls, so small banks need fewer allocation-driven II
// relaxations. Emits BENCH_ext_pressure.json (docs/metrics.md).
#include "BenchCommon.h"
#include "support/TextTable.h"

using namespace rapt;
using namespace rapt::bench;

int main(int argc, char** argv) {
  BenchHarness bench("ext_pressure", argc, argv);
  const std::vector<Loop> loops = corpus();
  BenchReport report("ext_pressure");
  report["corpusLoops"] = static_cast<std::int64_t>(loops.size());

  TextTable t;
  t.row().cell("Regs/bank").cell("Compaction").cell("ArithMean")
      .cell("loops w/ retries").cell("mean unroll").cell("failures");
  for (int regs : {10, 12, 16, 32}) {
    for (bool compact : {false, true}) {
      if (bench.interrupted()) break;
      MachineDesc m = MachineDesc::paper16(4, CopyModel::Embedded);
      m.intRegsPerBank = regs;
      m.fltRegsPerBank = regs;
      PipelineOptions opt = benchOptions(/*simulate=*/false);
      opt.compactLifetimes = compact;
      opt.maxAllocRetries = 16;
      const std::string label =
          std::to_string(regs) + "-regs/compact=" + (compact ? "on" : "off");
      const SuiteResult s = bench.run(label, loops, m, opt);
      int retried = 0;
      double unroll = 0;
      int n = 0;
      for (const LoopResult& r : s.loops) {
        if (!r.ok) continue;
        if (r.allocRetries > 0) ++retried;
        unroll += r.maxUnroll;
        ++n;
      }
      Json& c = report.addSuiteCase(label, m, s);
      Json params = Json::object();
      params["regsPerBank"] = regs;
      params["compactLifetimes"] = compact;
      params["loopsWithAllocRetries"] = retried;
      params["meanUnroll"] = n ? unroll / n : 0.0;
      c["params"] = std::move(params);
      t.row()
          .cell(regs)
          .cell(compact ? "on" : "off")
          .cell(s.arithMeanNormalized, 1)
          .cell(retried)
          .cell(n ? unroll / n : 0.0, 2)
          .cell(s.failures);
    }
  }
  std::printf(
      "Extension E3: lifetime compaction vs register pressure\n"
      "(4 clusters x 4 FUs, embedded copies)\n\n%s",
      t.render().c_str());
  return bench.finish(report);
}
