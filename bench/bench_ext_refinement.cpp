// Extension E1: iterative partition refinement (paper §7 future work).
//
// Nystrom & Eichenberger's iterating partitioner left only ~2% of loops
// degraded vs ~5% for their non-iterative variant (§6.3). This bench measures
// the same effect for our greedy partitioner: corpus degradation with 0, 1
// and 3 refinement passes on every machine of the meta-model.
// Emits BENCH_ext_refinement.json (docs/metrics.md).
#include "BenchCommon.h"
#include "support/TextTable.h"

using namespace rapt;
using namespace rapt::bench;

int main(int argc, char** argv) {
  BenchHarness bench("ext_refinement", argc, argv);
  const std::vector<Loop> loops = corpus();
  BenchReport report("ext_refinement");
  report["corpusLoops"] = static_cast<std::int64_t>(loops.size());

  TextTable t;
  t.row().cell("Machine").cell("Passes").cell("ArithMean").cell("0%-loops")
      .cell("moves/loop");
  for (int i = 0; i < 6; ++i) {
    const MachineDesc m =
        MachineDesc::paper16(kMachineCases[i].clusters, kMachineCases[i].model);
    for (int passes : {0, 1, 3}) {
      if (bench.interrupted()) break;
      PipelineOptions opt = benchOptions(/*simulate=*/false);
      opt.refinePasses = passes;
      const std::string label = m.name + "/passes=" + std::to_string(passes);
      const SuiteResult s = bench.run(label, loops, m, opt);
      printFailures(s, m.name.c_str());
      double moves = 0;
      for (const LoopResult& r : s.loops) moves += r.refineMoves;
      Json& c = report.addSuiteCase(label, m, s);
      Json params = Json::object();
      params["refinePasses"] = passes;
      params["movesAccepted"] = static_cast<std::int64_t>(moves);
      c["params"] = std::move(params);
      t.row()
          .cell(m.name)
          .cell(passes)
          .cell(s.arithMeanNormalized, 1)
          .cell(s.histogram.percent(0), 1)
          .cell(moves / static_cast<double>(loops.size()), 2);
    }
  }
  std::printf("Extension E1: iterative partition refinement\n\n%s",
              t.render().c_str());
  return bench.finish(report);
}
