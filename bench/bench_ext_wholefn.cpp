// Extension E2: whole-function partitioning (the paper's global framework).
//
// The authors previously measured ~11% degradation for whole programs on a
// 4-wide machine with 4 single-FU clusters [16], and argue (§6.2) that
// software-pipelined loops degrade MORE than whole programs because they pack
// more parallelism. This bench runs the function pipeline over a corpus of
// synthetic CFGs on the paper's machines plus that 4x1 configuration, so the
// loop/function comparison is visible in one place.
// Emits BENCH_ext_wholefn.json (docs/metrics.md).
#include <cstdio>

#include "BenchCommon.h"
#include "pipeline/FunctionPipeline.h"
#include "support/Stats.h"
#include "support/TextTable.h"
#include "workload/FunctionGenerator.h"

using namespace rapt;
using namespace rapt::bench;

namespace {

void runCase(TextTable& t, BenchReport& report, const std::vector<Function>& fns,
             const MachineDesc& m) {
  std::vector<double> normalized;
  int copies = 0;
  int allocFailures = 0;
  int failures = 0;
  for (const Function& fn : fns) {
    const FunctionResult r = compileFunction(fn, m);
    if (!r.ok) {
      std::printf("!! %s on %s: %s\n", fn.name.c_str(), m.name.c_str(), r.error.c_str());
      ++failures;
      continue;
    }
    normalized.push_back(r.normalizedSize());
    copies += r.copies;
    if (!r.allocOk) ++allocFailures;
  }
  Json c = Json::object();
  c["label"] = m.name;
  c["machine"] = machineJson(m);
  Json agg = Json::object();
  agg["functions"] = static_cast<std::int64_t>(fns.size());
  agg["failures"] = failures;
  agg["arithMeanNormalized"] = arithmeticMean(normalized);
  agg["harmMeanNormalized"] = harmonicMean(normalized);
  agg["copiesPerFunction"] =
      static_cast<double>(copies) / static_cast<double>(fns.size());
  agg["allocFailures"] = allocFailures;
  c["aggregates"] = std::move(agg);
  report.addCase(std::move(c));
  t.row()
      .cell(m.name)
      .cell(arithmeticMean(normalized), 1)
      .cell(harmonicMean(normalized), 1)
      .cell(static_cast<double>(copies) / static_cast<double>(fns.size()), 1)
      .cell(allocFailures);
}

}  // namespace

int main(int argc, char** argv) {
  // The shared bench CLI for flag-surface consistency; the function pipeline
  // compiles in-process (no per-loop suite, so no journal to resume), but the
  // interrupt guard and the atomic partial report still apply.
  BenchHarness bench("ext_wholefn", argc, argv);
  const std::vector<Function> fns = generateFunctionCorpus(FunctionGenParams{});
  std::printf("Extension E2: whole-function partitioning over %zu synthetic CFGs\n\n",
              fns.size());
  BenchReport report("ext_wholefn");
  report["functionCorpus"] = static_cast<std::int64_t>(fns.size());

  TextTable t;
  t.row().cell("Machine").cell("ArithMean").cell("HarmMean").cell("copies/fn")
      .cell("alloc-failures");

  // The configuration of the authors' earlier whole-program study [16]:
  // 4-wide, 4 clusters of one FU each.
  MachineDesc fourByOne;
  fourByOne.name = "4-cluster-1fu";
  fourByOne.numClusters = 4;
  fourByOne.fusPerCluster = 1;
  fourByOne.intRegsPerBank = 16;
  fourByOne.fltRegsPerBank = 16;
  runCase(t, report, fns, fourByOne);

  for (int clusters : {2, 4, 8}) {
    for (CopyModel model : {CopyModel::Embedded, CopyModel::CopyUnit}) {
      if (bench.interrupted()) break;
      runCase(t, report, fns, MachineDesc::paper16(clusters, model));
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "paper reference: ~111 on the 4x1 machine for whole programs [16];\n"
      "whole functions should degrade LESS than the pipelined-loop Table 2.\n");
  return bench.finish(report);
}
