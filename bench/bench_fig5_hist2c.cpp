// Reproduces Figure 5: Achieved II on 2 Clusters with 8 Units Each.
#include "FigureHistogram.h"

int main(int argc, char** argv) {
  return rapt::bench::runFigureHistogram(
      2, "Figure 5", "fig5_hist2c",
      "roughly 60% of loops at 0.00% degradation; embedded dominates copy-unit",
      argc, argv);
}
