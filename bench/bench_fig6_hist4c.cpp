// Reproduces Figure 6: Achieved II on 4 Clusters with 4 Units Each.
#include "FigureHistogram.h"

int main(int argc, char** argv) {
  return rapt::bench::runFigureHistogram(
      4, "Figure 6", "fig6_hist4c", "roughly 50% of loops at 0.00% degradation",
      argc, argv);
}
