// Reproduces Figure 7: Achieved II on 8 Clusters with 2 Units Each.
#include "FigureHistogram.h"

int main(int argc, char** argv) {
  return rapt::bench::runFigureHistogram(
      8, "Figure 7", "fig7_hist8c", "roughly 40% of loops at 0.00% degradation",
      argc, argv);
}
