// Compiler-throughput microbenchmarks (google-benchmark): how fast the
// library's passes run. Not a paper experiment — a regression guard for the
// implementation itself.
#include <benchmark/benchmark.h>

#include "ddg/Ddg.h"
#include "partition/CopyInserter.h"
#include "partition/GreedyPartitioner.h"
#include "partition/Rcg.h"
#include "pipeline/CompilerPipeline.h"
#include "sched/ModuloScheduler.h"
#include "sched/PipelinedCode.h"
#include "workload/LoopGenerator.h"

using namespace rapt;

namespace {

Loop benchLoop(int index) { return generateLoop(GeneratorParams{}, index); }

void BM_DdgBuild(benchmark::State& state) {
  const Loop loop = benchLoop(static_cast<int>(state.range(0)));
  const MachineDesc m = MachineDesc::ideal16();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ddg::build(loop, m.lat));
  }
  state.SetLabel(std::to_string(loop.size()) + " ops");
}
BENCHMARK(BM_DdgBuild)->Arg(0)->Arg(8)->Arg(100);

void BM_ModuloSchedule(benchmark::State& state) {
  const Loop loop = benchLoop(static_cast<int>(state.range(0)));
  const MachineDesc m = MachineDesc::ideal16();
  const Ddg ddg = Ddg::build(loop, m.lat);
  const std::vector<OpConstraint> free(loop.body.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(moduloSchedule(ddg, m, free));
  }
  state.SetLabel(std::to_string(loop.size()) + " ops");
}
BENCHMARK(BM_ModuloSchedule)->Arg(0)->Arg(8)->Arg(100);

void BM_RcgBuildAndPartition(benchmark::State& state) {
  const Loop loop = benchLoop(static_cast<int>(state.range(0)));
  const MachineDesc m = MachineDesc::ideal16();
  const Ddg ddg = Ddg::build(loop, m.lat);
  const std::vector<OpConstraint> free(loop.body.size());
  const auto ideal = moduloSchedule(ddg, m, free);
  for (auto _ : state) {
    const Rcg rcg = Rcg::build(loop, ddg, ideal.schedule, RcgWeights{});
    benchmark::DoNotOptimize(greedyPartition(rcg, 4, RcgWeights{}));
  }
  state.SetLabel(std::to_string(loop.size()) + " ops");
}
BENCHMARK(BM_RcgBuildAndPartition)->Arg(0)->Arg(8)->Arg(100);

void BM_FullPipeline(benchmark::State& state) {
  const Loop loop = benchLoop(static_cast<int>(state.range(0)));
  const MachineDesc m = MachineDesc::paper16(4, CopyModel::Embedded);
  PipelineOptions opt;
  opt.simulate = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compileLoop(loop, m, opt));
  }
  state.SetLabel(std::to_string(loop.size()) + " ops" +
                 (opt.simulate ? " +sim" : ""));
}
BENCHMARK(BM_FullPipeline)->Args({8, 0})->Args({8, 1})->Args({100, 0})->Args({100, 1});

}  // namespace

BENCHMARK_MAIN();
