// Compiler-throughput microbenchmarks (google-benchmark): how fast the
// library's passes run. Not a paper experiment — a regression guard for the
// implementation itself. Unless the caller passes --benchmark_out, results
// are also written to BENCH_perf_micro.json (google-benchmark's own JSON
// schema, not rapt-bench-v1 — see docs/metrics.md).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "ddg/Ddg.h"
#include "partition/CopyInserter.h"
#include "partition/GreedyPartitioner.h"
#include "partition/Rcg.h"
#include "pipeline/CompilerPipeline.h"
#include "pipeline/Suite.h"
#include "sched/ModuloScheduler.h"
#include "sched/PipelinedCode.h"
#include "support/ThreadPool.h"
#include "workload/LoopGenerator.h"

using namespace rapt;

namespace {

Loop benchLoop(int index) { return generateLoop(GeneratorParams{}, index); }

void BM_DdgBuild(benchmark::State& state) {
  const Loop loop = benchLoop(static_cast<int>(state.range(0)));
  const MachineDesc m = MachineDesc::ideal16();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ddg::build(loop, m.lat));
  }
  state.SetLabel(std::to_string(loop.size()) + " ops");
}
BENCHMARK(BM_DdgBuild)->Arg(0)->Arg(8)->Arg(100);

void BM_ModuloSchedule(benchmark::State& state) {
  const Loop loop = benchLoop(static_cast<int>(state.range(0)));
  const MachineDesc m = MachineDesc::ideal16();
  const Ddg ddg = Ddg::build(loop, m.lat);
  const std::vector<OpConstraint> free(loop.body.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(moduloSchedule(ddg, m, free));
  }
  state.SetLabel(std::to_string(loop.size()) + " ops");
}
BENCHMARK(BM_ModuloSchedule)->Arg(0)->Arg(8)->Arg(100);

void BM_RcgBuildAndPartition(benchmark::State& state) {
  const Loop loop = benchLoop(static_cast<int>(state.range(0)));
  const MachineDesc m = MachineDesc::ideal16();
  const Ddg ddg = Ddg::build(loop, m.lat);
  const std::vector<OpConstraint> free(loop.body.size());
  const auto ideal = moduloSchedule(ddg, m, free);
  for (auto _ : state) {
    const Rcg rcg = Rcg::build(loop, ddg, ideal.schedule, RcgWeights{});
    benchmark::DoNotOptimize(greedyPartition(rcg, 4, RcgWeights{}));
  }
  state.SetLabel(std::to_string(loop.size()) + " ops");
}
BENCHMARK(BM_RcgBuildAndPartition)->Arg(0)->Arg(8)->Arg(100);

void BM_FullPipeline(benchmark::State& state) {
  const Loop loop = benchLoop(static_cast<int>(state.range(0)));
  const MachineDesc m = MachineDesc::paper16(4, CopyModel::Embedded);
  PipelineOptions opt;
  opt.simulate = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compileLoop(loop, m, opt));
  }
  state.SetLabel(std::to_string(loop.size()) + " ops" +
                 (opt.simulate ? " +sim" : ""));
}
BENCHMARK(BM_FullPipeline)->Args({8, 0})->Args({8, 1})->Args({100, 0})->Args({100, 1});

// The suite hot path itself: the 211-loop corpus on the 4-cluster embedded
// machine, serial vs all hardware threads. The parallel/serial ratio here is
// the speedup every table/figure bench sees.
void BM_SuiteCorpus(benchmark::State& state) {
  const std::vector<Loop> loops = generateCorpus(GeneratorParams{});
  const MachineDesc m = MachineDesc::paper16(4, CopyModel::Embedded);
  PipelineOptions opt;
  opt.simulate = false;
  opt.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runSuite(loops, m, opt));
  }
  state.SetLabel(std::to_string(loops.size()) + " loops, threads=" +
                 (opt.threads == 0 ? std::to_string(ThreadPool::hardwareThreads()) + " (hw)"
                                   : std::to_string(opt.threads)));
}
BENCHMARK(BM_SuiteCorpus)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN, plus a default --benchmark_out so every bench binary leaves
// a BENCH_*.json behind (ISSUE: machine-readable perf trajectory).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool hasOut = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) hasOut = true;
  }
  std::string outFlag = "--benchmark_out=BENCH_perf_micro.json";
  std::string fmtFlag = "--benchmark_out_format=json";
  if (const char* dir = std::getenv("RAPT_BENCH_DIR")) {
    outFlag = "--benchmark_out=" + std::string(dir) + "/BENCH_perf_micro.json";
  }
  if (!hasOut) {
    args.push_back(outFlag.data());
    args.push_back(fmtFlag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
