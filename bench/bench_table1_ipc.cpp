// Reproduces Table 1: "IPC of Clustered Software Pipelines".
//
// One row for the ideal 16-wide monolithic machine (the same value across
// all columns) and one for the clustered machines. Embedded-model IPC counts
// the inserted copies as issued operations; copy-unit IPC does not (paper
// §6.2). Every compiled loop is also simulated and checked bit-exact against
// the sequential reference. Emits BENCH_table1_ipc.json (docs/metrics.md).
#include "BenchCommon.h"
#include "support/TextTable.h"

using namespace rapt;
using namespace rapt::bench;

int main(int argc, char** argv) {
  BenchHarness bench("table1_ipc", argc, argv);
  const std::vector<Loop> loops = corpus();
  const PipelineOptions opt = benchOptions();
  BenchReport report("table1_ipc");
  report["corpusLoops"] = static_cast<std::int64_t>(loops.size());

  // Ideal row: monolithic 16-wide.
  const SuiteResult ideal = bench.run("ideal", loops, MachineDesc::ideal16(), opt);
  printFailures(ideal, "ideal");
  report.addSuiteCase("ideal", MachineDesc::ideal16(), ideal);

  double clusteredIpc[6] = {};
  int validated = ideal.validatedCount;
  for (int i = 0; i < 6 && !bench.interrupted(); ++i) {
    const MachineDesc m =
        MachineDesc::paper16(kMachineCases[i].clusters, kMachineCases[i].model);
    const SuiteResult s = bench.run(m.name, loops, m, opt);
    printFailures(s, m.name.c_str());
    report.addSuiteCase(m.name, m, s);
    clusteredIpc[i] = s.meanClusteredIpc;
    validated += s.validatedCount;
  }

  std::printf("Table 1. IPC of Clustered Software Pipelines (%zu loops)\n\n",
              loops.size());
  TextTable t;
  t.row().cell("Model").cell("2cl Embed").cell("2cl CopyUnit").cell("4cl Embed")
      .cell("4cl CopyUnit").cell("8cl Embed").cell("8cl CopyUnit");
  t.row().cell("Ideal");
  for (int i = 0; i < 6; ++i) t.cell(ideal.meanIdealIpc, 1);
  t.row().cell("Clustered");
  for (int i = 0; i < 6; ++i) t.cell(clusteredIpc[i], 1);
  std::printf("%s\n", t.render().c_str());
  std::printf("paper:  Ideal 8.6 everywhere; Clustered 9.3 / 6.2 / 8.4 / 7.5 / 6.9 / 6.8\n");
  std::printf("(%d loop compilations validated bit-exact in simulation)\n", validated);
  return bench.finish(report);
}
