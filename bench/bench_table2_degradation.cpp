// Reproduces Table 2: "Degradation Over Ideal Schedules — Normalized".
//
// Kernel size (== II) of each partitioned loop normalized to 100 for its
// ideal schedule; arithmetic and harmonic means over the corpus for all six
// cluster/copy-model combinations. Emits BENCH_table2_degradation.json
// (docs/metrics.md).
#include "BenchCommon.h"
#include "support/TextTable.h"

using namespace rapt;
using namespace rapt::bench;

int main(int argc, char** argv) {
  BenchHarness bench("table2_degradation", argc, argv);
  const std::vector<Loop> loops = corpus();
  const PipelineOptions opt = benchOptions();
  BenchReport report("table2_degradation");
  report["corpusLoops"] = static_cast<std::int64_t>(loops.size());

  double arith[6] = {}, harm[6] = {};
  for (int i = 0; i < 6 && !bench.interrupted(); ++i) {
    const MachineDesc m =
        MachineDesc::paper16(kMachineCases[i].clusters, kMachineCases[i].model);
    const SuiteResult s = bench.run(m.name, loops, m, opt);
    printFailures(s, m.name.c_str());
    report.addSuiteCase(m.name, m, s);
    arith[i] = s.arithMeanNormalized;
    harm[i] = s.harmMeanNormalized;
  }

  std::printf("Table 2. Degradation Over Ideal Schedules -- Normalized (%zu loops)\n\n",
              loops.size());
  TextTable t;
  t.row().cell("Average").cell("2cl Embed").cell("2cl CopyUnit").cell("4cl Embed")
      .cell("4cl CopyUnit").cell("8cl Embed").cell("8cl CopyUnit");
  t.row().cell("Arithmetic Mean");
  for (int i = 0; i < 6; ++i) t.cell(arith[i], 0);
  t.row().cell("Harmonic Mean");
  for (int i = 0; i < 6; ++i) t.cell(harm[i], 0);
  std::printf("%s\n", t.render().c_str());
  std::printf("paper:  arithmetic 111 / 150 / 126 / 122 / 162 / 133\n");
  std::printf("        harmonic   109 / 127 / 119 / 115 / 138 / 124\n");
  return bench.finish(report);
}
