// cluster_explorer: sweep the design space for a workload.
//
// For every cluster arrangement of the 16-wide meta-model (and both copy
// models), compiles a workload — the classic kernels by default, or a slice
// of the synthetic corpus — and prints IPC, degradation, copies and register
// pressure side by side. The kind of table an architect would want before
// committing to a clustering.
//
//   ./cluster_explorer            # classic kernels
//   ./cluster_explorer corpus 64  # first 64 synthetic loops
#include <cstdio>
#include <cstring>
#include <string>

#include "pipeline/Suite.h"
#include "support/TextTable.h"
#include "workload/Kernels.h"
#include "workload/LoopGenerator.h"

using namespace rapt;

int main(int argc, char** argv) {
  std::vector<Loop> loops;
  if (argc > 1 && !std::strcmp(argv[1], "corpus")) {
    GeneratorParams params;
    params.count = argc > 2 ? std::atoi(argv[2]) : 64;
    loops = generateCorpus(params);
  } else {
    loops = classicKernels();
  }
  std::printf("exploring %zu loops across the 16-wide design space\n\n", loops.size());

  TextTable t;
  t.row().cell("Machine").cell("IPC").cell("ArithMean").cell("HarmMean")
      .cell("0%-loops").cell("copies/loop").cell("validated");

  const SuiteResult ideal = runSuite(loops, MachineDesc::ideal16(), {});
  t.row().cell("ideal 1x16").cell(ideal.meanIdealIpc, 2).cell(100.0, 0).cell(100.0, 0)
      .cell(100.0, 1).cell(0.0, 1)
      .cell(std::to_string(ideal.validatedCount) + "/" + std::to_string(loops.size()));

  for (int clusters : {2, 4, 8}) {
    for (CopyModel model : {CopyModel::Embedded, CopyModel::CopyUnit}) {
      const MachineDesc m = MachineDesc::paper16(clusters, model);
      const SuiteResult s = runSuite(loops, m, {});
      t.row()
          .cell(m.name)
          .cell(s.meanClusteredIpc, 2)
          .cell(s.arithMeanNormalized, 1)
          .cell(s.harmMeanNormalized, 1)
          .cell(s.histogram.percent(0), 1)
          .cell(static_cast<double>(s.totalBodyCopies) / static_cast<double>(loops.size()), 1)
          .cell(std::to_string(s.validatedCount) + "/" + std::to_string(loops.size()));
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Reading guide: ArithMean/HarmMean are kernel sizes normalized to the\n"
      "ideal machine's 100 (Table 2 of the paper); 0%%-loops is the fraction\n"
      "needing no II increase at all (Figures 5-7); embedded copies consume\n"
      "functional-unit slots, copy-unit copies use dedicated buses/ports.\n");
  return 0;
}
