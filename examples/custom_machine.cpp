// custom_machine: retargetability demo.
//
// The paper's central engineering claim is that the register component graph
// "abstracts away machine-dependent details into costs associated with the
// nodes and edges" (§4.1), so the same partitioner serves any clustered
// target. This example builds two machines the presets do not cover — a TI
// C6x-flavoured 2x4 DSP and a hypothetical asymmetric-latency 4x2 machine —
// and runs the identical pipeline on both, plus a pre-coloring demonstration
// (§4.1's bank pinning).
#include <cstdio>

#include "ddg/Ddg.h"
#include "ir/Printer.h"
#include "partition/CopyInserter.h"
#include "partition/GreedyPartitioner.h"
#include "partition/Rcg.h"
#include "pipeline/Suite.h"
#include "sched/ModuloScheduler.h"
#include "workload/Kernels.h"

using namespace rapt;

namespace {

void runOn(const MachineDesc& m) {
  const std::vector<Loop> loops = classicKernels();
  const SuiteResult s = runSuite(loops, m, {});
  std::printf("%-18s IPC %.2f, mean normalized %.1f, %d/%zu validated\n",
              m.name.c_str(), s.meanClusteredIpc, s.arithMeanNormalized,
              s.validatedCount, loops.size());
}

}  // namespace

int main() {
  std::printf("=== Retargeting the identical pipeline ===\n\n");

  // Preset: TI C6x-like (2 clusters x 4 FUs, 1-cycle cross paths).
  runOn(MachineDesc::tiC6xLike());

  // Hand-rolled: slow interconnect, small banks, 4 clusters of 2.
  MachineDesc slow;
  slow.name = "slow-fabric-4x2";
  slow.numClusters = 4;
  slow.fusPerCluster = 2;
  slow.intRegsPerBank = 12;
  slow.fltRegsPerBank = 12;
  slow.copyModel = CopyModel::Embedded;
  slow.lat.intCopy = 4;
  slow.lat.fltCopy = 6;
  slow.lat.load = 3;
  runOn(slow);

  // A copy-unit variant of the same fabric.
  MachineDesc bused = slow;
  bused.name = "slow-fabric-4x2-bus";
  bused.copyModel = CopyModel::CopyUnit;
  bused.busCount = 2;
  bused.copyPortsPerBank = 1;
  runOn(bused);

  // ---- Pre-coloring (§4.1): pin registers to specific banks. ----
  std::printf("\n=== Bank pre-coloring on %s ===\n", MachineDesc::tiC6xLike().name.c_str());
  const Loop loop = classicKernel("cmul");
  const MachineDesc m = MachineDesc::tiC6xLike();
  const Ddg ddg = Ddg::build(loop, m.lat);
  const std::vector<OpConstraint> free(loop.body.size());
  const auto ideal = moduloSchedule(ddg, idealCounterpart(m), free);
  const Rcg rcg = Rcg::build(loop, ddg, ideal.schedule, RcgWeights{});

  // Suppose the ABI demands the real result f7 in bank 0 and the imaginary
  // result f10 in bank 1.
  BankPins pins;
  pins[fltReg(7).key()] = 0;
  pins[fltReg(10).key()] = 1;
  const Partition part = greedyPartition(rcg, m.numClusters, RcgWeights{}, pins);
  for (int b = 0; b < m.numClusters; ++b) {
    std::printf("  bank %d:", b);
    for (VirtReg r : part.regsInBank(b)) std::printf(" %s", regName(r).c_str());
    std::printf("\n");
  }
  std::printf("pinned: f7 -> bank %d, f10 -> bank %d\n", part.bankOf(fltReg(7)),
              part.bankOf(fltReg(10)));
  const ClusteredLoop cl = insertCopies(loop, part, m);
  std::printf("copies under the pinned partition: %d\n", cl.bodyCopies);
  return 0;
}
