// global_partition: the whole-function path of the framework (paper §6.3's
// "our greedy method works on a function basis").
//
// Generates (or takes an index into) the synthetic CFG corpus, compiles it
// with the function pipeline, and reports the per-stage story: blocks and
// their ideal schedules, the function-wide partition, copies + constant
// replication, spill activity, path validation, and the final degradation.
//
//   ./global_partition [index] [--clusters N]
//   ./global_partition --file examples/loops/absdiff.rapt
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "pipeline/FunctionPipeline.h"
#include "workload/FunctionGenerator.h"

using namespace rapt;

int main(int argc, char** argv) {
  int index = 0;
  int clusters = 4;
  const char* file = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--clusters") && i + 1 < argc) {
      clusters = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--file") && i + 1 < argc) {
      file = argv[++i];
    } else {
      index = std::atoi(argv[i]);
    }
  }

  Function fn;
  if (file != nullptr) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    fn = parseFunction(text.str());
  } else {
    fn = generateFunction(FunctionGenParams{}, index);
  }
  std::printf("=== %s: %d blocks ===\n", fn.name.c_str(), fn.numBlocks());
  for (int b = 0; b < fn.numBlocks(); ++b) {
    const BasicBlock& bb = fn.blocks[b];
    std::printf("  block %d (depth %d, %zu ops) ->", b, bb.nestingDepth,
                bb.ops.size());
    for (int s : bb.succs) std::printf(" %d", s);
    std::printf("\n");
  }

  for (CopyModel model : {CopyModel::Embedded, CopyModel::CopyUnit}) {
    const MachineDesc m = MachineDesc::paper16(clusters, model);
    const FunctionResult r = compileFunction(fn, m);
    if (!r.ok) {
      std::printf("%s: FAILED: %s\n", m.name.c_str(), r.error.c_str());
      continue;
    }
    std::printf(
        "\n%s:\n"
        "  ideal cycles (freq-weighted)     : %.0f\n"
        "  clustered cycles                 : %.0f  (normalized %.1f)\n"
        "  per-block copies                 : %d (+%d one-time const replications)\n"
        "  register allocation              : %s in %d round(s), %d spilled regs, %d spill ops\n"
        "  path validation                  : %s\n",
        m.name.c_str(), r.idealCycles, r.clusteredCycles, r.normalizedSize(),
        r.copies, r.replicatedConsts, r.allocOk ? "ok" : "FAILED", r.allocRounds,
        r.spills, r.spillOps, r.validated ? "original == rewritten (paths 0,1)" : "skipped");
  }
  return 0;
}
