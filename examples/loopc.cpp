// loopc: command-line driver for the full pipeline — the "compiler binary"
// of the library. Compiles one loop (from a file, a classic kernel name, or
// a synthetic-corpus index) for a chosen machine and reports every stage.
//
//   ./loopc daxpy                         # classic kernel, 4-cluster embedded
//   ./loopc synth:8 --clusters 8 --copyunit
//   ./loopc my_loop.rapt --clusters 2 --dump
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "ddg/Ddg.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "partition/CopyInserter.h"
#include "partition/GreedyPartitioner.h"
#include "partition/Rcg.h"
#include "pipeline/CompilerPipeline.h"
#include "sched/ModuloScheduler.h"
#include "sched/PipelinedCode.h"
#include "workload/Kernels.h"
#include "workload/LoopGenerator.h"

using namespace rapt;

namespace {

Loop loadLoop(const std::string& spec) {
  if (spec.rfind("synth:", 0) == 0) {
    return generateLoop(GeneratorParams{}, std::atoi(spec.c_str() + 6));
  }
  if (spec.find('.') != std::string::npos) {
    std::ifstream in(spec);
    if (!in) {
      std::fprintf(stderr, "loopc: cannot open %s\n", spec.c_str());
      std::exit(1);
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parseLoop(text.str());
  }
  return classicKernel(spec);
}

void dumpSchedule(const Loop& loop, const ModuloSchedule& s, const char* title) {
  std::printf("--- %s (II=%d, %d stages) ---\n", title, s.ii, s.stageCount());
  for (int slot = 0; slot < s.ii; ++slot) {
    std::printf("  [%2d]", slot);
    for (int o = 0; o < loop.size(); ++o) {
      if (s.cycle[o] % s.ii == slot)
        std::printf("  %s@t%d/fu%d", printOperation(loop, loop.body[o]).c_str(),
                    s.cycle[o], s.fu[o]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: loopc <kernel|synth:N|file.rapt> [--clusters N] "
                 "[--copyunit] [--dump] [--partitioner greedy|roundrobin|random|bug]\n");
    return 2;
  }
  int clusters = 4;
  CopyModel model = CopyModel::Embedded;
  bool dump = false;
  PipelineOptions opt;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--clusters") && i + 1 < argc) {
      clusters = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--copyunit")) {
      model = CopyModel::CopyUnit;
    } else if (!std::strcmp(argv[i], "--dump")) {
      dump = true;
    } else if (!std::strcmp(argv[i], "--partitioner") && i + 1 < argc) {
      const std::string p = argv[++i];
      if (p == "greedy") opt.partitioner = PartitionerKind::GreedyRcg;
      else if (p == "roundrobin") opt.partitioner = PartitionerKind::RoundRobin;
      else if (p == "random") opt.partitioner = PartitionerKind::Random;
      else if (p == "bug") opt.partitioner = PartitionerKind::BugLike;
      else { std::fprintf(stderr, "loopc: unknown partitioner %s\n", p.c_str()); return 2; }
    } else {
      std::fprintf(stderr, "loopc: unknown option %s\n", argv[i]);
      return 2;
    }
  }

  const Loop loop = loadLoop(argv[1]);
  const MachineDesc machine =
      clusters == 1 ? MachineDesc::ideal16() : MachineDesc::paper16(clusters, model);

  std::printf("%s", printLoop(loop).c_str());
  std::printf("machine: %s (%d ops)\n\n", machine.name.c_str(), loop.size());

  if (dump) {
    const Ddg ddg = Ddg::build(loop, machine.lat);
    std::printf("DDG: %zu edges, ResII=%d RecII=%d\n", ddg.edges().size(),
                ddg.resII(idealCounterpart(machine)), ddg.recII());
    const std::vector<OpConstraint> free(loop.body.size());
    const auto ideal = moduloSchedule(ddg, idealCounterpart(machine), free);
    dumpSchedule(loop, ideal.schedule, "ideal schedule");
    if (!machine.isMonolithic()) {
      const Rcg rcg = Rcg::build(loop, ddg, ideal.schedule, opt.weights);
      const Partition part = greedyPartition(rcg, machine.numClusters, opt.weights);
      const ClusteredLoop cl = insertCopies(loop, part, machine);
      std::printf("--- partition + copies (%d body, %d preheader) ---\n",
                  cl.bodyCopies, cl.preheaderCopies);
      for (int b = 0; b < machine.numClusters; ++b) {
        std::printf("  bank %d:", b);
        for (VirtReg r : cl.partition.regsInBank(b))
          std::printf(" %s", regName(r).c_str());
        std::printf("\n");
      }
      const Ddg cddg = Ddg::build(cl.loop, machine.lat);
      const auto cres = moduloSchedule(cddg, machine, cl.constraints);
      if (cres.success) dumpSchedule(cl.loop, cres.schedule, "clustered schedule");
    }
    std::printf("\n");
  }

  const LoopResult r = compileLoop(loop, machine, opt);
  std::printf("result: %s\n", r.ok ? "ok" : r.error.c_str());
  std::printf("  ideal II %d (res %d, rec %d) | clustered II %d | normalized %.0f\n",
              r.idealII, r.idealResII, r.idealRecII, r.clusteredII, r.normalizedSize());
  std::printf("  copies %d (+%d preheader) | stages %d | unroll %d | IPC %.2f -> %.2f\n",
              r.bodyCopies, r.preheaderCopies, r.stageCount, r.maxUnroll, r.idealIpc(),
              r.clusteredIpc(machine));
  std::printf("  alloc %s (retries %d) | validated %s\n", r.allocOk ? "ok" : "-",
              r.allocRetries, r.validated ? "yes" : "NO");
  return r.ok ? 0 : 1;
}
