// The paper's §4.2 worked example, end to end.
//
// Compiles the intermediate code of Figure 2 — the statement
//     xpos = xpos + (xvel*t) + (xaccel*t*t/2.0)
// — for the example machine of the section: two clusters of one functional
// unit each, unit latencies, embedded copies. Prints the ideal schedule
// (Figure 1: 7 cycles), the register component graph and its partition, and
// the partitioned schedule with its copies (Figure 3: 9 cycles, two moves).
#include <cstdio>
#include <string>

#include "ddg/Ddg.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "partition/CopyInserter.h"
#include "partition/GreedyPartitioner.h"
#include "partition/Rcg.h"
#include "pipeline/CompilerPipeline.h"
#include "sched/ModuloScheduler.h"

using namespace rapt;

namespace {

constexpr const char* kFigure2 = R"(
  loop xpos_update trip 1 {
    array xvel[1] flt
    array t[1] flt
    array xaccel[1] flt
    array xpos[1] flt
    livein i0 = 0
    f1 = fload xvel[i0]
    f2 = fload t[i0]
    f3 = fload xaccel[i0]
    f4 = fload xpos[i0]
    f5 = fmul f1, f2
    f6 = fadd f4, f5
    f7 = fmul f3, f2
    f8 = fconst 2.0
    f9 = fdiv f2, f8
    f10 = fmul f7, f9
    f11 = fadd f6, f10
    fstore xpos[i0], f11
  })";

void dumpFlat(const Loop& loop, const ModuloSchedule& s, const char* title) {
  std::printf("--- %s (flat length %d cycles) ---\n", title, s.horizon() + 1);
  for (int cyc = 0; cyc <= s.horizon(); ++cyc) {
    std::printf("  cycle %d:", cyc);
    for (int o = 0; o < loop.size(); ++o) {
      if (s.cycle[o] == cyc)
        std::printf("  [fu%d] %s;", s.fu[o], printOperation(loop, loop.body[o]).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool argcHasDot = argc > 1 && std::string(argv[1]) == "--dot";
  const Loop loop = parseLoop(kFigure2);
  const MachineDesc machine = MachineDesc::example2x1();
  std::printf("=== Paper section 4.2: %s on %s ===\n\n%s\n", loop.name.c_str(),
              machine.name.c_str(), printLoop(loop).c_str());

  // Figure 1: the ideal (single-bank) schedule on the same 2-wide machine.
  const Ddg ddg = Ddg::build(loop, machine.lat);
  const std::vector<OpConstraint> free(loop.body.size());
  const auto ideal = moduloSchedule(ddg, idealCounterpart(machine), free);
  dumpFlat(loop, ideal.schedule, "ideal schedule (paper Figure 1: 7 cycles)");

  // The register component graph and the greedy partition.
  const Rcg rcg = Rcg::build(loop, ddg, ideal.schedule, RcgWeights{});
  std::printf("\n--- register component graph ---\n");
  for (VirtReg r : rcg.nodesByDecreasingWeight()) {
    std::printf("  %-4s w=%7.2f :", regName(r).c_str(), rcg.nodeWeight(r));
    for (const auto& [nbr, w] : rcg.neighbors(r))
      std::printf(" %s(%+.1f)", regName(nbr).c_str(), w);
    std::printf("\n");
  }
  const Partition part = greedyPartition(rcg, 2, RcgWeights{});
  if (argcHasDot) {
    std::printf("\n--- graphviz (pipe to `dot -Tpng`) ---\n%s", rcg.toDot(&part).c_str());
  }
  for (int b = 0; b < 2; ++b) {
    std::printf("  bank %d:", b);
    for (VirtReg r : part.regsInBank(b)) std::printf(" %s", regName(r).c_str());
    std::printf("\n");
  }

  // Figure 3: the partitioned schedule with explicit moves.
  const ClusteredLoop cl = insertCopies(loop, part, machine);
  std::printf("\ncopies inserted: %d (paper needed 2)\n", cl.bodyCopies);
  const Ddg cddg = Ddg::build(cl.loop, machine.lat);
  const auto clustered = moduloSchedule(cddg, machine, cl.constraints);
  if (clustered.success) {
    dumpFlat(cl.loop, clustered.schedule,
             "partitioned schedule (paper Figure 3: 9 cycles)");
  }

  // And the library's one-call verdict, with simulation.
  PipelineOptions opt;
  opt.simTrip = 1;
  const LoopResult r = compileLoop(loop, machine, opt);
  std::printf("\npipeline: %s | ideal II %d -> clustered II %d | %d copies | %s\n",
              r.ok ? "ok" : r.error.c_str(), r.idealII, r.clusteredII, r.bodyCopies,
              r.validated ? "validated bit-exact" : "NOT validated");
  return r.ok ? 0 : 1;
}
