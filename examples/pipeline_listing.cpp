// pipeline_listing: print the code a compiler would actually emit.
//
// Shows the complete software-pipelining artifact for one kernel: the modulo
// schedule, the MVE renaming table, and the rolled prologue / kernel /
// epilogue listing (the paper's prelude/postlude, §2) on the chosen machine.
//
//   ./pipeline_listing [kernel] [trip]
#include <cstdio>
#include <string>

#include "ddg/Ddg.h"
#include "ir/Printer.h"
#include "sched/ModuloScheduler.h"
#include "sched/RolledPipeline.h"
#include "workload/Kernels.h"

using namespace rapt;

namespace {

void printBlock(const Loop& loop, const std::vector<VliwInstr>& block,
                const char* title, int baseCycle) {
  std::printf("%s (%zu instructions):\n", title, block.size());
  for (std::size_t c = 0; c < block.size(); ++c) {
    std::printf("  %4d:", baseCycle + static_cast<int>(c));
    if (block[c].ops.empty()) std::printf("  nop");
    for (const EmittedOp& eo : block[c].ops) {
      std::printf("  [fu%-2d] %s;", eo.fu, printOperation(loop, eo.op).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "dot";
  const std::int64_t trip = argc > 2 ? std::atoll(argv[2]) : 64;
  const Loop loop = classicKernel(name);
  const MachineDesc machine = MachineDesc::ideal16();

  const Ddg ddg = Ddg::build(loop, machine.lat);
  const std::vector<OpConstraint> free(loop.body.size());
  const auto res = moduloSchedule(ddg, machine, free);
  if (!res.success) {
    std::fprintf(stderr, "could not schedule %s\n", name.c_str());
    return 1;
  }
  std::printf("%s on %s: II=%d (ResII %d, RecII %d), %d stages\n\n",
              loop.name.c_str(), machine.name.c_str(), res.schedule.ii, res.resII,
              res.recII, res.schedule.stageCount());

  const PipelinedCode code = emitPipelinedCode(loop, ddg, res.schedule, trip);
  std::printf("MVE renaming (value -> rotating names):\n");
  for (const Operation& op : loop.body) {
    if (!op.def.isValid()) continue;
    const auto& names = code.namesOf.at(op.def.key());
    std::printf("  %-4s ->", regName(op.def).c_str());
    for (VirtReg n : names) std::printf(" %s", regName(n).c_str());
    std::printf("\n");
  }

  const RolledPipeline rolled = rollPipeline(code);
  std::printf("\nrolled form for trip %lld: prologue %zu + kernel %zu x %lld + epilogue %zu"
              " (unroll factor %d)\n\n",
              static_cast<long long>(trip), rolled.prologue.size(),
              rolled.kernel.size(), static_cast<long long>(rolled.kernelRepeats),
              rolled.epilogue.size(), rolled.unrollFactor);

  printBlock(loop, rolled.prologue, "PROLOGUE", 0);
  std::printf("\n");
  printBlock(loop, rolled.kernel, "KERNEL (branch back while iterations remain)",
             static_cast<int>(rolled.prologue.size()));
  std::printf("\n");
  printBlock(loop, rolled.epilogue, "EPILOGUE",
             static_cast<int>(rolled.prologue.size() + rolled.kernel.size()));
  return 0;
}
