// Quickstart: compile one loop for a clustered VLIW and inspect the result.
//
// Pipelines the classic daxpy kernel for the paper's 4-cluster x 4-FU machine
// (embedded copy model), showing each framework stage: the ideal schedule,
// the register partition, the copies inserted, the clustered schedule, the
// register allocation, and the simulator's verdict.
//
//   ./quickstart [loop-name]
#include <cstdio>
#include <string>

#include "ddg/Ddg.h"
#include "ir/Printer.h"
#include "partition/CopyInserter.h"
#include "partition/GreedyPartitioner.h"
#include "partition/Rcg.h"
#include "pipeline/CompilerPipeline.h"
#include "sched/ModuloScheduler.h"
#include "workload/Kernels.h"

using namespace rapt;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "daxpy";
  const Loop loop = classicKernel(name);
  const MachineDesc machine = MachineDesc::paper16(4, CopyModel::Embedded);

  std::printf("=== Input loop ===\n%s\n", printLoop(loop).c_str());

  // Stage-by-stage, the long way (compileLoop below does all of this).
  const Ddg ddg = Ddg::build(loop, machine.lat);
  const std::vector<OpConstraint> free(loop.body.size());
  const auto ideal = moduloSchedule(ddg, idealCounterpart(machine), free);
  std::printf("ideal schedule: II=%d (ResII=%d, RecII=%d), %d stages\n",
              ideal.schedule.ii, ideal.resII, ideal.recII,
              ideal.schedule.stageCount());

  const Rcg rcg = Rcg::build(loop, ddg, ideal.schedule, RcgWeights{});
  std::printf("RCG: %zu register nodes, %zu edges\n", rcg.nodes().size(),
              rcg.numEdges());

  const Partition part = greedyPartition(rcg, machine.numClusters, RcgWeights{});
  for (int b = 0; b < machine.numClusters; ++b) {
    std::printf("bank %d:", b);
    for (VirtReg r : part.regsInBank(b)) std::printf(" %s", regName(r).c_str());
    std::printf("\n");
  }

  const ClusteredLoop clustered = insertCopies(loop, part, machine);
  std::printf("copies inserted: %d per iteration, %d hoisted to the preheader\n",
              clustered.bodyCopies, clustered.preheaderCopies);

  // The one-call version, with register allocation, simulation, and
  // equivalence checking against the sequential reference.
  const LoopResult r = compileLoop(loop, machine);
  if (!r.ok) {
    std::printf("pipeline FAILED: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("\n=== Pipeline result ===\n");
  std::printf("ideal II            : %d\n", r.idealII);
  std::printf("clustered II        : %d\n", r.clusteredII);
  std::printf("normalized size     : %.0f (ideal = 100)\n", r.normalizedSize());
  std::printf("ideal IPC           : %.2f\n", r.idealIpc());
  std::printf("clustered IPC       : %.2f\n", r.clusteredIpc(machine));
  std::printf("MVE unroll          : %d\n", r.maxUnroll);
  std::printf("register allocation : %s (retries %d)\n",
              r.allocOk ? "ok" : "skipped", r.allocRetries);
  std::printf("validated           : %s (simulated %lld cycles for %lld iterations)\n",
              r.validated ? "bit-exact vs sequential reference" : "NO",
              static_cast<long long>(r.simulatedCycles),
              static_cast<long long>(64));
  return r.validated ? 0 : 1;
}
