#include "analysis/Analyses.h"

#include <algorithm>

#include "support/Assert.h"

namespace rapt {
namespace {

void noteReg(VirtReg r, std::uint32_t& maxKey, bool& any) {
  if (!r.isValid()) return;
  maxKey = std::max(maxKey, r.key());
  any = true;
}

/// gen/kill of one operation for liveness: gen = uses, kill = def. An op that
/// both reads and writes a register (a recurrence tail) still gens it — the
/// read sees the previous value, so the register is live-in either way.
void opLivenessGenKill(const Operation& o, BitSet& gen, BitSet& kill) {
  if (o.def.isValid()) kill.set(static_cast<int>(o.def.key()));
  for (VirtReg s : o.srcs()) gen.set(static_cast<int>(s.key()));
}

}  // namespace

int numRegKeys(const Loop& loop) {
  std::uint32_t maxKey = 0;
  bool any = false;
  for (const Operation& o : loop.body) {
    noteReg(o.def, maxKey, any);
    for (VirtReg s : o.srcs()) noteReg(s, maxKey, any);
  }
  noteReg(loop.induction, maxKey, any);
  for (const LiveInValue& lv : loop.liveInValues) noteReg(lv.reg, maxKey, any);
  return any ? static_cast<int>(maxKey) + 1 : 0;
}

int numRegKeys(const Function& fn) {
  std::uint32_t maxKey = 0;
  bool any = false;
  for (const BasicBlock& bb : fn.blocks) {
    for (const Operation& o : bb.ops) {
      noteReg(o.def, maxKey, any);
      for (VirtReg s : o.srcs()) noteReg(s, maxKey, any);
    }
  }
  return any ? static_cast<int>(maxKey) + 1 : 0;
}

std::vector<VirtReg> regsOfSet(const BitSet& keys) {
  std::vector<VirtReg> regs;
  keys.forEach([&](int k) { regs.push_back(VirtReg::fromKey(static_cast<std::uint32_t>(k))); });
  std::sort(regs.begin(), regs.end());
  return regs;
}

LoopLiveness computeLoopLiveness(const Loop& loop) {
  const int n = loop.size();
  LoopLiveness out;
  out.numKeys = numRegKeys(loop);

  DataflowProblem p;
  p.direction = FlowDirection::Backward;
  p.meet = MeetOp::Union;
  p.numFacts = out.numKeys;
  p.gen.assign(static_cast<std::size_t>(n), BitSet(p.numFacts));
  p.kill.assign(static_cast<std::size_t>(n), BitSet(p.numFacts));
  for (int i = 0; i < n; ++i) opLivenessGenKill(loop.body[i], p.gen[i], p.kill[i]);

  DataflowSolution s = solveDataflow(DataflowCfg::forLoopBody(n), p);
  out.liveIn = std::move(s.in);
  out.liveOut = std::move(s.out);
  return out;
}

FunctionLiveness computeFunctionLiveness(const Function& fn) {
  const int n = fn.numBlocks();
  FunctionLiveness out;
  out.numKeys = numRegKeys(fn);

  DataflowProblem p;
  p.direction = FlowDirection::Backward;
  p.meet = MeetOp::Union;
  p.numFacts = out.numKeys;
  p.gen.assign(static_cast<std::size_t>(n), BitSet(p.numFacts));
  p.kill.assign(static_cast<std::size_t>(n), BitSet(p.numFacts));
  for (int b = 0; b < n; ++b) {
    // gen = upward-exposed uses (read before any in-block def);
    // kill = every register the block defines.
    BitSet defined(p.numFacts);
    for (const Operation& o : fn.blocks[b].ops) {
      for (VirtReg s : o.srcs()) {
        const int k = static_cast<int>(s.key());
        if (!defined.test(k)) p.gen[b].set(k);
      }
      if (o.def.isValid()) defined.set(static_cast<int>(o.def.key()));
    }
    p.kill[b] = defined;
  }

  DataflowSolution s = solveDataflow(DataflowCfg::forFunction(fn), p);
  out.liveIn = std::move(s.in);
  out.liveOut = std::move(s.out);
  return out;
}

LoopReachingDefs computeLoopReachingDefs(const Loop& loop) {
  const int n = loop.size();
  LoopReachingDefs out;

  DataflowProblem p;
  p.direction = FlowDirection::Forward;
  p.meet = MeetOp::Union;
  p.numFacts = n;
  p.gen.assign(static_cast<std::size_t>(n), BitSet(n));
  p.kill.assign(static_cast<std::size_t>(n), BitSet(n));
  for (int i = 0; i < n; ++i) {
    if (!loop.body[i].def.isValid()) continue;
    p.gen[i].set(i);
    for (int j = 0; j < n; ++j) {
      if (j != i && loop.body[j].def == loop.body[i].def) p.kill[i].set(j);
    }
  }

  DataflowSolution s = solveDataflow(DataflowCfg::forLoopBody(n), p);
  out.in = std::move(s.in);
  out.out = std::move(s.out);
  return out;
}

FunctionReachingDefs computeFunctionReachingDefs(const Function& fn) {
  FunctionReachingDefs out;
  for (int b = 0; b < fn.numBlocks(); ++b) {
    const auto& ops = fn.blocks[b].ops;
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
      if (ops[i].def.isValid()) out.defSites.emplace_back(b, i);
    }
  }
  const int numDefs = static_cast<int>(out.defSites.size());
  const int n = fn.numBlocks();

  DataflowProblem p;
  p.direction = FlowDirection::Forward;
  p.meet = MeetOp::Union;
  p.numFacts = numDefs;
  p.gen.assign(static_cast<std::size_t>(n), BitSet(numDefs));
  p.kill.assign(static_cast<std::size_t>(n), BitSet(numDefs));
  for (int d = 0; d < numDefs; ++d) {
    const auto [b, i] = out.defSites[d];
    const VirtReg r = fn.blocks[b].ops[i].def;
    // Downward-exposed: no later def of the same register in the block.
    bool exposed = true;
    const auto& ops = fn.blocks[b].ops;
    for (int j = i + 1; j < static_cast<int>(ops.size()); ++j) {
      if (ops[j].def == r) exposed = false;
    }
    if (exposed) p.gen[b].set(d);
    // Any def of r in a block kills every OTHER site of r.
    for (int e = 0; e < numDefs; ++e) {
      if (e == d) continue;
      const auto [eb, ei] = out.defSites[e];
      if (fn.blocks[eb].ops[ei].def == r) p.kill[b].set(e);
    }
  }

  DataflowSolution s = solveDataflow(DataflowCfg::forFunction(fn), p);
  out.in = std::move(s.in);
  out.out = std::move(s.out);
  return out;
}

FunctionInitState computeFunctionInitState(const Function& fn) {
  const int n = fn.numBlocks();
  FunctionInitState out;
  out.numKeys = numRegKeys(fn);

  DataflowProblem p;
  p.direction = FlowDirection::Forward;
  p.numFacts = out.numKeys;
  p.gen.assign(static_cast<std::size_t>(n), BitSet(p.numFacts));
  p.kill.assign(static_cast<std::size_t>(n), BitSet(p.numFacts));
  for (int b = 0; b < n; ++b) {
    for (const Operation& o : fn.blocks[b].ops) {
      if (o.def.isValid()) p.gen[b].set(static_cast<int>(o.def.key()));
    }
  }
  const DataflowCfg cfg = DataflowCfg::forFunction(fn);

  p.meet = MeetOp::Union;
  out.mayIn = solveDataflow(cfg, p).in;
  p.meet = MeetOp::Intersect;
  out.mustIn = solveDataflow(cfg, p).in;
  return out;
}

std::vector<bool> reachableBlocks(const Function& fn) {
  std::vector<bool> seen(static_cast<std::size_t>(fn.numBlocks()), false);
  if (fn.blocks.empty()) return seen;
  std::vector<int> stack = {0};
  seen[0] = true;
  while (!stack.empty()) {
    const int b = stack.back();
    stack.pop_back();
    for (int s : fn.blocks[b].succs) {
      if (s >= 0 && s < fn.numBlocks() && !seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        stack.push_back(s);
      }
    }
  }
  return seen;
}

}  // namespace rapt
