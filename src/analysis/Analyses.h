// Concrete dataflow analyses over the rapt IR, built on analysis/Dataflow.h.
//
// Facts are virtual-register keys (VirtReg::key(): intN -> 2N, fltN -> 2N+1)
// or definition-site indices. Loop analyses are operation-granular over the
// cyclic body chain (the loop's carried semantics fall out of the back edge);
// function analyses are block-granular over the CFG, the classic textbook
// formulation. regalloc/Liveness.cpp is a thin adapter over
// computeFunctionLiveness, so the allocator and the lint diagnostics share
// one solver.
#pragma once

#include <utility>
#include <vector>

#include "analysis/Dataflow.h"
#include "ir/Function.h"
#include "ir/Loop.h"

namespace rapt {

/// 1 + the largest VirtReg::key() mentioned by the unit (bitset width).
[[nodiscard]] int numRegKeys(const Loop& loop);
[[nodiscard]] int numRegKeys(const Function& fn);

/// Converts a reg-key bitset into a vector sorted by VirtReg::operator<
/// (all integer registers before all floating ones — the order regalloc's
/// BlockLiveness contract promises).
[[nodiscard]] std::vector<VirtReg> regsOfSet(const BitSet& keys);

// ---- Liveness (backward, union) -----------------------------------------

/// Per-operation liveness around the loop's iteration cycle. A register is
/// live-in at op i if some op (possibly across the back edge) reads it before
/// its unique definition kills it. Invariants are live everywhere.
struct LoopLiveness {
  int numKeys = 0;
  std::vector<BitSet> liveIn;   ///< per op
  std::vector<BitSet> liveOut;  ///< per op
};
[[nodiscard]] LoopLiveness computeLoopLiveness(const Loop& loop);

/// Per-block liveness over a function CFG (gen = upward-exposed uses,
/// kill = block definitions).
struct FunctionLiveness {
  int numKeys = 0;
  std::vector<BitSet> liveIn;   ///< per block
  std::vector<BitSet> liveOut;  ///< per block
};
[[nodiscard]] FunctionLiveness computeFunctionLiveness(const Function& fn);

// ---- Reaching definitions (forward, union) -------------------------------

/// Loop form: facts are body op indices; op i's fact reaches op j when the
/// value written by body[i] can still be in its register at body[j] (around
/// the back edge if needed). With single definitions per register every def
/// reaches every op of a valid loop — the analysis exists to cross-check that
/// property and to serve op-granular clients.
struct LoopReachingDefs {
  std::vector<BitSet> in;   ///< per op, facts = defining op indices
  std::vector<BitSet> out;
};
[[nodiscard]] LoopReachingDefs computeLoopReachingDefs(const Loop& loop);

/// Function form: facts are flattened definition sites.
struct FunctionReachingDefs {
  std::vector<std::pair<int, int>> defSites;  ///< fact -> (block, op index)
  std::vector<BitSet> in;                     ///< per block
  std::vector<BitSet> out;
};
[[nodiscard]] FunctionReachingDefs computeFunctionReachingDefs(const Function& fn);

// ---- Initialization state (forward; may = union, must = intersect) -------

/// For use-before-def reporting: which registers MAY have been assigned on
/// some path reaching a block's entry, and which MUST have been assigned on
/// every such path. A use of a (somewhere-defined) register outside mayIn is
/// definitely uninitialized; outside mustIn, possibly uninitialized.
struct FunctionInitState {
  int numKeys = 0;
  std::vector<BitSet> mayIn;   ///< per block
  std::vector<BitSet> mustIn;  ///< per block
};
[[nodiscard]] FunctionInitState computeFunctionInitState(const Function& fn);

/// Blocks reachable from the entry block (blocks[0]); element b is true when
/// block b can execute.
[[nodiscard]] std::vector<bool> reachableBlocks(const Function& fn);

}  // namespace rapt
