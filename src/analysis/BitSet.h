// Dense fixed-width bitset, the fact representation of the dataflow solver.
//
// Dataflow facts in this codebase are small dense index spaces — virtual
// register keys (VirtReg::key()) and operation/definition indices — so a flat
// word array beats std::set by an order of magnitude on the solver's inner
// meet/transfer loops and makes set equality (the fixpoint test) a memcmp.
#pragma once

#include <cstdint>
#include <vector>

#include "support/Assert.h"

namespace rapt {

class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(int numBits)
      : bits_(numBits), words_((static_cast<std::size_t>(numBits) + 63) / 64, 0) {
    RAPT_ASSERT(numBits >= 0, "negative bitset width");
  }

  [[nodiscard]] int sizeBits() const { return bits_; }

  void set(int i) {
    RAPT_ASSERT(i >= 0 && i < bits_, "bitset index out of range");
    words_[static_cast<std::size_t>(i) / 64] |= (1ull << (i % 64));
  }
  void reset(int i) {
    RAPT_ASSERT(i >= 0 && i < bits_, "bitset index out of range");
    words_[static_cast<std::size_t>(i) / 64] &= ~(1ull << (i % 64));
  }
  [[nodiscard]] bool test(int i) const {
    RAPT_ASSERT(i >= 0 && i < bits_, "bitset index out of range");
    return (words_[static_cast<std::size_t>(i) / 64] >> (i % 64)) & 1u;
  }

  void clear() {
    for (std::uint64_t& w : words_) w = 0;
  }

  /// Sets every bit; trailing bits of the last word stay zero so equality and
  /// popcount remain exact.
  void setAll() {
    for (std::uint64_t& w : words_) w = ~0ull;
    const int tail = bits_ % 64;
    if (tail != 0 && !words_.empty()) words_.back() = (1ull << tail) - 1;
  }

  BitSet& operator|=(const BitSet& o) {
    RAPT_ASSERT(bits_ == o.bits_, "bitset width mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  BitSet& operator&=(const BitSet& o) {
    RAPT_ASSERT(bits_ == o.bits_, "bitset width mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }
  /// this = this - o (set difference).
  BitSet& subtract(const BitSet& o) {
    RAPT_ASSERT(bits_ == o.bits_, "bitset width mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  friend bool operator==(const BitSet& a, const BitSet& b) {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const BitSet& a, const BitSet& b) { return !(a == b); }

  [[nodiscard]] bool any() const {
    for (std::uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }

  [[nodiscard]] int count() const {
    int n = 0;
    for (std::uint64_t w : words_) n += __builtin_popcountll(w);
    return n;
  }

  /// Calls `f(index)` for every set bit in ascending order.
  template <typename F>
  void forEach(F&& f) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        f(static_cast<int>(wi * 64) + bit);
        w &= w - 1;
      }
    }
  }

 private:
  int bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rapt
