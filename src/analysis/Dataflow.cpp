#include "analysis/Dataflow.h"

#include <deque>

#include "support/Assert.h"

namespace rapt {

DataflowCfg DataflowCfg::forFunction(const Function& fn) {
  DataflowCfg cfg;
  cfg.succs.resize(fn.blocks.size());
  cfg.preds.resize(fn.blocks.size());
  for (int b = 0; b < fn.numBlocks(); ++b) {
    for (int s : fn.blocks[b].succs) {
      RAPT_ASSERT(s >= 0 && s < fn.numBlocks(), "successor out of range");
      cfg.succs[b].push_back(s);
      cfg.preds[s].push_back(b);
    }
  }
  return cfg;
}

DataflowCfg DataflowCfg::forLoopBody(int numOps) {
  DataflowCfg cfg = chain(numOps);
  if (numOps > 0) {
    cfg.succs[numOps - 1].push_back(0);
    cfg.preds[0].push_back(numOps - 1);
  }
  return cfg;
}

DataflowCfg DataflowCfg::chain(int numOps) {
  DataflowCfg cfg;
  cfg.succs.resize(numOps);
  cfg.preds.resize(numOps);
  for (int i = 0; i + 1 < numOps; ++i) {
    cfg.succs[i].push_back(i + 1);
    cfg.preds[i + 1].push_back(i);
  }
  return cfg;
}

DataflowSolution solveDataflow(const DataflowCfg& cfg, const DataflowProblem& p) {
  const int n = cfg.numNodes();
  RAPT_ASSERT(static_cast<int>(p.gen.size()) == n && static_cast<int>(p.kill.size()) == n,
              "gen/kill size must match node count");

  DataflowSolution s;
  s.in.assign(n, BitSet(p.numFacts));
  s.out.assign(n, BitSet(p.numFacts));

  const bool fwd = p.direction == FlowDirection::Forward;
  // The set the transfer function WRITES (out for forward, in for backward)
  // starts at the lattice top: empty for a union meet (may-analysis grows),
  // full for an intersect meet (must-analysis shrinks).
  std::vector<BitSet>& results = fwd ? s.out : s.in;
  if (p.meet == MeetOp::Intersect) {
    for (BitSet& b : results) b.setAll();
  }
  BitSet boundary = p.boundary.sizeBits() == p.numFacts ? p.boundary : BitSet(p.numFacts);

  // Deterministic worklist: natural order forward, reverse order backward
  // (both approximate the CFG's topological order for the mostly-forward
  // graphs this repo builds, so convergence takes a pass or two).
  std::deque<int> work;
  std::vector<bool> queued(static_cast<std::size_t>(n), true);
  for (int i = 0; i < n; ++i) work.push_back(fwd ? i : n - 1 - i);

  const std::vector<std::vector<int>>& inputs = fwd ? cfg.preds : cfg.succs;
  const std::vector<std::vector<int>>& outputs = fwd ? cfg.succs : cfg.preds;
  std::vector<BitSet>& meetSide = fwd ? s.in : s.out;

  BitSet acc(p.numFacts);
  while (!work.empty()) {
    const int node = work.front();
    work.pop_front();
    queued[static_cast<std::size_t>(node)] = false;
    ++s.iterations;

    // Meet over the node's inputs (boundary when it has none).
    if (inputs[node].empty()) {
      acc = boundary;
    } else {
      bool first = true;
      for (int m : inputs[node]) {
        if (first) {
          acc = results[m];
          first = false;
        } else if (p.meet == MeetOp::Union) {
          acc |= results[m];
        } else {
          acc &= results[m];
        }
      }
    }
    meetSide[node] = acc;

    // Transfer: result = gen | (meet - kill).
    acc.subtract(p.kill[node]);
    acc |= p.gen[node];
    if (acc != results[node]) {
      results[node] = acc;
      for (int m : outputs[node]) {
        if (!queued[static_cast<std::size_t>(m)]) {
          queued[static_cast<std::size_t>(m)] = true;
          work.push_back(m);
        }
      }
    }
  }
  return s;
}

}  // namespace rapt
