// Generic iterative dataflow over small CFGs.
//
// One worklist solver serves every analysis in src/analysis (and, through
// regalloc/Liveness, the Chaitin/Briggs allocator): a problem is a direction,
// a meet operator, and per-node gen/kill bitsets; the solver computes the
// maximal (union meet) or minimal (intersect meet) fixpoint of
//
//   forward:   in[n]  = MEET over preds p of out[p]      (boundary if none)
//              out[n] = gen[n] | (in[n] - kill[n])
//   backward:  out[n] = MEET over succs s of in[s]       (boundary if none)
//              in[n]  = gen[n] | (out[n] - kill[n])
//
// Nodes are whatever granularity the client picks: one per basic block for
// whole-function analyses, one per operation for loop bodies (the loop's
// iteration cycle is modeled as an explicit back edge, so loop-carried facts
// flow without any special casing).
#pragma once

#include <vector>

#include "analysis/BitSet.h"
#include "ir/Function.h"
#include "ir/Loop.h"

namespace rapt {

/// Adjacency of the graph being analyzed (successors + derived predecessors).
struct DataflowCfg {
  std::vector<std::vector<int>> succs;
  std::vector<std::vector<int>> preds;

  [[nodiscard]] int numNodes() const { return static_cast<int>(succs.size()); }

  /// One node per basic block, edges from Function::succs.
  [[nodiscard]] static DataflowCfg forFunction(const Function& fn);

  /// One node per body operation: 0 -> 1 -> ... -> n-1 -> 0. The closing back
  /// edge is the loop's iteration cycle (quasi-SSA carried semantics).
  [[nodiscard]] static DataflowCfg forLoopBody(int numOps);

  /// A straight chain 0 -> 1 -> ... -> n-1 (no back edge).
  [[nodiscard]] static DataflowCfg chain(int numOps);
};

enum class FlowDirection : std::uint8_t { Forward, Backward };
enum class MeetOp : std::uint8_t { Union, Intersect };

struct DataflowProblem {
  FlowDirection direction = FlowDirection::Forward;
  MeetOp meet = MeetOp::Union;
  int numFacts = 0;
  std::vector<BitSet> gen;   ///< per node
  std::vector<BitSet> kill;  ///< per node
  /// Value at the graph boundary: in[] of predecessor-less nodes (forward) or
  /// out[] of successor-less nodes (backward). Defaults to the empty set.
  BitSet boundary;
};

struct DataflowSolution {
  std::vector<BitSet> in;   ///< per node, meaning depends on direction
  std::vector<BitSet> out;
  int iterations = 0;       ///< node visits until fixpoint (observability)
};

/// Worklist solver; terminates because transfer functions are monotone over a
/// finite lattice. Deterministic: nodes are visited in a fixed order.
[[nodiscard]] DataflowSolution solveDataflow(const DataflowCfg& cfg,
                                             const DataflowProblem& problem);

}  // namespace rapt
