#include "analysis/Diagnostics.h"

#include <sstream>

#include "ir/Printer.h"
#include "support/Assert.h"

namespace rapt {

const char* diagSeverityName(DiagSeverity s) {
  switch (s) {
    case DiagSeverity::Note: return "note";
    case DiagSeverity::Warning: return "warning";
    case DiagSeverity::Error: return "error";
  }
  RAPT_UNREACHABLE("bad severity");
}

const char* diagCodeName(DiagCode c) {
  switch (c) {
    case DiagCode::ParseError: return "parse-error";
    case DiagCode::TypeMismatch: return "type-mismatch";
    case DiagCode::UnknownArray: return "unknown-array";
    case DiagCode::RedefinedRegister: return "redefined-register";
    case DiagCode::BadInduction: return "bad-induction";
    case DiagCode::InvalidCfg: return "invalid-cfg";
    case DiagCode::UseBeforeDef: return "use-before-def";
    case DiagCode::DeadDef: return "dead-def";
    case DiagCode::UnreachableCode: return "unreachable-code";
    case DiagCode::UnusedLivein: return "unused-livein";
    case DiagCode::CertifyDivergence: return "certify-divergence";
    case DiagCode::CertifyResidence: return "certify-residence";
    case DiagCode::CertifyUninitRead: return "certify-uninit-read";
    case DiagCode::CertifyLiveOutClobber: return "certify-liveout-clobber";
    case DiagCode::kCount_: break;
  }
  RAPT_UNREACHABLE("bad diagnostic code");
}

int AnalysisReport::errorCount() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == DiagSeverity::Error) ++n;
  return n;
}

int AnalysisReport::warningCount() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == DiagSeverity::Warning) ++n;
  return n;
}

std::string AnalysisReport::firstError() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::Error) {
      std::ostringstream os;
      if (d.block >= 0) os << "block " << d.block << " ";
      if (d.op >= 0) os << "op " << d.op << " ";
      os << "[" << diagCodeName(d.code) << "] " << d.message;
      return os.str();
    }
  }
  return {};
}

Diagnostic& AnalysisReport::add(DiagSeverity sev, DiagCode code, std::string message) {
  Diagnostic d;
  d.severity = sev;
  d.code = code;
  d.message = std::move(message);
  diagnostics.push_back(std::move(d));
  return diagnostics.back();
}

std::string formatDiagnostic(const Diagnostic& d, const std::string& unitName) {
  std::ostringstream os;
  os << unitName << ": ";
  if (d.block >= 0) os << "block " << d.block << ": ";
  if (d.op >= 0) os << "op " << d.op << ": ";
  os << diagSeverityName(d.severity) << " [" << diagCodeName(d.code) << "] "
     << d.message;
  if (!d.hint.empty()) os << " (hint: " << d.hint << ")";
  return os.str();
}

Json diagnosticsJson(const std::vector<Diagnostic>& diagnostics) {
  Json arr = Json::array();
  for (const Diagnostic& d : diagnostics) {
    Json j = Json::object();
    j["severity"] = diagSeverityName(d.severity);
    j["code"] = diagCodeName(d.code);
    j["block"] = d.block;
    j["op"] = d.op;
    j["reg"] = d.reg.isValid() ? Json(regName(d.reg)) : Json();
    j["message"] = d.message;
    j["hint"] = d.hint;
    arr.push(std::move(j));
  }
  return arr;
}

}  // namespace rapt
