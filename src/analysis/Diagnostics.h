// Structured diagnostics produced by the static IR analyses.
//
// Every finding carries a machine-readable code, a severity, the location
// (block/op index, register), a human message, and a fix hint. Errors mean
// the unit is malformed and the pipeline must not attempt to compile it
// (CompilerPipeline/FunctionPipeline gate on them by default); warnings are
// advisory (dead code, implicit zero live-ins) and never block compilation.
// `tools/rapt-lint` renders reports as text or JSON (docs/analysis.md).
#pragma once

#include <string>
#include <vector>

#include "ir/Reg.h"
#include "support/Json.h"

namespace rapt {

enum class DiagSeverity : std::uint8_t { Note, Warning, Error };

enum class DiagCode : std::uint8_t {
  ParseError,          ///< file-level: the text did not parse
  TypeMismatch,        ///< operand/result register class or array element type
  UnknownArray,        ///< memory op references an undeclared array
  RedefinedRegister,   ///< second definition within a single-assignment region
  BadInduction,        ///< induction register class/update malformed
  InvalidCfg,          ///< successor edge out of range
  UseBeforeDef,        ///< read of a register no definition (or initializer) reaches
  DeadDef,             ///< definition whose value is never read
  UnreachableCode,     ///< block that cannot execute
  UnusedLivein,        ///< livein initializer that no read consumes
  // Static translation certifier findings (src/certify, docs/certification.md).
  CertifyDivergence,     ///< emitted stream computes a different value than the
                         ///< sequential reference (symbolic term mismatch)
  CertifyResidence,      ///< operand read in a bank the value has not reached
                         ///< by the read cycle (copy chain broken or too late)
  CertifyUninitRead,     ///< stream reads a register no initializer or landed
                         ///< write reaches
  CertifyLiveOutClobber, ///< physical register holding a live-out final value
                         ///< is overwritten after that value lands (legal
                         ///< reuse, but invisible to concrete re-validation)
  kCount_,
};

/// Number of diagnostic codes; wire decoding (pipeline/WorkerProtocol.cpp)
/// range-checks against this instead of a hardcoded literal.
constexpr int kNumDiagCodes = static_cast<int>(DiagCode::kCount_);

[[nodiscard]] const char* diagSeverityName(DiagSeverity s);
[[nodiscard]] const char* diagCodeName(DiagCode c);  ///< kebab-case, stable

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::Error;
  DiagCode code = DiagCode::TypeMismatch;
  int block = -1;  ///< function block index; -1 for loops and unit-level findings
  int op = -1;     ///< op index within the body/block; -1 for unit-level findings
  VirtReg reg;     ///< invalid when the finding is not register-related
  std::string message;
  std::string hint;  ///< suggested fix; may be empty
};

/// The outcome of analyzing one unit (loop or function).
class AnalysisReport {
 public:
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] int errorCount() const;
  [[nodiscard]] int warningCount() const;
  [[nodiscard]] bool ok() const { return errorCount() == 0; }

  /// Message of the first error ("" when ok()); the pipeline surfaces it.
  [[nodiscard]] std::string firstError() const;

  Diagnostic& add(DiagSeverity sev, DiagCode code, std::string message);
};

/// One-line rendering: "<unit>: op 3: error [use-before-def] ... (hint: ...)".
[[nodiscard]] std::string formatDiagnostic(const Diagnostic& d,
                                           const std::string& unitName);

/// JSON array of diagnostic objects, schema documented in docs/analysis.md.
[[nodiscard]] Json diagnosticsJson(const std::vector<Diagnostic>& diagnostics);

}  // namespace rapt
