#include "analysis/LintDriver.h"

#include <cctype>
#include <sstream>

#include "ir/Parser.h"

namespace rapt {
namespace {

/// First keyword of the text, skipping whitespace and `#` comments.
std::string firstKeyword(std::string_view text) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const char c = text[pos];
    if (c == '#') {
      while (pos < text.size() && text[pos] != '\n') ++pos;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
    } else {
      break;
    }
  }
  std::size_t end = pos;
  while (end < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[end])) || text[end] == '_'))
    ++end;
  return std::string(text.substr(pos, end - pos));
}

void tally(LintFileResult& file) {
  for (const LintUnitResult& u : file.units) {
    file.errors += u.report.errorCount();
    file.warnings += u.report.warningCount();
  }
}

}  // namespace

LintFileResult lintSource(const std::string& fileLabel, std::string_view text) {
  LintFileResult result;
  result.file = fileLabel;
  try {
    if (firstKeyword(text) == "function") {
      for (const Function& fn : parseFunctions(text)) {
        LintUnitResult u;
        u.name = fn.name;
        u.kind = "function";
        u.report = analyzeFunction(fn);
        result.units.push_back(std::move(u));
      }
    } else {
      for (const Loop& loop : parseLoops(text, ParseValidation::Lenient)) {
        LintUnitResult u;
        u.name = loop.name;
        u.kind = "loop";
        u.report = analyzeLoop(loop);
        result.units.push_back(std::move(u));
      }
    }
  } catch (const ParseError& e) {
    LintUnitResult u;
    u.name = fileLabel;
    u.kind = "file";
    u.report.add(DiagSeverity::Error, DiagCode::ParseError, e.what());
    result.units.push_back(std::move(u));
  }
  tally(result);
  return result;
}

Json lintJson(std::span<const LintFileResult> files) {
  Json doc = Json::object();
  Json arr = Json::array();
  int errors = 0;
  int warnings = 0;
  for (const LintFileResult& f : files) {
    Json jf = Json::object();
    jf["file"] = f.file;
    Json units = Json::array();
    for (const LintUnitResult& u : f.units) {
      Json ju = Json::object();
      ju["name"] = u.name;
      ju["kind"] = u.kind;
      ju["errors"] = u.report.errorCount();
      ju["warnings"] = u.report.warningCount();
      ju["diagnostics"] = diagnosticsJson(u.report.diagnostics);
      units.push(std::move(ju));
    }
    jf["units"] = std::move(units);
    jf["errors"] = f.errors;
    jf["warnings"] = f.warnings;
    arr.push(std::move(jf));
    errors += f.errors;
    warnings += f.warnings;
  }
  doc["files"] = std::move(arr);
  doc["errors"] = errors;
  doc["warnings"] = warnings;
  return doc;
}

std::string lintText(const LintFileResult& file) {
  std::ostringstream os;
  for (const LintUnitResult& u : file.units) {
    for (const Diagnostic& d : u.report.diagnostics)
      os << formatDiagnostic(d, file.file + ": " + u.kind + " " + u.name) << "\n";
  }
  return os.str();
}

}  // namespace rapt
