// File-level linting: parse + analyze + render, shared by tools/rapt-lint and
// the golden-diagnostic tests so both see byte-identical output.
//
// A source file holds either loops or functions (sniffed from the first
// keyword). Loops are parsed LENIENTLY — structural problems ir::validate()
// would throw on become structured diagnostics instead, which is the whole
// point of a linter. A file that does not even tokenize yields a single
// parse-error diagnostic.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/Linter.h"
#include "support/Json.h"

namespace rapt {

struct LintUnitResult {
  std::string name;        ///< loop/function name
  std::string kind;        ///< "loop" or "function"
  AnalysisReport report;
};

struct LintFileResult {
  std::string file;        ///< label used in rendered diagnostics
  std::vector<LintUnitResult> units;
  int errors = 0;
  int warnings = 0;
};

/// Parses and analyzes one source text.
[[nodiscard]] LintFileResult lintSource(const std::string& fileLabel,
                                        std::string_view text);

/// The `rapt-lint --json` document: per-file, per-unit diagnostic arrays plus
/// total error/warning counts (schema in docs/analysis.md).
[[nodiscard]] Json lintJson(std::span<const LintFileResult> files);

/// Human-readable rendering, one line per diagnostic.
[[nodiscard]] std::string lintText(const LintFileResult& file);

}  // namespace rapt
