#include "analysis/Linter.h"

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "analysis/Analyses.h"
#include "ir/Opcode.h"
#include "ir/Printer.h"

namespace rapt {
namespace {

std::string clsName(RegClass rc) { return regClassName(rc); }

/// Structural audit of one operation against its opcode signature and the
/// unit's array table. Returns false when the op is too broken for the
/// dataflow layer (invalid opcode / invalid operand registers).
bool checkOperation(const Operation& o, const std::vector<ArrayDecl>& arrays,
                    int block, int opIdx, AnalysisReport& report) {
  auto add = [&](DiagCode code, std::string msg) -> Diagnostic& {
    Diagnostic& d = report.add(DiagSeverity::Error, code, std::move(msg));
    d.block = block;
    d.op = opIdx;
    return d;
  };

  if (o.op >= Opcode::kCount_) {
    add(DiagCode::TypeMismatch, "invalid opcode");
    return false;
  }
  const OpcodeInfo& info = o.info();
  const std::string name(info.name);
  bool sound = true;

  if (info.hasDef != o.def.isValid()) {
    Diagnostic& d = add(DiagCode::TypeMismatch,
                        info.hasDef ? "opcode '" + name + "' requires a result register"
                                    : "opcode '" + name + "' produces no result");
    d.hint = info.hasDef ? "write `reg = " + name + " ...`" : "drop the destination";
  } else if (info.hasDef && o.def.cls() != info.defCls) {
    Diagnostic& d = add(DiagCode::TypeMismatch,
                        "result of '" + name + "' must be a " + clsName(info.defCls) +
                            " register, got " + regName(o.def));
    d.reg = o.def;
    d.hint = "use " + std::string(info.defCls == RegClass::Int ? "an i" : "an f") +
             "N register as the destination";
  }
  for (int s = 0; s < info.numSrcs; ++s) {
    if (!o.src[s].isValid()) {
      add(DiagCode::TypeMismatch,
          "missing source operand " + std::to_string(s) + " of '" + name + "'");
      sound = false;
    } else if (o.src[s].cls() != info.srcCls[s]) {
      Diagnostic& d =
          add(DiagCode::TypeMismatch, "operand " + std::to_string(s) + " of '" + name +
                                          "' must be a " + clsName(info.srcCls[s]) +
                                          " register, got " + regName(o.src[s]));
      d.reg = o.src[s];
    }
  }
  if (isMemory(o.op)) {
    if (o.array == kNoArray || o.array >= arrays.size()) {
      add(DiagCode::UnknownArray, "memory operation references an undeclared array")
          .hint = "declare it with `array name[size] int|flt`";
    } else {
      const bool fltOp = opcodeInfo(o.op).kind == OpKind::Load
                             ? info.defCls == RegClass::Flt
                             : info.srcCls[1] == RegClass::Flt;
      if (arrays[o.array].isFloat != fltOp) {
        Diagnostic& d = add(
            DiagCode::TypeMismatch,
            "'" + name + "' element type does not match array '" + arrays[o.array].name +
                "' (" + (arrays[o.array].isFloat ? "flt" : "int") + ")");
        d.hint = arrays[o.array].isFloat ? "use fload/fstore" : "use iload/istore";
      }
    }
  }
  return sound;
}

}  // namespace

AnalysisReport analyzeLoop(const Loop& loop) {
  AnalysisReport report;

  // ---- Layer 1: structural. ----
  bool sound = true;
  std::unordered_map<std::uint32_t, int> defAt;  // reg key -> defining op
  for (int i = 0; i < loop.size(); ++i) {
    const Operation& o = loop.body[i];
    if (!checkOperation(o, loop.arrays, /*block=*/-1, i, report)) {
      sound = false;
      continue;
    }
    if (o.def.isValid()) {
      auto [it, inserted] = defAt.try_emplace(o.def.key(), i);
      if (!inserted) {
        Diagnostic& d = report.add(
            DiagSeverity::Error, DiagCode::RedefinedRegister,
            regName(o.def) + " already defined at op " + std::to_string(it->second) +
                "; loop bodies assign each register at most once");
        d.op = i;
        d.reg = o.def;
        d.hint = "rename the second definition";
      }
    }
  }
  if (loop.induction.isValid()) {
    if (loop.induction.cls() != RegClass::Int) {
      Diagnostic& d = report.add(DiagSeverity::Error, DiagCode::BadInduction,
                                 "induction register must be an integer register");
      d.reg = loop.induction;
    } else if (auto it = defAt.find(loop.induction.key()); it == defAt.end()) {
      Diagnostic& d = report.add(DiagSeverity::Error, DiagCode::BadInduction,
                                 "induction register " + regName(loop.induction) +
                                     " is never updated in the body");
      d.reg = loop.induction;
      d.hint = "append `" + regName(loop.induction) + " = iaddi " +
               regName(loop.induction) + ", 1`";
    } else {
      const Operation& upd = loop.body[static_cast<std::size_t>(it->second)];
      if (upd.op != Opcode::IAddImm || upd.src[0] != loop.induction || upd.imm != 1) {
        Diagnostic& d =
            report.add(DiagSeverity::Error, DiagCode::BadInduction,
                       "induction update must be `iaddi iv, iv, 1` so uses read the "
                       "0-based iteration number");
        d.op = it->second;
        d.reg = loop.induction;
      }
    }
  }
  if (!sound || !report.ok()) return report;

  // ---- Layer 2: dataflow (structurally sound loops only). ----
  const LoopLiveness live = computeLoopLiveness(loop);

  // Dead definitions: the value never reaches any read, not even across the
  // back edge (liveness over the cyclic body chain).
  for (int i = 0; i < loop.size(); ++i) {
    const VirtReg def = loop.body[i].def;
    if (!def.isValid()) continue;
    if (!live.liveOut[static_cast<std::size_t>(i)].test(static_cast<int>(def.key()))) {
      Diagnostic& d = report.add(DiagSeverity::Warning, DiagCode::DeadDef,
                                 regName(def) + " is defined but never read");
      d.op = i;
      d.reg = def;
      d.hint = "delete the operation or consume its result";
    }
  }

  // Reads that resolve to an implicit zero live-in: invariants without a
  // `livein` entry, and loop-carried uses whose iteration-0 value has no
  // initializer. Legal (registers default to zero) but usually an oversight.
  std::unordered_set<std::uint32_t> hasLivein;
  for (const LiveInValue& lv : loop.liveInValues)
    if (lv.reg.isValid()) hasLivein.insert(lv.reg.key());
  std::unordered_set<std::uint32_t> reported;
  for (int i = 0; i < loop.size(); ++i) {
    for (VirtReg r : loop.body[i].srcs()) {
      if (r == loop.induction || hasLivein.count(r.key()) != 0 ||
          reported.count(r.key()) != 0)
        continue;
      const auto it = defAt.find(r.key());
      const bool invariant = it == defAt.end();
      const bool carried = !invariant && it->second >= i;
      if (!invariant && !carried) continue;
      reported.insert(r.key());
      Diagnostic& d = report.add(
          DiagSeverity::Warning, DiagCode::UseBeforeDef,
          invariant
              ? regName(r) + " is read but never defined in the body and has no "
                             "livein initializer; it reads zero"
              : "loop-carried use of " + regName(r) +
                    " reads zero on iteration 0 (no livein initializer)");
      d.op = i;
      d.reg = r;
      d.hint = "add `livein " + regName(r) + " = <value>`";
    }
  }

  // Livein entries nothing consumes (plus duplicates).
  std::unordered_set<std::uint32_t> seenLivein;
  for (const LiveInValue& lv : loop.liveInValues) {
    if (!lv.reg.isValid()) continue;
    if (!seenLivein.insert(lv.reg.key()).second) {
      Diagnostic& d = report.add(DiagSeverity::Warning, DiagCode::UnusedLivein,
                                 "duplicate livein entry for " + regName(lv.reg));
      d.reg = lv.reg;
      continue;
    }
    if (lv.reg == loop.induction) continue;  // sets the starting index
    bool consumed = false;
    for (int i = 0; i < loop.size() && !consumed; ++i) {
      if (loop.body[i].uses(lv.reg)) {
        const auto it = defAt.find(lv.reg.key());
        consumed = it == defAt.end() || it->second >= i;  // invariant or carried
      }
    }
    if (!consumed) {
      Diagnostic& d = report.add(
          DiagSeverity::Warning, DiagCode::UnusedLivein,
          "livein initializer for " + regName(lv.reg) +
              " is never consumed (no invariant or iteration-0 read)");
      d.reg = lv.reg;
      d.hint = "remove the livein entry";
    }
  }
  return report;
}

AnalysisReport analyzeFunction(const Function& fn) {
  AnalysisReport report;

  // ---- Layer 1: structural. ----
  bool sound = true;
  for (int b = 0; b < fn.numBlocks(); ++b) {
    const BasicBlock& bb = fn.blocks[b];
    for (int s : bb.succs) {
      if (s < 0 || s >= fn.numBlocks()) {
        Diagnostic& d = report.add(DiagSeverity::Error, DiagCode::InvalidCfg,
                                   "successor index " + std::to_string(s) +
                                       " is outside the function's " +
                                       std::to_string(fn.numBlocks()) + " blocks");
        d.block = b;
        sound = false;
      }
    }
    std::unordered_map<std::uint32_t, int> defAt;  // block-local single assignment
    for (int i = 0; i < static_cast<int>(bb.ops.size()); ++i) {
      const Operation& o = bb.ops[i];
      if (!checkOperation(o, fn.arrays, b, i, report)) {
        sound = false;
        continue;
      }
      if (o.def.isValid()) {
        auto [it, inserted] = defAt.try_emplace(o.def.key(), i);
        if (!inserted) {
          Diagnostic& d = report.add(
              DiagSeverity::Error, DiagCode::RedefinedRegister,
              regName(o.def) + " already defined at op " + std::to_string(it->second) +
                  " of this block; blocks assign each register at most once");
          d.block = b;
          d.op = i;
          d.reg = o.def;
          d.hint = "rename the second definition";
        }
      }
    }
  }
  if (!sound || !report.ok()) return report;

  // ---- Layer 2: dataflow. ----
  const std::vector<bool> reachable = reachableBlocks(fn);
  for (int b = 0; b < fn.numBlocks(); ++b) {
    if (reachable[static_cast<std::size_t>(b)]) continue;
    Diagnostic& d = report.add(DiagSeverity::Warning, DiagCode::UnreachableCode,
                               "block " + std::to_string(b) +
                                   " is unreachable from the entry block");
    d.block = b;
    d.hint = "delete it or add an edge from a reachable block";
  }

  const int numKeys = numRegKeys(fn);
  BitSet definedSomewhere(numKeys);
  for (const BasicBlock& bb : fn.blocks)
    for (const Operation& o : bb.ops)
      if (o.def.isValid()) definedSomewhere.set(static_cast<int>(o.def.key()));

  const FunctionInitState init = computeFunctionInitState(fn);
  const FunctionLiveness live = computeFunctionLiveness(fn);

  std::unordered_set<std::uint32_t> reportedUse;
  for (int b = 0; b < fn.numBlocks(); ++b) {
    if (!reachable[static_cast<std::size_t>(b)]) continue;  // flagged above
    const BasicBlock& bb = fn.blocks[b];

    // Use-before-def, forward walk. Registers with no definition anywhere are
    // function inputs (the analogue of loop invariants) and are not flagged.
    BitSet may = init.mayIn[static_cast<std::size_t>(b)];
    BitSet must = init.mustIn[static_cast<std::size_t>(b)];
    for (int i = 0; i < static_cast<int>(bb.ops.size()); ++i) {
      const Operation& o = bb.ops[i];
      for (VirtReg r : o.srcs()) {
        const int k = static_cast<int>(r.key());
        if (!definedSomewhere.test(k) || reportedUse.count(r.key()) != 0) continue;
        if (!may.test(k)) {
          Diagnostic& d = report.add(
              DiagSeverity::Error, DiagCode::UseBeforeDef,
              regName(r) + " is read before any of its definitions can execute");
          d.block = b;
          d.op = i;
          d.reg = r;
          d.hint = "move the definition to a block that precedes this use";
          reportedUse.insert(r.key());
        } else if (!must.test(k)) {
          Diagnostic& d = report.add(DiagSeverity::Warning, DiagCode::UseBeforeDef,
                                     regName(r) + " may be read uninitialized: no "
                                                  "definition reaches it on every path");
          d.block = b;
          d.op = i;
          d.reg = r;
          d.hint = "define it on all paths (e.g. in the entry block)";
          reportedUse.insert(r.key());
        }
      }
      if (o.def.isValid()) {
        may.set(static_cast<int>(o.def.key()));
        must.set(static_cast<int>(o.def.key()));
      }
    }

    // Dead definitions, backward walk from the block's live-out.
    BitSet liveNow = live.liveOut[static_cast<std::size_t>(b)];
    for (int i = static_cast<int>(bb.ops.size()) - 1; i >= 0; --i) {
      const Operation& o = bb.ops[i];
      if (o.def.isValid()) {
        const int k = static_cast<int>(o.def.key());
        if (!liveNow.test(k)) {
          Diagnostic& d = report.add(DiagSeverity::Warning, DiagCode::DeadDef,
                                     regName(o.def) + " is defined but never read");
          d.block = b;
          d.op = i;
          d.reg = o.def;
          d.hint = "delete the operation or consume its result";
        }
        liveNow.reset(k);
      }
      for (VirtReg s : o.srcs()) liveNow.set(static_cast<int>(s.key()));
    }
  }
  return report;
}

}  // namespace rapt
