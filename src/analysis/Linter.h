// The semantic gate: whole-unit static analysis producing diagnostics.
//
// analyzeLoop/analyzeFunction run two layers:
//
//   1. structural checks (operand counts and classes, array references,
//      single assignment, induction form, CFG edge ranges) — error severity,
//      a superset of ir::validate() with locations and fix hints;
//   2. dataflow-backed checks on structurally sound units (use-before-def,
//      dead definitions, unreachable blocks, unconsumed liveins) via the
//      worklist analyses of analysis/Analyses.h.
//
// Errors mean "do not compile this" and abort the pipeline before scheduling;
// warnings are advisory. The taxonomy and the loop-vs-function severity
// rationale (a loop read before its definition is legal carried semantics,
// a function read no definition reaches is a bug) live in docs/analysis.md.
#pragma once

#include "analysis/Diagnostics.h"
#include "ir/Function.h"
#include "ir/Loop.h"

namespace rapt {

[[nodiscard]] AnalysisReport analyzeLoop(const Loop& loop);
[[nodiscard]] AnalysisReport analyzeFunction(const Function& fn);

}  // namespace rapt
