#include "certify/Certifier.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "certify/Term.h"
#include "ir/Printer.h"
#include "regalloc/PhysicalRewrite.h"

namespace rapt {

namespace {

constexpr int kMaxDiagnosticsPerKind = 8;

std::uint64_t availKey(TermId t, int bank) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(t)) << 8) |
         static_cast<std::uint32_t>(bank);
}

/// Where/when the stream first computed a term (for diagnostics).
struct Producer {
  std::int64_t cycle = -1;
  int iteration = -1;
  int bodyIndex = -1;
};

struct Diags {
  std::vector<Diagnostic>* out;
  int residence = 0;
  int uninit = 0;
  int divergence = 0;
  int clobber = 0;

  Diagnostic* add(int& count, DiagSeverity sev, DiagCode code) {
    if (count++ >= kMaxDiagnosticsPerKind) return nullptr;
    Diagnostic d;
    d.severity = sev;
    d.code = code;
    out->push_back(std::move(d));
    return &out->back();
  }
};

/// Symbolic sequential execution of the original loop: the oracle terms.
struct Reference {
  std::unordered_map<std::uint32_t, TermId> regs;
  std::vector<TermId> heaps;
};

Reference runSymbolicReference(const Loop& loop, std::int64_t trip,
                               std::int64_t inductionInit, TermArena& arena) {
  Reference ref;
  ref.heaps.reserve(loop.arrays.size());
  for (ArrayId a = 0; a < loop.arrays.size(); ++a)
    ref.heaps.push_back(arena.arrayInit(a));

  auto read = [&](VirtReg r) -> TermId {
    auto it = ref.regs.find(r.key());
    if (it != ref.regs.end()) return it->second;
    const TermId t = (loop.induction.isValid() && r == loop.induction)
                         ? arena.intConst(inductionInit)
                         : arena.initReg(r);
    ref.regs.emplace(r.key(), t);
    return t;
  };

  for (std::int64_t i = 0; i < trip; ++i) {
    for (const Operation& o : loop.body) {
      switch (o.info().kind) {
        case OpKind::Load: {
          const TermId idx = arena.addImm(read(o.src[0]), o.imm);
          ref.regs[o.def.key()] = arena.select(ref.heaps[o.array], idx);
          break;
        }
        case OpKind::Store: {
          const TermId idx = arena.addImm(read(o.src[0]), o.imm);
          const TermId val = read(o.src[1]);
          ref.heaps[o.array] = arena.store(ref.heaps[o.array], idx, val);
          break;
        }
        default: {
          const TermId s0 = o.numSrcs() > 0 ? read(o.src[0]) : kNoTerm;
          const TermId s1 = o.numSrcs() > 1 ? read(o.src[1]) : kNoTerm;
          ref.regs[o.def.key()] = arena.apply(o, s0, s1);
          break;
        }
      }
    }
  }
  return ref;
}

/// Symbolic execution of the emitted stream under the simulator's landing
/// discipline, with the cross-iteration residence check folded in.
struct StreamExec {
  const Loop& original;
  const ClusteredLoop& clustered;
  const PipelinedCode& code;
  const MachineDesc& machine;
  CertifyLayer layer;
  TermArena& arena;
  Diags& diags;

  // Canonicalization of preheader invariant aliases back to original regs.
  std::unordered_map<std::uint32_t, VirtReg> aliasOf;
  std::int64_t inductionInit = 0;

  std::unordered_map<std::uint32_t, TermId> cur;      // name -> landed term
  std::unordered_map<std::uint32_t, TermId> v0Term;   // name -> initial term
  std::unordered_map<std::uint32_t, std::uint32_t> v0Origin;
  std::unordered_set<std::uint32_t> hasInit;          // names with nameInits
  std::vector<TermId> heaps;
  std::unordered_map<std::uint64_t, std::int64_t> avail;  // (term,bank) -> cycle
  std::unordered_map<TermId, Producer> producer;

  // Final (iteration trip-1) instance of each original body def, plus the
  // name and landing cycle it was written with (for the clobber check).
  struct FinalInstance {
    TermId term = kNoTerm;
    VirtReg name;
    std::int64_t landCycle = -1;
  };
  std::unordered_map<std::uint32_t, FinalInstance> finals;
  std::unordered_map<std::uint32_t, std::int64_t> lastLandOf;  // name -> cycle

  explicit StreamExec(const Loop& orig, const ClusteredLoop& cl,
                      const PipelinedCode& c, const MachineDesc& m,
                      CertifyLayer l, TermArena& a, Diags& d)
      : original(orig), clustered(cl), code(c), machine(m), layer(l), arena(a),
        diags(d) {
    for (const LiveInValue& lv : orig.liveInValues)
      if (orig.induction.isValid() && lv.reg == orig.induction)
        inductionInit = lv.i;
    buildAliasMap();
    for (const LiveInValue& lv : code.nameInits) hasInit.insert(lv.reg.key());
    heaps.reserve(orig.arrays.size());
    for (ArrayId a2 = 0; a2 < orig.arrays.size(); ++a2)
      heaps.push_back(arena.arrayInit(a2));
  }

  /// Initial-contents aliasing back to ORIGINAL registers. Two sources:
  /// per-cluster replicas of loop invariants (initialized in the preheader
  /// from the original — CopyInserter) and cross-bank copy destinations
  /// (whose iteration-0 carried value is the copied register's live-in).
  /// canon() follows the chain so replica-of-copy-of-original resolves.
  void buildAliasMap() {
    std::unordered_set<std::uint32_t> defined;
    for (const Operation& o : clustered.loop.body)
      if (o.def.isValid()) defined.insert(o.def.key());
    for (std::size_t j = 0; j < clustered.loop.body.size(); ++j) {
      const Operation& co = clustered.loop.body[j];
      const int oi = j < clustered.origIndexOf.size()
                         ? clustered.origIndexOf[j]
                         : -1;
      if (oi < 0) {
        if (isCopy(co.op) && co.def.isValid() && co.src[0].isValid())
          aliasOf.emplace(co.def.key(), co.src[0]);
        continue;
      }
      if (oi >= original.size()) continue;
      const Operation& oo = original.body[static_cast<std::size_t>(oi)];
      const int n = std::min(co.numSrcs(), oo.numSrcs());
      for (int s = 0; s < n; ++s) {
        const VirtReg cs = co.src[static_cast<std::size_t>(s)];
        const VirtReg os = oo.src[static_cast<std::size_t>(s)];
        if (cs != os && cs.isValid() && defined.count(cs.key()) == 0)
          aliasOf.emplace(cs.key(), os);
      }
    }
  }

  [[nodiscard]] VirtReg canon(VirtReg r) const {
    for (int hops = 0; hops < 64; ++hops) {
      auto it = aliasOf.find(r.key());
      if (it == aliasOf.end()) return r;
      r = it->second;
    }
    return r;
  }

  /// Bank a stream register lives in: intrinsic for encoded physical
  /// registers, the partition's claim for virtual names.
  [[nodiscard]] int bankOfName(VirtReg name) const {
    if (name.index() >= kPhysBase)
      return static_cast<int>((name.index() - kPhysBase) / kBankStride);
    const VirtReg orig = code.originalOf(name);
    if (!clustered.partition.isAssigned(orig)) return 0;
    return clustered.partition.bankOf(orig);
  }

  void recordAvail(TermId t, int bank, std::int64_t cycle) {
    auto [it, inserted] = avail.emplace(availKey(t, bank), cycle);
    if (!inserted && it->second > cycle) it->second = cycle;
  }

  void checkAvail(TermId t, int bank, std::int64_t cycle, const EmittedOp& eo,
                  VirtReg name) {
    if (machine.numBanks() <= 1) return;
    auto it = avail.find(availKey(t, bank));
    if (it != avail.end() && it->second <= cycle) return;
    if (Diagnostic* d = diags.add(diags.residence, DiagSeverity::Error,
                                  DiagCode::CertifyResidence)) {
      d->op = eo.bodyIndex;
      d->reg = canon(code.originalOf(name));
      std::ostringstream os;
      os << "cycle " << cycle << " iteration " << eo.iteration << ": "
         << opcodeName(eo.op.op) << " reads " << regName(name) << " in bank "
         << bank << ", but its value " << arena.str(t)
         << (it == avail.end() ? " never reaches that bank"
                               : " lands there only at cycle " +
                                     std::to_string(it->second));
      d->message = os.str();
      d->hint = "suspected layer: copy insertion (cross-bank routing)";
    }
  }

  /// The term a read of `name` observes at `cycle` (landed version, else the
  /// initial contents), with the residence and initializer checks applied.
  TermId readTerm(VirtReg name, VirtReg bodyOperand, std::int64_t cycle,
                  int bank, const EmittedOp& eo) {
    TermId t;
    if (auto it = cur.find(name.key()); it != cur.end()) {
      t = it->second;
    } else {
      // What original value do this name's INITIAL contents stand for? On the
      // virtual stream the emitter's reverse map is exact (and using it means
      // a corrupted operand cannot vouch for itself). Physical names can be
      // shared, so there the semantic operand of the source body op is the
      // claim under audit — cross-checked by the origin-consistency test
      // below.
      const VirtReg rawOrig = layer == CertifyLayer::Virtual
                                  ? code.originalOf(name)
                                  : (bodyOperand.isValid()
                                         ? bodyOperand
                                         : code.originalOf(name));
      const VirtReg orig = canon(rawOrig);
      if (auto v = v0Term.find(name.key()); v != v0Term.end()) {
        t = v->second;
        if (v0Origin[name.key()] != orig.key()) {
          // Two reads bind this register's INITIAL contents to different
          // source values: correct only for inputs where those values
          // coincide — an input-dependent stream, i.e. an allocation bug.
          if (Diagnostic* d = diags.add(diags.divergence, DiagSeverity::Error,
                                        DiagCode::CertifyDivergence)) {
            d->op = eo.bodyIndex;
            d->reg = orig;
            d->message = "initial contents of " + std::string(regName(name)) +
                         " stand for two distinct source values (" +
                         std::string(regName(VirtReg::fromKey(
                             v0Origin[name.key()]))) +
                         " and " + std::string(regName(orig)) +
                         "): read-before-write names were merged";
            d->hint = "suspected layer: register allocation";
          }
        }
      } else {
        if (hasInit.count(name.key()) != 0) {
          t = (original.induction.isValid() && orig == original.induction)
                  ? arena.intConst(inductionInit)
                  : arena.initReg(orig);
        } else {
          // No initializer reaches this read and nothing has landed: the
          // hardware would read an unrelated default. Unique leaf, so the
          // value proof fails wherever the read flows.
          t = arena.uninit(name);
          if (Diagnostic* d = diags.add(diags.uninit, DiagSeverity::Error,
                                        DiagCode::CertifyUninitRead)) {
            d->op = eo.bodyIndex;
            d->reg = orig;
            d->message = "cycle " + std::to_string(cycle) + ": " +
                         std::string(opcodeName(eo.op.op)) + " reads " +
                         std::string(regName(name)) +
                         " before any write lands and without an initial value";
            d->hint = "suspected layer: MVE renaming (wrong phase) or schedule";
          }
        }
        v0Term.emplace(name.key(), t);
        v0Origin.emplace(name.key(), orig.key());
        recordAvail(t, bankOfName(name), 0);
      }
    }
    checkAvail(t, bank, cycle, eo, name);
    return t;
  }

  void run() {
    // Landing buckets, exactly the simulator's: commit at the start of the
    // landing cycle in issue order, before that cycle's reads.
    std::size_t horizon = code.instrs.size() + 1;
    for (std::size_t c = 0; c < code.instrs.size(); ++c)
      for (const EmittedOp& eo : code.instrs[c].ops)
        horizon = std::max(horizon,
                           c + static_cast<std::size_t>(
                                   machine.lat.of(eo.op.op)) + 1);
    struct RegLand {
      std::uint32_t name;
      TermId term;
    };
    struct MemLand {
      ArrayId array;
      TermId idx;
      TermId val;
    };
    std::vector<std::vector<RegLand>> regPending(horizon);
    std::vector<std::vector<MemLand>> memPending(horizon);

    const int bodySize = clustered.loop.size();
    const std::int64_t trip = code.trip;

    for (std::size_t c = 0; c < horizon; ++c) {
      for (const RegLand& l : regPending[c]) {
        cur[l.name] = l.term;
        lastLandOf[l.name] = static_cast<std::int64_t>(c);
      }
      for (const MemLand& l : memPending[c]) {
        if (l.array < heaps.size())
          heaps[l.array] = arena.store(heaps[l.array], l.idx, l.val);
      }
      if (c >= code.instrs.size()) continue;

      for (const EmittedOp& eo : code.instrs[c].ops) {
        const bool hasBody = eo.bodyIndex >= 0 && eo.bodyIndex < bodySize;
        const Operation* body =
            hasBody ? &clustered.loop.body[static_cast<std::size_t>(eo.bodyIndex)]
                    : nullptr;
        const bool copy = isCopy(eo.op.op);
        const std::int64_t cycle = static_cast<std::int64_t>(c);

        TermId s[2] = {kNoTerm, kNoTerm};
        for (int slot = 0; slot < eo.op.numSrcs(); ++slot) {
          const VirtReg name = eo.op.src[static_cast<std::size_t>(slot)];
          const VirtReg operand =
              (body != nullptr && slot < body->numSrcs())
                  ? body->src[static_cast<std::size_t>(slot)]
                  : VirtReg{};
          // Copies read the source in ITS bank; everything else reads in the
          // issuing functional unit's cluster.
          const int bank = (copy || eo.fu < 0) ? bankOfName(name)
                                               : machine.clusterOfFu(eo.fu);
          s[slot] = readTerm(name, operand, cycle, bank, eo);
        }

        TermId result = kNoTerm;
        switch (eo.op.info().kind) {
          case OpKind::Load: {
            const TermId idx = arena.addImm(s[0], eo.op.imm);
            result = eo.op.array < heaps.size()
                         ? arena.select(heaps[eo.op.array], idx)
                         : arena.uninit(eo.op.def);
            break;
          }
          case OpKind::Store: {
            const TermId idx = arena.addImm(s[0], eo.op.imm);
            if (eo.op.array < heaps.size())
              memPending[c + static_cast<std::size_t>(machine.lat.of(eo.op.op))]
                  .push_back({eo.op.array, idx, s[1]});
            break;
          }
          default:
            result = arena.apply(eo.op, s[0], s[1]);
            break;
        }

        if (eo.op.hasDef() && result != kNoTerm) {
          const std::int64_t land =
              cycle + machine.lat.of(eo.op.op);
          regPending[static_cast<std::size_t>(land)].push_back(
              {eo.op.def.key(), result});
          recordAvail(result, bankOfName(eo.op.def), land);
          producer.try_emplace(result,
                               Producer{cycle, eo.iteration, eo.bodyIndex});
          if (body != nullptr && body->def.isValid() &&
              eo.iteration == trip - 1) {
            finals[body->def.key()] = {result, eo.op.def, land};
          }
        }
      }
    }
  }

  /// Physical layer only: a later landing on the register holding a live-out
  /// final value destroys it before anything re-reads the register file —
  /// legal when the live range ended, but exactly the state concrete
  /// re-validation used to skip, so it is surfaced as a warning.
  void checkLiveOutClobbers() {
    if (layer != CertifyLayer::Physical) return;
    for (const Operation& o : original.body) {
      if (!o.def.isValid()) continue;
      auto it = finals.find(o.def.key());
      if (it == finals.end()) continue;
      auto land = lastLandOf.find(it->second.name.key());
      if (land == lastLandOf.end() || land->second <= it->second.landCycle)
        continue;
      if (Diagnostic* d = diags.add(diags.clobber, DiagSeverity::Warning,
                                    DiagCode::CertifyLiveOutClobber)) {
        d->reg = o.def;
        d->message = "final value of " + std::string(regName(o.def)) +
                     " lands in " + std::string(regName(it->second.name)) +
                     " at cycle " + std::to_string(it->second.landCycle) +
                     " but that register is overwritten at cycle " +
                     std::to_string(land->second) +
                     " (reuse after last read; invisible to concrete "
                     "register-file comparison)";
        d->hint = "layer: register allocation";
      }
    }
  }
};

const char* suspectedLayer(const TermArena& arena, const TermDivergence& div,
                           CertifyLayer layer) {
  if (layer == CertifyLayer::Physical) return "register allocation";
  if (div.ref == kNoTerm || div.got == kNoTerm) return "schedule/emission";
  const TermKind rk = arena.node(div.ref).kind;
  const TermKind gk = arena.node(div.got).kind;
  if (gk == TermKind::Uninit)
    return "MVE renaming (uninitialized phase read)";
  if (rk == TermKind::InitReg && gk == TermKind::InitReg)
    return "MVE renaming or copy routing (wrong value instance)";
  if (rk == TermKind::Select || gk == TermKind::Select || rk == TermKind::Store ||
      gk == TermKind::Store || rk == TermKind::ArrayInit ||
      gk == TermKind::ArrayInit)
    return "schedule (memory order)";
  return "schedule/emission";
}

void reportDivergence(TermArena& arena, Diags& diags, CertifyLayer layer,
                      const std::unordered_map<TermId, Producer>& producer,
                      TermId want, TermId got, const std::string& what,
                      VirtReg reg) {
  const TermDivergence div = firstDivergence(arena, want, got);
  Diagnostic* d = diags.add(diags.divergence, DiagSeverity::Error,
                            DiagCode::CertifyDivergence);
  if (d == nullptr) return;
  d->reg = reg;
  std::ostringstream os;
  os << what << " diverges from the sequential reference: stream computes "
     << arena.str(got) << " where the reference expects " << arena.str(want);
  if (div.ref != kNoTerm || div.got != kNoTerm) {
    os << "; first divergent node: got " << arena.str(div.got, 2)
       << ", want " << arena.str(div.ref, 2);
    if (auto it = producer.find(div.got); it != producer.end()) {
      d->op = it->second.bodyIndex;
      os << " (produced at cycle " << it->second.cycle << ", iteration "
         << it->second.iteration << ")";
    }
  }
  os << "; suspected layer: "
     << suspectedLayer(arena, div, layer);
  d->message = os.str();
}

}  // namespace

int CertifyReport::errorCount() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == DiagSeverity::Error) ++n;
  return n;
}

std::string CertifyReport::firstError() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::Error) {
      std::ostringstream os;
      if (d.op >= 0) os << "op " << d.op << " ";
      os << "[" << diagCodeName(d.code) << "] " << d.message;
      return os.str();
    }
  }
  return {};
}

void CertifyReport::merge(CertifyReport&& o) {
  for (Diagnostic& d : o.diagnostics) diagnostics.push_back(std::move(d));
  certifiedValues += o.certifiedValues;
}

CertifyReport certifyStream(const Loop& original, const ClusteredLoop& clustered,
                            const PipelinedCode& code, const MachineDesc& machine,
                            CertifyLayer layer) {
  CertifyReport rep;
  Diags diags;
  diags.out = &rep.diagnostics;
  TermArena arena;

  StreamExec exec(original, clustered, code, machine, layer, arena, diags);
  const Reference ref = runSymbolicReference(original, code.trip,
                                             exec.inductionInit, arena);
  exec.run();
  exec.checkLiveOutClobbers();

  // Matcher: every array and every original register final must be the
  // identical term.
  for (ArrayId a = 0; a < original.arrays.size(); ++a) {
    if (ref.heaps[a] == exec.heaps[a]) {
      ++rep.certifiedValues;
    } else {
      reportDivergence(arena, diags, layer, exec.producer, ref.heaps[a],
                       exec.heaps[a], "array " + original.arrays[a].name,
                       VirtReg{});
    }
  }
  for (const Operation& o : original.body) {
    if (!o.def.isValid()) continue;
    const auto want = ref.regs.find(o.def.key());
    if (want == ref.regs.end()) continue;  // trip == 0: nothing to certify
    const auto got = exec.finals.find(o.def.key());
    if (got == exec.finals.end()) {
      if (Diagnostic* d = diags.add(diags.divergence, DiagSeverity::Error,
                                    DiagCode::CertifyDivergence)) {
        d->reg = o.def;
        d->message = "stream never computes the final (iteration " +
                     std::to_string(code.trip - 1) + ") instance of " +
                     std::string(regName(o.def)) +
                     "; suspected layer: schedule/emission (dropped op or "
                     "epilogue off-by-one)";
      }
      continue;
    }
    if (want->second == got->second.term) {
      ++rep.certifiedValues;
    } else {
      reportDivergence(arena, diags, layer, exec.producer, want->second,
                       got->second.term,
                       "register " + std::string(regName(o.def)), o.def);
    }
  }
  return rep;
}

}  // namespace rapt
