// Static translation certifier (docs/certification.md).
//
// Proves, with no test inputs, that an emitted pipelined stream computes the
// same values as the original sequential loop: both are executed SYMBOLICALLY
// over one hash-consed term arena (certify/Term.h) — initial registers and
// array contents are free symbols, the induction variable is its live-in
// basis — and every array plus the final value of every register the
// original body defines must intern to the identical term. Because the
// pipeline's rewrites only reorder, rename, and route values through
// transparent copies, term identity is exactly translation correctness; the
// certificate holds for ALL register/array inputs, not just the trips the
// simulator happened to run (the trip count itself is the emitted stream's
// concrete window, prologue + kernel iterations + epilogue).
//
// On top of the value proof, the stream walk re-derives bank residence
// ACROSS copy chains: every operand read must consume a term that has
// reached the reading bank by the read cycle (initial values live in their
// partition bank from cycle 0; each landing publishes its term in the
// destination register's bank). This subsumes PartitionVerifier's per-op
// operand check with a cross-cycle, cross-copy one.
//
// Divergences are reported as structured Diagnostics (src/analysis) pointing
// at the first divergent term node, its producing stream op, and the
// suspected rewrite layer (schedule / MVE / copy-insertion / allocation).
#pragma once

#include <string>
#include <vector>

#include "analysis/Diagnostics.h"
#include "machine/MachineDesc.h"
#include "partition/CopyInserter.h"
#include "sched/PipelinedCode.h"

namespace rapt {

/// Which rewrite layer the certified stream represents: Virtual certifies
/// scheduling + MVE + copy insertion on MVE names; Physical certifies the
/// register-allocated stream (reuse, clobbers, initializer collisions).
enum class CertifyLayer : std::uint8_t { Virtual, Physical };

[[nodiscard]] constexpr const char* certifyLayerName(CertifyLayer l) {
  return l == CertifyLayer::Virtual ? "virtual" : "physical";
}

struct CertifyReport {
  std::vector<Diagnostic> diagnostics;
  /// Register finals + arrays proven value-equal to the reference.
  std::int64_t certifiedValues = 0;

  [[nodiscard]] int errorCount() const;
  [[nodiscard]] bool ok() const { return errorCount() == 0; }
  /// Message of the first error ("" when ok()); the pipeline surfaces it.
  [[nodiscard]] std::string firstError() const;
  void merge(CertifyReport&& o);
};

/// Certifies `code` — the stream emitted from `clustered` (which also names
/// the semantic operands behind every EmittedOp::bodyIndex and the partition
/// for residence) — against `original`. Works on virtual-name and physical
/// streams alike: reads bind chronologically under the simulator's landing
/// discipline, so register reuse needs no prior SSA rewrite here.
[[nodiscard]] CertifyReport certifyStream(const Loop& original,
                                          const ClusteredLoop& clustered,
                                          const PipelinedCode& code,
                                          const MachineDesc& machine,
                                          CertifyLayer layer);

}  // namespace rapt
