#include "certify/SsaRename.h"

#include <algorithm>
#include <utility>

#include "support/Assert.h"

namespace rapt {

namespace {

std::uint64_t phaseKey(std::uint32_t origKey, int phase) {
  return (static_cast<std::uint64_t>(origKey) << 32) |
         static_cast<std::uint32_t>(phase);
}

}  // namespace

PipelinedCode ssaRename(const PipelinedCode& code, const Loop& streamLoop,
                        const LatencyTable& lat) {
  PipelinedCode out;
  out.ii = code.ii;
  out.stageCount = code.stageCount;
  out.maxUnroll = code.maxUnroll;
  out.trip = code.trip;
  out.kernelStart = code.kernelStart;
  out.kernelLength = code.kernelLength;
  out.instrs.resize(code.instrs.size());

  // Initial register-file contents of the INPUT stream, name -> value (later
  // entries win, matching the simulator's initialization order). A version-0
  // read of a name with no entry models the hardware default of zero — that
  // name simply gets no nameInits entry in the output either.
  std::unordered_map<std::uint32_t, LiveInValue> inputInit;
  for (const LiveInValue& lv : code.nameInits) inputInit[lv.reg.key()] = lv;

  std::uint32_t nextIdx[2] = {streamLoop.freshReg(RegClass::Int).index(),
                              streamLoop.freshReg(RegClass::Flt).index()};
  auto fresh = [&](RegClass rc) {
    return VirtReg(rc, nextIdx[rc == RegClass::Flt ? 1 : 0]++);
  };

  std::unordered_map<std::uint32_t, VirtReg> cur;  // input name -> landed version
  std::unordered_map<std::uint32_t, VirtReg> v0;   // input name -> version 0
  std::unordered_map<std::uint64_t, VirtReg> lastDef;  // (orig, phase) -> last instance

  auto qOf = [&](std::uint32_t origKey) -> int {
    auto it = code.namesOf.find(origKey);
    return it == code.namesOf.end() ? 1 : static_cast<int>(it->second.size());
  };

  // Landing buckets: a result issued at c lands at c + latency and commits at
  // the start of that cycle, before any same-cycle read (vliwsim contract).
  std::size_t horizon = code.instrs.size() + 1;
  for (std::size_t c = 0; c < code.instrs.size(); ++c) {
    for (const EmittedOp& eo : code.instrs[c].ops) {
      if (eo.op.hasDef())
        horizon = std::max(
            horizon, c + static_cast<std::size_t>(lat.of(eo.op.op)) + 1);
    }
  }
  std::vector<std::vector<std::pair<std::uint32_t, VirtReg>>> pending(horizon);

  // Binds a read to the version landed now, or to the name's version 0 (the
  // initial contents) when nothing has landed yet. `orig` is the semantic
  // operand from the stream's source body op; it becomes the version-0
  // origin so the certifier can identify which original value the initial
  // contents stand for.
  auto readName = [&](VirtReg name, VirtReg orig) -> VirtReg {
    if (auto it = cur.find(name.key()); it != cur.end()) return it->second;
    if (auto it = v0.find(name.key()); it != v0.end()) return it->second;
    const VirtReg ssa = fresh(name.cls());
    v0.emplace(name.key(), ssa);
    out.originOf[ssa.key()] = {orig.isValid() ? orig : name, 0};
    if (auto it = inputInit.find(name.key()); it != inputInit.end()) {
      LiveInValue lv = it->second;
      lv.reg = ssa;
      out.nameInits.push_back(lv);
    }
    return ssa;
  };

  const int bodySize = streamLoop.size();
  for (std::size_t c = 0; c < code.instrs.size(); ++c) {
    for (const auto& [key, ssa] : pending[c]) cur[key] = ssa;
    VliwInstr& outInstr = out.instrs[c];
    outInstr.ops.reserve(code.instrs[c].ops.size());
    for (const EmittedOp& eo : code.instrs[c].ops) {
      EmittedOp ne = eo;
      const bool hasBody = eo.bodyIndex >= 0 && eo.bodyIndex < bodySize;
      const Operation* body = hasBody ? &streamLoop.body[static_cast<std::size_t>(
                                            eo.bodyIndex)]
                                      : nullptr;
      for (int s = 0; s < ne.op.numSrcs(); ++s) {
        const VirtReg orig =
            (body != nullptr && s < body->numSrcs()) ? body->src[static_cast<std::size_t>(s)]
                                                     : VirtReg{};
        ne.op.src[static_cast<std::size_t>(s)] =
            readName(eo.op.src[static_cast<std::size_t>(s)], orig);
      }
      if (ne.op.hasDef()) {
        const VirtReg ssa = fresh(eo.op.def.cls());
        ne.op.def = ssa;
        const VirtReg origin =
            (body != nullptr && body->def.isValid()) ? body->def : eo.op.def;
        const int q = std::max(1, qOf(origin.key()));
        const int phase = ((eo.iteration % q) + q) % q;
        out.originOf[ssa.key()] = {origin, phase};
        // Same-(origin, phase) instances are q iterations apart with equal
        // latency, so issue order here IS landing order.
        lastDef[phaseKey(origin.key(), phase)] = ssa;
        pending[c + static_cast<std::size_t>(lat.of(ne.op.op))].push_back(
            {eo.op.def.key(), ssa});
      }
      outInstr.ops.push_back(std::move(ne));
    }
  }

  // Rename table: (original register, phase) -> the LAST landed instance of
  // that phase, which is what the final-value lookup of checkEquivalence
  // reads. Phases the stream never defines (only loop invariants, whose
  // single "value" is their initial contents) fall back to version 0.
  for (const auto& [origKey, names] : code.namesOf) {
    std::vector<VirtReg> v;
    v.reserve(names.size());
    for (std::size_t p = 0; p < names.size(); ++p) {
      if (auto it = lastDef.find(phaseKey(origKey, static_cast<int>(p)));
          it != lastDef.end()) {
        v.push_back(it->second);
      } else if (auto iv = v0.find(names[p].key()); iv != v0.end()) {
        v.push_back(iv->second);
      } else {
        v.push_back(fresh(names[p].cls()));  // never written, never read
      }
    }
    out.namesOf.emplace(origKey, std::move(v));
  }
  return out;
}

}  // namespace rapt
