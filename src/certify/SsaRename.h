// SSA-ification of an emitted instruction stream (docs/certification.md).
//
// A register-allocated stream reuses each physical register for many values,
// which is why dynamic equivalence checking historically skipped register
// finals for physical streams: the final CONTENTS of a physical register is
// whatever landed there last, not necessarily the value the original loop's
// register holds after the last iteration.
//
// ssaRename removes that blind spot statically. It replays the simulator's
// commit discipline over the stream — a result issued at cycle t lands at
// t + latency, landings commit at the start of their cycle in issue order,
// reads bind to the version landed at read time — and gives every definition
// a fresh name. Reads that no landing reaches yet bind to a per-register
// "version 0" name carrying the original value's live-in, exactly the
// initial-contents contract of PipelinedCode::nameInits. The result is a
// stream with single-assignment names whose simulation is cycle-for-cycle
// identical to the input stream's, but whose rename table (namesOf) points
// at the value INSTANCES — so checkEquivalence can compare register finals
// bit-for-bit on physical streams too.
#pragma once

#include "machine/MachineDesc.h"
#include "sched/PipelinedCode.h"

namespace rapt {

/// Renames `code` (virtual or physical) into single-assignment form.
/// `streamLoop` is the loop the stream was emitted from (the clustered body:
/// its op at EmittedOp::bodyIndex names the semantic operands, and its
/// live-in list supplies version-0 initial values); `lat` must be the table
/// the stream was scheduled against.
[[nodiscard]] PipelinedCode ssaRename(const PipelinedCode& code,
                                      const Loop& streamLoop,
                                      const LatencyTable& lat);

}  // namespace rapt
