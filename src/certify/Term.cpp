#include "certify/Term.h"

#include <cstring>
#include <sstream>

#include "ir/Printer.h"
#include "support/Assert.h"
#include "vliwsim/Interpreter.h"

namespace rapt {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hashNode(const TermNode& n) {
  std::uint64_t h = static_cast<std::uint64_t>(n.kind);
  h = mix(h, static_cast<std::uint64_t>(n.op));
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(n.a)));
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(n.b)));
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(n.c)));
  h = mix(h, static_cast<std::uint64_t>(n.i));
  h = mix(h, n.bits);
  return h;
}

bool sameNode(const TermNode& x, const TermNode& y) {
  return x.kind == y.kind && x.op == y.op && x.a == y.a && x.b == y.b &&
         x.c == y.c && x.i == y.i && x.bits == y.bits;
}

std::uint64_t bitsOf(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

double fromBits(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof v);
  return v;
}

}  // namespace

TermId TermArena::intern(TermNode n) {
  const std::uint64_t h = hashNode(n);
  std::vector<TermId>& bucket = buckets_[h];
  for (TermId id : bucket) {
    if (sameNode(nodes_[static_cast<std::size_t>(id)], n)) return id;
  }
  const TermId id = static_cast<TermId>(nodes_.size());
  nodes_.push_back(n);
  bucket.push_back(id);
  return id;
}

TermId TermArena::intConst(std::int64_t v) {
  TermNode n;
  n.kind = TermKind::IntConst;
  n.i = v;
  n.affBase = kNoTerm;
  n.affOff = v;
  return intern(n);
}

TermId TermArena::fltConst(double v) {
  TermNode n;
  n.kind = TermKind::FltConst;
  n.bits = bitsOf(v);
  return intern(n);
}

TermId TermArena::initReg(VirtReg original) {
  TermNode n;
  n.kind = TermKind::InitReg;
  n.i = original.key();
  const TermId id = intern(n);
  nodes_[static_cast<std::size_t>(id)].affBase = id;
  return id;
}

TermId TermArena::uninit(VirtReg name) {
  TermNode n;
  n.kind = TermKind::Uninit;
  n.i = name.key();
  const TermId id = intern(n);
  nodes_[static_cast<std::size_t>(id)].affBase = id;
  return id;
}

TermId TermArena::arrayInit(ArrayId array) {
  TermNode n;
  n.kind = TermKind::ArrayInit;
  n.i = static_cast<std::int64_t>(array);
  return intern(n);
}

TermId TermArena::apply(const Operation& op, TermId s0, TermId s1) {
  switch (op.op) {
    case Opcode::IMov:
    case Opcode::FMov:
    case Opcode::ICopy:
    case Opcode::FCopy:
      return s0;  // value-transparent: a copy IS its source's value
    case Opcode::IConst:
      return intConst(op.imm);
    case Opcode::FConst:
      return fltConst(op.fimm);
    default:
      break;
  }
  const OpcodeInfo& info = op.info();
  RAPT_ASSERT(info.kind == OpKind::Arith, "apply expects a non-memory opcode");

  // Fold when every operand is a literal: symbolic execution then computes
  // the exact value the hardware would, via the same evalArith the reference
  // interpreter and simulator share.
  const TermId srcs[2] = {s0, s1};
  bool allConst = true;
  OperandValues in;
  for (int k = 0; k < info.numSrcs; ++k) {
    const TermNode& n = node(srcs[k]);
    if (info.srcCls[k] == RegClass::Int && n.kind == TermKind::IntConst) {
      in.i[k] = n.i;
    } else if (info.srcCls[k] == RegClass::Flt && n.kind == TermKind::FltConst) {
      in.f[k] = fromBits(n.bits);
    } else {
      allConst = false;
      break;
    }
  }
  if (allConst) {
    const ResultValue out = evalArith(op, in);
    return info.defCls == RegClass::Int ? intConst(out.i) : fltConst(out.f);
  }

  TermNode n;
  n.kind = TermKind::Op;
  n.op = op.op;
  n.a = info.numSrcs > 0 ? s0 : kNoTerm;
  n.b = info.numSrcs > 1 ? s1 : kNoTerm;
  n.i = info.hasImm ? op.imm : 0;
  n.bits = info.hasFimm ? bitsOf(op.fimm) : 0;

  // Affine view (integer results only): propagate base + constant through
  // the address-arithmetic shapes ddg/AffineIndex understands.
  if (info.hasDef && info.defCls == RegClass::Int) {
    if (op.op == Opcode::IAddImm) {
      const TermNode& base = node(s0);
      n.affBase = base.affBase;
      n.affOff = wrapAdd(base.affOff, op.imm);
    } else if (op.op == Opcode::IAdd) {
      const TermNode& x = node(s0);
      const TermNode& y = node(s1);
      if (x.kind == TermKind::IntConst) {
        n.affBase = y.affBase;
        n.affOff = wrapAdd(y.affOff, x.i);
      } else if (y.kind == TermKind::IntConst) {
        n.affBase = x.affBase;
        n.affOff = wrapAdd(x.affOff, y.i);
      } else {
        n.affBase = kNoTerm;  // patched to self below
      }
    } else if (op.op == Opcode::ISub && node(s1).kind == TermKind::IntConst) {
      const TermNode& x = node(s0);
      n.affBase = x.affBase;
      n.affOff = wrapSub(x.affOff, node(s1).i);
    } else {
      n.affBase = kNoTerm;  // patched to self below
    }
  }

  const bool selfBase =
      (info.hasDef && info.defCls == RegClass::Int && n.affBase == kNoTerm);
  const TermId id = intern(n);
  if (selfBase && nodes_[static_cast<std::size_t>(id)].affBase == kNoTerm) {
    nodes_[static_cast<std::size_t>(id)].affBase = id;
  }
  return id;
}

TermId TermArena::addImm(TermId base, std::int64_t offset) {
  const TermNode& b = node(base);
  if (b.kind == TermKind::IntConst) return intConst(wrapAdd(b.i, offset));
  if (offset == 0) return base;
  Operation o;
  o.op = Opcode::IAddImm;
  o.imm = offset;
  return apply(o, base, kNoTerm);
}

bool TermArena::sameCell(TermId x, TermId y) const {
  if (x == y) return true;  // literals are interned uniquely, so this covers
                            // the pure-constant case
  const TermNode& nx = node(x);
  const TermNode& ny = node(y);
  if (nx.affBase == kNoTerm || ny.affBase == kNoTerm) return false;
  return nx.affBase == ny.affBase && nx.affOff == ny.affOff;
}

bool TermArena::provablyDistinct(TermId x, TermId y) const {
  const TermNode& nx = node(x);
  const TermNode& ny = node(y);
  // Same symbolic base (or both pure constants): the cells differ exactly
  // when the constant offsets differ. Different bases: unknown, NOT distinct.
  return nx.affBase == ny.affBase && nx.affOff != ny.affOff;
}

TermId TermArena::select(TermId heap, TermId index) {
  TermId h = heap;
  while (node(h).kind == TermKind::Store) {
    const TermNode& s = node(h);
    if (sameCell(index, s.b)) return s.c;      // read-over-write, same cell
    if (!provablyDistinct(index, s.b)) break;  // might alias: stick here
    h = s.a;                                   // provably disjoint: skip
  }
  TermNode n;
  n.kind = TermKind::Select;
  n.a = h;
  n.b = index;
  const TermId id = intern(n);
  // An integer load result is its own affine base (float selects never feed
  // addressing, so the field is harmless there).
  if (nodes_[static_cast<std::size_t>(id)].affBase == kNoTerm)
    nodes_[static_cast<std::size_t>(id)].affBase = id;
  return id;
}

TermId TermArena::store(TermId heap, TermId index, TermId value) {
  if (node(heap).kind == TermKind::Store) {
    // Copy the top store by value: intern() below may grow nodes_.
    const TermNode top = node(heap);
    if (sameCell(index, top.b)) return store(top.a, index, value);
    if (provablyDistinct(index, top.b) &&
        node(index).affOff < node(top.b).affOff) {
      // Bubble provably-disjoint stores into ascending offset order so both
      // executions reach one normal form however the schedule interleaved
      // them (only pairs the DDG was free to reorder ever commute here).
      const TermId below = store(top.a, index, value);
      TermNode n;
      n.kind = TermKind::Store;
      n.a = below;
      n.b = top.b;
      n.c = top.c;
      return intern(n);
    }
  }
  TermNode n;
  n.kind = TermKind::Store;
  n.a = heap;
  n.b = index;
  n.c = value;
  return intern(n);
}

std::string TermArena::str(TermId t, int maxDepth) const {
  if (t == kNoTerm) return "<none>";
  if (maxDepth < 0) return "…";
  const TermNode& n = node(t);
  std::ostringstream os;
  switch (n.kind) {
    case TermKind::IntConst:
      os << n.i;
      break;
    case TermKind::FltConst:
      os << fromBits(n.bits);
      break;
    case TermKind::InitReg:
      os << "init " << regName(VirtReg::fromKey(static_cast<std::uint32_t>(n.i)));
      break;
    case TermKind::Uninit:
      os << "uninit " << regName(VirtReg::fromKey(static_cast<std::uint32_t>(n.i)));
      break;
    case TermKind::ArrayInit:
      os << "arrayinit a" << n.i;
      break;
    case TermKind::Op:
      os << opcodeName(n.op) << "(" << str(n.a, maxDepth - 1);
      if (n.b != kNoTerm) os << ", " << str(n.b, maxDepth - 1);
      if (opcodeInfo(n.op).hasImm) os << ", +" << n.i;
      if (opcodeInfo(n.op).hasFimm) os << ", " << fromBits(n.bits);
      os << ")";
      break;
    case TermKind::Select:
      os << "select(" << str(n.a, maxDepth - 1) << ", " << str(n.b, maxDepth - 1)
         << ")";
      break;
    case TermKind::Store:
      os << "store(" << str(n.a, maxDepth - 1) << ", " << str(n.b, maxDepth - 1)
         << ", " << str(n.c, maxDepth - 1) << ")";
      break;
  }
  return os.str();
}

TermDivergence firstDivergence(const TermArena& arena, TermId ref, TermId got) {
  while (true) {
    if (ref == got) return {kNoTerm, kNoTerm};
    if (ref == kNoTerm || got == kNoTerm) return {ref, got};
    const TermNode& r = arena.node(ref);
    const TermNode& g = arena.node(got);
    if (r.kind != g.kind || r.op != g.op || r.i != g.i || r.bits != g.bits)
      return {ref, got};
    // Same head: descend into the first differing child. Hash-consing
    // guarantees at least one differs when the ids do.
    if (r.a != g.a) {
      ref = r.a;
      got = g.a;
    } else if (r.b != g.b) {
      ref = r.b;
      got = g.b;
    } else if (r.c != g.c) {
      ref = r.c;
      got = g.c;
    } else {
      return {ref, got};
    }
  }
}

}  // namespace rapt
