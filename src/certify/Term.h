// Hash-consed symbolic value terms for the static translation certifier
// (docs/certification.md).
//
// A Term is a value computed by the loop, expressed over symbolic initial
// registers (`init r`), symbolic initial array contents (`arrayinit A`), and
// literal constants. Hash-consing makes structural equality an O(1) id
// compare: two executions compute the same value for all inputs exactly when
// they intern the same term. That identity IS the equivalence proof — the
// pipeline's rewrites (scheduling, MVE renaming, copy insertion, register
// assignment) only reorder, rename, and route values through transparent
// copies; they never reassociate arithmetic, so a correct translation
// reproduces the reference terms node for node.
//
// Arrays use a McCarthy select/store theory with two refinements that keep
// both executions on a canonical normal form:
//   * a store whose cell PROVABLY differs from the store below it (same
//     affine base, different constant offset — or both concrete) is bubbled
//     into a canonical (base, offset) order, and a store to the same cell
//     overwrites;
//   * a select walks past provably-disjoint stores and sticks at the first
//     store it cannot disambiguate.
// The affine view (`base + constant`) mirrors ddg/AffineIndex: accesses the
// dependence analysis could reorder are exactly the ones the normal form
// commutes, and accesses it kept ordered stay ordered here too.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/Operation.h"

namespace rapt {

enum class TermKind : std::uint8_t {
  IntConst,   ///< payload: i = value
  FltConst,   ///< payload: bits = IEEE-754 bit pattern (NaN payloads distinct)
  InitReg,    ///< payload: i = VirtReg::key() of the ORIGINAL loop register
  Uninit,     ///< payload: i = name key; a read no initializer reaches.
              ///< Unique per name, so it never matches anything.
  ArrayInit,  ///< payload: i = ArrayId; the array's contents before the loop
  Op,         ///< payload: op, children a/b, i = imm, bits = fimm bits
  Select,     ///< a = heap, b = index
  Store,      ///< a = heap, b = index, c = value
};

using TermId = std::int32_t;
constexpr TermId kNoTerm = -1;

struct TermNode {
  TermKind kind = TermKind::IntConst;
  Opcode op = Opcode::kCount_;  ///< Op nodes only
  TermId a = kNoTerm;           ///< child 0 / heap
  TermId b = kNoTerm;           ///< child 1 / index
  TermId c = kNoTerm;           ///< Store value
  std::int64_t i = 0;           ///< kind-dependent integer payload
  std::uint64_t bits = 0;       ///< float payload (bit-exact)

  // Derived affine view of an integer term: value == term(affBase) + affOff
  // (wrapping), with affBase == kNoTerm meaning "pure constant". Set at
  // intern time; excluded from hashing/equality.
  TermId affBase = kNoTerm;
  std::int64_t affOff = 0;
};

/// The interner. Ids are dense indices, stable for the arena's lifetime.
class TermArena {
 public:
  [[nodiscard]] TermId intConst(std::int64_t v);
  [[nodiscard]] TermId fltConst(double v);
  [[nodiscard]] TermId initReg(VirtReg original);
  [[nodiscard]] TermId uninit(VirtReg name);
  [[nodiscard]] TermId arrayInit(ArrayId array);

  /// The value `op` computes from operand terms s0/s1 (as many as the opcode
  /// reads; immediates come from `op` itself). Copies and moves are value
  /// transparent (the term of the source). All-constant operands fold through
  /// the interpreter's evalArith, so symbolic execution computes literal
  /// values exactly where the hardware would.
  [[nodiscard]] TermId apply(const Operation& op, TermId s0, TermId s1);

  /// The canonical term of `base + offset` (memory addressing `src0 + imm`).
  [[nodiscard]] TermId addImm(TermId base, std::int64_t offset);

  /// McCarthy array ops on the canonical store-chain normal form.
  [[nodiscard]] TermId select(TermId heap, TermId index);
  [[nodiscard]] TermId store(TermId heap, TermId index, TermId value);

  /// Do `x` and `y` denote the same cell / provably different cells?
  [[nodiscard]] bool sameCell(TermId x, TermId y) const;
  [[nodiscard]] bool provablyDistinct(TermId x, TermId y) const;

  [[nodiscard]] const TermNode& node(TermId t) const { return nodes_[static_cast<std::size_t>(t)]; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Bounded-depth rendering for diagnostics, e.g.
  /// "fadd(init f3, select(arrayinit a, 7))".
  [[nodiscard]] std::string str(TermId t, int maxDepth = 3) const;

 private:
  [[nodiscard]] TermId intern(TermNode n);

  std::vector<TermNode> nodes_;
  std::unordered_map<std::uint64_t, std::vector<TermId>> buckets_;
};

/// Walks `ref` and `got` in lockstep and returns the first structurally
/// divergent pair (the deepest node where the two dags stop agreeing); used
/// to point a Diagnostic at the root cause rather than the whole value.
struct TermDivergence {
  TermId ref = kNoTerm;
  TermId got = kNoTerm;
};
[[nodiscard]] TermDivergence firstDivergence(const TermArena& arena, TermId ref,
                                             TermId got);

}  // namespace rapt
