#include "ddg/AffineIndex.h"

#include <set>
#include <unordered_map>

#include "support/Assert.h"

namespace rapt {
namespace {

/// Value of an affine expression one iteration earlier: k decreases by one.
AffineVal shiftBack(const AffineVal& v) {
  if (!v.known || !v.hasIV) return v;
  AffineVal r = v;
  r.offset -= 1;
  return r;
}

AffineVal addConst(const AffineVal& v, std::int64_t c) {
  if (!v.known) return AffineVal::unknown();
  AffineVal r = v;
  r.offset += c;
  return r;
}

AffineVal addVals(const AffineVal& a, const AffineVal& b) {
  if (!a.known || !b.known) return AffineVal::unknown();
  if (a.hasIV && b.hasIV) return AffineVal::unknown();  // coefficient 2
  if (a.invKey != AffineVal::kNoInv && b.invKey != AffineVal::kNoInv)
    return AffineVal::unknown();  // sum of two symbols
  AffineVal r;
  r.known = true;
  r.hasIV = a.hasIV || b.hasIV;
  r.invKey = (a.invKey != AffineVal::kNoInv) ? a.invKey : b.invKey;
  r.offset = a.offset + b.offset;
  return r;
}

AffineVal subVals(const AffineVal& a, const AffineVal& b) {
  if (!a.known || !b.known) return AffineVal::unknown();
  // Pure constant subtrahend.
  if (!b.hasIV && b.invKey == AffineVal::kNoInv) return addConst(a, -b.offset);
  // Identical invariant bases cancel.
  if (a.invKey == b.invKey) {
    if (a.hasIV == b.hasIV) return AffineVal::constant(a.offset - b.offset);
    if (a.hasIV && !b.hasIV) {
      AffineVal r;
      r.known = true;
      r.hasIV = true;
      r.offset = a.offset - b.offset;
      return r;
    }
    return AffineVal::unknown();  // -k coefficient
  }
  // Subtracting an invariant from an expression without one keeps no affine
  // form we track (a negative symbolic term).
  return AffineVal::unknown();
}

class Analyzer {
 public:
  explicit Analyzer(const Loop& loop) : loop_(loop) {
    // Seed every self-incrementing register (`r = iaddi r, 1`): its value is
    // the iteration number plus its initial value. The canonical induction
    // variable is one instance of this pattern.
    for (const Operation& o : loop.body) {
      if (o.op == Opcode::IAddImm && o.def == o.src[0] && o.imm == 1) {
        AffineVal v;
        v.known = true;
        v.hasIV = true;
        v.offset = initialOf(o.def) + 1;  // value after the k-th update
        memo_[o.def.key()] = v;
      }
    }
  }

  /// Value read by a use of `r` at body position `pos`.
  AffineVal valueAtUse(VirtReg r, int pos) {
    if (r.cls() != RegClass::Int) return AffineVal::unknown();
    const std::optional<int> d = loop_.defPos(r);
    if (!d) {
      // Loop invariant: a stable symbolic base.
      AffineVal v;
      v.known = true;
      v.invKey = r.key();
      return v;
    }
    const AffineVal post = postDefValue(r);
    return (*d < pos) ? post : shiftBack(post);
  }

 private:
  std::int64_t initialOf(VirtReg r) const {
    for (const LiveInValue& lv : loop_.liveInValues)
      if (lv.reg == r) return lv.i;
    return 0;
  }

  AffineVal postDefValue(VirtReg r) {
    auto it = memo_.find(r.key());
    if (it != memo_.end()) return it->second;
    if (inProgress_.count(r.key())) return AffineVal::unknown();  // non-induction cycle
    inProgress_.insert(r.key());
    const std::optional<int> d = loop_.defPos(r);
    RAPT_ASSERT(d.has_value(), "postDefValue of undefined register");
    const AffineVal v = evalDef(loop_.body[*d], *d);
    inProgress_.erase(r.key());
    memo_[r.key()] = v;
    return v;
  }

  AffineVal evalDef(const Operation& o, int pos) {
    switch (o.op) {
      case Opcode::IConst:
        return AffineVal::constant(o.imm);
      case Opcode::IMov:
      case Opcode::ICopy:
        return valueAtUse(o.src[0], pos);
      case Opcode::IAddImm:
        return addConst(valueAtUse(o.src[0], pos), o.imm);
      case Opcode::IAdd:
        return addVals(valueAtUse(o.src[0], pos), valueAtUse(o.src[1], pos));
      case Opcode::ISub:
        return subVals(valueAtUse(o.src[0], pos), valueAtUse(o.src[1], pos));
      default:
        return AffineVal::unknown();
    }
  }

  const Loop& loop_;
  std::unordered_map<std::uint32_t, AffineVal> memo_;
  std::set<std::uint32_t> inProgress_;
};

}  // namespace

std::vector<MemAccess> analyzeMemAccesses(const Loop& loop) {
  Analyzer an(loop);
  std::vector<MemAccess> out(loop.body.size());
  for (int i = 0; i < loop.size(); ++i) {
    const Operation& o = loop.body[i];
    if (!isMemory(o.op)) continue;
    MemAccess& acc = out[i];
    acc.opIndex = i;
    acc.addr = an.valueAtUse(o.src[0], i);
    if (acc.addr.known) acc.addr.offset += o.imm;
  }
  return out;
}

}  // namespace rapt
