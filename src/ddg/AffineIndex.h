// Affine analysis of integer index values inside a loop body.
//
// Memory dependence distances must be exact for modulo scheduling to be
// honest; this pass classifies the value each integer register holds at each
// body position as
//
//     value(k) = [k] + [Inv] + offset
//
// where k is the 0-based iteration number (contributed by the induction
// variable), Inv an optional loop-invariant symbol, and offset a known
// constant. Values that do not fit this form are Unknown and dependence
// analysis falls back to conservative distance-0/1 edges.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/Loop.h"

namespace rapt {

struct AffineVal {
  bool known = false;
  bool hasIV = false;            ///< contributes one `k`
  std::uint32_t invKey = kNoInv; ///< VirtReg::key() of an invariant base, or kNoInv
  std::int64_t offset = 0;

  static constexpr std::uint32_t kNoInv = ~0u;

  [[nodiscard]] static AffineVal unknown() { return {}; }
  [[nodiscard]] static AffineVal constant(std::int64_t c) {
    AffineVal v;
    v.known = true;
    v.offset = c;
    return v;
  }

  /// Two values are comparable if they differ only in `offset`; the
  /// difference of offsets is then an exact iteration distance.
  [[nodiscard]] bool comparableWith(const AffineVal& o) const {
    return known && o.known && hasIV == o.hasIV && invKey == o.invKey;
  }
};

/// The address expression of one memory operation: affine value of its index
/// register at its body position, plus the constant offset.
struct MemAccess {
  int opIndex = -1;
  AffineVal addr;  ///< element index as an affine value
};

/// Computes the address expression for every memory operation in `loop`.
/// Non-memory operations get a default (opIndex == -1) entry.
[[nodiscard]] std::vector<MemAccess> analyzeMemAccesses(const Loop& loop);

}  // namespace rapt
