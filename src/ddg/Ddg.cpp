#include "ddg/Ddg.h"

#include <algorithm>

#include "ddg/AffineIndex.h"
#include "support/Assert.h"

namespace rapt {

const char* depKindName(DepKind k) {
  switch (k) {
    case DepKind::RegTrue: return "reg-true";
    case DepKind::MemTrue: return "mem-true";
    case DepKind::MemAnti: return "mem-anti";
    case DepKind::MemOutput: return "mem-output";
  }
  RAPT_UNREACHABLE("bad dep kind");
}

namespace {

DepKind memDepKind(const Operation& from, const Operation& to) {
  if (isStore(from.op) && isLoad(to.op)) return DepKind::MemTrue;
  if (isLoad(from.op) && isStore(to.op)) return DepKind::MemAnti;
  return DepKind::MemOutput;
}

/// Latency of a memory dependence edge. Stores commit at issue+lat(store);
/// loads read at issue. True: the load must see the committed value. Anti:
/// the store must not commit before the load has read. Output: commits must
/// stay ordered.
int memDepLatency(const Operation& from, const Operation& to, const LatencyTable& lat) {
  if (isStore(from.op) && isLoad(to.op)) return lat.store;
  if (isLoad(from.op) && isStore(to.op)) return 1 - lat.store;
  return 1;
}

}  // namespace

void Ddg::addEdge(DdgEdge e) {
  RAPT_ASSERT(e.distance >= 0, "negative dependence distance");
  RAPT_ASSERT(e.distance > 0 || e.from < e.to,
              "distance-0 edge must follow body order");
  edges_.push_back(e);
}

void Ddg::buildAdjacency() {
  succ_.assign(numOps_, {});
  pred_.assign(numOps_, {});
  for (int i = 0; i < static_cast<int>(edges_.size()); ++i) {
    succ_[edges_[i].from].push_back(i);
    pred_[edges_[i].to].push_back(i);
  }
}

Ddg Ddg::build(const Loop& loop, const LatencyTable& lat) {
  Ddg g;
  g.numOps_ = loop.size();

  // Register flow dependences.
  for (int u = 0; u < loop.size(); ++u) {
    for (VirtReg s : loop.body[u].srcs()) {
      const std::optional<int> d = loop.defPos(s);
      if (!d) continue;  // loop invariant
      DdgEdge e;
      e.from = *d;
      e.to = u;
      e.latency = lat.of(loop.body[*d].op);
      e.distance = (*d < u) ? 0 : 1;  // use-before-def reads previous iteration
      e.kind = DepKind::RegTrue;
      g.addEdge(e);
    }
  }

  // Memory dependences.
  const std::vector<MemAccess> accesses = analyzeMemAccesses(loop);
  for (int a = 0; a < loop.size(); ++a) {
    const Operation& opA = loop.body[a];
    if (!isMemory(opA.op)) continue;
    for (int b = a; b < loop.size(); ++b) {
      const Operation& opB = loop.body[b];
      if (!isMemory(opB.op)) continue;
      if (opA.array != opB.array) continue;  // distinct arrays never alias
      if (!isStore(opA.op) && !isStore(opB.op)) continue;  // load-load is free

      const AffineVal& addrA = accesses[a].addr;
      const AffineVal& addrB = accesses[b].addr;
      if (addrA.comparableWith(addrB)) {
        if (addrA.hasIV) {
          // Accesses sweep the array: B at iteration k+delta touches what A
          // touched at iteration k.
          const std::int64_t delta = addrA.offset - addrB.offset;
          if (a == b) continue;  // one op never self-conflicts across iterations
          if (delta > 0) {
            g.addEdge({a, b, memDepLatency(opA, opB, lat),
                       static_cast<int>(delta), memDepKind(opA, opB)});
          } else if (delta < 0) {
            g.addEdge({b, a, memDepLatency(opB, opA, lat),
                       static_cast<int>(-delta), memDepKind(opB, opA)});
          } else {
            g.addEdge({a, b, memDepLatency(opA, opB, lat), 0, memDepKind(opA, opB)});
          }
        } else {
          // Both touch one fixed element every iteration.
          if (a < b) {
            g.addEdge({a, b, memDepLatency(opA, opB, lat), 0, memDepKind(opA, opB)});
            g.addEdge({b, a, memDepLatency(opB, opA, lat), 1, memDepKind(opB, opA)});
          } else {  // a == b: a store hitting the same element each iteration
            g.addEdge({a, a, 1, 1, DepKind::MemOutput});
          }
        }
      } else {
        // Unknown relation: conservative order-preserving edges. A smaller
        // distance only over-constrains the schedule, so this is safe.
        if (a < b) {
          g.addEdge({a, b, memDepLatency(opA, opB, lat), 0, memDepKind(opA, opB)});
          g.addEdge({b, a, memDepLatency(opB, opA, lat), 1, memDepKind(opB, opA)});
        } else {
          g.addEdge({a, a, 1, 1, DepKind::MemOutput});
        }
      }
    }
  }

  g.buildAdjacency();
  return g;
}

Ddg Ddg::fromEdges(int numOps, std::vector<DdgEdge> edges) {
  Ddg g;
  g.numOps_ = numOps;
  for (DdgEdge& e : edges) {
    RAPT_ASSERT(e.from >= 0 && e.from < numOps && e.to >= 0 && e.to < numOps,
                "edge endpoint out of range");
    g.addEdge(e);
  }
  g.buildAdjacency();
  return g;
}

int Ddg::resII(const MachineDesc& machine) const {
  if (numOps_ == 0) return 1;
  return std::max(1, (numOps_ + machine.width() - 1) / machine.width());
}

bool Ddg::feasibleII(int ii) const {
  // Positive-cycle detection on weights (lat - ii*dist), Bellman-Ford style.
  std::vector<long long> d(numOps_, 0);
  for (int pass = 0; pass < numOps_; ++pass) {
    bool changed = false;
    for (const DdgEdge& e : edges_) {
      const long long w = static_cast<long long>(e.latency) -
                          static_cast<long long>(ii) * e.distance;
      if (d[e.from] + w > d[e.to]) {
        d[e.to] = d[e.from] + w;
        changed = true;
      }
    }
    if (!changed) return true;
  }
  // One more pass: any further relaxation implies a positive cycle.
  for (const DdgEdge& e : edges_) {
    const long long w = static_cast<long long>(e.latency) -
                        static_cast<long long>(ii) * e.distance;
    if (d[e.from] + w > d[e.to]) return false;
  }
  return true;
}

int Ddg::recII() const {
  int lo = 1;
  int hi = 1;
  for (const DdgEdge& e : edges_) hi += std::max(0, e.latency);
  if (feasibleII(lo)) return 1;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (feasibleII(mid))
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

int Ddg::minII(const MachineDesc& machine) const {
  return std::max(resII(machine), recII());
}

std::vector<int> Ddg::heights(int ii) const {
  std::vector<int> h(numOps_, 0);
  for (int pass = 0; pass < numOps_ + 1; ++pass) {
    bool changed = false;
    for (const DdgEdge& e : edges_) {
      const int w = e.latency - ii * e.distance;
      if (h[e.to] + w > h[e.from]) {
        h[e.from] = h[e.to] + w;
        changed = true;
      }
    }
    if (!changed) return h;
  }
  RAPT_UNREACHABLE("heights did not converge: positive cycle (infeasible II)");
}

std::vector<int> Ddg::flexibility(std::span<const int> cycle, int ii,
                                  int horizon) const {
  RAPT_ASSERT(static_cast<int>(cycle.size()) == numOps_, "cycle vector size");
  std::vector<int> flex(numOps_, 1);
  for (int o = 0; o < numOps_; ++o) {
    int earliest = 0;
    for (int ei : pred_[o]) {
      const DdgEdge& e = edges_[ei];
      earliest = std::max(earliest, cycle[e.from] + e.latency - ii * e.distance);
    }
    int latest = horizon;
    for (int ei : succ_[o]) {
      const DdgEdge& e = edges_[ei];
      latest = std::min(latest, cycle[e.to] - e.latency + ii * e.distance);
    }
    flex[o] = std::max(1, latest - earliest + 1);
  }
  return flex;
}

}  // namespace rapt
