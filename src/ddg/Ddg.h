// Data dependence graph of a loop body (the paper's "DDD").
//
// Nodes are body operations; edges carry (latency, iteration distance). A
// schedule assigning start cycle t(o) at initiation interval II is legal iff
// for every edge (a -> b, lat, dist):   t(b) >= t(a) + lat - II * dist.
//
// Register anti- and output-dependences are intentionally absent: every
// virtual register has a single definition per body and modulo variable
// expansion renames per-iteration instances, so only flow (true) register
// dependences constrain the schedule. Memory is not renamable, so memory
// true/anti/output edges are all present, with exact distances when the
// affine index analysis succeeds and conservative distance-0/1 edges when it
// does not.
#pragma once

#include <span>
#include <vector>

#include "ir/Loop.h"
#include "machine/MachineDesc.h"

namespace rapt {

enum class DepKind : std::uint8_t { RegTrue, MemTrue, MemAnti, MemOutput };

[[nodiscard]] const char* depKindName(DepKind k);

struct DdgEdge {
  int from = 0;
  int to = 0;
  int latency = 0;   ///< may be negative (memory anti-dependences)
  int distance = 0;  ///< iterations; >= 0, and > 0 when from is not before to
  DepKind kind = DepKind::RegTrue;
};

class Ddg {
 public:
  /// Builds the dependence graph of `loop` under the latencies of `lat`.
  [[nodiscard]] static Ddg build(const Loop& loop, const LatencyTable& lat);

  /// Builds directly from an explicit edge list (e.g. a graph derived from
  /// another Ddg with adjusted latencies, as in partition/RemoteAccess).
  [[nodiscard]] static Ddg fromEdges(int numOps, std::vector<DdgEdge> edges);

  [[nodiscard]] int numOps() const { return numOps_; }
  [[nodiscard]] std::span<const DdgEdge> edges() const { return edges_; }
  /// Edge indices leaving / entering `op`.
  [[nodiscard]] std::span<const int> succEdges(int op) const { return succ_[op]; }
  [[nodiscard]] std::span<const int> predEdges(int op) const { return pred_[op]; }
  [[nodiscard]] const DdgEdge& edge(int idx) const { return edges_[idx]; }

  /// Resource-constrained minimum II on `machine`, assuming every operation
  /// may issue on any functional unit (the pre-partitioning state).
  [[nodiscard]] int resII(const MachineDesc& machine) const;

  /// Recurrence-constrained minimum II: the smallest II for which no
  /// dependence cycle has positive slack-weight (lat - II*dist summed > 0).
  [[nodiscard]] int recII() const;

  /// max(resII, recII).
  [[nodiscard]] int minII(const MachineDesc& machine) const;

  /// True if an II admits some schedule as far as recurrences are concerned.
  [[nodiscard]] bool feasibleII(int ii) const;

  /// Longest-path "height" of each op to any graph sink at the given II
  /// (Rau's scheduling priority): height(o) = max over succ edges
  /// (height(succ) + lat - II*dist), 0 at sinks. Requires feasibleII(ii).
  [[nodiscard]] std::vector<int> heights(int ii) const;

  /// Per-op Flexibility at a given (feasible) schedule: slack + 1, where
  /// slack is the scheduling freedom of the op between its scheduled
  /// predecessors and successors (paper §5). `cycle[o]` is the op's start
  /// cycle; `horizon` is the last cycle of the flat schedule.
  [[nodiscard]] std::vector<int> flexibility(std::span<const int> cycle,
                                             int ii, int horizon) const;

 private:
  void addEdge(DdgEdge e);
  void buildAdjacency();

  int numOps_ = 0;
  std::vector<DdgEdge> edges_;
  std::vector<std::vector<int>> succ_, pred_;
};

}  // namespace rapt
