#include "ir/Function.h"

#include <algorithm>

namespace rapt {

std::vector<VirtReg> Function::allRegs() const {
  std::vector<VirtReg> regs;
  for (const BasicBlock& bb : blocks) {
    for (const Operation& o : bb.ops) {
      if (o.def.isValid()) regs.push_back(o.def);
      for (VirtReg s : o.srcs()) regs.push_back(s);
    }
  }
  std::sort(regs.begin(), regs.end());
  regs.erase(std::unique(regs.begin(), regs.end()), regs.end());
  return regs;
}

bool hasDefinition(const Function& fn, VirtReg r) {
  for (const BasicBlock& bb : fn.blocks) {
    for (const Operation& o : bb.ops) {
      if (o.def.isValid() && o.def == r) return true;
    }
  }
  return false;
}

}  // namespace rapt
