// Whole-function representation: a control-flow graph of basic blocks.
//
// The paper's framework "is global in nature" (§1) and the greedy method
// "works on a function basis" (§6.3); the experimental pipeline operates on
// software-pipelined loops, but the register component graph, the list
// scheduler, and the Chaitin/Briggs allocator all accept functions too. This
// CFG is deliberately simple: straight-line blocks of the same Operation
// vocabulary plus explicit successor edges (loop control is abstract, as in
// Loop).
#pragma once

#include <string>
#include <vector>

#include "ir/Operation.h"

namespace rapt {

struct BasicBlock {
  std::vector<Operation> ops;
  std::vector<int> succs;   ///< indices into Function::blocks
  int nestingDepth = 0;     ///< loop-nest depth (RCG weighting)
};

class Function {
 public:
  std::string name = "fn";
  std::vector<ArrayDecl> arrays;
  std::vector<BasicBlock> blocks;  ///< blocks[0] is the entry

  ArrayId addArray(std::string arrName, std::int64_t size, bool isFloat) {
    arrays.push_back(ArrayDecl{std::move(arrName), size, isFloat});
    return static_cast<ArrayId>(arrays.size() - 1);
  }

  [[nodiscard]] int numBlocks() const { return static_cast<int>(blocks.size()); }

  /// Predecessor lists derived from the successor edges.
  [[nodiscard]] std::vector<std::vector<int>> predecessors() const {
    std::vector<std::vector<int>> preds(blocks.size());
    for (int b = 0; b < numBlocks(); ++b)
      for (int s : blocks[b].succs) preds[s].push_back(b);
    return preds;
  }

  /// All registers mentioned anywhere in the function (sorted, unique).
  [[nodiscard]] std::vector<VirtReg> allRegs() const;
};

/// True if any operation in `fn` defines `r`.
[[nodiscard]] bool hasDefinition(const Function& fn, VirtReg r);

}  // namespace rapt
