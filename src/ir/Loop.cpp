#include "ir/Loop.h"

#include <algorithm>
#include <sstream>

#include "support/Assert.h"

namespace rapt {

ArrayId Loop::addArray(std::string arrName, std::int64_t size, bool isFloat) {
  arrays.push_back(ArrayDecl{std::move(arrName), size, isFloat});
  return static_cast<ArrayId>(arrays.size() - 1);
}

VirtReg Loop::freshReg(RegClass rc) const {
  std::uint32_t next = 0;
  auto note = [&](VirtReg r) {
    if (r.isValid() && r.cls() == rc) next = std::max(next, r.index() + 1);
  };
  for (const Operation& o : body) {
    note(o.def);
    for (VirtReg s : o.srcs()) note(s);
  }
  note(induction);
  for (const LiveInValue& lv : liveInValues) note(lv.reg);
  return VirtReg(rc, next);
}

std::optional<int> Loop::defPos(VirtReg r) const {
  for (int i = 0; i < size(); ++i) {
    if (body[i].def.isValid() && body[i].def == r) return i;
  }
  return std::nullopt;
}

std::vector<VirtReg> Loop::allRegs() const {
  std::vector<VirtReg> regs;
  for (const Operation& o : body) {
    if (o.def.isValid()) regs.push_back(o.def);
    for (VirtReg s : o.srcs()) regs.push_back(s);
  }
  std::sort(regs.begin(), regs.end());
  regs.erase(std::unique(regs.begin(), regs.end()), regs.end());
  return regs;
}

std::vector<VirtReg> Loop::invariants() const {
  std::vector<VirtReg> result;
  for (VirtReg r : allRegs()) {
    if (!defPos(r)) result.push_back(r);
  }
  return result;
}

bool Loop::isCarriedUse(int opIdx, VirtReg r) const {
  const std::optional<int> d = defPos(r);
  return d && *d >= opIdx;
}

std::optional<std::string> validate(const Loop& loop) {
  auto err = [&](int idx, const std::string& what) -> std::optional<std::string> {
    std::ostringstream os;
    os << "loop '" << loop.name << "' op " << idx << ": " << what;
    return os.str();
  };

  std::vector<VirtReg> defined;
  for (int i = 0; i < loop.size(); ++i) {
    const Operation& o = loop.body[i];
    if (o.op >= Opcode::kCount_) return err(i, "invalid opcode");
    const OpcodeInfo& info = o.info();
    if (info.hasDef != o.def.isValid())
      return err(i, "definition operand does not match opcode");
    if (info.hasDef && o.def.cls() != info.defCls)
      return err(i, "definition register class mismatch");
    for (int s = 0; s < info.numSrcs; ++s) {
      if (!o.src[s].isValid()) return err(i, "missing source operand");
      if (o.src[s].cls() != info.srcCls[s])
        return err(i, "source register class mismatch");
    }
    if (isMemory(o.op)) {
      if (o.array == kNoArray || o.array >= loop.arrays.size())
        return err(i, "memory operation references unknown array");
      const bool fltOp = (o.op == Opcode::FLoad || o.op == Opcode::FStore);
      if (loop.arrays[o.array].isFloat != fltOp)
        return err(i, "memory operation element type does not match array");
    }
    if (info.hasDef) {
      if (std::find(defined.begin(), defined.end(), o.def) != defined.end())
        return err(i, "register defined more than once in body");
      defined.push_back(o.def);
    }
  }

  if (loop.induction.isValid()) {
    if (loop.induction.cls() != RegClass::Int)
      return std::optional<std::string>("loop '" + loop.name +
                                        "': induction register must be integer");
    const std::optional<int> d = loop.defPos(loop.induction);
    if (!d)
      return std::optional<std::string>("loop '" + loop.name +
                                        "': induction register is never updated");
    const Operation& upd = loop.body[*d];
    if (upd.op != Opcode::IAddImm || upd.src[0] != loop.induction || upd.imm != 1)
      return std::optional<std::string>(
          "loop '" + loop.name + "': induction update must be `iaddi iv, iv, 1`");
  }
  return std::nullopt;
}

}  // namespace rapt
