// Single-block innermost loop representation.
//
// This is the unit the paper's evaluation operates on: "211 loops ... that
// were all single-block innermost loops" (§6.3). A Loop is a straight-line
// body executed `trip` times.
//
// Register semantics (quasi-SSA per iteration):
//   * each virtual register has at most one definition in the body;
//   * a use that appears *before* (or at) its definition in body order reads
//     the value produced in the PREVIOUS iteration (loop-carried, distance 1);
//     on iteration 0 it reads the register's initial (live-in) value;
//   * a register used but never defined in the body is a loop invariant.
//
// The induction variable, when present, must be defined by
// `iaddi iv, iv, 1`, so its value at any use placed before that definition is
// exactly the 0-based iteration number; memory dependence analysis exploits
// this (see ddg/AffineIndex).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/Operation.h"

namespace rapt {

/// Initial value of a register that is live into the loop (loop invariants
/// and the iteration-0 inputs of recurrences). Registers without an entry
/// default to zero.
struct LiveInValue {
  VirtReg reg;
  std::int64_t i = 0;  ///< used when reg is an integer register
  double f = 0.0;      ///< used when reg is a floating register
};

class Loop {
 public:
  std::string name = "loop";
  int nestingDepth = 1;          ///< loop-nest depth of the block (RCG weighting)
  std::int64_t trip = 64;        ///< default trip count for simulation
  std::vector<ArrayDecl> arrays;
  std::vector<Operation> body;
  VirtReg induction;             ///< invalid when the loop has no memory ops
  std::vector<LiveInValue> liveInValues;

  /// Declare a memory object; returns its id.
  ArrayId addArray(std::string arrName, std::int64_t size, bool isFloat);

  /// A fresh register of class `rc`, with index above any register mentioned
  /// so far (body, induction, live-in list).
  [[nodiscard]] VirtReg freshReg(RegClass rc) const;

  /// Position of the (unique) definition of `r` in the body, if any.
  [[nodiscard]] std::optional<int> defPos(VirtReg r) const;

  /// All registers mentioned in the body (sorted by key, unique).
  [[nodiscard]] std::vector<VirtReg> allRegs() const;

  /// Registers read by the body but never defined in it (loop invariants).
  [[nodiscard]] std::vector<VirtReg> invariants() const;

  /// True if the use of `r` by body[opIdx] reads the previous iteration's
  /// value (its definition is at or after opIdx, or `r` is never defined but
  /// that case is an invariant, not a carried use).
  [[nodiscard]] bool isCarriedUse(int opIdx, VirtReg r) const;

  /// Number of operations in the body.
  [[nodiscard]] int size() const { return static_cast<int>(body.size()); }
};

/// Structural validation; returns an error description or nullopt if valid.
[[nodiscard]] std::optional<std::string> validate(const Loop& loop);

}  // namespace rapt
