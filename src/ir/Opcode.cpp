#include "ir/Opcode.h"

#include <array>

#include "support/Assert.h"

namespace rapt {
namespace {

constexpr RegClass I = RegClass::Int;
constexpr RegClass F = RegClass::Flt;

constexpr OpcodeInfo kTable[kNumOpcodes] = {
    // name       lat                 kind           def    defC  n  srcC      imm    fimm
    {"iconst",    LatClass::IntAlu,   OpKind::Const, true,  I,    0, {I, I},   true,  false},
    {"imov",      LatClass::IntAlu,   OpKind::Arith, true,  I,    1, {I, I},   false, false},
    {"iadd",      LatClass::IntAlu,   OpKind::Arith, true,  I,    2, {I, I},   false, false},
    {"isub",      LatClass::IntAlu,   OpKind::Arith, true,  I,    2, {I, I},   false, false},
    {"imul",      LatClass::IntMul,   OpKind::Arith, true,  I,    2, {I, I},   false, false},
    {"idiv",      LatClass::IntDiv,   OpKind::Arith, true,  I,    2, {I, I},   false, false},
    {"iand",      LatClass::IntAlu,   OpKind::Arith, true,  I,    2, {I, I},   false, false},
    {"ior",       LatClass::IntAlu,   OpKind::Arith, true,  I,    2, {I, I},   false, false},
    {"ixor",      LatClass::IntAlu,   OpKind::Arith, true,  I,    2, {I, I},   false, false},
    {"ishl",      LatClass::IntAlu,   OpKind::Arith, true,  I,    2, {I, I},   false, false},
    {"ishr",      LatClass::IntAlu,   OpKind::Arith, true,  I,    2, {I, I},   false, false},
    {"iaddi",     LatClass::IntAlu,   OpKind::Arith, true,  I,    1, {I, I},   true,  false},
    {"itof",      LatClass::FltOther, OpKind::Arith, true,  F,    1, {I, I},   false, false},
    {"iload",     LatClass::Load,     OpKind::Load,  true,  I,    1, {I, I},   true,  false},
    {"istore",    LatClass::Store,    OpKind::Store, false, I,    2, {I, I},   true,  false},
    {"icpy",      LatClass::IntCopy,  OpKind::Copy,  true,  I,    1, {I, I},   false, false},
    {"fconst",    LatClass::FltOther, OpKind::Const, true,  F,    0, {I, I},   false, true},
    {"fmov",      LatClass::FltOther, OpKind::Arith, true,  F,    1, {F, F},   false, false},
    {"fadd",      LatClass::FltOther, OpKind::Arith, true,  F,    2, {F, F},   false, false},
    {"fsub",      LatClass::FltOther, OpKind::Arith, true,  F,    2, {F, F},   false, false},
    {"fmul",      LatClass::FltMul,   OpKind::Arith, true,  F,    2, {F, F},   false, false},
    {"fdiv",      LatClass::FltDiv,   OpKind::Arith, true,  F,    2, {F, F},   false, false},
    {"ftoi",      LatClass::FltOther, OpKind::Arith, true,  I,    1, {F, F},   false, false},
    {"fload",     LatClass::Load,     OpKind::Load,  true,  F,    1, {I, I},   true,  false},
    {"fstore",    LatClass::Store,    OpKind::Store, false, I,    2, {I, F},   true,  false},
    {"fcpy",      LatClass::FltCopy,  OpKind::Copy,  true,  F,    1, {F, F},   false, false},
};

}  // namespace

const OpcodeInfo& opcodeInfo(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  RAPT_ASSERT(idx < static_cast<std::size_t>(kNumOpcodes), "bad opcode");
  return kTable[idx];
}

Opcode opcodeFromName(std::string_view name) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    if (kTable[i].name == name) return static_cast<Opcode>(i);
  }
  return Opcode::kCount_;
}

}  // namespace rapt
