// Opcode vocabulary of the rapt intermediate code.
//
// The operation set is the minimum a Fortran-77 innermost loop needs (the
// paper's corpus is Spec95 Fortran loops): integer and floating arithmetic,
// array loads/stores, conversions, and the two explicit cross-bank copy
// opcodes the partitioning framework inserts (ICPY/FCPY).
//
// Loop control is deliberately absent from loop bodies: the simulated target
// has counted-loop hardware (TI C6x / IA-64 `br.ctop` style), so the
// initiation interval is bounded only by data dependences and functional-unit
// resources, matching the paper's measurement of kernel size == II.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "ir/Reg.h"

namespace rapt {

enum class Opcode : std::uint8_t {
  // Integer.
  IConst,  ///< def = imm
  IMov,    ///< def = src0
  IAdd, ISub, IMul, IDiv, IAnd, IOr, IXor, IShl, IShr,
  IAddImm,  ///< def = src0 + imm (address arithmetic, induction update)
  IToF,     ///< def(flt) = (double)src0(int)
  ILoad,    ///< def = array[src0 + imm]
  IStore,   ///< array[src0 + imm] = src1
  ICopy,    ///< cross-bank copy: def(bank B) = src0(bank A)
  // Floating point.
  FConst,  ///< def = fimm
  FMov,    ///< def = src0
  FAdd, FSub, FMul, FDiv,
  FToI,    ///< def(int) = (int64)src0(flt)
  FLoad,   ///< def = array[src0 + imm]
  FStore,  ///< array[src0 + imm] = src1
  FCopy,   ///< cross-bank copy
  kCount_,
};

constexpr int kNumOpcodes = static_cast<int>(Opcode::kCount_);

/// Latency/resource class; the machine model maps these to cycle counts
/// (paper §6.1 lists the latency of each class).
enum class LatClass : std::uint8_t {
  IntAlu,   ///< "other integer instructions": 1 cycle
  IntMul,   ///< 5 cycles
  IntDiv,   ///< 12 cycles
  Load,     ///< 2 cycles
  Store,    ///< 4 cycles (store-to-load visibility)
  FltOther, ///< "other floating point": 2 cycles
  FltMul,   ///< 2 cycles
  FltDiv,   ///< 2 cycles
  IntCopy,  ///< inter-cluster integer copy: 2 cycles
  FltCopy,  ///< inter-cluster floating copy: 3 cycles
};

/// Broad structural kind, used by dependence analysis and the simulator.
enum class OpKind : std::uint8_t { Const, Arith, Load, Store, Copy };

/// Static description of one opcode.
struct OpcodeInfo {
  std::string_view name;
  LatClass lat;
  OpKind kind;
  bool hasDef;
  RegClass defCls;                 // meaningful iff hasDef
  std::uint8_t numSrcs;            // 0..2
  RegClass srcCls[2];              // meaningful for i < numSrcs
  bool hasImm;                     // integer immediate operand
  bool hasFimm;                    // floating immediate operand
};

/// Lookup table entry for `op`.
[[nodiscard]] const OpcodeInfo& opcodeInfo(Opcode op);

[[nodiscard]] inline std::string_view opcodeName(Opcode op) { return opcodeInfo(op).name; }
[[nodiscard]] inline bool isMemory(Opcode op) {
  const OpKind k = opcodeInfo(op).kind;
  return k == OpKind::Load || k == OpKind::Store;
}
[[nodiscard]] inline bool isLoad(Opcode op) { return opcodeInfo(op).kind == OpKind::Load; }
[[nodiscard]] inline bool isStore(Opcode op) { return opcodeInfo(op).kind == OpKind::Store; }
[[nodiscard]] inline bool isCopy(Opcode op) { return opcodeInfo(op).kind == OpKind::Copy; }

/// Parse an opcode mnemonic; returns kCount_ on failure.
[[nodiscard]] Opcode opcodeFromName(std::string_view name);

}  // namespace rapt
