// A single three-address operation of the intermediate code.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "ir/Opcode.h"
#include "ir/Reg.h"

namespace rapt {

/// Identifier of a named array (the memory objects of a loop). Arrays never
/// alias each other; indices are analyzed affinely for dependence distances.
using ArrayId = std::uint32_t;
constexpr ArrayId kNoArray = ~0u;

/// A named, non-aliasing memory object.
struct ArrayDecl {
  std::string name;
  std::int64_t size = 0;  ///< element count
  bool isFloat = false;   ///< element type
};

/// One operation. Plain value type; the opcode determines which fields are
/// meaningful (see OpcodeInfo).
///
/// Memory addressing is `array[src0 + imm]` where src0 is an integer index
/// register (typically derived from the loop induction variable) and imm a
/// constant element offset.
struct Operation {
  Opcode op = Opcode::kCount_;
  VirtReg def;                   ///< invalid when the opcode has no result
  std::array<VirtReg, 2> src{};  ///< src[0..numSrcs-1]
  std::int64_t imm = 0;          ///< integer immediate / memory offset
  double fimm = 0.0;             ///< floating immediate (FConst)
  ArrayId array = kNoArray;      ///< memory operations only

  [[nodiscard]] const OpcodeInfo& info() const { return opcodeInfo(op); }
  [[nodiscard]] int numSrcs() const { return info().numSrcs; }
  [[nodiscard]] bool hasDef() const { return info().hasDef; }
  [[nodiscard]] std::span<const VirtReg> srcs() const {
    return {src.data(), static_cast<std::size_t>(numSrcs())};
  }

  /// True if this operation reads `r`.
  [[nodiscard]] bool uses(VirtReg r) const {
    for (VirtReg s : srcs())
      if (s == r) return true;
    return false;
  }
};

// ---- Convenience constructors -------------------------------------------

[[nodiscard]] inline Operation makeIConst(VirtReg def, std::int64_t value) {
  Operation o;
  o.op = Opcode::IConst;
  o.def = def;
  o.imm = value;
  return o;
}

[[nodiscard]] inline Operation makeFConst(VirtReg def, double value) {
  Operation o;
  o.op = Opcode::FConst;
  o.def = def;
  o.fimm = value;
  return o;
}

[[nodiscard]] inline Operation makeUnary(Opcode op, VirtReg def, VirtReg s0,
                                         std::int64_t imm = 0) {
  Operation o;
  o.op = op;
  o.def = def;
  o.src[0] = s0;
  o.imm = imm;
  return o;
}

[[nodiscard]] inline Operation makeBinary(Opcode op, VirtReg def, VirtReg s0, VirtReg s1) {
  Operation o;
  o.op = op;
  o.def = def;
  o.src[0] = s0;
  o.src[1] = s1;
  return o;
}

[[nodiscard]] inline Operation makeLoad(Opcode op, VirtReg def, ArrayId array, VirtReg idx,
                                        std::int64_t offset = 0) {
  Operation o;
  o.op = op;
  o.def = def;
  o.src[0] = idx;
  o.imm = offset;
  o.array = array;
  return o;
}

[[nodiscard]] inline Operation makeStore(Opcode op, ArrayId array, VirtReg idx,
                                         VirtReg value, std::int64_t offset = 0) {
  Operation o;
  o.op = op;
  o.src[0] = idx;
  o.src[1] = value;
  o.imm = offset;
  o.array = array;
  return o;
}

/// Cross-bank copy of `s0` into `def` (classes must match; ICopy/FCopy chosen
/// by class).
[[nodiscard]] inline Operation makeCopy(VirtReg def, VirtReg s0) {
  Operation o;
  o.op = (def.cls() == RegClass::Int) ? Opcode::ICopy : Opcode::FCopy;
  o.def = def;
  o.src[0] = s0;
  return o;
}

}  // namespace rapt
