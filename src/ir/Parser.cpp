#include "ir/Parser.h"

#include "ir/Function.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <optional>

#include "support/Assert.h"

namespace rapt {
namespace {

enum class TokKind { Ident, IntLit, FltLit, Punct, End };

struct Token {
  TokKind kind = TokKind::End;
  std::string text;       // Ident / literal spelling
  std::int64_t ival = 0;  // IntLit
  double fval = 0.0;      // FltLit
  char punct = 0;         // Punct
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skipSpaceAndComments();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) return t;  // End
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_'))
        ++pos_;
      t.kind = TokKind::Ident;
      t.text = std::string(text_.substr(start, pos_ - start));
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      return lexNumber();
    }
    switch (c) {
      case '{': case '}': case '[': case ']': case '=': case ',': case '+': case '-': case '>':
        ++pos_;
        t.kind = TokKind::Punct;
        t.punct = c;
        return t;
      default:
        throw ParseError(line_, std::string("unexpected character '") + c + "'");
    }
  }

 private:
  Token lexNumber() {
    Token t;
    t.line = line_;
    std::size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    bool isFloat = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        isFloat = true;
        ++pos_;
        if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-') &&
            (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))
          ++pos_;
      } else {
        break;
      }
    }
    const std::string spelling(text_.substr(start, pos_ - start));
    t.text = spelling;
    if (isFloat) {
      t.kind = TokKind::FltLit;
      t.fval = std::strtod(spelling.c_str(), nullptr);
    } else {
      t.kind = TokKind::IntLit;
      auto [p, ec] = std::from_chars(spelling.data(), spelling.data() + spelling.size(),
                                     t.ival);
      if (ec != std::errc{}) throw ParseError(line_, "bad integer literal " + spelling);
    }
    return t;
  }

  void skipSpaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// Parses "iN"/"fN" idents into registers.
std::optional<VirtReg> regFromIdent(const std::string& ident) {
  if (ident.size() < 2) return std::nullopt;
  RegClass rc;
  if (ident[0] == 'i')
    rc = RegClass::Int;
  else if (ident[0] == 'f')
    rc = RegClass::Flt;
  else
    return std::nullopt;
  std::uint32_t idx = 0;
  auto [p, ec] = std::from_chars(ident.data() + 1, ident.data() + ident.size(), idx);
  if (ec != std::errc{} || p != ident.data() + ident.size()) return std::nullopt;
  return VirtReg(rc, idx);
}

class Parser {
 public:
  explicit Parser(std::string_view text,
                  ParseValidation validation = ParseValidation::Strict)
      : lexer_(text), validation_(validation) {
    advance();
  }

  std::vector<Loop> parseAll() {
    std::vector<Loop> loops;
    while (cur_.kind != TokKind::End) loops.push_back(parseOne());
    return loops;
  }

  std::vector<Function> parseAllFunctions() {
    std::vector<Function> fns;
    while (cur_.kind != TokKind::End) fns.push_back(parseOneFunction());
    return fns;
  }

  Function parseOneFunction() {
    expectKeyword("function");
    Function fn;
    fn.name = expectIdent("function name");
    expectPunct('{');
    std::vector<std::string> blockNames;
    std::vector<std::vector<std::string>> succNames;
    while (!isPunct('}')) {
      if (cur_.kind != TokKind::Ident)
        throw ParseError(cur_.line, "expected 'array' or 'block'");
      if (cur_.text == "array") {
        advance();
        parseArrayDecl(fn.arrays);
        continue;
      }
      expectKeyword("block");
      BasicBlock bb;
      const std::string blockName = expectIdent("block name");
      if (cur_.kind == TokKind::Ident && cur_.text == "depth") {
        advance();
        bb.nestingDepth = static_cast<int>(expectInt("nesting depth"));
      }
      expectPunct('{');
      while (!isPunct('}')) {
        if (cur_.kind != TokKind::Ident)
          throw ParseError(cur_.line, "expected operation");
        const Opcode storeOp = opcodeFromName(cur_.text);
        if (storeOp != Opcode::kCount_ && isStore(storeOp)) {
          advance();
          parseStore(fn.arrays, bb.ops, storeOp);
        } else {
          parseAssignment(fn.arrays, bb.ops);
        }
      }
      expectPunct('}');
      std::vector<std::string> succs;
      if (isPunct('-')) {  // "->" successor list
        advance();
        expectPunct('>');
        succs.push_back(expectIdent("successor block name"));
        while (isPunct(',')) {
          advance();
          succs.push_back(expectIdent("successor block name"));
        }
      }
      blockNames.push_back(blockName);
      succNames.push_back(std::move(succs));
      fn.blocks.push_back(std::move(bb));
    }
    expectPunct('}');
    // Resolve successor names.
    for (std::size_t b = 0; b < succNames.size(); ++b) {
      for (const std::string& s : succNames[b]) {
        int target = -1;
        for (std::size_t i = 0; i < blockNames.size(); ++i) {
          if (blockNames[i] == s) target = static_cast<int>(i);
        }
        if (target < 0)
          throw ParseError(cur_.line, "unknown successor block '" + s + "'");
        fn.blocks[b].succs.push_back(target);
      }
    }
    return fn;
  }

  Loop parseOne() {
    expectKeyword("loop");
    Loop loop;
    loop.name = expectIdent("loop name");
    while (cur_.kind == TokKind::Ident) {
      if (cur_.text == "depth") {
        advance();
        loop.nestingDepth = static_cast<int>(expectInt("nesting depth"));
      } else if (cur_.text == "trip") {
        advance();
        loop.trip = expectInt("trip count");
      } else {
        throw ParseError(cur_.line, "expected 'depth', 'trip' or '{'");
      }
    }
    expectPunct('{');
    while (!isPunct('}')) parseStatement(loop);
    expectPunct('}');

    // Append the canonical induction update if the user declared an induction
    // variable but did not write the update.
    if (loop.induction.isValid() && !loop.defPos(loop.induction)) {
      loop.body.push_back(
          makeUnary(Opcode::IAddImm, loop.induction, loop.induction, 1));
    }
    if (validation_ == ParseValidation::Strict) {
      if (auto err = validate(loop)) throw ParseError(cur_.line, *err);
    }
    return loop;
  }

 private:
  void parseStatement(Loop& loop) {
    if (cur_.kind != TokKind::Ident)
      throw ParseError(cur_.line, "expected statement");
    const std::string head = cur_.text;
    if (head == "array") {
      advance();
      parseArrayDecl(loop.arrays);
      return;
    }
    if (head == "induction") {
      advance();
      loop.induction = expectReg("induction register");
      if (loop.induction.cls() != RegClass::Int)
        throw ParseError(cur_.line, "induction register must be an integer register");
      return;
    }
    if (head == "livein") {
      advance();
      LiveInValue lv;
      lv.reg = expectReg("livein register");
      if (isPunct('=')) {
        advance();
        if (cur_.kind == TokKind::FltLit) {
          lv.f = cur_.fval;
          lv.i = static_cast<std::int64_t>(cur_.fval);
          advance();
        } else {
          const std::int64_t v = expectInt("livein value");
          lv.i = v;
          lv.f = static_cast<double>(v);
        }
      }
      loop.liveInValues.push_back(lv);
      return;
    }
    // Store statement?
    const Opcode storeOp = opcodeFromName(head);
    if (storeOp != Opcode::kCount_ && isStore(storeOp)) {
      advance();
      parseStore(loop.arrays, loop.body, storeOp);
      return;
    }
    // Otherwise: `reg = opcode ...`.
    parseAssignment(loop.arrays, loop.body);
  }

  void parseArrayDecl(std::vector<ArrayDecl>& arrays) {
    const int declLine = cur_.line;
    const std::string name = expectIdent("array name");
    if (regFromIdent(name))
      throw ParseError(declLine, "array name '" + name + "' collides with register syntax");
    expectPunct('[');
    const std::int64_t size = expectInt("array size");
    expectPunct(']');
    const std::string type = expectIdent("array element type ('int' or 'flt')");
    if (type != "int" && type != "flt")
      throw ParseError(declLine, "array element type must be 'int' or 'flt'");
    arrays.push_back(ArrayDecl{name, size, type == "flt"});
  }

  /// arr '[' idxReg (('+'|'-') INT)? ']'  -> (arrayId, idx, offset)
  void parseMemRef(const std::vector<ArrayDecl>& arrays, ArrayId& outArray,
                   VirtReg& outIdx, std::int64_t& outOffset) {
    const int line = cur_.line;
    const std::string name = expectIdent("array name");
    outArray = kNoArray;
    for (std::size_t i = 0; i < arrays.size(); ++i) {
      if (arrays[i].name == name) outArray = static_cast<ArrayId>(i);
    }
    if (outArray == kNoArray) throw ParseError(line, "unknown array '" + name + "'");
    expectPunct('[');
    outIdx = expectReg("index register");
    outOffset = 0;
    if (isPunct('+') || isPunct('-')) {
      const bool neg = cur_.punct == '-';
      advance();
      outOffset = expectInt("index offset");
      if (neg) outOffset = -outOffset;
    }
    expectPunct(']');
  }

  void parseStore(const std::vector<ArrayDecl>& arrays, std::vector<Operation>& body,
                  Opcode op) {
    ArrayId arr;
    VirtReg idx;
    std::int64_t off;
    parseMemRef(arrays, arr, idx, off);
    expectPunct(',');
    const VirtReg value = expectReg("store value register");
    body.push_back(makeStore(op, arr, idx, value, off));
  }

  void parseAssignment(const std::vector<ArrayDecl>& arrays,
                       std::vector<Operation>& body) {
    const int line = cur_.line;
    const VirtReg def = expectReg("destination register");
    expectPunct('=');
    const std::string mnemonic = expectIdent("opcode");
    const Opcode op = opcodeFromName(mnemonic);
    if (op == Opcode::kCount_) throw ParseError(line, "unknown opcode '" + mnemonic + "'");
    const OpcodeInfo& info = opcodeInfo(op);
    if (!info.hasDef)
      throw ParseError(line, "opcode '" + mnemonic + "' produces no result");

    Operation o;
    o.op = op;
    o.def = def;
    switch (info.kind) {
      case OpKind::Const:
        if (info.hasFimm) {
          if (cur_.kind == TokKind::FltLit) {
            o.fimm = cur_.fval;
            advance();
          } else {
            o.fimm = static_cast<double>(expectInt("constant"));
          }
        } else {
          o.imm = expectInt("constant");
        }
        break;
      case OpKind::Load: {
        ArrayId arr;
        VirtReg idx;
        std::int64_t off;
        parseMemRef(arrays, arr, idx, off);
        o.src[0] = idx;
        o.imm = off;
        o.array = arr;
        break;
      }
      case OpKind::Arith:
      case OpKind::Copy:
        o.src[0] = expectReg("source register");
        if (info.numSrcs == 2) {
          expectPunct(',');
          o.src[1] = expectReg("source register");
        }
        if (info.hasImm) {
          expectPunct(',');
          o.imm = expectInt("immediate");
        }
        break;
      case OpKind::Store:
        RAPT_UNREACHABLE("stores handled in parseStore");
    }
    body.push_back(o);
  }

  // -- token helpers --------------------------------------------------------
  void advance() { cur_ = lexer_.next(); }

  bool isPunct(char c) const { return cur_.kind == TokKind::Punct && cur_.punct == c; }

  void expectPunct(char c) {
    if (!isPunct(c))
      throw ParseError(cur_.line, std::string("expected '") + c + "'");
    advance();
  }

  void expectKeyword(const char* kw) {
    if (cur_.kind != TokKind::Ident || cur_.text != kw)
      throw ParseError(cur_.line, std::string("expected '") + kw + "'");
    advance();
  }

  std::string expectIdent(const char* what) {
    if (cur_.kind != TokKind::Ident)
      throw ParseError(cur_.line, std::string("expected ") + what);
    std::string s = cur_.text;
    advance();
    return s;
  }

  std::int64_t expectInt(const char* what) {
    if (cur_.kind != TokKind::IntLit)
      throw ParseError(cur_.line, std::string("expected integer ") + what);
    const std::int64_t v = cur_.ival;
    advance();
    return v;
  }

  VirtReg expectReg(const char* what) {
    if (cur_.kind == TokKind::Ident) {
      if (auto r = regFromIdent(cur_.text)) {
        advance();
        return *r;
      }
    }
    throw ParseError(cur_.line, std::string("expected register for ") + what);
  }

  Lexer lexer_;
  Token cur_;
  ParseValidation validation_ = ParseValidation::Strict;
};

}  // namespace

Function parseFunction(std::string_view text) {
  Parser p(text);
  auto fns = p.parseAllFunctions();
  if (fns.size() != 1)
    throw ParseError(1, "expected exactly one function, found " +
                            std::to_string(fns.size()));
  return std::move(fns.front());
}

std::vector<Function> parseFunctions(std::string_view text) {
  return Parser(text).parseAllFunctions();
}

Loop parseLoop(std::string_view text, ParseValidation validation) {
  Parser p(text, validation);
  auto loops = p.parseAll();
  if (loops.size() != 1)
    throw ParseError(1, "expected exactly one loop, found " + std::to_string(loops.size()));
  return std::move(loops.front());
}

std::vector<Loop> parseLoops(std::string_view text, ParseValidation validation) {
  return Parser(text, validation).parseAll();
}

}  // namespace rapt
