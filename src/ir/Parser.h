// Text format for loop kernels.
//
// The paper's loops came out of the Rocket compiler's Fortran front end; this
// parser is the stand-in that lets examples and tests write kernels directly:
//
//   loop daxpy depth 1 trip 256 {
//     array x[256] flt
//     array y[256] flt
//     induction i0
//     livein f0 = 2.5
//     f1 = fload x[i0]
//     f2 = fmul f1, f0
//     f3 = fload y[i0 + 1]
//     f4 = fadd f2, f3
//     fstore y[i0], f4
//   }
//
// Registers are written iN / fN. `depth`, `trip`, and the livein initializer
// are optional. If an `induction` register is declared but never updated, the
// canonical `iaddi iv, iv, 1` update is appended automatically. `#` starts a
// comment that runs to end of line. A file may contain several loops.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ir/Function.h"
#include "ir/Loop.h"

namespace rapt {

/// Error in user-provided loop text. Carries a 1-based line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Strict parsing (the default) rejects loops that fail ir::validate() with a
/// ParseError; lenient parsing returns them as written so a client with its
/// own semantic layer (src/analysis, via tools/rapt-lint) can report
/// structured diagnostics instead of a thrown string.
enum class ParseValidation : std::uint8_t { Strict, Lenient };

/// Parse exactly one loop; throws ParseError on malformed input and (in
/// Strict mode) on loops that fail structural validation.
[[nodiscard]] Loop parseLoop(std::string_view text,
                             ParseValidation validation = ParseValidation::Strict);

/// Parse a file containing any number of loops.
[[nodiscard]] std::vector<Loop> parseLoops(
    std::string_view text, ParseValidation validation = ParseValidation::Strict);

/// Whole-function form: named blocks with explicit successor lists.
///
///   function f {
///     array g[64] flt
///     block entry { i0 = iconst 1 } -> left, right
///     block left depth 1 { ... } -> exit
///     block right depth 1 { ... } -> exit
///     block exit { ... }
///   }
[[nodiscard]] Function parseFunction(std::string_view text);
[[nodiscard]] std::vector<Function> parseFunctions(std::string_view text);

}  // namespace rapt
