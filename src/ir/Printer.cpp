#include "ir/Printer.h"

#include <sstream>

#include "ir/Function.h"

namespace rapt {

std::string regName(VirtReg r) {
  if (!r.isValid()) return "-";
  return (r.cls() == RegClass::Int ? "i" : "f") + std::to_string(r.index());
}

namespace {

std::string memRef(const Loop& loop, const Operation& op) {
  std::ostringstream os;
  os << loop.arrays[op.array].name << '[' << regName(op.src[0]);
  if (op.imm > 0) os << " + " << op.imm;
  if (op.imm < 0) os << " - " << -op.imm;
  os << ']';
  return os.str();
}

}  // namespace

std::string printOperation(const Loop& loop, const Operation& op) {
  const OpcodeInfo& info = op.info();
  std::ostringstream os;
  switch (info.kind) {
    case OpKind::Const:
      os << regName(op.def) << " = " << info.name << ' ';
      if (info.hasFimm)
        os << op.fimm;
      else
        os << op.imm;
      return os.str();
    case OpKind::Load:
      os << regName(op.def) << " = " << info.name << ' ' << memRef(loop, op);
      return os.str();
    case OpKind::Store:
      os << info.name << ' ' << memRef(loop, op) << ", " << regName(op.src[1]);
      return os.str();
    case OpKind::Copy:
    case OpKind::Arith:
      os << regName(op.def) << " = " << info.name << ' ' << regName(op.src[0]);
      if (info.numSrcs == 2) os << ", " << regName(op.src[1]);
      if (info.hasImm) os << ", " << op.imm;
      return os.str();
  }
  return "<bad op>";
}

std::string printFunction(const Function& fn) {
  // Reuse the loop-based operation printer by viewing the function's arrays
  // through a shim loop.
  Loop shim;
  shim.arrays = fn.arrays;
  std::ostringstream os;
  os << "function " << fn.name << " {\n";
  for (const ArrayDecl& a : fn.arrays)
    os << "  array " << a.name << '[' << a.size << "] " << (a.isFloat ? "flt" : "int")
       << '\n';
  for (int b = 0; b < fn.numBlocks(); ++b) {
    const BasicBlock& bb = fn.blocks[b];
    os << "  block b" << b;
    if (bb.nestingDepth != 0) os << " depth " << bb.nestingDepth;
    os << " {\n";
    for (const Operation& op : bb.ops) os << "    " << printOperation(shim, op) << '\n';
    os << "  }";
    if (!bb.succs.empty()) {
      os << " ->";
      for (std::size_t s = 0; s < bb.succs.size(); ++s)
        os << (s ? ", b" : " b") << bb.succs[s];
    }
    os << '\n';
  }
  os << "}\n";
  return os.str();
}

std::string printLoop(const Loop& loop) {
  std::ostringstream os;
  os << "loop " << loop.name << " depth " << loop.nestingDepth << " trip " << loop.trip
     << " {\n";
  for (const ArrayDecl& a : loop.arrays)
    os << "  array " << a.name << '[' << a.size << "] " << (a.isFloat ? "flt" : "int")
       << '\n';
  if (loop.induction.isValid()) os << "  induction " << regName(loop.induction) << '\n';
  for (const LiveInValue& lv : loop.liveInValues) {
    os << "  livein " << regName(lv.reg) << " = ";
    if (lv.reg.cls() == RegClass::Flt)
      os << lv.f;
    else
      os << lv.i;
    os << '\n';
  }
  for (const Operation& op : loop.body) os << "  " << printOperation(loop, op) << '\n';
  os << "}\n";
  return os.str();
}

}  // namespace rapt
