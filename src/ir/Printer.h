// Textual rendering of the IR. The output of printLoop round-trips through
// the parser (see tests/ir/ParserTest).
#pragma once

#include <string>

#include "ir/Loop.h"

namespace rapt {

/// "i3" / "f7"; "-" for the invalid register.
[[nodiscard]] std::string regName(VirtReg r);

/// One operation in the parser's syntax, e.g. "f4 = fadd f2, f3" or
/// "fstore y[i0 + 1], f4". Array names are looked up in `loop`.
[[nodiscard]] std::string printOperation(const Loop& loop, const Operation& op);

/// Whole loop in the parser's syntax.
[[nodiscard]] std::string printLoop(const Loop& loop);

/// Whole function in the parser's syntax (blocks named b0, b1, ...).
[[nodiscard]] std::string printFunction(const class Function& fn);

}  // namespace rapt
