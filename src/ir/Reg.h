// Virtual (symbolic) registers.
//
// The paper's intermediate code is built "with symbolic registers, assuming a
// single infinite register bank" (step 1 of the framework in §4). A VirtReg
// is a typed index into that infinite bank; the register class (integer vs
// floating point) is encoded in the value so an operand is a single word.
#pragma once

#include <cstdint>
#include <functional>

#include "support/Assert.h"

namespace rapt {

enum class RegClass : std::uint8_t { Int = 0, Flt = 1 };

[[nodiscard]] constexpr const char* regClassName(RegClass rc) {
  return rc == RegClass::Int ? "int" : "flt";
}

/// A typed symbolic register. Value-type, hashable, totally ordered.
/// The default-constructed VirtReg is the invalid sentinel (`isValid() ==
/// false`), used for "no destination" in stores and branches.
class VirtReg {
 public:
  constexpr VirtReg() = default;
  constexpr VirtReg(RegClass rc, std::uint32_t index)
      : raw_(kValidBit | (static_cast<std::uint32_t>(rc) << kClassShift) | index) {
    RAPT_ASSERT(index < kValidBit, "register index overflow");
  }

  [[nodiscard]] constexpr bool isValid() const { return (raw_ & kValidBit) != 0; }
  [[nodiscard]] constexpr RegClass cls() const {
    RAPT_ASSERT(isValid(), "class of invalid register");
    return static_cast<RegClass>((raw_ >> kClassShift) & 1u);
  }
  [[nodiscard]] constexpr std::uint32_t index() const {
    RAPT_ASSERT(isValid(), "index of invalid register");
    return raw_ & kIndexMask;
  }
  [[nodiscard]] constexpr bool isInt() const { return cls() == RegClass::Int; }
  [[nodiscard]] constexpr bool isFlt() const { return cls() == RegClass::Flt; }

  /// Stable key usable as a dense-ish map index: intN -> 2N, fltN -> 2N+1.
  [[nodiscard]] constexpr std::uint32_t key() const {
    return index() * 2 + (cls() == RegClass::Flt ? 1u : 0u);
  }
  /// Inverse of key().
  [[nodiscard]] static constexpr VirtReg fromKey(std::uint32_t k) {
    return VirtReg((k & 1u) ? RegClass::Flt : RegClass::Int, k / 2);
  }

  friend constexpr bool operator==(VirtReg a, VirtReg b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(VirtReg a, VirtReg b) { return a.raw_ != b.raw_; }
  friend constexpr bool operator<(VirtReg a, VirtReg b) { return a.raw_ < b.raw_; }

  [[nodiscard]] constexpr std::uint32_t rawBits() const { return raw_; }

 private:
  static constexpr std::uint32_t kValidBit = 0x8000'0000u;
  static constexpr std::uint32_t kClassShift = 30;
  static constexpr std::uint32_t kIndexMask = 0x3fff'ffffu;
  std::uint32_t raw_ = 0;
};

[[nodiscard]] constexpr VirtReg intReg(std::uint32_t index) {
  return VirtReg(RegClass::Int, index);
}
[[nodiscard]] constexpr VirtReg fltReg(std::uint32_t index) {
  return VirtReg(RegClass::Flt, index);
}

}  // namespace rapt

template <>
struct std::hash<rapt::VirtReg> {
  std::size_t operator()(rapt::VirtReg r) const noexcept {
    return std::hash<std::uint32_t>{}(r.rawBits());
  }
};
