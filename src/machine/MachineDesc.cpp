#include "machine/MachineDesc.h"

namespace rapt {

LatencyTable LatencyTable::unit() {
  LatencyTable t;
  t.intAlu = t.intMul = t.intDiv = t.load = t.store = 1;
  t.fltOther = t.fltMul = t.fltDiv = 1;
  t.intCopy = t.fltCopy = 1;
  return t;
}

MachineDesc MachineDesc::ideal16() {
  MachineDesc m;
  m.name = "ideal-16wide";
  m.numClusters = 1;
  m.fusPerCluster = 16;
  m.intRegsPerBank = 128;
  m.fltRegsPerBank = 128;
  return m;
}

namespace {
int log2OfPowerOfTwo(int x) {
  int r = 0;
  while (x > 1) {
    RAPT_ASSERT(x % 2 == 0, "cluster count must be a power of two");
    x /= 2;
    ++r;
  }
  return r;
}
}  // namespace

MachineDesc MachineDesc::paper16(int clusters, CopyModel model) {
  RAPT_ASSERT(clusters == 2 || clusters == 4 || clusters == 8,
              "paper meta-model uses 2, 4 or 8 clusters");
  MachineDesc m;
  m.name = std::to_string(clusters) + "-cluster-" +
           (model == CopyModel::Embedded ? "embedded" : "copyunit");
  m.numClusters = clusters;
  m.fusPerCluster = 16 / clusters;
  m.intRegsPerBank = 32;
  m.fltRegsPerBank = 32;
  m.copyModel = model;
  if (model == CopyModel::CopyUnit) {
    m.busCount = clusters;                            // N buses for N clusters
    m.copyPortsPerBank = log2OfPowerOfTwo(clusters);  // 1 @ 2c, 2 @ 4c, 3 @ 8c
  }
  return m;
}

MachineDesc MachineDesc::example2x1() {
  MachineDesc m;
  m.name = "example-2x1";
  m.numClusters = 2;
  m.fusPerCluster = 1;
  m.intRegsPerBank = 16;
  m.fltRegsPerBank = 16;
  m.copyModel = CopyModel::Embedded;
  m.lat = LatencyTable::unit();
  return m;
}

MachineDesc MachineDesc::tiC6xLike() {
  MachineDesc m;
  m.name = "ti-c6x-like";
  m.numClusters = 2;
  m.fusPerCluster = 4;
  m.intRegsPerBank = 16;
  m.fltRegsPerBank = 16;
  m.copyModel = CopyModel::Embedded;
  m.lat.intCopy = 1;  // C6x cross-path style
  m.lat.fltCopy = 1;
  m.lat.intMul = 2;
  m.lat.load = 5;
  m.lat.store = 1;
  return m;
}

}  // namespace rapt
