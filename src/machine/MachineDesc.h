// Retargetable description of a clustered VLIW target.
//
// The paper's meta-model (§6.1): 16 general-purpose functional units grouped
// in N clusters, each cluster owning one multi-ported register bank. Two
// variants differ in how inter-cluster copies are supported:
//
//  * Embedded   — a copy is an explicit operation that occupies an issue slot
//                 on one of the *destination* cluster's functional units.
//  * CopyUnit   — copies use reserved hardware: N buses shared by the whole
//                 machine plus a small number of extra copy ports per bank;
//                 they do not consume functional-unit slots.
//
// The number of copy ports per bank in the paper is given only at the
// endpoints (1 port/bank at 2 clusters, 3 ports/bank at 8 clusters — §6.2);
// we reconstruct the garbled formula as log2(numClusters), which matches both
// endpoints and gives 2 ports at 4 clusters. DESIGN.md records this
// substitution.
#pragma once

#include <string>

#include "ir/Opcode.h"
#include "support/Assert.h"

namespace rapt {

enum class CopyModel : std::uint8_t { Embedded, CopyUnit };

[[nodiscard]] constexpr const char* copyModelName(CopyModel m) {
  return m == CopyModel::Embedded ? "Embedded" : "Copy Unit";
}

/// Operation latencies in cycles (paper §6.1). A result produced by an
/// operation issued at cycle t is readable at cycle t + latency; a store
/// issued at t is visible to loads issued at or after t + latency.
struct LatencyTable {
  int intAlu = 1;
  int intMul = 5;
  int intDiv = 12;
  int load = 2;
  int store = 4;
  int fltOther = 2;
  int fltMul = 2;
  int fltDiv = 2;
  int intCopy = 2;
  int fltCopy = 3;

  [[nodiscard]] int of(LatClass c) const {
    switch (c) {
      case LatClass::IntAlu: return intAlu;
      case LatClass::IntMul: return intMul;
      case LatClass::IntDiv: return intDiv;
      case LatClass::Load: return load;
      case LatClass::Store: return store;
      case LatClass::FltOther: return fltOther;
      case LatClass::FltMul: return fltMul;
      case LatClass::FltDiv: return fltDiv;
      case LatClass::IntCopy: return intCopy;
      case LatClass::FltCopy: return fltCopy;
    }
    RAPT_UNREACHABLE("bad latency class");
  }
  [[nodiscard]] int of(Opcode op) const { return of(opcodeInfo(op).lat); }

  /// All latencies 1 (the §4.2 worked example assumes unit latency).
  [[nodiscard]] static LatencyTable unit();
};

/// A clustered VLIW machine. `numClusters == 1` is the monolithic ideal.
struct MachineDesc {
  std::string name = "machine";
  int numClusters = 1;
  int fusPerCluster = 16;
  int intRegsPerBank = 64;
  int fltRegsPerBank = 64;
  CopyModel copyModel = CopyModel::Embedded;
  int busCount = 0;          ///< CopyUnit model: machine-wide copy buses
  int copyPortsPerBank = 0;  ///< CopyUnit model: extra ports per bank
  LatencyTable lat;

  [[nodiscard]] int width() const { return numClusters * fusPerCluster; }
  /// Register banks. Bank b is owned by cluster b: the paper's machines have
  /// exactly one bank per cluster, but resource accounting indexed by BANK
  /// (copy ports) must use this, not numClusters, so the distinction stays
  /// explicit if the two ever diverge.
  [[nodiscard]] int numBanks() const { return numClusters; }
  [[nodiscard]] int clusterOfFu(int fu) const {
    RAPT_ASSERT(fu >= 0 && fu < width(), "FU index out of range");
    return fu / fusPerCluster;
  }
  [[nodiscard]] int firstFuOfCluster(int cluster) const {
    RAPT_ASSERT(cluster >= 0 && cluster < numClusters, "cluster out of range");
    return cluster * fusPerCluster;
  }
  [[nodiscard]] bool isMonolithic() const { return numClusters == 1; }
  /// True if inter-cluster copies consume functional-unit issue slots.
  [[nodiscard]] bool copiesUseFuSlots() const {
    return copyModel == CopyModel::Embedded;
  }
  [[nodiscard]] int regsPerBank(RegClass rc) const {
    return rc == RegClass::Int ? intRegsPerBank : fltRegsPerBank;
  }

  // ---- Presets ----

  /// The 16-wide monolithic ideal machine of Table 1's "Ideal" row.
  [[nodiscard]] static MachineDesc ideal16();

  /// The paper's clustered meta-model: 16 FUs in `clusters` clusters
  /// (2, 4, or 8) with the given copy model.
  [[nodiscard]] static MachineDesc paper16(int clusters, CopyModel model);

  /// The §4.2 worked-example machine: 2 clusters of 1 FU, unit latencies,
  /// embedded copies.
  [[nodiscard]] static MachineDesc example2x1();

  /// A TI C6x-flavoured preset (2 clusters x 4 FUs, 1-cycle cross-path
  /// copies) used by the retargetability example.
  [[nodiscard]] static MachineDesc tiC6xLike();
};

}  // namespace rapt
