#include "partition/Baselines.h"

#include <algorithm>
#include <map>

#include "support/Assert.h"

namespace rapt {

Partition roundRobinPartition(const Loop& loop, int numBanks) {
  Partition part(numBanks);
  int next = 0;
  auto place = [&](VirtReg r) {
    if (!r.isValid() || part.isAssigned(r)) return;
    part.assign(r, next);
    next = (next + 1) % numBanks;
  };
  for (const Operation& o : loop.body) {
    place(o.def);
    for (VirtReg s : o.srcs()) place(s);
  }
  return part;
}

Partition randomPartition(const Loop& loop, int numBanks, SplitMix64& rng) {
  Partition part(numBanks);
  for (VirtReg r : loop.allRegs())
    part.assign(r, static_cast<int>(rng.range(0, numBanks - 1)));
  return part;
}

Partition bugPartition(const Loop& loop, const Ddg& ddg, const ModuloSchedule& ideal,
                       int numBanks) {
  RAPT_ASSERT(ideal.numOps() == loop.size(), "schedule does not match loop");
  const int n = loop.size();
  // Bottom-up: process ops in decreasing scheduled cycle (sinks first).
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (ideal.cycle[a] != ideal.cycle[b]) return ideal.cycle[a] > ideal.cycle[b];
    return a < b;
  });

  std::vector<int> clusterOf(n, -1);
  std::vector<int> load(numBanks, 0);
  Partition part(numBanks);

  for (int op : order) {
    // Score each cluster: +1 for every operand register already resident
    // there, +1 for every consumer op already assigned there (bottom-up
    // locality), tie-broken by load.
    std::vector<int> score(numBanks, 0);
    for (VirtReg s : loop.body[op].srcs()) {
      if (part.isAssigned(s)) ++score[part.bankOf(s)];
    }
    for (int ei : ddg.succEdges(op)) {
      const DdgEdge& e = ddg.edge(ei);
      if (e.kind == DepKind::RegTrue && clusterOf[e.to] >= 0) ++score[clusterOf[e.to]];
    }
    int best = 0;
    for (int c = 1; c < numBanks; ++c) {
      if (score[c] > score[best] || (score[c] == score[best] && load[c] < load[best]))
        best = c;
    }
    clusterOf[op] = best;
    ++load[best];
    if (loop.body[op].def.isValid() && !part.isAssigned(loop.body[op].def))
      part.assign(loop.body[op].def, best);
  }

  // Invariants (and anything else unassigned) live where first consumed.
  for (int i = 0; i < n; ++i) {
    for (VirtReg s : loop.body[i].srcs()) {
      if (!part.isAssigned(s)) part.assign(s, clusterOf[i]);
    }
  }
  return part;
}

namespace {

/// One UAS scheduling attempt at a fixed II; fills `part` and returns true
/// when every op found a slot.
bool uasAttempt(const Loop& loop, const Ddg& ddg, const MachineDesc& machine,
                int numBanks, int ii, Partition& part) {
  const int n = loop.size();
  const int fusPerCluster = machine.width() / numBanks;
  const std::vector<int> height = ddg.heights(ii);

  std::vector<int> time(n, -1);
  std::vector<int> clusterOf(n, -1);
  std::vector<int> load(numBanks, 0);
  // occupancy[slot * numBanks + cluster]
  std::vector<int> occupancy(static_cast<std::size_t>(ii) * numBanks, 0);
  auto occ = [&](int t, int c) -> int& {
    return occupancy[static_cast<std::size_t>(((t % ii) + ii) % ii) * numBanks + c];
  };
  // Completion time of the copy of a value into a cluster, when one exists.
  std::map<std::pair<std::uint32_t, int>, int> copyDone;

  auto copyLat = [&](VirtReg v) {
    return v.cls() == RegClass::Flt ? machine.lat.fltCopy : machine.lat.intCopy;
  };

  std::vector<bool> placed(n, false);
  for (int step = 0; step < n; ++step) {
    // Ready: all same-iteration (distance-0) predecessors placed.
    int op = -1;
    for (int cand = 0; cand < n; ++cand) {
      if (placed[cand]) continue;
      bool ready = true;
      for (int ei : ddg.predEdges(cand)) {
        const DdgEdge& e = ddg.edge(ei);
        if (e.distance == 0 && !placed[e.from]) ready = false;
      }
      if (!ready) continue;
      if (op < 0 || height[cand] > height[op] || (height[cand] == height[op] && cand < op))
        op = cand;
    }
    RAPT_ASSERT(op >= 0, "distance-0 cycle in DDG");

    // Cost every cluster.
    int bestCluster = -1, bestTime = 0, bestNewCopies = 0;
    struct PendingCopy {
      std::uint32_t key;
      int startCycle;
      int done;
    };
    std::vector<PendingCopy> bestCopies;
    for (int c = 0; c < numBanks; ++c) {
      int earliest = 0;
      int newCopies = 0;
      std::vector<PendingCopy> copies;
      bool feasible = true;
      for (int ei : ddg.predEdges(op)) {
        const DdgEdge& e = ddg.edge(ei);
        if (e.kind != DepKind::RegTrue || !placed[e.from] || e.from == op) {
          if (e.distance == 0 && placed[e.from])
            earliest = std::max(earliest, time[e.from] + e.latency);
          continue;
        }
        const VirtReg v = loop.body[e.from].def;
        const int producerDone = time[e.from] + e.latency - ii * e.distance;
        if (clusterOf[e.from] == c) {
          earliest = std::max(earliest, producerDone);
          continue;
        }
        // Foreign operand: route through a copy into cluster c.
        auto it = copyDone.find({v.key(), c});
        if (it != copyDone.end()) {
          earliest = std::max(earliest, it->second);
          continue;
        }
        // Reserve a tentative copy slot (embedded copies use an FU of c).
        int tc = std::max(0, producerDone);
        if (machine.copiesUseFuSlots()) {
          int scan = 0;
          while (scan < ii && occ(tc, c) >= fusPerCluster) {
            ++tc;
            ++scan;
          }
          if (scan == ii) {
            feasible = false;
            break;
          }
        }
        copies.push_back({v.key(), tc, tc + copyLat(v)});
        ++newCopies;
        earliest = std::max(earliest, tc + copyLat(v));
      }
      if (!feasible) continue;
      // The op itself needs an FU slot.
      int t = earliest;
      int scan = 0;
      while (scan < ii && occ(t, c) >= fusPerCluster) {
        ++t;
        ++scan;
      }
      if (scan == ii) continue;
      const bool better =
          bestCluster < 0 || t < bestTime ||
          (t == bestTime && (newCopies < bestNewCopies ||
                             (newCopies == bestNewCopies && load[c] < load[bestCluster])));
      if (better) {
        bestCluster = c;
        bestTime = t;
        bestNewCopies = newCopies;
        bestCopies = std::move(copies);
      }
    }
    if (bestCluster < 0) return false;

    // Commit.
    for (const PendingCopy& pc : bestCopies) {
      if (machine.copiesUseFuSlots()) ++occ(pc.startCycle, bestCluster);
      copyDone[{pc.key, bestCluster}] = pc.done;
    }
    ++occ(bestTime, bestCluster);
    time[op] = bestTime;
    clusterOf[op] = bestCluster;
    ++load[bestCluster];
    placed[op] = true;
    if (loop.body[op].def.isValid() && !part.isAssigned(loop.body[op].def))
      part.assign(loop.body[op].def, bestCluster);
  }

  // Invariants live where first consumed.
  for (int i = 0; i < n; ++i) {
    for (VirtReg s : loop.body[i].srcs()) {
      if (!part.isAssigned(s)) part.assign(s, clusterOf[i]);
    }
  }
  return true;
}

}  // namespace

Partition uasPartition(const Loop& loop, const Ddg& ddg, const MachineDesc& machine,
                       int numBanks) {
  const int minII =
      std::max(ddg.recII(), std::max(1, (loop.size() + machine.width() - 1) /
                                            machine.width()));
  for (int ii = minII; ii <= minII + 64; ++ii) {
    if (!ddg.feasibleII(ii)) continue;
    Partition part(numBanks);
    if (uasAttempt(loop, ddg, machine, numBanks, ii, part)) return part;
  }
  // Pathological fallback: everything in bank 0 (never observed in practice;
  // keeps the API total).
  Partition part(numBanks);
  for (VirtReg r : loop.allRegs()) part.assign(r, 0);
  return part;
}

}  // namespace rapt
