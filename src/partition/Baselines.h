// Baseline partitioners for the comparison/ablation experiments.
//
// The paper's own evaluation compares the greedy RCG method only against the
// ideal monolithic machine, but its related-work discussion (§3) is framed
// around Ellis's BUG and round-robin-style spreading; these baselines let the
// bench suite quantify how much the RCG heuristic actually buys.
#pragma once

#include "ddg/Ddg.h"
#include "ir/Loop.h"
#include "partition/Partition.h"
#include "sched/Schedule.h"
#include "support/Rng.h"

namespace rapt {

/// Registers take banks 0,1,2,... in order of first appearance in the body.
[[nodiscard]] Partition roundRobinPartition(const Loop& loop, int numBanks);

/// Uniformly random bank per register (seeded).
[[nodiscard]] Partition randomPartition(const Loop& loop, int numBanks,
                                        SplitMix64& rng);

/// BUG-style operation partitioning (after Ellis, bottom-up greedy): walk the
/// DDG from sinks upward, assigning each *operation* to the cluster that
/// minimizes the number of non-local operands, breaking ties toward the
/// least-loaded cluster; each register then lives in the bank of its defining
/// operation (invariants: bank of their first consumer).
[[nodiscard]] Partition bugPartition(const Loop& loop, const Ddg& ddg,
                                     const ModuloSchedule& ideal, int numBanks);

/// UAS-style partitioning (after Ozer, Banerjia & Conte, MICRO-31): clusters
/// are chosen WHILE greedily modulo-scheduling at MinII, so the choice sees
/// schedule-time resource occupancy — the improvement UAS claims over BUG
/// (§3). Ops are taken in ready (height) order; for each op every cluster is
/// costed by the earliest completion time given (a) the cluster's free
/// functional-unit slots in the modulo reservation window and (b) the copy
/// latency for operands homed in other banks, with a tentative copy slot
/// reserved in the consumer's cluster (embedded model) when one is needed.
/// Registers inherit their defining op's cluster. The resulting partition is
/// then evaluated through the standard copy-insertion + rescheduling
/// pipeline, which keeps the comparison against the RCG method apples to
/// apples (a full UAS would also keep the schedule it built — DESIGN.md
/// notes the simplification).
[[nodiscard]] Partition uasPartition(const Loop& loop, const Ddg& ddg,
                                     const MachineDesc& machine, int numBanks);

}  // namespace rapt
