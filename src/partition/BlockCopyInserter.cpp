#include "partition/BlockCopyInserter.h"

#include <map>

#include "support/Assert.h"

namespace rapt {

ClusteredBlock insertBlockCopies(std::span<const Operation> ops, Partition& partition,
                                 const MachineDesc& machine,
                                 std::uint32_t nextFresh[2]) {
  ClusteredBlock out;
  auto fresh = [&](RegClass rc) {
    return VirtReg(rc, nextFresh[static_cast<int>(rc)]++);
  };

  // (value, cluster) -> local alias. Within a block a register holds a single
  // value from each program point on, so one copy per cluster suffices for
  // all later consumers (consumers before the value's redefinition see the
  // live-in copy, keyed separately via the definition tracking below).
  std::map<std::pair<std::uint32_t, int>, VirtReg> copyOf;
  // A redefinition invalidates earlier aliases of the same register.
  auto invalidate = [&](VirtReg r) {
    for (auto it = copyOf.begin(); it != copyOf.end();) {
      if (it->first.first == r.key())
        it = copyOf.erase(it);
      else
        ++it;
    }
  };

  auto anchorOf = [&](const Operation& o) -> int {
    if (o.def.isValid()) return partition.bankOf(o.def);
    RAPT_ASSERT(isStore(o.op), "only stores lack a destination");
    return partition.bankOf(o.src[1]);
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    Operation op = ops[i];
    const int anchor = anchorOf(op);
    if (isCopy(op.op)) {
      // Pre-existing cross-bank copies (e.g. global constant replication)
      // are taken as-is: their source is foreign by definition.
      out.ops.push_back(op);
      out.origIndexOf.push_back(static_cast<int>(i));
      OpConstraint cc;
      if (machine.copiesUseFuSlots()) {
        cc.cluster = anchor;
      } else {
        cc.usesCopyUnit = true;
        cc.srcBank = partition.bankOf(op.src[0]);
        cc.dstBank = anchor;
      }
      out.constraints.push_back(cc);
      continue;
    }
    for (int s = 0; s < op.numSrcs(); ++s) {
      const VirtReg src = op.src[s];
      if (partition.bankOf(src) == anchor) continue;
      auto [it, inserted] = copyOf.try_emplace({src.key(), anchor}, VirtReg{});
      if (inserted) {
        const VirtReg tmp = fresh(src.cls());
        it->second = tmp;
        partition.assign(tmp, anchor);
        out.ops.push_back(makeCopy(tmp, src));
        out.origIndexOf.push_back(-1);
        OpConstraint cc;
        if (machine.copiesUseFuSlots()) {
          cc.cluster = anchor;
        } else {
          cc.usesCopyUnit = true;
          cc.srcBank = partition.bankOf(src);
          cc.dstBank = anchor;
        }
        out.constraints.push_back(cc);
        ++out.copies;
      }
      op.src[s] = it->second;
    }
    if (op.def.isValid()) invalidate(op.def);
    out.ops.push_back(op);
    out.origIndexOf.push_back(static_cast<int>(i));
    OpConstraint c;
    c.cluster = anchor;
    out.constraints.push_back(c);
  }
  return out;
}

std::vector<OpConstraint> deriveBlockConstraints(std::span<const Operation> ops,
                                                 const Partition& partition,
                                                 const MachineDesc& machine) {
  std::vector<OpConstraint> out;
  out.reserve(ops.size());
  for (const Operation& op : ops) {
    OpConstraint c;
    const int anchor = op.def.isValid() ? partition.bankOf(op.def)
                                        : partition.bankOf(op.src[1]);
    if (isCopy(op.op) && !machine.copiesUseFuSlots()) {
      c.usesCopyUnit = true;
      c.srcBank = partition.bankOf(op.src[0]);
      c.dstBank = anchor;
    } else {
      c.cluster = anchor;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace rapt
