// Cross-bank copy insertion for straight-line basic blocks (whole-function
// mode). Same anchoring policy as the loop CopyInserter, but without loop
// semantics: a use with no earlier in-block definition reads a block live-in,
// and copies of a value into a cluster are reused for the rest of the block
// (the value cannot change within the block once defined).
#pragma once

#include <span>

#include "ir/Operation.h"
#include "machine/MachineDesc.h"
#include "partition/Partition.h"
#include "sched/Schedule.h"

namespace rapt {

struct ClusteredBlock {
  std::vector<Operation> ops;            ///< with copies inserted
  std::vector<OpConstraint> constraints; ///< per op
  std::vector<int> origIndexOf;          ///< new idx -> original, -1 = copy
  int copies = 0;
};

/// Rewrites `ops` for `partition`. `partition` is extended with the copy
/// temporaries; `nextFresh` (one counter per register class, indexed by
/// RegClass) supplies function-unique temporary names and is advanced.
[[nodiscard]] ClusteredBlock insertBlockCopies(std::span<const Operation> ops,
                                               Partition& partition,
                                               const MachineDesc& machine,
                                               std::uint32_t nextFresh[2]);

/// Derives scheduler constraints for a block whose operands are already
/// bank-local (i.e. after copy insertion, possibly after spill-code
/// insertion): each op is anchored at its destination's bank (stores: the
/// stored value's bank), copies take the copy-model's resources.
[[nodiscard]] std::vector<OpConstraint> deriveBlockConstraints(
    std::span<const Operation> ops, const Partition& partition,
    const MachineDesc& machine);

}  // namespace rapt
