#include "partition/CopyInserter.h"

#include <map>
#include <tuple>

#include "support/Assert.h"

namespace rapt {
namespace {

/// Finds the live-in value recorded for `r`, or a zero default.
LiveInValue liveInOf(const Loop& loop, VirtReg r) {
  for (const LiveInValue& lv : loop.liveInValues)
    if (lv.reg == r) return lv;
  LiveInValue lv;
  lv.reg = r;
  return lv;
}

}  // namespace

ClusteredLoop insertCopies(const Loop& loop, const Partition& partition,
                           const MachineDesc& machine) {
  RAPT_ASSERT(partition.numBanks() == machine.numClusters,
              "partition does not match machine");
  ClusteredLoop out;
  out.loop = loop;
  out.loop.body.clear();
  out.partition = partition;

  // Fresh-register counters (shared by copies and aliases).
  std::uint32_t nextIdx[2] = {loop.freshReg(RegClass::Int).index(),
                              loop.freshReg(RegClass::Flt).index()};
  auto fresh = [&](RegClass rc) { return VirtReg(rc, nextIdx[static_cast<int>(rc)]++); };

  // Reuse tables. Body copies are keyed on (value, cluster, reads-previous-
  // iteration); invariant aliases on (value, cluster).
  std::map<std::tuple<std::uint32_t, int, bool>, VirtReg> copyOf;
  std::map<std::pair<std::uint32_t, int>, VirtReg> aliasOf;

  auto isInvariant = [&](VirtReg r) { return !loop.defPos(r).has_value(); };

  // Cluster anchoring: ops with a destination write into its bank; stores go
  // where the fewest non-invariant operands need copying (ties prefer the
  // stored value's bank — integer index copies are cheaper than value copies).
  auto anchorOf = [&](const Operation& o) -> int {
    if (o.def.isValid()) return partition.bankOf(o.def);
    RAPT_ASSERT(isStore(o.op), "only stores lack a destination");
    const VirtReg idx = o.src[0];
    const VirtReg val = o.src[1];
    auto bodyCost = [&](int bank) {
      int cost = 0;
      if (!isInvariant(idx) && partition.bankOf(idx) != bank) ++cost;
      if (!isInvariant(val) && partition.bankOf(val) != bank) ++cost;
      return cost;
    };
    const int valBank = partition.bankOf(val);
    const int idxBank = partition.bankOf(idx);
    if (bodyCost(valBank) <= bodyCost(idxBank)) return valBank;
    return idxBank;
  };

  for (int i = 0; i < loop.size(); ++i) {
    Operation op = loop.body[i];
    const int anchor = anchorOf(op);

    for (int s = 0; s < op.numSrcs(); ++s) {
      const VirtReg src = op.src[s];
      if (partition.bankOf(src) == anchor) continue;

      if (isInvariant(src)) {
        // Replicate in the preheader: a per-cluster alias register.
        auto [it, inserted] = aliasOf.try_emplace({src.key(), anchor}, VirtReg{});
        if (inserted) {
          const VirtReg alias = fresh(src.cls());
          it->second = alias;
          out.partition.assign(alias, anchor);
          LiveInValue lv = liveInOf(loop, src);
          lv.reg = alias;
          out.loop.liveInValues.push_back(lv);
          ++out.preheaderCopies;
        }
        op.src[s] = it->second;
        continue;
      }

      // Defined in the body: route through an explicit copy operation.
      const bool readsPrev = loop.isCarriedUse(i, src);
      auto [it, inserted] =
          copyOf.try_emplace({src.key(), anchor, readsPrev}, VirtReg{});
      if (inserted) {
        const VirtReg tmp = fresh(src.cls());
        it->second = tmp;
        out.partition.assign(tmp, anchor);
        out.loop.body.push_back(makeCopy(tmp, src));
        out.origIndexOf.push_back(-1);
        OpConstraint cc;
        if (machine.copiesUseFuSlots()) {
          cc.cluster = anchor;
        } else {
          cc.usesCopyUnit = true;
          cc.srcBank = partition.bankOf(src);
          cc.dstBank = anchor;
        }
        out.constraints.push_back(cc);
        ++out.bodyCopies;
      }
      op.src[s] = it->second;
    }

    out.loop.body.push_back(op);
    out.origIndexOf.push_back(i);
    OpConstraint c;
    c.cluster = anchor;
    out.constraints.push_back(c);
  }

  RAPT_ASSERT(!validate(out.loop).has_value(), "copy insertion broke the loop");
  return out;
}

}  // namespace rapt
