// Cross-bank copy insertion (step 4 of the paper's framework, §4).
//
// After partitioning, each operation is anchored to the cluster that owns its
// destination register (an operation writes into its own cluster's bank);
// stores, which have no destination, are anchored where the fewest of their
// operands would need copying. Every source register living in a different
// bank is routed through an explicit ICopy/FCopy into a fresh register of the
// consuming cluster:
//
//  * copies of the same value into the same cluster are REUSED (one copy
//    serves all consumers there, keyed on whether they read the current or
//    the previous iteration's value);
//  * loop-INVARIANT operands are not copied every iteration — they are
//    replicated into per-cluster aliases conceptually initialized in the loop
//    preheader (counted separately as preheaderCopies; this mirrors what an
//    optimizing compiler such as Rocket would do with invariant moves).
//
// In the Embedded machine model a copy is a normal operation constrained to a
// destination-cluster functional unit; in the CopyUnit model it is
// constrained to the bus/port resources instead.
#pragma once

#include "ir/Loop.h"
#include "machine/MachineDesc.h"
#include "partition/Partition.h"
#include "sched/Schedule.h"

namespace rapt {

struct ClusteredLoop {
  Loop loop;                           ///< body with copies inserted
  std::vector<OpConstraint> constraints;  ///< per new-body op
  Partition partition;                 ///< extended with copy/alias registers
  int bodyCopies = 0;                  ///< copies executed every iteration
  int preheaderCopies = 0;             ///< hoisted invariant replications
  std::vector<int> origIndexOf;        ///< new idx -> original idx, -1 = copy
};

/// Anchors every op of `loop` to a cluster under `partition` and inserts the
/// cross-bank copies the anchoring requires. `partition` must cover every
/// register of `loop`.
[[nodiscard]] ClusteredLoop insertCopies(const Loop& loop, const Partition& partition,
                                         const MachineDesc& machine);

}  // namespace rapt
