#include "partition/GreedyPartitioner.h"

#include "support/FaultInjection.h"

namespace rapt {

Partition greedyPartition(const Rcg& rcg, int numBanks, const RcgWeights& w,
                          const BankPins& pins) {
  Partition part(numBanks);
  const std::size_t totalNodes = rcg.nodes().size();
  if (totalNodes == 0) return part;

  // Fault-injection site (docs/robustness.md). Both failure shapes produce a
  // partition that does not cover the loop's registers: the pipeline's
  // coverage check classifies it as PartitionFailure and the recovery ladder
  // falls back to an uninstrumented baseline partitioner.
  FaultKind fault = FaultKind::None;
  if (FaultInjector* fi = FaultInjector::active()) {
    fault = fi->draw(FaultSite::Partitioner);
    if (fault == FaultKind::StageFail) {
      fi->recordInjected(FaultSite::Partitioner);
      return part;  // empty: covers nothing
    }
    if (fault == FaultKind::Throw) {
      fi->recordInjected(FaultSite::Partitioner);
      throw FaultInjected("partitioner");
    }
  }
  const double balanceUnit =
      w.balance * rcg.meanAbsEdgeWeight() * numBanks / static_cast<double>(totalNodes);

  for (const auto& [key, bank] : pins) {
    part.assign(VirtReg::fromKey(key), bank);
  }

  std::vector<int> assignedCount(numBanks, 0);
  for (const auto& [key, bank] : pins) ++assignedCount[bank];

  for (VirtReg node : rcg.nodesByDecreasingWeight()) {
    if (part.isAssigned(node)) continue;  // pinned
    // Figure 4 as printed initializes BestBenefit to 0, which parks every
    // node whose benefits are all non-positive in bank 0 and defeats the
    // balance term; we take the evident intent — argmax over all banks,
    // lowest bank index winning ties (see DESIGN.md).
    double bestBenefit = 0.0;
    int bestBank = -1;
    for (int rb = 0; rb < numBanks; ++rb) {
      double benefit = 0.0;
      for (const auto& [nbr, weight] : rcg.neighbors(node)) {
        if (part.isAssigned(nbr) && part.bankOf(nbr) == rb) benefit += weight;
      }
      benefit -= assignedCount[rb] * balanceUnit;
      if (bestBank < 0 || benefit > bestBenefit) {
        bestBenefit = benefit;
        bestBank = rb;
      }
    }
    part.assign(node, bestBank);
    ++assignedCount[bestBank];
  }
  if (fault == FaultKind::Corrupt) {
    // Drop one node's assignment: a subtly incomplete partition, caught by
    // the pipeline's coverage check before any bankOf() lookup can assert.
    FaultInjector* fi = FaultInjector::active();
    const std::vector<VirtReg>& nodes = rcg.nodesByDecreasingWeight();
    part.unassign(nodes[static_cast<std::size_t>(
        fi->index(static_cast<std::int64_t>(nodes.size())))]);
    fi->recordInjected(FaultSite::Partitioner);
  }
  return part;
}

}  // namespace rapt
