// The paper's greedy RCG partitioning heuristic (§5, Figure 4).
//
// Registers are placed one at a time in decreasing node-weight order. For
// each register, every bank's "benefit" is the sum of edge weights to
// neighbors already in that bank, minus a balance penalty proportional to how
// full the bank already is; the register goes to the best-benefit bank.
// Faithful to Figure 4, bank 0 is the default when no bank achieves positive
// benefit (BestBenefit starts at 0 and the comparison is strict).
#pragma once

#include <unordered_map>

#include "partition/Partition.h"
#include "partition/Rcg.h"

namespace rapt {

/// Pre-assignments ("pre-coloring" of the bank choice, §4.1): registers the
/// caller pins to specific banks before the greedy pass runs.
using BankPins = std::unordered_map<std::uint32_t, int>;

/// Runs Figure 4 over `rcg` for a machine with `numBanks` banks.
/// `totalNodes` in the balance term is the RCG's node count; the penalty for
/// placing into bank RB is
///     assigned(RB) / totalNodes * numBanks * Kbal * meanAbsEdgeWeight
/// which is zero for an empty bank and grows as the bank takes more than its
/// proportional share (the paper's "spread the symbolic registers somewhat
/// evenly across the available partitions").
[[nodiscard]] Partition greedyPartition(const Rcg& rcg, int numBanks,
                                        const RcgWeights& w,
                                        const BankPins& pins = {});

}  // namespace rapt
