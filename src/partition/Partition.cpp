#include "partition/Partition.h"

#include <algorithm>

namespace rapt {

std::vector<VirtReg> Partition::regsInBank(int bank) const {
  std::vector<std::uint32_t> keys;
  for (const auto& [key, b] : bankOf_) {
    if (b == bank) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<VirtReg> regs;
  regs.reserve(keys.size());
  for (std::uint32_t k : keys) regs.push_back(VirtReg::fromKey(k));
  return regs;
}

}  // namespace rapt
