// Assignment of symbolic registers to register banks.
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/Reg.h"
#include "support/Assert.h"

namespace rapt {

/// Maps every symbolic register of a loop (or function) to one of the
/// machine's register banks. Bank b belongs to cluster b: the paper's
/// machines have exactly one bank per cluster.
class Partition {
 public:
  Partition() = default;
  explicit Partition(int numBanks) : numBanks_(numBanks) {}

  [[nodiscard]] int numBanks() const { return numBanks_; }

  void assign(VirtReg r, int bank) {
    RAPT_ASSERT(bank >= 0 && bank < numBanks_, "bank out of range");
    bankOf_[r.key()] = bank;
  }

  [[nodiscard]] bool isAssigned(VirtReg r) const { return bankOf_.count(r.key()) != 0; }

  /// Drops `r`'s assignment (no-op when unassigned). Exists for refinement
  /// experiments and fault injection; production partitioners only assign.
  void unassign(VirtReg r) { bankOf_.erase(r.key()); }

  [[nodiscard]] int bankOf(VirtReg r) const {
    auto it = bankOf_.find(r.key());
    RAPT_ASSERT(it != bankOf_.end(), "register has no bank assignment");
    return it->second;
  }

  /// Number of registers currently assigned to `bank`.
  [[nodiscard]] int countInBank(int bank) const {
    int n = 0;
    for (const auto& [key, b] : bankOf_) {
      if (b == bank) ++n;
    }
    return n;
  }

  [[nodiscard]] std::size_t size() const { return bankOf_.size(); }

  /// Registers assigned to `bank`, sorted by key (deterministic).
  [[nodiscard]] std::vector<VirtReg> regsInBank(int bank) const;

 private:
  int numBanks_ = 1;
  std::unordered_map<std::uint32_t, int> bankOf_;
};

}  // namespace rapt
