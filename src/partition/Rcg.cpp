#include "partition/Rcg.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ir/Printer.h"
#include "partition/Partition.h"
#include "support/Assert.h"

namespace rapt {
namespace {

double opWeight(int flex, double density, int depth, const RcgWeights& w) {
  RAPT_ASSERT(flex >= 1, "flexibility below 1");
  const double scale = (flex == 1) ? w.critBonus : w.base;
  return scale * density * std::pow(w.depthBase, depth) / static_cast<double>(flex);
}

std::string formatWeight(double w) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", w);
  return buf;
}

}  // namespace

std::uint64_t Rcg::pairKey(VirtReg a, VirtReg b) {
  std::uint32_t x = a.key();
  std::uint32_t y = b.key();
  if (x > y) std::swap(x, y);
  return (static_cast<std::uint64_t>(x) << 32) | y;
}

void Rcg::ensureNode(VirtReg r) {
  if (nodeWeight_.count(r.key()) == 0) {
    nodeWeight_[r.key()] = 0.0;
    nodes_.push_back(r);
  }
}

void Rcg::bumpNode(VirtReg r, double w) {
  ensureNode(r);
  nodeWeight_[r.key()] += w;
}

void Rcg::accumulate(VirtReg a, VirtReg b, double w) {
  if (a == b) return;
  ensureNode(a);
  ensureNode(b);
  edges_[pairKey(a, b)] += w;
  adjDirty_ = true;
}

void Rcg::addExtraEdge(VirtReg a, VirtReg b, double weight) {
  accumulate(a, b, weight);
  bumpNode(a, std::abs(weight));
  bumpNode(b, std::abs(weight));
}

void Rcg::rebuildAdjacency() const {
  adjDirty_ = false;
  adj_.clear();
  for (const auto& [key, w] : edges_) {
    const VirtReg a = VirtReg::fromKey(static_cast<std::uint32_t>(key >> 32));
    const VirtReg b = VirtReg::fromKey(static_cast<std::uint32_t>(key & 0xffffffffu));
    adj_[a.key()].emplace_back(b, w);
    adj_[b.key()].emplace_back(a, w);
  }
  // Deterministic neighbor order.
  for (auto& [key, nbrs] : adj_) {
    std::sort(nbrs.begin(), nbrs.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
  }
}

double Rcg::nodeWeight(VirtReg r) const {
  auto it = nodeWeight_.find(r.key());
  return it == nodeWeight_.end() ? 0.0 : it->second;
}

double Rcg::edgeWeight(VirtReg a, VirtReg b) const {
  auto it = edges_.find(pairKey(a, b));
  return it == edges_.end() ? 0.0 : it->second;
}

const std::vector<std::pair<VirtReg, double>>& Rcg::neighbors(VirtReg r) const {
  static const std::vector<std::pair<VirtReg, double>> kEmpty;
  if (adjDirty_) rebuildAdjacency();
  auto it = adj_.find(r.key());
  return it == adj_.end() ? kEmpty : it->second;
}

double Rcg::meanAbsEdgeWeight() const {
  if (edges_.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& [key, w] : edges_) sum += std::abs(w);
  return sum / static_cast<double>(edges_.size());
}

std::vector<VirtReg> Rcg::nodesByDecreasingWeight() const {
  std::vector<VirtReg> order = nodes_;
  std::sort(order.begin(), order.end(), [this](VirtReg a, VirtReg b) {
    const double wa = nodeWeight(a);
    const double wb = nodeWeight(b);
    if (wa != wb) return wa > wb;
    return a.key() < b.key();
  });
  return order;
}

std::string Rcg::toDot(const Partition* partition) const {
  std::ostringstream os;
  os << "graph rcg {\n  node [shape=circle];\n";
  auto emitNode = [&](std::ostringstream& out, VirtReg r) {
    out << "    \"" << regName(r) << "\" [label=\"" << regName(r) << "\\n"
        << formatWeight(nodeWeight(r)) << "\"];\n";
  };
  if (partition != nullptr) {
    for (int bank = 0; bank < partition->numBanks(); ++bank) {
      os << "  subgraph cluster_bank" << bank << " {\n    label=\"bank " << bank
         << "\";\n";
      for (VirtReg r : nodes_) {
        if (partition->isAssigned(r) && partition->bankOf(r) == bank) emitNode(os, r);
      }
      os << "  }\n";
    }
  } else {
    for (VirtReg r : nodes_) emitNode(os, r);
  }
  for (const auto& [key, w] : edges_) {
    const VirtReg a = VirtReg::fromKey(static_cast<std::uint32_t>(key >> 32));
    const VirtReg b = VirtReg::fromKey(static_cast<std::uint32_t>(key & 0xffffffffu));
    os << "  \"" << regName(a) << "\" -- \"" << regName(b) << "\" [label=\""
       << formatWeight(w) << "\"" << (w < 0 ? ", style=dashed" : "") << "];\n";
  }
  os << "}\n";
  return os.str();
}

Rcg Rcg::build(const Loop& loop, const Ddg& ddg, const ModuloSchedule& ideal,
               const RcgWeights& w) {
  RAPT_ASSERT(ideal.numOps() == loop.size(), "schedule does not match loop");
  const double density =
      loop.size() == 0 ? 0.0 : static_cast<double>(loop.size()) / ideal.ii;
  const std::vector<int> flex =
      ddg.flexibility(ideal.cycle, ideal.ii, ideal.horizon());

  Rcg g;
  // Every register is a node even if it accumulates no weight.
  for (VirtReg r : loop.allRegs()) g.ensureNode(r);

  std::vector<double> wOp(loop.size());
  for (int i = 0; i < loop.size(); ++i)
    wOp[i] = opWeight(flex[i], density, loop.nestingDepth, w);

  // Rule 1: same-operation (defined, used) pairs attract.
  for (int i = 0; i < loop.size(); ++i) {
    const Operation& o = loop.body[i];
    if (!o.def.isValid()) continue;
    for (VirtReg s : o.srcs()) {
      if (s == o.def) continue;
      g.accumulate(o.def, s, wOp[i]);
      g.bumpNode(o.def, wOp[i]);
      g.bumpNode(s, wOp[i]);
    }
  }

  // Rule 2: registers defined by different ops in the same ideal instruction
  // (same modulo slot) repel, so both can issue in parallel again.
  for (int i = 0; i < loop.size(); ++i) {
    if (!loop.body[i].def.isValid()) continue;
    for (int j = i + 1; j < loop.size(); ++j) {
      if (!loop.body[j].def.isValid()) continue;
      if (ideal.cycle[i] % ideal.ii != ideal.cycle[j] % ideal.ii) continue;
      const double ws = w.sep * 0.5 * (wOp[i] + wOp[j]);
      g.accumulate(loop.body[i].def, loop.body[j].def, -ws);
      g.bumpNode(loop.body[i].def, ws);
      g.bumpNode(loop.body[j].def, ws);
    }
  }

  g.rebuildAdjacency();
  return g;
}

void Rcg::addBlockContribution(std::span<const Operation> ops,
                               std::span<const int> cycle,
                               std::span<const int> flexibility, int nestingDepth,
                               double density, const RcgWeights& w) {
  RAPT_ASSERT(ops.size() == cycle.size() && ops.size() == flexibility.size(),
              "block RCG input size mismatch");
  const int n = static_cast<int>(ops.size());
  std::vector<double> wOp(n);
  for (int i = 0; i < n; ++i)
    wOp[i] = opWeight(flexibility[i], density, nestingDepth, w);

  for (int i = 0; i < n; ++i) {
    const Operation& o = ops[i];
    if (o.def.isValid()) ensureNode(o.def);
    for (VirtReg s : o.srcs()) ensureNode(s);
    if (!o.def.isValid()) continue;
    for (VirtReg s : o.srcs()) {
      if (s == o.def) continue;
      accumulate(o.def, s, wOp[i]);
      bumpNode(o.def, wOp[i]);
      bumpNode(s, wOp[i]);
    }
  }
  for (int i = 0; i < n; ++i) {
    if (!ops[i].def.isValid()) continue;
    for (int j = i + 1; j < n; ++j) {
      if (!ops[j].def.isValid()) continue;
      if (cycle[i] != cycle[j]) continue;
      const double ws = w.sep * 0.5 * (wOp[i] + wOp[j]);
      accumulate(ops[i].def, ops[j].def, -ws);
      bumpNode(ops[i].def, ws);
      bumpNode(ops[j].def, ws);
    }
  }
}

Rcg Rcg::buildFromBlock(std::span<const Operation> ops, std::span<const int> cycle,
                        std::span<const int> flexibility, int nestingDepth,
                        double density, const RcgWeights& w) {
  Rcg g;
  g.addBlockContribution(ops, cycle, flexibility, nestingDepth, density, w);
  g.rebuildAdjacency();
  return g;
}

}  // namespace rapt
