// The register component graph (RCG) — the paper's central data structure.
//
// Nodes are symbolic registers; an undirected weighted edge between two
// registers records how strongly they want to share a bank (positive) or be
// separated (negative). All machine-dependent detail is abstracted into the
// weights (§4.1), which is what makes the framework retargetable.
//
// Weights are accumulated from the *ideal schedule* (§5):
//
//  * for every (defined, used) register pair of one operation O, an affinity
//    of  w(O) = (flex==1 ? Kcrit : Kbase) * density * depthBase^depth / flex
//    is added to the edge and to both node weights;
//  * for every pair of registers defined by two different operations issued
//    in the same ideal instruction (same modulo slot), a separation weight
//    -Ksep * (w(O1)+w(O2))/2 is added to the edge (keeping them apart lets
//    both define in parallel again), and its magnitude to both node weights.
//
// The IPPS scan garbles the exact formulas; the shape above follows the
// prose (critical-path bonus, density and nesting scale up, flexibility
// scales down) and every constant is exposed in RcgWeights for the ablation
// bench. Hard placement constraints (the paper's "negative value of infinite
// magnitude") are expressible through addExtraEdge / pre-assignment pins in
// the partitioner.
#pragma once

#include <unordered_map>
#include <vector>

#include "ddg/Ddg.h"
#include "ir/Loop.h"
#include "sched/Schedule.h"

namespace rapt {

/// Tunable constants of the weighting heuristic (DESIGN.md "Substitutions").
struct RcgWeights {
  double critBonus = 2.0;   ///< Kcrit: multiplier when Flexibility == 1
  double base = 1.0;        ///< Kbase: multiplier otherwise
  double depthBase = 10.0;  ///< nesting-depth exponent base
  double sep = 0.5;         ///< Ksep: same-instruction separation factor
  double balance = 1.0;     ///< Kbal: partitioner bank-balance factor
};

class Rcg {
 public:
  /// Builds the RCG of `loop` from its ideal modulo schedule. `ddg` must be
  /// the graph `ideal` was scheduled from.
  [[nodiscard]] static Rcg build(const Loop& loop, const Ddg& ddg,
                                 const ModuloSchedule& ideal, const RcgWeights& w);

  /// Builds an RCG from a straight-line block and its list-schedule cycles
  /// (whole-function mode). `density` = ops / schedule length.
  [[nodiscard]] static Rcg buildFromBlock(std::span<const Operation> ops,
                                          std::span<const int> cycle,
                                          std::span<const int> flexibility,
                                          int nestingDepth, double density,
                                          const RcgWeights& w);

  /// Incremental variant of buildFromBlock: accumulates one block's weight
  /// contributions into this graph. The whole-function pipeline calls this
  /// for every basic block ("we could easily use both non-loop and loop code
  /// to build our register component graph", §6.3) and then
  /// finalizeAdjacency() once.
  void addBlockContribution(std::span<const Operation> ops, std::span<const int> cycle,
                            std::span<const int> flexibility, int nestingDepth,
                            double density, const RcgWeights& w);
  /// Kept for API symmetry: adjacency is rebuilt lazily on the first
  /// neighbors() query after any mutation, so calling this is optional.
  void finalizeAdjacency() { rebuildAdjacency(); }

  [[nodiscard]] const std::vector<VirtReg>& nodes() const { return nodes_; }
  [[nodiscard]] double nodeWeight(VirtReg r) const;
  /// 0 when no edge exists.
  [[nodiscard]] double edgeWeight(VirtReg a, VirtReg b) const;
  /// Neighbors of `r` with their (signed) edge weights.
  [[nodiscard]] const std::vector<std::pair<VirtReg, double>>& neighbors(VirtReg r) const;

  /// Mean |edge weight|, used to scale the partitioner's balance term.
  [[nodiscard]] double meanAbsEdgeWeight() const;

  /// Nodes in decreasing node-weight order (ties by register key).
  [[nodiscard]] std::vector<VirtReg> nodesByDecreasingWeight() const;

  /// Add machine-idiosyncrasy weight between two registers (e.g. a large
  /// negative value to force separate banks, §4.1).
  void addExtraEdge(VirtReg a, VirtReg b, double weight);

  /// Graphviz rendering (the paper's Figure 2 as an artifact): solid edges
  /// attract (affinity), dashed edges repel (separation); when `partition`
  /// is non-null nodes are grouped into per-bank clusters.
  [[nodiscard]] std::string toDot(const class Partition* partition = nullptr) const;

  [[nodiscard]] std::size_t numEdges() const { return edges_.size(); }

 private:
  void ensureNode(VirtReg r);
  void accumulate(VirtReg a, VirtReg b, double w);
  void bumpNode(VirtReg r, double w);
  void rebuildAdjacency() const;

  static std::uint64_t pairKey(VirtReg a, VirtReg b);

  std::vector<VirtReg> nodes_;
  std::unordered_map<std::uint32_t, double> nodeWeight_;
  std::unordered_map<std::uint64_t, double> edges_;
  // Derived adjacency cache: invalidated (not rebuilt) on every edge
  // mutation, rebuilt lazily on the first neighbors() query. addExtraEdge
  // callers inserting many extension edges therefore pay O(E) once, not per
  // insertion.
  mutable std::unordered_map<std::uint32_t, std::vector<std::pair<VirtReg, double>>> adj_;
  mutable bool adjDirty_ = false;
};

}  // namespace rapt
