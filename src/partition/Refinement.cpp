#include "partition/Refinement.h"

#include <set>

#include "partition/CopyInserter.h"
#include "support/Assert.h"

namespace rapt {
namespace {

struct Score {
  int ii = 1 << 28;  // unschedulable sorts last
  int copies = 1 << 28;

  friend bool operator<(const Score& a, const Score& b) {
    if (a.ii != b.ii) return a.ii < b.ii;
    return a.copies < b.copies;
  }
};

/// Exact objective: copies + cluster-constrained modulo schedule.
Score evaluate(const Loop& loop, const MachineDesc& machine, const Partition& part,
               const ModuloSchedulerOptions& schedOpts) {
  const ClusteredLoop cl = insertCopies(loop, part, machine);
  const Ddg cddg = Ddg::build(cl.loop, machine.lat);
  const ModuloSchedulerResult res =
      moduloSchedule(cddg, machine, cl.constraints, schedOpts);
  Score s;
  if (res.success) {
    s.ii = res.schedule.ii;
    s.copies = cl.bodyCopies;
  }
  return s;
}

/// Registers that participate in any cross-bank traffic under `part`:
/// sources read from a foreign bank and the anchors reading them.
std::set<std::uint32_t> copyInvolvedRegs(const Loop& loop, const MachineDesc& machine,
                                         const Partition& part) {
  const ClusteredLoop cl = insertCopies(loop, part, machine);
  std::set<std::uint32_t> regs;
  for (int i = 0; i < cl.loop.size(); ++i) {
    if (!isCopy(cl.loop.body[i].op) || cl.origIndexOf[i] >= 0) continue;
    // The copied value and the consumer's destination are both move candidates.
    regs.insert(cl.loop.body[i].src[0].key());
  }
  // Consumers whose operands were rewritten to copy temps.
  for (int i = 0; i < cl.loop.size(); ++i) {
    const int orig = cl.origIndexOf[i];
    if (orig < 0) continue;
    const Operation& now = cl.loop.body[i];
    const Operation& before = loop.body[orig];
    for (int s = 0; s < now.numSrcs(); ++s) {
      if (now.src[s] != before.src[s] && before.def.isValid())
        regs.insert(before.def.key());
    }
  }
  return regs;
}

}  // namespace

RefinementResult refinePartition(const Loop& loop, const MachineDesc& machine,
                                 const Partition& initial, int idealII,
                                 const RefinementOptions& options) {
  RefinementResult out;
  out.partition = initial;

  Score best = evaluate(loop, machine, initial, options.sched);
  out.initialII = best.ii;
  out.initialCopies = best.copies;

  for (int pass = 0; pass < options.maxPasses; ++pass) {
    if (best.ii <= idealII) break;  // already optimal
    bool improved = false;
    ++out.passes;
    for (std::uint32_t key : copyInvolvedRegs(loop, machine, out.partition)) {
      const VirtReg reg = VirtReg::fromKey(key);
      if (!out.partition.isAssigned(reg)) continue;
      const int home = out.partition.bankOf(reg);
      for (int bank = 0; bank < machine.numClusters; ++bank) {
        if (bank == home) continue;
        Partition candidate = out.partition;
        candidate.assign(reg, bank);
        const Score s = evaluate(loop, machine, candidate, options.sched);
        if (s < best) {
          best = s;
          out.partition = std::move(candidate);
          ++out.movesAccepted;
          improved = true;
          break;  // re-anchor: the copy set changed
        }
      }
      if (best.ii <= idealII) break;
    }
    if (!improved) break;
  }

  out.finalII = best.ii;
  out.finalCopies = best.copies;
  return out;
}

}  // namespace rapt
