// Iterative partition refinement.
//
// The paper's greedy method is one-shot and the authors position it as "an
// initial phase before iteration is performed", noting that Nystrom &
// Eichenberger's iterating partitioner leaves only ~2% of loops degraded
// versus ~5% for their non-iterative variant (§6.3), and list iteration as
// future work (§7). This pass implements that iteration as local search:
//
//   repeat up to maxPasses times:
//     for every register currently involved in a cross-bank copy:
//       try each other bank; keep the move if it strictly improves
//       (smaller clustered II, then fewer copies)
//
// Each candidate is evaluated EXACTLY: copies are re-inserted and the loop is
// re-modulo-scheduled, so the search optimizes the real objective rather than
// a proxy. Loops are small (tens of ops), which keeps this affordable.
#pragma once

#include "ddg/Ddg.h"
#include "ir/Loop.h"
#include "partition/Partition.h"
#include "sched/ModuloScheduler.h"

namespace rapt {

struct RefinementOptions {
  int maxPasses = 3;
  ModuloSchedulerOptions sched;
};

struct RefinementResult {
  Partition partition;   ///< best partition found
  int initialII = 0;
  int finalII = 0;
  int initialCopies = 0;
  int finalCopies = 0;
  int movesAccepted = 0;
  int passes = 0;
};

/// Improves `initial` for `loop` on `machine`. `idealII` bounds the search:
/// refinement stops early once the clustered II matches it (nothing left to
/// win).
[[nodiscard]] RefinementResult refinePartition(const Loop& loop,
                                               const MachineDesc& machine,
                                               const Partition& initial, int idealII,
                                               const RefinementOptions& options = {});

}  // namespace rapt
