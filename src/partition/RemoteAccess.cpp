#include "partition/RemoteAccess.h"

#include "support/Assert.h"

namespace rapt {

RemoteAccessResult scheduleWithRemoteAccess(const Loop& loop,
                                            const Partition& partition,
                                            const MachineDesc& machine,
                                            int penalty) {
  RemoteAccessResult out;

  // Anchor every operation (same policy as the copy inserter).
  auto isInvariant = [&](VirtReg r) { return !loop.defPos(r).has_value(); };
  std::vector<int> anchor(loop.size(), 0);
  std::vector<OpConstraint> constraints(loop.size());
  for (int i = 0; i < loop.size(); ++i) {
    const Operation& o = loop.body[i];
    int a;
    if (o.def.isValid()) {
      a = partition.bankOf(o.def);
    } else {
      RAPT_ASSERT(isStore(o.op), "only stores lack a destination");
      const int idxBank = partition.bankOf(o.src[0]);
      const int valBank = partition.bankOf(o.src[1]);
      a = valBank;
      if (!isInvariant(o.src[0]) && isInvariant(o.src[1])) a = idxBank;
    }
    anchor[i] = a;
    constraints[i].cluster = a;
  }

  // Build the DDG, then stretch cross-bank flow edges by the network latency.
  Ddg ddg = Ddg::build(loop, machine.lat);
  std::vector<DdgEdge> edges(ddg.edges().begin(), ddg.edges().end());
  for (DdgEdge& e : edges) {
    if (e.kind != DepKind::RegTrue) continue;
    const Operation& producer = loop.body[e.from];
    if (!producer.def.isValid()) continue;
    if (partition.bankOf(producer.def) != anchor[e.to]) {
      e.latency += penalty;
      ++out.remoteEdges;
    }
  }
  const Ddg stretched = Ddg::fromEdges(loop.size(), std::move(edges));

  const ModuloSchedulerResult res = moduloSchedule(stretched, machine, constraints);
  out.ok = res.success;
  if (res.success) out.clusteredII = res.schedule.ii;
  return out;
}

}  // namespace rapt
