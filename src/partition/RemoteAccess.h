// TTA-style remote operand access (related work, §3).
//
// Janssen & Corporaal's Transport Triggered Architecture gives every
// functional unit a path to every register bank through an interconnection
// network: no explicit copy operations at all, at the price of network
// latency on non-local reads (and, the paper argues via [15], of processor
// cycle time — which is why the paper rejects the approach for high-ILP
// machines). This module models that alternative so the bench suite can
// compare all three interconnect strategies on equal footing:
//
//   embedded copies   — copy ops occupy FU slots (paper's first model)
//   copy units        — dedicated buses + ports   (paper's second model)
//   network access    — no copies; every cross-bank flow edge gains a
//                       fixed network latency
//
// Operations are anchored to clusters exactly as the copy inserter would
// anchor them; cross-bank register flow edges get `penalty` extra cycles.
#pragma once

#include "ddg/Ddg.h"
#include "ir/Loop.h"
#include "machine/MachineDesc.h"
#include "partition/Partition.h"
#include "sched/ModuloScheduler.h"

namespace rapt {

struct RemoteAccessResult {
  bool ok = false;
  int clusteredII = 0;
  int remoteEdges = 0;  ///< flow edges crossing banks (paying the penalty)
};

/// Schedules `loop` under `partition` with network-latency semantics:
/// `penalty` cycles are added to every register flow edge whose producer
/// lives in a different bank than the consumer's anchor cluster.
[[nodiscard]] RemoteAccessResult scheduleWithRemoteAccess(const Loop& loop,
                                                          const Partition& partition,
                                                          const MachineDesc& machine,
                                                          int penalty);

}  // namespace rapt
