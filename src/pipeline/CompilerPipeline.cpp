#include "pipeline/CompilerPipeline.h"

#include <algorithm>

#include "analysis/Linter.h"
#include "partition/Baselines.h"
#include "partition/Refinement.h"
#include "partition/CopyInserter.h"
#include "regalloc/PhysicalRewrite.h"
#include "sched/LifetimeCompaction.h"
#include "sched/PipelinedCode.h"
#include "support/Assert.h"
#include "support/StageTimer.h"
#include "verify/PartitionVerifier.h"
#include "verify/ScheduleVerifier.h"
#include "vliwsim/Equivalence.h"
#include "vliwsim/VliwSimulator.h"

namespace rapt {

const char* partitionerName(PartitionerKind k) {
  switch (k) {
    case PartitionerKind::GreedyRcg: return "greedy-rcg";
    case PartitionerKind::RoundRobin: return "round-robin";
    case PartitionerKind::Random: return "random";
    case PartitionerKind::BugLike: return "bug-like";
    case PartitionerKind::UasLike: return "uas-like";
  }
  RAPT_UNREACHABLE("bad partitioner kind");
}

MachineDesc idealCounterpart(const MachineDesc& machine) {
  MachineDesc ideal = machine;
  ideal.name = machine.name + "-ideal";
  ideal.fusPerCluster = machine.width();
  ideal.intRegsPerBank = machine.intRegsPerBank * machine.numClusters;
  ideal.fltRegsPerBank = machine.fltRegsPerBank * machine.numClusters;
  ideal.numClusters = 1;
  ideal.copyModel = CopyModel::Embedded;
  ideal.busCount = 0;
  ideal.copyPortsPerBank = 0;
  return ideal;
}

namespace {

Partition choosePartition(const Loop& loop, const Ddg& ddg,
                          const ModuloSchedule& ideal, const MachineDesc& machine,
                          const PipelineOptions& options, PipelineTrace& trace) {
  const int numBanks = machine.numClusters;
  switch (options.partitioner) {
    case PartitionerKind::GreedyRcg: {
      StageTimer rcgTimer;
      const Rcg rcg = Rcg::build(loop, ddg, ideal, options.weights);
      trace.rcgBuildNs += rcgTimer.elapsedNs();
      return greedyPartition(rcg, numBanks, options.weights);
    }
    case PartitionerKind::RoundRobin:
      return roundRobinPartition(loop, numBanks);
    case PartitionerKind::Random: {
      SplitMix64 rng(options.randomSeed);
      return randomPartition(loop, numBanks, rng);
    }
    case PartitionerKind::BugLike:
      return bugPartition(loop, ddg, ideal, numBanks);
    case PartitionerKind::UasLike:
      return uasPartition(loop, ddg, machine, numBanks);
  }
  RAPT_UNREACHABLE("bad partitioner kind");
}

/// Emits, allocates and (optionally) simulates one scheduled clustered loop.
/// Returns false if the bank allocation spilled (caller bumps II).
bool finishSchedule(const Loop& original, const ClusteredLoop& clustered,
                    const Ddg& cddg, const ModuloSchedule& sched,
                    const MachineDesc& machine, const PipelineOptions& options,
                    LoopResult& r) {
  // The emitted window must cover the prologue, at least two full renaming
  // periods, and the drain, so allocation sees every live-range phase.
  std::int64_t trip = std::max<std::int64_t>(options.simTrip, 4);

  StageTimer emitTimer;
  PipelinedCode code = emitPipelinedCode(clustered.loop, cddg, sched, trip, machine.lat);
  trip = std::max<std::int64_t>(trip, sched.stageCount() - 1 + 2LL * code.maxUnroll);
  if (trip != code.trip)
    code = emitPipelinedCode(clustered.loop, cddg, sched, trip, machine.lat);
  r.trace.emitNs += emitTimer.elapsedNs();

  r.stageCount = code.stageCount;
  r.maxUnroll = code.maxUnroll;

  // Independent oracles (docs/verification.md): re-check the clustered
  // schedule, the emitted stream, and operand bank residence from first
  // principles. They share no state with the scheduler/emitter they audit.
  if (options.verify) {
    ScopedStageTimer verifyTimer(r.trace.verifyNs);
    VerifyReport rep = verifySchedule(cddg, machine, clustered.constraints, sched);
    rep.merge(verifyStream(code, cddg, machine, clustered.constraints));
    rep.merge(verifyPartition(code, clustered.partition, machine));
    for (const VliwInstr& in : code.instrs)
      r.trace.verifiedOps += static_cast<std::int64_t>(in.ops.size());
    if (!rep.ok()) {
      r.trace.verifyViolations += static_cast<int>(rep.violations.size());
      r.ok = false;
      r.error = "verification failed: " + rep.first();
      return true;  // a legality bug, not an allocation problem; do not retry
    }
  }

  BankAssignment alloc;
  if (options.allocateRegisters) {
    ScopedStageTimer allocTimer(r.trace.regallocNs);
    alloc = assignBanks(code, clustered.partition, machine);
    if (r.allocRetries == 0) {
      r.spillsAtFirstTry = alloc.totalSpills;
      r.trace.spillRetries = alloc.totalSpills;
    }
    if (!alloc.success) return false;
    r.allocOk = true;
  }

  if (options.simulate) {
    ScopedStageTimer simTimer(r.trace.simulateNs);
    const SimResult sim =
        simulate(code, clustered.loop, machine, &clustered.partition);
    const EquivalenceReport eq = checkEquivalence(original, code, sim);
    if (!eq.equal) {
      r.ok = false;
      r.error = "validation failed: " + eq.detail;
      return true;  // not an allocation problem; do not retry
    }
    r.validated = true;
    r.simulatedCycles = sim.totalCycles;
    r.trace.simulatedCycles = sim.totalCycles;

    // Execute the PHYSICAL stream too: allocator bugs (overlapping values
    // sharing a register) only surface here.
    if (r.allocOk) {
      const PipelinedCode phys = applyPhysicalAssignment(code, alloc);
      const SimResult physSim =
          simulate(phys, clustered.loop, machine, &clustered.partition);
      const EquivalenceReport physEq =
          checkEquivalence(original, phys, physSim, /*checkRegisters=*/false);
      if (!physEq.equal) {
        r.ok = false;
        r.error = "physical validation failed: " + physEq.detail;
        return true;
      }
      r.validatedPhysical = true;
    }
  }
  return true;
}

LoopResult compileLoopImpl(const Loop& loop, const MachineDesc& machine,
                           const PipelineOptions& options) {
  LoopResult r;
  r.loopName = loop.name;
  r.numOps = loop.size();

  if (auto err = validate(loop)) {
    r.error = *err;
    return r;
  }

  // Static semantic gate (src/analysis, docs/analysis.md): structural and
  // dataflow lint before any scheduling work. Errors refuse the loop;
  // warnings ride along in r.diagnostics for observability.
  if (options.staticAnalysis) {
    ScopedStageTimer analysisTimer(r.trace.analysisNs);
    AnalysisReport rep = analyzeLoop(loop);
    r.trace.diagErrors = rep.errorCount();
    r.trace.diagWarnings = rep.warningCount();
    if (rep.errorCount() > 0) {
      r.error = "static analysis failed: " + rep.firstError();
      r.diagnostics = std::move(rep.diagnostics);
      return r;
    }
    r.diagnostics = std::move(rep.diagnostics);
  }

  // ---- Step 2: ideal schedule on the monolithic counterpart. ----
  StageTimer idealTimer;
  const MachineDesc ideal = idealCounterpart(machine);
  const Ddg ddg = Ddg::build(loop, machine.lat);
  const std::vector<OpConstraint> freeConstraints(loop.size());
  const ModuloSchedulerResult idealRes =
      moduloSchedule(ddg, ideal, freeConstraints, options.sched);
  r.trace.idealScheduleNs += idealTimer.elapsedNs();
  r.idealResII = idealRes.resII;
  r.idealRecII = idealRes.recII;
  if (!idealRes.success) {
    r.error = "ideal schedule not found within II limit";
    return r;
  }
  r.idealII = idealRes.schedule.ii;
  r.trace.idealCycles = r.idealII;
  if (options.verify) {
    ScopedStageTimer verifyTimer(r.trace.verifyNs);
    const VerifyReport rep =
        verifySchedule(ddg, ideal, freeConstraints, idealRes.schedule);
    if (!rep.ok()) {
      r.trace.verifyViolations += static_cast<int>(rep.violations.size());
      r.error = "ideal schedule verification failed: " + rep.first();
      return r;
    }
  }

  // ---- Step 3: partition registers to banks. ----
  // (On a monolithic machine every register lands in bank 0, no copies are
  // inserted, and the clustered schedule reproduces the ideal one.)
  StageTimer partitionTimer;
  Partition partition =
      choosePartition(loop, ddg, idealRes.schedule, machine, options, r.trace);
  if (options.refinePasses > 0 && !machine.isMonolithic()) {
    RefinementOptions ropts;
    ropts.maxPasses = options.refinePasses;
    ropts.sched = options.sched;
    RefinementResult refined =
        refinePartition(loop, machine, partition, r.idealII, ropts);
    partition = std::move(refined.partition);
    r.refineMoves = refined.movesAccepted;
  }
  r.trace.partitionNs += partitionTimer.elapsedNs() - r.trace.rcgBuildNs;

  // ---- Step 4: copies + cluster-constrained rescheduling. ----
  StageTimer copyTimer;
  const ClusteredLoop clustered = insertCopies(loop, partition, machine);
  r.trace.copyInsertNs += copyTimer.elapsedNs();
  r.bodyCopies = clustered.bodyCopies;
  r.preheaderCopies = clustered.preheaderCopies;

  StageTimer rescheduleTimer;
  const Ddg cddg = Ddg::build(clustered.loop, machine.lat);
  r.trace.rescheduleNs += rescheduleTimer.elapsedNs();
  ModuloSchedulerOptions schedOpts = options.sched;
  for (int attempt = 0;; ++attempt) {
    rescheduleTimer.restart();
    ++r.trace.rescheduleAttempts;
    const ModuloSchedulerResult clusteredRes =
        moduloSchedule(cddg, machine, clustered.constraints, schedOpts);
    if (!clusteredRes.success) {
      r.trace.rescheduleNs += rescheduleTimer.elapsedNs();
      r.error = "clustered schedule not found within II limit";
      return r;
    }
    ModuloSchedule clusteredSched = clusteredRes.schedule;
    if (options.compactLifetimes) {
      const CompactionStats cs =
          compactLifetimes(cddg, machine, clustered.constraints, clusteredSched);
      r.compactionMoves = cs.movedOps;
    }
    r.trace.rescheduleNs += rescheduleTimer.elapsedNs();
    r.clusteredII = clusteredSched.ii;

    // ---- Step 5 (+ emission, simulation, validation). ----
    r.allocRetries = attempt;
    r.trace.iiEscalations = attempt;
    if (finishSchedule(loop, clustered, cddg, clusteredSched, machine, options, r)) {
      break;
    }
    if (attempt >= options.maxAllocRetries) {
      r.error = "register allocation failed after II relaxation";
      return r;
    }
    schedOpts.startII = clusteredRes.schedule.ii + 1;  // relax pressure
  }

  r.ok = r.error.empty();
  return r;
}

}  // namespace

LoopResult compileLoop(const Loop& loop, const MachineDesc& machine,
                       const PipelineOptions& options) {
  StageTimer total;
  LoopResult r = compileLoopImpl(loop, machine, options);
  r.trace.totalNs = total.elapsedNs();
  return r;
}

}  // namespace rapt
