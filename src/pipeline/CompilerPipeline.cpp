#include "pipeline/CompilerPipeline.h"

#include <algorithm>
#include <optional>

#include "analysis/Linter.h"
#include "certify/Certifier.h"
#include "certify/SsaRename.h"
#include "partition/Baselines.h"
#include "partition/Refinement.h"
#include "partition/CopyInserter.h"
#include "regalloc/PhysicalRewrite.h"
#include "sched/LifetimeCompaction.h"
#include "sched/PipelinedCode.h"
#include "support/Assert.h"
#include "support/FaultInjection.h"
#include "support/StageTimer.h"
#include "verify/PartitionVerifier.h"
#include "verify/ScheduleVerifier.h"
#include "vliwsim/Equivalence.h"
#include "vliwsim/VliwSimulator.h"

namespace rapt {

const char* partitionerName(PartitionerKind k) {
  switch (k) {
    case PartitionerKind::GreedyRcg: return "greedy-rcg";
    case PartitionerKind::RoundRobin: return "round-robin";
    case PartitionerKind::Random: return "random";
    case PartitionerKind::BugLike: return "bug-like";
    case PartitionerKind::UasLike: return "uas-like";
  }
  RAPT_UNREACHABLE("bad partitioner kind");
}

MachineDesc idealCounterpart(const MachineDesc& machine) {
  MachineDesc ideal = machine;
  ideal.name = machine.name + "-ideal";
  ideal.fusPerCluster = machine.width();
  ideal.intRegsPerBank = machine.intRegsPerBank * machine.numClusters;
  ideal.fltRegsPerBank = machine.fltRegsPerBank * machine.numClusters;
  ideal.numClusters = 1;
  ideal.copyModel = CopyModel::Embedded;
  ideal.busCount = 0;
  ideal.copyPortsPerBank = 0;
  return ideal;
}

namespace {

/// Records a classified failure: `error` carries the human detail, the class
/// carries the machine-readable taxonomy entry (docs/robustness.md).
void fail(LoopResult& r, FailureClass cls, std::string detail) {
  r.ok = false;
  r.failureClass = cls;
  r.error = std::move(detail);
}

Partition choosePartition(const Loop& loop, const Ddg& ddg,
                          const ModuloSchedule& ideal, const MachineDesc& machine,
                          const PipelineOptions& options, PartitionerKind kind,
                          PipelineTrace& trace) {
  const int numBanks = machine.numClusters;
  switch (kind) {
    case PartitionerKind::GreedyRcg: {
      StageTimer rcgTimer;
      const Rcg rcg = Rcg::build(loop, ddg, ideal, options.weights);
      trace.rcgBuildNs += rcgTimer.elapsedNs();
      return greedyPartition(rcg, numBanks, options.weights);
    }
    case PartitionerKind::RoundRobin:
      return roundRobinPartition(loop, numBanks);
    case PartitionerKind::Random: {
      SplitMix64 rng(options.randomSeed);
      return randomPartition(loop, numBanks, rng);
    }
    case PartitionerKind::BugLike:
      return bugPartition(loop, ddg, ideal, numBanks);
    case PartitionerKind::UasLike:
      return uasPartition(loop, ddg, machine, numBanks);
  }
  RAPT_UNREACHABLE("bad partitioner kind");
}

/// Does `partition` assign a bank to every register of `loop`? A partitioner
/// bug (or an injected fault) can leave a register uncovered; looking it up
/// with Partition::bankOf would assert and abort the process, so the pipeline
/// checks coverage up front and classifies the gap as PartitionFailure.
[[nodiscard]] bool partitionCovers(const Loop& loop, const Partition& partition) {
  for (VirtReg r : loop.allRegs()) {
    if (!partition.isAssigned(r)) return false;
  }
  return true;
}

/// The graceful-degradation ladder (docs/robustness.md): the configured
/// partitioner first, then GreedyRcg, then RoundRobin, deduplicated, so every
/// recoverable partition/schedule/allocation failure gets up to two retries
/// with progressively simpler bank assignments before the loop is given up.
[[nodiscard]] std::vector<PartitionerKind> partitionerLadder(
    const PipelineOptions& options) {
  std::vector<PartitionerKind> ladder = {options.partitioner};
  if (options.partitionerFallback) {
    for (PartitionerKind k :
         {PartitionerKind::GreedyRcg, PartitionerKind::RoundRobin}) {
      if (std::find(ladder.begin(), ladder.end(), k) == ladder.end())
        ladder.push_back(k);
    }
  }
  return ladder;
}

/// Emits, allocates and (optionally) simulates one scheduled clustered loop.
/// Returns false if the bank allocation spilled (caller bumps II). A true
/// return with ok == false is a classified fatal failure (verifier or
/// validation): a legality bug the retry ladder must NOT mask.
bool finishSchedule(const Loop& original, const ClusteredLoop& clustered,
                    const Ddg& cddg, const ModuloSchedule& sched,
                    const MachineDesc& machine, const PipelineOptions& options,
                    LoopResult& r) {
  // The emitted window must cover the prologue, at least two full renaming
  // periods, and the drain, so allocation sees every live-range phase.
  std::int64_t trip = std::max<std::int64_t>(options.simTrip, 4);

  StageTimer emitTimer;
  PipelinedCode code = emitPipelinedCode(clustered.loop, cddg, sched, trip, machine.lat);
  trip = std::max<std::int64_t>(trip, sched.stageCount() - 1 + 2LL * code.maxUnroll);
  if (trip != code.trip)
    code = emitPipelinedCode(clustered.loop, cddg, sched, trip, machine.lat);
  r.trace.emitNs += emitTimer.elapsedNs();

  r.stageCount = code.stageCount;
  r.maxUnroll = code.maxUnroll;

  // Independent oracles (docs/verification.md): re-check the clustered
  // schedule, the emitted stream, and operand bank residence from first
  // principles. They share no state with the scheduler/emitter they audit.
  if (options.verify) {
    ScopedStageTimer verifyTimer(r.trace.verifyNs);
    VerifyReport rep = verifySchedule(cddg, machine, clustered.constraints, sched);
    rep.merge(verifyStream(code, cddg, machine, clustered.constraints));
    rep.merge(verifyPartition(code, clustered.partition, machine));
    for (const VliwInstr& in : code.instrs)
      r.trace.verifiedOps += static_cast<std::int64_t>(in.ops.size());
    if (!rep.ok()) {
      r.trace.verifyViolations += static_cast<int>(rep.violations.size());
      fail(r, FailureClass::VerifierViolation, "verification failed: " + rep.first());
      return true;  // a legality bug, not an allocation problem; do not retry
    }
  }

  // Static translation certifier (src/certify, docs/certification.md):
  // symbolic, input-independent proof that the emitted stream computes the
  // reference values, plus cross-iteration bank residence. It shares no state
  // with the scheduler/emitter; certification failure is a legality bug.
  if (options.certify) {
    ScopedStageTimer certTimer(r.trace.certifyNs);
    CertifyReport cert =
        certifyStream(original, clustered, code, machine, CertifyLayer::Virtual);
    r.trace.certifiedValues += cert.certifiedValues;
    const int errs = cert.errorCount();
    const std::string first = cert.firstError();
    for (Diagnostic& d : cert.diagnostics) r.diagnostics.push_back(std::move(d));
    if (errs > 0) {
      r.trace.certifyViolations += errs;
      fail(r, FailureClass::VerifierViolation, "certification failed: " + first);
      return true;  // a legality bug, not an allocation problem; do not retry
    }
  }

  BankAssignment alloc;
  if (options.allocateRegisters) {
    ScopedStageTimer allocTimer(r.trace.regallocNs);
    alloc = assignBanks(code, clustered.partition, machine);
    if (r.allocRetries == 0) {
      r.spillsAtFirstTry = alloc.totalSpills;
      r.trace.spillRetries = alloc.totalSpills;
    }
    if (!alloc.success) return false;
    r.allocOk = true;
  }

  if (options.simulate) {
    ScopedStageTimer simTimer(r.trace.simulateNs);
    const SimResult sim =
        simulate(code, clustered.loop, machine, &clustered.partition);
    const EquivalenceReport eq = checkEquivalence(original, code, sim);
    if (!eq.equal) {
      fail(r, FailureClass::ValidationMismatch, "validation failed: " + eq.detail);
      return true;  // not an allocation problem; do not retry
    }
    r.validated = true;
    r.simulatedCycles = sim.totalCycles;
    r.trace.simulatedCycles = sim.totalCycles;
  }

  // The PHYSICAL stream: allocator bugs (overlapping values sharing a
  // register, collapsed initializers) only surface here.
  if (r.allocOk && (options.certify || options.simulate)) {
    const PipelinedCode phys = applyPhysicalAssignment(code, alloc);

    if (options.certify) {
      ScopedStageTimer certTimer(r.trace.certifyNs);
      CertifyReport cert = certifyStream(original, clustered, phys, machine,
                                         CertifyLayer::Physical);
      r.trace.certifiedValues += cert.certifiedValues;
      const int errs = cert.errorCount();
      const std::string first = cert.firstError();
      for (Diagnostic& d : cert.diagnostics) r.diagnostics.push_back(std::move(d));
      if (errs > 0) {
        r.trace.certifyViolations += errs;
        fail(r, FailureClass::VerifierViolation,
             "physical certification failed: " + first);
        return true;
      }
    }

    if (options.simulate) {
      ScopedStageTimer simTimer(r.trace.simulateNs);
      // SSA-rename the physical stream so register reuse cannot hide a wrong
      // final value: every value instance gets its own name and namesOf points
      // at final instances, making the FULL equivalence check (memory AND
      // register finals) sound on allocated code.
      const PipelinedCode ssa = ssaRename(phys, clustered.loop, machine.lat);
      const SimResult physSim =
          simulate(ssa, clustered.loop, machine, &clustered.partition);
      const EquivalenceReport physEq = checkEquivalence(original, ssa, physSim);
      if (!physEq.equal) {
        fail(r, FailureClass::ValidationMismatch,
             "physical validation failed: " + physEq.detail);
        return true;
      }
      r.validatedPhysical = true;
    }
  }

  if (options.certify) r.certified = true;  // every requested layer passed
  return true;
}

LoopResult compileLoopImpl(const Loop& loop, const MachineDesc& machine,
                           const PipelineOptions& options) {
  StageTimer lifeTimer;
  LoopResult r;
  r.loopName = loop.name;
  r.numOps = loop.size();
  r.partitionerUsed = options.partitioner;

  // Deterministic work budget + optional wall-clock belt (docs/robustness.md).
  // The budget counts scheduler placements — the only unbounded work in the
  // pipeline — so exhaustion is identical on every host and thread count; the
  // deadline is a non-deterministic backstop, off by default.
  auto budgetLeft = [&]() -> std::int64_t {
    if (options.workBudget <= 0) return 0;  // 0 = unbounded (scheduler contract)
    return std::max<std::int64_t>(1, options.workBudget - r.trace.schedPlacements);
  };
  auto budgetDone = [&]() {
    return options.workBudget > 0 && r.trace.schedPlacements >= options.workBudget;
  };
  auto deadlineHit = [&]() {
    return options.deadlineNs > 0 && lifeTimer.elapsedNs() > options.deadlineNs;
  };

  if (auto err = validate(loop)) {
    fail(r, FailureClass::ParseError, *err);
    return r;
  }

  // Static semantic gate (src/analysis, docs/analysis.md): structural and
  // dataflow lint before any scheduling work. Errors refuse the loop;
  // warnings ride along in r.diagnostics for observability.
  if (options.staticAnalysis) {
    ScopedStageTimer analysisTimer(r.trace.analysisNs);
    AnalysisReport rep = analyzeLoop(loop);
    r.trace.diagErrors = rep.errorCount();
    r.trace.diagWarnings = rep.warningCount();
    if (rep.errorCount() > 0) {
      fail(r, FailureClass::GateRefusal, "static analysis failed: " + rep.firstError());
      r.diagnostics = std::move(rep.diagnostics);
      return r;
    }
    r.diagnostics = std::move(rep.diagnostics);
  }

  // ---- Step 2: ideal schedule on the monolithic counterpart. ----
  StageTimer idealTimer;
  const MachineDesc ideal = idealCounterpart(machine);
  const Ddg ddg = Ddg::build(loop, machine.lat);
  const std::vector<OpConstraint> freeConstraints(loop.size());
  ModuloSchedulerOptions idealOpts = options.sched;
  idealOpts.maxPlacements = budgetLeft();
  const ModuloSchedulerResult idealRes =
      moduloSchedule(ddg, ideal, freeConstraints, idealOpts);
  r.trace.idealScheduleNs += idealTimer.elapsedNs();
  r.trace.schedPlacements += idealRes.placements;
  r.idealResII = idealRes.resII;
  r.idealRecII = idealRes.recII;
  if (!idealRes.success) {
    if (idealRes.budgetExhausted) {
      fail(r, FailureClass::Timeout, "work budget exhausted during ideal schedule");
    } else {
      fail(r, FailureClass::SchedCapacity, "ideal schedule not found within II limit");
    }
    return r;
  }
  r.idealII = idealRes.schedule.ii;
  r.trace.idealCycles = r.idealII;
  if (options.verify) {
    ScopedStageTimer verifyTimer(r.trace.verifyNs);
    const VerifyReport rep =
        verifySchedule(ddg, ideal, freeConstraints, idealRes.schedule);
    if (!rep.ok()) {
      r.trace.verifyViolations += static_cast<int>(rep.violations.size());
      fail(r, FailureClass::VerifierViolation,
           "ideal schedule verification failed: " + rep.first());
      return r;
    }
  }

  // ---- Steps 3-5 under the graceful-degradation ladder. ----
  // Recoverable failures (unusable partition, invalid clustered loop,
  // unschedulable constraints, exhausted allocation retries) advance to the
  // next rung; bug-class failures (verifier, validation) and Timeout are
  // terminal so the ladder can never mask a legality bug or loop forever.
  const std::vector<PartitionerKind> ladder = partitionerLadder(options);
  for (std::size_t rung = 0; rung < ladder.size(); ++rung) {
    const PartitionerKind kind = ladder[rung];
    if (rung > 0) {
      r.trace.fallbackUsed = 1;
      ++r.trace.recoverySteps;
    }
    r.partitionerUsed = kind;
    // Reset the per-attempt outputs a previous rung may have left behind
    // (trace counters deliberately keep accumulating across rungs).
    r.error.clear();
    r.failureClass = FailureClass::None;
    r.clusteredII = 0;
    r.bodyCopies = 0;
    r.preheaderCopies = 0;
    r.stageCount = 0;
    r.maxUnroll = 0;
    r.allocOk = false;
    r.allocRetries = 0;
    r.refineMoves = 0;
    r.compactionMoves = 0;
    r.validated = false;
    r.validatedPhysical = false;
    r.certified = false;
    r.simulatedCycles = 0;

    if (budgetDone()) {
      fail(r, FailureClass::Timeout, "work budget exhausted before partitioning");
      return r;
    }
    if (deadlineHit()) {
      fail(r, FailureClass::Timeout, "wall-clock deadline exceeded");
      return r;
    }

    // ---- Step 3: partition registers to banks. ----
    // (On a monolithic machine every register lands in bank 0, no copies are
    // inserted, and the clustered schedule reproduces the ideal one.)
    StageTimer partitionTimer;
    const std::int64_t rcgNsBefore = r.trace.rcgBuildNs;
    Partition partition =
        choosePartition(loop, ddg, idealRes.schedule, machine, options, kind, r.trace);
    if (options.refinePasses > 0 && !machine.isMonolithic() &&
        partitionCovers(loop, partition)) {
      RefinementOptions ropts;
      ropts.maxPasses = options.refinePasses;
      ropts.sched = options.sched;
      RefinementResult refined =
          refinePartition(loop, machine, partition, r.idealII, ropts);
      partition = std::move(refined.partition);
      r.refineMoves = refined.movesAccepted;
    }
    r.trace.partitionNs +=
        partitionTimer.elapsedNs() - (r.trace.rcgBuildNs - rcgNsBefore);

    if (!partitionCovers(loop, partition)) {
      fail(r, FailureClass::PartitionFailure,
           std::string("partitioner ") + partitionerName(kind) +
               " left registers without a bank");
      continue;  // next rung
    }

    // ---- Step 4: copies + cluster-constrained rescheduling. ----
    StageTimer copyTimer;
    const ClusteredLoop clustered = insertCopies(loop, partition, machine);
    r.trace.copyInsertNs += copyTimer.elapsedNs();
    r.bodyCopies = clustered.bodyCopies;
    r.preheaderCopies = clustered.preheaderCopies;
    if (auto err = validate(clustered.loop)) {
      fail(r, FailureClass::CopyInsertFailure,
           "copy insertion produced an invalid loop: " + *err);
      continue;  // next rung
    }

    StageTimer rescheduleTimer;
    const Ddg cddg = Ddg::build(clustered.loop, machine.lat);
    r.trace.rescheduleNs += rescheduleTimer.elapsedNs();
    ModuloSchedulerOptions schedOpts = options.sched;
    bool rungFailed = false;
    for (int attempt = 0;; ++attempt) {
      if (deadlineHit()) {
        fail(r, FailureClass::Timeout, "wall-clock deadline exceeded");
        return r;
      }
      rescheduleTimer.restart();
      ++r.trace.rescheduleAttempts;
      schedOpts.maxPlacements = budgetLeft();
      const ModuloSchedulerResult clusteredRes =
          moduloSchedule(cddg, machine, clustered.constraints, schedOpts);
      r.trace.schedPlacements += clusteredRes.placements;
      if (!clusteredRes.success) {
        r.trace.rescheduleNs += rescheduleTimer.elapsedNs();
        if (clusteredRes.budgetExhausted) {
          fail(r, FailureClass::Timeout,
               "work budget exhausted during clustered schedule");
          return r;  // terminal: retrying cannot shrink the work done
        }
        fail(r, FailureClass::SchedCapacity,
             "clustered schedule not found within II limit");
        rungFailed = true;
        break;  // next rung
      }
      ModuloSchedule clusteredSched = clusteredRes.schedule;
      if (options.compactLifetimes) {
        const CompactionStats cs =
            compactLifetimes(cddg, machine, clustered.constraints, clusteredSched);
        r.compactionMoves = cs.movedOps;
      }
      r.trace.rescheduleNs += rescheduleTimer.elapsedNs();
      r.clusteredII = clusteredSched.ii;

      // ---- Step 5 (+ emission, simulation, validation). ----
      r.allocRetries = attempt;
      r.trace.iiEscalations = attempt;
      if (finishSchedule(loop, clustered, cddg, clusteredSched, machine, options, r)) {
        if (r.failureClass != FailureClass::None) return r;  // bug class: terminal
        break;  // success
      }
      if (attempt >= options.maxAllocRetries) {
        fail(r, FailureClass::AllocCapacity,
             "register allocation failed after II relaxation");
        rungFailed = true;
        break;  // next rung
      }
      ++r.trace.recoverySteps;
      schedOpts.startII = clusteredRes.schedule.ii + 1;  // relax pressure
    }
    if (rungFailed) continue;

    r.ok = true;
    return r;
  }

  // Every rung failed; r carries the last rung's classified failure.
  RAPT_ASSERT(!r.ok && r.failureClass != FailureClass::None,
              "ladder exhausted without a classified failure");
  return r;
}

/// FNV-1a, mixed with the campaign seed: gives every loop its own fault
/// stream keyed by NAME, not corpus position, so injections are identical for
/// every suite thread count and corpus order.
std::uint64_t perLoopFaultSeed(std::uint64_t seed, const std::string& name) {
  std::uint64_t h = 14695981039346656037ULL ^ seed;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

LoopResult compileLoop(const Loop& loop, const MachineDesc& machine,
                       const PipelineOptions& options) {
  StageTimer total;
  std::optional<FaultInjector> injector;
  if (options.fault.ratePercent > 0) {
    injector.emplace(perLoopFaultSeed(options.fault.seed, loop.name),
                     options.fault.ratePercent);
    injector->armProcessFaults(options.fault.processFaults);
    // Process-grade faults fire before any real work: the point is to kill
    // or wedge THIS process, and the supervisor (pipeline/Suite.h subprocess
    // mode) must classify what it sees. Keyed by loop name like the stage
    // faults, so the same loops die on every thread count.
    const ProcessFaultKind lethal = injector->drawProcessFault();
    if (lethal != ProcessFaultKind::None) fireProcessFault(lethal);
  }
  FaultInjector::Scope scope(injector ? &*injector : nullptr);

  // Exception containment: whatever a stage throws — std::bad_alloc, a logic
  // error, an injected FaultInjected — becomes a classified InternalError
  // result. One pathological loop must never abort a whole suite run.
  LoopResult r;
  try {
    r = compileLoopImpl(loop, machine, options);
  } catch (const std::exception& e) {
    r = LoopResult{};
    r.loopName = loop.name;
    r.numOps = loop.size();
    r.partitionerUsed = options.partitioner;
    fail(r, FailureClass::InternalError, std::string("uncaught exception: ") + e.what());
  } catch (...) {
    r = LoopResult{};
    r.loopName = loop.name;
    r.numOps = loop.size();
    r.partitionerUsed = options.partitioner;
    fail(r, FailureClass::InternalError, "uncaught non-standard exception");
  }
  if (injector) r.trace.faultsInjected = injector->injectedCount();
  RAPT_ASSERT(r.ok == (r.failureClass == FailureClass::None),
              "failure class must be None exactly when ok");
  r.trace.totalNs = total.elapsedNs();
  return r;
}

}  // namespace rapt
