// The end-to-end code-generation pipeline of the paper (§4, steps 1-5):
//
//   1. intermediate code with symbolic registers (the input Loop);
//   2. ideal schedule: modulo scheduling for the same machine with one
//      monolithic multi-ported bank;
//   3. register partitioning by the component method (or a baseline);
//   4. copy insertion, DDG rebuild, cluster-constrained rescheduling;
//   5. per-bank Chaitin/Briggs register assignment (with II relaxation and
//      rescheduling when a bank runs out of registers);
//
// plus what the paper's static measurement never needed: emission of the
// complete pipelined stream, cycle-accurate simulation, and semantic
// equivalence checking against the sequential reference.
#pragma once

#include <string>

#include "analysis/Diagnostics.h"
#include "machine/MachineDesc.h"
#include "partition/GreedyPartitioner.h"
#include "partition/Rcg.h"
#include "pipeline/FailureClass.h"
#include "pipeline/PipelineTrace.h"
#include "regalloc/BankAssigner.h"
#include "sched/ModuloScheduler.h"

namespace rapt {

/// How runSuite executes each compileLoop (docs/robustness.md "Process
/// isolation"). InProcess is the historical mode: fastest, but a crash or
/// hang in one loop takes the suite with it. Subprocess forks one supervised
/// worker per loop (tools/rapt-worker) under hard rlimits and a wall-clock
/// watchdog; crashes, memory bombs, and hangs become classified rows (Crash
/// / OutOfMemory / HardTimeout) while the rest of the corpus completes.
/// Aggregation is bit-identical between the modes on clean corpora.
enum class SuiteIsolation : std::uint8_t { InProcess, Subprocess };

[[nodiscard]] constexpr const char* suiteIsolationName(SuiteIsolation i) {
  return i == SuiteIsolation::InProcess ? "inprocess" : "subprocess";
}

/// Inverse of suiteIsolationName, for the shared --isolation CLI flag.
/// Returns false (leaving `out` untouched) on an unknown token.
[[nodiscard]] inline bool parseSuiteIsolation(const std::string& token,
                                              SuiteIsolation& out) {
  if (token == "inprocess") {
    out = SuiteIsolation::InProcess;
    return true;
  }
  if (token == "subprocess") {
    out = SuiteIsolation::Subprocess;
    return true;
  }
  return false;
}

enum class PartitionerKind : std::uint8_t {
  GreedyRcg,   ///< the paper's contribution
  RoundRobin,  ///< naive spreading
  Random,      ///< seeded uniform
  BugLike,     ///< Ellis's bottom-up greedy over the operation DAG
  UasLike,     ///< Ozer's unified assign-and-schedule (schedule-time choice)
};

[[nodiscard]] const char* partitionerName(PartitionerKind k);

/// Fault-injection plan for robustness campaigns (docs/robustness.md).
/// `ratePercent == 0` (the default) disables injection entirely. When
/// enabled, compileLoop derives ONE seeded FaultInjector per loop from
/// (seed, loop name), so injected faults are identical for every suite
/// thread count and every corpus order.
struct FaultPlan {
  std::uint64_t seed = 0;
  int ratePercent = 0;  ///< per-site fault probability, 0-100
  bool processFaults = false;  ///< also draw process-grade faults (abort,
                               ///< segfault, alloc bomb, spin hang) at loop
                               ///< entry. LETHAL to the calling process —
                               ///< only meaningful under subprocess
                               ///< isolation, where the supervisor maps each
                               ///< kind to its taxonomy class.
};

struct PipelineOptions {
  RcgWeights weights;
  PartitionerKind partitioner = PartitionerKind::GreedyRcg;
  std::uint64_t randomSeed = 1;   ///< for PartitionerKind::Random
  std::int64_t simTrip = 64;      ///< iterations simulated/validated
  bool simulate = true;           ///< run simulator + equivalence check
  bool verify = true;             ///< run the independent schedule/partition
                                  ///< oracles on every schedule and emitted
                                  ///< stream (src/verify, docs/verification.md)
  bool staticAnalysis = true;     ///< run the static semantic gate before
                                  ///< scheduling; error diagnostics refuse the
                                  ///< loop (src/analysis, docs/analysis.md)
  bool certify = true;            ///< statically certify every emitted stream
                                  ///< (virtual and register-allocated) against
                                  ///< the sequential reference — symbolic,
                                  ///< input-independent (src/certify,
                                  ///< docs/certification.md)
  bool allocateRegisters = true;  ///< run per-bank Chaitin/Briggs
  int maxAllocRetries = 8;        ///< II bumps after failed allocation
  int refinePasses = 0;           ///< iterative partition refinement (§7
                                  ///< future work; see partition/Refinement.h)
  bool compactLifetimes = false;  ///< lifetime-sensitive post-pass on the
                                  ///< clustered schedule (the Swing-scheduling
                                  ///< contrast of §6.3; sched/LifetimeCompaction.h)
  int threads = 1;                ///< runSuite worker threads: 0 = hardware
                                  ///< concurrency, 1 = legacy serial path.
                                  ///< Results are bit-identical either way;
                                  ///< compileLoop itself is single-threaded.

  // ---- suite-level supervision (runSuite only; compileLoop ignores these,
  // and none of them enter suiteConfigHash — resume and bit-identity must
  // hold across thread counts, isolation modes, and limit settings) ----
  SuiteIsolation isolation = SuiteIsolation::InProcess;
  std::string workerPath;         ///< rapt-worker binary override; otherwise
                                  ///< $RAPT_WORKER, then the supervisor's own
                                  ///< directory, then PATH (Suite.cpp)
  std::int64_t workerTimeoutMs = 120'000;  ///< per-loop wall watchdog under
                                  ///< subprocess isolation (0 = none); a
                                  ///< derived RLIMIT_CPU backs it up
  std::int64_t workerMemoryBytes = 0;  ///< RLIMIT_AS per worker (0 = none).
                                  ///< Leave 0 under ASan: shadow memory needs
                                  ///< the whole address space.
  std::string journalPath;        ///< append-only JSONL run journal (empty =
                                  ///< off); works in both isolation modes
  bool resume = false;            ///< replay completed rows from journalPath
                                  ///< (matching config hash) before compiling
                                  ///< the rest
  bool partitionerFallback = true;  ///< graceful-degradation ladder
                                    ///< (docs/robustness.md): when the chosen
                                    ///< partitioner yields an unusable
                                    ///< partition, an invalid clustered loop,
                                    ///< an unschedulable problem, or an
                                    ///< unallocatable one, retry with
                                    ///< GreedyRcg and then RoundRobin before
                                    ///< giving up. Disable for partitioner
                                    ///< ablations that must not mix kinds.
  std::int64_t workBudget = 200'000'000;  ///< per-loop scheduler-placement
                                  ///< budget summed over every attempt (ideal,
                                  ///< reschedules, ladder retries). 0 =
                                  ///< unbounded. Deterministic: exhaustion
                                  ///< classifies the loop as Timeout instead
                                  ///< of hanging a suite worker. The default
                                  ///< is ~100x the costliest corpus loop.
  std::int64_t deadlineNs = 0;    ///< optional wall-clock belt on top of the
                                  ///< placement budget (0 = off). NOT
                                  ///< deterministic — results may differ
                                  ///< between runs/hosts near the limit — so
                                  ///< it is opt-in for latency-critical
                                  ///< serving, not for experiments.
  FaultPlan fault;                ///< fault injection; off by default
  ModuloSchedulerOptions sched;
};

/// Everything measured for one loop on one machine.
struct LoopResult {
  std::string loopName;
  bool ok = false;
  std::string error;                  ///< human-readable detail (free-form)
  FailureClass failureClass = FailureClass::None;  ///< machine-readable class;
                                      ///< None iff ok (docs/robustness.md)
  PartitionerKind partitionerUsed = PartitionerKind::GreedyRcg;  ///< after the
                                      ///< recovery ladder; == options.partitioner
                                      ///< unless a fallback fired

  int numOps = 0;          ///< original body size
  int idealII = 0;
  int idealRecII = 0;
  int idealResII = 0;

  int clusteredII = 0;     ///< == idealII on a monolithic machine
  int bodyCopies = 0;
  int preheaderCopies = 0;
  int stageCount = 0;
  int maxUnroll = 0;       ///< MVE kernel-unroll factor

  bool allocOk = false;
  int allocRetries = 0;
  int spillsAtFirstTry = 0;
  int refineMoves = 0;     ///< partition moves accepted by refinement
  int compactionMoves = 0; ///< ops moved by lifetime compaction

  bool validated = false;  ///< simulated and bit-equal to the reference
  bool validatedPhysical = false;  ///< register-allocated stream also simulated
  bool certified = false;  ///< statically proven value-equal to the reference
                           ///< for ALL inputs (every requested layer passed the
                           ///< certifier; false when options.certify is off)
  std::int64_t simulatedCycles = 0;

  /// Findings of the static semantic gate (empty when the gate is off or the
  /// loop is clean). Errors are also reflected in `ok`/`error`; warnings are
  /// advisory and never block compilation.
  std::vector<Diagnostic> diagnostics;

  /// Subprocess isolation only: the tail of the dead worker's stderr
  /// (redacted, bounded; support/Subprocess.h), attached to Crash and
  /// InternalError rows so the first diagnostic artifact of a contained
  /// crash survives in the suite result. Empty in-process and on clean rows.
  std::string workerStderr;

  /// Compile-service provenance (docs/service.md): true when this result was
  /// answered from rapt-served's content-addressed cache instead of a fresh
  /// compile. Transport-level metadata, NOT part of the result itself: it is
  /// deliberately excluded from encodeLoopResult, so a cached reply stays
  /// bit-identical to its cold-compile counterpart on the wire, in journals,
  /// and in every aggregate. Set only by the service client (service/Client.h)
  /// from the response envelope.
  bool servedFromCache = false;

  /// Per-stage wall times and counters (observability only: every field
  /// except the *Ns times is deterministic; the times vary run to run and
  /// never influence results).
  PipelineTrace trace;

  /// Kernel-size degradation normalized to 100 (Table 2's metric).
  [[nodiscard]] double normalizedSize() const {
    return idealII == 0 ? 0.0 : 100.0 * clusteredII / idealII;
  }
  [[nodiscard]] double degradationPercent() const { return normalizedSize() - 100.0; }

  /// Table 1's IPC: ideal counts original ops only; on a clustered machine
  /// embedded copies count as issued instructions, copy-unit copies do not.
  [[nodiscard]] double idealIpc() const {
    return idealII == 0 ? 0.0 : static_cast<double>(numOps) / idealII;
  }
  [[nodiscard]] double clusteredIpc(const MachineDesc& machine) const {
    if (clusteredII == 0) return 0.0;
    const int issued =
        numOps + (machine.copiesUseFuSlots() ? bodyCopies : 0);
    return static_cast<double>(issued) / clusteredII;
  }
};

/// Compiles `loop` for `machine` (monolithic machines take the ideal path:
/// no partitioning, no copies).
[[nodiscard]] LoopResult compileLoop(const Loop& loop, const MachineDesc& machine,
                                     const PipelineOptions& options = {});

/// The monolithic counterpart of `machine` used for its ideal schedules:
/// same width, latencies and total register count, one cluster.
[[nodiscard]] MachineDesc idealCounterpart(const MachineDesc& machine);

}  // namespace rapt
