#include "pipeline/CorpusLoader.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <system_error>

#include "ir/Parser.h"

namespace rapt {
namespace {

LoopResult parseFailure(const std::string& originName, const std::string& detail) {
  LoopResult r;
  r.loopName = originName;
  r.ok = false;
  r.failureClass = FailureClass::ParseError;
  r.error = detail;
  return r;
}

}  // namespace

LoadedCorpus loadLoopText(std::string_view text, const std::string& originName) {
  LoadedCorpus out;
  try {
    out.loops = parseLoops(text);
  } catch (const ParseError& e) {
    out.parseFailures.push_back(
        parseFailure(originName, std::string("parse error: ") + e.what()));
  } catch (const std::exception& e) {
    out.parseFailures.push_back(
        parseFailure(originName, std::string("loop ingestion failed: ") + e.what()));
  }
  return out;
}

LoadedCorpus loadLoopFile(const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  std::ifstream in(path);
  if (!in) {
    LoadedCorpus out;
    out.parseFailures.push_back(parseFailure(name, "cannot open file"));
    return out;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    LoadedCorpus out;
    out.parseFailures.push_back(parseFailure(name, "read error"));
    return out;
  }
  return loadLoopText(buf.str(), name);
}

LoadedCorpus loadLoopDirectory(const std::filesystem::path& dir) {
  LoadedCorpus out;
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->path().extension() == ".loop") files.push_back(it->path());
  }
  if (ec) {
    out.parseFailures.push_back(
        parseFailure(dir.string(), "cannot read directory: " + ec.message()));
    return out;
  }
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& f : files) out.merge(loadLoopFile(f));
  return out;
}

SuiteResult runSuite(const LoadedCorpus& corpus, const MachineDesc& machine,
                     const PipelineOptions& options) {
  SuiteResult out = runSuite(std::span<const Loop>(corpus.loops), machine, options);
  for (const LoopResult& r : corpus.parseFailures) {
    out.loops.push_back(r);
    ++out.failures;
    ++out.failuresByClass[static_cast<std::size_t>(r.failureClass)];
  }
  return out;
}

}  // namespace rapt
