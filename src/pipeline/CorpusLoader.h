// Fault-tolerant corpus ingestion (docs/robustness.md "Parse containment").
//
// Loading a corpus through the raw parser means one malformed .loop file
// throws and aborts the whole run. This loader converts every ingestion
// failure — unreadable file, parse error, structural validation error — into
// a per-loop LoopResult classified as FailureClass::ParseError, so a corpus
// directory with one bad file still compiles the other N-1 loops and the bad
// one shows up in SuiteResult::failuresByClass like any other failure.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "ir/Loop.h"
#include "pipeline/Suite.h"

namespace rapt {

/// The outcome of ingesting one or more .loop sources: the loops that parsed
/// plus one pre-classified failure result per source that did not.
struct LoadedCorpus {
  std::vector<Loop> loops;                ///< parsed + validated successfully
  std::vector<LoopResult> parseFailures;  ///< failureClass == ParseError

  /// Folds another load (e.g. the next file of a directory) into this one.
  void merge(LoadedCorpus other) {
    for (Loop& l : other.loops) loops.push_back(std::move(l));
    for (LoopResult& r : other.parseFailures) parseFailures.push_back(std::move(r));
  }
};

/// Parses loop text; a throw becomes one ParseError entry named after
/// `originName` (a file name or synthetic label) instead of propagating.
[[nodiscard]] LoadedCorpus loadLoopText(std::string_view text,
                                        const std::string& originName);

/// Reads and parses one .loop file; IO errors are ParseError entries too.
[[nodiscard]] LoadedCorpus loadLoopFile(const std::filesystem::path& path);

/// Loads every *.loop file under `dir` (sorted by path, deterministic). A
/// missing or unreadable directory yields a single ParseError entry rather
/// than a throw.
[[nodiscard]] LoadedCorpus loadLoopDirectory(const std::filesystem::path& dir);

/// Compiles the loaded loops like runSuite(span, ...) and then appends the
/// parse failures to the result (after the compiled loops, in load order),
/// folding them into `failures` and `failuresByClass`. A malformed source can
/// therefore never abort a suite run — it is one classified row in the
/// report.
[[nodiscard]] SuiteResult runSuite(const LoadedCorpus& corpus,
                                   const MachineDesc& machine,
                                   const PipelineOptions& options = {});

}  // namespace rapt
