// The pipeline failure taxonomy (docs/robustness.md).
//
// Every LoopResult with ok == false carries exactly one FailureClass telling
// the caller WHICH stage gave up and WHY, machine-readably; the free-text
// `error` string stays the human detail. The classes partition the failure
// space along two axes the suite aggregation and the fault-injection oracle
// both need:
//
//   * capacity give-ups (SchedCapacity, AllocCapacity, Timeout) are
//     legitimate outcomes on stressed configurations — the compiler ran out
//     of II headroom, registers, or work budget after exhausting its
//     recovery ladder;
//   * input refusals (ParseError, GateRefusal) mean the loop never entered
//     the pipeline;
//   * oracle trips (VerifierViolation, ValidationMismatch) and InternalError
//     indicate a compiler bug (or an injected fault) and are never
//     acceptable on a healthy run;
//   * process-grade outcomes (Crash, OutOfMemory, HardTimeout) exist only
//     under subprocess isolation (pipeline/Suite.h): the supervisor maps a
//     worker's fatal signal, rlimit death, or watchdog kill to them. Crash
//     is a bug class — a SIGSEGV is never legitimate; OutOfMemory and
//     HardTimeout are capacity classes — the hard caps are deliberately
//     finite, and hitting one is the contained analogue of Timeout.
#pragma once

#include <cstdint>
#include <string_view>

namespace rapt {

enum class FailureClass : std::uint8_t {
  None = 0,            ///< ok == true; no failure
  ParseError,          ///< malformed input (parse throw or ir::validate refusal)
  GateRefusal,         ///< static semantic gate reported errors (docs/analysis.md)
  SchedCapacity,       ///< no (ideal or clustered) schedule within the II limit
  PartitionFailure,    ///< partitioner produced an unusable bank assignment
  CopyInsertFailure,   ///< copy insertion produced a structurally invalid loop
  AllocCapacity,       ///< bank allocation failed after II relaxation
  VerifierViolation,   ///< independent oracle rejected a schedule or stream
  ValidationMismatch,  ///< simulation disagreed with the sequential reference
  Timeout,             ///< per-loop work budget (or wall deadline) exhausted
  InternalError,       ///< uncaught exception contained by the harness
  Crash,               ///< worker process died on a fatal signal (subprocess mode)
  OutOfMemory,         ///< worker exceeded its RLIMIT_AS memory cap
  HardTimeout,         ///< worker killed by the supervisor watchdog or RLIMIT_CPU
  Overload,            ///< compile service rejected the job at admission: the
                       ///< bounded queue was full (docs/service.md). A
                       ///< capacity class — the client should back off and
                       ///< retry; the loop itself is fine.
};

/// Number of enumerators (array-of-counters size for per-class aggregation).
inline constexpr int kNumFailureClasses = 15;

/// Stable machine-readable token, used as the BENCH_*.json key.
[[nodiscard]] constexpr const char* failureClassName(FailureClass c) {
  switch (c) {
    case FailureClass::None: return "none";
    case FailureClass::ParseError: return "parseError";
    case FailureClass::GateRefusal: return "gateRefusal";
    case FailureClass::SchedCapacity: return "schedCapacity";
    case FailureClass::PartitionFailure: return "partitionFailure";
    case FailureClass::CopyInsertFailure: return "copyInsertFailure";
    case FailureClass::AllocCapacity: return "allocCapacity";
    case FailureClass::VerifierViolation: return "verifierViolation";
    case FailureClass::ValidationMismatch: return "validationMismatch";
    case FailureClass::Timeout: return "timeout";
    case FailureClass::InternalError: return "internalError";
    case FailureClass::Crash: return "crash";
    case FailureClass::OutOfMemory: return "outOfMemory";
    case FailureClass::HardTimeout: return "hardTimeout";
    case FailureClass::Overload: return "overload";
  }
  return "invalid";
}

/// Capacity give-ups: acceptable on stressed machines (small banks, tight
/// latencies); the graceful counterpart of "compiled". Everything else that
/// is not None means refused input or a bug.
[[nodiscard]] constexpr bool isCapacityClass(FailureClass c) {
  return c == FailureClass::SchedCapacity || c == FailureClass::AllocCapacity ||
         c == FailureClass::Timeout || c == FailureClass::OutOfMemory ||
         c == FailureClass::HardTimeout || c == FailureClass::Overload;
}

/// Oracle trips and containment: never acceptable on a healthy run (they are
/// exactly what the fault-injection campaign expects to see *instead of* a
/// wrong answer when a fault is not recoverable).
[[nodiscard]] constexpr bool isBugClass(FailureClass c) {
  return c == FailureClass::VerifierViolation ||
         c == FailureClass::ValidationMismatch ||
         c == FailureClass::InternalError || c == FailureClass::Crash;
}

}  // namespace rapt
