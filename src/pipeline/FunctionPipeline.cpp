#include "pipeline/FunctionPipeline.h"

#include <cmath>
#include <map>
#include <tuple>

#include "analysis/Linter.h"
#include "ddg/Ddg.h"
#include "partition/BlockCopyInserter.h"
#include "partition/GreedyPartitioner.h"
#include "pipeline/CompilerPipeline.h"
#include "regalloc/Spiller.h"
#include "sched/ListScheduler.h"
#include "vliwsim/FunctionInterpreter.h"
#include "support/Assert.h"

namespace rapt {
namespace {

/// Wraps a basic block as a loop-shaped value so the DDG builder applies;
/// only distance-0 edges are meaningful for straight-line code and the list
/// scheduler ignores the rest.
Loop pseudoLoop(const Function& fn, const BasicBlock& bb) {
  Loop pl;
  pl.name = fn.name + ".block";
  pl.arrays = fn.arrays;
  pl.body = bb.ops;
  pl.nestingDepth = bb.nestingDepth;
  return pl;
}

double frequencyOf(const BasicBlock& bb) { return std::pow(10.0, bb.nestingDepth); }

/// Global constant replication: a register defined by a Const operation and
/// consumed from other banks gets one per-bank alias, materialized by a copy
/// right after its definition; all foreign consumers are rewritten to the
/// alias. This is the whole-function analogue of the loop pipeline's
/// preheader aliases — without it every consuming block would re-copy the
/// same coefficient on every execution. Returns the number of replication
/// copies (they execute once per definition, not once per consuming block).
int replicateConstants(Function& fn, Partition& partition, std::uint32_t nextFresh[2]) {
  // Locate constant definitions.
  struct ConstDef {
    int block;
    int pos;
  };
  std::unordered_map<std::uint32_t, ConstDef> constDefs;
  for (int b = 0; b < fn.numBlocks(); ++b) {
    const auto& ops = fn.blocks[b].ops;
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
      if (ops[i].info().kind == OpKind::Const)
        constDefs[ops[i].def.key()] = {b, i};
    }
  }
  if (constDefs.empty()) return 0;

  auto anchorOf = [&](const Operation& o) -> int {
    if (o.def.isValid()) return partition.bankOf(o.def);
    return partition.bankOf(o.src[1]);
  };

  // (const key, bank) -> alias register; created lazily while rewriting.
  std::map<std::pair<std::uint32_t, int>, VirtReg> aliasOf;
  int copies = 0;
  for (BasicBlock& bb : fn.blocks) {
    for (Operation& op : bb.ops) {
      if (op.info().kind == OpKind::Const || isCopy(op.op)) continue;
      const int anchor = anchorOf(op);
      for (int s = 0; s < op.numSrcs(); ++s) {
        const VirtReg src = op.src[s];
        auto def = constDefs.find(src.key());
        if (def == constDefs.end()) continue;
        if (partition.bankOf(src) == anchor) continue;
        auto [it, inserted] = aliasOf.try_emplace({src.key(), anchor}, VirtReg{});
        if (inserted) {
          const VirtReg alias =
              VirtReg(src.cls(), nextFresh[static_cast<int>(src.cls())]++);
          it->second = alias;
          partition.assign(alias, anchor);
          ++copies;
        }
        op.src[s] = it->second;
      }
    }
  }
  // Materialize the aliases right after their definitions (later insertions
  // in the same block shift positions; insert in descending position order).
  std::vector<std::tuple<int, int, Operation>> inserts;  // (block, pos, copy)
  for (const auto& [key, alias] : aliasOf) {
    const ConstDef& def = constDefs.at(key.first);
    inserts.emplace_back(def.block, def.pos,
                         makeCopy(alias, VirtReg::fromKey(key.first)));
  }
  std::sort(inserts.begin(), inserts.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
    return std::get<1>(a) > std::get<1>(b);
  });
  for (const auto& [block, pos, copy] : inserts) {
    auto& ops = fn.blocks[block].ops;
    ops.insert(ops.begin() + pos + 1, copy);
  }
  return copies;
}

}  // namespace

FunctionResult compileFunction(const Function& fn, const MachineDesc& machine,
                               const FunctionPipelineOptions& options) {
  FunctionResult r;
  r.name = fn.name;
  r.numBlocks = fn.numBlocks();

  // Static semantic gate (src/analysis, docs/analysis.md): structural, CFG and
  // dataflow lint before any scheduling. Errors refuse the function.
  if (options.staticAnalysis) {
    AnalysisReport rep = analyzeFunction(fn);
    if (rep.errorCount() > 0) {
      r.error = "static analysis failed: " + rep.firstError();
      r.diagnostics = std::move(rep.diagnostics);
      return r;
    }
    r.diagnostics = std::move(rep.diagnostics);
  }

  // Each block must be single-assignment within itself (the same property the
  // loop pipeline relies on).
  for (const BasicBlock& bb : fn.blocks) {
    if (auto err = validate(pseudoLoop(fn, bb))) {
      r.error = *err;
      return r;
    }
    r.numOps += static_cast<int>(bb.ops.size());
  }

  const MachineDesc ideal = idealCounterpart(machine);

  // ---- 1+2: ideal block schedules and the function-wide RCG. ----
  Rcg rcg;
  for (const BasicBlock& bb : fn.blocks) {
    const Loop pl = pseudoLoop(fn, bb);
    const Ddg ddg = Ddg::build(pl, machine.lat);
    const std::vector<OpConstraint> free(bb.ops.size());
    const ListSchedule sched = listSchedule(ddg, ideal, free);
    r.idealCycles += frequencyOf(bb) * sched.length;
    if (bb.ops.empty()) continue;
    const double density =
        static_cast<double>(bb.ops.size()) / std::max(1, sched.length);
    const std::vector<int> flex =
        ddg.flexibility(sched.cycle, /*ii=*/sched.length + 1, sched.length - 1);
    rcg.addBlockContribution(bb.ops, sched.cycle, flex, bb.nestingDepth, density,
                             options.weights);
  }
  rcg.finalizeAdjacency();

  // ---- 3: one partition for the whole function. ----
  Partition partition = greedyPartition(rcg, machine.numClusters, options.weights);

  // ---- 4: per-block copies + cluster-constrained rescheduling. ----
  std::uint32_t nextFresh[2] = {0, 0};
  for (VirtReg reg : fn.allRegs()) {
    std::uint32_t& n = nextFresh[static_cast<int>(reg.cls())];
    n = std::max(n, reg.index() + 1);
  }
  Function replicated = fn;
  r.replicatedConsts = replicateConstants(replicated, partition, nextFresh);
  Function clusteredFn;
  clusteredFn.name = fn.name + ".clustered";
  clusteredFn.arrays = fn.arrays;
  clusteredFn.blocks.resize(replicated.blocks.size());
  for (int b = 0; b < replicated.numBlocks(); ++b) {
    const BasicBlock& bb = replicated.blocks[b];
    const ClusteredBlock cl =
        insertBlockCopies(bb.ops, partition, machine, nextFresh);
    r.copies += cl.copies;
    clusteredFn.blocks[b].ops = cl.ops;
    clusteredFn.blocks[b].succs = bb.succs;
    clusteredFn.blocks[b].nestingDepth = bb.nestingDepth;
  }

  // ---- 5: whole-function Chaitin/Briggs per bank, with spill code. ----
  if (options.allocateRegisters) {
    const FunctionAllocResult alloc =
        allocateFunction(clusteredFn, machine, partition);
    r.allocOk = alloc.success;
    r.spills = alloc.spilledRegs;
    r.spillOps = alloc.spillOpsAdded;
    r.allocRounds = alloc.rounds;
  }

  // ---- Path-equivalence validation of every rewrite. ----
  if (options.validate) {
    for (int selector : {0, 1}) {
      const FunctionEquivalenceReport eq =
          checkFunctionEquivalence(fn, clusteredFn, selector);
      if (!eq.equal) {
        r.error = "validation failed (path " + std::to_string(selector) +
                  "): " + eq.detail;
        return r;
      }
    }
    r.validated = true;
  }

  // ---- Final cluster-constrained schedules (including any spill code). ----
  for (int b = 0; b < clusteredFn.numBlocks(); ++b) {
    const BasicBlock& bb = clusteredFn.blocks[b];
    const Loop pl = pseudoLoop(clusteredFn, bb);
    const Ddg cddg = Ddg::build(pl, machine.lat);
    const std::vector<OpConstraint> cons =
        deriveBlockConstraints(bb.ops, partition, machine);
    const ListSchedule sched = listSchedule(cddg, machine, cons);
    r.clusteredCycles += frequencyOf(bb) * sched.length;
  }

  r.ok = true;
  return r;
}

}  // namespace rapt
