// Whole-function code generation with partitioned register banks.
//
// The paper stresses that, unlike Nystrom & Eichenberger's loop-only method,
// the RCG framework "is easily applicable to entire programs, since we could
// easily use both non-loop and loop code to build our register component
// graph and our greedy method works on a function basis" (§6.3). This
// pipeline realizes that claim:
//
//   1. list-schedule every basic block for the monolithic ideal machine;
//   2. accumulate one function-wide RCG from all blocks (depth-weighted);
//   3. greedily partition the function's registers once;
//   4. insert block-local copies and re-list-schedule each block under
//      cluster constraints;
//   5. colour the whole function's interference graph per bank
//      (Chaitin/Briggs over the CFG liveness).
//
// The degradation metric weights each block's schedule length by an estimated
// execution frequency of 10^depth, the classic static profile.
#pragma once

#include <string>

#include "analysis/Diagnostics.h"
#include "ir/Function.h"
#include "machine/MachineDesc.h"
#include "partition/Rcg.h"

namespace rapt {

struct FunctionResult {
  std::string name;
  bool ok = false;
  std::string error;

  /// Findings of the static semantic gate (empty when the gate is off or the
  /// function is clean). Errors are also reflected in `ok`/`error`.
  std::vector<Diagnostic> diagnostics;

  int numBlocks = 0;
  int numOps = 0;
  int copies = 0;            ///< per-block copies (execute every block visit)
  int replicatedConsts = 0;  ///< one-time constant replications (see .cpp)
  double idealCycles = 0.0;      ///< frequency-weighted
  double clusteredCycles = 0.0;  ///< frequency-weighted
  bool validated = false;        ///< path-equivalence checked vs the original
  bool allocOk = false;          ///< whole-function per-bank colouring
  int spills = 0;                ///< registers spilled to memory
  int spillOps = 0;              ///< reload/store operations inserted
  int allocRounds = 0;           ///< colouring rounds (1 == no spilling)

  [[nodiscard]] double normalizedSize() const {
    return idealCycles == 0.0 ? 100.0 : 100.0 * clusteredCycles / idealCycles;
  }
};

struct FunctionPipelineOptions {
  RcgWeights weights;
  bool allocateRegisters = true;
  bool validate = true;        ///< execute original vs rewritten along CFG paths
  bool staticAnalysis = true;  ///< run the static semantic gate first; error
                               ///< diagnostics refuse the function
};

[[nodiscard]] FunctionResult compileFunction(const Function& fn,
                                             const MachineDesc& machine,
                                             const FunctionPipelineOptions& options = {});

}  // namespace rapt
