// Per-stage observability for one compileLoop run (and, summed, for a whole
// suite). Wall times come from support/StageTimer.h (steady_clock ns);
// counters mirror the control flow of CompilerPipeline.cpp. Traces are pure
// observation — two runs of the same loop produce identical *results* and
// counters whatever the times say, which is what lets the parallel suite
// runner stay bit-identical to the serial one.
//
// The JSON rendering of this struct (docs/metrics.md) is the unit every
// BENCH_*.json aggregates, so field names here and keys there match 1:1.
#pragma once

#include <cstdint>

namespace rapt {

struct PipelineTrace {
  // ---- wall time per stage, nanoseconds (accumulated across retries) ----
  std::int64_t analysisNs = 0;       ///< static semantic gate (src/analysis)
  std::int64_t idealScheduleNs = 0;  ///< step 2: monolithic modulo schedule
  std::int64_t rcgBuildNs = 0;       ///< step 3a: RCG construction (greedy only)
  std::int64_t partitionNs = 0;      ///< step 3b: partitioner + refinement
  std::int64_t copyInsertNs = 0;     ///< step 4a: cross-bank copy insertion
  std::int64_t rescheduleNs = 0;     ///< step 4b: cluster-constrained scheduling
  std::int64_t regallocNs = 0;       ///< step 5: per-bank Chaitin/Briggs
  std::int64_t emitNs = 0;           ///< pipelined-code emission (MVE)
  std::int64_t verifyNs = 0;         ///< independent schedule/partition oracles
  std::int64_t certifyNs = 0;        ///< static translation certifier (src/certify)
  std::int64_t simulateNs = 0;       ///< simulation + equivalence checking
  std::int64_t totalNs = 0;          ///< whole compileLoop call

  // ---- counters ----
  std::int64_t idealCycles = 0;         ///< ideal-schedule kernel cycles (II)
  int rescheduleAttempts = 0;           ///< clustered schedule attempts
  int iiEscalations = 0;                ///< II bumps after failed allocation
  int spillRetries = 0;                 ///< spills seen at first allocation try
  std::int64_t simulatedCycles = 0;     ///< cycles executed by the validator
  std::int64_t verifiedOps = 0;         ///< emitted ops checked by the oracles
  int verifyViolations = 0;             ///< violations found (0 on a healthy run)
  std::int64_t certifiedValues = 0;     ///< register finals + arrays proven
                                        ///< value-equal across all layers
  int certifyViolations = 0;            ///< certifier errors (0 on a healthy run)
  int diagErrors = 0;                   ///< static-gate errors (compile refused)
  int diagWarnings = 0;                 ///< static-gate warnings (advisory)
  std::int64_t schedPlacements = 0;     ///< scheduler placement steps, all
                                        ///< attempts — the deterministic work
                                        ///< measure the Timeout budget counts
  int recoverySteps = 0;                ///< degradation-ladder actions taken:
                                        ///< partitioner fallbacks + alloc II
                                        ///< bumps (docs/robustness.md)
  int fallbackUsed = 0;                 ///< 1 when a fallback partitioner
                                        ///< produced the final result
  int faultsInjected = 0;               ///< faults actually applied by the
                                        ///< injector (0 without a campaign)

  /// Element-wise accumulation (suite aggregation).
  PipelineTrace& operator+=(const PipelineTrace& o) {
    analysisNs += o.analysisNs;
    idealScheduleNs += o.idealScheduleNs;
    rcgBuildNs += o.rcgBuildNs;
    partitionNs += o.partitionNs;
    copyInsertNs += o.copyInsertNs;
    rescheduleNs += o.rescheduleNs;
    regallocNs += o.regallocNs;
    emitNs += o.emitNs;
    verifyNs += o.verifyNs;
    certifyNs += o.certifyNs;
    simulateNs += o.simulateNs;
    totalNs += o.totalNs;
    idealCycles += o.idealCycles;
    rescheduleAttempts += o.rescheduleAttempts;
    iiEscalations += o.iiEscalations;
    spillRetries += o.spillRetries;
    simulatedCycles += o.simulatedCycles;
    verifiedOps += o.verifiedOps;
    verifyViolations += o.verifyViolations;
    certifiedValues += o.certifiedValues;
    certifyViolations += o.certifyViolations;
    diagErrors += o.diagErrors;
    diagWarnings += o.diagWarnings;
    schedPlacements += o.schedPlacements;
    recoverySteps += o.recoverySteps;
    fallbackUsed += o.fallbackUsed;
    faultsInjected += o.faultsInjected;
    return *this;
  }
};

}  // namespace rapt
