#include "pipeline/Suite.h"

namespace rapt {

SuiteResult runSuite(std::span<const Loop> corpus, const MachineDesc& machine,
                     const PipelineOptions& options) {
  SuiteResult out;
  std::vector<double> idealIpc, clusteredIpc, normalized;
  for (const Loop& loop : corpus) {
    LoopResult r = compileLoop(loop, machine, options);
    if (r.ok) {
      idealIpc.push_back(r.idealIpc());
      clusteredIpc.push_back(r.clusteredIpc(machine));
      normalized.push_back(r.normalizedSize());
      out.histogram.add(r.degradationPercent());
      out.totalBodyCopies += r.bodyCopies;
      if (r.validated) ++out.validatedCount;
    } else {
      ++out.failures;
    }
    out.loops.push_back(std::move(r));
  }
  if (!normalized.empty()) {
    out.meanIdealIpc = arithmeticMean(idealIpc);
    out.meanClusteredIpc = arithmeticMean(clusteredIpc);
    out.arithMeanNormalized = arithmeticMean(normalized);
    out.harmMeanNormalized = harmonicMean(normalized);
  }
  return out;
}

}  // namespace rapt
