#include "pipeline/Suite.h"

#include <algorithm>

#include "support/StageTimer.h"
#include "support/ThreadPool.h"

namespace rapt {

SuiteResult runSuite(std::span<const Loop> corpus, const MachineDesc& machine,
                     const PipelineOptions& options) {
  StageTimer wall;
  SuiteResult out;
  const int n = static_cast<int>(corpus.size());
  out.loops.resize(corpus.size());

  // Compile phase: loops land in their own slots, in any completion order.
  int threads = options.threads == 0 ? ThreadPool::hardwareThreads() : options.threads;
  threads = std::clamp(threads, 1, std::max(1, n));
  out.threadsUsed = threads;
  // compileLoop contains exceptions itself; this belt catches anything that
  // still escapes (e.g. a throw from LoopResult's own move machinery) so one
  // loop can never tear down the pool — it lands as InternalError instead.
  parallelFor(n, threads, [&](int i) {
    const Loop& loop = corpus[static_cast<std::size_t>(i)];
    LoopResult& slot = out.loops[static_cast<std::size_t>(i)];
    try {
      slot = compileLoop(loop, machine, options);
    } catch (const std::exception& e) {
      slot = LoopResult{};
      slot.loopName = loop.name;
      slot.numOps = loop.size();
      slot.failureClass = FailureClass::InternalError;
      slot.error = std::string("uncaught exception escaped compileLoop: ") + e.what();
    } catch (...) {
      slot = LoopResult{};
      slot.loopName = loop.name;
      slot.numOps = loop.size();
      slot.failureClass = FailureClass::InternalError;
      slot.error = "uncaught non-standard exception escaped compileLoop";
    }
  });

  // Reduction phase: serial, in corpus order, over the completed vector.
  // This is the only place failures/validatedCount/aggregates are touched, so
  // they cannot race and cannot depend on thread scheduling.
  std::vector<double> idealIpc, clusteredIpc, normalized;
  for (const LoopResult& r : out.loops) {
    if (r.ok) {
      idealIpc.push_back(r.idealIpc());
      clusteredIpc.push_back(r.clusteredIpc(machine));
      normalized.push_back(r.normalizedSize());
      out.histogram.add(r.degradationPercent());
      out.totalBodyCopies += r.bodyCopies;
      if (r.validated) ++out.validatedCount;
    } else {
      ++out.failures;
    }
    ++out.failuresByClass[static_cast<std::size_t>(r.failureClass)];
    out.trace += r.trace;
  }
  if (!normalized.empty()) {
    out.meanIdealIpc = arithmeticMean(idealIpc);
    out.meanClusteredIpc = arithmeticMean(clusteredIpc);
    out.arithMeanNormalized = arithmeticMean(normalized);
    out.harmMeanNormalized = harmonicMean(normalized);
  }
  out.suiteWallNs = wall.elapsedNs();
  return out;
}

}  // namespace rapt
