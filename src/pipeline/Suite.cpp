#include "pipeline/Suite.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/WorkerProtocol.h"
#include "support/Interrupt.h"
#include "support/Journal.h"
#include "support/StageTimer.h"
#include "support/Subprocess.h"
#include "support/ThreadPool.h"

namespace rapt {
namespace {

// ---- worker resolution ----------------------------------------------------

/// "<directory of this executable>/<name>", or "" when /proc is unhelpful.
std::string siblingPath(const char* name) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  const std::string exe(buf);
  const std::size_t slash = exe.rfind('/');
  if (slash == std::string::npos) return {};
  return exe.substr(0, slash + 1) + name;
}

/// Resolution chain: explicit option, $RAPT_WORKER, a sibling of the running
/// binary (tests and tools installed side by side), the tools/ directory of
/// a build tree (tests run from build/tests/), then bare PATH lookup.
std::string resolveWorkerPath(const PipelineOptions& options) {
  if (!options.workerPath.empty()) return options.workerPath;
  if (const char* env = std::getenv("RAPT_WORKER"); env != nullptr && *env != '\0')
    return env;
  for (const char* relative : {"rapt-worker", "../tools/rapt-worker"}) {
    const std::string candidate = siblingPath(relative);
    if (!candidate.empty() && ::access(candidate.c_str(), X_OK) == 0)
      return candidate;
  }
  return "rapt-worker";
}

/// Keeps sanitizer runtimes in the worker from intercepting exactly the
/// deaths the supervisor classifies: handle_segv/handle_abort off so an
/// injected SIGSEGV/SIGABRT stays a real signal, allocator_may_return_null
/// so a memory cap surfaces through the worker's new_handler (exit
/// kWorkerOomExit) instead of a sanitizer abort. Harmless without sanitizers.
std::vector<std::string> workerEnv() {
  return {
      "ASAN_OPTIONS=detect_leaks=0:handle_segv=0:handle_abort=0:"
      "handle_sigbus=0:handle_sigfpe=0:allocator_may_return_null=1:"
      "abort_on_error=0",
      "UBSAN_OPTIONS=handle_segv=0:handle_abort=0",
  };
}

const char* fatalSignalName(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGXCPU: return "SIGXCPU";
    default: return "signal";
  }
}

/// A classified failure row with the identity fields compileLoop would have
/// filled. Crash and InternalError rows carry the worker's stderr tail —
/// the first artifact anyone debugging a contained crash needs.
LoopResult supervisorRow(const Loop& loop, const PipelineOptions& options,
                         FailureClass cls, std::string error,
                         const SubprocessResult* sub) {
  LoopResult r;
  r.loopName = loop.name;
  r.numOps = loop.size();
  r.partitionerUsed = options.partitioner;
  r.ok = false;
  r.failureClass = cls;
  r.error = std::move(error);
  if (sub != nullptr && !sub->err.empty() &&
      (cls == FailureClass::Crash || cls == FailureClass::InternalError)) {
    r.workerStderr = sub->err;
  }
  return r;
}

}  // namespace

LoopResult compileLoopInSubprocess(const Loop& loop, const MachineDesc& machine,
                                   const PipelineOptions& options,
                                   bool* retriedSpawn) {
  SubprocessSpec spec;
  spec.argv = {resolveWorkerPath(options)};
  spec.stdinData = encodeWorkerJob(loop, machine, options).dumpCompact() + "\n";
  spec.limits.addressSpaceBytes = options.workerMemoryBytes;
  spec.limits.wallTimeoutMs = options.workerTimeoutMs;
  if (options.workerTimeoutMs > 0) {
    // RLIMIT_CPU backs up the watchdog: one second of slack above the wall
    // deadline, so it only ever fires if the supervisor itself is wedged.
    spec.limits.cpuSeconds =
        static_cast<int>((options.workerTimeoutMs + 999) / 1000 + 1);
  }
  spec.extraEnv = workerEnv();

  for (int attempt = 0;; ++attempt) {
    const SubprocessResult sub = runSubprocess(spec);
    std::string transientError;

    if (sub.spawnFailed) {
      transientError = "worker spawn failed: " + sub.spawnError;
    } else if (sub.timedOut) {
      return supervisorRow(loop, options, FailureClass::HardTimeout,
                           "worker exceeded the " +
                               std::to_string(options.workerTimeoutMs) +
                               "ms wall watchdog and was killed",
                           &sub);
    } else if (sub.signal == SIGXCPU) {
      return supervisorRow(loop, options, FailureClass::HardTimeout,
                           "worker hit its RLIMIT_CPU cap (SIGXCPU)", &sub);
    } else if (sub.signal == SIGKILL) {
      // Not our watchdog (that sets timedOut) — the kernel's OOM killer is
      // the one other SIGKILL source under supervision.
      return supervisorRow(loop, options, FailureClass::OutOfMemory,
                           "worker was killed (SIGKILL outside the watchdog; "
                           "kernel out-of-memory)",
                           &sub);
    } else if (sub.signal != 0) {
      return supervisorRow(loop, options, FailureClass::Crash,
                           std::string("worker died on ") +
                               fatalSignalName(sub.signal) + " (signal " +
                               std::to_string(sub.signal) + ")",
                           &sub);
    } else if (sub.exitCode == kWorkerOomExit) {
      return supervisorRow(loop, options, FailureClass::OutOfMemory,
                           "worker exhausted its memory cap (RLIMIT_AS)", &sub);
    } else if (sub.exitCode != 0) {
      // A deterministic worker-side refusal (bad job decode, bad loop):
      // retrying would reproduce it, so classify immediately.
      return supervisorRow(loop, options, FailureClass::InternalError,
                           "worker exited with status " +
                               std::to_string(sub.exitCode),
                           &sub);
    } else {
      Json doc;
      std::string error;
      LoopResult r;
      if (Json::parse(sub.out, doc, error) && decodeLoopResult(doc, r, error)) {
        if (r.loopName == loop.name) return r;
        error = "result names loop '" + r.loopName + "'";
      }
      // A clean exit with an undecodable (or mismatched) reply is a
      // transport hiccup as far as we can tell — worth the one retry.
      transientError = "worker replied with an undecodable result: " + error;
    }

    if (attempt == 0) {
      if (retriedSpawn != nullptr) *retriedSpawn = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    return supervisorRow(loop, options, FailureClass::InternalError,
                         transientError + " (after retry)", &sub);
  }
}

SuiteReducer::SuiteReducer(const MachineDesc& machine, bool keepRows)
    : machine_(machine), keepRows_(keepRows) {}

void SuiteReducer::add(LoopResult row) {
  ++rowsAdded_;
  if (row.ok) {
    idealIpc_.push_back(row.idealIpc());
    clusteredIpc_.push_back(row.clusteredIpc(machine_));
    normalized_.push_back(row.normalizedSize());
    out_.histogram.add(row.degradationPercent());
    out_.totalBodyCopies += row.bodyCopies;
    if (row.validated) ++out_.validatedCount;
    if (row.certified) ++out_.certifiedCount;
  } else {
    ++out_.failures;
  }
  ++out_.failuresByClass[static_cast<std::size_t>(row.failureClass)];
  out_.trace += row.trace;
  if (keepRows_) out_.loops.push_back(std::move(row));
}

SuiteResult SuiteReducer::finish() {
  if (!normalized_.empty()) {
    out_.meanIdealIpc = arithmeticMean(idealIpc_);
    out_.meanClusteredIpc = arithmeticMean(clusteredIpc_);
    out_.arithMeanNormalized = arithmeticMean(normalized_);
    out_.harmMeanNormalized = harmonicMean(normalized_);
  }
  return std::move(out_);
}

SuiteResult runSuite(std::span<const Loop> corpus, const MachineDesc& machine,
                     const PipelineOptions& options) {
  StreamingCorpus streaming;
  streaming.count = static_cast<int>(corpus.size());
  streaming.materialize = [corpus](int i) {
    return corpus[static_cast<std::size_t>(i)];
  };
  return runSuiteStreamed(streaming, machine, options);
}

SuiteResult runSuiteStreamed(const StreamingCorpus& corpus,
                             const MachineDesc& machine,
                             const PipelineOptions& options) {
  StageTimer wall;
  const int n = corpus.count;
  std::vector<LoopResult> rows(static_cast<std::size_t>(n));
  int resumedRows = 0;
  int quarantinedRows = 0;

  // done[i] is written by exactly one pool worker (or the resume pass below)
  // and read only after parallelFor joins, so plain bytes suffice.
  std::vector<unsigned char> done(static_cast<std::size_t>(n), 0);

  // ---- journal: resume, then open for appending ----
  JournalWriter journal;
  bool journaling = false;
  if (!options.journalPath.empty()) {
    const std::string configHash = hashToHex(suiteConfigHash(machine, options));
    bool resumed = false;
    if (options.resume) {
      const JournalContents prior = loadJournal(options.journalPath);
      const Json* hash = prior.valid ? prior.header.find("configHash") : nullptr;
      const Json* loops = prior.valid ? prior.header.find("corpusLoops") : nullptr;
      if (hash != nullptr && hash->isString() && hash->asString() == configHash &&
          loops != nullptr && loops->isInt() && loops->asInt() == n) {
        for (const Json& row : prior.rows) {
          const Json* kind = row.find("kind");
          const Json* index = row.find("index");
          const Json* loopHash = row.find("loopHash");
          const Json* result = row.find("result");
          if (kind == nullptr || !kind->isString() || kind->asString() != "row")
            continue;
          if (index == nullptr || !index->isInt() || loopHash == nullptr ||
              !loopHash->isString() || result == nullptr || !result->isObject())
            continue;
          const std::int64_t i = index->asInt();
          if (i < 0 || i >= n || done[static_cast<std::size_t>(i)] != 0) continue;
          // The row must describe THIS corpus entry, not a stale one.
          if (loopHash->asString() !=
              hashToHex(loopTextHash(corpus.materialize(static_cast<int>(i)))))
            continue;
          LoopResult r;
          std::string error;
          if (!decodeLoopResult(*result, r, error)) continue;
          rows[static_cast<std::size_t>(i)] = std::move(r);
          done[static_cast<std::size_t>(i)] = 1;
          ++resumedRows;
        }
        resumed = true;
        // Damaged lines were quarantined by the loader; the rows they held
        // stay un-done and recompile below — reported here, never trusted.
        quarantinedRows = prior.quarantinedLines + prior.tornTailLines;
      }
    }
    if (resumed) {
      journaling = journal.openAppend(options.journalPath);
    } else {
      Json header = Json::object();
      header["configHash"] = configHash;
      header["corpusLoops"] = n;
      header["machine"] = machine.name;
      header["isolation"] = suiteIsolationName(options.isolation);
      journaling = journal.create(options.journalPath, std::move(header));
    }
  }

  // ---- compile phase: loops land in their own slots, any completion order.
  int threads = options.threads == 0 ? ThreadPool::hardwareThreads() : options.threads;
  threads = std::clamp(threads, 1, std::max(1, n));
  std::atomic<int> spawnRetries{0};
  parallelFor(n, threads, [&](int i) {
    const auto slotIndex = static_cast<std::size_t>(i);
    if (done[slotIndex] != 0) return;  // replayed from the journal
    // Interrupt wind-down: rows already in flight finish; everything not yet
    // started stays un-done and is dropped (never fabricated) below.
    if (interruptRequested()) return;
    const Loop loop = corpus.materialize(i);
    LoopResult& slot = rows[slotIndex];
    if (options.isolation == SuiteIsolation::Subprocess) {
      bool retried = false;
      slot = compileLoopInSubprocess(loop, machine, options, &retried);
      if (retried) spawnRetries.fetch_add(1, std::memory_order_relaxed);
    } else {
      // compileLoop contains exceptions itself; this belt catches anything
      // that still escapes (e.g. a throw from LoopResult's own move
      // machinery) so one loop can never tear down the pool.
      try {
        slot = compileLoop(loop, machine, options);
      } catch (const std::exception& e) {
        slot = LoopResult{};
        slot.loopName = loop.name;
        slot.numOps = loop.size();
        slot.failureClass = FailureClass::InternalError;
        slot.error = std::string("uncaught exception escaped compileLoop: ") + e.what();
      } catch (...) {
        slot = LoopResult{};
        slot.loopName = loop.name;
        slot.numOps = loop.size();
        slot.failureClass = FailureClass::InternalError;
        slot.error = "uncaught non-standard exception escaped compileLoop";
      }
    }
    done[slotIndex] = 1;
    if (journaling) {
      Json row = Json::object();
      row["kind"] = "row";
      row["index"] = i;
      row["loop"] = loop.name;
      row["loopHash"] = hashToHex(loopTextHash(loop));
      row["result"] = encodeLoopResult(slot);
      journal.append(row);  // fsync'd: durable before the suite moves on
    }
  });
  journal.close();

  // Reduction phase: serial, in corpus order, over the completed rows — the
  // one place failures/validatedCount/aggregates are touched, so they cannot
  // race and cannot depend on thread scheduling. An interrupted run reduces
  // (and keeps) only the rows that finished, still in corpus order.
  SuiteReducer reducer(machine);
  bool interrupted = false;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (done[i] != 0)
      reducer.add(std::move(rows[i]));
    else
      interrupted = true;
  }
  SuiteResult out = reducer.finish();
  out.plannedLoops = n;
  out.isolationUsed = options.isolation;
  out.interrupted = interrupted;
  out.resumedRows = resumedRows;
  out.quarantinedRows = quarantinedRows;
  out.spawnRetries = spawnRetries.load();
  out.threadsUsed = threads;
  out.suiteWallNs = wall.elapsedNs();
  return out;
}

}  // namespace rapt
