// Batch compilation over a loop corpus with the aggregations the paper
// reports: mean IPC (Table 1), arithmetic/harmonic mean normalized kernel
// size (Table 2), and the degradation histogram (Figures 5-7).
//
// The runner is parallel: corpus loops are independent (each compileLoop call
// owns all its state, including any seeded RNG), so they are farmed out to a
// support/ThreadPool with results landing in a pre-sized vector by loop
// index. Every aggregate — including `failures` and `validatedCount` — is
// then computed in a serial post-pass over that vector in corpus order, so
// the SuiteResult is bit-identical for any thread count (no atomics, no
// reduction-order dependence; tests/pipeline/SuiteDeterminismTest.cpp holds
// this invariant). Only the trace wall times and `suiteWallNs` vary between
// runs; they are observability, never inputs.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pipeline/CompilerPipeline.h"
#include "support/Stats.h"

namespace rapt {

struct SuiteResult {
  std::vector<LoopResult> loops;     ///< one per corpus loop, in order
  int failures = 0;                  ///< loops with ok == false
  /// Loop count per FailureClass, indexed by the enum value; the None bucket
  /// holds the successful loops, so the array always sums to loops.size()
  /// (docs/robustness.md, docs/metrics.md).
  std::array<int, kNumFailureClasses> failuresByClass{};

  // Aggregates over successful loops:
  double meanIdealIpc = 0.0;
  double meanClusteredIpc = 0.0;
  double arithMeanNormalized = 0.0;  ///< Table 2 row 1 (ideal == 100)
  double harmMeanNormalized = 0.0;   ///< Table 2 row 2
  DegradationHistogram histogram;    ///< Figures 5-7 buckets
  int totalBodyCopies = 0;
  int validatedCount = 0;
  int certifiedCount = 0;  ///< successful loops the static certifier proved

  // Observability (docs/metrics.md): per-stage times/counters summed over
  // all loops, suite wall time, and the worker count actually used.
  PipelineTrace trace;
  std::int64_t suiteWallNs = 0;
  int threadsUsed = 1;

  // Supervision (docs/robustness.md). On an interrupted run `loops` holds
  // only the rows that finished (still in corpus order) and aggregates cover
  // exactly those rows — nothing is fabricated for the missing tail.
  SuiteIsolation isolationUsed = SuiteIsolation::InProcess;
  bool interrupted = false;   ///< SIGINT/SIGTERM wind-down cut the run short
  int plannedLoops = 0;       ///< corpus size requested (== loops.size()
                              ///< unless interrupted)
  int resumedRows = 0;        ///< rows replayed from the journal, not compiled
  int spawnRetries = 0;       ///< transient worker spawn failures retried
  /// Journal lines the resume loader quarantined (CRC mismatch: torn, flipped
  /// or truncated records) plus the torn tail. Those rows are RECOMPILED, not
  /// trusted, so aggregates stay bit-identical to an undamaged run.
  int quarantinedRows = 0;
};

/// Incremental form of runSuite's serial reduction, extracted so every
/// consumer of journaled rows — runSuite itself, the shard-journal merge
/// (src/shard), CorpusLoader's parse-failure fold — aggregates through ONE
/// code path and therefore bit-identically. Rows MUST be fed in corpus
/// order; the summation order of the mean vectors is part of the
/// bit-identity contract. With `keepRows == false` the rows are dropped
/// after folding (O(1) memory per row; the 100k+-manifest merge case) and
/// finish().loops stays empty.
class SuiteReducer {
 public:
  explicit SuiteReducer(const MachineDesc& machine, bool keepRows = true);

  void add(LoopResult row);

  /// The aggregates over everything added so far. Supervision and
  /// observability fields (plannedLoops, threadsUsed, suiteWallNs, ...) are
  /// the caller's to fill — the reducer only knows about rows. The reducer
  /// is spent afterwards.
  [[nodiscard]] SuiteResult finish();

  [[nodiscard]] int rowsAdded() const { return rowsAdded_; }

 private:
  MachineDesc machine_;
  bool keepRows_;
  int rowsAdded_ = 0;
  SuiteResult out_;
  std::vector<double> idealIpc_, clusteredIpc_, normalized_;
};

/// A corpus that is never materialized: `count` rows, row i regenerated on
/// demand by `materialize`, which must be a pure function of i
/// (workload/CorpusManifest.h is the canonical source). This is the 100k+-
/// loop streaming path of ROADMAP item 5 — no std::vector<Loop> ever holds
/// the corpus.
struct StreamingCorpus {
  int count = 0;
  std::function<Loop(int)> materialize;
};

/// Compiles every loop of `corpus` for `machine`. `options.threads` picks the
/// worker count (0 = hardware concurrency, 1 = serial on the calling thread);
/// the result is bit-identical for every value.
[[nodiscard]] SuiteResult runSuite(std::span<const Loop> corpus,
                                   const MachineDesc& machine,
                                   const PipelineOptions& options = {});

/// runSuite over a streaming corpus: identical semantics (journaling, resume,
/// interrupt wind-down, bit-identical aggregation) without ever holding the
/// loops. runSuite(span) is a thin wrapper over this.
[[nodiscard]] SuiteResult runSuiteStreamed(const StreamingCorpus& corpus,
                                           const MachineDesc& machine,
                                           const PipelineOptions& options = {});

/// One compileLoop in a supervised tools/rapt-worker child under the
/// options' rlimits and watchdog (docs/robustness.md). Fatal outcomes come
/// back as classified rows: a signal death is Crash, the memory cap is
/// OutOfMemory, the watchdog or CPU cap is HardTimeout; one transient spawn
/// failure is retried before an InternalError row (with the worker's stderr
/// tail attached). `retriedSpawn`, when non-null, is set if the retry path
/// fired. Exposed for tests and tools; runSuite calls this per loop when
/// options.isolation == Subprocess.
[[nodiscard]] LoopResult compileLoopInSubprocess(const Loop& loop,
                                                 const MachineDesc& machine,
                                                 const PipelineOptions& options,
                                                 bool* retriedSpawn = nullptr);

}  // namespace rapt
