// Batch compilation over a loop corpus with the aggregations the paper
// reports: mean IPC (Table 1), arithmetic/harmonic mean normalized kernel
// size (Table 2), and the degradation histogram (Figures 5-7).
#pragma once

#include <span>
#include <vector>

#include "pipeline/CompilerPipeline.h"
#include "support/Stats.h"

namespace rapt {

struct SuiteResult {
  std::vector<LoopResult> loops;     ///< one per corpus loop, in order
  int failures = 0;                  ///< loops with ok == false

  // Aggregates over successful loops:
  double meanIdealIpc = 0.0;
  double meanClusteredIpc = 0.0;
  double arithMeanNormalized = 0.0;  ///< Table 2 row 1 (ideal == 100)
  double harmMeanNormalized = 0.0;   ///< Table 2 row 2
  DegradationHistogram histogram;    ///< Figures 5-7 buckets
  int totalBodyCopies = 0;
  int validatedCount = 0;
};

[[nodiscard]] SuiteResult runSuite(std::span<const Loop> corpus,
                                   const MachineDesc& machine,
                                   const PipelineOptions& options = {});

}  // namespace rapt
