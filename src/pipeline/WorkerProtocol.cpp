#include "pipeline/WorkerProtocol.h"

#include <cstdio>
#include <cstdlib>

#include "ir/Parser.h"
#include "ir/Printer.h"

namespace rapt {
namespace {

// ---- strict field readers -------------------------------------------------
// Decoding is deliberately unforgiving: a missing or mistyped field means the
// two sides disagree about the protocol, and silently defaulting would turn
// that into a wrong aggregate instead of a loud InternalError.

class Reader {
 public:
  Reader(const Json& doc, std::string& error) : doc_(doc), error_(error) {}

  [[nodiscard]] bool failed() const { return failed_; }

  const Json* get(const char* key, Json::Kind kind) {
    if (failed_) return nullptr;
    const Json* f = doc_.find(key);
    if (f == nullptr) return fail(key, "missing");
    if (kind == Json::Kind::Double) {
      if (!f->isNumber()) return fail(key, "not a number");
    } else if (f->kind() != kind) {
      return fail(key, "wrong kind");
    }
    return f;
  }

  bool i64(const char* key, std::int64_t& out) {
    const Json* f = get(key, Json::Kind::Int);
    if (f != nullptr) out = f->asInt();
    return f != nullptr;
  }
  bool i(const char* key, int& out) {
    std::int64_t wide = 0;
    if (!i64(key, wide)) return false;
    out = static_cast<int>(wide);
    if (out != wide) return fail(key, "out of int range") != nullptr;
    return true;
  }
  bool b(const char* key, bool& out) {
    const Json* f = get(key, Json::Kind::Bool);
    if (f != nullptr) out = f->asBool();
    return f != nullptr;
  }
  bool d(const char* key, double& out) {
    const Json* f = get(key, Json::Kind::Double);
    if (f != nullptr) out = f->asDouble();
    return f != nullptr;
  }
  bool s(const char* key, std::string& out) {
    const Json* f = get(key, Json::Kind::String);
    if (f != nullptr) out = f->asString();
    return f != nullptr;
  }
  bool u64hex(const char* key, std::uint64_t& out) {
    std::string text;
    if (!s(key, text)) return false;
    char* end = nullptr;
    out = std::strtoull(text.c_str(), &end, 16);
    if (end == nullptr || *end != '\0' || text.empty())
      return fail(key, "not a hex hash") != nullptr;
    return true;
  }
  const Json* obj(const char* key) { return get(key, Json::Kind::Object); }
  const Json* arr(const char* key) { return get(key, Json::Kind::Array); }

  const Json* fail(const char* key, const char* what) {
    if (!failed_) error_ = std::string("field '") + key + "': " + what;
    failed_ = true;
    return nullptr;
  }

 private:
  const Json& doc_;
  std::string& error_;
  bool failed_ = false;
};

template <typename Enum>
bool decodeEnum(Reader& r, const char* key, Enum& out, int numValues) {
  int raw = 0;
  if (!r.i(key, raw)) return false;
  if (raw < 0 || raw >= numValues) return r.fail(key, "enum out of range") != nullptr;
  out = static_cast<Enum>(raw);
  return true;
}

// ---- machine --------------------------------------------------------------

Json encodeMachine(const MachineDesc& m) {
  Json j = Json::object();
  j["name"] = m.name;
  j["numClusters"] = m.numClusters;
  j["fusPerCluster"] = m.fusPerCluster;
  j["intRegsPerBank"] = m.intRegsPerBank;
  j["fltRegsPerBank"] = m.fltRegsPerBank;
  j["copyModel"] = static_cast<int>(m.copyModel);
  j["busCount"] = m.busCount;
  j["copyPortsPerBank"] = m.copyPortsPerBank;
  Json lat = Json::object();
  lat["intAlu"] = m.lat.intAlu;
  lat["intMul"] = m.lat.intMul;
  lat["intDiv"] = m.lat.intDiv;
  lat["load"] = m.lat.load;
  lat["store"] = m.lat.store;
  lat["fltOther"] = m.lat.fltOther;
  lat["fltMul"] = m.lat.fltMul;
  lat["fltDiv"] = m.lat.fltDiv;
  lat["intCopy"] = m.lat.intCopy;
  lat["fltCopy"] = m.lat.fltCopy;
  j["lat"] = std::move(lat);
  return j;
}

bool decodeMachine(const Json& doc, MachineDesc& m, std::string& error) {
  Reader r(doc, error);
  r.s("name", m.name);
  r.i("numClusters", m.numClusters);
  r.i("fusPerCluster", m.fusPerCluster);
  r.i("intRegsPerBank", m.intRegsPerBank);
  r.i("fltRegsPerBank", m.fltRegsPerBank);
  decodeEnum(r, "copyModel", m.copyModel, 2);
  r.i("busCount", m.busCount);
  r.i("copyPortsPerBank", m.copyPortsPerBank);
  if (const Json* lat = r.obj("lat")) {
    Reader lr(*lat, error);
    lr.i("intAlu", m.lat.intAlu);
    lr.i("intMul", m.lat.intMul);
    lr.i("intDiv", m.lat.intDiv);
    lr.i("load", m.lat.load);
    lr.i("store", m.lat.store);
    lr.i("fltOther", m.lat.fltOther);
    lr.i("fltMul", m.lat.fltMul);
    lr.i("fltDiv", m.lat.fltDiv);
    lr.i("intCopy", m.lat.intCopy);
    lr.i("fltCopy", m.lat.fltCopy);
    if (lr.failed()) return false;
  }
  return !r.failed();
}

// ---- options --------------------------------------------------------------
// Everything that can change a RESULT crosses the wire (and enters the
// config hash). The suite-level knobs — threads, isolation, worker limits,
// journaling — do not: a worker compiles one loop on one thread regardless,
// and resume must work across thread counts and isolation modes.

Json encodeOptions(const PipelineOptions& o) {
  Json j = Json::object();
  Json w = Json::object();
  w["critBonus"] = o.weights.critBonus;
  w["base"] = o.weights.base;
  w["depthBase"] = o.weights.depthBase;
  w["sep"] = o.weights.sep;
  w["balance"] = o.weights.balance;
  j["weights"] = std::move(w);
  j["partitioner"] = static_cast<int>(o.partitioner);
  j["randomSeed"] = hashToHex(o.randomSeed);
  j["simTrip"] = o.simTrip;
  j["simulate"] = o.simulate;
  j["verify"] = o.verify;
  j["certify"] = o.certify;
  j["staticAnalysis"] = o.staticAnalysis;
  j["allocateRegisters"] = o.allocateRegisters;
  j["maxAllocRetries"] = o.maxAllocRetries;
  j["refinePasses"] = o.refinePasses;
  j["compactLifetimes"] = o.compactLifetimes;
  j["partitionerFallback"] = o.partitionerFallback;
  j["workBudget"] = o.workBudget;
  j["deadlineNs"] = o.deadlineNs;
  Json f = Json::object();
  f["seed"] = hashToHex(o.fault.seed);
  f["ratePercent"] = o.fault.ratePercent;
  f["processFaults"] = o.fault.processFaults;
  j["fault"] = std::move(f);
  Json s = Json::object();
  s["maxII"] = o.sched.maxII;
  s["budgetRatio"] = o.sched.budgetRatio;
  s["startII"] = o.sched.startII;
  s["maxPlacements"] = o.sched.maxPlacements;
  j["sched"] = std::move(s);
  return j;
}

bool decodeOptions(const Json& doc, PipelineOptions& o, std::string& error) {
  Reader r(doc, error);
  if (const Json* w = r.obj("weights")) {
    Reader wr(*w, error);
    wr.d("critBonus", o.weights.critBonus);
    wr.d("base", o.weights.base);
    wr.d("depthBase", o.weights.depthBase);
    wr.d("sep", o.weights.sep);
    wr.d("balance", o.weights.balance);
    if (wr.failed()) return false;
  }
  decodeEnum(r, "partitioner", o.partitioner, 5);
  r.u64hex("randomSeed", o.randomSeed);
  r.i64("simTrip", o.simTrip);
  r.b("simulate", o.simulate);
  r.b("verify", o.verify);
  r.b("certify", o.certify);
  r.b("staticAnalysis", o.staticAnalysis);
  r.b("allocateRegisters", o.allocateRegisters);
  r.i("maxAllocRetries", o.maxAllocRetries);
  r.i("refinePasses", o.refinePasses);
  r.b("compactLifetimes", o.compactLifetimes);
  r.b("partitionerFallback", o.partitionerFallback);
  r.i64("workBudget", o.workBudget);
  r.i64("deadlineNs", o.deadlineNs);
  if (const Json* f = r.obj("fault")) {
    Reader fr(*f, error);
    fr.u64hex("seed", o.fault.seed);
    fr.i("ratePercent", o.fault.ratePercent);
    fr.b("processFaults", o.fault.processFaults);
    if (fr.failed()) return false;
  }
  if (const Json* s = r.obj("sched")) {
    Reader sr(*s, error);
    sr.i("maxII", o.sched.maxII);
    sr.i("budgetRatio", o.sched.budgetRatio);
    sr.i("startII", o.sched.startII);
    sr.i64("maxPlacements", o.sched.maxPlacements);
    if (sr.failed()) return false;
  }
  return !r.failed();
}

// ---- diagnostics ----------------------------------------------------------

Json encodeDiagnostics(const std::vector<Diagnostic>& diags) {
  Json arr = Json::array();
  for (const Diagnostic& d : diags) {
    Json j = Json::object();
    j["severity"] = static_cast<int>(d.severity);
    j["code"] = static_cast<int>(d.code);
    j["block"] = d.block;
    j["op"] = d.op;
    j["regValid"] = d.reg.isValid();
    j["regClass"] = d.reg.isValid() ? static_cast<int>(d.reg.cls()) : 0;
    j["regIndex"] =
        d.reg.isValid() ? static_cast<std::int64_t>(d.reg.index()) : 0;
    j["message"] = d.message;
    j["hint"] = d.hint;
    arr.push(std::move(j));
  }
  return arr;
}

bool decodeDiagnostics(const Json& arr, std::vector<Diagnostic>& out,
                       std::string& error) {
  out.clear();
  for (std::size_t i = 0; i < arr.size(); ++i) {
    Reader r(arr.at(i), error);
    Diagnostic d;
    decodeEnum(r, "severity", d.severity, 3);
    decodeEnum(r, "code", d.code, kNumDiagCodes);
    r.i("block", d.block);
    r.i("op", d.op);
    bool regValid = false;
    r.b("regValid", regValid);
    int regClass = 0;
    std::int64_t regIndex = 0;
    r.i("regClass", regClass);
    r.i64("regIndex", regIndex);
    r.s("message", d.message);
    r.s("hint", d.hint);
    if (r.failed()) return false;
    if (regValid)
      d.reg = VirtReg(static_cast<RegClass>(regClass),
                      static_cast<std::uint32_t>(regIndex));
    out.push_back(std::move(d));
  }
  return true;
}

// ---- trace ----------------------------------------------------------------

Json encodeTrace(const PipelineTrace& t) {
  Json j = Json::object();
  j["analysisNs"] = t.analysisNs;
  j["idealScheduleNs"] = t.idealScheduleNs;
  j["rcgBuildNs"] = t.rcgBuildNs;
  j["partitionNs"] = t.partitionNs;
  j["copyInsertNs"] = t.copyInsertNs;
  j["rescheduleNs"] = t.rescheduleNs;
  j["regallocNs"] = t.regallocNs;
  j["emitNs"] = t.emitNs;
  j["verifyNs"] = t.verifyNs;
  j["certifyNs"] = t.certifyNs;
  j["simulateNs"] = t.simulateNs;
  j["totalNs"] = t.totalNs;
  j["idealCycles"] = t.idealCycles;
  j["rescheduleAttempts"] = t.rescheduleAttempts;
  j["iiEscalations"] = t.iiEscalations;
  j["spillRetries"] = t.spillRetries;
  j["simulatedCycles"] = t.simulatedCycles;
  j["verifiedOps"] = t.verifiedOps;
  j["verifyViolations"] = t.verifyViolations;
  j["certifiedValues"] = t.certifiedValues;
  j["certifyViolations"] = t.certifyViolations;
  j["diagErrors"] = t.diagErrors;
  j["diagWarnings"] = t.diagWarnings;
  j["schedPlacements"] = t.schedPlacements;
  j["recoverySteps"] = t.recoverySteps;
  j["fallbackUsed"] = t.fallbackUsed;
  j["faultsInjected"] = t.faultsInjected;
  return j;
}

bool decodeTrace(const Json& doc, PipelineTrace& t, std::string& error) {
  Reader r(doc, error);
  r.i64("analysisNs", t.analysisNs);
  r.i64("idealScheduleNs", t.idealScheduleNs);
  r.i64("rcgBuildNs", t.rcgBuildNs);
  r.i64("partitionNs", t.partitionNs);
  r.i64("copyInsertNs", t.copyInsertNs);
  r.i64("rescheduleNs", t.rescheduleNs);
  r.i64("regallocNs", t.regallocNs);
  r.i64("emitNs", t.emitNs);
  r.i64("verifyNs", t.verifyNs);
  r.i64("certifyNs", t.certifyNs);
  r.i64("simulateNs", t.simulateNs);
  r.i64("totalNs", t.totalNs);
  r.i64("idealCycles", t.idealCycles);
  r.i("rescheduleAttempts", t.rescheduleAttempts);
  r.i("iiEscalations", t.iiEscalations);
  r.i("spillRetries", t.spillRetries);
  r.i64("simulatedCycles", t.simulatedCycles);
  r.i64("verifiedOps", t.verifiedOps);
  r.i("verifyViolations", t.verifyViolations);
  r.i64("certifiedValues", t.certifiedValues);
  r.i("certifyViolations", t.certifyViolations);
  r.i("diagErrors", t.diagErrors);
  r.i("diagWarnings", t.diagWarnings);
  r.i64("schedPlacements", t.schedPlacements);
  r.i("recoverySteps", t.recoverySteps);
  r.i("fallbackUsed", t.fallbackUsed);
  r.i("faultsInjected", t.faultsInjected);
  return !r.failed();
}

// FNV-1a over a canonical byte string.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Json encodeWorkerJob(const Loop& loop, const MachineDesc& machine,
                     const PipelineOptions& options) {
  Json j = Json::object();
  j["schema"] = kWorkerProtocolSchema;
  j["kind"] = "job";
  j["loopText"] = printLoop(loop);
  j["machine"] = encodeMachine(machine);
  j["options"] = encodeOptions(options);
  return j;
}

bool decodeWorkerJob(const Json& doc, Loop& loop, MachineDesc& machine,
                     PipelineOptions& options, std::string& error) {
  Reader r(doc, error);
  std::string schema, loopText;
  r.s("schema", schema);
  r.s("loopText", loopText);
  const Json* m = r.obj("machine");
  const Json* o = r.obj("options");
  if (r.failed()) return false;
  if (schema != kWorkerProtocolSchema) {
    error = "job schema mismatch: " + schema;
    return false;
  }
  if (!decodeMachine(*m, machine, error) || !decodeOptions(*o, options, error))
    return false;
  try {
    loop = parseLoop(loopText);
  } catch (const std::exception& e) {
    error = std::string("loop text does not parse: ") + e.what();
    return false;
  }
  return true;
}

Json encodeLoopResult(const LoopResult& r) {
  Json j = Json::object();
  j["schema"] = kWorkerProtocolSchema;
  j["kind"] = "result";
  j["loopName"] = r.loopName;
  j["ok"] = r.ok;
  j["error"] = r.error;
  j["failureClass"] = static_cast<int>(r.failureClass);
  j["partitionerUsed"] = static_cast<int>(r.partitionerUsed);
  j["numOps"] = r.numOps;
  j["idealII"] = r.idealII;
  j["idealRecII"] = r.idealRecII;
  j["idealResII"] = r.idealResII;
  j["clusteredII"] = r.clusteredII;
  j["bodyCopies"] = r.bodyCopies;
  j["preheaderCopies"] = r.preheaderCopies;
  j["stageCount"] = r.stageCount;
  j["maxUnroll"] = r.maxUnroll;
  j["allocOk"] = r.allocOk;
  j["allocRetries"] = r.allocRetries;
  j["spillsAtFirstTry"] = r.spillsAtFirstTry;
  j["refineMoves"] = r.refineMoves;
  j["compactionMoves"] = r.compactionMoves;
  j["validated"] = r.validated;
  j["validatedPhysical"] = r.validatedPhysical;
  j["certified"] = r.certified;
  j["simulatedCycles"] = r.simulatedCycles;
  j["workerStderr"] = r.workerStderr;
  j["diagnostics"] = encodeDiagnostics(r.diagnostics);
  j["trace"] = encodeTrace(r.trace);
  return j;
}

bool decodeLoopResult(const Json& doc, LoopResult& out, std::string& error) {
  Reader r(doc, error);
  std::string schema;
  r.s("schema", schema);
  r.s("loopName", out.loopName);
  r.b("ok", out.ok);
  r.s("error", out.error);
  decodeEnum(r, "failureClass", out.failureClass, kNumFailureClasses);
  decodeEnum(r, "partitionerUsed", out.partitionerUsed, 5);
  r.i("numOps", out.numOps);
  r.i("idealII", out.idealII);
  r.i("idealRecII", out.idealRecII);
  r.i("idealResII", out.idealResII);
  r.i("clusteredII", out.clusteredII);
  r.i("bodyCopies", out.bodyCopies);
  r.i("preheaderCopies", out.preheaderCopies);
  r.i("stageCount", out.stageCount);
  r.i("maxUnroll", out.maxUnroll);
  r.b("allocOk", out.allocOk);
  r.i("allocRetries", out.allocRetries);
  r.i("spillsAtFirstTry", out.spillsAtFirstTry);
  r.i("refineMoves", out.refineMoves);
  r.i("compactionMoves", out.compactionMoves);
  r.b("validated", out.validated);
  r.b("validatedPhysical", out.validatedPhysical);
  r.b("certified", out.certified);
  r.i64("simulatedCycles", out.simulatedCycles);
  r.s("workerStderr", out.workerStderr);
  const Json* diags = r.arr("diagnostics");
  const Json* trace = r.obj("trace");
  if (r.failed()) return false;
  if (schema != kWorkerProtocolSchema) {
    error = "result schema mismatch: " + schema;
    return false;
  }
  if (!decodeDiagnostics(*diags, out.diagnostics, error)) return false;
  if (!decodeTrace(*trace, out.trace, error)) return false;
  if (out.ok != (out.failureClass == FailureClass::None)) {
    error = "result violates the ok <-> class-None invariant";
    return false;
  }
  return true;
}

Json encodeServiceJobRequest(std::int64_t id, const Loop& loop,
                             const MachineDesc& machine,
                             const PipelineOptions& options) {
  Json j = Json::object();
  j["schema"] = kServiceSchema;
  j["kind"] = "request";
  j["id"] = id;
  j["job"] = encodeWorkerJob(loop, machine, options);
  return j;
}

Json encodeServiceStatsRequest(std::int64_t id) {
  Json j = Json::object();
  j["schema"] = kServiceSchema;
  j["kind"] = "stats";
  j["id"] = id;
  return j;
}

Json encodeServicePingRequest(std::int64_t id) {
  Json j = Json::object();
  j["schema"] = kServiceSchema;
  j["kind"] = "ping";
  j["id"] = id;
  return j;
}

bool decodeServiceRequest(const Json& doc, ServiceRequestKind& kind,
                          std::int64_t& id, const Json*& job,
                          std::string& error) {
  Reader r(doc, error);
  std::string schema, kindToken;
  r.s("schema", schema);
  r.s("kind", kindToken);
  r.i64("id", id);
  if (r.failed()) return false;
  if (schema != kServiceSchema) {
    error = "service request schema mismatch: " + schema;
    return false;
  }
  job = nullptr;
  if (kindToken == "request") {
    kind = ServiceRequestKind::Job;
    job = r.obj("job");
    return job != nullptr;
  }
  if (kindToken == "stats") {
    kind = ServiceRequestKind::Stats;
    return true;
  }
  if (kindToken == "ping") {
    kind = ServiceRequestKind::Ping;
    return true;
  }
  error = "unknown service request kind: " + kindToken;
  return false;
}

Json encodeServiceResponse(std::int64_t id, bool cacheHit, std::int64_t queueNs,
                           std::int64_t serviceNs, Json resultDoc) {
  Json j = Json::object();
  j["schema"] = kServiceSchema;
  j["kind"] = "response";
  j["id"] = id;
  j["cacheHit"] = cacheHit;
  j["queueNs"] = queueNs;
  j["serviceNs"] = serviceNs;
  j["result"] = std::move(resultDoc);
  return j;
}

Json encodeServiceStatsResponse(std::int64_t id, Json stats) {
  Json j = Json::object();
  j["schema"] = kServiceSchema;
  j["kind"] = "stats";
  j["id"] = id;
  j["stats"] = std::move(stats);
  return j;
}

Json encodeServicePingResponse(std::int64_t id, Json health) {
  Json j = Json::object();
  j["schema"] = kServiceSchema;
  j["kind"] = "ping";
  j["id"] = id;
  j["health"] = std::move(health);
  return j;
}

bool decodeServiceResponse(const Json& doc, std::int64_t& id, bool& cacheHit,
                           std::int64_t& queueNs, std::int64_t& serviceNs,
                           const Json*& payload, std::string& error) {
  Reader r(doc, error);
  std::string schema, kindToken;
  r.s("schema", schema);
  r.s("kind", kindToken);
  r.i64("id", id);
  if (r.failed()) return false;
  if (schema != kServiceSchema) {
    error = "service response schema mismatch: " + schema;
    return false;
  }
  if (kindToken == "stats") {
    cacheHit = false;
    queueNs = serviceNs = 0;
    payload = r.obj("stats");
    return payload != nullptr;
  }
  if (kindToken == "ping") {
    cacheHit = false;
    queueNs = serviceNs = 0;
    payload = r.obj("health");
    return payload != nullptr;
  }
  if (kindToken != "response") {
    error = "unknown service response kind: " + kindToken;
    return false;
  }
  r.b("cacheHit", cacheHit);
  r.i64("queueNs", queueNs);
  r.i64("serviceNs", serviceNs);
  payload = r.obj("result");
  return payload != nullptr && !r.failed();
}

std::uint64_t suiteConfigHash(const MachineDesc& machine,
                              const PipelineOptions& options) {
  Json j = Json::object();
  j["machine"] = encodeMachine(machine);
  j["options"] = encodeOptions(options);
  return fnv1a(j.dumpCompact());
}

Json encodeMachineDesc(const MachineDesc& machine) {
  return encodeMachine(machine);
}

bool decodeMachineDesc(const Json& doc, MachineDesc& machine,
                       std::string& error) {
  return decodeMachine(doc, machine, error);
}

Json encodePipelineOptions(const PipelineOptions& options) {
  return encodeOptions(options);
}

bool decodePipelineOptions(const Json& doc, PipelineOptions& options,
                           std::string& error) {
  return decodeOptions(doc, options, error);
}

std::uint64_t loopTextHash(const Loop& loop) { return fnv1a(printLoop(loop)); }

std::string hashToHex(std::uint64_t hash) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace rapt
