// JSON wire protocol between the suite supervisor and tools/rapt-worker
// (docs/robustness.md "Process isolation").
//
// One job = one compileLoop call: the supervisor writes a job document to the
// worker's stdin (loop as printLoop text — the canonical round-trippable
// form — plus the full MachineDesc and every result-relevant PipelineOption),
// the worker answers with one result document on stdout and exits 0. Every
// LoopResult field is integral, boolean, or string, so encode/decode
// round-trips BIT-EXACTLY — which is what lets subprocess-isolated suites
// aggregate identically to in-process ones (SuiteDeterminismTest's
// invariant extends across the process boundary).
//
// The same encoders feed the run journal (support/Journal.h): a journal row
// is {index, loop, loopHash, result}, and the header carries
// `suiteConfigHash`, which covers everything that changes RESULTS and
// deliberately excludes suite-level knobs (threads, isolation, worker
// limits, journaling) so a run may be resumed under a different thread count
// or isolation mode and still aggregate bit-identically.
#pragma once

#include <cstdint>
#include <string>

#include "ir/Loop.h"
#include "pipeline/CompilerPipeline.h"
#include "support/Json.h"

namespace rapt {

/// Schema tag carried by every job and result document.
inline constexpr const char* kWorkerProtocolSchema = "rapt-worker-v1";

/// Exit status the worker reserves for memory exhaustion: its new_handler
/// calls _exit with this, so an RLIMIT_AS death maps to OutOfMemory even
/// though std::bad_alloc would otherwise be contained as InternalError.
inline constexpr int kWorkerOomExit = 42;

// ---- job documents (supervisor -> worker) ----

[[nodiscard]] Json encodeWorkerJob(const Loop& loop, const MachineDesc& machine,
                                   const PipelineOptions& options);

/// Strict decode: schema must match and every field must be present with the
/// right kind. Returns false with a diagnostic in `error`.
[[nodiscard]] bool decodeWorkerJob(const Json& doc, Loop& loop,
                                   MachineDesc& machine, PipelineOptions& options,
                                   std::string& error);

// ---- result documents (worker -> supervisor, and journal rows) ----

[[nodiscard]] Json encodeLoopResult(const LoopResult& result);

[[nodiscard]] bool decodeLoopResult(const Json& doc, LoopResult& result,
                                    std::string& error);

// ---- service framing (tools/rapt-served; docs/service.md) ----
//
// The compile service speaks the SAME job/result documents over a Unix-domain
// socket (support/Socket.h), one JSON document per line, wrapped in a small
// envelope: a client-chosen correlation id (responses on a pipelined
// connection may complete out of order) and, on responses, the cache
// provenance + server-side timing the result document itself must not carry
// (a cached reply has to stay bit-identical to its cold compile).

/// Schema tag of every service request and response envelope.
inline constexpr const char* kServiceSchema = "rapt-served-v1";

/// What a decoded service request asks for.
enum class ServiceRequestKind : std::uint8_t {
  Job,    ///< compile one loop (payload: a kWorkerProtocolSchema job document)
  Stats,  ///< return the server's cache/queue/latency counters
  Ping,   ///< health probe: answered inline, never queued — wedge detection
};

[[nodiscard]] Json encodeServiceJobRequest(std::int64_t id, const Loop& loop,
                                           const MachineDesc& machine,
                                           const PipelineOptions& options);
[[nodiscard]] Json encodeServiceStatsRequest(std::int64_t id);

/// A ping costs the server one inline reply and no queue slot, so a client
/// (or an external prober) can distinguish "daemon gone" from "daemon wedged"
/// from "daemon slow but alive" before deciding to reconnect or re-submit
/// (docs/service.md "Self-healing clients").
[[nodiscard]] Json encodeServicePingRequest(std::int64_t id);

/// Strict decode of either request kind; `job` points into `doc` (valid
/// while `doc` lives) and is null for Stats requests.
[[nodiscard]] bool decodeServiceRequest(const Json& doc, ServiceRequestKind& kind,
                                        std::int64_t& id, const Json*& job,
                                        std::string& error);

/// Wraps a result document (the EXACT bytes-equivalent Json of
/// encodeLoopResult, whether fresh or replayed from the cache) in a response
/// envelope. `queueNs`/`serviceNs` are server-side admission-queue wait and
/// total service time; both 0 on cache hits answered inline.
[[nodiscard]] Json encodeServiceResponse(std::int64_t id, bool cacheHit,
                                         std::int64_t queueNs,
                                         std::int64_t serviceNs, Json resultDoc);
[[nodiscard]] Json encodeServiceStatsResponse(std::int64_t id, Json stats);

/// `health` carries uptimeNs, queueDepth, windingDown, and inFlight — enough
/// for a prober to judge liveness without touching the compile path.
[[nodiscard]] Json encodeServicePingResponse(std::int64_t id, Json health);

/// Decodes either response kind: `payload` points at the "result" (Job) or
/// "stats" (Stats) object inside `doc`.
[[nodiscard]] bool decodeServiceResponse(const Json& doc, std::int64_t& id,
                                         bool& cacheHit, std::int64_t& queueNs,
                                         std::int64_t& serviceNs,
                                         const Json*& payload, std::string& error);

// ---- standalone machine/options codecs ----
//
// The exact sub-documents encodeWorkerJob embeds, exposed for protocols that
// carry a machine + options WITHOUT a loop — a shard job names a manifest
// range, not loop text (src/shard/ShardProtocol.h), yet must reproduce the
// worker job's bit-exact option round-trip so suiteConfigHash agrees across
// orchestrator, shard, and journal.

[[nodiscard]] Json encodeMachineDesc(const MachineDesc& machine);
[[nodiscard]] bool decodeMachineDesc(const Json& doc, MachineDesc& machine,
                                     std::string& error);
[[nodiscard]] Json encodePipelineOptions(const PipelineOptions& options);
[[nodiscard]] bool decodePipelineOptions(const Json& doc,
                                         PipelineOptions& options,
                                         std::string& error);

// ---- hashing (journal keys) ----

/// FNV-1a over the machine and the result-relevant options — the journal
/// header key deciding whether an old journal may seed a new run. Threads,
/// isolation, worker limits and journal settings are excluded on purpose.
[[nodiscard]] std::uint64_t suiteConfigHash(const MachineDesc& machine,
                                            const PipelineOptions& options);

/// FNV-1a of printLoop(loop): the per-row key that detects corpus drift
/// between the journaled run and the resuming one.
[[nodiscard]] std::uint64_t loopTextHash(const Loop& loop);

/// Hex rendering used to store 64-bit hashes in JSON without overflowing the
/// signed int64 number kind.
[[nodiscard]] std::string hashToHex(std::uint64_t hash);

}  // namespace rapt
