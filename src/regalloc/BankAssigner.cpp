#include "regalloc/BankAssigner.h"

#include "regalloc/LiveIntervals.h"
#include "support/Assert.h"

namespace rapt {

BankAssignment assignBanks(const PipelinedCode& code, const Partition& partition,
                           const MachineDesc& machine) {
  BankAssignment out;
  out.regsUsed.assign(machine.numClusters, {0, 0});
  out.maxLive.assign(machine.numClusters, {0, 0});

  const std::vector<LiveRange> ranges = computeLiveRanges(code, machine.lat);

  bool anySpill = false;
  for (int bank = 0; bank < machine.numClusters; ++bank) {
    for (RegClass cls : {RegClass::Int, RegClass::Flt}) {
      // Gather this register file's ranges.
      std::vector<LiveRange> fileRanges;
      for (const LiveRange& lr : ranges) {
        if (lr.name.cls() != cls) continue;
        if (partition.bankOf(code.originalOf(lr.name)) != bank) continue;
        fileRanges.push_back(lr);
      }
      if (fileRanges.empty()) continue;

      out.maxLive[bank][static_cast<int>(cls)] =
          maxLivePressure(ranges, {bank, cls}, code, partition);

      const InterferenceGraph graph = InterferenceGraph::build(fileRanges);
      const int k = machine.regsPerBank(cls);
      const ColoringResult coloring = colorGraph(graph, k);
      out.totalSpills += static_cast<int>(coloring.spilled.size());
      if (!coloring.success()) {
        anySpill = true;
        continue;
      }
      int maxColor = -1;
      for (int i = 0; i < static_cast<int>(fileRanges.size()); ++i) {
        out.physOf[fileRanges[i].name.key()] =
            PhysReg{bank, cls, coloring.color[i]};
        maxColor = std::max(maxColor, coloring.color[i]);
      }
      out.regsUsed[bank][static_cast<int>(cls)] = maxColor + 1;
    }
  }
  out.success = !anySpill;
  return out;
}

}  // namespace rapt
