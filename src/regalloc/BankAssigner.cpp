#include "regalloc/BankAssigner.h"

#include <algorithm>

#include "regalloc/LiveIntervals.h"
#include "support/Assert.h"
#include "support/FaultInjection.h"

namespace rapt {

namespace {

/// Fault-injection corruption (docs/robustness.md): collapse one successfully
/// coloured FLOAT name onto physical index 0 of its file. Restricting the
/// corruption to the float class keeps it memory-safe under simulation (float
/// values never feed address computations, so a clobbered value can change
/// results — which the physical-stream validation catches — but can never
/// push a load or store outside the simulator's guard band).
void corruptAssignment(BankAssignment& out, FaultInjector& fi) {
  std::vector<std::uint32_t> candidates;
  for (const auto& [key, phys] : out.physOf) {
    if (phys.cls == RegClass::Flt && phys.index != 0) candidates.push_back(key);
  }
  if (candidates.empty()) return;  // nothing corruptible: no fault applied
  std::sort(candidates.begin(), candidates.end());
  const std::uint32_t victim = candidates[static_cast<std::size_t>(
      fi.index(static_cast<std::int64_t>(candidates.size())))];
  out.physOf[victim].index = 0;
  fi.recordInjected(FaultSite::Allocator);
}

}  // namespace

BankAssignment assignBanks(const PipelinedCode& code, const Partition& partition,
                           const MachineDesc& machine) {
  BankAssignment out;
  out.regsUsed.assign(machine.numClusters, {0, 0});
  out.maxLive.assign(machine.numClusters, {0, 0});

  FaultKind fault = FaultKind::None;
  if (FaultInjector* fi = FaultInjector::active()) {
    fault = fi->draw(FaultSite::Allocator);
    if (fault == FaultKind::StageFail) {
      fi->recordInjected(FaultSite::Allocator);
      return out;  // success == false: a clean allocation failure (II bump)
    }
    if (fault == FaultKind::Throw) {
      fi->recordInjected(FaultSite::Allocator);
      throw FaultInjected("allocator");
    }
  }

  const std::vector<LiveRange> ranges = computeLiveRanges(code, machine.lat);

  bool anySpill = false;
  for (int bank = 0; bank < machine.numClusters; ++bank) {
    for (RegClass cls : {RegClass::Int, RegClass::Flt}) {
      // Gather this register file's ranges.
      std::vector<LiveRange> fileRanges;
      for (const LiveRange& lr : ranges) {
        if (lr.name.cls() != cls) continue;
        if (partition.bankOf(code.originalOf(lr.name)) != bank) continue;
        fileRanges.push_back(lr);
      }
      if (fileRanges.empty()) continue;

      out.maxLive[bank][static_cast<int>(cls)] =
          maxLivePressure(ranges, {bank, cls}, code, partition);

      const InterferenceGraph graph = InterferenceGraph::build(fileRanges);
      const int k = machine.regsPerBank(cls);
      const ColoringResult coloring = colorGraph(graph, k);
      out.totalSpills += static_cast<int>(coloring.spilled.size());
      if (!coloring.success()) {
        anySpill = true;
        continue;
      }
      int maxColor = -1;
      for (int i = 0; i < static_cast<int>(fileRanges.size()); ++i) {
        out.physOf[fileRanges[i].name.key()] =
            PhysReg{bank, cls, coloring.color[i]};
        maxColor = std::max(maxColor, coloring.color[i]);
      }
      out.regsUsed[bank][static_cast<int>(cls)] = maxColor + 1;
    }
  }
  out.success = !anySpill;
  if (out.success && fault == FaultKind::Corrupt) {
    corruptAssignment(out, *FaultInjector::active());
  }
  return out;
}

}  // namespace rapt
