// Per-bank register assignment of a pipelined instruction stream (the
// framework's step 5): each (bank, class) register file is coloured
// independently with Chaitin/Briggs.
#pragma once

#include <unordered_map>

#include "machine/MachineDesc.h"
#include "partition/Partition.h"
#include "regalloc/GraphColoring.h"
#include "sched/PipelinedCode.h"

namespace rapt {

/// A physical register: index within one (bank, class) register file.
struct PhysReg {
  int bank = 0;
  RegClass cls = RegClass::Int;
  int index = 0;
};

struct BankAssignment {
  bool success = false;
  int totalSpills = 0;
  /// name key -> physical register (complete iff success).
  std::unordered_map<std::uint32_t, PhysReg> physOf;
  /// Registers used per (bank, class): [bank] -> {int count, flt count}.
  std::vector<std::array<int, 2>> regsUsed;
  /// MaxLive pressure per (bank, class), informational.
  std::vector<std::array<int, 2>> maxLive;
};

/// Colours every name of `code`. A name's bank is the bank its original
/// symbolic register was partitioned to. Fails (success == false) when some
/// bank needs more registers than the machine provides; the caller may
/// reschedule at a larger II (less overlap, fewer simultaneously live names)
/// and retry.
[[nodiscard]] BankAssignment assignBanks(const PipelinedCode& code,
                                         const Partition& partition,
                                         const MachineDesc& machine);

}  // namespace rapt
