#include "regalloc/GraphColoring.h"

#include <algorithm>

#include "support/Assert.h"

namespace rapt {

ColoringResult colorGraph(const InterferenceGraph& graph, int k) {
  RAPT_ASSERT(k > 0, "need at least one colour");
  const int n = graph.numNodes();
  ColoringResult result;
  result.color.assign(n, -1);

  std::vector<int> degree(n);
  std::vector<bool> removed(n, false);
  for (int i = 0; i < n; ++i) degree[i] = graph.degree(i);

  // ---- Simplify ----
  std::vector<int> stack;
  stack.reserve(n);
  int remaining = n;
  while (remaining > 0) {
    int pick = -1;
    // Prefer a trivially colourable node (degree < k), lowest index for
    // determinism.
    for (int i = 0; i < n; ++i) {
      if (!removed[i] && degree[i] < k) {
        pick = i;
        break;
      }
    }
    if (pick < 0) {
      // Spill candidate: minimize cost/degree (Chaitin's heuristic).
      double best = 0.0;
      for (int i = 0; i < n; ++i) {
        if (removed[i]) continue;
        const double ratio = graph.spillCost(i) / std::max(1, degree[i]);
        if (pick < 0 || ratio < best) {
          pick = i;
          best = ratio;
        }
      }
    }
    removed[pick] = true;
    --remaining;
    stack.push_back(pick);
    for (int nb : graph.neighbors(pick)) {
      if (!removed[nb]) --degree[nb];
    }
  }

  // ---- Select ----
  std::vector<bool> used(k);
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    std::fill(used.begin(), used.end(), false);
    for (int nb : graph.neighbors(node)) {
      if (result.color[nb] >= 0) used[result.color[nb]] = true;
    }
    int c = 0;
    while (c < k && used[c]) ++c;
    if (c < k) {
      result.color[node] = c;
    } else {
      result.spilled.push_back(node);
    }
  }
  std::sort(result.spilled.begin(), result.spilled.end());
  return result;
}

}  // namespace rapt
