// Chaitin/Briggs graph-coloring register assignment (the paper's step 5 uses
// "standard Chaitin/Briggs graph coloring register assignment for each
// register bank"; Chaitin '82, Briggs et al. '89).
//
// Simplify: repeatedly remove a node of degree < K; when none exists, remove
// the node with the lowest (spillCost / degree) ratio as a spill *candidate*
// but still push it on the stack (Briggs's optimistic colouring — the
// candidate often receives a colour anyway at select time). Select: pop the
// stack, giving each node the lowest colour unused by its coloured
// neighbours; candidates with no free colour become actual spills.
#pragma once

#include <vector>

#include "regalloc/InterferenceGraph.h"

namespace rapt {

struct ColoringResult {
  /// Colour per node (0..K-1), or -1 for spilled nodes.
  std::vector<int> color;
  std::vector<int> spilled;  ///< node indices that received no colour
  [[nodiscard]] bool success() const { return spilled.empty(); }
};

/// Colours `graph` with at most `k` colours, Briggs-optimistically.
[[nodiscard]] ColoringResult colorGraph(const InterferenceGraph& graph, int k);

}  // namespace rapt
