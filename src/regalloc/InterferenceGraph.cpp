#include "regalloc/InterferenceGraph.h"

#include <algorithm>

#include "support/Assert.h"

namespace rapt {

InterferenceGraph InterferenceGraph::build(std::span<const LiveRange> ranges,
                                           std::vector<double> spillCost) {
  InterferenceGraph g;
  const int n = static_cast<int>(ranges.size());
  g.adj_.assign(n, {});
  if (spillCost.empty()) {
    spillCost.resize(n);
    for (int i = 0; i < n; ++i) {
      // Chaitin-flavoured default: short, busy ranges are expensive to spill.
      const int span = std::max(1, ranges[i].span());
      spillCost[i] = 1.0 / static_cast<double>(span);
    }
  }
  RAPT_ASSERT(static_cast<int>(spillCost.size()) == n, "spill cost size mismatch");
  g.spillCost_ = std::move(spillCost);

  // Sweep by segment start; O(S log S + edges).
  struct Seg {
    int begin, end, node;
  };
  std::vector<Seg> segs;
  for (int i = 0; i < n; ++i)
    for (const LiveSegment& s : ranges[i].segments) segs.push_back({s.begin, s.end, i});
  std::sort(segs.begin(), segs.end(),
            [](const Seg& a, const Seg& b) { return a.begin < b.begin; });

  std::vector<Seg> active;
  std::vector<std::vector<bool>> seen(n);  // avoid duplicate edges cheaply
  for (int i = 0; i < n; ++i) seen[i].assign(n, false);
  for (const Seg& s : segs) {
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](const Seg& a) { return a.end <= s.begin; }),
                 active.end());
    for (const Seg& a : active) {
      if (a.node == s.node) continue;
      const int x = std::min(a.node, s.node);
      const int y = std::max(a.node, s.node);
      if (seen[x][y]) continue;
      seen[x][y] = true;
      g.adj_[x].push_back(y);
      g.adj_[y].push_back(x);
      ++g.numEdges_;
    }
    active.push_back(s);
  }
  for (auto& nbrs : g.adj_) std::sort(nbrs.begin(), nbrs.end());
  return g;
}

InterferenceGraph InterferenceGraph::fromEdges(
    int numNodes, std::span<const std::pair<int, int>> edges,
    std::vector<double> spillCost) {
  InterferenceGraph g;
  g.adj_.assign(numNodes, {});
  if (spillCost.empty()) spillCost.assign(numNodes, 1.0);
  RAPT_ASSERT(static_cast<int>(spillCost.size()) == numNodes,
              "spill cost size mismatch");
  g.spillCost_ = std::move(spillCost);
  for (const auto& [a, b] : edges) {
    RAPT_ASSERT(a >= 0 && a < numNodes && b >= 0 && b < numNodes, "edge out of range");
    if (a == b) continue;
    g.adj_[a].push_back(b);
    g.adj_[b].push_back(a);
  }
  for (auto& nbrs : g.adj_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  for (const auto& nbrs : g.adj_) g.numEdges_ += nbrs.size();
  g.numEdges_ /= 2;
  return g;
}

bool InterferenceGraph::interferes(int a, int b) const {
  const auto& nbrs = adj_[a];
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

}  // namespace rapt
