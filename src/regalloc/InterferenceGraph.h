// Interference graph over register live ranges.
#pragma once

#include <vector>

#include "regalloc/LiveIntervals.h"

namespace rapt {

/// Undirected interference graph; node i corresponds to the i-th live range
/// handed to build(). Supports the queries the Chaitin/Briggs allocator
/// needs: degree, adjacency, and spill costs.
class InterferenceGraph {
 public:
  /// Builds interference edges between every pair of overlapping ranges.
  /// `spillCost[i]` follows Chaitin: uses+defs weight divided by live span
  /// (cheap long-lived ranges spill first); pass empty to use span-based
  /// defaults computed from the ranges.
  [[nodiscard]] static InterferenceGraph build(std::span<const LiveRange> ranges,
                                               std::vector<double> spillCost = {});

  /// Builds from an explicit edge list (whole-function Chaitin construction).
  /// Duplicate edges are tolerated.
  [[nodiscard]] static InterferenceGraph fromEdges(
      int numNodes, std::span<const std::pair<int, int>> edges,
      std::vector<double> spillCost = {});

  [[nodiscard]] int numNodes() const { return static_cast<int>(adj_.size()); }
  [[nodiscard]] std::span<const int> neighbors(int n) const { return adj_[n]; }
  [[nodiscard]] int degree(int n) const { return static_cast<int>(adj_[n].size()); }
  [[nodiscard]] double spillCost(int n) const { return spillCost_[n]; }
  [[nodiscard]] bool interferes(int a, int b) const;

  /// Number of edges (each counted once).
  [[nodiscard]] std::size_t numEdges() const { return numEdges_; }

 private:
  std::vector<std::vector<int>> adj_;
  std::vector<double> spillCost_;
  std::size_t numEdges_ = 0;
};

}  // namespace rapt
