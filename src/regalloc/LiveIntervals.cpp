#include "regalloc/LiveIntervals.h"

#include <algorithm>
#include <map>

#include "partition/Partition.h"
#include "support/Assert.h"

namespace rapt {

bool LiveRange::overlaps(const LiveRange& o) const {
  // Both segment lists are sorted; merge-walk.
  std::size_t i = 0, j = 0;
  while (i < segments.size() && j < o.segments.size()) {
    if (segments[i].overlaps(o.segments[j])) return true;
    if (segments[i].end <= o.segments[j].end)
      ++i;
    else
      ++j;
  }
  return false;
}

int LiveRange::span() const {
  int total = 0;
  for (const LiveSegment& s : segments) total += s.end - s.begin;
  return total;
}

std::vector<LiveRange> computeLiveRanges(const PipelinedCode& code,
                                         const LatencyTable& lat) {
  struct Events {
    std::vector<std::pair<int, int>> defs;  // (issue, land), issue-sorted
    std::vector<int> reads;                 // issue cycles, sorted
  };
  std::map<std::uint32_t, Events> events;  // ordered by name key

  for (int c = 0; c < static_cast<int>(code.instrs.size()); ++c) {
    for (const EmittedOp& eo : code.instrs[c].ops) {
      for (VirtReg s : eo.op.srcs()) events[s.key()].reads.push_back(c);
      if (eo.op.def.isValid())
        events[eo.op.def.key()].defs.emplace_back(c, c + lat.of(eo.op.op));
    }
  }

  std::vector<LiveRange> ranges;
  for (auto& [key, evs] : events) {
    std::sort(evs.defs.begin(), evs.defs.end());
    std::sort(evs.reads.begin(), evs.reads.end());
    LiveRange lr;
    lr.name = VirtReg::fromKey(key);

    // Attribute every read to the latest def whose write has LANDED by the
    // read cycle; reads with no landed def consume the initial contents.
    // Segment per value instance: [def issue, max(land, last read + 1));
    // initial contents occupy [0, last initial read + 1).
    const int nDefs = static_cast<int>(evs.defs.size());
    std::vector<int> lastReadOf(nDefs + 1, -1);  // index 0 == initial value
    for (int r : evs.reads) {
      int owner = 0;
      for (int d = 0; d < nDefs; ++d) {
        if (evs.defs[d].second <= r) owner = d + 1;
      }
      lastReadOf[owner] = std::max(lastReadOf[owner], r);
    }
    if (lastReadOf[0] >= 0) lr.segments.push_back({0, lastReadOf[0] + 1});
    for (int d = 0; d < nDefs; ++d) {
      const auto [issue, land] = evs.defs[d];
      lr.segments.push_back({issue, std::max(land, lastReadOf[d + 1] + 1)});
    }
    std::sort(lr.segments.begin(), lr.segments.end(),
              [](const LiveSegment& a, const LiveSegment& b) {
                return a.begin < b.begin;
              });
    // Merge overlapping and touching segments (e.g. a tight recurrence
    // redefines the register exactly where the previous segment ends); the
    // union of cycles covered is unchanged.
    std::vector<LiveSegment> merged;
    for (const LiveSegment& s : lr.segments) {
      if (!merged.empty() && s.begin <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, s.end);
      } else {
        merged.push_back(s);
      }
    }
    lr.segments = std::move(merged);
    ranges.push_back(std::move(lr));
  }
  return ranges;
}

int maxLivePressure(const std::vector<LiveRange>& ranges, const PressureQuery& query,
                    const PipelinedCode& code, const Partition& partition) {
  std::vector<std::pair<int, int>> deltas;  // (cycle, +1/-1)
  for (const LiveRange& lr : ranges) {
    if (lr.name.cls() != query.cls) continue;
    if (partition.bankOf(code.originalOf(lr.name)) != query.bank) continue;
    for (const LiveSegment& s : lr.segments) {
      deltas.emplace_back(s.begin, +1);
      deltas.emplace_back(s.end, -1);
    }
  }
  std::sort(deltas.begin(), deltas.end());
  int cur = 0, peak = 0;
  for (const auto& [cycle, d] : deltas) {
    cur += d;
    peak = std::max(peak, cur);
  }
  return peak;
}

}  // namespace rapt
