// Live intervals of register names over a flat VLIW instruction stream.
//
// The pipelined stream is straight-line code, so liveness is exact interval
// arithmetic. A name's occupancy of a physical register must cover not only
// [definition, last read] but also the whole in-flight window of the write
// (results land at issue + latency; a physical register may not host another
// value while a write to it is still in flight), hence each segment is
//
//     [defIssue, max(lastReadIssue, defIssue + defLatency))
//
// Names read before any definition (loop live-ins and the carried-phase MVE
// names) get a leading segment starting at cycle 0.
#pragma once

#include <vector>

#include "machine/MachineDesc.h"
#include "sched/PipelinedCode.h"

namespace rapt {

struct LiveSegment {
  int begin = 0;  ///< inclusive
  int end = 0;    ///< exclusive

  [[nodiscard]] bool overlaps(const LiveSegment& o) const {
    return begin < o.end && o.begin < end;
  }
};

struct LiveRange {
  VirtReg name;
  std::vector<LiveSegment> segments;  ///< sorted, disjoint

  [[nodiscard]] bool overlaps(const LiveRange& o) const;
  /// Total cycles covered (spill-cost denominator).
  [[nodiscard]] int span() const;
};

/// Computes the live range of every name in `code`.
[[nodiscard]] std::vector<LiveRange> computeLiveRanges(const PipelinedCode& code,
                                                       const LatencyTable& lat);

/// The largest number of simultaneously live names at any cycle, per
/// (bank of original register, class) — the classic MaxLive pressure metric.
/// `bankOfName(name)` maps a name to its bank.
struct PressureQuery {
  int bank;
  RegClass cls;
};
[[nodiscard]] int maxLivePressure(const std::vector<LiveRange>& ranges,
                                  const PressureQuery& query,
                                  const PipelinedCode& code,
                                  const class Partition& partition);

}  // namespace rapt
