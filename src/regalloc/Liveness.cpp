#include "regalloc/Liveness.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/Assert.h"

namespace rapt {
namespace {

using RegSet = std::set<VirtReg>;

void collectUseDef(const BasicBlock& bb, RegSet& use, RegSet& def) {
  // `use` = registers read before any definition within the block.
  for (const Operation& o : bb.ops) {
    for (VirtReg s : o.srcs()) {
      if (def.count(s) == 0) use.insert(s);
    }
    if (o.def.isValid()) def.insert(o.def);
  }
}

std::vector<VirtReg> toSorted(const RegSet& s) {
  return std::vector<VirtReg>(s.begin(), s.end());
}

}  // namespace

std::vector<BlockLiveness> computeLiveness(const Function& fn) {
  const int n = fn.numBlocks();
  std::vector<RegSet> use(n), def(n), liveIn(n), liveOut(n);
  for (int b = 0; b < n; ++b) collectUseDef(fn.blocks[b], use[b], def[b]);

  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = n - 1; b >= 0; --b) {
      RegSet newOut;
      for (int s : fn.blocks[b].succs)
        newOut.insert(liveIn[s].begin(), liveIn[s].end());
      RegSet newIn = use[b];
      for (VirtReg r : newOut) {
        if (def[b].count(r) == 0) newIn.insert(r);
      }
      if (newOut != liveOut[b] || newIn != liveIn[b]) {
        liveOut[b] = std::move(newOut);
        liveIn[b] = std::move(newIn);
        changed = true;
      }
    }
  }

  std::vector<BlockLiveness> result(n);
  for (int b = 0; b < n; ++b) {
    result[b].liveIn = toSorted(liveIn[b]);
    result[b].liveOut = toSorted(liveOut[b]);
  }
  return result;
}

FunctionInterference buildFunctionInterference(const Function& fn) {
  FunctionInterference out;
  out.nodes = fn.allRegs();
  std::unordered_map<std::uint32_t, int> nodeOf;
  for (int i = 0; i < static_cast<int>(out.nodes.size()); ++i)
    nodeOf[out.nodes[i].key()] = i;

  const std::vector<BlockLiveness> live = computeLiveness(fn);
  std::vector<std::pair<int, int>> edges;
  std::vector<double> defUseCount(out.nodes.size(), 0.0);

  for (int b = 0; b < fn.numBlocks(); ++b) {
    RegSet liveNow(live[b].liveOut.begin(), live[b].liveOut.end());
    const auto& ops = fn.blocks[b].ops;
    const double blockWeight = std::pow(10.0, fn.blocks[b].nestingDepth);
    for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
      const Operation& o = *it;
      if (o.def.isValid()) {
        const int d = nodeOf.at(o.def.key());
        defUseCount[d] += blockWeight;
        for (VirtReg r : liveNow) {
          if (r != o.def) edges.emplace_back(d, nodeOf.at(r.key()));
        }
        liveNow.erase(o.def);
      }
      for (VirtReg s : o.srcs()) {
        defUseCount[nodeOf.at(s.key())] += blockWeight;
        liveNow.insert(s);
      }
    }
  }

  // Chaitin spill cost: (depth-weighted def/use count); the allocator divides
  // by degree itself.
  out.graph = InterferenceGraph::fromEdges(static_cast<int>(out.nodes.size()), edges,
                                           std::move(defUseCount));
  return out;
}

}  // namespace rapt
