#include "regalloc/Liveness.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "analysis/Analyses.h"
#include "support/Assert.h"

namespace rapt {

// Liveness proper is delegated to the shared dataflow framework
// (analysis/Analyses.h): the same worklist solver that powers the lint
// diagnostics computes the block live-in/live-out bitsets here, and
// tests/analysis/LivenessDifferentialTest.cpp pins this adapter against an
// independent set-based reference over the full loop and function corpora.
std::vector<BlockLiveness> computeLiveness(const Function& fn) {
  const FunctionLiveness live = computeFunctionLiveness(fn);
  std::vector<BlockLiveness> result(static_cast<std::size_t>(fn.numBlocks()));
  for (int b = 0; b < fn.numBlocks(); ++b) {
    result[static_cast<std::size_t>(b)].liveIn =
        regsOfSet(live.liveIn[static_cast<std::size_t>(b)]);
    result[static_cast<std::size_t>(b)].liveOut =
        regsOfSet(live.liveOut[static_cast<std::size_t>(b)]);
  }
  return result;
}

FunctionInterference buildFunctionInterference(const Function& fn) {
  FunctionInterference out;
  out.nodes = fn.allRegs();
  std::unordered_map<std::uint32_t, int> nodeOf;
  for (int i = 0; i < static_cast<int>(out.nodes.size()); ++i)
    nodeOf[out.nodes[i].key()] = i;

  const FunctionLiveness live = computeFunctionLiveness(fn);
  std::vector<std::pair<int, int>> edges;
  std::vector<double> defUseCount(out.nodes.size(), 0.0);

  for (int b = 0; b < fn.numBlocks(); ++b) {
    BitSet liveNow = live.liveOut[static_cast<std::size_t>(b)];
    const auto& ops = fn.blocks[b].ops;
    const double blockWeight = std::pow(10.0, fn.blocks[b].nestingDepth);
    for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
      const Operation& o = *it;
      if (o.def.isValid()) {
        const int d = nodeOf.at(o.def.key());
        defUseCount[static_cast<std::size_t>(d)] += blockWeight;
        liveNow.forEach([&](int key) {
          if (static_cast<std::uint32_t>(key) != o.def.key())
            edges.emplace_back(d, nodeOf.at(static_cast<std::uint32_t>(key)));
        });
        liveNow.reset(static_cast<int>(o.def.key()));
      }
      for (VirtReg s : o.srcs()) {
        defUseCount[static_cast<std::size_t>(nodeOf.at(s.key()))] += blockWeight;
        liveNow.set(static_cast<int>(s.key()));
      }
    }
  }

  // Chaitin spill cost: (depth-weighted def/use count); the allocator divides
  // by degree itself.
  out.graph = InterferenceGraph::fromEdges(static_cast<int>(out.nodes.size()), edges,
                                           std::move(defUseCount));
  return out;
}

}  // namespace rapt
