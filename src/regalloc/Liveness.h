// Global liveness analysis over a function CFG (backward dataflow).
//
// Supports the whole-function path of the framework: the Chaitin/Briggs
// allocator needs interference information for registers whose live ranges
// span basic blocks.
#pragma once

#include <vector>

#include "ir/Function.h"
#include "regalloc/InterferenceGraph.h"

namespace rapt {

struct BlockLiveness {
  std::vector<VirtReg> liveIn;   ///< sorted
  std::vector<VirtReg> liveOut;  ///< sorted
};

/// Iterative backward dataflow: liveOut(B) = union of liveIn(succs),
/// liveIn(B) = use(B) | (liveOut(B) - def(B)).
[[nodiscard]] std::vector<BlockLiveness> computeLiveness(const Function& fn);

/// Builds a whole-function interference graph: registers interfere when one
/// is defined while the other is live (the classic Chaitin construction,
/// walking each block backwards from liveOut). Returns the node order used.
struct FunctionInterference {
  std::vector<VirtReg> nodes;
  InterferenceGraph graph;
};
[[nodiscard]] FunctionInterference buildFunctionInterference(const Function& fn);

}  // namespace rapt
