#include "regalloc/PhysicalRewrite.h"

#include "support/Assert.h"

namespace rapt {

PipelinedCode applyPhysicalAssignment(const PipelinedCode& code,
                                      const BankAssignment& alloc) {
  auto physOf = [&](VirtReg name) {
    auto it = alloc.physOf.find(name.key());
    RAPT_ASSERT(it != alloc.physOf.end(), "name without a physical register");
    RAPT_ASSERT(it->second.cls == name.cls(), "class-mismatched assignment");
    return encodePhysReg(it->second);
  };

  PipelinedCode out = code;
  for (VliwInstr& in : out.instrs) {
    for (EmittedOp& eo : in.ops) {
      if (eo.op.def.isValid()) eo.op.def = physOf(eo.op.def);
      for (int s = 0; s < eo.op.numSrcs(); ++s) eo.op.src[s] = physOf(eo.op.src[s]);
    }
  }
  out.namesOf.clear();
  out.originOf.clear();
  for (const auto& [origKey, names] : code.namesOf) {
    std::vector<VirtReg> phys;
    phys.reserve(names.size());
    for (VirtReg n : names) {
      const VirtReg p = physOf(n);
      phys.push_back(p);
      // Several names may share a physical register (disjoint lifetimes);
      // any of their origins resolves to the same bank, which is all the
      // resource checker needs.
      out.originOf[p.key()] = code.originOf.at(n.key());
    }
    out.namesOf[origKey] = std::move(phys);
  }
  for (LiveInValue& lv : out.nameInits) lv.reg = physOf(lv.reg);
  return out;
}

}  // namespace rapt
