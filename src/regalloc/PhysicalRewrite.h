// Physical register substitution.
//
// Rewrites a pipelined stream's virtual MVE names into the physical
// registers chosen by the bank assignment, producing the stream the hardware
// would actually execute. Simulating THIS stream closes the last validation
// gap: an allocator bug (two overlapping values sharing a register) is
// invisible when simulating virtual names, but corrupts results here.
//
// Physical registers are encoded back into the VirtReg space in a reserved
// high index range so the existing simulator runs unchanged:
//     index = kPhysBase + bank * kBankStride + registerIndex.
#pragma once

#include "regalloc/BankAssigner.h"
#include "sched/PipelinedCode.h"

namespace rapt {

constexpr std::uint32_t kPhysBase = 1u << 20;
constexpr std::uint32_t kBankStride = 1u << 10;

/// The VirtReg encoding of a physical register.
[[nodiscard]] inline VirtReg encodePhysReg(const PhysReg& pr) {
  return VirtReg(pr.cls, kPhysBase + static_cast<std::uint32_t>(pr.bank) * kBankStride +
                             static_cast<std::uint32_t>(pr.index));
}

/// Rewrites every operand, rename-table entry and initial value of `code`
/// through `alloc` (which must cover every name). The result simulates and
/// equivalence-checks exactly like the virtual stream.
[[nodiscard]] PipelinedCode applyPhysicalAssignment(const PipelinedCode& code,
                                                    const BankAssignment& alloc);

}  // namespace rapt
