#include "regalloc/Spiller.h"

#include <algorithm>

#include "regalloc/GraphColoring.h"
#include "regalloc/Liveness.h"
#include "support/Assert.h"

namespace rapt {

SpillPlan makeSpillPlan(Function& fn, int numBanks, Partition* partition) {
  SpillPlan plan;
  plan.intSlots = fn.addArray("__spill_int", 256, false);
  plan.fltSlots = fn.addArray("__spill_flt", 256, true);
  // Pinned zero index registers, materialized at the top of the entry block.
  std::uint32_t maxInt = 0;
  for (VirtReg r : fn.allRegs()) {
    if (r.cls() == RegClass::Int) maxInt = std::max(maxInt, r.index() + 1);
  }
  RAPT_ASSERT(!fn.blocks.empty(), "spilling needs an entry block");
  for (int b = 0; b < numBanks; ++b) {
    const VirtReg zero(RegClass::Int, maxInt + static_cast<std::uint32_t>(b));
    plan.zeroRegs.push_back(zero);
    fn.blocks[0].ops.insert(fn.blocks[0].ops.begin(), makeIConst(zero, 0));
    if (partition != nullptr) partition->assign(zero, b);
  }
  return plan;
}

int spillRegister(Function& fn, VirtReg reg, SpillPlan& plan,
                  std::uint32_t nextFresh[2], Partition* partition) {
  RAPT_ASSERT(!plan.isZeroReg(reg), "the spill index register cannot be spilled");
  const VirtReg zero =
      plan.zeroRegs[partition != nullptr && partition->isAssigned(reg)
                        ? partition->bankOf(reg)
                        : 0];
  const ArrayId arr = reg.cls() == RegClass::Flt ? plan.fltSlots : plan.intSlots;
  const Opcode loadOp = reg.cls() == RegClass::Flt ? Opcode::FLoad : Opcode::ILoad;
  const Opcode storeOp = reg.cls() == RegClass::Flt ? Opcode::FStore : Opcode::IStore;

  auto [slotIt, inserted] =
      plan.slotOf.try_emplace(reg.key(), plan.nextSlot[static_cast<int>(reg.cls())]);
  if (inserted) ++plan.nextSlot[static_cast<int>(reg.cls())];
  const std::int64_t slot = slotIt->second;

  auto fresh = [&](RegClass rc) {
    const VirtReg t(rc, nextFresh[static_cast<int>(rc)]++);
    if (partition != nullptr) partition->assign(t, partition->bankOf(reg));
    return t;
  };

  int added = 0;
  for (BasicBlock& bb : fn.blocks) {
    std::vector<Operation> rewritten;
    rewritten.reserve(bb.ops.size());
    for (Operation op : bb.ops) {
      // Reload before a use.
      VirtReg reload;
      for (int s = 0; s < op.numSrcs(); ++s) {
        if (op.src[s] != reg) continue;
        if (!reload.isValid()) {
          reload = fresh(reg.cls());
          rewritten.push_back(makeLoad(loadOp, reload, arr, zero, slot));
          ++added;
        }
        op.src[s] = reload;
      }
      // Define into a temporary, then store to the slot.
      if (op.def.isValid() && op.def == reg) {
        const VirtReg tmp = fresh(reg.cls());
        op.def = tmp;
        rewritten.push_back(op);
        rewritten.push_back(makeStore(storeOp, arr, zero, tmp, slot));
        ++added;
        continue;
      }
      rewritten.push_back(op);
    }
    bb.ops = std::move(rewritten);
  }
  return added;
}

FunctionAllocResult allocateFunction(Function& fn, const MachineDesc& machine,
                                     Partition& partition, int maxRounds) {
  FunctionAllocResult out;
  SpillPlan plan;  // created lazily on first spill
  bool havePlan = false;
  std::uint32_t nextFresh[2] = {0, 0};
  auto refreshCounters = [&] {
    for (VirtReg r : fn.allRegs()) {
      std::uint32_t& n = nextFresh[static_cast<int>(r.cls())];
      n = std::max(n, r.index() + 1);
    }
  };
  refreshCounters();
  // Registers the caller did not place default to bank 0.
  for (VirtReg r : fn.allRegs()) {
    if (!partition.isAssigned(r)) partition.assign(r, 0);
  }

  for (int round = 1; round <= maxRounds; ++round) {
    out.rounds = round;
    const FunctionInterference fi = buildFunctionInterference(fn);
    out.physOf.clear();
    std::vector<VirtReg> victims;

    for (int bank = 0; bank < machine.numClusters; ++bank) {
      for (RegClass cls : {RegClass::Int, RegClass::Flt}) {
        std::vector<int> members;
        for (int i = 0; i < static_cast<int>(fi.nodes.size()); ++i) {
          if (fi.nodes[i].cls() != cls) continue;
          if (partition.bankOf(fi.nodes[i]) != bank) continue;
          members.push_back(i);
        }
        if (members.empty()) continue;
        std::vector<std::pair<int, int>> edges;
        std::vector<double> costs;
        for (std::size_t i = 0; i < members.size(); ++i) {
          const VirtReg node = fi.nodes[members[i]];
          // The zero register and registers without an in-function definition
          // cannot be spilled: infinite cost.
          const bool unspillable =
              (havePlan && plan.isZeroReg(node)) || !hasDefinition(fn, node);
          costs.push_back(unspillable ? 1e18 : fi.graph.spillCost(members[i]));
          for (std::size_t j = i + 1; j < members.size(); ++j) {
            if (fi.graph.interferes(members[i], members[j]))
              edges.emplace_back(static_cast<int>(i), static_cast<int>(j));
          }
        }
        const InterferenceGraph sub = InterferenceGraph::fromEdges(
            static_cast<int>(members.size()), edges, std::move(costs));
        const ColoringResult coloring = colorGraph(sub, machine.regsPerBank(cls));
        for (std::size_t i = 0; i < members.size(); ++i) {
          if (coloring.color[static_cast<int>(i)] >= 0) {
            out.physOf[fi.nodes[members[i]].key()] =
                PhysReg{bank, cls, coloring.color[static_cast<int>(i)]};
          }
        }
        for (int s : coloring.spilled) victims.push_back(fi.nodes[members[s]]);
      }
    }

    if (victims.empty()) {
      out.success = true;
      return out;
    }
    if (round == maxRounds) break;

    if (!havePlan) {
      plan = makeSpillPlan(fn, machine.numClusters, &partition);
      havePlan = true;
      refreshCounters();
    }
    for (VirtReg v : victims) {
      if (plan.isZeroReg(v) || !hasDefinition(fn, v)) continue;  // cannot spill
      out.spillOpsAdded += spillRegister(fn, v, plan, nextFresh, &partition);
      ++out.spilledRegs;
    }
  }
  return out;
}

}  // namespace rapt
