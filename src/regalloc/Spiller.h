// Spill code insertion (the "spilling via graph coloring" half of Chaitin).
//
// When a register file cannot be coloured, Chaitin's allocator picks victims
// by cost/degree, rewrites every definition of a victim to a store into a
// stack slot and every use to a reload into a short-lived temporary, and
// recolours — the temporaries' tiny live ranges make the graph sparser each
// round. The loop pipeline avoids this by relaxing II (less overlap, lower
// pressure); the whole-function path has no II to relax, so real spill code
// is the only recourse.
//
// Stack slots are modelled as two dedicated spill arrays (one per register
// class) indexed through a pinned zero register materialized in the entry
// block.
#pragma once

#include <unordered_map>

#include "ir/Function.h"
#include "machine/MachineDesc.h"
#include "partition/Partition.h"
#include "regalloc/BankAssigner.h"

namespace rapt {

/// Handles to the spill machinery inside a function.
struct SpillPlan {
  ArrayId intSlots = kNoArray;
  ArrayId fltSlots = kNoArray;
  /// One pinned `iconst 0` index register per bank, so spill loads/stores
  /// never need cross-bank operands themselves.
  std::vector<VirtReg> zeroRegs;
  std::unordered_map<std::uint32_t, std::int64_t> slotOf;  ///< per spilled reg
  std::int64_t nextSlot[2] = {0, 0};               ///< per class

  [[nodiscard]] bool isZeroReg(VirtReg r) const {
    for (VirtReg z : zeroRegs) {
      if (z == r) return true;
    }
    return false;
  }
};

/// Adds the spill arrays and one zero register per bank to `fn` (call once
/// per function instance and reuse the plan). When `partition` is non-null
/// each zero register is assigned to its bank.
[[nodiscard]] SpillPlan makeSpillPlan(Function& fn, int numBanks,
                                      Partition* partition);

/// Rewrites every definition and use of `reg` through its spill slot. Fresh
/// temporaries are drawn from `nextFresh` and, when `partition` is non-null,
/// inherit `reg`'s bank. Returns the number of operations inserted.
/// `reg` must have at least one definition in `fn`.
int spillRegister(Function& fn, VirtReg reg, SpillPlan& plan,
                  std::uint32_t nextFresh[2], Partition* partition);

/// Iterative whole-function allocation: colour each (bank, class) file,
/// spill the uncoloured victims, repeat. `partition` maps registers to banks
/// (pass a single-bank partition for a monolithic machine). `fn` is modified
/// in place when spilling occurs.
struct FunctionAllocResult {
  bool success = false;
  int rounds = 0;          ///< colouring rounds (1 == no spilling needed)
  int spilledRegs = 0;
  int spillOpsAdded = 0;
  /// reg key -> physical register, for every register live at the end.
  std::unordered_map<std::uint32_t, PhysReg> physOf;
};

[[nodiscard]] FunctionAllocResult allocateFunction(Function& fn,
                                                   const MachineDesc& machine,
                                                   Partition& partition,
                                                   int maxRounds = 8);

}  // namespace rapt
