#include "sched/LifetimeCompaction.h"

#include <algorithm>

#include "sched/ModuloScheduler.h"
#include "sched/Mrt.h"
#include "support/Assert.h"

namespace rapt {

long long totalLifetime(const Ddg& ddg, const ModuloSchedule& sched) {
  long long total = 0;
  for (int d = 0; d < ddg.numOps(); ++d) {
    long long maxRead = -1;
    for (int ei : ddg.succEdges(d)) {
      const DdgEdge& e = ddg.edge(ei);
      if (e.kind != DepKind::RegTrue) continue;
      maxRead = std::max<long long>(
          maxRead, sched.cycle[e.to] + static_cast<long long>(sched.ii) * e.distance);
    }
    if (maxRead >= 0) total += maxRead - sched.cycle[d];
  }
  return total;
}

namespace {

/// Legal issue window of `op` given everyone else's current times.
void windowOf(const Ddg& ddg, const ModuloSchedule& sched, int op, int& lo, int& hi) {
  lo = 0;
  hi = sched.cycle[op] + 4 * sched.ii;  // generous finite cap
  for (int ei : ddg.predEdges(op)) {
    const DdgEdge& e = ddg.edge(ei);
    if (e.from == op) continue;
    lo = std::max(lo, sched.cycle[e.from] + e.latency - sched.ii * e.distance);
  }
  for (int ei : ddg.succEdges(op)) {
    const DdgEdge& e = ddg.edge(ei);
    if (e.to == op) continue;
    hi = std::min(hi, sched.cycle[e.to] - e.latency + sched.ii * e.distance);
  }
}

}  // namespace

CompactionStats compactLifetimes(const Ddg& ddg, const MachineDesc& machine,
                                 std::span<const OpConstraint> constraints,
                                 ModuloSchedule& sched) {
  CompactionStats stats;
  stats.lifetimeBefore = totalLifetime(ddg, sched);
  if (ddg.numOps() == 0) {
    stats.lifetimeAfter = stats.lifetimeBefore;
    return stats;
  }

  // Mirror the schedule into an MRT so slot feasibility is exact.
  Mrt mrt(machine, sched.ii, ddg.numOps());
  for (int op = 0; op < ddg.numOps(); ++op)
    mrt.place(op, constraints[op], sched.cycle[op]);

  long long current = stats.lifetimeBefore;
  for (int pass = 0; pass < 4; ++pass) {
    bool improved = false;
    for (int op = 0; op < ddg.numOps(); ++op) {
      int lo, hi;
      windowOf(ddg, sched, op, lo, hi);
      if (lo >= hi) continue;
      const int curCycle = sched.cycle[op];
      int bestCycle = curCycle;
      long long bestTotal = current;
      mrt.remove(op, constraints[op]);
      for (int t = lo; t <= hi; ++t) {
        if (t == curCycle) continue;
        if (!mrt.canPlace(constraints[op], t)) continue;
        sched.cycle[op] = t;
        const long long lt = totalLifetime(ddg, sched);
        if (lt < bestTotal) {
          bestTotal = lt;
          bestCycle = t;
        }
      }
      sched.cycle[op] = bestCycle;
      mrt.place(op, constraints[op], bestCycle);
      if (bestCycle != curCycle) {
        ++stats.movedOps;
        current = bestTotal;
        improved = true;
      }
    }
    if (!improved) break;
  }

  // Times may have drifted; renormalize and restore the invariants.
  const int minCycle = *std::min_element(sched.cycle.begin(), sched.cycle.end());
  for (int& t : sched.cycle) t -= minCycle;
  assignFunctionalUnits(ddg, machine, constraints, sched);
  RAPT_ASSERT(findViolatedEdge(ddg, sched) < 0, "compaction broke the schedule");
  stats.lifetimeAfter = totalLifetime(ddg, sched);
  return stats;
}

}  // namespace rapt
