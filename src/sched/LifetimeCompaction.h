// Lifetime-sensitive schedule compaction.
//
// The paper contrasts its "standard" Rau scheduling with Llosa's Swing modulo
// scheduling, which "attempts to reduce register requirements", and notes
// this "could have an effect on the partitioning of registers" (§6.3). This
// post-pass captures the register-pressure half of that idea without
// replacing the scheduler: keeping II and all resource assignments fixed, it
// repeatedly moves single operations within their dependence slack to shrink
// value lifetimes —
//
//   * an operation is pushed LATER toward its consumers when that shortens
//     the ranges of the values it reads more than it stretches its own;
//   * symmetric pulls EARLIER are applied when the op's own result waits too
//     long for its first consumer.
//
// Shorter lifetimes mean smaller MVE unroll factors and lower MaxLive, which
// in turn means fewer allocation-driven II relaxations on small banks (see
// bench_ext_pressure).
#pragma once

#include "ddg/Ddg.h"
#include "sched/Schedule.h"

namespace rapt {

struct CompactionStats {
  int movedOps = 0;
  long long lifetimeBefore = 0;  ///< sum over values of (last read - def)
  long long lifetimeAfter = 0;
};

/// Compacts `sched` in place (II unchanged, legality preserved, modulo-slot
/// resource usage preserved by only ever moving ops in whole-II steps or
/// into verified-free slots). Returns what changed.
CompactionStats compactLifetimes(const Ddg& ddg, const MachineDesc& machine,
                                 std::span<const OpConstraint> constraints,
                                 ModuloSchedule& sched);

/// Sum of register lifetimes implied by a schedule: for every op with a
/// definition, max over its flow consumers of (t_use + II*distance) minus
/// t_def; ops with no consumer contribute 0.
[[nodiscard]] long long totalLifetime(const Ddg& ddg, const ModuloSchedule& sched);

}  // namespace rapt
