#include "sched/ListScheduler.h"

#include <algorithm>

#include "support/Assert.h"

namespace rapt {

ListSchedule listSchedule(const Ddg& ddg, const MachineDesc& machine,
                          std::span<const OpConstraint> constraints) {
  RAPT_ASSERT(static_cast<int>(constraints.size()) == ddg.numOps(),
              "one constraint per op required");
  const int n = ddg.numOps();
  ListSchedule out;
  out.cycle.assign(n, -1);
  out.fu.assign(n, -1);
  if (n == 0) {
    out.length = 0;
    return out;
  }

  // Heights over the acyclic (distance-0) subgraph.
  std::vector<int> height(n, 0);
  for (bool changed = true; changed;) {
    changed = false;
    for (const DdgEdge& e : ddg.edges()) {
      if (e.distance != 0) continue;
      if (height[e.to] + e.latency > height[e.from]) {
        height[e.from] = height[e.to] + e.latency;
        changed = true;
      }
    }
  }

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (height[a] != height[b]) return height[a] > height[b];
    return a < b;
  });

  // Per-cycle resource occupancy, grown on demand.
  std::vector<std::vector<int>> fuUsed;    // [cycle][cluster]
  std::vector<int> busUsed;                // [cycle]
  std::vector<std::vector<int>> portUsed;  // [cycle][bank]
  auto ensure = [&](int cycle) {
    while (static_cast<int>(fuUsed.size()) <= cycle) {
      fuUsed.emplace_back(machine.numClusters, 0);
      busUsed.push_back(0);
      portUsed.emplace_back(machine.numClusters, 0);
    }
  };
  auto fits = [&](const OpConstraint& c, int cycle) {
    ensure(cycle);
    if (c.usesCopyUnit) {
      return busUsed[cycle] < machine.busCount &&
             portUsed[cycle][c.srcBank] < machine.copyPortsPerBank &&
             portUsed[cycle][c.dstBank] < machine.copyPortsPerBank;
    }
    const int cluster = c.cluster >= 0 ? c.cluster : 0;
    return fuUsed[cycle][cluster] < machine.fusPerCluster;
  };

  // Repeatedly place the highest-priority op whose predecessors are done.
  std::vector<int> remaining = order;
  while (!remaining.empty()) {
    bool placedAny = false;
    for (auto it = remaining.begin(); it != remaining.end(); ++it) {
      const int op = *it;
      int estart = 0;
      bool ready = true;
      for (int ei : ddg.predEdges(op)) {
        const DdgEdge& e = ddg.edge(ei);
        if (e.distance != 0) continue;
        if (out.cycle[e.from] < 0) {
          ready = false;
          break;
        }
        estart = std::max(estart, out.cycle[e.from] + e.latency);
      }
      if (!ready) continue;
      int t = estart;
      while (!fits(constraints[op], t)) ++t;
      out.cycle[op] = t;
      const OpConstraint& c = constraints[op];
      if (c.usesCopyUnit) {
        ++busUsed[t];
        ++portUsed[t][c.srcBank];
        ++portUsed[t][c.dstBank];
      } else {
        const int cluster = c.cluster >= 0 ? c.cluster : 0;
        out.fu[op] = machine.firstFuOfCluster(cluster) + fuUsed[t][cluster];
        ++fuUsed[t][cluster];
      }
      remaining.erase(it);
      placedAny = true;
      break;
    }
    RAPT_ASSERT(placedAny, "list scheduler deadlock: distance-0 cycle in DDG");
  }

  for (int t : out.cycle) out.length = std::max(out.length, t + 1);
  return out;
}

}  // namespace rapt
