// Local list scheduling for straight-line (acyclic) code.
//
// Used for non-loop blocks when the framework is applied to whole functions
// (the paper's global claim, §1/§6.3) and as a reference point in tests. Only
// intra-iteration (distance-0) dependence edges apply; ops are placed
// greedily in decreasing height order at the earliest cycle with a free
// functional unit in their (optional) cluster.
#pragma once

#include <span>

#include "ddg/Ddg.h"
#include "sched/Schedule.h"

namespace rapt {

struct ListSchedule {
  std::vector<int> cycle;  ///< issue cycle per op
  std::vector<int> fu;     ///< functional unit per op
  int length = 0;          ///< total schedule length in cycles (last issue + 1)
};

/// Schedules the distance-0 subgraph of `ddg` on `machine` under
/// `constraints` (cluster anchoring; copy-unit copies use bus/port
/// resources). All resource limits are per concrete cycle.
[[nodiscard]] ListSchedule listSchedule(const Ddg& ddg, const MachineDesc& machine,
                                        std::span<const OpConstraint> constraints);

}  // namespace rapt
