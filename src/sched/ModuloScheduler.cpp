#include "sched/ModuloScheduler.h"

#include <algorithm>

#include "sched/Mrt.h"
#include "support/Assert.h"
#include "support/FaultInjection.h"

namespace rapt {

int constrainedResII(const MachineDesc& machine,
                     std::span<const OpConstraint> constraints) {
  // FU pressure is per CLUSTER; copy-port pressure is per BANK. The paper's
  // machines pair them 1:1 but the two index spaces are distinct (see
  // MachineDesc::numBanks), so they are counted and bounded separately.
  std::vector<int> fuCount(machine.numClusters, 0);
  int busCount = 0;
  std::vector<int> portCount(machine.numBanks(), 0);
  for (const OpConstraint& c : constraints) {
    if (c.usesCopyUnit) {
      RAPT_ASSERT(c.srcBank >= 0 && c.srcBank < machine.numBanks() &&
                      c.dstBank >= 0 && c.dstBank < machine.numBanks(),
                  "copy-unit copy references bank out of range");
      ++busCount;
      ++portCount[c.srcBank];
      ++portCount[c.dstBank];
    } else {
      ++fuCount[c.cluster >= 0 ? c.cluster : 0];
    }
  }
  int ii = 1;
  for (int cl = 0; cl < machine.numClusters; ++cl) {
    ii = std::max(ii, (fuCount[cl] + machine.fusPerCluster - 1) / machine.fusPerCluster);
  }
  for (int bank = 0; bank < machine.numBanks(); ++bank) {
    if (machine.copyPortsPerBank > 0) {
      ii = std::max(ii, (portCount[bank] + machine.copyPortsPerBank - 1) /
                            machine.copyPortsPerBank);
    } else {
      RAPT_ASSERT(portCount[bank] == 0, "copy-unit copy on machine without ports");
    }
  }
  if (busCount > 0) {
    RAPT_ASSERT(machine.busCount > 0, "copy-unit copy on machine without buses");
    ii = std::max(ii, (busCount + machine.busCount - 1) / machine.busCount);
  }
  return ii;
}

namespace {

class AttemptState {
 public:
  AttemptState(const Ddg& ddg, const MachineDesc& machine,
               std::span<const OpConstraint> constraints, int ii)
      : ddg_(ddg),
        constraints_(constraints),
        mrt_(machine, ii, ddg.numOps()),
        ii_(ii),
        time_(ddg.numOps(), -1),
        lastTried_(ddg.numOps(), -1),
        heights_(ddg.heights(ii)) {}

  /// Returns true if every op got scheduled within the budget.
  bool run(std::int64_t budget) {
    std::vector<int> worklist(ddg_.numOps());
    for (int i = 0; i < ddg_.numOps(); ++i) worklist[i] = i;
    while (!worklist.empty()) {
      if (budget-- <= 0) return false;
      ++placements_;
      // Highest height first; op index breaks ties deterministically.
      auto best = std::min_element(worklist.begin(), worklist.end(),
                                   [&](int a, int b) {
                                     if (heights_[a] != heights_[b])
                                       return heights_[a] > heights_[b];
                                     return a < b;
                                   });
      const int op = *best;
      worklist.erase(best);
      if (!scheduleOp(op, worklist)) return false;
    }
    return true;
  }

  [[nodiscard]] const std::vector<int>& times() const { return time_; }

  /// Placement steps this attempt consumed (the deterministic work measure).
  [[nodiscard]] std::int64_t placements() const { return placements_; }

 private:
  /// Returns false when `op` cannot be placed even after eviction — e.g. a
  /// constraint no cycle can satisfy (a rejected same-bank copy-unit copy) or
  /// an eviction that cannot free shared bus/port resources. The caller turns
  /// that into a clean attempt failure (the scheduler bumps II) instead of
  /// aborting the process.
  [[nodiscard]] bool scheduleOp(int op, std::vector<int>& worklist) {
    const int estart = earliestStart(op);
    // Try the II-wide window of candidate issue cycles.
    for (int t = estart; t < estart + ii_; ++t) {
      if (mrt_.canPlace(constraints_[op], t)) {
        placeAt(op, t, worklist);
        return true;
      }
    }
    // Forced placement (Rau): pick a cycle that guarantees forward progress,
    // eject whatever blocks it.
    int t = estart;
    if (lastTried_[op] >= 0 && t <= lastTried_[op]) t = lastTried_[op] + 1;
    for (int victim : mrt_.conflictingOps(op, constraints_[op], t)) unschedule(victim, worklist);
    if (!mrt_.canPlace(constraints_[op], t)) return false;
    placeAt(op, t, worklist);
    return true;
  }

  void placeAt(int op, int t, std::vector<int>& worklist) {
    mrt_.place(op, constraints_[op], t);
    time_[op] = t;
    lastTried_[op] = t;
    // Eject scheduled ops whose dependence constraints the new placement
    // violates.
    for (int ei : ddg_.succEdges(op)) {
      const DdgEdge& e = ddg_.edge(ei);
      if (e.to == op) continue;
      if (time_[e.to] >= 0 && time_[e.to] < t + e.latency - ii_ * e.distance)
        unschedule(e.to, worklist);
    }
    for (int ei : ddg_.predEdges(op)) {
      const DdgEdge& e = ddg_.edge(ei);
      if (e.from == op) continue;
      if (time_[e.from] >= 0 && t < time_[e.from] + e.latency - ii_ * e.distance)
        unschedule(e.from, worklist);
    }
  }

  void unschedule(int op, std::vector<int>& worklist) {
    if (time_[op] < 0) return;
    mrt_.remove(op, constraints_[op]);
    time_[op] = -1;
    worklist.push_back(op);
  }

  [[nodiscard]] int earliestStart(int op) const {
    int estart = 0;
    for (int ei : ddg_.predEdges(op)) {
      const DdgEdge& e = ddg_.edge(ei);
      if (e.from == op) continue;  // self-dependence bounds II, not the slot
      if (time_[e.from] < 0) continue;
      estart = std::max(estart, time_[e.from] + e.latency - ii_ * e.distance);
    }
    return estart;
  }

  const Ddg& ddg_;
  std::span<const OpConstraint> constraints_;
  Mrt mrt_;
  int ii_;
  std::vector<int> time_;
  std::vector<int> lastTried_;
  std::vector<int> heights_;
  std::int64_t placements_ = 0;
};

}  // namespace

void assignFunctionalUnits(const Ddg& ddg, const MachineDesc& machine,
                           std::span<const OpConstraint> constraints,
                           ModuloSchedule& sched) {
  sched.fu.assign(ddg.numOps(), -1);
  // occupancy[slot][cluster] -> next free unit within the cluster
  std::vector<int> nextUnit(static_cast<std::size_t>(sched.ii) * machine.numClusters, 0);
  // Deterministic order: by cycle then op index.
  std::vector<int> order(ddg.numOps());
  for (int i = 0; i < ddg.numOps(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (sched.cycle[a] != sched.cycle[b]) return sched.cycle[a] < sched.cycle[b];
    return a < b;
  });
  for (int op : order) {
    const OpConstraint& c = constraints[op];
    if (c.usesCopyUnit) continue;
    const int cluster = c.cluster >= 0 ? c.cluster : 0;
    const int slot = sched.cycle[op] % sched.ii;
    int& next = nextUnit[static_cast<std::size_t>(slot) * machine.numClusters + cluster];
    RAPT_ASSERT(next < machine.fusPerCluster, "FU oversubscription");
    sched.fu[op] = machine.firstFuOfCluster(cluster) + next;
    ++next;
  }
}

ModuloSchedulerResult moduloSchedule(const Ddg& ddg, const MachineDesc& machine,
                                     std::span<const OpConstraint> constraints,
                                     const ModuloSchedulerOptions& options) {
  RAPT_ASSERT(static_cast<int>(constraints.size()) == ddg.numOps(),
              "one constraint per op required");
  ModuloSchedulerResult result;
  result.resII = constrainedResII(machine, constraints);
  result.recII = ddg.recII();
  if (ddg.numOps() == 0) {
    result.success = true;
    result.schedule.ii = 1;
    return result;
  }

  // Fault-injection site (docs/robustness.md): a StageFail draw reports a
  // clean capacity-style failure, Throw exercises the containment layer, and
  // Corrupt is applied to the finished schedule below — after the internal
  // legality assert, so only the *independent* oracles can catch it.
  FaultKind fault = FaultKind::None;
  if (FaultInjector* fi = FaultInjector::active()) {
    fault = fi->draw(FaultSite::Scheduler);
    if (fault == FaultKind::StageFail) {
      fi->recordInjected(FaultSite::Scheduler);
      return result;
    }
    if (fault == FaultKind::Throw) {
      fi->recordInjected(FaultSite::Scheduler);
      throw FaultInjected("scheduler");
    }
  }

  const int firstII = std::max(result.minII(), options.startII);
  for (int ii = firstII; ii <= options.maxII; ++ii) {
    if (!ddg.feasibleII(ii)) continue;
    std::int64_t budget = static_cast<std::int64_t>(options.budgetRatio) * ddg.numOps();
    if (options.maxPlacements > 0) {
      const std::int64_t remaining = options.maxPlacements - result.placements;
      if (remaining <= 0) {
        result.budgetExhausted = true;
        return result;
      }
      budget = std::min(budget, remaining);
    }
    AttemptState attempt(ddg, machine, constraints, ii);
    const bool placed = attempt.run(budget);
    result.placements += attempt.placements();
    if (!placed) {
      if (options.maxPlacements > 0 && result.placements >= options.maxPlacements) {
        result.budgetExhausted = true;
        return result;
      }
      continue;
    }
    ModuloSchedule sched;
    sched.ii = ii;
    sched.cycle = attempt.times();
    // Normalize: the earliest op issues at cycle 0.
    const int minCycle = *std::min_element(sched.cycle.begin(), sched.cycle.end());
    for (int& t : sched.cycle) t -= minCycle;
    assignFunctionalUnits(ddg, machine, constraints, sched);
    RAPT_ASSERT(findViolatedEdge(ddg, sched) < 0, "scheduler produced illegal schedule");
    if (fault == FaultKind::Corrupt) {
      // Shift one op a full II later: same modulo slot and FU occupancy (so
      // downstream emission stays structurally sound), but dependence
      // latencies and cross-iteration overlap change — exactly the class of
      // bug ScheduleVerifier / the differential simulation exist to catch.
      FaultInjector* fi = FaultInjector::active();
      sched.cycle[static_cast<std::size_t>(fi->index(ddg.numOps()))] += ii;
      fi->recordInjected(FaultSite::Scheduler);
    }
    result.success = true;
    result.schedule = std::move(sched);
    return result;
  }
  return result;
}

int findViolatedEdge(const Ddg& ddg, const ModuloSchedule& sched) {
  for (int i = 0; i < static_cast<int>(ddg.edges().size()); ++i) {
    const DdgEdge& e = ddg.edge(i);
    if (sched.cycle[e.to] < sched.cycle[e.from] + e.latency - sched.ii * e.distance)
      return i;
  }
  return -1;
}

}  // namespace rapt
