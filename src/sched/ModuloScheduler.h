// Iterative modulo scheduling, after Rau (MICRO-27, 1994) — the software
// pipelining method the paper's experiments use ("our implementation is based
// upon Rau's", §2).
//
// Given a loop body, its dependence graph, a machine, and per-op issue
// constraints (cluster anchoring and copy-unit resource usage produced by the
// partitioning pass), the scheduler finds the smallest initiation interval II
// at which all operations can be placed:
//
//   * candidate IIs start at max(ResII, RecII) and increase on failure;
//   * within one II, ops are scheduled in decreasing height order (longest
//     dependence path to a sink, with II-scaled distances);
//   * each op is tried in the II-wide window from its earliest start; if no
//     slot has resources, it is force-placed and the conflicting ops (resource
//     or dependence) are ejected and rescheduled;
//   * a budget of `budgetRatio * numOps` placements bounds the iteration.
#pragma once

#include <span>

#include "ddg/Ddg.h"
#include "sched/Schedule.h"

namespace rapt {

struct ModuloSchedulerOptions {
  int maxII = 1024;     ///< give up above this II
  int budgetRatio = 8;  ///< placement budget per II attempt, x numOps
  int startII = 0;      ///< first II to try when above minII (0 = use minII);
                        ///< used to relax register pressure after a failed
                        ///< bank allocation
  std::int64_t maxPlacements = 0;  ///< cumulative placement budget across ALL
                                   ///< II attempts of this call (0 = unbounded).
                                   ///< Exhaustion sets budgetExhausted so the
                                   ///< pipeline can classify the loop as a
                                   ///< Timeout instead of hanging a worker.
};

struct ModuloSchedulerResult {
  bool success = false;
  bool budgetExhausted = false;  ///< stopped by options.maxPlacements
  ModuloSchedule schedule;  ///< valid iff success
  int resII = 0;            ///< resource-constrained lower bound (with constraints)
  int recII = 0;            ///< recurrence-constrained lower bound
  std::int64_t placements = 0;  ///< placement steps consumed (deterministic
                                ///< work measure; summed into PipelineTrace)
  [[nodiscard]] int minII() const { return resII > recII ? resII : recII; }
};

/// Resource-constrained minimum II under issue constraints: functional-unit
/// pressure per cluster, bus pressure, and copy-port pressure per bank.
[[nodiscard]] int constrainedResII(const MachineDesc& machine,
                                   std::span<const OpConstraint> constraints);

/// Schedules `loop` (whose dependence graph is `ddg`) on `machine`.
/// `constraints` must have one entry per body op; pass all-default entries
/// for the unpartitioned (monolithic) ideal schedule.
[[nodiscard]] ModuloSchedulerResult moduloSchedule(
    const Ddg& ddg, const MachineDesc& machine,
    std::span<const OpConstraint> constraints,
    const ModuloSchedulerOptions& options = {});

/// Checks that `sched` satisfies every dependence edge of `ddg`; returns the
/// index of a violated edge, or -1 if the schedule is legal. Used by tests
/// and by the pipeline's internal self-check.
[[nodiscard]] int findViolatedEdge(const Ddg& ddg, const ModuloSchedule& sched);

/// (Re)assigns concrete functional units from scratch: ops sharing a modulo
/// slot and cluster get distinct units in deterministic order; copy-unit
/// copies keep fu == -1. Requires per-slot occupancy within capacity.
void assignFunctionalUnits(const Ddg& ddg, const MachineDesc& machine,
                           std::span<const OpConstraint> constraints,
                           ModuloSchedule& sched);

}  // namespace rapt
