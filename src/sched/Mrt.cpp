#include "sched/Mrt.h"

#include <algorithm>

namespace rapt {

Mrt::Mrt(const MachineDesc& machine, int ii, int numOps)
    : machine_(machine),
      ii_(ii),
      numClusters_(machine.numClusters),
      numBanks_(machine.numBanks()) {
  RAPT_ASSERT(ii > 0, "MRT needs positive II");
  fuUse_.resize(static_cast<std::size_t>(ii) * numClusters_);
  busUse_.resize(ii);
  portUse_.resize(static_cast<std::size_t>(ii) * numBanks_);
  placements_.resize(numOps);
}

int Mrt::effectiveCluster(const OpConstraint& c) const {
  if (c.cluster >= 0) {
    RAPT_ASSERT(c.cluster < numClusters_, "cluster out of range");
    return c.cluster;
  }
  RAPT_ASSERT(numClusters_ == 1,
              "unconstrained operation on a clustered machine; partitioning "
              "must assign every op a cluster");
  return 0;
}

bool Mrt::canPlace(const OpConstraint& c, int cycle) const {
  const int slot = slotOf(cycle);
  if (c.usesCopyUnit) {
    RAPT_ASSERT(machine_.copyModel == CopyModel::CopyUnit,
                "copy-unit placement on a machine without copy units");
    // Same-bank copy-unit copies are REJECTED, never placed: they would have
    // to charge two ports of one bank against a single canPlace test, letting
    // place() overshoot the port limit. CopyInserter only creates cross-bank
    // copies, so a same-bank constraint is unplaceable and the scheduler
    // fails cleanly (docs/verification.md "Same-bank copies").
    if (c.srcBank == c.dstBank) return false;
    if (static_cast<int>(busUse_[slot].size()) >= machine_.busCount) return false;
    if (static_cast<int>(portCell(slot, c.srcBank).size()) >= machine_.copyPortsPerBank)
      return false;
    if (static_cast<int>(portCell(slot, c.dstBank).size()) >= machine_.copyPortsPerBank)
      return false;
    return true;
  }
  const int cluster = effectiveCluster(c);
  return static_cast<int>(fuCell(slot, cluster).size()) < machine_.fusPerCluster;
}

void Mrt::place(int op, const OpConstraint& c, int cycle) {
  RAPT_ASSERT(canPlace(c, cycle), "placing op without resources");
  RAPT_ASSERT(!placements_[op].placed, "op already placed");
  const int slot = slotOf(cycle);
  if (c.usesCopyUnit) {
    busUse_[slot].push_back(op);
    portCell(slot, c.srcBank).push_back(op);
    portCell(slot, c.dstBank).push_back(op);
  } else {
    fuCell(slot, effectiveCluster(c)).push_back(op);
  }
  placements_[op] = {true, slot};
}

void Mrt::remove(int op, const OpConstraint& c) {
  if (!placements_[op].placed) return;
  const int slot = placements_[op].slot;
  auto erase = [op](Cell& cell) {
    cell.erase(std::remove(cell.begin(), cell.end(), op), cell.end());
  };
  if (c.usesCopyUnit) {
    erase(busUse_[slot]);
    erase(portCell(slot, c.srcBank));
    erase(portCell(slot, c.dstBank));
  } else {
    erase(fuCell(slot, effectiveCluster(c)));
  }
  placements_[op].placed = false;
}

std::vector<int> Mrt::conflictingOps(int self, const OpConstraint& c, int cycle) const {
  const int slot = slotOf(cycle);
  std::vector<int> out;
  auto collect = [&](const Cell& cell) {
    for (int op : cell)
      if (op != self && std::find(out.begin(), out.end(), op) == out.end())
        out.push_back(op);
  };
  if (c.usesCopyUnit) {
    if (static_cast<int>(busUse_[slot].size()) >= machine_.busCount)
      collect(busUse_[slot]);
    if (static_cast<int>(portCell(slot, c.srcBank).size()) >= machine_.copyPortsPerBank)
      collect(portCell(slot, c.srcBank));
    if (static_cast<int>(portCell(slot, c.dstBank).size()) >= machine_.copyPortsPerBank)
      collect(portCell(slot, c.dstBank));
  } else {
    const Cell& cell = fuCell(slot, effectiveCluster(c));
    if (static_cast<int>(cell.size()) >= machine_.fusPerCluster) collect(cell);
  }
  return out;
}

}  // namespace rapt
