// Modulo reservation table (MRT).
//
// Tracks, for each of the II modulo slots, how much of each machine resource
// is committed: functional-unit slots per cluster, copy buses, and copy ports
// per register bank (the copy-unit model's reserved hardware). Operations can
// be placed and later removed (the iterative scheduler ejects conflicting
// operations when it force-places a high-priority one).
#pragma once

#include <vector>

#include "machine/MachineDesc.h"
#include "sched/Schedule.h"

namespace rapt {

class Mrt {
 public:
  Mrt(const MachineDesc& machine, int ii, int numOps);

  /// Can `op` (with its constraint) issue at `cycle`?
  [[nodiscard]] bool canPlace(const OpConstraint& c, int cycle) const;

  /// Commit `op` at `cycle`. Requires canPlace.
  void place(int op, const OpConstraint& c, int cycle);

  /// Release the resources `op` held. No-op if not placed.
  void remove(int op, const OpConstraint& c);

  /// Ops (other than `self`) that hold any resource `c` needs at `cycle`.
  /// Used to choose eviction victims on forced placement.
  [[nodiscard]] std::vector<int> conflictingOps(int self, const OpConstraint& c,
                                                int cycle) const;

  [[nodiscard]] int ii() const { return ii_; }

 private:
  struct Placement {
    bool placed = false;
    int slot = 0;
  };

  /// Occupants of one (slot, resource) cell, as op indices.
  using Cell = std::vector<int>;

  [[nodiscard]] int slotOf(int cycle) const { return ((cycle % ii_) + ii_) % ii_; }
  [[nodiscard]] const Cell& fuCell(int slot, int cluster) const {
    return fuUse_[slot * numClusters_ + cluster];
  }
  [[nodiscard]] Cell& fuCell(int slot, int cluster) {
    return fuUse_[slot * numClusters_ + cluster];
  }
  [[nodiscard]] const Cell& portCell(int slot, int bank) const {
    RAPT_ASSERT(bank >= 0 && bank < numBanks_, "bank out of range");
    return portUse_[slot * numBanks_ + bank];
  }
  [[nodiscard]] Cell& portCell(int slot, int bank) {
    RAPT_ASSERT(bank >= 0 && bank < numBanks_, "bank out of range");
    return portUse_[slot * numBanks_ + bank];
  }

  /// The cluster an unconstrained op issues in: only legal on a monolithic
  /// machine, where there is a single cluster.
  [[nodiscard]] int effectiveCluster(const OpConstraint& c) const;

  const MachineDesc& machine_;
  int ii_;
  int numClusters_;
  int numBanks_;
  std::vector<Cell> fuUse_;    ///< [slot][cluster]
  std::vector<Cell> busUse_;   ///< [slot]
  std::vector<Cell> portUse_;  ///< [slot][bank]
  std::vector<Placement> placements_;
};

}  // namespace rapt
