#include "sched/PipelinedCode.h"

#include <algorithm>

#include "support/Assert.h"
#include "support/FaultInjection.h"

namespace rapt {
namespace {

/// floor division for possibly-negative numerators.
int floorDiv(int a, int b) {
  RAPT_ASSERT(b > 0, "floorDiv by non-positive");
  return (a >= 0) ? a / b : -((-a + b - 1) / b);
}

/// Fault-injection corruption of the emitted stream (docs/robustness.md):
/// make one FLOAT-producing instance compute a different value — bump an
/// FConst immediate or swap the operands of a non-commutative float op. Only
/// float dataflow is touched so the corruption can change *results* (which
/// the differential simulation catches) but never an address (which would
/// trip the simulator's guard-band assert instead of an oracle).
void corruptStream(PipelinedCode& code, FaultInjector& fi) {
  struct Target {
    std::size_t instr;
    std::size_t slot;
  };
  std::vector<Target> consts, swaps;
  for (std::size_t i = 0; i < code.instrs.size(); ++i) {
    for (std::size_t s = 0; s < code.instrs[i].ops.size(); ++s) {
      const Opcode op = code.instrs[i].ops[s].op.op;
      if (op == Opcode::FConst) consts.push_back({i, s});
      if (op == Opcode::FSub || op == Opcode::FDiv) swaps.push_back({i, s});
    }
  }
  if (!consts.empty()) {
    const Target t = consts[static_cast<std::size_t>(
        fi.index(static_cast<std::int64_t>(consts.size())))];
    code.instrs[t.instr].ops[t.slot].op.fimm += 1.0;
    fi.recordInjected(FaultSite::Emitter);
  } else if (!swaps.empty()) {
    const Target t = swaps[static_cast<std::size_t>(
        fi.index(static_cast<std::int64_t>(swaps.size())))];
    Operation& op = code.instrs[t.instr].ops[t.slot].op;
    std::swap(op.src[0], op.src[1]);
    fi.recordInjected(FaultSite::Emitter);
  }
  // No float payload to corrupt: the fault is not applied (and not counted).
}

}  // namespace

std::vector<VirtReg> PipelinedCode::allNames() const {
  std::vector<VirtReg> names;
  for (const VliwInstr& in : instrs) {
    for (const EmittedOp& eo : in.ops) {
      if (eo.op.def.isValid()) names.push_back(eo.op.def);
      for (VirtReg s : eo.op.srcs()) names.push_back(s);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

VirtReg PipelinedCode::originalOf(VirtReg name) const {
  auto it = originOf.find(name.key());
  return it == originOf.end() ? name : it->second.orig;
}

PipelinedCode emitPipelinedCode(const Loop& loop, const Ddg& ddg,
                                const ModuloSchedule& sched, std::int64_t trip,
                                const LatencyTable& lat) {
  RAPT_ASSERT(sched.numOps() == loop.size(), "schedule does not match loop");
  RAPT_ASSERT(trip >= 1, "trip count must be positive");
  const int ii = sched.ii;

  PipelinedCode code;
  code.ii = ii;
  code.trip = trip;
  code.stageCount = sched.stageCount();

  // --- Determine q (number of rotating names) per body-defined value. ---
  std::vector<int> q(loop.size(), 1);
  for (int d = 0; d < loop.size(); ++d) {
    if (!loop.body[d].def.isValid()) continue;
    int maxRead = -1;
    int defLat = 0;
    for (int ei : ddg.succEdges(d)) {
      const DdgEdge& e = ddg.edge(ei);
      if (e.kind != DepKind::RegTrue) continue;
      maxRead = std::max(maxRead, e.distance * ii + sched.cycle[e.to]);
      defLat = e.latency;
    }
    if (maxRead < 0) continue;  // dead definition
    q[d] = std::max(1, floorDiv(maxRead - sched.cycle[d] - defLat, ii) + 1);
    code.maxUnroll = std::max(code.maxUnroll, q[d]);
  }

  // --- Allocate MVE names. ---
  std::uint32_t nextIdx[2] = {loop.freshReg(RegClass::Int).index(),
                              loop.freshReg(RegClass::Flt).index()};
  for (int d = 0; d < loop.size(); ++d) {
    const VirtReg v = loop.body[d].def;
    if (!v.isValid()) continue;
    std::vector<VirtReg> names;
    if (q[d] == 1) {
      names.push_back(v);
      code.originOf[v.key()] = {v, 0};
    } else {
      for (int phase = 0; phase < q[d]; ++phase) {
        const VirtReg name(v.cls(), nextIdx[static_cast<int>(v.cls())]++);
        names.push_back(name);
        code.originOf[name.key()] = {v, phase};
      }
    }
    code.namesOf[v.key()] = std::move(names);
  }
  // Invariants map to themselves.
  for (VirtReg inv : loop.invariants()) {
    code.namesOf[inv.key()] = {inv};
    code.originOf[inv.key()] = {inv, 0};
  }

  auto nameFor = [&](VirtReg v, std::int64_t phase) -> VirtReg {
    const auto& names = code.namesOf.at(v.key());
    const std::int64_t m = static_cast<std::int64_t>(names.size());
    return names[static_cast<std::size_t>(((phase % m) + m) % m)];
  };

  // --- Emit the full issue stream. ---
  const int horizon = sched.horizon();
  const std::int64_t totalCycles = (trip - 1) * ii + horizon + 1;
  code.instrs.resize(static_cast<std::size_t>(totalCycles));

  for (std::int64_t iter = 0; iter < trip; ++iter) {
    for (int o = 0; o < loop.size(); ++o) {
      const Operation& body = loop.body[o];
      EmittedOp eo;
      eo.op = body;
      eo.fu = sched.fu[o];
      eo.iteration = static_cast<int>(iter);
      eo.bodyIndex = o;
      if (body.def.isValid()) eo.op.def = nameFor(body.def, iter);
      for (int s = 0; s < body.numSrcs(); ++s) {
        const VirtReg src = body.src[s];
        const std::optional<int> dp = loop.defPos(src);
        if (dp) {
          const int carry = (*dp < o) ? 0 : 1;
          eo.op.src[s] = nameFor(src, iter - carry);
        }
      }
      code.instrs[static_cast<std::size_t>(iter * ii + sched.cycle[o])].ops.push_back(
          std::move(eo));
    }
  }

  // --- Steady-state window. ---
  if (trip >= code.stageCount - 1 + code.maxUnroll) {
    code.kernelStart = (code.stageCount - 1) * ii;
    code.kernelLength = code.maxUnroll * ii;
  }

  // --- Required initial register contents. ---
  // A name needs its value's live-in exactly when some read happens before
  // the first write to the name has LANDED (writes land at issue + latency;
  // a read in the in-flight window still sees the initial contents).
  {
    std::unordered_map<std::uint32_t, std::int64_t> firstLand;
    std::unordered_map<std::uint32_t, std::int64_t> firstRead;
    for (std::int64_t c = 0; c < static_cast<std::int64_t>(code.instrs.size()); ++c) {
      for (const EmittedOp& eo : code.instrs[static_cast<std::size_t>(c)].ops) {
        for (VirtReg s : eo.op.srcs()) firstRead.try_emplace(s.key(), c);
        if (eo.op.def.isValid()) {
          const std::int64_t land = c + lat.of(eo.op.op);
          auto [it, fresh] = firstLand.try_emplace(eo.op.def.key(), land);
          if (!fresh) it->second = std::min(it->second, land);
        }
      }
    }
    auto initOf = [&](VirtReg orig) {
      for (const LiveInValue& lv : loop.liveInValues) {
        if (lv.reg == orig) return lv;
      }
      LiveInValue zero;
      zero.reg = orig;
      return zero;
    };
    for (const auto& [origKey, names] : code.namesOf) {
      const LiveInValue base = initOf(VirtReg::fromKey(origKey));
      for (VirtReg name : names) {
        const auto read = firstRead.find(name.key());
        if (read == firstRead.end()) continue;  // never read
        const auto land = firstLand.find(name.key());
        if (land != firstLand.end() && land->second <= read->second) continue;
        LiveInValue lv = base;
        lv.reg = name;
        code.nameInits.push_back(lv);
      }
    }
  }

  // Fault-injection site. The emitter has no clean failure channel, so a
  // StageFail draw degrades to Corrupt; either way the oracles downstream
  // (verifyStream + differential simulation) must catch what changed.
  if (FaultInjector* fi = FaultInjector::active()) {
    const FaultKind fault = fi->draw(FaultSite::Emitter);
    if (fault == FaultKind::Throw) {
      fi->recordInjected(FaultSite::Emitter);
      throw FaultInjected("emitter");
    }
    if (fault == FaultKind::Corrupt || fault == FaultKind::StageFail) {
      corruptStream(code, *fi);
    }
  }
  return code;
}

}  // namespace rapt
