// Pipelined code emission: turns a modulo schedule into an executable VLIW
// instruction stream with modulo variable expansion (MVE).
//
// A value whose lifetime exceeds II would be clobbered by the next
// iteration's definition before its last read; MVE gives such a value q
// rotating names (q = number of concurrently live instances) and renames
// per-iteration uses/defs accordingly (Lam, PLDI'88). Because we emit the
// complete issue stream for a concrete trip count — prologue, steady state,
// and drain are all just slices of the same stream — each value can use
// exactly its own q names with no kernel-unroll alignment (no lcm problem);
// the steady-state window is still exposed via kernelStart/kernelLength for
// inspection and register allocation.
//
// Iteration i issues body op o at cycle i*II + t(o). Name selection:
//   * def of v at iteration i        -> v[i mod q_v]
//   * use of v with carry distance d -> v[(i-d) mod q_v]
// Iteration-0 carried uses read v[q_v - 1], which the simulator initializes
// to v's live-in value; the first write of that name lands strictly after
// that read (guaranteed by the choice of q_v).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ddg/Ddg.h"
#include "ir/Loop.h"
#include "sched/Schedule.h"

namespace rapt {

struct EmittedOp {
  Operation op;        ///< operands renamed to MVE names
  int fu = -1;         ///< functional unit; -1 for copy-unit copies
  int iteration = 0;   ///< source loop iteration
  int bodyIndex = 0;   ///< source body op index
};

struct VliwInstr {
  std::vector<EmittedOp> ops;
};

struct PipelinedCode {
  int ii = 0;
  int stageCount = 0;
  int maxUnroll = 1;        ///< max q over all values (the paper-world kernel unroll)
  std::int64_t trip = 0;
  std::vector<VliwInstr> instrs;  ///< the complete issue stream

  /// Steady-state kernel window [kernelStart, kernelStart + kernelLength);
  /// kernelLength == 0 when the trip count is too small for a steady state.
  int kernelStart = 0;
  int kernelLength = 0;

  /// MVE names per original register (VirtReg::key() -> rotating names).
  /// Registers with a single name map to themselves.
  std::unordered_map<std::uint32_t, std::vector<VirtReg>> namesOf;

  /// Reverse map: name key -> (original register, phase).
  struct NameOrigin {
    VirtReg orig;
    int phase = 0;
  };
  std::unordered_map<std::uint32_t, NameOrigin> originOf;

  /// Initial register-file contents the stream relies on: one entry per name
  /// that is READ before its first write (loop invariants and the carried
  /// phase of rotating values), carrying the original value's live-in. The
  /// simulator applies exactly these — names first written before any read
  /// need no initialization, which is what makes the list safe to carry
  /// through physical register assignment (two read-first names always
  /// interfere, hence never share a physical register).
  std::vector<LiveInValue> nameInits;

  /// All distinct names appearing in the stream (deterministic order).
  [[nodiscard]] std::vector<VirtReg> allNames() const;

  /// The original register behind a (possibly renamed) operand.
  [[nodiscard]] VirtReg originalOf(VirtReg name) const;
};

/// Emits the full issue stream of `sched` for `trip` iterations of `loop`.
/// `ddg` must be the graph the schedule was produced from (its register
/// flow edges determine value lifetimes and hence q); `lat` supplies write
/// landing times for the initial-contents analysis (a read needs the initial
/// value exactly when no write to the name has LANDED yet — a write may well
/// have issued).
[[nodiscard]] PipelinedCode emitPipelinedCode(const Loop& loop, const Ddg& ddg,
                                              const ModuloSchedule& sched,
                                              std::int64_t trip,
                                              const LatencyTable& lat = {});

}  // namespace rapt
