#include "sched/RolledPipeline.h"

#include <numeric>

#include "support/Assert.h"

namespace rapt {
namespace {

/// Executable equality: same operation, operands and functional unit. The
/// provenance fields (iteration, bodyIndex) intentionally differ between
/// kernel repetitions.
bool sameIssue(const EmittedOp& a, const EmittedOp& b) {
  return a.fu == b.fu && a.op.op == b.op.op && a.op.def == b.op.def &&
         a.op.src == b.op.src && a.op.imm == b.op.imm && a.op.fimm == b.op.fimm &&
         a.op.array == b.op.array;
}

bool sameInstr(const VliwInstr& a, const VliwInstr& b) {
  if (a.ops.size() != b.ops.size()) return false;
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    if (!sameIssue(a.ops[i], b.ops[i])) return false;
  }
  return true;
}

}  // namespace

RolledPipeline rollPipeline(const PipelinedCode& code) {
  RolledPipeline out;
  out.ii = code.ii;
  out.stageCount = code.stageCount;

  // The kernel period: lcm of every value's rotating-name count.
  long long unroll = 1;
  for (const auto& [key, names] : code.namesOf) {
    unroll = std::lcm(unroll, static_cast<long long>(names.size()));
    if (unroll > 64) break;  // degenerate; fall back to prologue-only
  }
  out.unrollFactor = static_cast<int>(unroll);

  const std::int64_t flatLen = static_cast<std::int64_t>(code.instrs.size());
  const std::int64_t kStart = static_cast<std::int64_t>(code.stageCount - 1) * code.ii;
  const std::int64_t period = unroll * code.ii;

  if (unroll > 64 || kStart + period > flatLen) {
    out.prologue = code.instrs;  // no steady state worth rolling
    return out;
  }

  out.kernel.assign(code.instrs.begin() + kStart,
                    code.instrs.begin() + kStart + period);
  out.kernelRepeats = 1;
  std::int64_t cursor = kStart + period;
  while (cursor + period <= flatLen) {
    bool equal = true;
    for (std::int64_t i = 0; i < period && equal; ++i) {
      equal = sameInstr(code.instrs[static_cast<std::size_t>(cursor + i)],
                        out.kernel[static_cast<std::size_t>(i)]);
    }
    if (!equal) break;
    ++out.kernelRepeats;
    cursor += period;
  }

  out.prologue.assign(code.instrs.begin(), code.instrs.begin() + kStart);
  out.epilogue.assign(code.instrs.begin() + cursor, code.instrs.end());
  RAPT_ASSERT(out.flatLength() == flatLen, "rolled decomposition lost cycles");
  return out;
}

std::vector<VliwInstr> reconstructFlat(const RolledPipeline& rolled) {
  std::vector<VliwInstr> flat = rolled.prologue;
  for (std::int64_t k = 0; k < rolled.kernelRepeats; ++k)
    flat.insert(flat.end(), rolled.kernel.begin(), rolled.kernel.end());
  flat.insert(flat.end(), rolled.epilogue.begin(), rolled.epilogue.end());
  return flat;
}

}  // namespace rapt
