// Rolled software-pipeline form: explicit prelude / kernel / postlude.
//
// "After a schedule has been found, code to set up the software pipeline
// (prelude) and drain the pipeline (postlude) are added" (§2). The flat
// stream emitted by PipelinedCode is ideal for simulation and allocation; a
// real code generator emits the ROLLED form — a prologue block, one kernel
// block executed in a counted loop, and an epilogue block. This module
// extracts that form from the flat stream.
//
// The kernel must repeat *exactly* (same opcodes, same MVE names, same
// functional units), so its period is lcm(q_v) * II cycles — the classic
// kernel-unroll requirement of modulo variable expansion: a value with q
// rotating names returns to the same name only after a multiple of q
// iterations. (The flat emitter avoids the lcm by never rolling; this module
// pays it to produce loopable code.)
//
// For a given trip count the decomposition satisfies
//     flat == prologue ++ kernel x kernelRepeats ++ epilogue
// which reconstructFlat() rebuilds and tests verify by simulating the
// reconstruction against the sequential reference.
#pragma once

#include "sched/PipelinedCode.h"

namespace rapt {

struct RolledPipeline {
  int ii = 0;
  int stageCount = 0;
  int unrollFactor = 0;  ///< kernel covers this many iterations (lcm of q)
  std::int64_t kernelRepeats = 0;
  std::vector<VliwInstr> prologue;
  std::vector<VliwInstr> kernel;  ///< unrollFactor * ii instructions
  std::vector<VliwInstr> epilogue;

  /// Total instruction count when unrolled back to a flat stream.
  [[nodiscard]] std::int64_t flatLength() const {
    return static_cast<std::int64_t>(prologue.size()) +
           kernelRepeats * static_cast<std::int64_t>(kernel.size()) +
           static_cast<std::int64_t>(epilogue.size());
  }
};

/// Rolls `code` up. Always succeeds: when the trip count is too small for a
/// steady state (or no full kernel period fits), everything lands in the
/// prologue and kernelRepeats == 0.
[[nodiscard]] RolledPipeline rollPipeline(const PipelinedCode& code);

/// Concatenates prologue + kernelRepeats x kernel + epilogue back into a
/// flat stream (the exact execution the rolled form denotes).
[[nodiscard]] std::vector<VliwInstr> reconstructFlat(const RolledPipeline& rolled);

}  // namespace rapt
