// Schedule data types shared by the schedulers and downstream passes.
#pragma once

#include <vector>

#include "support/Assert.h"

namespace rapt {

/// Per-operation issue constraints handed to the scheduler by the
/// partitioning pass. Defaults describe the pre-partitioning (monolithic)
/// state: any functional unit, no copy-unit resources.
struct OpConstraint {
  int cluster = -1;          ///< required cluster, or -1 for any
  bool usesCopyUnit = false; ///< copy scheduled on buses/ports, not an FU
  int srcBank = -1;          ///< copy-unit copies: bank read from
  int dstBank = -1;          ///< copy-unit copies: bank written to
};

/// A modulo schedule for one loop body.
struct ModuloSchedule {
  int ii = 0;
  std::vector<int> cycle;  ///< start cycle per body op (flat, iteration 0)
  std::vector<int> fu;     ///< global FU index per op; -1 for copy-unit copies

  [[nodiscard]] int numOps() const { return static_cast<int>(cycle.size()); }

  /// Last issue cycle of iteration 0 (the flat schedule length minus one).
  [[nodiscard]] int horizon() const {
    int h = 0;
    for (int c : cycle) h = std::max(h, c);
    return h;
  }

  /// Number of pipeline stages: the kernel overlaps this many iterations.
  [[nodiscard]] int stageCount() const {
    RAPT_ASSERT(ii > 0, "stageCount of empty schedule");
    return horizon() / ii + 1;
  }
};

}  // namespace rapt
