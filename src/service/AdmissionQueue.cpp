#include "service/AdmissionQueue.h"

#include <algorithm>
#include <utility>

namespace rapt {

bool AdmissionQueue::push(std::int64_t clientId, Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || stats_.depth >= maxDepth_) {
      ++stats_.rejected;
      return false;
    }
    auto it = byClient_.find(clientId);
    if (it == byClient_.end()) {
      rotation_.push_back(ClientQueue{clientId, {}});
      it = byClient_.emplace(clientId, std::prev(rotation_.end())).first;
    }
    it->second->tasks.push_back(std::move(task));
    ++stats_.admitted;
    ++stats_.depth;
    stats_.maxDepthSeen = std::max(stats_.maxDepthSeen, stats_.depth);
  }
  ready_.notify_one();
  return true;
}

bool AdmissionQueue::pop(Task& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [&] { return closed_ || !rotation_.empty(); });
  if (rotation_.empty()) return false;  // closed and drained
  ClientQueue& front = rotation_.front();
  out = std::move(front.tasks.front());
  front.tasks.pop_front();
  --stats_.depth;
  if (front.tasks.empty()) {
    byClient_.erase(front.clientId);
    rotation_.pop_front();
  } else {
    // Round-robin: the served client goes to the back of the rotation.
    rotation_.splice(rotation_.end(), rotation_, rotation_.begin());
  }
  return true;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

void AdmissionQueue::closeAndDiscard() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    rotation_.clear();
    byClient_.clear();
    stats_.depth = 0;
  }
  ready_.notify_all();
}

AdmissionStats AdmissionQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace rapt
