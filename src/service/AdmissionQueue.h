// Bounded, per-client-fair admission control for the compile service
// (docs/service.md "Admission control").
//
// Two properties a shared daemon needs that a plain FIFO queue lacks:
//
//   * Explicit overload. The queue holds at most `maxDepth` pending jobs
//     TOTAL; a push beyond that is rejected IMMEDIATELY (returning false)
//     instead of blocking the connection thread or growing without bound.
//     The server maps the rejection to FailureClass::Overload, so clients
//     see a classified, retryable refusal rather than unbounded latency —
//     load shedding at the door, not in the dark.
//
//   * Round-robin fairness. Pending jobs are kept per client, and workers
//     drain clients in rotation: a client that dumps 1000 jobs cannot starve
//     one that sends a single loop — the single loop is at worst
//     #clients positions from service, not 1000 (AdmissionQueueTest pins the
//     interleaving down exactly).
//
// The queued unit is an opaque closure: the server binds the connection,
// envelope id, and decoded job into it, so the queue stays free of protocol
// types and directly testable.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>

namespace rapt {

struct AdmissionStats {
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;       ///< pushes refused at the depth cap
  std::int64_t depth = 0;          ///< pending now
  std::int64_t maxDepthSeen = 0;   ///< high-water mark of `depth`
};

class AdmissionQueue {
 public:
  using Task = std::function<void()>;

  explicit AdmissionQueue(int maxDepth) : maxDepth_(maxDepth) {}

  /// Admits one task for `clientId`, or returns false when the queue already
  /// holds `maxDepth` pending tasks (the overload rejection).
  [[nodiscard]] bool push(std::int64_t clientId, Task task);

  /// Blocks until a task is available or the queue is closed and drained.
  /// Tasks are handed out round-robin across clients with pending work.
  /// Returns false only on closed-and-drained (the worker's exit signal).
  [[nodiscard]] bool pop(Task& out);

  /// No more pushes are admitted (they return false); blocked pops drain the
  /// backlog, then return false. Idempotent.
  void close();

  /// close() and additionally DISCARD the backlog: blocked pops return
  /// false as soon as running tasks are handed out. The hard-stop path; the
  /// graceful wind-down uses close() so admitted jobs still finish.
  void closeAndDiscard();

  [[nodiscard]] AdmissionStats stats() const;

 private:
  struct ClientQueue {
    std::int64_t clientId;
    std::deque<Task> tasks;
  };

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  int maxDepth_;
  bool closed_ = false;
  /// Rotation order; a client appears iff it has pending tasks. pop takes
  /// from the front client and rotates it to the back.
  std::list<ClientQueue> rotation_;
  std::unordered_map<std::int64_t, std::list<ClientQueue>::iterator> byClient_;
  AdmissionStats stats_;
};

}  // namespace rapt
