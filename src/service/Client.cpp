#include "service/Client.h"

#include "pipeline/WorkerProtocol.h"

namespace rapt {

bool ServiceClient::connect(const std::string& socketPath, std::string& error) {
  conn_ = unixConnect(socketPath, error);
  return conn_.isOpen();
}

bool ServiceClient::roundTrip(const Json& request, std::int64_t expectId,
                              Json& responseDoc, const Json*& payload,
                              bool& cacheHit, std::int64_t& queueNs,
                              std::int64_t& serviceNs, std::string& error,
                              int timeoutMs) {
  if (!conn_.isOpen()) {
    error = "not connected";
    return false;
  }
  if (!conn_.writeAll(request.dumpCompact() + "\n", timeoutMs)) {
    error = "service request write failed (server gone?)";
    return false;
  }
  std::string line;
  const SocketConn::ReadStatus status = conn_.readLine(line, timeoutMs);
  if (status != SocketConn::ReadStatus::Line) {
    error = status == SocketConn::ReadStatus::Eof
                ? "service closed the connection before replying"
                : (status == SocketConn::ReadStatus::Timeout
                       ? "timed out waiting for service reply"
                       : "service read error");
    conn_.close();
    return false;
  }
  std::int64_t id = 0;
  if (!Json::parse(line, responseDoc, error) ||
      !decodeServiceResponse(responseDoc, id, cacheHit, queueNs, serviceNs,
                             payload, error)) {
    conn_.close();
    return false;
  }
  if (id != expectId) {
    // One-outstanding-request clients must see ids in lockstep; a mismatch
    // means the stream is desynchronized and nothing after it can be trusted.
    error = "service response id " + std::to_string(id) + " != expected " +
            std::to_string(expectId);
    conn_.close();
    return false;
  }
  return true;
}

bool ServiceClient::compile(const Loop& loop, const MachineDesc& machine,
                            const PipelineOptions& options, ServiceReply& reply,
                            std::string& error, int timeoutMs) {
  const std::int64_t id = nextId_++;
  Json responseDoc;
  const Json* payload = nullptr;
  if (!roundTrip(encodeServiceJobRequest(id, loop, machine, options), id,
                 responseDoc, payload, reply.cacheHit, reply.queueNs,
                 reply.serviceNs, error, timeoutMs)) {
    return false;
  }
  reply.resultText = payload->dumpCompact();
  if (!decodeLoopResult(*payload, reply.result, error)) {
    conn_.close();
    return false;
  }
  // Envelope-level provenance: set here, never on the wire document itself
  // (pipeline/CompilerPipeline.h on why bit-identity requires that split).
  reply.result.servedFromCache = reply.cacheHit;
  return true;
}

bool ServiceClient::stats(Json& out, std::string& error, int timeoutMs) {
  const std::int64_t id = nextId_++;
  Json responseDoc;
  const Json* payload = nullptr;
  bool cacheHit = false;
  std::int64_t queueNs = 0;
  std::int64_t serviceNs = 0;
  if (!roundTrip(encodeServiceStatsRequest(id), id, responseDoc, payload,
                 cacheHit, queueNs, serviceNs, error, timeoutMs)) {
    return false;
  }
  out = *payload;
  return true;
}

}  // namespace rapt
