#include "service/Client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "pipeline/WorkerProtocol.h"

namespace rapt {

namespace {

std::int64_t clientNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool ServiceClient::connect(const std::string& socketPath, std::string& error) {
  conn_ = unixConnect(socketPath, error);
  return conn_.isOpen();
}

bool ServiceClient::roundTrip(const Json& request, std::int64_t expectId,
                              Json& responseDoc, const Json*& payload,
                              bool& cacheHit, std::int64_t& queueNs,
                              std::int64_t& serviceNs, std::string& error,
                              int timeoutMs) {
  if (!conn_.isOpen()) {
    error = "not connected";
    return false;
  }
  if (!conn_.writeAll(request.dumpCompact() + "\n", timeoutMs)) {
    error = "service request write failed (server gone?)";
    return false;
  }
  std::string line;
  const SocketConn::ReadStatus status = conn_.readLine(line, timeoutMs);
  if (status != SocketConn::ReadStatus::Line) {
    error = status == SocketConn::ReadStatus::Eof
                ? "service closed the connection before replying"
                : (status == SocketConn::ReadStatus::Timeout
                       ? "timed out waiting for service reply"
                       : "service read error");
    conn_.close();
    return false;
  }
  std::int64_t id = 0;
  if (!Json::parse(line, responseDoc, error) ||
      !decodeServiceResponse(responseDoc, id, cacheHit, queueNs, serviceNs,
                             payload, error)) {
    conn_.close();
    return false;
  }
  if (id != expectId) {
    // One-outstanding-request clients must see ids in lockstep; a mismatch
    // means the stream is desynchronized and nothing after it can be trusted.
    error = "service response id " + std::to_string(id) + " != expected " +
            std::to_string(expectId);
    conn_.close();
    return false;
  }
  return true;
}

bool ServiceClient::compile(const Loop& loop, const MachineDesc& machine,
                            const PipelineOptions& options, ServiceReply& reply,
                            std::string& error, int timeoutMs) {
  const std::int64_t id = nextId_++;
  Json responseDoc;
  const Json* payload = nullptr;
  if (!roundTrip(encodeServiceJobRequest(id, loop, machine, options), id,
                 responseDoc, payload, reply.cacheHit, reply.queueNs,
                 reply.serviceNs, error, timeoutMs)) {
    return false;
  }
  reply.resultText = payload->dumpCompact();
  if (!decodeLoopResult(*payload, reply.result, error)) {
    conn_.close();
    return false;
  }
  // Envelope-level provenance: set here, never on the wire document itself
  // (pipeline/CompilerPipeline.h on why bit-identity requires that split).
  reply.result.servedFromCache = reply.cacheHit;
  return true;
}

bool ServiceClient::stats(Json& out, std::string& error, int timeoutMs) {
  const std::int64_t id = nextId_++;
  Json responseDoc;
  const Json* payload = nullptr;
  bool cacheHit = false;
  std::int64_t queueNs = 0;
  std::int64_t serviceNs = 0;
  if (!roundTrip(encodeServiceStatsRequest(id), id, responseDoc, payload,
                 cacheHit, queueNs, serviceNs, error, timeoutMs)) {
    return false;
  }
  out = *payload;
  return true;
}

bool ServiceClient::ping(Json& health, std::string& error, int timeoutMs) {
  const std::int64_t id = nextId_++;
  Json responseDoc;
  const Json* payload = nullptr;
  bool cacheHit = false;
  std::int64_t queueNs = 0;
  std::int64_t serviceNs = 0;
  if (!roundTrip(encodeServicePingRequest(id), id, responseDoc, payload,
                 cacheHit, queueNs, serviceNs, error, timeoutMs)) {
    return false;
  }
  health = *payload;
  return true;
}

// ---- ResilientClient -------------------------------------------------------

ResilientClient::ResilientClient(std::string socketPath, RetryPolicy policy)
    : socketPath_(std::move(socketPath)),
      policy_(policy),
      rngState_(policy.seed != 0 ? policy.seed : 1) {}

std::uint64_t ResilientClient::nextRand() {
  // SplitMix64: the same seeded stream ChaosIo uses, so a campaign's client
  // timing replays bit-for-bit from the seed alone.
  rngState_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = rngState_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool ResilientClient::ensureConnected(std::string& error) {
  if (client_.isConnected()) return true;
  if (!client_.connect(socketPath_, error)) return false;
  // The lazy first connect is just "connect"; only a connect that REPLACES
  // a previous one is a healed drop.
  if (everConnected_) ++stats_.reconnects;
  everConnected_ = true;
  return true;
}

bool ResilientClient::backoff(int attempt, std::int64_t deadlineNs) {
  std::int64_t waitMs = policy_.baseBackoffMs;
  for (int i = 0; i < attempt && waitMs < policy_.maxBackoffMs; ++i)
    waitMs *= 2;
  waitMs = std::min<std::int64_t>(waitMs, policy_.maxBackoffMs);
  // Jitter in [wait/2, wait]: decorrelates a fleet of clients hammering a
  // restarting daemon without ever collapsing the backoff to zero.
  if (waitMs > 1)
    waitMs = waitMs / 2 + static_cast<std::int64_t>(
                              nextRand() % static_cast<std::uint64_t>(waitMs / 2 + 1));
  if (deadlineNs > 0) {
    const std::int64_t leftMs = (deadlineNs - clientNowNs()) / 1'000'000;
    if (leftMs <= 0) return false;
    waitMs = std::min(waitMs, leftMs);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(waitMs));
  return true;
}

bool ResilientClient::compile(const Loop& loop, const MachineDesc& machine,
                              const PipelineOptions& options,
                              ServiceReply& reply, std::string& error) {
  const std::int64_t startNs = clientNowNs();
  const std::int64_t deadlineNs =
      policy_.deadlineMs > 0 ? startNs + policy_.deadlineMs * 1'000'000 : 0;
  std::int64_t outageStartNs = 0;  // first failure of the current outage
  for (int attempt = 0; attempt < policy_.maxAttempts; ++attempt) {
    ++stats_.attempts;
    if (attempt > 0) ++stats_.resubmits;
    std::string attemptError;
    if (ensureConnected(attemptError) &&
        client_.compile(loop, machine, options, reply, attemptError,
                        policy_.requestTimeoutMs)) {
      if (outageStartNs != 0)
        stats_.recoveryNs.push_back(clientNowNs() - outageStartNs);
      return true;
    }
    if (outageStartNs == 0) outageStartNs = clientNowNs();
    error = attemptError;
    client_.close();  // a failed round trip leaves the stream untrustworthy
    if (attempt + 1 >= policy_.maxAttempts || !backoff(attempt, deadlineNs))
      break;
  }
  ++stats_.exhausted;
  error = "resilient compile exhausted retry policy: " + error;
  return false;
}

bool ResilientClient::ping(Json& health, std::string& error) {
  const std::int64_t startNs = clientNowNs();
  const std::int64_t deadlineNs =
      policy_.deadlineMs > 0 ? startNs + policy_.deadlineMs * 1'000'000 : 0;
  for (int attempt = 0; attempt < policy_.maxAttempts; ++attempt) {
    ++stats_.attempts;
    std::string attemptError;
    if (ensureConnected(attemptError) &&
        client_.ping(health, attemptError, policy_.requestTimeoutMs))
      return true;
    error = attemptError;
    client_.close();
    if (attempt + 1 >= policy_.maxAttempts || !backoff(attempt, deadlineNs))
      break;
  }
  ++stats_.exhausted;
  error = "resilient ping exhausted retry policy: " + error;
  return false;
}

}  // namespace rapt
