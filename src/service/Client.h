// Client side of the rapt-served protocol (docs/service.md): connect to the
// daemon's Unix-domain socket, send one job per line, read one response per
// line. Used by tools/rapt_loadgen.cpp and the service tests; a ServiceClient
// is single-threaded (one outstanding request at a time — pipelining is the
// server's affordance, not this helper's).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/CompilerPipeline.h"
#include "support/Json.h"
#include "support/Socket.h"

namespace rapt {

/// One job's worth of response: the decoded result plus the envelope's cache
/// provenance and server-side timing, and the EXACT compact-JSON text of the
/// result document — the bit-identity tests and the load generator compare
/// these bytes across cold and cached passes.
struct ServiceReply {
  LoopResult result;
  bool cacheHit = false;
  std::int64_t queueNs = 0;
  std::int64_t serviceNs = 0;
  std::string resultText;  ///< dumpCompact of the response's result document
};

class ServiceClient {
 public:
  /// Connects to the daemon at `socketPath`. Returns false with a diagnostic
  /// in `error`.
  [[nodiscard]] bool connect(const std::string& socketPath, std::string& error);

  [[nodiscard]] bool isConnected() const { return conn_.isOpen(); }
  void close() { conn_.close(); }

  /// Sends one compile job and blocks for its response (up to `timeoutMs`;
  /// 0 = forever). On success fills `reply`, including
  /// `reply.result.servedFromCache` from the envelope's cacheHit bit. On
  /// failure (transport, decode, or correlation-id mismatch) returns false
  /// with a diagnostic in `error`; the connection is closed then — under
  /// line framing a desynchronized stream cannot be resynchronized.
  [[nodiscard]] bool compile(const Loop& loop, const MachineDesc& machine,
                             const PipelineOptions& options, ServiceReply& reply,
                             std::string& error, int timeoutMs = 0);

  /// Fetches the server's stats object (docs/metrics.md) into `out`.
  [[nodiscard]] bool stats(Json& out, std::string& error, int timeoutMs = 0);

  /// Health probe: answered inline by the daemon's reader thread, never
  /// queued. `health` gets uptimeNs/queueDepth/windingDown/inFlight. A ping
  /// that times out while the connection stays open means "wedged", which a
  /// resilient caller treats exactly like "gone": reconnect and re-submit.
  [[nodiscard]] bool ping(Json& health, std::string& error, int timeoutMs = 0);

 private:
  [[nodiscard]] bool roundTrip(const Json& request, std::int64_t expectId,
                               Json& responseDoc, const Json*& payload,
                               bool& cacheHit, std::int64_t& queueNs,
                               std::int64_t& serviceNs, std::string& error,
                               int timeoutMs);

  SocketConn conn_;
  std::int64_t nextId_ = 1;
};

// ---- self-healing wrapper (docs/service.md "Self-healing clients") ---------

/// Reconnect/retry policy for ResilientClient. Backoff for attempt k is
/// uniform in [base*2^k / 2, base*2^k] (capped at maxBackoffMs), drawn from a
/// SEEDED generator so a chaos campaign's client behaviour replays exactly.
struct RetryPolicy {
  int maxAttempts = 8;             ///< per operation, first try included
  int baseBackoffMs = 10;
  int maxBackoffMs = 2000;
  std::int64_t deadlineMs = 60'000;  ///< total wall budget per operation (0 = none)
  int requestTimeoutMs = 30'000;     ///< per round-trip socket timeout
  std::uint64_t seed = 1;            ///< jitter stream seed
};

/// What the healing cost: every reconnect, every re-submitted job, and the
/// client-observed recovery latency (first failure -> next success) per
/// outage. The chaos harness folds these into BENCH_chaos.json.
struct ResilienceStats {
  std::int64_t attempts = 0;        ///< round trips tried (incl. first tries)
  std::int64_t reconnects = 0;      ///< successful re-connects after a drop
  std::int64_t resubmits = 0;       ///< jobs sent more than once
  std::int64_t exhausted = 0;       ///< operations that ran out of policy
  std::vector<std::int64_t> recoveryNs;  ///< one entry per healed outage
};

/// A ServiceClient that survives the daemon dying, restarting, or wedging
/// mid-conversation: on any transport failure it reconnects with seeded
/// exponential backoff + jitter and RE-SUBMITS the job. Re-submission is safe
/// because the protocol is idempotent by construction — the cache key is
/// content-addressed (configHash:loopHash), so a duplicate of an already-
/// acknowledged job replays the identical bytes, and a duplicate of a lost
/// one is just the compile happening once. Single-threaded, like the client
/// it wraps.
class ResilientClient {
 public:
  ResilientClient(std::string socketPath, RetryPolicy policy);

  /// Compiles with healing: returns false only once the policy is exhausted
  /// (attempts or deadline), with the LAST transport error in `error`.
  [[nodiscard]] bool compile(const Loop& loop, const MachineDesc& machine,
                             const PipelineOptions& options, ServiceReply& reply,
                             std::string& error);

  /// Ping with healing (reconnects, no payload to re-submit).
  [[nodiscard]] bool ping(Json& health, std::string& error);

  [[nodiscard]] const ResilienceStats& stats() const { return stats_; }
  [[nodiscard]] bool isConnected() const { return client_.isConnected(); }
  void close() { client_.close(); }

 private:
  [[nodiscard]] bool ensureConnected(std::string& error);
  /// Sleeps the jittered backoff for `attempt` (0-based), trimmed to what is
  /// left of `deadlineNs`; false when the deadline is already spent.
  [[nodiscard]] bool backoff(int attempt, std::int64_t deadlineNs);
  [[nodiscard]] std::uint64_t nextRand();

  std::string socketPath_;
  RetryPolicy policy_;
  ServiceClient client_;
  std::uint64_t rngState_;
  bool everConnected_ = false;
  ResilienceStats stats_;
};

}  // namespace rapt
