// Client side of the rapt-served protocol (docs/service.md): connect to the
// daemon's Unix-domain socket, send one job per line, read one response per
// line. Used by tools/rapt_loadgen.cpp and the service tests; a ServiceClient
// is single-threaded (one outstanding request at a time — pipelining is the
// server's affordance, not this helper's).
#pragma once

#include <cstdint>
#include <string>

#include "pipeline/CompilerPipeline.h"
#include "support/Json.h"
#include "support/Socket.h"

namespace rapt {

/// One job's worth of response: the decoded result plus the envelope's cache
/// provenance and server-side timing, and the EXACT compact-JSON text of the
/// result document — the bit-identity tests and the load generator compare
/// these bytes across cold and cached passes.
struct ServiceReply {
  LoopResult result;
  bool cacheHit = false;
  std::int64_t queueNs = 0;
  std::int64_t serviceNs = 0;
  std::string resultText;  ///< dumpCompact of the response's result document
};

class ServiceClient {
 public:
  /// Connects to the daemon at `socketPath`. Returns false with a diagnostic
  /// in `error`.
  [[nodiscard]] bool connect(const std::string& socketPath, std::string& error);

  [[nodiscard]] bool isConnected() const { return conn_.isOpen(); }
  void close() { conn_.close(); }

  /// Sends one compile job and blocks for its response (up to `timeoutMs`;
  /// 0 = forever). On success fills `reply`, including
  /// `reply.result.servedFromCache` from the envelope's cacheHit bit. On
  /// failure (transport, decode, or correlation-id mismatch) returns false
  /// with a diagnostic in `error`; the connection is closed then — under
  /// line framing a desynchronized stream cannot be resynchronized.
  [[nodiscard]] bool compile(const Loop& loop, const MachineDesc& machine,
                             const PipelineOptions& options, ServiceReply& reply,
                             std::string& error, int timeoutMs = 0);

  /// Fetches the server's stats object (docs/metrics.md) into `out`.
  [[nodiscard]] bool stats(Json& out, std::string& error, int timeoutMs = 0);

 private:
  [[nodiscard]] bool roundTrip(const Json& request, std::int64_t expectId,
                               Json& responseDoc, const Json*& payload,
                               bool& cacheHit, std::int64_t& queueNs,
                               std::int64_t& serviceNs, std::string& error,
                               int timeoutMs);

  SocketConn conn_;
  std::int64_t nextId_ = 1;
};

}  // namespace rapt
