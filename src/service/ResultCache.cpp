#include "service/ResultCache.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "pipeline/WorkerProtocol.h"

namespace rapt {

std::string ResultCache::makeKey(std::uint64_t configHash,
                                 std::uint64_t loopHash) {
  return hashToHex(configHash) + ":" + hashToHex(loopHash);
}

bool ResultCache::lookup(const std::string& key, std::string& resultText) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  resultText = it->second->resultText;
  ++stats_.hits;
  return true;
}

void ResultCache::insert(const std::string& key, const std::string& resultText) {
  std::lock_guard<std::mutex> lock(mutex_);
  insertLocked(key, resultText, /*journalIt=*/true);
}

void ResultCache::insertLocked(const std::string& key,
                               const std::string& resultText, bool journalIt) {
  if (byteBudget_ > 0 &&
      static_cast<std::int64_t>(key.size() + resultText.size()) > byteBudget_)
    return;  // bigger than the whole cache: caching it would evict everything
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Same key, same deterministic compile — refresh recency, keep the
    // original bytes (they are identical by construction).
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, resultText});
  index_[key] = lru_.begin();
  stats_.bytes += entryBytes(lru_.front());
  ++stats_.entries;
  ++stats_.insertions;
  evictToBudgetLocked();
  if (journalIt) appendRowLocked(key, resultText);
}

void ResultCache::appendRowLocked(const std::string& key,
                                  const std::string& resultText) {
  if (!journal_.isOpen()) return;
  Json row = Json::object();
  row["kind"] = "cache";
  row["key"] = key;
  row["result"] = resultText;  // compact JSON stored as a string field
  if (journal_.append(row)) return;
  // Persistence failed; serving must not. A full or failing disk degrades the
  // daemon to in-memory-only (same stance as a journal that would not open),
  // never a silent loss and never an abort — the entry above IS in the cache,
  // it just will not survive a restart, and the stats advertise that.
  ++stats_.journalAppendFailures;
  const int err = journal_.lastErrno();
  if (err == ENOSPC || err == EDQUOT || err == EIO) {
    std::fprintf(stderr,
                 "result cache: journal append failed (%s); disabling "
                 "persistence, serving from memory only\n",
                 std::strerror(err));
    journal_.close();
    stats_.persistenceDisabled = true;
  }
}

void ResultCache::evictToBudgetLocked() {
  if (byteBudget_ <= 0) return;
  while (stats_.bytes > byteBudget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes -= entryBytes(victim);
    --stats_.entries;
    ++stats_.evictions;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

bool ResultCache::openJournal(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  const JournalContents prior = loadJournal(path);
  if (prior.valid) {
    const Json* jk = prior.header.find("journalKind");
    if (jk != nullptr && jk->isString() && jk->asString() == kJournalKind) {
      for (const Json& row : prior.rows) {
        const Json* kind = row.find("kind");
        const Json* key = row.find("key");
        const Json* result = row.find("result");
        if (kind == nullptr || !kind->isString() || kind->asString() != "cache")
          continue;
        if (key == nullptr || !key->isString() || result == nullptr ||
            !result->isString())
          continue;
        insertLocked(key->asString(), result->asString(), /*journalIt=*/false);
        ++stats_.journalRowsReplayed;
      }
      // Quarantined rows (CRC mismatch, torn writes) were skipped by the
      // loader: those keys simply miss and recompile — reported, not trusted.
      stats_.journalRowsQuarantined =
          prior.quarantinedLines + prior.tornTailLines;
      return journal_.openAppend(path);
    }
    std::fprintf(stderr,
                 "result cache: %s is a journal of another kind; recreating\n",
                 path.c_str());
  }
  Json header = Json::object();
  header["journalKind"] = kJournalKind;
  if (!journal_.create(path, std::move(header))) return false;
  // A fresh journal must seed from what is already in memory (a cache that
  // warmed before persistence was attached), or those entries die with us.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    Json row = Json::object();
    row["kind"] = "cache";
    row["key"] = it->key;
    row["result"] = it->resultText;
    journal_.append(row);
  }
  return true;
}

void ResultCache::closeJournal() {
  std::lock_guard<std::mutex> lock(mutex_);
  journal_.close();
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ResultCacheStats s = stats_;
  s.byteBudget = byteBudget_;
  return s;
}

}  // namespace rapt
