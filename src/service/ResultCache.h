// Content-addressed LRU cache of compile results for the rapt-served daemon
// (docs/service.md "Cache keying").
//
// The key is the pair the run journal already uses to decide whether an old
// result may stand in for a new compile (pipeline/WorkerProtocol.h):
//
//   suiteConfigHash(machine, options) : loopTextHash(loop)
//
// — everything that changes a RESULT is folded into the config hash, and the
// loop's canonical printLoop text is hashed per entry, so two requests with
// the same key are the same compile by construction. The value is the
// result's EXACT compact-JSON encoding (encodeLoopResult): a hit replays
// those bytes, which is what makes cached replies bit-identical to their
// cold-compile counterparts (ServiceTest holds that invariant end to end).
//
// Eviction is LRU under a byte budget (key + value bytes). Persistence is an
// append-only journal (support/Journal.h): every insert appends one
// fsync'd row, so a SIGTERM'd or crashed daemon restarts warm; eviction does
// not rewrite the journal (it is a log, not a mirror — replay re-inserts in
// append order and the byte budget trims the overflow, oldest first).
//
// Thread-safe: one internal mutex; every method may be called from any
// worker or connection thread.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "support/Journal.h"

namespace rapt {

/// Monotonic counters, readable at any time (stats requests, shutdown
/// report). `bytes`/`entries` are the current footprint, the rest are
/// lifetime totals.
struct ResultCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::int64_t journalRowsReplayed = 0;
  std::int64_t journalRowsQuarantined = 0;  ///< corrupt rows skipped at load
  std::int64_t journalAppendFailures = 0;   ///< appends that hit ENOSPC/EIO/...
  bool persistenceDisabled = false;  ///< journal shut after a hard I/O failure
  std::int64_t bytes = 0;
  std::int64_t entries = 0;
  std::int64_t byteBudget = 0;
};

class ResultCache {
 public:
  /// `byteBudget` caps key+value bytes held (<= 0 means unlimited — tests
  /// and trusted corpora only; a serving daemon should always set one).
  explicit ResultCache(std::int64_t byteBudget) : byteBudget_(byteBudget) {}

  /// The canonical cache key: "<configHashHex>:<loopHashHex>".
  [[nodiscard]] static std::string makeKey(std::uint64_t configHash,
                                           std::uint64_t loopHash);

  /// Looks `key` up; on a hit copies the stored compact-JSON result into
  /// `resultText` and refreshes recency. Counts a hit or miss either way.
  [[nodiscard]] bool lookup(const std::string& key, std::string& resultText);

  /// Inserts (or refreshes) `key -> resultText`, evicting LRU entries until
  /// the budget holds, and appends the row to the journal when one is
  /// attached. An entry larger than the whole budget is not cached.
  void insert(const std::string& key, const std::string& resultText);

  /// Attaches persistence: loads `path` if it exists and is a valid cache
  /// journal (replaying rows through insert, budget enforced), then keeps it
  /// open for appending; creates it fresh otherwise. Returns false if the
  /// journal could neither be resumed nor created (the cache still works,
  /// just without persistence).
  [[nodiscard]] bool openJournal(const std::string& path);

  /// Flushes and closes the journal (idempotent; the destructor also does
  /// this). The SIGTERM wind-down calls it so the "cache persisted" claim in
  /// the shutdown log is backed by a closed, fsync'd file.
  void closeJournal();

  [[nodiscard]] ResultCacheStats stats() const;

  /// The journal-row schema marker ("cache" rows; header field
  /// "journalKind": "rapt-result-cache").
  static constexpr const char* kJournalKind = "rapt-result-cache";

 private:
  struct Entry {
    std::string key;
    std::string resultText;
  };

  void insertLocked(const std::string& key, const std::string& resultText,
                    bool journalIt);
  void appendRowLocked(const std::string& key, const std::string& resultText);
  void evictToBudgetLocked();
  [[nodiscard]] static std::int64_t entryBytes(const Entry& e) {
    return static_cast<std::int64_t>(e.key.size() + e.resultText.size());
  }

  mutable std::mutex mutex_;
  std::int64_t byteBudget_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  JournalWriter journal_;
  ResultCacheStats stats_;
};

}  // namespace rapt
