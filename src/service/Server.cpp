#include "service/Server.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <utility>

#include "pipeline/WorkerProtocol.h"
#include "support/ChaosIo.h"
#include "support/Interrupt.h"
#include "support/Stats.h"

namespace rapt {

namespace {

// A reply write that stalls longer than this indicates a wedged or vanished
// client; the connection is dropped rather than pinning a compile worker.
constexpr int kWriteTimeoutMs = 30'000;

std::int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Json latencySummary(const std::vector<std::int64_t>& xs) {
  Json o = Json::object();
  o["count"] = static_cast<std::int64_t>(xs.size());
  o["p50"] = percentile(xs, 50.0);
  o["p95"] = percentile(xs, 95.0);
  o["p99"] = percentile(xs, 99.0);
  std::int64_t maxNs = 0;
  std::int64_t sum = 0;
  for (std::int64_t x : xs) {
    sum += x;
    if (x > maxNs) maxNs = x;
  }
  o["max"] = maxNs;
  o["mean"] = xs.empty() ? std::int64_t{0}
                         : sum / static_cast<std::int64_t>(xs.size());
  return o;
}

}  // namespace

/// Shared between the reader thread and any compile workers holding queued
/// jobs for this client: the socket stays alive until the last reply is
/// written, and `writeMutex` keeps out-of-order worker replies from
/// interleaving bytes with the reader's inline (cache hit / stats) replies.
struct ServiceServer::Connection {
  std::int64_t clientId = 0;
  SocketConn conn;
  std::mutex writeMutex;
};

ServiceServer::ServiceServer(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cacheBytes),
      queue_(options_.maxQueueDepth) {}

ServiceServer::~ServiceServer() { stop(); }

bool ServiceServer::start(std::string& error) {
  if (running_.load()) {
    error = "service already started";
    return false;
  }
  if (!options_.cacheJournalPath.empty() &&
      !cache_.openJournal(options_.cacheJournalPath)) {
    // Persistence is an upgrade, not a precondition: serve from memory.
    std::fprintf(stderr,
                 "rapt-served: warning: cache journal '%s' unusable; "
                 "serving without persistence\n",
                 options_.cacheJournalPath.c_str());
  }
  if (!listener_.listen(options_.socketPath, error)) return false;

  const int threads =
      options_.threads > 0 ? options_.threads : ThreadPool::hardwareThreads();
  pool_ = std::make_unique<ThreadPool>(threads);
  for (int i = 0; i < threads; ++i) {
    // Long-running consumers: each occupies one pool thread for the server's
    // lifetime, popping admitted jobs until close() drains the queue.
    pool_->submit([this] {
      AdmissionQueue::Task task;
      while (queue_.pop(task)) task();
    });
  }
  running_.store(true);
  startNs_ = nowNs();
  acceptor_ = std::thread([this] { acceptLoop(); });
  return true;
}

void ServiceServer::stop() {
  // Serialized: a second caller (say, the destructor after an explicit stop)
  // blocks until the first wind-down finishes, then sees `stopped_`.
  std::lock_guard<std::mutex> stopLock(stopMutex_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(connectionThreadsMutex_);
    for (std::thread& t : connectionThreads_)
      if (t.joinable()) t.join();
    connectionThreads_.clear();
  }
  // Readers are gone, so no new pushes: close() lets the admitted backlog
  // drain, and destroying the pool joins the consumers after their final
  // pop() returns false. Every admitted job replies before this returns.
  queue_.close();
  pool_.reset();
  cache_.closeJournal();
  running_.store(false);
}

void ServiceServer::acceptLoop() {
  while (!stopping_.load() && !interruptRequested()) {
    SocketConn accepted =
        listener_.accept(options_.idlePollMs, interruptWakeFd());
    if (stopping_.load() || interruptRequested()) {
      accepted.close();
      break;
    }
    if (!accepted.isOpen()) continue;  // poll tick or transient accept error
    auto conn = std::make_shared<Connection>();
    conn->clientId = nextClientId_.fetch_add(1);
    conn->conn = std::move(accepted);
    {
      std::lock_guard<std::mutex> lock(statsMutex_);
      ++stats_.connectionsAccepted;
    }
    std::lock_guard<std::mutex> lock(connectionThreadsMutex_);
    connectionThreads_.emplace_back(
        [this, conn = std::move(conn)]() mutable { connectionLoop(std::move(conn)); });
  }
  running_.store(false);
}

void ServiceServer::connectionLoop(std::shared_ptr<Connection> conn) {
  std::string line;
  while (!stopping_.load()) {
    const SocketConn::ReadStatus status =
        conn->conn.readLine(line, options_.idlePollMs);
    if (status == SocketConn::ReadStatus::Timeout) continue;
    if (status != SocketConn::ReadStatus::Line) break;  // EOF or error
    const std::int64_t receivedNs = nowNs();

    Json doc;
    std::string error;
    ServiceRequestKind kind{};
    std::int64_t id = 0;
    const Json* job = nullptr;
    if (!Json::parse(line, doc, error) ||
        !decodeServiceRequest(doc, kind, id, job, error)) {
      // A peer speaking the wrong protocol gets cut, not served: there is no
      // envelope to correlate an error reply with.
      std::lock_guard<std::mutex> lock(statsMutex_);
      ++stats_.badRequests;
      break;
    }
    if (kind == ServiceRequestKind::Stats) {
      reply(conn, encodeServiceStatsResponse(id, statsJson()));
      continue;
    }
    if (kind == ServiceRequestKind::Ping) {
      reply(conn, encodeServicePingResponse(id, healthJson()));
      continue;
    }
    handleJob(conn, id, *job, receivedNs);
  }
}

void ServiceServer::handleJob(const std::shared_ptr<Connection>& conn,
                              std::int64_t id, const Json& jobDoc,
                              std::int64_t receivedNs) {
  Loop loop;
  MachineDesc machine;
  PipelineOptions options;
  std::string error;
  if (!decodeWorkerJob(jobDoc, loop, machine, options, error)) {
    std::lock_guard<std::mutex> lock(statsMutex_);
    ++stats_.badRequests;
    conn->conn.close();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(statsMutex_);
    ++stats_.requests;
  }

  const std::string key = ResultCache::makeKey(
      suiteConfigHash(machine, options), loopTextHash(loop));
  std::string cachedText;
  if (cache_.lookup(key, cachedText)) {
    // Replay the stored bytes: parse + re-embed is byte-stable (support/Json.h
    // round-trip guarantee), so the client sees the cold compile's exact
    // result document.
    Json resultDoc;
    if (Json::parse(cachedText, resultDoc, error)) {
      // Counters are bumped BEFORE the reply bytes go out, so any stats
      // request a client sends after seeing a response reflects it.
      recordResponse(/*cacheHit=*/true, /*resultOk=*/true, receivedNs);
      reply(conn, encodeServiceResponse(id, /*cacheHit=*/true, 0, 0,
                                        std::move(resultDoc)));
      return;
    }
    // An unparseable cache entry cannot happen for entries we wrote; fall
    // through and recompile rather than serving garbage.
  }

  // Captured before the closure below moves `loop` out: the overload reply
  // still needs the loop's identity.
  const std::string loopName = loop.name;
  const int numOps = loop.size();

  const std::int64_t pushedNs = nowNs();
  const bool admitted = queue_.push(
      conn->clientId,
      [this, conn, id, key, loop = std::move(loop), machine, options,
       receivedNs, pushedNs] {
        compileAndReply(conn, id, key, loop, machine, options, receivedNs,
                        pushedNs);
      });
  if (!admitted) {
    // Load shedding at the door (docs/service.md "Admission control"): the
    // refusal is a classified result row, so suite aggregation and retry
    // policies treat it like any other capacity failure.
    LoopResult r;
    r.loopName = loopName;
    r.numOps = numOps;
    r.ok = false;
    r.failureClass = FailureClass::Overload;
    r.error = "compile service overloaded: admission queue at depth cap (" +
              std::to_string(options_.maxQueueDepth) + ")";
    {
      std::lock_guard<std::mutex> lock(statsMutex_);
      ++stats_.rejectedOverload;
    }
    recordResponse(/*cacheHit=*/false, /*resultOk=*/false, receivedNs);
    reply(conn, encodeServiceResponse(id, /*cacheHit=*/false, 0,
                                      nowNs() - receivedNs,
                                      encodeLoopResult(r)));
  }
}

void ServiceServer::compileAndReply(const std::shared_ptr<Connection>& conn,
                                    std::int64_t id, const std::string& cacheKey,
                                    const Loop& loop, const MachineDesc& machine,
                                    const PipelineOptions& options,
                                    std::int64_t receivedNs,
                                    std::int64_t pushedNs) {
  const std::int64_t startNs = nowNs();
  const std::int64_t queueNs = startNs - pushedNs;

  // Supervision is the operator's call, not the client's: the wire job
  // carries only result-relevant options, so isolation/limits come from the
  // server config. Journaling and threading are suite-runner concerns that
  // must stay off inside a service worker.
  PipelineOptions serveOptions = options;
  serveOptions.isolation = options_.isolation;
  serveOptions.workerPath = options_.workerPath;
  serveOptions.workerTimeoutMs = options_.workerTimeoutMs;
  serveOptions.workerMemoryBytes = options_.workerMemoryBytes;
  serveOptions.journalPath.clear();
  serveOptions.resume = false;
  serveOptions.threads = 1;

  LoopResult result;
  try {
    result = options_.isolation == SuiteIsolation::Subprocess
                 ? compileLoopInSubprocess(loop, machine, serveOptions)
                 : compileLoop(loop, machine, serveOptions);
  } catch (const std::exception& e) {
    result.loopName = loop.name;
    result.numOps = loop.size();
    result.ok = false;
    result.failureClass = FailureClass::InternalError;
    result.error = std::string("uncaught exception in service worker: ") + e.what();
  }

  Json resultDoc = encodeLoopResult(result);
  // Only ok rows are cached: failure rows can depend on the server's
  // supervision limits (timeouts, rlimits), which are deliberately OUTSIDE
  // the cache key — caching them would let one operator's limits answer for
  // another's. Successful results are bit-identical across isolation modes
  // and limits, so they are safe to share.
  if (result.ok) cache_.insert(cacheKey, resultDoc.dumpCompact());

  // Record before replying: a client that sees this response and immediately
  // asks for stats must find it counted (stats replies bypass the queue).
  recordResponse(/*cacheHit=*/false, result.ok, receivedNs);
  reply(conn, encodeServiceResponse(id, /*cacheHit=*/false, queueNs,
                                    nowNs() - receivedNs, std::move(resultDoc)));
}

void ServiceServer::reply(const std::shared_ptr<Connection>& conn,
                          const Json& envelope) {
  const std::string line = envelope.dumpCompact() + "\n";
  std::lock_guard<std::mutex> lock(conn->writeMutex);
  if (!conn->conn.isOpen()) return;  // client already gone; drop the reply
  (void)conn->conn.writeAll(line, kWriteTimeoutMs);
}

void ServiceServer::recordResponse(bool cacheHit, bool resultOk,
                                   std::int64_t receivedNs) {
  const std::int64_t latency = nowNs() - receivedNs;
  std::lock_guard<std::mutex> lock(statsMutex_);
  ++stats_.responses;
  if (!resultOk) ++stats_.compileFailures;
  (cacheHit ? stats_.hitLatencyNs : stats_.missLatencyNs).push_back(latency);
}

Json ServiceServer::healthJson() const {
  Json h = Json::object();
  h["uptimeNs"] = nowNs() - startNs_;
  h["queueDepth"] = queue_.stats().depth;
  h["windingDown"] = stopping_.load();
  {
    std::lock_guard<std::mutex> lock(statsMutex_);
    h["inFlight"] = stats_.requests - stats_.responses;
  }
  return h;
}

ServerStats ServiceServer::stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(statsMutex_);
    out = stats_;
  }
  out.cache = cache_.stats();
  out.queue = queue_.stats();
  return out;
}

Json ServiceServer::statsJson() const {
  const ServerStats s = stats();
  Json o = Json::object();
  o["connectionsAccepted"] = s.connectionsAccepted;
  o["requests"] = s.requests;
  o["responses"] = s.responses;
  o["badRequests"] = s.badRequests;
  o["rejectedOverload"] = s.rejectedOverload;
  o["compileFailures"] = s.compileFailures;
  o["threads"] = static_cast<std::int64_t>(
      options_.threads > 0 ? options_.threads : ThreadPool::hardwareThreads());
  o["isolation"] = suiteIsolationName(options_.isolation);

  Json cache = Json::object();
  cache["hits"] = s.cache.hits;
  cache["misses"] = s.cache.misses;
  cache["insertions"] = s.cache.insertions;
  cache["evictions"] = s.cache.evictions;
  cache["journalRowsReplayed"] = s.cache.journalRowsReplayed;
  cache["journalRowsQuarantined"] = s.cache.journalRowsQuarantined;
  cache["journalAppendFailures"] = s.cache.journalAppendFailures;
  cache["persistenceDisabled"] = s.cache.persistenceDisabled;
  cache["bytes"] = s.cache.bytes;
  cache["entries"] = s.cache.entries;
  cache["byteBudget"] = s.cache.byteBudget;
  o["cache"] = std::move(cache);

  Json queue = Json::object();
  queue["admitted"] = s.queue.admitted;
  queue["rejected"] = s.queue.rejected;
  queue["depth"] = s.queue.depth;
  queue["maxDepthSeen"] = s.queue.maxDepthSeen;
  o["queue"] = std::move(queue);

  Json latency = Json::object();
  latency["hitNs"] = latencySummary(s.hitLatencyNs);
  latency["missNs"] = latencySummary(s.missLatencyNs);
  o["latency"] = std::move(latency);

  // When a chaos campaign armed this process (RAPT_CHAOS or an in-process
  // install), its injection counters ride along so the torture harness can
  // read how many faults the daemon actually absorbed, per site and kind.
  if (const ChaosIo* chaos = ChaosIo::active()) o["chaos"] = chaos->statsJson();
  return o;
}

}  // namespace rapt
