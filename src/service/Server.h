// The rapt-served compile service (docs/service.md; CLI in
// tools/rapt_served.cpp).
//
// A long-lived daemon serving compile jobs over a Unix-domain socket in the
// WorkerProtocol wire format (pipeline/WorkerProtocol.h), line-framed
// (support/Socket.h). The request path:
//
//   accept -> read request line -> decode job
//     -> cache lookup (ResultCache, keyed configHash:loopHash)
//          hit  -> reply inline with the stored bytes (bit-identical)
//          miss -> AdmissionQueue.push (bounded; full -> Overload row reply)
//                    -> ThreadPool worker pops (round-robin across clients)
//                    -> compileLoop / compileLoopInSubprocess
//                    -> cache insert (+ journal append) -> reply
//
// Threads: one acceptor (poll on listener + interrupt wake fd), one reader
// per connection, `threads` compile workers parked as long-running consumer
// tasks on the existing support/ThreadPool. Responses are written under a
// per-connection mutex, so a worker finishing out of order cannot interleave
// bytes with the reader's inline replies.
//
// Wind-down (SIGTERM/SIGINT via support/Interrupt.h, or stop()): stop
// accepting, stop reading new requests, let every ADMITTED job finish and
// its reply flush, close the cache journal (the persistence claim), then
// join. In-flight work is never discarded; un-read requests are simply never
// admitted — the client sees EOF and retries elsewhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/Suite.h"
#include "service/AdmissionQueue.h"
#include "service/ResultCache.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

namespace rapt {

struct ServerOptions {
  std::string socketPath;           ///< Unix-domain socket to listen on
  int threads = 0;                  ///< compile workers (0 = hardware threads)
  int maxQueueDepth = 256;          ///< admission bound (pending compiles)
  std::int64_t cacheBytes = 256LL << 20;  ///< LRU byte budget (<=0 unlimited)
  std::string cacheJournalPath;     ///< cache persistence (empty = in-memory only)

  // Supervision overlay applied to every admitted job — these are
  // server-operator decisions, not client ones: the wire job carries only
  // result-relevant options (WorkerProtocol.h), so isolation and limits come
  // from here.
  SuiteIsolation isolation = SuiteIsolation::InProcess;
  std::string workerPath;           ///< rapt-worker override for Subprocess mode
  std::int64_t workerTimeoutMs = 120'000;
  std::int64_t workerMemoryBytes = 0;

  int idlePollMs = 200;             ///< accept/read poll tick (stop latency)
};

/// Aggregate service counters exported as the "stats" response and the
/// BENCH_served.json shutdown report (docs/metrics.md).
struct ServerStats {
  std::int64_t connectionsAccepted = 0;
  std::int64_t requests = 0;        ///< job requests decoded
  std::int64_t responses = 0;       ///< job responses written (any outcome)
  std::int64_t rejectedOverload = 0;
  std::int64_t badRequests = 0;     ///< undecodable lines (connection dropped)
  std::int64_t compileFailures = 0; ///< responses whose result has ok == false
  ResultCacheStats cache;
  AdmissionStats queue;
  /// Server-side total service time per job response (receipt -> reply
  /// written), hits and misses separately — the hit path is the point of the
  /// cache, and mixing it into one distribution would hide the miss tail.
  std::vector<std::int64_t> hitLatencyNs;
  std::vector<std::int64_t> missLatencyNs;
};

class ServiceServer {
 public:
  explicit ServiceServer(ServerOptions options);
  ~ServiceServer();
  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds the socket, opens the cache journal (when configured), and spawns
  /// the acceptor + workers. Returns false with a diagnostic in `error`.
  [[nodiscard]] bool start(std::string& error);

  /// Graceful wind-down as documented above. Safe to call more than once and
  /// from signal-driven paths (it only flips flags and joins). Returns after
  /// every admitted job has replied and the cache journal is closed.
  void stop();

  /// True while the acceptor is live (start succeeded, stop not yet called
  /// and no fatal listener error).
  [[nodiscard]] bool running() const { return running_.load(); }

  [[nodiscard]] const std::string& socketPath() const { return options_.socketPath; }

  /// Snapshot of the counters (latency vectors copied).
  [[nodiscard]] ServerStats stats() const;

  /// The stats snapshot rendered as the JSON object served for "stats"
  /// requests and embedded in BENCH_served.json (schema: docs/metrics.md).
  [[nodiscard]] Json statsJson() const;

 private:
  struct Connection;

  void acceptLoop();
  void connectionLoop(std::shared_ptr<Connection> conn);
  /// The "health" object served for ping requests: uptimeNs, queueDepth,
  /// inFlight, windingDown — computed inline on the reader thread, never
  /// queued, so a prober can tell "wedged" from "slow" even at full load.
  [[nodiscard]] Json healthJson() const;
  void handleJob(const std::shared_ptr<Connection>& conn, std::int64_t id,
                 const Json& jobDoc, std::int64_t receivedNs);
  void compileAndReply(const std::shared_ptr<Connection>& conn, std::int64_t id,
                       const std::string& cacheKey, const Loop& loop,
                       const MachineDesc& machine, const PipelineOptions& options,
                       std::int64_t receivedNs, std::int64_t pushedNs);
  void reply(const std::shared_ptr<Connection>& conn, const Json& envelope);
  void recordResponse(bool cacheHit, bool resultOk, std::int64_t receivedNs);

  ServerOptions options_;
  ResultCache cache_;
  AdmissionQueue queue_;
  UnixListener listener_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;
  std::vector<std::thread> connectionThreads_;
  std::mutex connectionThreadsMutex_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stopMutex_;
  bool stopped_ = false;  ///< guarded by stopMutex_
  std::atomic<std::int64_t> nextClientId_{1};
  std::int64_t startNs_ = 0;  ///< set by start(); basis for health uptimeNs

  mutable std::mutex statsMutex_;
  ServerStats stats_;
};

}  // namespace rapt
