#include "shard/Orchestrator.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>

#include "pipeline/WorkerProtocol.h"
#include "shard/ShardProtocol.h"
#include "support/Interrupt.h"
#include "support/Journal.h"
#include "support/Rng.h"
#include "support/StageTimer.h"
#include "support/Subprocess.h"
#include "support/ThreadPool.h"

namespace rapt {
namespace {

namespace fs = std::filesystem;

std::int64_t steadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// "<directory of this executable>", for shardBinary defaulting.
std::string selfExePath() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return buf;
}

enum CancelReason : int {
  kCancelNone = 0,
  kCancelStraggler = 1,
  kCancelHeartbeatTimeout = 2,
  kCancelTorture = 3,
};

/// The monitor's view of one in-flight shard attempt. The owning worker
/// thread registers it before spawning and deregisters after waitpid; the
/// monitor thread only reads timestamps and flips `cancel`, so everything
/// shared is atomic.
struct RunningAttempt {
  int attemptId = 0;
  int shardId = 0;
  std::int64_t startMs = 0;
  std::atomic<std::int64_t> lastEventMs{0};
  std::atomic<bool> cancel{false};
  std::atomic<int> cancelReason{kCancelNone};
};

struct WorkItem {
  int shardId = 0;
  std::vector<int> indices;
};

/// Everything shared across worker threads during one campaign.
struct Campaign {
  const ShardOptions& opt;
  CorpusManifest manifest;
  std::string configHash;
  std::string manifestHash;
  std::string shardBinary;

  std::atomic<int> attemptSeq{0};
  std::atomic<int> shardSeq{0};
  std::atomic<int> killBudget{0};

  // live counters (merge-scan counters are filled from the final scan)
  std::atomic<int> attemptsLaunched{0}, deaths{0}, retries{0}, splits{0},
      poisonedRows{0}, stragglersCancelled{0}, heartbeatTimeouts{0},
      killsInflicted{0}, spawnRetries{0};

  // monitor registry + straggler statistics
  std::mutex monitorMutex;
  std::vector<std::shared_ptr<RunningAttempt>> running;
  P2Quantile attemptP95{95.0};
  int attemptSamples = 0;

  // orchestrator-owned journal for poisoned rows
  std::mutex poisonMutex;
  JournalWriter poisonJournal;

  std::mutex errorMutex;
  std::string fatalError;  ///< protocol-grade failure: abort the campaign

  explicit Campaign(const ShardOptions& o)
      : opt(o), manifest(o.manifest) {}

  void setFatal(const std::string& error) {
    const std::lock_guard<std::mutex> lock(errorMutex);
    if (fatalError.empty()) fatalError = error;
  }
  [[nodiscard]] bool fatal() {
    const std::lock_guard<std::mutex> lock(errorMutex);
    return !fatalError.empty();
  }
};

void vlog(const Campaign& c, const char* fmt, ...) {
  if (!c.opt.verbose) return;
  va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "rapt-shard: ");
  std::vfprintf(stderr, fmt, ap);
  std::fprintf(stderr, "\n");
  va_end(ap);
}

std::string poisonJournalPath(const Campaign& c) {
  return c.opt.journalDir + "/poison.jsonl";
}

/// Appends one orchestrator-classified failure row for a row no shard can
/// carry: quarantined, never dropped. Lazily opens poison.jsonl (appending
/// to a valid pre-existing one on resume).
bool journalPoisonRow(Campaign& c, int index, FailureClass cls,
                      const std::string& error) {
  const Loop loop = c.manifest.materialize(index);
  LoopResult r;
  r.loopName = loop.name;
  r.numOps = loop.size();
  r.ok = false;
  r.failureClass = cls;
  r.error = error;
  r.partitionerUsed = c.opt.pipeline.partitioner;

  const std::lock_guard<std::mutex> lock(c.poisonMutex);
  if (!c.poisonJournal.isOpen()) {
    const std::string path = poisonJournalPath(c);
    bool appended = false;
    if (c.opt.resume) {
      const JournalContents prior = loadJournal(path);
      const Json* hash = prior.valid ? prior.header.find("configHash") : nullptr;
      if (hash != nullptr && hash->isString() &&
          hash->asString() == c.configHash) {
        appended = c.poisonJournal.openAppend(path);
      }
    }
    if (!appended) {
      Json header = Json::object();
      header["configHash"] = c.configHash;
      header["manifestHash"] = c.manifestHash;
      header["shard"] = -1;  // the orchestrator itself
      header["attempt"] = -1;
      header["machine"] = c.opt.machine.name;
      if (!c.poisonJournal.create(path, std::move(header))) return false;
    }
  }
  return c.poisonJournal.append(encodeShardRow(index, loop, r));
}

// ---- the monitor thread ----------------------------------------------------

class Monitor {
 public:
  explicit Monitor(Campaign& c) : c_(c), thread_([this] { loop(); }) {}
  ~Monitor() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(100));
      if (stop_) return;
      sweep();
    }
  }

  void sweep() {
    const std::int64_t now = steadyNowMs();
    const std::lock_guard<std::mutex> reg(c_.monitorMutex);
    // Straggler deadline: p95 of completed attempt durations, once enough
    // completions exist to make a percentile meaningful.
    std::int64_t deadline = -1;
    if (c_.attemptSamples >= c_.opt.stragglerMinSamples) {
      deadline = std::max<std::int64_t>(
          c_.opt.stragglerFloorMs,
          static_cast<std::int64_t>(c_.opt.stragglerFactor *
                                    c_.attemptP95.estimate()));
    }
    for (const auto& ra : c_.running) {
      if (ra->cancel.load(std::memory_order_relaxed)) continue;
      if (c_.opt.heartbeatTimeoutMs > 0 &&
          now - ra->lastEventMs.load(std::memory_order_relaxed) >
              c_.opt.heartbeatTimeoutMs) {
        ra->cancelReason.store(kCancelHeartbeatTimeout);
        ra->cancel.store(true);
        continue;
      }
      if (deadline > 0 && now - ra->startMs > deadline) {
        ra->cancelReason.store(kCancelStraggler);
        ra->cancel.store(true);
      }
    }
  }

  Campaign& c_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

// ---- one shard attempt -----------------------------------------------------

struct AttemptOutcome {
  SubprocessResult sub;
  bool ended = false;      ///< the worker printed its "end" event
  int cancelReason = kCancelNone;
  std::int64_t wallMs = 0;
};

AttemptOutcome runAttempt(Campaign& c, const WorkItem& item, int attemptId,
                          const std::string& journalPath, int killAtRow) {
  ShardJob job;
  job.shardId = item.shardId;
  job.attempt = attemptId;
  job.manifest = c.opt.manifest;
  job.indices = item.indices;
  job.journalPath = journalPath;
  job.machine = c.opt.machine;
  job.options = c.opt.pipeline;

  auto ra = std::make_shared<RunningAttempt>();
  ra->attemptId = attemptId;
  ra->shardId = item.shardId;
  ra->startMs = steadyNowMs();
  ra->lastEventMs.store(ra->startMs);
  {
    const std::lock_guard<std::mutex> lock(c.monitorMutex);
    c.running.push_back(ra);
  }

  AttemptOutcome out;
  bool killFired = false;
  SubprocessSpec spec;
  spec.argv = {c.shardBinary, "--worker"};
  spec.stdinData = encodeShardJob(job).dumpCompact() + "\n";
  spec.maxStdoutBytes = 64 * 1024 * 1024;  // heartbeats; ~60B per row
  spec.cancel = &ra->cancel;
  if (!c.opt.chaosSpec.empty())
    spec.extraEnv.push_back("RAPT_CHAOS=" + c.opt.chaosSpec);
  spec.onStdoutLine = [&](const std::string& line) {
    Json doc;
    std::string error;
    ShardEvent ev;
    if (!Json::parse(line, doc, error) || !decodeShardEvent(doc, ev, error))
      return;  // garbage on the pipe is ignorable; the journal is the truth
    ra->lastEventMs.store(steadyNowMs(), std::memory_order_relaxed);
    if (ev.kind == ShardEvent::Kind::End) out.ended = true;
    // Torture: SIGKILL the healthy worker once it has journaled killAtRow
    // rows — mid-campaign, mid-shard, with the next row possibly mid-append.
    if (killAtRow >= 0 && !killFired && ev.rowsDone >= killAtRow) {
      killFired = true;
      ra->cancelReason.store(kCancelTorture);
      ra->cancel.store(true);
      c.killsInflicted.fetch_add(1, std::memory_order_relaxed);
    }
  };

  out.sub = runSubprocess(spec);
  out.wallMs = steadyNowMs() - ra->startMs;
  out.cancelReason = ra->cancelReason.load();
  {
    const std::lock_guard<std::mutex> lock(c.monitorMutex);
    c.running.erase(std::find(c.running.begin(), c.running.end(), ra));
    if (out.ended && out.sub.exitedCleanly()) {
      c.attemptP95.add(static_cast<double>(out.wallMs));
      ++c.attemptSamples;
    }
  }
  return out;
}

// ---- shard lifecycle: retry, split, poison ---------------------------------

void processItem(Campaign& c, WorkItem item) {
  int deaths = 0;
  int lastDeathReason = kCancelNone;  // kCancelNone = crash-grade death
  for (int attempt = 0; attempt < c.opt.maxAttemptsPerItem; ++attempt) {
    if (interruptRequested() || c.fatal()) return;

    const int attemptId = c.attemptSeq.fetch_add(1);
    c.attemptsLaunched.fetch_add(1, std::memory_order_relaxed);

    // Seeded torture plan for this attempt: with budget remaining, kill this
    // worker after it journals a row in the first half of its range.
    int killAtRow = -1;
    SplitMix64 rng(c.opt.tortureSeed ^
                   (0x9e3779b97f4a7c15ull *
                    static_cast<std::uint64_t>(attemptId + 1)));
    if (c.opt.tortureKills > 0 && rng.chancePercent(75)) {
      if (c.killBudget.fetch_sub(1, std::memory_order_relaxed) > 0) {
        killAtRow = static_cast<int>(
            rng.range(1, std::max<std::int64_t>(
                             1, static_cast<std::int64_t>(item.indices.size()) / 2)));
      } else {
        c.killBudget.fetch_add(1, std::memory_order_relaxed);
      }
    }

    const std::string journalPath =
        c.opt.journalDir + "/attempt_" + std::to_string(attemptId) + ".jsonl";
    const AttemptOutcome out =
        runAttempt(c, item, attemptId, journalPath, killAtRow);

    if (out.ended && out.sub.exitedCleanly()) {
      vlog(c, "shard %d done (attempt %d, %d rows, %lldms)", item.shardId,
           attemptId, static_cast<int>(item.indices.size()),
           static_cast<long long>(out.wallMs));
      return;
    }

    // Classify the death and decide whether it was transient (retry at the
    // same granularity) or crash-grade (count toward the split threshold).
    c.retries.fetch_add(1, std::memory_order_relaxed);
    if (out.sub.cancelled && out.cancelReason == kCancelTorture) {
      vlog(c, "shard %d attempt %d: torture kill after row %d", item.shardId,
           attemptId, killAtRow);
      // Transient by construction — the next attempt is not killed unless
      // the seeded schedule says so.
    } else if (out.sub.cancelled && out.cancelReason == kCancelStraggler) {
      c.stragglersCancelled.fetch_add(1, std::memory_order_relaxed);
      vlog(c, "shard %d attempt %d: straggler cancelled after %lldms",
           item.shardId, attemptId, static_cast<long long>(out.wallMs));
      // Transient: re-dispatch; its journaled rows still count (first-wins).
    } else if (out.sub.spawnFailed) {
      c.spawnRetries.fetch_add(1, std::memory_order_relaxed);
    } else if (out.sub.cancelled &&
               out.cancelReason == kCancelHeartbeatTimeout) {
      c.heartbeatTimeouts.fetch_add(1, std::memory_order_relaxed);
      c.deaths.fetch_add(1, std::memory_order_relaxed);
      ++deaths;
      lastDeathReason = kCancelHeartbeatTimeout;
      vlog(c, "shard %d attempt %d: heartbeat timeout", item.shardId, attemptId);
    } else if (out.sub.exitCode == kShardBadJobExit) {
      // Deterministic refusal: a protocol bug, not a flaky shard. Retrying
      // cannot help and splitting would only multiply the refusals.
      c.setFatal("shard worker rejected the job (exit 3): " + out.sub.err);
      return;
    } else {
      c.deaths.fetch_add(1, std::memory_order_relaxed);
      ++deaths;
      lastDeathReason = kCancelNone;
      vlog(c, "shard %d attempt %d died (signal %d, exit %d)", item.shardId,
           attemptId, out.sub.signal, out.sub.exitCode);
    }

    if (deaths >= c.opt.maxDeaths || attempt + 1 >= c.opt.maxAttemptsPerItem) {
      if (item.indices.size() > 1) {
        // Crash loop: split the range so the poisoned row (if any) ends up
        // alone and the healthy rows stop dying with it.
        c.splits.fetch_add(1, std::memory_order_relaxed);
        const std::size_t half = item.indices.size() / 2;
        WorkItem lo, hi;
        lo.shardId = c.shardSeq.fetch_add(1);
        hi.shardId = c.shardSeq.fetch_add(1);
        lo.indices.assign(item.indices.begin(),
                          item.indices.begin() + static_cast<std::ptrdiff_t>(half));
        hi.indices.assign(item.indices.begin() + static_cast<std::ptrdiff_t>(half),
                          item.indices.end());
        vlog(c, "shard %d: crash loop, splitting %zu rows into %d+%d",
             item.shardId, item.indices.size(), lo.shardId, hi.shardId);
        processItem(c, std::move(lo));
        processItem(c, std::move(hi));
        return;
      }
      // One row that keeps killing workers: quarantine and classify it.
      const int index = item.indices.front();
      const FailureClass cls = lastDeathReason == kCancelHeartbeatTimeout
                                   ? FailureClass::HardTimeout
                                   : FailureClass::Crash;
      const std::string why =
          lastDeathReason == kCancelHeartbeatTimeout
              ? "poisoned loop: shard worker hung past the heartbeat "
                "timeout on every attempt"
              : "poisoned loop: shard worker died on every attempt";
      if (journalPoisonRow(c, index, cls, why)) {
        c.poisonedRows.fetch_add(1, std::memory_order_relaxed);
        vlog(c, "row %d poisoned (%s)", index, failureClassName(cls));
      } else {
        c.setFatal("cannot journal poisoned row " + std::to_string(index));
      }
      return;
    }

    // Seeded exponential backoff before the retry; jittered so a herd of
    // dying shards does not re-dispatch in lockstep.
    const std::int64_t base = c.opt.retryBackoffBaseMs
                              << std::min(attempt, 6);
    SplitMix64 backoff(c.opt.retrySeed ^
                       (0x9e3779b97f4a7c15ull *
                        static_cast<std::uint64_t>(attemptId + 1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(
        base + backoff.range(0, std::max<std::int64_t>(1, base / 2))));
  }
}

// ---- journal scan + merge --------------------------------------------------

struct MergeScan {
  std::vector<unsigned char> have;
  std::vector<LoopResult> rows;
  int duplicateRowsDropped = 0;
  int quarantinedLines = 0;
  int tornTailLines = 0;
  int mismatchedRowsDropped = 0;
  int headerMismatchedFiles = 0;
};

/// Scans every journal in journalDir, validating headers and per-row loop
/// hashes, deduplicating first-wins in (file name, append order). Trust is
/// earned line by line: a damaged header forfeits the file, a damaged line
/// is quarantined by the loader, a hash-mismatched row is dropped — all of
/// them surface as missing rows that get re-dispatched, never as silent
/// corruption in the aggregate.
MergeScan scanJournals(const Campaign& c) {
  MergeScan m;
  const int n = c.manifest.size();
  m.have.assign(static_cast<std::size_t>(n), 0);
  m.rows.resize(static_cast<std::size_t>(n));

  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::directory_iterator it(c.opt.journalDir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->path().extension() == ".jsonl") files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());

  // Lazily computed per-index loop hashes: a scan touches each index once.
  std::vector<std::string> expectedHash(static_cast<std::size_t>(n));

  for (const fs::path& file : files) {
    const JournalContents jc = loadJournal(file.string());
    if (!jc.valid) {
      ++m.headerMismatchedFiles;
      continue;
    }
    const Json* config = jc.header.find("configHash");
    const Json* manifest = jc.header.find("manifestHash");
    if (config == nullptr || !config->isString() ||
        config->asString() != c.configHash || manifest == nullptr ||
        !manifest->isString() || manifest->asString() != c.manifestHash) {
      ++m.headerMismatchedFiles;
      continue;
    }
    m.quarantinedLines += jc.quarantinedLines;
    m.tornTailLines += jc.tornTailLines;

    for (const Json& row : jc.rows) {
      const Json* kind = row.find("kind");
      const Json* index = row.find("index");
      const Json* loopHash = row.find("loopHash");
      const Json* result = row.find("result");
      if (kind == nullptr || !kind->isString() || kind->asString() != "row" ||
          index == nullptr || !index->isInt() || loopHash == nullptr ||
          !loopHash->isString() || result == nullptr || !result->isObject())
        continue;
      const std::int64_t i = index->asInt();
      if (i < 0 || i >= n) continue;
      const auto slot = static_cast<std::size_t>(i);
      // Hash validation BEFORE dedup: a drifted row must always surface as
      // mismatched, not hide behind a later attempt's valid duplicate.
      if (expectedHash[slot].empty()) {
        expectedHash[slot] = hashToHex(
            loopTextHash(c.manifest.materialize(static_cast<int>(i))));
      }
      if (loopHash->asString() != expectedHash[slot]) {
        ++m.mismatchedRowsDropped;
        continue;
      }
      if (m.have[slot] != 0) {
        ++m.duplicateRowsDropped;
        continue;
      }
      LoopResult r;
      std::string error;
      if (!decodeLoopResult(*result, r, error)) {
        ++m.mismatchedRowsDropped;
        continue;
      }
      m.rows[slot] = std::move(r);
      m.have[slot] = 1;
    }
  }
  return m;
}

std::vector<int> missingIndices(const MergeScan& m) {
  std::vector<int> missing;
  for (std::size_t i = 0; i < m.have.size(); ++i)
    if (m.have[i] == 0) missing.push_back(static_cast<int>(i));
  return missing;
}

/// Chunks `missing` into at most opt.shards contiguous work items.
std::vector<WorkItem> planShards(Campaign& c, const std::vector<int>& missing) {
  std::vector<WorkItem> items;
  const int shards = std::max(1, c.opt.shards);
  const std::size_t per =
      (missing.size() + static_cast<std::size_t>(shards) - 1) /
      static_cast<std::size_t>(shards);
  for (std::size_t at = 0; at < missing.size(); at += per) {
    WorkItem item;
    item.shardId = c.shardSeq.fetch_add(1);
    const std::size_t end = std::min(missing.size(), at + per);
    item.indices.assign(missing.begin() + static_cast<std::ptrdiff_t>(at),
                        missing.begin() + static_cast<std::ptrdiff_t>(end));
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace

ShardReport runShardedSuite(const ShardOptions& opt) {
  StageTimer wall;
  ShardReport report;
  Campaign c(opt);

  if (opt.journalDir.empty()) {
    report.error = "ShardOptions::journalDir is required";
    return report;
  }
  c.configHash = hashToHex(suiteConfigHash(opt.machine, opt.pipeline));
  c.manifestHash = c.manifest.hashHex();
  c.shardBinary = opt.shardBinary.empty() ? selfExePath() : opt.shardBinary;
  c.killBudget.store(opt.tortureKills);
  if (c.shardBinary.empty()) {
    report.error = "cannot resolve the shard worker binary";
    return report;
  }

  std::error_code ec;
  fs::create_directories(opt.journalDir, ec);
  if (ec) {
    report.error = "cannot create journal dir: " + ec.message();
    return report;
  }
  if (!opt.resume) {
    // A fresh campaign owns its directory: stale journals from another run
    // would either fail the header check (noise) or — same config — leak
    // rows into this run's aggregate as false resumes.
    for (fs::directory_iterator it(opt.journalDir, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (it->path().extension() == ".jsonl") fs::remove(it->path(), ec);
    }
  }

  MergeScan scan = scanJournals(c);
  const int resumedRows =
      static_cast<int>(std::count(scan.have.begin(), scan.have.end(), 1));

  int rounds = 0;
  for (;;) {
    std::vector<int> missing = missingIndices(scan);
    if (missing.empty()) break;
    if (interruptRequested()) {
      report.error = "interrupted; journals kept, rerun with resume";
      return report;
    }
    if (c.fatal()) {
      report.error = c.fatalError;
      return report;
    }
    if (rounds >= opt.maxRounds) {
      report.error = std::to_string(missing.size()) +
                     " rows still missing after " + std::to_string(rounds) +
                     " dispatch rounds";
      return report;
    }
    ++rounds;
    vlog(c, "round %d: %zu rows to dispatch", rounds, missing.size());

    std::vector<WorkItem> items = planShards(c, missing);
    const int hw = ThreadPool::hardwareThreads();
    const int threads = std::clamp(
        opt.concurrency == 0 ? hw : opt.concurrency, 1,
        std::max(1, static_cast<int>(items.size())));
    {
      Monitor monitor(c);
      parallelFor(static_cast<int>(items.size()), threads,
                  [&](int k) { processItem(c, std::move(items[static_cast<std::size_t>(k)])); });
    }
    scan = scanJournals(c);
  }
  {
    const std::lock_guard<std::mutex> lock(c.poisonMutex);
    c.poisonJournal.close();
  }
  if (c.fatal()) {
    report.error = c.fatalError;
    return report;
  }

  // ---- final reduce: index order, one code path (SuiteReducer) ----
  SuiteReducer reducer(opt.machine, /*keepRows=*/false);
  report.strata.resize(static_cast<std::size_t>(CorpusManifest::numStrata()));
  for (int s = 0; s < CorpusManifest::numStrata(); ++s)
    report.strata[static_cast<std::size_t>(s)].name =
        CorpusManifest::stratum(s).name;
  std::vector<double> stratumDegradationSum(report.strata.size(), 0.0);
  std::vector<int> stratumOkRows(report.strata.size(), 0);

  report.aggregateRowsHash = semanticRowsHash(scan.rows);
  report.aggregateRowsHashHex = hashToHex(report.aggregateRowsHash);
  for (std::size_t i = 0; i < scan.rows.size(); ++i) {
    const LoopResult& r = scan.rows[i];
    const auto s = static_cast<std::size_t>(
        c.manifest.stratumOf(static_cast<int>(i)));
    StratumReport& st = report.strata[s];
    ++st.rows;
    st.latency.add(r.trace.totalNs);
    report.latency.add(r.trace.totalNs);
    if (r.ok) {
      stratumDegradationSum[s] += r.degradationPercent();
      ++stratumOkRows[s];
    } else {
      ++st.failures;
    }
    reducer.add(std::move(scan.rows[i]));
  }
  for (std::size_t s = 0; s < report.strata.size(); ++s) {
    if (stratumOkRows[s] > 0)
      report.strata[s].meanDegradation =
          stratumDegradationSum[s] / stratumOkRows[s];
  }

  report.aggregate = reducer.finish();
  report.aggregate.plannedLoops = c.manifest.size();
  report.aggregate.isolationUsed = SuiteIsolation::Subprocess;
  report.aggregate.threadsUsed =
      opt.concurrency == 0 ? ThreadPool::hardwareThreads() : opt.concurrency;
  report.aggregate.resumedRows = resumedRows;
  report.aggregate.quarantinedRows =
      scan.quarantinedLines + scan.tornTailLines;
  report.aggregate.spawnRetries = c.spawnRetries.load();

  report.counters.rounds = rounds;
  report.counters.attemptsLaunched = c.attemptsLaunched.load();
  report.counters.deaths = c.deaths.load();
  report.counters.retries = c.retries.load();
  report.counters.splits = c.splits.load();
  report.counters.poisonedRows = c.poisonedRows.load();
  report.counters.stragglersCancelled = c.stragglersCancelled.load();
  report.counters.heartbeatTimeouts = c.heartbeatTimeouts.load();
  report.counters.killsInflicted = c.killsInflicted.load();
  report.counters.spawnRetries = c.spawnRetries.load();
  report.counters.duplicateRowsDropped = scan.duplicateRowsDropped;
  report.counters.quarantinedLines = scan.quarantinedLines;
  report.counters.tornTailLines = scan.tornTailLines;
  report.counters.mismatchedRowsDropped = scan.mismatchedRowsDropped;
  report.counters.headerMismatchedFiles = scan.headerMismatchedFiles;
  report.counters.resumedRows = resumedRows;

  report.wallNs = wall.elapsedNs();
  report.aggregate.suiteWallNs = report.wallNs;
  report.ok = true;
  return report;
}

Json shardBenchJson(const ShardOptions& opt, const ShardReport& report) {
  Json doc = Json::object();
  doc["schema"] = "rapt-bench-shard-v1";
  doc["bench"] = "shard";
  doc["ok"] = report.ok;
  if (!report.ok) doc["error"] = report.error;

  Json manifest = Json::object();
  manifest["seed"] = hashToHex(opt.manifest.seed);
  manifest["count"] = opt.manifest.count;
  manifest["trip"] = opt.manifest.trip;
  manifest["hash"] = CorpusManifest(opt.manifest).hashHex();
  doc["manifest"] = std::move(manifest);

  Json config = Json::object();
  config["machine"] = opt.machine.name;
  config["configHash"] = hashToHex(suiteConfigHash(opt.machine, opt.pipeline));
  config["shards"] = opt.shards;
  config["concurrency"] = report.aggregate.threadsUsed;
  config["tortureKills"] = opt.tortureKills;
  config["chaos"] = opt.chaosSpec;
  doc["config"] = std::move(config);

  const auto digestJson = [](const LatencyDigest& d) {
    Json j = Json::object();
    j["count"] = d.count();
    j["p50Ns"] = d.p50Ns();
    j["p95Ns"] = d.p95Ns();
    j["p99Ns"] = d.p99Ns();
    j["minNs"] = d.minNs();
    j["maxNs"] = d.maxNs();
    j["meanNs"] = d.meanNs();
    return j;
  };
  doc["latency"] = digestJson(report.latency);

  Json strata = Json::array();
  for (const StratumReport& st : report.strata) {
    Json j = Json::object();
    j["name"] = st.name;
    j["rows"] = st.rows;
    j["failures"] = st.failures;
    j["meanDegradation"] = st.meanDegradation;
    j["latency"] = digestJson(st.latency);
    strata.push(std::move(j));
  }
  doc["strata"] = std::move(strata);

  const SuiteResult& s = report.aggregate;
  Json agg = Json::object();
  agg["rows"] = s.plannedLoops;
  agg["failures"] = s.failures;
  Json byClass = Json::object();
  for (int cls = 0; cls < kNumFailureClasses; ++cls) {
    byClass[failureClassName(static_cast<FailureClass>(cls))] =
        s.failuresByClass[static_cast<std::size_t>(cls)];
  }
  agg["failuresByClass"] = std::move(byClass);
  agg["validated"] = s.validatedCount;
  agg["certified"] = s.certifiedCount;
  agg["meanIdealIpc"] = s.meanIdealIpc;
  agg["meanClusteredIpc"] = s.meanClusteredIpc;
  agg["arithMeanNormalized"] = s.arithMeanNormalized;
  agg["harmMeanNormalized"] = s.harmMeanNormalized;
  agg["totalBodyCopies"] = s.totalBodyCopies;
  Json percent = Json::array();
  Json count = Json::array();
  for (int b = 0; b < DegradationHistogram::kNumBuckets; ++b) {
    percent.push(s.histogram.percent(b));
    count.push(s.histogram.count(b));
  }
  agg["histogramPercent"] = std::move(percent);
  agg["histogramCount"] = std::move(count);
  agg["rowsHash"] = report.aggregateRowsHashHex;
  doc["aggregates"] = std::move(agg);

  Json rob = Json::object();
  rob["rounds"] = report.counters.rounds;
  rob["attemptsLaunched"] = report.counters.attemptsLaunched;
  rob["deaths"] = report.counters.deaths;
  rob["retries"] = report.counters.retries;
  rob["splits"] = report.counters.splits;
  rob["poisonedRows"] = report.counters.poisonedRows;
  rob["stragglersCancelled"] = report.counters.stragglersCancelled;
  rob["heartbeatTimeouts"] = report.counters.heartbeatTimeouts;
  rob["killsInflicted"] = report.counters.killsInflicted;
  rob["spawnRetries"] = report.counters.spawnRetries;
  rob["duplicateRowsDropped"] = report.counters.duplicateRowsDropped;
  rob["quarantinedLines"] = report.counters.quarantinedLines;
  rob["tornTailLines"] = report.counters.tornTailLines;
  rob["mismatchedRowsDropped"] = report.counters.mismatchedRowsDropped;
  rob["headerMismatchedFiles"] = report.counters.headerMismatchedFiles;
  rob["resumedRows"] = report.counters.resumedRows;
  doc["robustness"] = std::move(rob);

  doc["wallNs"] = report.wallNs;
  return doc;
}

}  // namespace rapt
