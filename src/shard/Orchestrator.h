// Self-healing shard orchestrator for 100k+-loop manifest campaigns
// (docs/sharding.md; ROADMAP item 5).
//
// The orchestrator turns a CorpusManifest into shard jobs (explicit global
// index lists), runs each in a supervised child process (tools/rapt-shard
// --worker via support/Subprocess), and survives every way a shard can die:
//
//   * crash / nonzero exit      -> bounded retry with seeded exponential
//                                  backoff; repeated deaths SPLIT the shard
//                                  (binary, down to one row) so a poisoned
//                                  loop is isolated, classified, and
//                                  journaled — never dropped, never allowed
//                                  to take healthy rows down with it;
//   * silence (hung worker)     -> per-shard heartbeats over the worker pipe;
//                                  a heartbeat gap beyond the timeout is a
//                                  kill-and-retry, and a row that keeps
//                                  hanging is quarantined as HardTimeout;
//   * stragglers                -> a deadline derived from the p95 of
//                                  completed attempts (streamed through
//                                  support/Stats' P2Quantile) cancels and
//                                  re-dispatches the slow attempt; rows both
//                                  attempts journaled dedup first-wins at
//                                  merge;
//   * torture (tests, CI)       -> a seeded kill schedule SIGKILLs healthy
//                                  shards mid-row, and RAPT_CHAOS I/O fault
//                                  injection is armed in the children.
//
// Recovery is ROUNDS of the same shape: scan every journal in the directory
// (validating manifestHash + configHash headers and per-row loop hashes,
// deduplicating first-wins), compute the missing rows, dispatch them as new
// shard jobs, repeat until no row is missing. `resume` is literally round
// zero of that loop — which is why a resumed, killed, chaos-ridden campaign
// aggregates BIT-IDENTICALLY (semantic row hash + SuiteReducer aggregates)
// to a clean single-process run of the same manifest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/MachineDesc.h"
#include "pipeline/CompilerPipeline.h"
#include "pipeline/Suite.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "workload/CorpusManifest.h"

namespace rapt {

struct ShardOptions {
  ManifestParams manifest;
  MachineDesc machine;
  PipelineOptions pipeline;       ///< result-relevant knobs (wire codec)

  int shards = 8;                 ///< target shard count per dispatch round
  int concurrency = 0;            ///< parallel shard children (0 = hardware)
  std::string journalDir;         ///< REQUIRED: per-attempt journals + poison.jsonl
  std::string shardBinary;        ///< rapt-shard path ("" = this executable)
  bool resume = false;            ///< trust intact rows already in journalDir

  int maxDeaths = 2;              ///< crash-grade deaths before a shard splits
  int maxAttemptsPerItem = 12;    ///< hard cap incl. transient cancels
  std::int64_t retryBackoffBaseMs = 50;   ///< seeded exponential backoff base
  std::uint64_t retrySeed = 0x5eed;

  std::int64_t heartbeatTimeoutMs = 30'000;  ///< silence => kill + retry
  double stragglerFactor = 4.0;   ///< deadline = factor * p95(completed)
  int stragglerMinSamples = 5;    ///< completions before stragglers exist
  std::int64_t stragglerFloorMs = 2'000;  ///< never cancel under this age

  int tortureKills = 0;           ///< seeded SIGKILL budget (tests / CI)
  std::uint64_t tortureSeed = 1;
  std::string chaosSpec;          ///< RAPT_CHAOS armed in children ("" = off)

  int maxRounds = 12;             ///< repair-round cap (termination backstop)
  bool verbose = false;           ///< per-event progress on stderr
};

/// Latency + failure distribution of one manifest stratum (BENCH_shard.json
/// "strata"; docs/metrics.md).
struct StratumReport {
  std::string name;
  int rows = 0;
  int failures = 0;
  double meanDegradation = 0.0;  ///< mean degradationPercent over ok rows
  LatencyDigest latency;
};

struct ShardCounters {
  int rounds = 0;
  int attemptsLaunched = 0;
  int deaths = 0;             ///< crash-grade: signal, bad exit, hb timeout
  int retries = 0;            ///< re-dispatches of any kind
  int splits = 0;
  int poisonedRows = 0;
  int stragglersCancelled = 0;
  int heartbeatTimeouts = 0;
  int killsInflicted = 0;     ///< torture SIGKILLs actually delivered
  int spawnRetries = 0;
  int duplicateRowsDropped = 0;   ///< first-wins dedup at merge
  int quarantinedLines = 0;       ///< CRC-damaged interior journal lines
  int tornTailLines = 0;          ///< torn tails (SIGKILL mid-append)
  int mismatchedRowsDropped = 0;  ///< loopHash disagreed with the manifest
  int headerMismatchedFiles = 0;  ///< journals from another config/manifest
  int resumedRows = 0;            ///< rows trusted from pre-existing journals
};

struct ShardReport {
  bool ok = false;
  std::string error;               ///< why !ok

  /// Aggregates over all manifest rows, reduced through SuiteReducer in
  /// index order with keepRows == false: `loops` is empty, everything else
  /// is bit-identical to a clean single-process runSuiteStreamed.
  SuiteResult aggregate;
  std::uint64_t aggregateRowsHash = 0;  ///< semanticRowsHash over all rows
  std::string aggregateRowsHashHex;

  LatencyDigest latency;           ///< per-row compile latency, all strata
  std::vector<StratumReport> strata;
  ShardCounters counters;
  std::int64_t wallNs = 0;
};

/// Runs the full campaign. Blocking; spawns up to `concurrency` children at
/// a time plus one monitor thread. Honors SIGINT/SIGTERM wind-down
/// (support/Interrupt.h): journals survive, rerun with resume to finish.
[[nodiscard]] ShardReport runShardedSuite(const ShardOptions& options);

/// The BENCH_shard.json document (schema "rapt-bench-shard-v1", field-by-
/// field in docs/metrics.md) for a finished campaign.
[[nodiscard]] Json shardBenchJson(const ShardOptions& options,
                                  const ShardReport& report);

}  // namespace rapt
