#include "shard/ShardProtocol.h"

#include <cstdlib>

#include "pipeline/WorkerProtocol.h"

namespace rapt {
namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

bool endsWithNs(const std::string& key) {
  const std::size_t n = key.size();
  return n >= 2 && key[n - 2] == 'N' && key[n - 1] == 's';
}

}  // namespace

Json encodeShardJob(const ShardJob& job) {
  Json j = Json::object();
  j["schema"] = kShardJobSchema;
  j["shard"] = job.shardId;
  j["attempt"] = job.attempt;
  Json m = Json::object();
  m["seed"] = hashToHex(job.manifest.seed);
  m["count"] = job.manifest.count;
  m["trip"] = job.manifest.trip;
  j["manifest"] = std::move(m);
  Json idx = Json::array();
  for (const int i : job.indices) idx.push(i);
  j["indices"] = std::move(idx);
  j["journalPath"] = job.journalPath;
  j["machine"] = encodeMachineDesc(job.machine);
  j["options"] = encodePipelineOptions(job.options);
  return j;
}

bool decodeShardJob(const Json& doc, ShardJob& job, std::string& error) {
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->isString() ||
      schema->asString() != kShardJobSchema) {
    error = "not a " + std::string(kShardJobSchema) + " document";
    return false;
  }
  const Json* shard = doc.find("shard");
  const Json* attempt = doc.find("attempt");
  const Json* manifest = doc.find("manifest");
  const Json* indices = doc.find("indices");
  const Json* journalPath = doc.find("journalPath");
  const Json* machine = doc.find("machine");
  const Json* options = doc.find("options");
  if (shard == nullptr || !shard->isInt() || attempt == nullptr ||
      !attempt->isInt() || manifest == nullptr || !manifest->isObject() ||
      indices == nullptr || !indices->isArray() || journalPath == nullptr ||
      !journalPath->isString() || machine == nullptr || !machine->isObject() ||
      options == nullptr || !options->isObject()) {
    error = "shard job is missing a required field";
    return false;
  }
  job.shardId = static_cast<int>(shard->asInt());
  job.attempt = static_cast<int>(attempt->asInt());

  const Json* seed = manifest->find("seed");
  const Json* count = manifest->find("count");
  const Json* trip = manifest->find("trip");
  if (seed == nullptr || !seed->isString() || count == nullptr ||
      !count->isInt() || trip == nullptr || !trip->isInt()) {
    error = "shard job manifest is malformed";
    return false;
  }
  char* end = nullptr;
  job.manifest.seed = std::strtoull(seed->asString().c_str(), &end, 16);
  if (end == nullptr || *end != '\0' || seed->asString().empty()) {
    error = "shard job manifest seed is not a hex hash";
    return false;
  }
  job.manifest.count = static_cast<int>(count->asInt());
  job.manifest.trip = trip->asInt();

  job.indices.clear();
  job.indices.reserve(indices->size());
  for (std::size_t i = 0; i < indices->size(); ++i) {
    const Json& v = indices->at(i);
    if (!v.isInt() || v.asInt() < 0 || v.asInt() >= job.manifest.count) {
      error = "shard job index out of manifest range";
      return false;
    }
    job.indices.push_back(static_cast<int>(v.asInt()));
  }
  job.journalPath = journalPath->asString();
  if (!decodeMachineDesc(*machine, job.machine, error)) return false;
  return decodePipelineOptions(*options, job.options, error);
}

Json encodeShardHeartbeat(int shardId, int attempt, int rowsDone, int index) {
  Json j = Json::object();
  j["kind"] = "hb";
  j["shard"] = shardId;
  j["attempt"] = attempt;
  j["done"] = rowsDone;
  j["index"] = index;
  return j;
}

Json encodeShardEnd(int shardId, int attempt, int rowsDone) {
  Json j = Json::object();
  j["kind"] = "end";
  j["shard"] = shardId;
  j["attempt"] = attempt;
  j["done"] = rowsDone;
  return j;
}

bool decodeShardEvent(const Json& doc, ShardEvent& event, std::string& error) {
  const Json* kind = doc.find("kind");
  const Json* shard = doc.find("shard");
  const Json* attempt = doc.find("attempt");
  const Json* done = doc.find("done");
  if (kind == nullptr || !kind->isString() || shard == nullptr ||
      !shard->isInt() || attempt == nullptr || !attempt->isInt() ||
      done == nullptr || !done->isInt()) {
    error = "shard event is missing a required field";
    return false;
  }
  if (kind->asString() == "hb") {
    event.kind = ShardEvent::Kind::Heartbeat;
    const Json* index = doc.find("index");
    if (index == nullptr || !index->isInt()) {
      error = "heartbeat without an index";
      return false;
    }
    event.index = static_cast<int>(index->asInt());
  } else if (kind->asString() == "end") {
    event.kind = ShardEvent::Kind::End;
    event.index = -1;
  } else {
    error = "unknown shard event kind '" + kind->asString() + "'";
    return false;
  }
  event.shardId = static_cast<int>(shard->asInt());
  event.attempt = static_cast<int>(attempt->asInt());
  event.rowsDone = static_cast<int>(done->asInt());
  return true;
}

Json encodeShardRow(int globalIndex, const Loop& loop,
                    const LoopResult& result) {
  Json row = Json::object();
  row["kind"] = "row";
  row["index"] = globalIndex;
  row["loop"] = loop.name;
  row["loopHash"] = hashToHex(loopTextHash(loop));
  row["result"] = encodeLoopResult(result);
  return row;
}

Json shardJournalHeader(const ShardJob& job) {
  Json header = Json::object();
  header["configHash"] = hashToHex(suiteConfigHash(job.machine, job.options));
  header["manifestHash"] = CorpusManifest(job.manifest).hashHex();
  header["shard"] = job.shardId;
  header["attempt"] = job.attempt;
  header["rows"] = static_cast<int>(job.indices.size());
  header["machine"] = job.machine.name;
  return header;
}

Json stripWallTimes(const Json& doc) {
  switch (doc.kind()) {
    case Json::Kind::Object: {
      Json out = Json::object();
      for (const auto& [key, value] : doc.items())
        if (!endsWithNs(key)) out[key] = stripWallTimes(value);
      return out;
    }
    case Json::Kind::Array: {
      Json out = Json::array();
      for (std::size_t i = 0; i < doc.size(); ++i)
        out.push(stripWallTimes(doc.at(i)));
      return out;
    }
    default:
      return doc;
  }
}

std::uint64_t semanticResultHash(const Json& resultDoc) {
  return fnv1a(stripWallTimes(resultDoc).dumpCompact());
}

std::uint64_t semanticRowsHash(std::span<const LoopResult> rows) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const LoopResult& r : rows) {
    const std::uint64_t row = semanticResultHash(encodeLoopResult(r));
    for (int b = 0; b < 8; ++b) {
      h ^= (row >> (8 * b)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

}  // namespace rapt
