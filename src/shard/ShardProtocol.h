// Wire protocol between the shard orchestrator (tools/rapt-shard) and its
// shard worker children (docs/sharding.md).
//
// A shard job names WORK, not data: the manifest params plus an explicit
// list of global corpus indices — never loop text. The worker rebuilds the
// CorpusManifest from the params and regenerates each loop on demand, so a
// 100k-loop campaign ships kilobytes of JSON, and crash-loop splitting,
// resume gaps, and repair rounds are all the same shape of job (an index
// list) with no special cases. The job also carries the full MachineDesc
// and result-relevant PipelineOptions through the SAME codecs as the worker
// protocol, so suiteConfigHash agrees byte-for-byte between orchestrator,
// shard journals, and single-process reference runs.
//
// The worker's stdout is a heartbeat channel, one JSON document per line
// (delivered live through SubprocessSpec::onStdoutLine): a "hb" event
// before every row (I am alive, working on index i, k rows durable) and one
// terminal "end" event. Results NEVER travel over the pipe — each row is
// CRC-framed into the shard's own journal file (support/Journal.h) before
// its heartbeat is emitted, so the orchestrator can SIGKILL a shard at any
// instant and lose at most the row in flight, which the merge detects as a
// gap and re-dispatches.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "machine/MachineDesc.h"
#include "pipeline/CompilerPipeline.h"
#include "support/Json.h"
#include "workload/CorpusManifest.h"

namespace rapt {

/// Schema tag of every shard job document.
inline constexpr const char* kShardJobSchema = "rapt-shard-job-v1";

/// Exit statuses the shard worker reserves (everything else is a crash):
/// 3 = undecodable job (deterministic refusal, never retried as-is),
/// 4 = journal create failed, 5 = journal append failed — both I/O verdicts
/// the orchestrator retries, because the journal medium may heal (and under
/// chaos injection, does).
inline constexpr int kShardBadJobExit = 3;
inline constexpr int kShardJournalCreateExit = 4;
inline constexpr int kShardJournalAppendExit = 5;

struct ShardJob {
  int shardId = 0;             ///< orchestrator work-item id (stable across retries)
  int attempt = 0;             ///< globally unique attempt sequence number
  ManifestParams manifest;
  std::vector<int> indices;    ///< global corpus indices, ascending
  std::string journalPath;     ///< this ATTEMPT's private journal file
  MachineDesc machine;
  PipelineOptions options;     ///< result-relevant knobs only (wire codec)
};

[[nodiscard]] Json encodeShardJob(const ShardJob& job);
[[nodiscard]] bool decodeShardJob(const Json& doc, ShardJob& job,
                                  std::string& error);

// ---- worker stdout events --------------------------------------------------

struct ShardEvent {
  enum class Kind : std::uint8_t { Heartbeat, End };
  Kind kind = Kind::Heartbeat;
  int shardId = 0;
  int attempt = 0;
  int rowsDone = 0;  ///< rows durably journaled so far
  int index = -1;    ///< Heartbeat: the global index about to be compiled
};

[[nodiscard]] Json encodeShardHeartbeat(int shardId, int attempt, int rowsDone,
                                        int index);
[[nodiscard]] Json encodeShardEnd(int shardId, int attempt, int rowsDone);
[[nodiscard]] bool decodeShardEvent(const Json& doc, ShardEvent& event,
                                    std::string& error);

// ---- journal rows ----------------------------------------------------------

/// One journaled result row, shaped exactly like runSuite's journal rows
/// ({kind:"row", index, loop, loopHash, result}) except `index` is the GLOBAL
/// manifest index. The merge validates loopHash against the rematerialized
/// manifest loop, so a journal written against a drifted manifest can never
/// contribute rows.
[[nodiscard]] Json encodeShardRow(int globalIndex, const Loop& loop,
                                  const LoopResult& result);

/// The header every shard journal starts with: manifestHash + configHash are
/// the two keys the merge requires to match before trusting a single row.
[[nodiscard]] Json shardJournalHeader(const ShardJob& job);

// ---- semantic hashing ------------------------------------------------------

/// `doc` with every object key ending in "Ns" removed, recursively — the
/// wall-time fields (PipelineTrace's *Ns, suiteWallNs) that are
/// observability, never results. What remains is the SEMANTIC row: two runs
/// of the same work agree on these bytes no matter how often shards were
/// killed, retried, or re-dispatched in between.
[[nodiscard]] Json stripWallTimes(const Json& doc);

/// FNV-1a over stripWallTimes(resultDoc).dumpCompact() — the per-row
/// semantic fingerprint.
[[nodiscard]] std::uint64_t semanticResultHash(const Json& resultDoc);

/// Order-sensitive fold of semanticResultHash over rows in corpus order: the
/// campaign-level fingerprint that must be bit-identical across shard
/// counts, kill schedules, chaos rates, and resumes (the torture gate in
/// tests/shard/ and CI's shard-smoke job).
[[nodiscard]] std::uint64_t semanticRowsHash(std::span<const LoopResult> rows);

}  // namespace rapt
