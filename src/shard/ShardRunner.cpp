#include "shard/ShardRunner.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "shard/ShardProtocol.h"
#include "support/Journal.h"

namespace rapt {
namespace {

std::string readAllOfStdin() {
  std::string data;
  char buf[65536];
  for (;;) {
    const ssize_t got = ::read(STDIN_FILENO, buf, sizeof buf);
    if (got > 0) {
      data.append(buf, static_cast<std::size_t>(got));
    } else if (got == 0) {
      return data;
    } else if (errno != EINTR) {
      std::fprintf(stderr, "rapt-shard: stdin read failed: %s\n",
                   std::strerror(errno));
      std::exit(kShardBadJobExit);
    }
  }
}

/// Writes one event line to stdout and flushes — the orchestrator reads the
/// pipe live, so a buffered heartbeat is a missed heartbeat.
void emitEvent(const Json& event) {
  const std::string line = event.dumpCompact() + "\n";
  if (std::fwrite(line.data(), 1, line.size(), stdout) != line.size())
    return;  // orchestrator hung up; the journal still carries the results
  std::fflush(stdout);
}

/// Test-only failure injection (header comment). Parsed once; `marker` kinds
/// create their marker file on first sight so only the FIRST attempt fails.
struct Injection {
  enum class Kind : int { None, AbortOnIndex, SlowEveryRow, MuteOnIndex };
  Kind kind = Kind::None;
  int index = -1;
  std::int64_t slowMs = 0;
};

Injection parseInjection() {
  Injection inj;
  const char* spec = std::getenv("RAPT_SHARD_INJECT");
  if (spec == nullptr || *spec == '\0') return inj;
  const std::string s = spec;
  const auto markerArmed = [](const std::string& marker) {
    // Returns true (fire) when the marker does not exist yet; creates it so
    // the retry of the same shard sails through.
    if (::access(marker.c_str(), F_OK) == 0) return false;
    std::FILE* f = std::fopen(marker.c_str(), "w");
    if (f != nullptr) std::fclose(f);
    return true;
  };
  if (s.rfind("abort-once:", 0) == 0) {
    if (markerArmed(s.substr(11))) std::abort();
    return inj;
  }
  if (s.rfind("abort-on-index:", 0) == 0) {
    inj.kind = Injection::Kind::AbortOnIndex;
    inj.index = std::atoi(s.c_str() + 15);
    return inj;
  }
  if (s.rfind("slow-once:", 0) == 0) {
    const std::size_t colon = s.find(':', 10);
    if (colon != std::string::npos && markerArmed(s.substr(10, colon - 10))) {
      inj.kind = Injection::Kind::SlowEveryRow;
      inj.slowMs = std::atoll(s.c_str() + colon + 1);
    }
    return inj;
  }
  if (s.rfind("mute-on-index:", 0) == 0) {
    inj.kind = Injection::Kind::MuteOnIndex;
    inj.index = std::atoi(s.c_str() + 14);
    return inj;
  }
  std::fprintf(stderr, "rapt-shard: unknown RAPT_SHARD_INJECT '%s'\n",
               s.c_str());
  std::exit(kShardBadJobExit);
}

}  // namespace

int runShardWorker() {
  const std::string input = readAllOfStdin();
  Json doc;
  std::string error;
  if (!Json::parse(input, doc, error)) {
    std::fprintf(stderr, "rapt-shard: job does not parse: %s\n", error.c_str());
    return kShardBadJobExit;
  }
  ShardJob job;
  if (!decodeShardJob(doc, job, error)) {
    std::fprintf(stderr, "rapt-shard: bad job: %s\n", error.c_str());
    return kShardBadJobExit;
  }

  const Injection inj = parseInjection();
  const CorpusManifest manifest(job.manifest);

  JournalWriter journal;
  if (!journal.create(job.journalPath, shardJournalHeader(job))) {
    std::fprintf(stderr, "rapt-shard: cannot create journal %s (errno %d)\n",
                 job.journalPath.c_str(), journal.lastErrno());
    return kShardJournalCreateExit;
  }

  int rowsDone = 0;
  for (const int index : job.indices) {
    if (inj.kind == Injection::Kind::AbortOnIndex && index == inj.index)
      std::abort();  // the poisoned loop: dies here on EVERY attempt
    if (inj.kind == Injection::Kind::MuteOnIndex && index == inj.index) {
      // Simulated hang: stop heartbeating and stall until the orchestrator's
      // heartbeat timeout kills this process.
      for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
    }
    if (inj.kind == Injection::Kind::SlowEveryRow)
      std::this_thread::sleep_for(std::chrono::milliseconds(inj.slowMs));

    emitEvent(encodeShardHeartbeat(job.shardId, job.attempt, rowsDone, index));

    const Loop loop = manifest.materialize(index);
    LoopResult result;
    // The same last-resort belt runSuite wears: compileLoop contains its own
    // exceptions, so anything escaping is itself reportable, not fatal.
    try {
      result = compileLoop(loop, job.machine, job.options);
    } catch (const std::exception& e) {
      result.loopName = loop.name;
      result.numOps = loop.size();
      result.failureClass = FailureClass::InternalError;
      result.error = std::string("uncaught exception escaped compileLoop: ") + e.what();
    } catch (...) {
      result.loopName = loop.name;
      result.numOps = loop.size();
      result.failureClass = FailureClass::InternalError;
      result.error = "uncaught non-standard exception escaped compileLoop";
    }

    // Durability before visibility: the row is fsync'd into the journal
    // BEFORE the heartbeat advertises it, so `done` in any event is a count
    // of rows that survive a SIGKILL delivered right now.
    if (!journal.append(encodeShardRow(index, loop, result))) {
      std::fprintf(stderr,
                   "rapt-shard: journal append failed at row %d (errno %d)\n",
                   index, journal.lastErrno());
      return kShardJournalAppendExit;
    }
    ++rowsDone;
  }

  journal.close();
  emitEvent(encodeShardEnd(job.shardId, job.attempt, rowsDone));
  return 0;
}

}  // namespace rapt
