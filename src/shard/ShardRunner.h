// The worker half of tools/rapt-shard (docs/sharding.md "Shard workers").
//
// One process = one shard ATTEMPT: read a shard job document from stdin,
// compile each listed manifest row in-process (no per-loop fork at 100k
// scale), journal each result durably BEFORE heartbeating it, print one
// "end" event, exit 0. Any other exit — a crash on a poisoned loop, a
// journal-medium failure, a SIGKILL from the orchestrator's torture
// schedule — leaves a journal whose intact prefix is trusted by the merge
// and whose gap is re-dispatched, so rows are never lost and never
// fabricated.
//
// RAPT_SHARD_INJECT provokes the orchestrator's failure paths in tests
// (never set in production):
//   abort-once:<marker>        abort() before the first row unless <marker>
//                              exists (created first — so the RETRY of the
//                              same shard succeeds: the bounded-retry path);
//   abort-on-index:<i>         abort() whenever global row i is reached (a
//                              permanently poisoned loop: the crash-loop
//                              split-and-quarantine path);
//   slow-once:<marker>:<ms>    sleep <ms> before every row unless <marker>
//                              exists (created first — the straggler path:
//                              the re-dispatched attempt runs at full speed);
//   mute-on-index:<i>          hang (stop heartbeating and stall forever)
//                              when global row i is reached: the heartbeat-
//                              timeout kill path; a row that hangs on every
//                              attempt is quarantined as HardTimeout.
#pragma once

namespace rapt {

/// Runs one shard attempt from stdin to completion. Returns the process exit
/// status (0, or one of the kShard*Exit codes in ShardProtocol.h).
[[nodiscard]] int runShardWorker();

}  // namespace rapt
