#include "support/ArgParser.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <utility>

namespace rapt {
namespace {

/// Strict integer parse: the whole token must be consumed and in range.
template <typename T, typename Raw>
bool parseWhole(const std::string& text, T* out,
                Raw (*convert)(const char*, char**, int)) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const Raw raw = convert(text.c_str(), &end, 0);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  const T narrowed = static_cast<T>(raw);
  if (static_cast<Raw>(narrowed) != raw) return false;
  *out = narrowed;
  return true;
}

/// Damerau-Levenshtein (optimal string alignment) edit distance: adjacent
/// transpositions — the most common flag typo, '--jbos' for '--jobs' — count
/// as one edit. Inputs are flag names, so the three-row dynamic program is
/// plenty.
std::size_t editDistance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev2(b.size() + 1), prev(b.size() + 1),
      cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1])
        cur[j] = std::min(cur[j], prev2[j - 2] + 1);
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string synopsis)
    : program_(std::move(program)), synopsis_(std::move(synopsis)) {}

void ArgParser::addFlag(const std::string& name, bool* target,
                        const std::string& help) {
  specs_.push_back({name, Kind::Flag, target, help, *target ? "on" : "off"});
}

void ArgParser::addInt(const std::string& name, int* target,
                       const std::string& help) {
  specs_.push_back({name, Kind::Int, target, help, std::to_string(*target)});
}

void ArgParser::addInt64(const std::string& name, std::int64_t* target,
                         const std::string& help) {
  specs_.push_back({name, Kind::Int64, target, help, std::to_string(*target)});
}

void ArgParser::addUint64(const std::string& name, std::uint64_t* target,
                          const std::string& help) {
  specs_.push_back({name, Kind::Uint64, target, help, std::to_string(*target)});
}

void ArgParser::addString(const std::string& name, std::string* target,
                          const std::string& help) {
  specs_.push_back(
      {name, Kind::String, target, help, target->empty() ? "\"\"" : *target});
}

void ArgParser::allowPositionals(const std::string& placeholder) {
  positionalsAllowed_ = true;
  positionalPlaceholder_ = placeholder;
}

const ArgParser::Spec* ArgParser::find(const std::string& name) const {
  for (const Spec& s : specs_)
    if (s.name == name) return &s;
  return nullptr;
}

bool ArgParser::applyValue(const Spec& spec, const std::string& value) {
  switch (spec.kind) {
    case Kind::Flag:
      return false;  // flags never take a value; caller reports
    case Kind::Int:
      return parseWhole(value, static_cast<int*>(spec.target), std::strtol);
    case Kind::Int64:
      return parseWhole(value, static_cast<std::int64_t*>(spec.target),
                        std::strtoll);
    case Kind::Uint64:
      // Reject an explicit minus sign: strtoull wraps it silently.
      if (!value.empty() && value[0] == '-') return false;
      return parseWhole(value, static_cast<std::uint64_t*>(spec.target),
                        std::strtoull);
    case Kind::String:
      *static_cast<std::string*>(spec.target) = value;
      return true;
  }
  return false;
}

std::string ArgParser::closestFlag(const std::string& name) const {
  // A match is only suggested when the distance is small relative to the
  // flag's length: 1 edit for short names, up to a third of the length for
  // long ones. Anything farther is more likely a different flag entirely,
  // and a wrong suggestion is worse than none.
  std::string best;
  std::size_t bestDist = 0;
  for (const Spec& s : specs_) {
    const std::size_t d = editDistance(name, s.name);
    if (best.empty() || d < bestDist) {
      best = s.name;
      bestDist = d;
    }
  }
  if (best.empty()) return {};
  const std::size_t budget = std::max<std::size_t>(1, best.size() / 3);
  return bestDist <= budget ? best : std::string{};
}

bool ArgParser::parse(int argc, char** argv) {
  std::vector<bool> seen(specs_.size(), false);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      printUsage(stdout);
      helpRequested_ = true;
      return false;
    }
    if (arg.rfind("--", 0) != 0 || arg == "--") {
      if (!positionalsAllowed_) {
        std::fprintf(stderr, "%s: unexpected argument '%s'\n", program_.c_str(),
                     arg.c_str());
        printUsage(stderr);
        return false;
      }
      positionals_.push_back(arg);
      continue;
    }

    std::string name = arg.substr(2);
    std::string value;
    bool haveValue = false;
    if (const std::size_t eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      haveValue = true;
    }

    const Spec* spec = find(name);
    if (spec == nullptr) {
      const std::string suggestion = closestFlag(name);
      if (suggestion.empty()) {
        std::fprintf(stderr, "%s: unknown flag '--%s'\n", program_.c_str(),
                     name.c_str());
      } else {
        std::fprintf(stderr, "%s: unknown flag '--%s' (did you mean '--%s'?)\n",
                     program_.c_str(), name.c_str(), suggestion.c_str());
      }
      printUsage(stderr);
      return false;
    }

    // Every flag is single-valued: a second occurrence means half the command
    // line is stale, and silently letting the last one win would hide it.
    const auto specIndex = static_cast<std::size_t>(spec - specs_.data());
    if (seen[specIndex]) {
      std::fprintf(stderr, "%s: flag '--%s' given more than once\n",
                   program_.c_str(), name.c_str());
      printUsage(stderr);
      return false;
    }
    seen[specIndex] = true;

    if (spec->kind == Kind::Flag) {
      if (haveValue) {
        std::fprintf(stderr, "%s: flag '--%s' takes no value\n",
                     program_.c_str(), name.c_str());
        printUsage(stderr);
        return false;
      }
      *static_cast<bool*>(spec->target) = true;
      continue;
    }

    if (!haveValue) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag '--%s' needs a value\n", program_.c_str(),
                     name.c_str());
        printUsage(stderr);
        return false;
      }
      value = argv[++i];
    }
    if (!applyValue(*spec, value)) {
      std::fprintf(stderr, "%s: bad value '%s' for '--%s'\n", program_.c_str(),
                   value.c_str(), name.c_str());
      printUsage(stderr);
      return false;
    }
  }
  return true;
}

void ArgParser::printUsage(std::FILE* to) const {
  std::fprintf(to, "%s — %s\n", program_.c_str(), synopsis_.c_str());
  std::fprintf(to, "usage: %s [flags]%s%s\n", program_.c_str(),
               positionalsAllowed_ ? " " : "",
               positionalsAllowed_ ? positionalPlaceholder_.c_str() : "");
  std::size_t width = 0;
  for (const Spec& s : specs_) width = std::max(width, s.name.size());
  for (const Spec& s : specs_) {
    const std::string header =
        "--" + s.name + std::string(width - s.name.size(), ' ');
    std::fprintf(to, "  %s  %s (default: %s)\n", header.c_str(), s.help.c_str(),
                 s.defaultText.c_str());
  }
}

}  // namespace rapt
