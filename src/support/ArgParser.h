// Declarative command-line flag parsing shared by every tool and bench
// binary (tools/, bench/).
//
// Before this existed each binary hand-rolled its own argv loop, and the
// suite-level flags the robustness work added (--jobs, --isolation,
// --timeout-ms, --resume) would have meant copy-pasting the same parsing six
// more times, drifting in accepted spellings. ArgParser keeps the surface
// small on purpose: long flags only, `--name value` or `--name=value`,
// booleans take no value, unknown flags are errors, and `--help` prints a
// generated usage block and reports `helpRequested()`. Targets are plain
// pointers into the caller's options struct, so defaults live where they
// always did.
//
// Two operator-error guards, both hard errors rather than silent surprises:
// a flag given twice is rejected (every flag is single-valued — silently
// taking the last occurrence hides the half of a long command line that was
// edited and forgotten), and an unknown flag whose spelling is close to a
// registered one gets a "did you mean '--jobs'?" suggestion.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace rapt {

class ArgParser {
 public:
  /// `program` is argv[0]'s display name; `synopsis` is a one-line
  /// description printed at the top of --help.
  ArgParser(std::string program, std::string synopsis);

  // Each add* registers `--name`; the target keeps its current value as the
  // default (shown in --help). `help` is one line.
  void addFlag(const std::string& name, bool* target, const std::string& help);
  void addInt(const std::string& name, int* target, const std::string& help);
  void addInt64(const std::string& name, std::int64_t* target,
                const std::string& help);
  /// Parsed with base 0: hex seeds like 0x52415054 work.
  void addUint64(const std::string& name, std::uint64_t* target,
                 const std::string& help);
  void addString(const std::string& name, std::string* target,
                 const std::string& help);

  /// Accept non-flag arguments (e.g. file paths); without this they are
  /// errors. `placeholder` names them in the usage line ("FILE...").
  void allowPositionals(const std::string& placeholder);

  /// Parses argv[1..). Returns true on success; on error prints the message
  /// and the usage block to stderr and returns false (caller exits 2). When
  /// --help is seen, prints usage to stdout, sets helpRequested(), and
  /// returns false (caller exits 0).
  [[nodiscard]] bool parse(int argc, char** argv);

  [[nodiscard]] bool helpRequested() const { return helpRequested_; }
  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  void printUsage(std::FILE* to) const;

 private:
  enum class Kind { Flag, Int, Int64, Uint64, String };
  struct Spec {
    std::string name;  ///< without the leading "--"
    Kind kind;
    void* target;
    std::string help;
    std::string defaultText;
  };

  [[nodiscard]] const Spec* find(const std::string& name) const;
  [[nodiscard]] bool applyValue(const Spec& spec, const std::string& value);
  /// The registered flag closest to `name` in edit distance, or "" when
  /// nothing is close enough to plausibly be a typo.
  [[nodiscard]] std::string closestFlag(const std::string& name) const;

  std::string program_;
  std::string synopsis_;
  std::vector<Spec> specs_;
  std::string positionalPlaceholder_;
  bool positionalsAllowed_ = false;
  std::vector<std::string> positionals_;
  bool helpRequested_ = false;
};

}  // namespace rapt
