// Internal invariant checking for the rapt libraries.
//
// RAPT_ASSERT is active in all build types: the library implements compiler
// algorithms whose bugs silently produce wrong code, so invariant checks are
// cheap insurance relative to debugging a miscompiled pipelined kernel.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rapt {

[[noreturn]] inline void assertFail(const char* expr, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "rapt: assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace rapt

#define RAPT_ASSERT(cond, msg)                                  \
  do {                                                          \
    if (!(cond)) ::rapt::assertFail(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#define RAPT_UNREACHABLE(msg) ::rapt::assertFail("unreachable", __FILE__, __LINE__, msg)
