#include "support/ChaosIo.h"

#include <unistd.h>

#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace rapt {
namespace {

/// The installed injector. A dedicated sentinel distinguishes "never looked
/// at the environment" from "looked, nothing armed" and from "explicitly
/// uninstalled" — uninstall() must win over RAPT_CHAOS.
std::mutex g_installMutex;
ChaosIo* g_active = nullptr;    // guarded by g_installMutex for writes
std::atomic<ChaosIo*> g_activeAtomic{nullptr};
bool g_envChecked = false;      // guarded by g_installMutex

/// SplitMix64 step, inlined so this file has no dependency on Rng.h's
/// asserts (draw() runs under a mutex on I/O paths).
std::uint64_t splitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

[[nodiscard]] bool siteIsWrite(ChaosSite site) {
  return site == ChaosSite::JournalWrite || site == ChaosSite::DurableWrite;
}
[[nodiscard]] bool siteIsFsync(ChaosSite site) {
  return site == ChaosSite::JournalFsync || site == ChaosSite::DurableFsync;
}
[[nodiscard]] bool siteIsSocket(ChaosSite site) {
  return site == ChaosSite::SocketRead || site == ChaosSite::SocketWrite;
}

[[nodiscard]] bool parseInt(const std::string& text, long long& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

/// Seeds are full 64-bit values (a harness feeds raw SplitMix64 draws here),
/// so they need the unsigned parse strtoll would reject above INT64_MAX.
[[nodiscard]] bool parseUint(const std::string& text, unsigned long long& out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

void stallFor(int ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Fires a crash-point on a write: put a TORN PREFIX on the fd (what a power
/// cut mid-sector leaves), then die without flushing anything else —
/// _exit, not abort, so no atexit handler can tidy up after "the crash".
[[noreturn]] void crashDuringWrite(int fd, const void* buf, std::size_t n) {
  if (n > 1) {
    std::size_t torn = n / 2;
    ssize_t ignored = ::write(fd, buf, torn);
    (void)ignored;
  }
  ::_exit(kChaosCrashExit);
}

}  // namespace

ChaosIo::ChaosIo(const ChaosIoConfig& config)
    : config_(config), rngState_(config.seed) {}

ChaosIo* ChaosIo::active() {
  ChaosIo* fast = g_activeAtomic.load(std::memory_order_acquire);
  if (fast != nullptr) return fast;
  std::lock_guard<std::mutex> lock(g_installMutex);
  if (!g_envChecked) {
    g_envChecked = true;
    const char* spec = std::getenv("RAPT_CHAOS");
    if (spec != nullptr && spec[0] != '\0') {
      ChaosIoConfig config;
      std::string error;
      if (parseConfig(spec, config, error)) {
        // Leaked deliberately: an environment-armed injector lives for the
        // process (the torture harness kills the daemon, not vice versa).
        g_active = new ChaosIo(config);
        g_activeAtomic.store(g_active, std::memory_order_release);
      } else {
        std::fprintf(stderr, "chaos: ignoring bad RAPT_CHAOS: %s\n",
                     error.c_str());
      }
    }
  }
  return g_activeAtomic.load(std::memory_order_acquire);
}

void ChaosIo::install(const ChaosIoConfig& config) {
  std::lock_guard<std::mutex> lock(g_installMutex);
  g_envChecked = true;  // an explicit install outranks the environment
  g_active = new ChaosIo(config);
  g_activeAtomic.store(g_active, std::memory_order_release);
}

void ChaosIo::uninstall() {
  std::lock_guard<std::mutex> lock(g_installMutex);
  g_envChecked = true;
  // The old injector is leaked, not deleted: another thread may be mid-draw.
  // Installs are test-scoped and tiny; correctness beats the few bytes.
  g_active = nullptr;
  g_activeAtomic.store(nullptr, std::memory_order_release);
}

bool ChaosIo::parseConfig(const std::string& spec, ChaosIoConfig& out,
                          std::string& error) {
  ChaosIoConfig config;
  config.faultRatePercent = 5;  // bare "seed=N" should already inject
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      error = "chaos spec item has no '=': " + item;
      return false;
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    long long n = 0;
    if (key == "seed") {
      unsigned long long u = 0;
      if (!parseUint(value, u)) {
        error = "bad chaos seed: " + value;
        return false;
      }
      config.seed = static_cast<std::uint64_t>(u);
    } else if (key == "rate") {
      if (!parseInt(value, n) || n < 0 || n > 100) {
        error = "bad chaos rate (0-100): " + value;
        return false;
      }
      config.faultRatePercent = static_cast<int>(n);
    } else if (key == "crash") {
      if (!parseInt(value, n) || n < 0 || n > 100) {
        error = "bad chaos crash rate (0-100): " + value;
        return false;
      }
      config.crashRatePercent = static_cast<int>(n);
    } else if (key == "stall-ms") {
      if (!parseInt(value, n) || n < 0) {
        error = "bad chaos stall-ms: " + value;
        return false;
      }
      config.stallMs = static_cast<int>(n);
    } else if (key == "sites") {
      unsigned mask = 0;
      std::size_t p = 0;
      while (p < value.size()) {
        std::size_t plus = value.find('+', p);
        if (plus == std::string::npos) plus = value.size();
        const std::string group = value.substr(p, plus - p);
        p = plus + 1;
        if (group == "socket") {
          mask |= kChaosSocketSites;
        } else if (group == "journal") {
          mask |= kChaosJournalSites;
        } else if (group == "durable") {
          mask |= kChaosDurableSites;
        } else if (group == "all") {
          mask |= kChaosAllSites;
        } else {
          error = "unknown chaos site group: " + group;
          return false;
        }
      }
      config.siteMask = mask;
    } else {
      error = "unknown chaos key: " + key;
      return false;
    }
  }
  out = config;
  return true;
}

ChaosFault ChaosIo::draw(ChaosSite site) {
  std::lock_guard<std::mutex> lock(mutex_);
  if ((config_.siteMask & chaosSiteBit(site)) == 0) return ChaosFault::None;

  ChaosFault fault = ChaosFault::None;
  // Crash-points first, on their own rate: torn-write torture needs crashes
  // even in campaigns whose transient-fault rate is zero (and vice versa).
  if (config_.crashRatePercent > 0 &&
      (siteIsWrite(site) || siteIsFsync(site)) &&
      splitMix64(rngState_) % 100 <
          static_cast<std::uint64_t>(config_.crashRatePercent)) {
    fault = ChaosFault::CrashPoint;
  } else if (config_.faultRatePercent > 0 &&
             splitMix64(rngState_) % 100 <
                 static_cast<std::uint64_t>(config_.faultRatePercent)) {
    const std::uint64_t pick = splitMix64(rngState_);
    if (siteIsSocket(site)) {
      switch (pick % 4) {
        case 0: fault = ChaosFault::ShortOp; break;
        case 1: fault = ChaosFault::Eintr; break;
        case 2: fault = ChaosFault::ConnReset; break;
        default: fault = ChaosFault::Stall; break;
      }
    } else if (siteIsWrite(site)) {
      switch (pick % 4) {
        case 0: fault = ChaosFault::ShortOp; break;
        case 1: fault = ChaosFault::Eintr; break;
        case 2: fault = ChaosFault::NoSpace; break;
        default: fault = ChaosFault::IoError; break;
      }
    } else {  // fsync sites
      fault = ChaosFault::FsyncFail;
    }
  }
  if (fault != ChaosFault::None)
    ++counts_[static_cast<std::size_t>(site)][static_cast<std::size_t>(fault)];
  return fault;
}

Json ChaosIo::statsJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json o = Json::object();
  o["seed"] = static_cast<std::int64_t>(config_.seed);
  o["ratePercent"] = config_.faultRatePercent;
  o["crashPercent"] = config_.crashRatePercent;
  Json sites = Json::object();
  for (int s = 0; s < kNumChaosSites; ++s) {
    Json kinds = Json::object();
    std::int64_t siteTotal = 0;
    for (int f = 1; f < kNumChaosFaults; ++f) {
      const std::int64_t c = counts_[static_cast<std::size_t>(s)][static_cast<std::size_t>(f)];
      if (c > 0) kinds[chaosFaultName(static_cast<ChaosFault>(f))] = c;
      siteTotal += c;
    }
    if (siteTotal > 0) sites[chaosSiteName(static_cast<ChaosSite>(s))] = std::move(kinds);
  }
  o["injectedBySite"] = std::move(sites);
  return o;
}

std::int64_t ChaosIo::injectedTotal() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t total = 0;
  for (const auto& site : counts_)
    for (std::int64_t c : site) total += c;
  return total;
}

// ---- chaos-wrapped syscalls ------------------------------------------------

ssize_t chaosRead(int fd, void* buf, std::size_t n, ChaosSite site) {
  ChaosIo* chaos = ChaosIo::active();
  if (chaos != nullptr) {
    switch (chaos->draw(site)) {
      case ChaosFault::ShortOp:
        return ::read(fd, buf, n > 1 ? 1 : n);
      case ChaosFault::Eintr:
        errno = EINTR;
        return -1;
      case ChaosFault::ConnReset:
        errno = ECONNRESET;
        return -1;
      case ChaosFault::Stall:
        stallFor(chaos->config().stallMs);
        break;
      default:
        break;
    }
  }
  return ::read(fd, buf, n);
}

ssize_t chaosSend(int fd, const void* buf, std::size_t n, int flags,
                  ChaosSite site) {
  ChaosIo* chaos = ChaosIo::active();
  if (chaos != nullptr) {
    switch (chaos->draw(site)) {
      case ChaosFault::ShortOp:
        return ::send(fd, buf, n > 1 ? 1 + n / 4 : n, flags);
      case ChaosFault::Eintr:
        errno = EINTR;
        return -1;
      case ChaosFault::ConnReset:
        // A peer that vanished surfaces as EPIPE on send (MSG_NOSIGNAL).
        errno = EPIPE;
        return -1;
      case ChaosFault::Stall:
        stallFor(chaos->config().stallMs);
        break;
      default:
        break;
    }
  }
  return ::send(fd, buf, n, flags);
}

ssize_t chaosWrite(int fd, const void* buf, std::size_t n, ChaosSite site) {
  ChaosIo* chaos = ChaosIo::active();
  if (chaos != nullptr) {
    switch (chaos->draw(site)) {
      case ChaosFault::ShortOp:
        return ::write(fd, buf, n > 1 ? 1 + n / 4 : n);
      case ChaosFault::Eintr:
        errno = EINTR;
        return -1;
      case ChaosFault::NoSpace:
        errno = ENOSPC;
        return -1;
      case ChaosFault::IoError:
        errno = EIO;
        return -1;
      case ChaosFault::CrashPoint:
        crashDuringWrite(fd, buf, n);
      case ChaosFault::Stall:
        stallFor(chaos->config().stallMs);
        break;
      default:
        break;
    }
  }
  return ::write(fd, buf, n);
}

int chaosFsync(int fd, ChaosSite site) {
  ChaosIo* chaos = ChaosIo::active();
  if (chaos != nullptr) {
    switch (chaos->draw(site)) {
      case ChaosFault::FsyncFail:
        errno = EIO;
        return -1;
      case ChaosFault::CrashPoint:
        // A crash at the fsync boundary: the WRITE may have reached disk,
        // the durability claim was never made. Nothing torn, just gone.
        ::_exit(kChaosCrashExit);
      default:
        break;
    }
  }
  int r;
  do {
    r = ::fsync(fd);
  } while (r != 0 && errno == EINTR);
  return r;
}

// ---- full-write helpers ----------------------------------------------------

bool writeFully(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  std::size_t written = 0;
  while (written < n) {
    const ssize_t w = ::write(fd, p + written, n - written);
    if (w > 0) {
      written += static_cast<std::size_t>(w);
    } else if (w < 0 && errno != EINTR) {
      return false;
    }
  }
  return true;
}

bool chaosWriteFully(int fd, const void* data, std::size_t n, ChaosSite site) {
  const char* p = static_cast<const char*>(data);
  std::size_t written = 0;
  while (written < n) {
    const ssize_t w = chaosWrite(fd, p + written, n - written, site);
    if (w > 0) {
      written += static_cast<std::size_t>(w);
    } else if (w < 0 && errno != EINTR) {
      return false;
    }
  }
  return true;
}

}  // namespace rapt
