// Seeded, deterministic I/O fault injection (docs/robustness.md "Chaos
// campaign").
//
// FaultInjection.h misbehaves inside pipeline STAGES; this shim misbehaves at
// the SYSCALL boundary, where a hostile machine actually shows up: short
// reads and writes, EINTR, ECONNRESET/EPIPE from a vanished peer, slow-peer
// stalls, ENOSPC/EIO on file writes, failed fsync, and crash-points that
// _exit the process mid-write to simulate a torn record under kill -9. All
// I/O in Socket.cpp, Journal.cpp, and Durability.cpp routes through the
// chaos* wrappers below; with no injector armed they collapse to the raw
// syscall (one relaxed atomic load), so production paths pay nothing.
//
// Determinism: every decision comes from one SplitMix64 stream seeded by the
// caller, consumed under a mutex in call order. A single-threaded process
// (the client, the unit tests) therefore sees a bit-reproducible fault
// schedule; a multi-threaded daemon sees a schedule that depends on thread
// interleaving, but the CAMPAIGN around it (tools/rapt_chaos.cpp) stays
// reproducible because its oracles — no acknowledged result lost, all bytes
// identical — hold for every interleaving of the seeded schedule.
//
// Arming: programmatic (ChaosIo::install, tests) or by environment
// (RAPT_CHAOS="seed=7,rate=10,crash=2,stall-ms=5,sites=socket+journal"),
// which is how the torture harness arms a daemon it spawns. Crash-points
// exit with kChaosCrashExit so a supervisor can tell an injected crash from
// a real one.
#pragma once

#include <sys/types.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "support/Json.h"

namespace rapt {

/// Exit status of an injected crash-point: the chaos analogue of SIGKILL,
/// fired between or inside write boundaries (after a deliberately partial
/// write, so the record on disk is torn exactly as a power cut would tear it).
inline constexpr int kChaosCrashExit = 86;

/// Instrumented syscall sites. The site mask in ChaosIoConfig selects which
/// are armed (a socket-only campaign must not ALSO lose journal writes, or
/// fault attribution turns to mush).
enum class ChaosSite : std::uint8_t {
  SocketRead,    ///< SocketConn::readLine's read()
  SocketWrite,   ///< SocketConn::writeAll's send()
  JournalWrite,  ///< JournalWriter record/header writes
  JournalFsync,  ///< JournalWriter's per-append fsync
  DurableWrite,  ///< writeFileDurable's temp-file write
  DurableFsync,  ///< writeFileDurable's pre-rename fsync
};
inline constexpr int kNumChaosSites = 6;

[[nodiscard]] constexpr const char* chaosSiteName(ChaosSite s) {
  switch (s) {
    case ChaosSite::SocketRead: return "socketRead";
    case ChaosSite::SocketWrite: return "socketWrite";
    case ChaosSite::JournalWrite: return "journalWrite";
    case ChaosSite::JournalFsync: return "journalFsync";
    case ChaosSite::DurableWrite: return "durableWrite";
    case ChaosSite::DurableFsync: return "durableFsync";
  }
  return "invalid";
}

/// What an armed site does to one call. Sites draw only the kinds that make
/// sense for them (a socket read cannot hit ENOSPC; an fsync cannot be
/// short).
enum class ChaosFault : std::uint8_t {
  None = 0,
  ShortOp,     ///< transfer only a prefix of the requested bytes
  Eintr,       ///< fail with EINTR, no bytes moved (the retry-loop test)
  ConnReset,   ///< ECONNRESET on read / EPIPE on send: the peer vanished
  NoSpace,     ///< ENOSPC: the disk filled mid-write
  IoError,     ///< EIO: the device failed
  FsyncFail,   ///< fsync returns EIO: the "durable" claim just broke
  Stall,       ///< sleep stallMs before the op: a slow peer or device
  CrashPoint,  ///< write a torn prefix, then _exit(kChaosCrashExit)
};
inline constexpr int kNumChaosFaults = 9;

[[nodiscard]] constexpr const char* chaosFaultName(ChaosFault f) {
  switch (f) {
    case ChaosFault::None: return "none";
    case ChaosFault::ShortOp: return "shortOp";
    case ChaosFault::Eintr: return "eintr";
    case ChaosFault::ConnReset: return "connReset";
    case ChaosFault::NoSpace: return "noSpace";
    case ChaosFault::IoError: return "ioError";
    case ChaosFault::FsyncFail: return "fsyncFail";
    case ChaosFault::Stall: return "stall";
    case ChaosFault::CrashPoint: return "crashPoint";
  }
  return "invalid";
}

/// Bit for `site` in ChaosIoConfig::siteMask.
[[nodiscard]] constexpr unsigned chaosSiteBit(ChaosSite s) {
  return 1u << static_cast<unsigned>(s);
}
inline constexpr unsigned kChaosAllSites = (1u << kNumChaosSites) - 1;
inline constexpr unsigned kChaosSocketSites =
    chaosSiteBit(ChaosSite::SocketRead) | chaosSiteBit(ChaosSite::SocketWrite);
inline constexpr unsigned kChaosJournalSites =
    chaosSiteBit(ChaosSite::JournalWrite) | chaosSiteBit(ChaosSite::JournalFsync);
inline constexpr unsigned kChaosDurableSites =
    chaosSiteBit(ChaosSite::DurableWrite) | chaosSiteBit(ChaosSite::DurableFsync);

struct ChaosIoConfig {
  std::uint64_t seed = 1;
  int faultRatePercent = 0;  ///< per-call chance of a non-crash fault
  int crashRatePercent = 0;  ///< per write/fsync chance of a crash-point
  int stallMs = 5;           ///< sleep applied by ChaosFault::Stall
  unsigned siteMask = kChaosAllSites;
};

/// The process-wide injector. Thread-safe; all draws and counters are under
/// one mutex (chaos campaigns measure recovery, not injector throughput).
class ChaosIo {
 public:
  explicit ChaosIo(const ChaosIoConfig& config);

  /// The armed injector, or nullptr (the production fast path). The first
  /// call consults RAPT_CHAOS once; install()/uninstall() override the
  /// environment either way.
  [[nodiscard]] static ChaosIo* active();

  /// Arms `config` process-wide (tests, or a tool arming itself). Replaces
  /// any previous injector, including an environment-armed one.
  static void install(const ChaosIoConfig& config);

  /// Disarms chaos entirely (also suppresses the RAPT_CHAOS fallback — a
  /// test that uninstalls must get the real syscalls back).
  static void uninstall();

  /// Parses the RAPT_CHAOS spec: comma-separated `key=value` with keys
  /// seed, rate, crash, stall-ms, and sites (a '+'-joined subset of
  /// socket, journal, durable; default all). Returns false with a
  /// diagnostic for unknown keys or malformed numbers.
  [[nodiscard]] static bool parseConfig(const std::string& spec,
                                        ChaosIoConfig& out, std::string& error);

  /// One decision for one call at `site`. None when the site is unmasked or
  /// no rate fires. The returned fault is already counted.
  [[nodiscard]] ChaosFault draw(ChaosSite site);

  [[nodiscard]] const ChaosIoConfig& config() const { return config_; }

  /// Lifetime injected-fault counts per (site, fault kind), as the
  /// "chaos" object embedded in the daemon's stats (docs/metrics.md).
  [[nodiscard]] Json statsJson() const;
  [[nodiscard]] std::int64_t injectedTotal() const;

 private:
  mutable std::mutex mutex_;
  ChaosIoConfig config_;
  std::uint64_t rngState_;
  std::array<std::array<std::int64_t, kNumChaosFaults>, kNumChaosSites> counts_{};
};

// ---- chaos-wrapped syscalls ------------------------------------------------
//
// Drop-in replacements used by the instrumented call sites. Each consults
// ChaosIo::active() and, when a fault fires, fakes the errno/return the real
// syscall would produce — callers keep their ordinary error handling and
// cannot tell injected weather from real weather (that is the point).

[[nodiscard]] ssize_t chaosRead(int fd, void* buf, std::size_t n, ChaosSite site);
[[nodiscard]] ssize_t chaosSend(int fd, const void* buf, std::size_t n, int flags,
                                ChaosSite site);
[[nodiscard]] ssize_t chaosWrite(int fd, const void* buf, std::size_t n,
                                 ChaosSite site);
[[nodiscard]] int chaosFsync(int fd, ChaosSite site);

// ---- the shared full-write helper ------------------------------------------

/// Writes all `n` bytes to `fd`, retrying short writes and EINTR — the one
/// loop every raw blocking write in support/ goes through (the audit in
/// docs/robustness.md "Short writes"). Returns false with errno set on any
/// other error. Async-signal-safe (no allocation, no locks): usable between
/// fork and exec.
[[nodiscard]] bool writeFully(int fd, const void* data, std::size_t n);

/// writeFully routed through chaosWrite, for instrumented sites (journal,
/// durable temp files). Injected EINTR and short writes are retried like the
/// real thing; injected ENOSPC/EIO surface as the failure return.
[[nodiscard]] bool chaosWriteFully(int fd, const void* data, std::size_t n,
                                   ChaosSite site);

}  // namespace rapt
