#include "support/Crc32.h"

#include <array>

namespace rapt {
namespace {

/// The reflected-polynomial lookup table, built once at first use.
const std::array<std::uint32_t, 256>& crcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

[[nodiscard]] int hexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = crcTable();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::string crc32Hex(std::uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[crc & 0xfu];
    crc >>= 4;
  }
  return out;
}

bool parseCrc32Hex(const std::string& text, std::size_t pos, std::uint32_t& out) {
  if (pos + 8 > text.size()) return false;
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const int d = hexDigit(text[pos + i]);
    if (d < 0) return false;
    v = (v << 4) | static_cast<std::uint32_t>(d);
  }
  out = v;
  return true;
}

}  // namespace rapt
