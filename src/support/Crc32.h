// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for per-record
// integrity framing in journals (support/Journal.h "CRC framing",
// docs/robustness.md "Crash consistency").
//
// The journal's fsync discipline makes a record durable-or-absent against
// clean crashes, but a torn sector, a bit flip at rest, or a partial write
// that happens to end in '\n' can still hand the loader a line that PARSES
// yet lies. A 4-byte checksum over the exact record bytes closes that gap:
// a record is only trusted when its stored CRC matches, and everything else
// is quarantined (reported and recompiled) instead of believed or fatal.
//
// Not cryptographic — this defends against hardware and kernel accidents,
// not adversaries, which is the journal's threat model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace rapt {

/// CRC-32 of `n` bytes starting from `seed` (pass the previous return value
/// to checksum data in chunks; the default starts a fresh message).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n,
                                  std::uint32_t seed = 0);

[[nodiscard]] inline std::uint32_t crc32(const std::string& s) {
  return crc32(s.data(), s.size());
}

/// Fixed-width lowercase hex (8 chars), the journal framing's rendering.
[[nodiscard]] std::string crc32Hex(std::uint32_t crc);

/// Parses exactly 8 lowercase/uppercase hex chars at `text[pos..pos+8)`.
/// Returns false (leaving `out` untouched) on short input or a non-hex char.
[[nodiscard]] bool parseCrc32Hex(const std::string& text, std::size_t pos,
                                 std::uint32_t& out);

}  // namespace rapt
