#include "support/Durability.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace rapt {
namespace {

bool fsyncFd(int fd) {
  int r;
  do {
    r = ::fsync(fd);
  } while (r != 0 && errno == EINTR);
  return r == 0;
}

}  // namespace

bool fsyncParentDir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  // EINVAL from fsync on a directory means the filesystem does not support
  // (or need) directory sync — tmpfs, some network mounts. Not a failure.
  const bool ok = fsyncFd(fd) || errno == EINVAL;
  ::close(fd);
  return ok;
}

bool fsyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = fsyncFd(fd);
  ::close(fd);
  return ok;
}

bool writeFileDurable(const std::string& path, const std::string& contents,
                      const std::string& tempSuffix) {
  const std::string tmp = path + tempSuffix;
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    std::fprintf(stderr, "durable write: cannot create %s: %s\n", tmp.c_str(),
                 std::strerror(errno));
    return false;
  }
  std::size_t written = 0;
  bool ok = true;
  while (ok && written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
    } else if (n < 0 && errno != EINTR) {
      ok = false;
    }
  }
  // Contents must be on disk BEFORE the rename publishes the name, or a
  // crash can leave the new name pointing at a zero-length file.
  ok = ok && fsyncFd(fd);
  ::close(fd);
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "durable write: rename %s -> %s failed: %s\n",
                 tmp.c_str(), path.c_str(), std::strerror(errno));
    ok = false;
  }
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  fsyncParentDir(path);  // makes the rename durable; advisory on failure
  return true;
}

}  // namespace rapt
