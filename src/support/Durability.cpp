#include "support/Durability.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "support/ChaosIo.h"

namespace rapt {
namespace {

bool fsyncFd(int fd) {
  int r;
  do {
    r = ::fsync(fd);
  } while (r != 0 && errno == EINTR);
  return r == 0;
}

[[nodiscard]] DurableStatus statusFromErrno(int err) {
  if (err == ENOSPC || err == EDQUOT) return DurableStatus::NoSpace;
  if (err == EIO) return DurableStatus::IoError;
  return DurableStatus::Error;
}

}  // namespace

bool fsyncParentDir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  // EINVAL from fsync on a directory means the filesystem does not support
  // (or need) directory sync — tmpfs, some network mounts. Not a failure.
  const bool ok = fsyncFd(fd) || errno == EINVAL;
  ::close(fd);
  return ok;
}

bool fsyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = fsyncFd(fd);
  ::close(fd);
  return ok;
}

DurableStatus writeFileDurableStatus(const std::string& path,
                                     const std::string& contents,
                                     const std::string& tempSuffix) {
  const std::string tmp = path + tempSuffix;
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    const int err = errno;
    std::fprintf(stderr, "durable write: cannot create %s: %s\n", tmp.c_str(),
                 std::strerror(err));
    return statusFromErrno(err);
  }
  DurableStatus status = DurableStatus::Ok;
  // The shared full-write helper through the chaos shim: short writes and
  // EINTR retried, injected or real ENOSPC/EIO surfaced with errno intact.
  if (!chaosWriteFully(fd, contents.data(), contents.size(),
                       ChaosSite::DurableWrite))
    status = statusFromErrno(errno);
  // Contents must be on disk BEFORE the rename publishes the name, or a
  // crash can leave the new name pointing at a zero-length file.
  if (status == DurableStatus::Ok &&
      chaosFsync(fd, ChaosSite::DurableFsync) != 0)
    status = statusFromErrno(errno == 0 ? EIO : errno);
  ::close(fd);
  if (status == DurableStatus::Ok &&
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::fprintf(stderr, "durable write: rename %s -> %s failed: %s\n",
                 tmp.c_str(), path.c_str(), std::strerror(err));
    status = statusFromErrno(err);
  }
  if (status != DurableStatus::Ok) {
    std::fprintf(stderr, "durable write: %s for %s\n",
                 durableStatusName(status), path.c_str());
    std::remove(tmp.c_str());
    return status;
  }
  fsyncParentDir(path);  // makes the rename durable; advisory on failure
  return DurableStatus::Ok;
}

}  // namespace rapt
