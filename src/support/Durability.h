// Directory-level durability helpers (docs/robustness.md "Journaled
// resume", docs/service.md "Cache persistence").
//
// fsync on a FILE makes its *contents* durable, but the file's existence —
// its directory entry — lives in the parent directory, and on ext4/xfs (and
// most journaling filesystems in their default modes) that entry is only
// durable after the DIRECTORY has been fsync'd too. The two crash windows
// this closes:
//
//   * a journal created and fsync'd, then a crash: without the parent-dir
//     fsync the whole file can vanish, taking every "durable" row with it
//     (support/Journal.h calls fsyncParentDir on create);
//   * the temp-file + rename atomic-report pattern (bench/BenchCommon.h):
//     rename is only crash-atomic if the temp file's contents were fsync'd
//     BEFORE the rename (else the new name can point at zero bytes) and the
//     rename itself is only durable after the directory fsync.
//
// Both helpers are best-effort by signature (they return success/failure)
// but callers treat failure as a diagnostic, not fatal: the data is still
// written, just not provably crash-durable.
#pragma once

#include <cstdint>
#include <string>

namespace rapt {

/// fsyncs the directory containing `path` (the path's dirname; "." when the
/// path has no directory component). Makes a just-created or just-renamed
/// entry crash-durable. Returns false if the directory could not be opened
/// or fsync'd.
bool fsyncParentDir(const std::string& path);

/// fsyncs an existing file's contents by path. Returns false on open/fsync
/// failure.
bool fsyncFile(const std::string& path);

/// Why a durable write failed — structured so callers can react per cause
/// (docs/robustness.md "Durable writes under pressure"): a full disk is a
/// capacity condition an operator can clear (shed load, keep serving), a
/// device error usually is not, and everything else is a plain local bug
/// like a missing directory.
enum class DurableStatus : std::uint8_t {
  Ok,
  NoSpace,   ///< ENOSPC/EDQUOT while writing or syncing the temp file
  IoError,   ///< EIO: the device, not the caller
  Error,     ///< anything else (missing directory, permissions, bad fd)
};

[[nodiscard]] constexpr const char* durableStatusName(DurableStatus s) {
  switch (s) {
    case DurableStatus::Ok: return "ok";
    case DurableStatus::NoSpace: return "noSpace";
    case DurableStatus::IoError: return "ioError";
    case DurableStatus::Error: return "error";
  }
  return "invalid";
}

/// The fully durable atomic-replace write: `contents` goes to `path + ext`
/// (default ".tmp"), is fsync'd, renamed over `path`, and the parent
/// directory is fsync'd. After a crash the file is either the complete old
/// version or the complete new one — never torn, never silently empty.
/// On failure the temp file is removed, the target keeps its old contents,
/// and the status says which class of failure it was — ENOSPC and EIO must
/// surface as structured conditions, never as a silently lost write.
[[nodiscard]] DurableStatus writeFileDurableStatus(
    const std::string& path, const std::string& contents,
    const std::string& tempSuffix = ".tmp");

/// Status-blind convenience wrapper (legacy call sites and callers that
/// only gate on success).
inline bool writeFileDurable(const std::string& path,
                             const std::string& contents,
                             const std::string& tempSuffix = ".tmp") {
  return writeFileDurableStatus(path, contents, tempSuffix) == DurableStatus::Ok;
}

}  // namespace rapt
