#include "support/FaultInjection.h"

#include <cstdlib>
#include <cstring>
#include <vector>

namespace rapt {

void fireProcessFault(ProcessFaultKind kind) {
  switch (kind) {
    case ProcessFaultKind::Abort:
      std::abort();
    case ProcessFaultKind::Segfault: {
      volatile int* null = nullptr;
      *null = 1;
      std::abort();  // unreachable; keeps [[noreturn]] honest if SEGV is trapped
    }
    case ProcessFaultKind::AllocBomb: {
      // Touch every block so a lazily-committing allocator still grows the
      // address space; RLIMIT_AS (or the worker's new_handler) ends this.
      std::vector<char*> blocks;
      for (;;) {
        char* block = new char[64 * 1024 * 1024];
        std::memset(block, 0xab, 64 * 1024 * 1024);
        blocks.push_back(block);
      }
    }
    case ProcessFaultKind::SpinHang:
    case ProcessFaultKind::None: {
      // None should not reach here; spinning is the safe interpretation —
      // under supervision the watchdog reports it loudly.
      volatile std::uint64_t spin = 0;
      for (;;) spin = spin + 1;
    }
  }
  std::abort();
}

namespace {
thread_local FaultInjector* tlsActive = nullptr;
}  // namespace

FaultInjector* FaultInjector::active() { return tlsActive; }

FaultInjector::Scope::Scope(FaultInjector* fi) : prev_(tlsActive) { tlsActive = fi; }

FaultInjector::Scope::~Scope() { tlsActive = prev_; }

}  // namespace rapt
