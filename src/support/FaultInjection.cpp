#include "support/FaultInjection.h"

namespace rapt {

namespace {
thread_local FaultInjector* tlsActive = nullptr;
}  // namespace

FaultInjector* FaultInjector::active() { return tlsActive; }

FaultInjector::Scope::Scope(FaultInjector* fi) : prev_(tlsActive) { tlsActive = fi; }

FaultInjector::Scope::~Scope() { tlsActive = prev_; }

}  // namespace rapt
