// Seeded, deterministic fault injection for the pipeline robustness harness
// (docs/robustness.md "Fault injection").
//
// A FaultInjector decides, per injection site, whether the site should
// misbehave on this call and how: report a clean stage failure, corrupt its
// otherwise-correct output, or throw. Draws come from a SplitMix64 stream
// seeded by the caller, so a campaign run is bit-reproducible and — because
// compileLoop derives one injector per loop from (seed, loop name) — the
// injected faults are identical for every suite thread count.
//
// The injector is published to the pipeline stages through a thread-local
// pointer (compileLoop is single-threaded, so the pointer never crosses a
// thread): library code queries FaultInjector::active() and does nothing
// when no injector is installed, which keeps the hooks free on production
// paths. Sites only count a fault as injected when they actually applied it
// (a Corrupt draw with no corruptible payload is a no-op), so campaign
// oracles can trust injectedCount().
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "support/Rng.h"

namespace rapt {

/// Where a fault can be injected. One enumerator per instrumented subsystem.
enum class FaultSite : std::uint8_t {
  Scheduler,    ///< moduloSchedule (ideal and clustered attempts)
  Partitioner,  ///< greedyPartition
  Allocator,    ///< assignBanks
  Emitter,      ///< emitPipelinedCode
};
inline constexpr int kNumFaultSites = 4;

[[nodiscard]] constexpr const char* faultSiteName(FaultSite s) {
  switch (s) {
    case FaultSite::Scheduler: return "scheduler";
    case FaultSite::Partitioner: return "partitioner";
    case FaultSite::Allocator: return "allocator";
    case FaultSite::Emitter: return "emitter";
  }
  return "invalid";
}

/// What the faulted site does.
enum class FaultKind : std::uint8_t {
  None = 0,   ///< behave normally
  StageFail,  ///< report a clean failure through the stage's failure channel
  Corrupt,    ///< return subtly wrong output (the oracles must catch it)
  Throw,      ///< throw FaultInjected (the containment layer must catch it)
};

/// Process-grade faults (docs/robustness.md "Process fault campaign"). Unlike
/// FaultKind these do not exercise the in-process containment — they KILL or
/// WEDGE the process on purpose, which is survivable only under subprocess
/// isolation (pipeline/Suite.h), where each one must land in its taxonomy
/// class: Abort/Segfault -> Crash, AllocBomb -> OutOfMemory, SpinHang ->
/// HardTimeout.
enum class ProcessFaultKind : std::uint8_t {
  None = 0,
  Abort,      ///< std::abort (SIGABRT)
  Segfault,   ///< write through a null pointer (SIGSEGV)
  AllocBomb,  ///< allocate until RLIMIT_AS ends the process
  SpinHang,   ///< spin forever; the watchdog or RLIMIT_CPU must end it
};

[[nodiscard]] constexpr const char* processFaultName(ProcessFaultKind k) {
  switch (k) {
    case ProcessFaultKind::None: return "none";
    case ProcessFaultKind::Abort: return "abort";
    case ProcessFaultKind::Segfault: return "segfault";
    case ProcessFaultKind::AllocBomb: return "allocBomb";
    case ProcessFaultKind::SpinHang: return "spinHang";
  }
  return "invalid";
}

/// Executes the fault. Never returns: every kind either kills the process or
/// spins until something outside the process kills it. (An AllocBomb relies
/// on the worker's new_handler / RLIMIT_AS to die rather than throw.)
[[noreturn]] void fireProcessFault(ProcessFaultKind kind);

/// The exception injected by FaultKind::Throw. Deliberately a plain
/// std::runtime_error subtype: containment must not special-case it.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& site)
      : std::runtime_error("injected fault at " + site) {}
};

class FaultInjector {
 public:
  /// `ratePercent` is the per-query probability (0-100) that a site faults.
  FaultInjector(std::uint64_t seed, int ratePercent)
      : rng_(seed), ratePercent_(ratePercent) {}

  /// One decision for one site call. Deterministic given seed and call
  /// sequence (compileLoop's stage sequence is deterministic).
  [[nodiscard]] FaultKind draw(FaultSite site) {
    (void)site;
    if (ratePercent_ <= 0 || !rng_.chancePercent(ratePercent_)) return FaultKind::None;
    switch (rng_.range(0, 2)) {
      case 0: return FaultKind::StageFail;
      case 1: return FaultKind::Corrupt;
      default: return FaultKind::Throw;
    }
  }

  /// Uniform index in [0, n) for picking a corruption target. n must be > 0.
  [[nodiscard]] std::int64_t index(std::int64_t n) { return rng_.range(0, n - 1); }

  /// Arms process-grade faults; off by default so the stage-fault stream of
  /// existing campaigns is unchanged.
  void armProcessFaults(bool on) { processFaults_ = on; }

  /// One process-fault decision, drawn at loop entry. Returns None unless
  /// armed AND the rate fires; otherwise a uniformly chosen lethal kind.
  [[nodiscard]] ProcessFaultKind drawProcessFault() {
    if (!processFaults_ || ratePercent_ <= 0 || !rng_.chancePercent(ratePercent_))
      return ProcessFaultKind::None;
    switch (rng_.range(0, 3)) {
      case 0: return ProcessFaultKind::Abort;
      case 1: return ProcessFaultKind::Segfault;
      case 2: return ProcessFaultKind::AllocBomb;
      default: return ProcessFaultKind::SpinHang;
    }
  }

  /// Called by a site when it actually applied a fault.
  void recordInjected(FaultSite site) {
    ++counts_[static_cast<std::size_t>(site)];
  }

  [[nodiscard]] int injectedAt(FaultSite site) const {
    return counts_[static_cast<std::size_t>(site)];
  }
  [[nodiscard]] int injectedCount() const {
    int total = 0;
    for (int c : counts_) total += c;
    return total;
  }

  /// The injector visible to pipeline stages on this thread (nullptr when
  /// fault injection is off — the production case).
  [[nodiscard]] static FaultInjector* active();

  /// RAII installer: publishes `fi` for the scope's duration and restores the
  /// previous injector on exit, including on exception unwind.
  class Scope {
   public:
    explicit Scope(FaultInjector* fi);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    FaultInjector* prev_;
  };

 private:
  SplitMix64 rng_;
  int ratePercent_ = 0;
  bool processFaults_ = false;
  std::array<int, kNumFaultSites> counts_{};
};

}  // namespace rapt
