#include "support/Interrupt.h"

#include <signal.h>

#include <atomic>

namespace rapt {
namespace {

// sig_atomic_t for the handler, std::atomic for cross-thread visibility in
// the supervisor's pool threads. Both writes happen in the handler; that is
// legal for lock-free atomics.
std::atomic<int> gInterruptSignal{0};
std::atomic<int> gGuardDepth{0};

struct sigaction gPreviousInt;
struct sigaction gPreviousTerm;

extern "C" void raptInterruptHandler(int sig) {
  int expected = 0;
  if (!gInterruptSignal.compare_exchange_strong(expected, sig)) {
    // Second signal: the operator wants out NOW. Restore default and
    // re-raise — only async-signal-safe calls here.
    struct sigaction dfl {};
    dfl.sa_handler = SIG_DFL;
    ::sigaction(sig, &dfl, nullptr);
    ::raise(sig);
  }
}

}  // namespace

InterruptGuard::InterruptGuard() {
  if (gGuardDepth.fetch_add(1) != 0) return;  // inner guard: already live
  struct sigaction sa {};
  sa.sa_handler = raptInterruptHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, &gPreviousInt);
  ::sigaction(SIGTERM, &sa, &gPreviousTerm);
  installed_ = true;
}

InterruptGuard::~InterruptGuard() {
  gGuardDepth.fetch_sub(1);
  if (!installed_) return;
  ::sigaction(SIGINT, &gPreviousInt, nullptr);
  ::sigaction(SIGTERM, &gPreviousTerm, nullptr);
}

bool interruptRequested() {
  return gInterruptSignal.load(std::memory_order_relaxed) != 0;
}

int interruptSignal() {
  return gInterruptSignal.load(std::memory_order_relaxed);
}

void requestInterruptForTest(int sig) {
  gInterruptSignal.store(sig, std::memory_order_relaxed);
}

void clearInterruptForTest() {
  gInterruptSignal.store(0, std::memory_order_relaxed);
}

}  // namespace rapt
