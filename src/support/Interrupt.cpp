#include "support/Interrupt.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>

namespace rapt {
namespace {

// sig_atomic_t for the handler, std::atomic for cross-thread visibility in
// the supervisor's pool threads. Both writes happen in the handler; that is
// legal for lock-free atomics.
std::atomic<int> gInterruptSignal{0};
std::atomic<int> gGuardDepth{0};

struct sigaction gPreviousInt;
struct sigaction gPreviousTerm;

// Self-pipe for poll-based wakeup (interruptWakeFd). Created lazily on the
// first call from normal code; the handler only write()s, which is
// async-signal-safe. Both ends are nonblocking so the handler can never
// block on a full pipe, and neither end is ever closed (the fd outlives
// every guard: pollers may still hold it).
std::atomic<int> gWakeReadFd{-1};
std::atomic<int> gWakeWriteFd{-1};

void notifyWakeFd() {
  const int fd = gWakeWriteFd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    ssize_t ignored = ::write(fd, &byte, 1);  // EAGAIN on a full pipe is fine
    (void)ignored;
  }
}

extern "C" void raptInterruptHandler(int sig) {
  int expected = 0;
  if (!gInterruptSignal.compare_exchange_strong(expected, sig)) {
    // Second signal: the operator wants out NOW. Restore default and
    // re-raise — only async-signal-safe calls here.
    struct sigaction dfl {};
    dfl.sa_handler = SIG_DFL;
    ::sigaction(sig, &dfl, nullptr);
    ::raise(sig);
  }
  notifyWakeFd();
}

}  // namespace

InterruptGuard::InterruptGuard() {
  if (gGuardDepth.fetch_add(1) != 0) return;  // inner guard: already live
  struct sigaction sa {};
  sa.sa_handler = raptInterruptHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, &gPreviousInt);
  ::sigaction(SIGTERM, &sa, &gPreviousTerm);
  installed_ = true;
}

InterruptGuard::~InterruptGuard() {
  gGuardDepth.fetch_sub(1);
  if (!installed_) return;
  ::sigaction(SIGINT, &gPreviousInt, nullptr);
  ::sigaction(SIGTERM, &gPreviousTerm, nullptr);
}

bool interruptRequested() {
  return gInterruptSignal.load(std::memory_order_relaxed) != 0;
}

int interruptSignal() {
  return gInterruptSignal.load(std::memory_order_relaxed);
}

int interruptWakeFd() {
  int fd = gWakeReadFd.load(std::memory_order_acquire);
  if (fd >= 0) return fd;
  int fds[2];
  if (::pipe2(fds, O_CLOEXEC | O_NONBLOCK) != 0) return -1;
  int expected = -1;
  if (gWakeReadFd.compare_exchange_strong(expected, fds[0],
                                          std::memory_order_acq_rel)) {
    gWakeWriteFd.store(fds[1], std::memory_order_release);
    // A signal that already arrived must leave the fd readable: the pipe was
    // created after the handler ran, so notify retroactively.
    if (interruptRequested()) notifyWakeFd();
    return fds[0];
  }
  // Lost a creation race with another thread; use the winner's pipe.
  ::close(fds[0]);
  ::close(fds[1]);
  return gWakeReadFd.load(std::memory_order_acquire);
}

void requestInterruptForTest(int sig) {
  gInterruptSignal.store(sig, std::memory_order_relaxed);
  notifyWakeFd();
}

void clearInterruptForTest() {
  gInterruptSignal.store(0, std::memory_order_relaxed);
  // Drain the wake pipe so a later poll does not see a stale byte.
  const int fd = gWakeReadFd.load(std::memory_order_acquire);
  if (fd >= 0) {
    char buf[64];
    while (::read(fd, buf, sizeof buf) > 0) {
    }
  }
}

}  // namespace rapt
