// Cooperative SIGINT/SIGTERM handling for long suite and bench runs
// (docs/robustness.md "Interrupt safety").
//
// The default disposition for Ctrl-C is immediate death — which tears
// half-written BENCH_*.json files and throws away every compiled loop of a
// long run. InterruptGuard replaces it with a sticky flag: the handler only
// records the signal (async-signal-safe), and the supervisor polls
// `interruptRequested()` between loops, finishes the rows already in flight,
// flushes the journal, writes a *partial* report atomically, and exits with
// the conventional 128+signal status. A second Ctrl-C while winding down
// restores the default disposition and re-raises, so an impatient operator
// can still kill the process outright.
#pragma once

namespace rapt {

/// RAII scope that installs the flag-setting handler for SIGINT and SIGTERM
/// and restores the previous dispositions on destruction. Nesting is
/// harmless (inner guards are no-ops); the sticky flag is process-global.
class InterruptGuard {
 public:
  InterruptGuard();
  ~InterruptGuard();
  InterruptGuard(const InterruptGuard&) = delete;
  InterruptGuard& operator=(const InterruptGuard&) = delete;

 private:
  bool installed_ = false;
};

/// True once SIGINT or SIGTERM has been received under an InterruptGuard.
/// Sticky: stays true for the rest of the process.
[[nodiscard]] bool interruptRequested();

/// The signal that set the flag (SIGINT or SIGTERM), or 0 if none yet.
/// `128 + interruptSignal()` is the conventional exit status.
[[nodiscard]] int interruptSignal();

/// A file descriptor that becomes readable once SIGINT/SIGTERM has been
/// received (self-pipe: the handler writes one byte). Poll loops that block
/// in poll()/accept() — the compile service's acceptor, most prominently —
/// include this fd so a signal wakes them immediately instead of waiting out
/// their poll timeout. The fd is process-global and never closed; do not
/// read from it (leave it readable so every poller wakes). Returns -1 if the
/// pipe could not be created.
[[nodiscard]] int interruptWakeFd();

/// Sets the flag as if `sig` had been delivered — lets tests exercise the
/// wind-down path without racing a real signal.
void requestInterruptForTest(int sig);

/// Clears the sticky flag. Tests only: real runs treat the flag as final.
void clearInterruptForTest();

}  // namespace rapt
