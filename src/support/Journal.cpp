#include "support/Journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "support/ChaosIo.h"
#include "support/Crc32.h"
#include "support/Durability.h"

namespace rapt {
namespace {

/// The frame prefix: "crc32:<8 hex>:". Total prefix length 15.
constexpr const char* kFramePrefix = "crc32:";
constexpr std::size_t kFramePrefixLen = 6;
constexpr std::size_t kFrameHeaderLen = kFramePrefixLen + 8 + 1;

/// One line's verdict from the loader.
struct LineVerdict {
  bool good = false;
  Json record;        // when good
  std::string detail; // when damaged: what was wrong
};

LineVerdict classifyLine(const std::string& line) {
  LineVerdict v;
  std::string payload;
  if (line.compare(0, kFramePrefixLen, kFramePrefix) == 0) {
    std::uint32_t stored = 0;
    if (!parseCrc32Hex(line, kFramePrefixLen, stored) ||
        line.size() < kFrameHeaderLen || line[kFrameHeaderLen - 1] != ':') {
      v.detail = "mangled CRC frame";
      return v;
    }
    payload = line.substr(kFrameHeaderLen);
    if (crc32(payload) != stored) {
      v.detail = "CRC mismatch";
      return v;
    }
  } else {
    payload = line;  // legacy unframed line: JSON parsability is the only check
  }
  std::string error;
  if (!Json::parse(payload, v.record, error) || !v.record.isObject()) {
    v.detail = error.empty() ? "not a JSON object" : error;
    return v;
  }
  v.good = true;
  return v;
}

}  // namespace

std::string JournalWriter::frameLine(const std::string& compactJson) {
  return std::string(kFramePrefix) + crc32Hex(crc32(compactJson)) + ":" +
         compactJson;
}

bool JournalWriter::writeLineLocked(const std::string& line) {
  // One full-write + fsync per record, both through the chaos shim: the
  // fsync makes the record durable before the caller moves on — that is the
  // "completed" claim a resume trusts — and an injected ENOSPC/EIO/crash
  // lands exactly where a real disk would put it.
  lastErrno_ = 0;
  if (!chaosWriteFully(fd_, line.data(), line.size(), ChaosSite::JournalWrite) ||
      chaosFsync(fd_, ChaosSite::JournalFsync) != 0) {
    lastErrno_ = errno;
    return false;
  }
  return true;
}

bool JournalWriter::create(const std::string& path, Json header) {
  close();
  std::lock_guard<std::mutex> lock(mutex_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    lastErrno_ = errno;
    std::fprintf(stderr, "journal: cannot create %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  path_ = path;
  Json full = Json::object();
  full["kind"] = "header";
  full["schema"] = kSchema;
  if (header.isObject()) {
    for (const auto& [k, v] : header.items()) full[k] = v;
  }
  if (!writeLineLocked(frameLine(full.dumpCompact()) + "\n")) {
    std::fprintf(stderr, "journal: header write failed for %s: %s\n",
                 path.c_str(), std::strerror(lastErrno_));
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  // The file's contents are durable, but its directory entry is not until
  // the parent dir is fsync'd — without this, a crash right after create can
  // lose the WHOLE journal on ext4/xfs, not just the last row
  // (support/Durability.h).
  if (!fsyncParentDir(path))
    std::fprintf(stderr, "journal: warning: cannot fsync parent dir of %s\n",
                 path.c_str());
  return true;
}

bool JournalWriter::openAppend(const std::string& path) {
  close();
  std::lock_guard<std::mutex> lock(mutex_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    lastErrno_ = errno;
    std::fprintf(stderr, "journal: cannot open %s for append: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  path_ = path;
  return true;
}

bool JournalWriter::append(const Json& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) {
    lastErrno_ = EBADF;
    return false;
  }
  if (!writeLineLocked(frameLine(record.dumpCompact()) + "\n")) {
    std::fprintf(stderr, "journal: append to %s failed: %s\n", path_.c_str(),
                 std::strerror(lastErrno_));
    return false;
  }
  return true;
}

void JournalWriter::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

int JournalWriter::lastErrno() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lastErrno_;
}

JournalContents loadJournal(const std::string& path) {
  JournalContents out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.error = "cannot open journal: " + path;
    return out;
  }
  std::string line;
  bool sawHeader = false;
  int pendingDamaged = 0;  // damaged lines not yet known to be the torn tail
  std::string firstDetail;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    LineVerdict v = classifyLine(line);
    if (!sawHeader) {
      // The header decides whether ANY row can be interpreted; a damaged or
      // alien first line means nothing after it can be trusted either.
      if (!v.good) {
        out.error = "journal header line is damaged in " + path + ": " + v.detail;
        return out;
      }
      const Json* kind = v.record.find("kind");
      if (kind == nullptr || !kind->isString() || kind->asString() != "header") {
        out.error = "journal has no header record: " + path;
        return out;
      }
      const Json* schema = v.record.find("schema");
      if (schema == nullptr || !schema->isString() ||
          schema->asString() != JournalWriter::kSchema) {
        out.error = "journal schema mismatch in " + path;
        return out;
      }
      out.header = std::move(v.record);
      sawHeader = true;
      continue;
    }
    if (!v.good) {
      // Deferred: only the FINAL run of damaged lines is a torn tail; a
      // damaged line followed by a good one is interior corruption.
      ++pendingDamaged;
      if (firstDetail.empty()) firstDetail = v.detail;
      continue;
    }
    if (pendingDamaged > 0) {
      out.quarantinedLines += pendingDamaged;
      if (out.quarantineDetail.empty()) out.quarantineDetail = firstDetail;
      pendingDamaged = 0;
      firstDetail.clear();
    }
    out.rows.push_back(std::move(v.record));
  }
  if (!sawHeader) {
    out.error = "journal is empty: " + path;
    return out;
  }
  out.tornTailLines = pendingDamaged;
  if (out.quarantinedLines > 0)
    std::fprintf(stderr,
                 "journal: quarantined %d corrupt record(s) in %s (%s); "
                 "they will be recomputed, not trusted\n",
                 out.quarantinedLines, path.c_str(),
                 out.quarantineDetail.c_str());
  out.valid = true;
  return out;
}

}  // namespace rapt
