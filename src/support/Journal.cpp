#include "support/Journal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/Durability.h"

namespace rapt {

bool JournalWriter::create(const std::string& path, Json header) {
  close();
  std::lock_guard<std::mutex> lock(mutex_);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    std::fprintf(stderr, "journal: cannot create %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  path_ = path;
  Json full = Json::object();
  full["kind"] = "header";
  full["schema"] = kSchema;
  if (header.isObject()) {
    for (const auto& [k, v] : header.items()) full[k] = v;
  }
  const std::string line = full.dumpCompact() + "\n";
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), file_) == line.size() &&
      std::fflush(file_) == 0 && ::fsync(::fileno(file_)) == 0;
  if (!ok) {
    std::fprintf(stderr, "journal: header write failed for %s\n", path.c_str());
    std::fclose(file_);
    file_ = nullptr;
    return false;
  }
  // The file's contents are durable, but its directory entry is not until
  // the parent dir is fsync'd — without this, a crash right after create can
  // lose the WHOLE journal on ext4/xfs, not just the last row
  // (support/Durability.h).
  if (!fsyncParentDir(path))
    std::fprintf(stderr, "journal: warning: cannot fsync parent dir of %s\n",
                 path.c_str());
  return true;
}

bool JournalWriter::openAppend(const std::string& path) {
  close();
  std::lock_guard<std::mutex> lock(mutex_);
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    std::fprintf(stderr, "journal: cannot open %s for append: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  path_ = path;
  return true;
}

bool JournalWriter::append(const Json& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return false;
  const std::string line = record.dumpCompact() + "\n";
  // One fwrite per record: stdio either buffers the whole line or we detect
  // the short write here; the fsync then makes the record durable before the
  // suite moves on — the "completed" claim a resume trusts.
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), file_) == line.size() &&
      std::fflush(file_) == 0 && ::fsync(::fileno(file_)) == 0;
  if (!ok)
    std::fprintf(stderr, "journal: append to %s failed\n", path_.c_str());
  return ok;
}

void JournalWriter::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fflush(file_);
    ::fsync(::fileno(file_));
    std::fclose(file_);
    file_ = nullptr;
  }
}

JournalContents loadJournal(const std::string& path) {
  JournalContents out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.error = "cannot open journal: " + path;
    return out;
  }
  std::string line;
  bool first = true;
  std::vector<std::string> pending;  // parse errors held until we know whether
                                     // they are the torn tail
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Json record;
    std::string error;
    if (!Json::parse(line, record, error) || !record.isObject()) {
      pending.push_back(error.empty() ? "not an object" : error);
      continue;
    }
    if (!pending.empty()) {
      // A bad line followed by a good one is corruption, not a torn append.
      out.error = "corrupt journal line before end of " + path + ": " + pending.front();
      return out;
    }
    const Json* kind = record.find("kind");
    if (first) {
      if (kind == nullptr || !kind->isString() || kind->asString() != "header") {
        out.error = "journal has no header record: " + path;
        return out;
      }
      const Json* schema = record.find("schema");
      if (schema == nullptr || !schema->isString() ||
          schema->asString() != JournalWriter::kSchema) {
        out.error = "journal schema mismatch in " + path;
        return out;
      }
      out.header = std::move(record);
      first = false;
      continue;
    }
    out.rows.push_back(std::move(record));
  }
  if (first) {
    out.error = "journal is empty: " + path;
    return out;
  }
  out.tornTailLines = static_cast<int>(pending.size());
  out.valid = true;
  return out;
}

}  // namespace rapt
