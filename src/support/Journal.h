// Append-only, crash-consistent run journal (docs/robustness.md "Journaled
// resume").
//
// A journal is a JSONL file: one header line identifying the run
// configuration, then one self-contained JSON record per completed unit of
// work. Every append is flushed AND fsync'd before returning, so a record is
// either durable or absent — a SIGKILL mid-write can at worst leave one torn
// trailing line, which the loader detects and drops (everything before it
// replays). The writer takes an internal mutex: suite workers append from
// pool threads.
//
// The journal knows nothing about LoopResults: records are opaque Json
// objects, and the pipeline layer (pipeline/WorkerProtocol.h) owns their
// schema and the config-hash key that decides whether a journal may be
// resumed against a given run.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "support/Json.h"

namespace rapt {

/// Everything read back from a journal file. `valid` means the file existed,
/// the header parsed, and the schema matched; `rows` then holds every intact
/// record in append order (a torn trailing line is counted, not an error).
struct JournalContents {
  bool valid = false;
  std::string error;     ///< why !valid (missing file, bad header, ...)
  Json header;           ///< the header record (kind == "header")
  std::vector<Json> rows;
  int tornTailLines = 0;  ///< trailing lines dropped as torn/garbled
};

class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Creates `path` (truncating any previous file) and durably writes the
  /// header record; `header` gains `"kind": "header"` and the schema tag.
  /// Returns false on I/O failure (the writer is then unusable).
  [[nodiscard]] bool create(const std::string& path, Json header);

  /// Opens `path` for appending WITHOUT writing a header — the resume case:
  /// the existing header has been validated by load(). Returns false on I/O
  /// failure.
  [[nodiscard]] bool openAppend(const std::string& path);

  /// Appends one record as a single line and fsyncs. Thread-safe. Returns
  /// false on I/O failure (the record may then be absent or torn on disk —
  /// both are handled by load()).
  bool append(const Json& record);

  /// Flushes and closes; further appends fail. Idempotent.
  void close();

  [[nodiscard]] bool isOpen() const { return file_ != nullptr; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// The schema tag written into and required of every journal header.
  static constexpr const char* kSchema = "rapt-journal-v1";

 private:
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Reads a journal back. Tolerates (and counts) a torn trailing line; any
/// torn or unparseable line earlier in the file invalidates the journal —
/// that is corruption, not an interrupted append.
[[nodiscard]] JournalContents loadJournal(const std::string& path);

}  // namespace rapt
