// Append-only, crash-consistent run journal (docs/robustness.md "Journaled
// resume" and "Crash consistency").
//
// A journal is a JSONL file: one header line identifying the run
// configuration, then one self-contained JSON record per completed unit of
// work. Every append is written through the shared full-write helper
// (support/ChaosIo.h), flushed AND fsync'd before returning, so a record is
// either durable or absent against clean crashes.
//
// Against DIRTY crashes — kill -9 mid-write, torn sectors, bit rot — each
// line additionally carries a CRC-32 frame over its exact record bytes:
//
//   crc32:9a0b1c2d:{"kind":"row",...}\n
//
// The loader verifies the frame and QUARANTINES any line that fails it
// (torn, flipped, truncated, or unparseable), counting and reporting it
// instead of trusting it or refusing the whole file. Consumers recompute
// quarantined units of work; everything intact replays. Unframed lines from
// pre-CRC journals still load (their only protection is JSON parsability,
// as before). The writer takes an internal mutex: suite workers append from
// pool threads.
//
// The journal knows nothing about LoopResults: records are opaque Json
// objects, and the pipeline layer (pipeline/WorkerProtocol.h) owns their
// schema and the config-hash key that decides whether a journal may be
// resumed against a given run.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "support/Json.h"

namespace rapt {

/// Everything read back from a journal file. `valid` means the file existed
/// and the header line was intact, parsed, and schema-matched; `rows` then
/// holds every intact record in append order. Damaged lines are counted,
/// never returned: a trailing run of them is the torn tail a SIGKILL
/// mid-append leaves, anything earlier is quarantined corruption.
struct JournalContents {
  bool valid = false;
  std::string error;      ///< why !valid (missing file, bad/damaged header, ...)
  Json header;            ///< the header record (kind == "header")
  std::vector<Json> rows;
  int tornTailLines = 0;     ///< trailing damaged lines (interrupted append)
  int quarantinedLines = 0;  ///< interior damaged lines skipped, not trusted
  std::string quarantineDetail;  ///< first quarantined line's diagnosis
};

class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Creates `path` (truncating any previous file) and durably writes the
  /// header record; `header` gains `"kind": "header"` and the schema tag.
  /// Returns false on I/O failure (the writer is then unusable).
  [[nodiscard]] bool create(const std::string& path, Json header);

  /// Opens `path` for appending WITHOUT writing a header — the resume case:
  /// the existing header has been validated by load(). Returns false on I/O
  /// failure.
  [[nodiscard]] bool openAppend(const std::string& path);

  /// Appends one CRC-framed record as a single line and fsyncs. Thread-safe.
  /// Returns false on I/O failure (the record may then be absent or torn on
  /// disk — both are handled by load()); lastErrno() then says why, so
  /// callers can map ENOSPC/EIO to a structured degradation instead of
  /// guessing.
  bool append(const Json& record);

  /// Flushes and closes; further appends fail. Idempotent.
  void close();

  [[nodiscard]] bool isOpen() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// errno of the most recent failed append/create (0 after successes).
  [[nodiscard]] int lastErrno() const;

  /// The schema tag written into and required of every journal header.
  static constexpr const char* kSchema = "rapt-journal-v1";

  /// Renders one record line exactly as append() writes it (no '\n'):
  /// the CRC-32 frame prefix plus the record's compact JSON. Exposed for
  /// tests that need to forge damaged-but-plausible lines.
  [[nodiscard]] static std::string frameLine(const std::string& compactJson);

 private:
  bool writeLineLocked(const std::string& line);

  mutable std::mutex mutex_;
  int fd_ = -1;
  std::string path_;
  int lastErrno_ = 0;  ///< guarded by mutex_
};

/// Reads a journal back, verifying each line's CRC frame. Damaged lines are
/// quarantined or counted as the torn tail as documented on JournalContents;
/// only a missing file, an empty file, or a damaged/mismatched HEADER — the
/// line every other row's interpretation depends on — invalidates the load.
[[nodiscard]] JournalContents loadJournal(const std::string& path);

}  // namespace rapt
