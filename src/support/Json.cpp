#include "support/Json.h"

#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/Assert.h"

namespace rapt {

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json& Json::operator[](const std::string& key) {
  RAPT_ASSERT(kind_ == Kind::Object, "operator[] on non-object Json");
  for (auto& [k, v] : objectItems_) {
    if (k == key) return v;
  }
  objectItems_.emplace_back(key, Json());
  return objectItems_.back().second;
}

Json& Json::push(Json v) {
  RAPT_ASSERT(kind_ == Kind::Array, "push on non-array Json");
  arrayItems_.push_back(std::move(v));
  return arrayItems_.back();
}

bool Json::asBool() const {
  RAPT_ASSERT(kind_ == Kind::Bool, "asBool on non-bool Json");
  return bool_;
}

std::int64_t Json::asInt() const {
  RAPT_ASSERT(kind_ == Kind::Int, "asInt on non-integer Json");
  return int_;
}

double Json::asDouble() const {
  RAPT_ASSERT(kind_ == Kind::Int || kind_ == Kind::Double,
              "asDouble on non-number Json");
  return kind_ == Kind::Int ? static_cast<double>(int_) : double_;
}

const std::string& Json::asString() const {
  RAPT_ASSERT(kind_ == Kind::String, "asString on non-string Json");
  return string_;
}

std::size_t Json::size() const {
  if (kind_ == Kind::Array) return arrayItems_.size();
  if (kind_ == Kind::Object) return objectItems_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  RAPT_ASSERT(kind_ == Kind::Array, "at on non-array Json");
  RAPT_ASSERT(i < arrayItems_.size(), "Json array index out of range");
  return arrayItems_[i];
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : objectItems_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  RAPT_ASSERT(kind_ == Kind::Object, "items on non-object Json");
  return objectItems_;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void appendIndent(std::string& out, int indent) {
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

}  // namespace

void Json::dumpTo(std::string& out, int indent) const {
  char buf[64];
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Int:
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    case Kind::Double:
      if (std::isfinite(double_)) {
        std::snprintf(buf, sizeof buf, "%.17g", double_);
        out += buf;
        // %.17g of an integral double has no '.', 'e' or nan/inf marker;
        // force a decimal point so the value stays a JSON double.
        if (out.find_first_of(".eE", out.size() - std::strlen(buf)) == std::string::npos)
          out += ".0";
      } else {
        out += "null";  // JSON has no NaN/Inf
      }
      break;
    case Kind::String:
      out += '"';
      out += jsonEscape(string_);
      out += '"';
      break;
    case Kind::Array: {
      if (arrayItems_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arrayItems_.size(); ++i) {
        appendIndent(out, indent + 1);
        arrayItems_[i].dumpTo(out, indent + 1);
        if (i + 1 < arrayItems_.size()) out += ',';
        out += '\n';
      }
      appendIndent(out, indent);
      out += ']';
      break;
    }
    case Kind::Object: {
      if (objectItems_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < objectItems_.size(); ++i) {
        appendIndent(out, indent + 1);
        out += '"';
        out += jsonEscape(objectItems_[i].first);
        out += "\": ";
        objectItems_[i].second.dumpTo(out, indent + 1);
        if (i + 1 < objectItems_.size()) out += ',';
        out += '\n';
      }
      appendIndent(out, indent);
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dumpTo(out, 0);
  out += '\n';
  return out;
}

void Json::dumpCompactTo(std::string& out) const {
  switch (kind_) {
    case Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < arrayItems_.size(); ++i) {
        if (i > 0) out += ',';
        arrayItems_[i].dumpCompactTo(out);
      }
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      for (std::size_t i = 0; i < objectItems_.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += jsonEscape(objectItems_[i].first);
        out += "\":";
        objectItems_[i].second.dumpCompactTo(out);
      }
      out += '}';
      break;
    }
    default:
      // Scalars render identically in both formats; reuse the pretty printer
      // (it never emits whitespace for non-containers).
      dumpTo(out, 0);
  }
}

std::string Json::dumpCompact() const {
  std::string out;
  dumpCompactTo(out);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view. Positions are byte offsets
/// into the original text, reported in error messages.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parseDocument(Json& out, std::string& error) {
    skipWs();
    if (!parseValue(out, error)) return false;
    skipWs();
    if (pos_ != text_.size()) {
      error = err("trailing characters after JSON value");
      return false;
    }
    return true;
  }

 private:
  [[nodiscard]] std::string err(const std::string& what) const {
    return what + " at offset " + std::to_string(pos_);
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool atEnd() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool literal(std::string_view word, std::string& error) {
    if (text_.substr(pos_, word.size()) != word) {
      error = err("invalid JSON value");
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool parseValue(Json& out, std::string& error) {
    if (++depth_ > kMaxDepth) {
      error = err("JSON nesting too deep");
      return false;
    }
    skipWs();
    if (atEnd()) {
      error = err("unexpected end of input");
      return false;
    }
    bool ok = false;
    switch (peek()) {
      case 'n': ok = literal("null", error); out = Json(); break;
      case 't': ok = literal("true", error); out = Json(true); break;
      case 'f': ok = literal("false", error); out = Json(false); break;
      case '"': ok = parseString(out, error); break;
      case '[': ok = parseArray(out, error); break;
      case '{': ok = parseObject(out, error); break;
      default: ok = parseNumber(out, error); break;
    }
    --depth_;
    return ok;
  }

  bool parseHex4(unsigned& out, std::string& error) {
    if (pos_ + 4 > text_.size()) {
      error = err("truncated \\u escape");
      return false;
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      unsigned digit = 0;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A' + 10);
      else {
        error = err("invalid \\u escape digit");
        return false;
      }
      out = out * 16 + digit;
    }
    return true;
  }

  static void appendUtf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xc0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xe0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      s += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      s += static_cast<char>(0xf0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      s += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  bool parseStringInto(std::string& out, std::string& error) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (atEnd()) {
        error = err("unterminated string");
        return false;
      }
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        error = err("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (atEnd()) {
        error = err("truncated escape");
        return false;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parseHex4(cp, error)) return false;
          // Surrogate pair: combine \uD800-\uDBFF with the following low half.
          if (cp >= 0xd800 && cp <= 0xdbff && text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            unsigned low = 0;
            if (!parseHex4(low, error)) return false;
            if (low >= 0xdc00 && low <= 0xdfff)
              cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
            else
              appendUtf8(out, cp), cp = low;  // lone halves kept as-is
          }
          appendUtf8(out, cp);
          break;
        }
        default:
          error = err("invalid escape character");
          return false;
      }
    }
  }

  bool parseString(Json& out, std::string& error) {
    std::string s;
    if (!parseStringInto(s, error)) return false;
    out = Json(std::move(s));
    return true;
  }

  bool parseNumber(Json& out, std::string& error) {
    const std::size_t start = pos_;
    if (!atEnd() && peek() == '-') ++pos_;
    if (atEnd() || peek() < '0' || peek() > '9') {
      error = err("invalid number");
      return false;
    }
    while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos_;
    bool isDouble = false;
    if (!atEnd() && peek() == '.') {
      isDouble = true;
      ++pos_;
      if (atEnd() || peek() < '0' || peek() > '9') {
        error = err("digit expected after decimal point");
        return false;
      }
      while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      isDouble = true;
      ++pos_;
      if (!atEnd() && (peek() == '+' || peek() == '-')) ++pos_;
      if (atEnd() || peek() < '0' || peek() > '9') {
        error = err("digit expected in exponent");
        return false;
      }
      while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    // The token is NUL-terminated via a copy: string_view is not.
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    if (!isDouble) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == ERANGE || end != token.c_str() + token.size()) {
        // Out of int64 range: fall back to double (mirrors the writer, which
        // never emits such values for the repo's schemas).
        isDouble = true;
      } else {
        out = Json(static_cast<std::int64_t>(v));
        return true;
      }
    }
    char* end = nullptr;
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      error = err("invalid number");
      return false;
    }
    out = Json(d);
    return true;
  }

  bool parseArray(Json& out, std::string& error) {
    ++pos_;  // '['
    out = Json::array();
    skipWs();
    if (!atEnd() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json v;
      if (!parseValue(v, error)) return false;
      out.push(std::move(v));
      skipWs();
      if (atEnd()) {
        error = err("unterminated array");
        return false;
      }
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') {
        --pos_;
        error = err("',' or ']' expected in array");
        return false;
      }
    }
  }

  bool parseObject(Json& out, std::string& error) {
    ++pos_;  // '{'
    out = Json::object();
    skipWs();
    if (!atEnd() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (atEnd() || peek() != '"') {
        error = err("object key expected");
        return false;
      }
      std::string key;
      if (!parseStringInto(key, error)) return false;
      skipWs();
      if (atEnd() || text_[pos_] != ':') {
        error = err("':' expected after object key");
        return false;
      }
      ++pos_;
      Json v;
      if (!parseValue(v, error)) return false;
      out[key] = std::move(v);
      skipWs();
      if (atEnd()) {
        error = err("unterminated object");
        return false;
      }
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') {
        --pos_;
        error = err("',' or '}' expected in object");
        return false;
      }
    }
  }

  static constexpr int kMaxDepth = 256;  ///< recursion guard for hostile input

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool Json::parse(std::string_view text, Json& out, std::string& error) {
  return JsonParser(text).parseDocument(out, error);
}

bool Json::writeFile(const std::string& path) const {
  // Atomic publish: write the full document to a temp file in the same
  // directory, then rename over the target. A parallel or interrupted run can
  // never leave a truncated JSON behind for CI or docs tooling to read — the
  // target either keeps its old contents or gets the complete new ones.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "Json::writeFile: cannot open %s\n", tmp.c_str());
    return false;
  }
  const std::string text = dump();
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::fprintf(stderr, "Json::writeFile: short write to %s\n", tmp.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "Json::writeFile: cannot rename %s to %s\n", tmp.c_str(),
                 path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace rapt
