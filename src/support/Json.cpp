#include "support/Json.h"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>

#include "support/Assert.h"

namespace rapt {

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json& Json::operator[](const std::string& key) {
  RAPT_ASSERT(kind_ == Kind::Object, "operator[] on non-object Json");
  for (auto& [k, v] : objectItems_) {
    if (k == key) return v;
  }
  objectItems_.emplace_back(key, Json());
  return objectItems_.back().second;
}

Json& Json::push(Json v) {
  RAPT_ASSERT(kind_ == Kind::Array, "push on non-array Json");
  arrayItems_.push_back(std::move(v));
  return arrayItems_.back();
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void appendIndent(std::string& out, int indent) {
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

}  // namespace

void Json::dumpTo(std::string& out, int indent) const {
  char buf[64];
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Int:
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    case Kind::Double:
      if (std::isfinite(double_)) {
        std::snprintf(buf, sizeof buf, "%.17g", double_);
        out += buf;
        // %.17g of an integral double has no '.', 'e' or nan/inf marker;
        // force a decimal point so the value stays a JSON double.
        if (out.find_first_of(".eE", out.size() - std::strlen(buf)) == std::string::npos)
          out += ".0";
      } else {
        out += "null";  // JSON has no NaN/Inf
      }
      break;
    case Kind::String:
      out += '"';
      out += jsonEscape(string_);
      out += '"';
      break;
    case Kind::Array: {
      if (arrayItems_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arrayItems_.size(); ++i) {
        appendIndent(out, indent + 1);
        arrayItems_[i].dumpTo(out, indent + 1);
        if (i + 1 < arrayItems_.size()) out += ',';
        out += '\n';
      }
      appendIndent(out, indent);
      out += ']';
      break;
    }
    case Kind::Object: {
      if (objectItems_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < objectItems_.size(); ++i) {
        appendIndent(out, indent + 1);
        out += '"';
        out += jsonEscape(objectItems_[i].first);
        out += "\": ";
        objectItems_[i].second.dumpTo(out, indent + 1);
        if (i + 1 < objectItems_.size()) out += ',';
        out += '\n';
      }
      appendIndent(out, indent);
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dumpTo(out, 0);
  out += '\n';
  return out;
}

bool Json::writeFile(const std::string& path) const {
  // Atomic publish: write the full document to a temp file in the same
  // directory, then rename over the target. A parallel or interrupted run can
  // never leave a truncated JSON behind for CI or docs tooling to read — the
  // target either keeps its old contents or gets the complete new ones.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "Json::writeFile: cannot open %s\n", tmp.c_str());
    return false;
  }
  const std::string text = dump();
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::fprintf(stderr, "Json::writeFile: short write to %s\n", tmp.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "Json::writeFile: cannot rename %s to %s\n", tmp.c_str(),
                 path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace rapt
