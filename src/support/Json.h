// A minimal JSON document builder for the bench observability output
// (BENCH_<name>.json; schema in docs/metrics.md).
//
// Writing only — the repo never parses JSON. Numbers are emitted with enough
// precision to round-trip doubles bit-exactly (printf %.17g), so a JSON file
// regenerated from an identical run diffs clean.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rapt {

/// A JSON value: null, bool, integer, double, string, array, or object.
/// Object keys keep insertion order (the emitted file reads like the schema).
class Json {
 public:
  Json() : kind_(Kind::Null) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}                   // NOLINT(google-explicit-constructor)
  Json(int i) : kind_(Kind::Int), int_(i) {}                      // NOLINT(google-explicit-constructor)
  Json(std::int64_t i) : kind_(Kind::Int), int_(i) {}             // NOLINT(google-explicit-constructor)
  Json(double d) : kind_(Kind::Double), double_(d) {}             // NOLINT(google-explicit-constructor)
  Json(const char* s) : kind_(Kind::String), string_(s) {}        // NOLINT(google-explicit-constructor)
  Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Json object();
  [[nodiscard]] static Json array();

  /// Object access; creates the key on first use (insertion order preserved).
  Json& operator[](const std::string& key);

  /// Array append.
  Json& push(Json v);

  [[nodiscard]] bool isObject() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::Array; }

  /// Serializes with 2-space indentation and a trailing newline at top level.
  [[nodiscard]] std::string dump() const;

  /// Writes `dump()` to `path`. Returns false (and prints to stderr) on I/O
  /// failure.
  bool writeFile(const std::string& path) const;

 private:
  enum class Kind : std::uint8_t { Null, Bool, Int, Double, String, Array, Object };

  void dumpTo(std::string& out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> arrayItems_;
  std::vector<std::pair<std::string, Json>> objectItems_;
};

/// JSON string escaping (quotes not included).
[[nodiscard]] std::string jsonEscape(const std::string& s);

}  // namespace rapt
