// A minimal JSON document builder and parser.
//
// Writing serves the bench observability output (BENCH_<name>.json; schema in
// docs/metrics.md). Numbers are emitted with enough precision to round-trip
// doubles bit-exactly (printf %.17g), so a JSON file regenerated from an
// identical run diffs clean.
//
// Parsing serves the suite supervisor and the resume journal
// (docs/robustness.md): worker processes return LoopResults as JSON over a
// pipe and journal rows are replayed from disk, so parse(dump(x)) must
// reproduce x exactly — including the int/double distinction (a number is an
// integer iff its text has no '.', 'e' or 'E') and the full 64-bit integer
// range.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace rapt {

/// A JSON value: null, bool, integer, double, string, array, or object.
/// Object keys keep insertion order (the emitted file reads like the schema).
class Json {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Int, Double, String, Array, Object };

  Json() : kind_(Kind::Null) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}                   // NOLINT(google-explicit-constructor)
  Json(int i) : kind_(Kind::Int), int_(i) {}                      // NOLINT(google-explicit-constructor)
  Json(std::int64_t i) : kind_(Kind::Int), int_(i) {}             // NOLINT(google-explicit-constructor)
  Json(double d) : kind_(Kind::Double), double_(d) {}             // NOLINT(google-explicit-constructor)
  Json(const char* s) : kind_(Kind::String), string_(s) {}        // NOLINT(google-explicit-constructor)
  Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Json object();
  [[nodiscard]] static Json array();

  /// Strict parse of one JSON document (trailing whitespace allowed, trailing
  /// garbage rejected). Returns false and fills `error` (with a byte offset)
  /// on malformed input; `out` is unspecified then.
  [[nodiscard]] static bool parse(std::string_view text, Json& out, std::string& error);

  /// Object access; creates the key on first use (insertion order preserved).
  Json& operator[](const std::string& key);

  /// Array append.
  Json& push(Json v);

  // ---- Read access (for parsed documents) ----

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool isString() const { return kind_ == Kind::String; }
  [[nodiscard]] bool isBool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool isInt() const { return kind_ == Kind::Int; }
  /// Any JSON number (integer- or double-kinded).
  [[nodiscard]] bool isNumber() const {
    return kind_ == Kind::Int || kind_ == Kind::Double;
  }

  /// Value accessors; asserting on kind mismatch (asDouble accepts Int).
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] std::int64_t asInt() const;
  [[nodiscard]] double asDouble() const;
  [[nodiscard]] const std::string& asString() const;

  /// Array/object element count (0 for scalars).
  [[nodiscard]] std::size_t size() const;
  /// Array element (asserts on kind/range).
  [[nodiscard]] const Json& at(std::size_t i) const;
  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Object entries in insertion order (asserts unless object).
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& items() const;

  /// Serializes with 2-space indentation and a trailing newline at top level.
  [[nodiscard]] std::string dump() const;

  /// Single-line serialization without the trailing newline — the journal's
  /// one-record-per-line format (support/Journal.h).
  [[nodiscard]] std::string dumpCompact() const;

  /// Writes `dump()` to `path`. Returns false (and prints to stderr) on I/O
  /// failure.
  bool writeFile(const std::string& path) const;

 private:
  void dumpTo(std::string& out, int indent) const;
  void dumpCompactTo(std::string& out) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> arrayItems_;
  std::vector<std::pair<std::string, Json>> objectItems_;
};

/// JSON string escaping (quotes not included).
[[nodiscard]] std::string jsonEscape(const std::string& s);

}  // namespace rapt
