// Deterministic pseudo-random number generation.
//
// Everything stochastic in rapt (the synthetic loop corpus, randomized
// baseline partitioners, property-test inputs) draws from SplitMix64 with an
// explicit seed, so every experiment in EXPERIMENTS.md is bit-reproducible.
#pragma once

#include <cstdint>
#include <span>

#include "support/Assert.h"

namespace rapt {

/// SplitMix64: tiny, fast, statistically solid for corpus generation.
/// (Steele, Lea & Flood, OOPSLA'14.)  Not for cryptography.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    RAPT_ASSERT(lo <= hi, "invalid range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// True with probability `percent`/100.
  bool chancePercent(int percent) { return range(0, 99) < percent; }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Pick a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    RAPT_ASSERT(!items.empty(), "pick from empty span");
    return items[static_cast<std::size_t>(range(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Derive an independent stream (e.g. one per generated loop).
  [[nodiscard]] SplitMix64 fork() { return SplitMix64(next()); }

 private:
  std::uint64_t state_;
};

}  // namespace rapt
