#include "support/Socket.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "support/ChaosIo.h"

namespace rapt {
namespace {

[[nodiscard]] std::int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Remaining budget for a deadline started `timeoutMs` ago at `start`;
/// -1 for "wait forever", 0 when expired.
[[nodiscard]] int remainingMs(std::int64_t start, int timeoutMs) {
  if (timeoutMs <= 0) return -1;
  const std::int64_t left = start + timeoutMs - nowMs();
  if (left <= 0) return 0;
  return static_cast<int>(left > 1'000'000'000 ? 1'000'000'000 : left);
}

/// poll() one fd for `events`, EINTR-safe. Returns poll's result.
int pollOne(int fd, short events, int timeoutMs) {
  struct pollfd p = {fd, events, 0};
  for (;;) {
    const int r = ::poll(&p, 1, timeoutMs);
    if (r < 0 && errno == EINTR) continue;
    return r;
  }
}

bool fillSockaddr(const std::string& path, sockaddr_un& addr, std::string& error) {
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    error = "socket path too long for sockaddr_un: " + path;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

// ---- SocketConn ------------------------------------------------------------

SocketConn& SocketConn::operator=(SocketConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
    other.buffer_.clear();
  }
  return *this;
}

void SocketConn::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

SocketConn::ReadStatus SocketConn::readLine(std::string& out, int timeoutMs,
                                            std::size_t maxLineBytes) {
  if (fd_ < 0) return ReadStatus::Error;
  const std::int64_t start = nowMs();
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return ReadStatus::Line;
    }
    if (buffer_.size() > maxLineBytes) {
      close();
      return ReadStatus::Error;
    }
    const int budget = remainingMs(start, timeoutMs);
    if (budget == 0) return ReadStatus::Timeout;
    const int ready = pollOne(fd_, POLLIN, budget);
    if (ready == 0) return ReadStatus::Timeout;
    if (ready < 0) {
      close();
      return ReadStatus::Error;
    }
    char buf[65536];
    // Through the chaos shim (support/ChaosIo.h): an armed campaign turns
    // this into short reads, EINTR, stalls, or ECONNRESET — all of which
    // this loop must absorb or report exactly like the real thing.
    const ssize_t got = chaosRead(fd_, buf, sizeof buf, ChaosSite::SocketRead);
    if (got > 0) {
      buffer_.append(buf, static_cast<std::size_t>(got));
    } else if (got == 0) {
      return ReadStatus::Eof;
    } else if (errno != EINTR && errno != EAGAIN) {
      close();
      return ReadStatus::Error;
    }
  }
}

bool SocketConn::writeAll(const std::string& data, int timeoutMs) {
  if (fd_ < 0) return false;
  const std::int64_t start = nowMs();
  std::size_t written = 0;
  while (written < data.size()) {
    const int budget = remainingMs(start, timeoutMs);
    if (budget == 0) {
      close();
      return false;
    }
    const int ready = pollOne(fd_, POLLOUT, budget);
    if (ready <= 0) {
      close();
      return false;
    }
    // MSG_NOSIGNAL: a peer that hung up mid-reply is an EPIPE return value,
    // never a SIGPIPE — the daemon must not die because one client did.
    // Routed through the chaos shim so campaigns can tear this write short,
    // stall it, or cut the peer mid-frame.
    const ssize_t sent = chaosSend(fd_, data.data() + written,
                                   data.size() - written, MSG_NOSIGNAL,
                                   ChaosSite::SocketWrite);
    if (sent > 0) {
      written += static_cast<std::size_t>(sent);
    } else if (sent < 0 && errno != EINTR && errno != EAGAIN) {
      close();
      return false;
    }
  }
  return true;
}

// ---- UnixListener ----------------------------------------------------------

bool UnixListener::listen(const std::string& path, std::string& error,
                          int backlog) {
  close();
  sockaddr_un addr{};
  if (!fillSockaddr(path, addr, error)) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    error = std::string("socket failed: ") + std::strerror(errno);
    return false;
  }
  ::unlink(path.c_str());  // a stale socket file must not block restart
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    error = "bind failed for " + path + ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, backlog) != 0) {
    error = "listen failed for " + path + ": " + std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    return false;
  }
  fd_ = fd;
  path_ = path;
  return true;
}

SocketConn UnixListener::accept(int timeoutMs, int wakeFd) {
  if (fd_ < 0) return SocketConn{};
  struct pollfd fds[2];
  nfds_t n = 0;
  fds[n++] = {fd_, POLLIN, 0};
  if (wakeFd >= 0) fds[n++] = {wakeFd, POLLIN, 0};
  for (;;) {
    const int ready = ::poll(fds, n, timeoutMs <= 0 ? -1 : timeoutMs);
    if (ready < 0 && errno == EINTR) {
      // A handled signal (the interrupt handler) counts as a wake: return so
      // the caller re-checks its stop condition even without a wakeFd.
      return SocketConn{};
    }
    if (ready <= 0) return SocketConn{};                    // timeout
    if (n > 1 && (fds[1].revents & POLLIN) != 0) return SocketConn{};  // wake
    if ((fds[0].revents & POLLIN) == 0) return SocketConn{};
    const int conn = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn >= 0) return SocketConn{conn};
    if (errno != EINTR && errno != EAGAIN && errno != ECONNABORTED)
      return SocketConn{};
  }
}

void UnixListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
  }
  fd_ = -1;
  path_.clear();
}

SocketConn unixConnect(const std::string& path, std::string& error) {
  sockaddr_un addr{};
  if (!fillSockaddr(path, addr, error)) return SocketConn{};
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    error = std::string("socket failed: ") + std::strerror(errno);
    return SocketConn{};
  }
  int r;
  do {
    r = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (r != 0 && errno == EINTR);
  if (r != 0) {
    error = "connect failed for " + path + ": " + std::strerror(errno);
    ::close(fd);
    return SocketConn{};
  }
  return SocketConn{fd};
}

}  // namespace rapt
