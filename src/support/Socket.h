// Unix-domain stream sockets with line framing for the compile service
// (docs/service.md; the daemon is tools/rapt-served, the protocol lives in
// pipeline/WorkerProtocol.h).
//
// The service wire format is the journal's: one JSON document per
// '\n'-terminated line, so the transport layer only needs (a) a listener
// that can wait on "connection OR interrupt" and (b) a buffered connection
// that reads whole lines and writes whole buffers under a deadline. All I/O
// is plain POSIX poll + read/write — no threads, no global state — and every
// call is EINTR-safe. SIGPIPE never escapes: sends use MSG_NOSIGNAL, so a
// client that vanished mid-reply surfaces as a clean write failure.
//
// Deadlines are per-call, in milliseconds, 0 = wait forever. A timeout is
// reported distinctly from EOF and from hard errors so callers can keep
// polling their own stop conditions (the server re-checks
// interruptRequested() between read attempts).
#pragma once

#include <cstdint>
#include <string>

namespace rapt {

/// One accepted or connected Unix-domain stream endpoint with a read buffer
/// for line framing. Movable, not copyable; closes its fd on destruction.
class SocketConn {
 public:
  SocketConn() = default;
  explicit SocketConn(int fd) : fd_(fd) {}
  ~SocketConn() { close(); }
  SocketConn(SocketConn&& other) noexcept { *this = std::move(other); }
  SocketConn& operator=(SocketConn&& other) noexcept;
  SocketConn(const SocketConn&) = delete;
  SocketConn& operator=(const SocketConn&) = delete;

  [[nodiscard]] bool isOpen() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Outcome of readLine, distinguishing the three ways a read can stop.
  enum class ReadStatus : std::uint8_t {
    Line,     ///< one complete line is in `out` (terminator stripped)
    Eof,      ///< peer closed with no (complete) line pending
    Timeout,  ///< deadline expired; buffered partial data is kept
    Error,    ///< hard I/O error; the connection is closed
  };

  /// Reads until one full '\n'-terminated line is buffered, then returns it
  /// without the terminator. `timeoutMs` bounds the whole call (0 = block
  /// indefinitely). Oversized lines (> maxLineBytes) are an Error: a peer
  /// streaming garbage must not balloon the server.
  [[nodiscard]] ReadStatus readLine(std::string& out, int timeoutMs,
                                    std::size_t maxLineBytes = 64u << 20);

  /// Writes all of `data`, polling for writability up to `timeoutMs` per
  /// made progress (0 = block indefinitely). Returns false on timeout or
  /// error (the connection is then closed — a half-written frame is
  /// unrecoverable under line framing).
  [[nodiscard]] bool writeAll(const std::string& data, int timeoutMs);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

/// A listening Unix-domain socket bound to a filesystem path. Unlinks the
/// path on bind (a stale socket file from a dead daemon must not block
/// restart) and again on close.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener() { close(); }
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Binds and listens. Returns false with a diagnostic in `error` (path too
  /// long for sockaddr_un, bind/listen failure).
  [[nodiscard]] bool listen(const std::string& path, std::string& error,
                            int backlog = 64);

  /// Waits up to `timeoutMs` for a connection (0 = forever). `wakeFd`, when
  /// >= 0, is polled alongside the listener: readability there (the
  /// interrupt self-pipe, support/Interrupt.h) makes accept return an
  /// unopened conn immediately — the caller then checks its stop condition.
  /// Returns an open conn, or a closed one on timeout/wake/error.
  [[nodiscard]] SocketConn accept(int timeoutMs, int wakeFd = -1);

  [[nodiscard]] bool isOpen() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }
  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Connects to a listening Unix-domain socket. Returns a closed conn with a
/// diagnostic in `error` on failure.
[[nodiscard]] SocketConn unixConnect(const std::string& path, std::string& error);

}  // namespace rapt
