// Monotonic wall-clock timing for the pipeline observability layer.
//
// All durations in rapt are integer nanoseconds from std::chrono::steady_clock
// so traces are additive and safe to sum across threads and loops. Timing is
// observability only — it must never feed back into compilation decisions,
// or suite results would stop being deterministic.
#pragma once

#include <chrono>
#include <cstdint>

namespace rapt {

/// Started at construction; `elapsedNs` reads without stopping.
class StageTimer {
 public:
  StageTimer() : start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] std::int64_t elapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Adds the scope's duration to `slot` on destruction. Accumulates (+=), so
/// one slot can cover a stage that runs several times (e.g. reschedule
/// attempts during II escalation).
class ScopedStageTimer {
 public:
  explicit ScopedStageTimer(std::int64_t& slot) : slot_(slot) {}
  ~ScopedStageTimer() { slot_ += timer_.elapsedNs(); }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  std::int64_t& slot_;
  StageTimer timer_;
};

}  // namespace rapt
