#include "support/Stats.h"

#include <algorithm>
#include <cmath>

#include "support/Assert.h"

namespace rapt {

double arithmeticMean(std::span<const double> xs) {
  RAPT_ASSERT(!xs.empty(), "mean of empty sample");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double harmonicMean(std::span<const double> xs) {
  RAPT_ASSERT(!xs.empty(), "mean of empty sample");
  double inv = 0.0;
  for (double x : xs) {
    RAPT_ASSERT(x > 0.0, "harmonic mean requires positive values");
    inv += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv;
}

double geometricMean(std::span<const double> xs) {
  RAPT_ASSERT(!xs.empty(), "mean of empty sample");
  double logSum = 0.0;
  for (double x : xs) {
    RAPT_ASSERT(x > 0.0, "geometric mean requires positive values");
    logSum += std::log(x);
  }
  return std::exp(logSum / static_cast<double>(xs.size()));
}

double stdDev(std::span<const double> xs) {
  const double mu = arithmeticMean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) {
  RAPT_ASSERT(!xs.empty(), "median of empty sample");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

std::int64_t percentile(std::span<const std::int64_t> xs, double p) {
  if (xs.empty()) return 0;
  std::vector<std::int64_t> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  // Nearest-rank: the smallest value with at least p% of the sample at or
  // below it — ceil(p/100 * n), 1-based.
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  return v[rank == 0 ? 0 : rank - 1];
}

void DegradationHistogram::add(double degradationPercent) {
  int bucket;
  if (degradationPercent <= 0.0) {
    bucket = 0;
  } else if (degradationPercent >= 90.0) {
    bucket = kNumBuckets - 1;
  } else {
    bucket = 1 + static_cast<int>(degradationPercent / 10.0);
  }
  ++counts_[bucket];
  ++total_;
}

int DegradationHistogram::count(int bucket) const {
  RAPT_ASSERT(bucket >= 0 && bucket < kNumBuckets, "bucket out of range");
  return counts_[bucket];
}

double DegradationHistogram::percent(int bucket) const {
  if (total_ == 0) return 0.0;
  return 100.0 * static_cast<double>(count(bucket)) / static_cast<double>(total_);
}

std::string DegradationHistogram::bucketLabel(int bucket) {
  RAPT_ASSERT(bucket >= 0 && bucket < kNumBuckets, "bucket out of range");
  if (bucket == 0) return "0.00%";
  if (bucket == kNumBuckets - 1) return ">90%";
  return "<" + std::to_string(bucket * 10) + "%";
}

}  // namespace rapt
