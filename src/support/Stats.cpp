#include "support/Stats.h"

#include <algorithm>
#include <cmath>

#include "support/Assert.h"

namespace rapt {

double arithmeticMean(std::span<const double> xs) {
  RAPT_ASSERT(!xs.empty(), "mean of empty sample");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double harmonicMean(std::span<const double> xs) {
  RAPT_ASSERT(!xs.empty(), "mean of empty sample");
  double inv = 0.0;
  for (double x : xs) {
    RAPT_ASSERT(x > 0.0, "harmonic mean requires positive values");
    inv += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv;
}

double geometricMean(std::span<const double> xs) {
  RAPT_ASSERT(!xs.empty(), "mean of empty sample");
  double logSum = 0.0;
  for (double x : xs) {
    RAPT_ASSERT(x > 0.0, "geometric mean requires positive values");
    logSum += std::log(x);
  }
  return std::exp(logSum / static_cast<double>(xs.size()));
}

double stdDev(std::span<const double> xs) {
  const double mu = arithmeticMean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) {
  RAPT_ASSERT(!xs.empty(), "median of empty sample");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

std::int64_t percentile(std::span<const std::int64_t> xs, double p) {
  if (xs.empty()) return 0;
  std::vector<std::int64_t> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  // Nearest-rank: the smallest value with at least p% of the sample at or
  // below it — ceil(p/100 * n), 1-based.
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  return v[rank == 0 ? 0 : rank - 1];
}

P2Quantile::P2Quantile(double percentile) : p_(percentile / 100.0) {
  RAPT_ASSERT(percentile > 0.0 && percentile < 100.0,
              "P2Quantile needs a percentile in (0, 100)");
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    // Bootstrap: insert sorted into the first five markers.
    q_[count_] = x;
    ++count_;
    std::sort(q_, q_ + count_);
    if (count_ == 5) {
      for (int i = 0; i < 5; ++i) n_[i] = i + 1;
      np_[0] = 1.0;
      np_[1] = 1.0 + 2.0 * p_;
      np_[2] = 1.0 + 4.0 * p_;
      np_[3] = 3.0 + 2.0 * p_;
      np_[4] = 5.0;
      dn_[0] = 0.0;
      dn_[1] = p_ / 2.0;
      dn_[2] = p_;
      dn_[3] = (1.0 + p_) / 2.0;
      dn_[4] = 1.0;
    }
    return;
  }

  // Locate the cell [k, k+1) containing x, updating the extremes.
  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) n_[i] += 1.0;
  for (int i = 0; i < 5; ++i) np_[i] += dn_[i];
  ++count_;

  // Adjust the three interior markers toward their desired positions with a
  // piecewise-parabolic (P²) height prediction, falling back to linear when
  // the parabola would leave the bracketing heights.
  for (int i = 1; i <= 3; ++i) {
    const double d = np_[i] - n_[i];
    if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
        (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      const double qParabolic =
          q_[i] + sign / (n_[i + 1] - n_[i - 1]) *
                      ((n_[i] - n_[i - 1] + sign) * (q_[i + 1] - q_[i]) /
                           (n_[i + 1] - n_[i]) +
                       (n_[i + 1] - n_[i] - sign) * (q_[i] - q_[i - 1]) /
                           (n_[i] - n_[i - 1]));
      if (q_[i - 1] < qParabolic && qParabolic < q_[i + 1]) {
        q_[i] = qParabolic;
      } else {
        q_[i] = q_[i] + sign * (q_[i + static_cast<int>(sign)] - q_[i]) /
                            (n_[i + static_cast<int>(sign)] - n_[i]);
      }
      n_[i] += sign;
    }
  }
}

double P2Quantile::estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ <= 5) {
    // Exact nearest-rank over the sorted bootstrap markers.
    const auto rank = static_cast<std::int64_t>(
        std::ceil(p_ * static_cast<double>(count_)));
    return q_[std::clamp<std::int64_t>(rank - 1, 0, count_ - 1)];
  }
  return q_[2];
}

double P2Quantile::maxSeen() const {
  if (count_ == 0) return 0.0;
  return count_ < 5 ? q_[count_ - 1] : q_[4];
}

void LatencyDigest::add(std::int64_t ns) {
  const auto x = static_cast<double>(ns);
  p50_.add(x);
  p95_.add(x);
  p99_.add(x);
  if (count_ == 0 || ns < min_) min_ = ns;
  if (count_ == 0 || ns > max_) max_ = ns;
  sum_ += x;
  ++count_;
}

void DegradationHistogram::add(double degradationPercent) {
  int bucket;
  if (degradationPercent <= 0.0) {
    bucket = 0;
  } else if (degradationPercent >= 90.0) {
    bucket = kNumBuckets - 1;
  } else {
    bucket = 1 + static_cast<int>(degradationPercent / 10.0);
  }
  ++counts_[bucket];
  ++total_;
}

int DegradationHistogram::count(int bucket) const {
  RAPT_ASSERT(bucket >= 0 && bucket < kNumBuckets, "bucket out of range");
  return counts_[bucket];
}

double DegradationHistogram::percent(int bucket) const {
  if (total_ == 0) return 0.0;
  return 100.0 * static_cast<double>(count(bucket)) / static_cast<double>(total_);
}

std::string DegradationHistogram::bucketLabel(int bucket) {
  RAPT_ASSERT(bucket >= 0 && bucket < kNumBuckets, "bucket out of range");
  if (bucket == 0) return "0.00%";
  if (bucket == kNumBuckets - 1) return ">90%";
  return "<" + std::to_string(bucket * 10) + "%";
}

}  // namespace rapt
