// Summary statistics used by the experiment harnesses.
//
// The paper reports arithmetic and harmonic means of normalized kernel-size
// degradation (Table 2) and bucketed degradation histograms (Figures 5-7);
// this header provides exactly those aggregations.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rapt {

/// Arithmetic mean of a non-empty sample.
[[nodiscard]] double arithmeticMean(std::span<const double> xs);

/// Harmonic mean of a non-empty, strictly positive sample.
[[nodiscard]] double harmonicMean(std::span<const double> xs);

/// Geometric mean of a non-empty, strictly positive sample.
[[nodiscard]] double geometricMean(std::span<const double> xs);

/// Population standard deviation.
[[nodiscard]] double stdDev(std::span<const double> xs);

/// Median (sample is copied and sorted).
[[nodiscard]] double median(std::span<const double> xs);

/// Nearest-rank percentile (p in [0, 100]) of an integer sample — the
/// latency aggregation of the compile service and its load generator
/// (BENCH_service.json: p50/p95/p99). The sample is copied and sorted;
/// returns 0 on an empty sample.
[[nodiscard]] std::int64_t percentile(std::span<const std::int64_t> xs, double p);

/// Streaming quantile estimator: the P² algorithm (Jain & Chlamtac, CACM
/// 1985). Five markers track the target quantile in O(1) memory and O(1)
/// per observation — the latency aggregation of 100k+-loop sharded runs
/// (docs/sharding.md), where the exact nearest-rank `percentile` above would
/// need an O(n) buffer per stratum. Exact for the first five observations;
/// after that the estimate's error against exact nearest-rank is bounded in
/// practice to a few percent of the local sample density (unit-tested
/// against the exact implementation on seeded samples in
/// tests/support/StatsTest.cpp).
class P2Quantile {
 public:
  /// `percentile` in (0, 100): 50 = median, 99 = p99.
  explicit P2Quantile(double percentile);

  void add(double x);

  /// Current estimate; exact while count() <= 5, 0.0 when count() == 0.
  [[nodiscard]] double estimate() const;

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double minSeen() const { return count_ == 0 ? 0.0 : q_[0]; }
  [[nodiscard]] double maxSeen() const;

 private:
  double p_;            ///< target quantile in (0, 1)
  std::int64_t count_ = 0;
  double q_[5] = {};    ///< marker heights
  double n_[5] = {};    ///< marker positions (1-based)
  double np_[5] = {};   ///< desired marker positions
  double dn_[5] = {};   ///< desired position increments
};

/// A fixed bundle of streaming latency percentiles (p50/p95/p99) plus
/// min/max/mean/count — the per-run and per-stratum latency digest of
/// BENCH_shard.json (docs/metrics.md). O(1) memory regardless of how many
/// samples are folded in.
class LatencyDigest {
 public:
  LatencyDigest() : p50_(50.0), p95_(95.0), p99_(99.0) {}

  void add(std::int64_t ns);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::int64_t p50Ns() const { return asNs(p50_.estimate()); }
  [[nodiscard]] std::int64_t p95Ns() const { return asNs(p95_.estimate()); }
  [[nodiscard]] std::int64_t p99Ns() const { return asNs(p99_.estimate()); }
  [[nodiscard]] std::int64_t minNs() const { return min_; }
  [[nodiscard]] std::int64_t maxNs() const { return max_; }
  [[nodiscard]] double meanNs() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

 private:
  [[nodiscard]] static std::int64_t asNs(double v) {
    return v <= 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
  }

  P2Quantile p50_, p95_, p99_;
  std::int64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

/// The degradation histogram used in the paper's Figures 5-7.
///
/// Buckets, in order: exactly 0%, then (0,10)%, [10,20)%, ... [80,90)%, and
/// >=90%. `add` takes a degradation percentage (0 == no degradation; 25.0
/// == kernel 25% longer than ideal).
class DegradationHistogram {
 public:
  static constexpr int kNumBuckets = 11;

  void add(double degradationPercent);

  /// Count in bucket `i` (0 == the "0.00%" bucket).
  [[nodiscard]] int count(int bucket) const;
  /// Percentage of all samples falling in bucket `i`.
  [[nodiscard]] double percent(int bucket) const;
  [[nodiscard]] int total() const { return total_; }

  /// Paper-style bucket label: "0.00%", "<10%", ..., ">90%".
  [[nodiscard]] static std::string bucketLabel(int bucket);

 private:
  int counts_[kNumBuckets] = {};
  int total_ = 0;
};

}  // namespace rapt
