// Summary statistics used by the experiment harnesses.
//
// The paper reports arithmetic and harmonic means of normalized kernel-size
// degradation (Table 2) and bucketed degradation histograms (Figures 5-7);
// this header provides exactly those aggregations.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rapt {

/// Arithmetic mean of a non-empty sample.
[[nodiscard]] double arithmeticMean(std::span<const double> xs);

/// Harmonic mean of a non-empty, strictly positive sample.
[[nodiscard]] double harmonicMean(std::span<const double> xs);

/// Geometric mean of a non-empty, strictly positive sample.
[[nodiscard]] double geometricMean(std::span<const double> xs);

/// Population standard deviation.
[[nodiscard]] double stdDev(std::span<const double> xs);

/// Median (sample is copied and sorted).
[[nodiscard]] double median(std::span<const double> xs);

/// Nearest-rank percentile (p in [0, 100]) of an integer sample — the
/// latency aggregation of the compile service and its load generator
/// (BENCH_service.json: p50/p95/p99). The sample is copied and sorted;
/// returns 0 on an empty sample.
[[nodiscard]] std::int64_t percentile(std::span<const std::int64_t> xs, double p);

/// The degradation histogram used in the paper's Figures 5-7.
///
/// Buckets, in order: exactly 0%, then (0,10)%, [10,20)%, ... [80,90)%, and
/// >=90%. `add` takes a degradation percentage (0 == no degradation; 25.0
/// == kernel 25% longer than ideal).
class DegradationHistogram {
 public:
  static constexpr int kNumBuckets = 11;

  void add(double degradationPercent);

  /// Count in bucket `i` (0 == the "0.00%" bucket).
  [[nodiscard]] int count(int bucket) const;
  /// Percentage of all samples falling in bucket `i`.
  [[nodiscard]] double percent(int bucket) const;
  [[nodiscard]] int total() const { return total_; }

  /// Paper-style bucket label: "0.00%", "<10%", ..., ">90%".
  [[nodiscard]] static std::string bucketLabel(int bucket);

 private:
  int counts_[kNumBuckets] = {};
  int total_ = 0;
};

}  // namespace rapt
