#include "support/Subprocess.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "support/ChaosIo.h"

extern char** environ;  // NOLINT(readability-redundant-declaration)

namespace rapt {

std::string redactForTransport(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '\n' || c == '\t' || (u >= 0x20 && u < 0x7f)) {
      out += c;
    } else {
      out += '.';
    }
  }
  return out;
}

namespace {

/// Writes never raise SIGPIPE out of the supervisor: a worker that dies
/// before reading its full stdin job must surface as its exit status (the
/// death-classification path), not kill the parent. Installed once,
/// process-wide, but only when the disposition is still SIG_DFL — an
/// embedding application's own SIGPIPE handler is not ours to clobber.
void ignoreSigpipeOnce() {
  static const bool installed = [] {
    struct sigaction current{};
    if (::sigaction(SIGPIPE, nullptr, &current) == 0 &&
        current.sa_handler != SIG_DFL)
      return true;  // someone already chose a disposition; leave it
    struct sigaction sa{};
    sa.sa_handler = SIG_IGN;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGPIPE, &sa, nullptr);
    return true;
  }();
  (void)installed;
}

void setLimit(int resource, std::int64_t value) {
  if (value <= 0) return;
  struct rlimit rl{};
  rl.rlim_cur = static_cast<rlim_t>(value);
  rl.rlim_max = static_cast<rlim_t>(value);
  ::setrlimit(resource, &rl);  // best effort; the watchdog is the belt
}

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[nodiscard]] std::int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Keeps at most `maxBytes` of tail; sets `truncated` once bytes are lost.
void appendTail(std::string& buf, const char* data, std::size_t n,
                std::int64_t maxBytes, bool& truncated) {
  buf.append(data, n);
  const auto cap = static_cast<std::size_t>(maxBytes);
  if (buf.size() > cap) {
    buf.erase(0, buf.size() - cap);
    truncated = true;
  }
}

struct Pipe {
  int readEnd = -1;
  int writeEnd = -1;
  bool open() {
    int fds[2];
    // CLOEXEC at creation: a concurrently forked sibling (subprocess suite
    // workers run from pool threads) must not inherit these ends past its
    // exec, or this child's stdin would never see EOF.
    if (::pipe2(fds, O_CLOEXEC) != 0) return false;
    readEnd = fds[0];
    writeEnd = fds[1];
    return true;
  }
  void closeRead() {
    if (readEnd >= 0) ::close(readEnd);
    readEnd = -1;
  }
  void closeWrite() {
    if (writeEnd >= 0) ::close(writeEnd);
    writeEnd = -1;
  }
  ~Pipe() {
    closeRead();
    closeWrite();
  }
};

SubprocessResult spawnFailure(const std::string& detail) {
  SubprocessResult r;
  r.spawnFailed = true;
  r.spawnError = detail + ": " + std::strerror(errno);
  return r;
}

}  // namespace

SubprocessResult runSubprocess(const SubprocessSpec& spec) {
  ignoreSigpipeOnce();
  SubprocessResult result;
  if (spec.argv.empty()) {
    result.spawnFailed = true;
    result.spawnError = "empty argv";
    return result;
  }

  Pipe toChild, fromChildOut, fromChildErr, execStatus;
  if (!toChild.open() || !fromChildOut.open() || !fromChildErr.open() ||
      !execStatus.open()) {
    return spawnFailure("pipe2 failed");
  }

  // argv/envp arrays must be built before fork: only async-signal-safe work
  // is allowed in the child of a multithreaded process.
  std::vector<char*> argv;
  argv.reserve(spec.argv.size() + 1);
  for (const std::string& a : spec.argv)
    argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  // extraEnv wins over inherited duplicates: getenv returns the FIRST match
  // in environ, so matching inherited keys are dropped, not shadowed.
  auto sameKey = [](const char* entry, const std::string& kv) {
    const std::size_t eq = kv.find('=');
    const std::size_t len = eq == std::string::npos ? kv.size() : eq;
    return std::strncmp(entry, kv.c_str(), len) == 0 && entry[len] == '=';
  };
  std::vector<char*> envp;
  for (char** e = environ; *e != nullptr; ++e) {
    bool overridden = false;
    for (const std::string& kv : spec.extraEnv)
      overridden = overridden || sameKey(*e, kv);
    if (!overridden) envp.push_back(*e);
  }
  for (const std::string& e : spec.extraEnv)
    envp.push_back(const_cast<char*>(e.c_str()));
  envp.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) return spawnFailure("fork failed");

  if (pid == 0) {
    // ---- child ----
    // Own process group, so the watchdog's kill(-pid) also reaps anything
    // the child forked — otherwise a grandchild keeps the stdout pipe open
    // and the supervisor waits out the full hang.
    ::setpgid(0, 0);
    // The supervisor's SIG_IGN for SIGPIPE would survive exec (ignored
    // dispositions are inherited); the child must start with the default it
    // would have had from a shell, or its own pipe-death semantics silently
    // change under supervision.
    {
      struct sigaction dfl{};
      dfl.sa_handler = SIG_DFL;
      ::sigaction(SIGPIPE, &dfl, nullptr);
    }
    setLimit(RLIMIT_AS, spec.limits.addressSpaceBytes);
    setLimit(RLIMIT_CPU, spec.limits.cpuSeconds);
    // dup2 clears O_CLOEXEC on the standard fds; the originals close at exec.
    if (::dup2(toChild.readEnd, STDIN_FILENO) < 0 ||
        ::dup2(fromChildOut.writeEnd, STDOUT_FILENO) < 0 ||
        ::dup2(fromChildErr.writeEnd, STDERR_FILENO) < 0) {
      ::_exit(127);
    }
    ::execvpe(argv[0], argv.data(), envp.data());
    // Exec failed: report errno over the CLOEXEC status pipe so the parent
    // can distinguish "never ran" (retryable) from a child-side failure.
    // writeFully (support/ChaosIo.h) is async-signal-safe and retries the
    // EINTR/short-write cases a bare write would silently drop.
    const int err = errno;
    (void)writeFully(execStatus.writeEnd, &err, sizeof err);
    ::_exit(127);
  }

  // ---- parent ----
  toChild.closeRead();
  fromChildOut.closeWrite();
  fromChildErr.closeWrite();
  execStatus.closeWrite();
  setNonBlocking(toChild.writeEnd);
  setNonBlocking(fromChildOut.readEnd);
  setNonBlocking(fromChildErr.readEnd);

  const std::int64_t deadline =
      spec.limits.wallTimeoutMs > 0 ? nowMs() + spec.limits.wallTimeoutMs : 0;
  std::size_t written = 0;
  std::int64_t outBytes = 0;
  bool killed = false;
  std::int64_t graceDeadline = 0;
  std::string lineBuf;  ///< partial stdout line when onStdoutLine streams
  if (spec.stdinData.empty()) toChild.closeWrite();

  const auto killGroup = [&] {
    ::kill(-pid, SIGKILL);  // the whole group, grandchildren included
    ::kill(pid, SIGKILL);   // fallback if the child never reached setpgid
    killed = true;
    graceDeadline = nowMs() + 2000;
  };

  // Bounded buffering for streamed lines: complete lines go to the callback
  // as they arrive; only the unterminated remainder is held, and a single
  // line larger than maxStdoutBytes is truncated instead of ballooning.
  const auto streamStdout = [&](const char* data, std::size_t n) {
    std::size_t start = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (data[i] != '\n') continue;
      lineBuf.append(data + start, i - start);
      spec.onStdoutLine(lineBuf);
      lineBuf.clear();
      start = i + 1;
    }
    const std::size_t cap = static_cast<std::size_t>(spec.maxStdoutBytes);
    const std::size_t rest = n - start;
    if (lineBuf.size() + rest > cap) {
      const std::size_t keep = cap > lineBuf.size() ? cap - lineBuf.size() : 0;
      lineBuf.append(data + start, keep);
      result.stdoutTruncated = true;
    } else {
      lineBuf.append(data + start, rest);
    }
  };

  char buf[65536];
  while (fromChildOut.readEnd >= 0 || fromChildErr.readEnd >= 0 ||
         toChild.writeEnd >= 0) {
    struct pollfd fds[3];
    int n = 0;
    int outIdx = -1, errIdx = -1, inIdx = -1;
    if (fromChildOut.readEnd >= 0) {
      outIdx = n;
      fds[n++] = {fromChildOut.readEnd, POLLIN, 0};
    }
    if (fromChildErr.readEnd >= 0) {
      errIdx = n;
      fds[n++] = {fromChildErr.readEnd, POLLIN, 0};
    }
    if (toChild.writeEnd >= 0) {
      inIdx = n;
      fds[n++] = {toChild.writeEnd, POLLOUT, 0};
    }

    int timeout = -1;
    if (spec.cancel != nullptr && !killed &&
        spec.cancel->load(std::memory_order_relaxed)) {
      killGroup();
      result.cancelled = true;
    }
    if (deadline > 0 && !killed) {
      const std::int64_t left = deadline - nowMs();
      if (left <= 0) {
        killGroup();
        result.timedOut = true;
      } else {
        timeout = static_cast<int>(left > 1'000'000'000 ? 1'000'000'000 : left);
      }
    }
    // With a cancel flag armed the poll must wake often enough to notice it.
    if (spec.cancel != nullptr && !killed && (timeout < 0 || timeout > 20))
      timeout = 20;
    if (killed) {
      // The group kill closes the pipes almost immediately; the grace
      // deadline only guards against an orphan that re-grouped itself and
      // still holds a write end.
      const std::int64_t left = graceDeadline - nowMs();
      if (left <= 0) break;
      timeout = static_cast<int>(left);
    }

    const int ready = ::poll(fds, static_cast<nfds_t>(n), timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // unexpected; fall through to reap
    }
    if (ready == 0) continue;  // re-check the deadline

    if (outIdx >= 0 && (fds[outIdx].revents & (POLLIN | POLLHUP | POLLERR))) {
      const ssize_t got = ::read(fromChildOut.readEnd, buf, sizeof buf);
      if (got > 0 && spec.onStdoutLine) {
        streamStdout(buf, static_cast<std::size_t>(got));
        outBytes += got;
      } else if (got > 0) {
        if (outBytes < spec.maxStdoutBytes) {
          const auto keep = static_cast<std::size_t>(
              std::min<std::int64_t>(got, spec.maxStdoutBytes - outBytes));
          result.out.append(buf, keep);
          if (keep < static_cast<std::size_t>(got)) result.stdoutTruncated = true;
        } else {
          result.stdoutTruncated = true;
        }
        outBytes += got;
      } else if (got == 0 || (got < 0 && errno != EAGAIN && errno != EINTR)) {
        fromChildOut.closeRead();
      }
    }
    if (errIdx >= 0 && (fds[errIdx].revents & (POLLIN | POLLHUP | POLLERR))) {
      const ssize_t got = ::read(fromChildErr.readEnd, buf, sizeof buf);
      if (got > 0) {
        appendTail(result.err, buf, static_cast<std::size_t>(got),
                   spec.maxStderrBytes, result.stderrTruncated);
      } else if (got == 0 || (got < 0 && errno != EAGAIN && errno != EINTR)) {
        fromChildErr.closeRead();
      }
    }
    if (inIdx >= 0 && (fds[inIdx].revents & (POLLOUT | POLLHUP | POLLERR))) {
      const ssize_t sent =
          ::write(toChild.writeEnd, spec.stdinData.data() + written,
                  spec.stdinData.size() - written);
      if (sent > 0) {
        written += static_cast<std::size_t>(sent);
        if (written == spec.stdinData.size()) toChild.closeWrite();
      } else if (sent < 0 && errno != EAGAIN && errno != EINTR) {
        toChild.closeWrite();  // EPIPE: the child is gone or closed stdin
      }
    }
  }

  // A child that exited without terminating its last line still gets it
  // delivered: protocol consumers treat EOF as the line terminator.
  if (spec.onStdoutLine && !lineBuf.empty()) {
    spec.onStdoutLine(lineBuf);
    lineBuf.clear();
  }

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }

  // A byte on the status pipe means exec itself failed — retryable spawn
  // failure, not a child verdict.
  int execErrno = 0;
  const ssize_t got = ::read(execStatus.readEnd, &execErrno, sizeof execErrno);
  if (got == static_cast<ssize_t>(sizeof execErrno)) {
    result.spawnFailed = true;
    result.spawnError = std::string("exec failed: ") + std::strerror(execErrno) +
                        " (" + spec.argv[0] + ")";
    return result;
  }

  if (WIFSIGNALED(status)) {
    result.signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    result.exitCode = WEXITSTATUS(status);
  }
  result.err = redactForTransport(result.err);
  return result;
}

}  // namespace rapt
