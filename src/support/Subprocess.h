// Supervised child processes for crash-containing suite runs
// (docs/robustness.md "Process isolation").
//
// runSubprocess forks and execs one child under hard resource limits —
// RLIMIT_AS caps the address space so an allocation bomb dies in the child
// instead of triggering the machine's OOM killer, RLIMIT_CPU backs up the
// supervisor-side wall-clock watchdog so a spinning worker dies even if the
// supervisor is wedged — feeds it a stdin payload, and captures bounded
// stdout/stderr. The exit is reported losslessly: normal exit code, the
// terminating signal, watchdog kill, or a spawn failure the caller may
// retry. Everything is plain POSIX (fork/execvp/pipe/poll/waitpid); no
// threads are spawned, so the call is safe from pool workers.
//
// Capture bounds keep a hostile child from ballooning the supervisor: stdout
// is truncated at `maxStdoutBytes` (protocol replies are small; a huge reply
// is itself an error) and stderr keeps only the *tail* of `maxStderrBytes`
// (the end of a crash log is the interesting part). Captured stderr is also
// redacted for transport: control bytes other than \n\t are replaced so a
// crashing child cannot splatter binary garbage into journals and reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rapt {

struct SubprocessLimits {
  /// RLIMIT_AS in bytes (0 = leave unlimited).
  std::int64_t addressSpaceBytes = 0;
  /// RLIMIT_CPU in seconds (0 = leave unlimited). The kernel delivers
  /// SIGXCPU at the soft limit — the in-child backstop for spin hangs.
  int cpuSeconds = 0;
  /// Supervisor-side wall-clock watchdog in milliseconds (0 = none). On
  /// expiry the child is killed with SIGKILL and the result reports
  /// `timedOut`.
  std::int64_t wallTimeoutMs = 0;
};

struct SubprocessResult {
  /// The spawn itself failed (pipe/fork/exec error); nothing ran. The one
  /// caller-retryable outcome — everything else is a verdict about the child.
  bool spawnFailed = false;
  std::string spawnError;  ///< detail when spawnFailed

  bool timedOut = false;   ///< killed by the wall-clock watchdog
  bool cancelled = false;  ///< killed because SubprocessSpec::cancel went true
  /// Terminating signal (0 = exited normally). SIGKILL with timedOut set is
  /// the watchdog, with cancelled set the caller's cancellation; SIGXCPU is
  /// the RLIMIT_CPU backstop.
  int signal = 0;
  int exitCode = 0;        ///< exit status when signal == 0

  std::string out;         ///< captured stdout, truncated at maxStdoutBytes
                           ///< (empty when onStdoutLine streams it instead)
  std::string err;         ///< captured stderr tail, redacted printable
  bool stdoutTruncated = false;
  bool stderrTruncated = false;

  [[nodiscard]] bool exitedCleanly() const {
    return !spawnFailed && !timedOut && !cancelled && signal == 0 &&
           exitCode == 0;
  }
};

struct SubprocessSpec {
  std::vector<std::string> argv;  ///< argv[0] is resolved via PATH (execvp)
  std::string stdinData;          ///< written to the child's stdin, then EOF
  SubprocessLimits limits;
  /// Extra KEY=VALUE entries added to the inherited environment; an entry
  /// REPLACES any inherited variable with the same key (the inherited copy
  /// is dropped so getenv's first-match rule cannot resurrect it).
  std::vector<std::string> extraEnv;
  std::int64_t maxStdoutBytes = 8 * 1024 * 1024;
  std::int64_t maxStderrBytes = 64 * 1024;

  /// When set, the child's stdout is delivered LINE BY LINE to this callback
  /// (invoked on the supervising thread, in arrival order, without the
  /// trailing '\n') instead of accumulating in SubprocessResult::out — the
  /// long-running-worker case (shard heartbeats, docs/sharding.md), where a
  /// supervisor must observe progress while the child still runs. An
  /// unterminated final line is delivered at EOF. A single line longer than
  /// maxStdoutBytes is truncated (stdoutTruncated is set) rather than
  /// ballooning the supervisor.
  std::function<void(const std::string& line)> onStdoutLine;

  /// When non-null, polled by the supervising loop (at millisecond
  /// granularity): once it reads true the child's process group is SIGKILLed
  /// and the result reports `cancelled`. This is how an orchestrator revokes
  /// work it re-dispatched elsewhere — a straggler whose duplicate won, or a
  /// torture-mode kill (docs/sharding.md).
  const std::atomic<bool>* cancel = nullptr;
};

/// Runs one child to completion (or watchdog kill). Never throws.
[[nodiscard]] SubprocessResult runSubprocess(const SubprocessSpec& spec);

/// The stderr transport redaction used by runSubprocess, exposed for reuse:
/// keeps printable bytes, '\n' and '\t'; every other byte becomes '.'.
[[nodiscard]] std::string redactForTransport(const std::string& raw);

}  // namespace rapt
