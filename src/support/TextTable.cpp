#include "support/TextTable.h"

#include <cstdio>

#include "support/Assert.h"

namespace rapt {

std::string formatFixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(std::string text) {
  RAPT_ASSERT(!rows_.empty(), "cell before row");
  rows_.back().push_back(std::move(text));
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  return cell(formatFixed(value, precision));
}

TextTable& TextTable::cell(int value) { return cell(std::to_string(value)); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  for (const auto& r : rows_) {
    if (r.size() > widths.size()) widths.resize(r.size(), 0);
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());
  }
  std::string out;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& r = rows_[i];
    for (std::size_t c = 0; c < r.size(); ++c) {
      out += r[c];
      if (c + 1 < r.size()) out.append(widths[c] - r[c].size() + 2, ' ');
    }
    out += '\n';
    if (i == 0) {
      std::size_t lineLen = 0;
      for (std::size_t c = 0; c < widths.size(); ++c)
        lineLen += widths[c] + (c + 1 < widths.size() ? 2 : 0);
      out.append(lineLen, '-');
      out += '\n';
    }
  }
  return out;
}

}  // namespace rapt
