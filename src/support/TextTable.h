// Aligned plain-text tables for the benchmark harnesses.
//
// The bench binaries regenerate the paper's tables as text; this keeps the
// formatting logic out of the experiment code.
#pragma once

#include <string>
#include <vector>

namespace rapt {

/// Builds a column-aligned text table. Rows may be added cell-by-cell; the
/// first row is rendered as a header with a separator line.
class TextTable {
 public:
  /// Start a new row.
  TextTable& row();
  /// Append a cell to the current row.
  TextTable& cell(std::string text);
  TextTable& cell(double value, int precision = 1);
  TextTable& cell(int value);

  /// Render with 2-space column gutters.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no <format> on GCC 12).
[[nodiscard]] std::string formatFixed(double value, int precision);

}  // namespace rapt
