#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "support/Assert.h"

namespace rapt {

ThreadPool::ThreadPool(int threads) {
  RAPT_ASSERT(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(Task{std::move(task), nextSerial_++});
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  allDone_.wait(lock, [this] { return inFlight_ == 0; });
  if (firstError_) {
    std::exception_ptr err = std::exchange(firstError_, nullptr);
    std::rethrow_exception(err);
  }
}

int ThreadPool::hardwareThreads() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

void ThreadPool::workerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      taskReady_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr err;
    try {
      task.fn();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (err && (!firstError_ || task.serial < firstErrorSerial_)) {
        firstError_ = err;
        firstErrorSerial_ = task.serial;
      }
      if (--inFlight_ == 0) allDone_.notify_all();
    }
  }
}

void parallelFor(int n, int threads, const std::function<void(int)>& fn) {
  if (threads == 0) threads = ThreadPool::hardwareThreads();
  if (threads <= 1 || n <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, n));
  // One task per worker, each claiming indices dynamically: cheaper than one
  // task per index when n is large, and loop compile times vary enough that
  // static slicing would leave workers idle.
  auto next = std::make_shared<std::atomic<int>>(0);
  for (int w = 0; w < pool.threadCount(); ++w) {
    pool.submit([n, next, &fn] {
      for (int i = (*next)++; i < n; i = (*next)++) fn(i);
    });
  }
  pool.wait();
}

}  // namespace rapt
