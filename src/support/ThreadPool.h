// A small fixed-size thread pool for embarrassingly parallel suite work.
//
// Deliberately minimal — no work stealing, no futures, no task graph. The
// suite runner's unit of work is "compile corpus loop i into slot i of a
// pre-sized vector", so all the pool needs is FIFO task dispatch, a barrier
// (`wait`), and faithful exception propagation. Determinism is the caller's
// job: tasks must write only to their own slots, and any aggregation happens
// in a serial post-pass (see pipeline/Suite.cpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rapt {

class ThreadPool {
 public:
  /// Spawns `threads` workers (must be >= 1).
  explicit ThreadPool(int threads);

  /// Joins all workers. Pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Tasks start in FIFO order (completion order is up to
  /// the scheduler). Must not be called concurrently with `wait`.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw, the
  /// first exception captured (in task *submission* order) is rethrown here
  /// and the rest are dropped; the pool remains usable afterwards.
  void wait();

  [[nodiscard]] int threadCount() const { return static_cast<int>(workers_.size()); }

  /// `std::thread::hardware_concurrency()` with a floor of 1 (the standard
  /// allows it to return 0 when unknown).
  [[nodiscard]] static int hardwareThreads();

 private:
  struct Task {
    std::function<void()> fn;
    std::size_t serial;  ///< submission index, for first-exception selection
  };

  void workerLoop();

  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  std::size_t nextSerial_ = 0;
  std::size_t inFlight_ = 0;  ///< queued + currently running
  bool stopping_ = false;
  std::exception_ptr firstError_;
  std::size_t firstErrorSerial_ = 0;
};

/// Runs `fn(i)` for every i in [0, n) on `threads` threads (0 = hardware
/// concurrency, 1 = plain serial loop on the calling thread — no pool is
/// created). Work is claimed dynamically, so `fn` must be safe to run
/// concurrently for distinct i and must not care about execution order.
/// Exceptions propagate as in ThreadPool::wait.
void parallelFor(int n, int threads, const std::function<void(int)>& fn);

}  // namespace rapt
