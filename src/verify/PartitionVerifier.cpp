#include "verify/PartitionVerifier.h"

#include "ir/Printer.h"

namespace rapt {
namespace {

/// Bank of the original register behind `name`, or -1 with a violation when
/// the partition does not cover it.
int bankOf(const PipelinedCode& code, const Partition& partition, VirtReg name,
           const std::string& where, VerifyReport& rep) {
  const VirtReg orig = code.originalOf(name);
  if (!partition.isAssigned(orig)) {
    rep.add(where + ": register " + regName(name) + " (value " + regName(orig) +
            ") has no bank assignment");
    return -1;
  }
  return partition.bankOf(orig);
}

}  // namespace

VerifyReport verifyPartition(const PipelinedCode& code, const Partition& partition,
                             const MachineDesc& machine) {
  VerifyReport rep;
  if (partition.numBanks() != machine.numBanks()) {
    rep.add("partition has " + std::to_string(partition.numBanks()) +
            " banks, machine has " + std::to_string(machine.numBanks()));
    return rep;
  }

  for (std::int64_t c = 0; c < static_cast<std::int64_t>(code.instrs.size()); ++c) {
    for (const EmittedOp& eo : code.instrs[static_cast<std::size_t>(c)].ops) {
      const std::string where = "cycle " + std::to_string(c) + ", op " +
                                std::to_string(eo.bodyIndex) + "/it" +
                                std::to_string(eo.iteration);
      if (eo.fu < 0) {
        // Copy-unit copy: bank-to-bank over a bus, no residence requirement,
        // but it must BE a copy, the model must support it, and the two banks
        // must differ (same-bank copy-unit copies are rejected).
        if (!isCopy(eo.op.op)) {
          rep.add(where + ": non-copy op without a functional unit");
          continue;
        }
        if (machine.copyModel != CopyModel::CopyUnit) {
          rep.add(where + ": copy without a functional unit on an embedded-copy machine");
          continue;
        }
        const int src = bankOf(code, partition, eo.op.src[0], where, rep);
        const int dst = bankOf(code, partition, eo.op.def, where, rep);
        if (src >= 0 && dst >= 0 && src == dst) {
          rep.add(where + ": same-bank copy-unit copy within bank " +
                  std::to_string(src));
        }
        continue;
      }
      if (eo.fu >= machine.width()) {
        rep.add(where + ": FU index " + std::to_string(eo.fu) + " out of range");
        continue;
      }
      const int cluster = machine.clusterOfFu(eo.fu);
      if (eo.op.def.isValid()) {
        const int bank = bankOf(code, partition, eo.op.def, where, rep);
        if (bank >= 0 && bank != cluster) {
          rep.add(where + ": defines " + regName(eo.op.def) + " of bank " +
                  std::to_string(bank) + " from cluster " + std::to_string(cluster));
        }
      }
      // Embedded copies read cross-bank by design; every other op must find
      // all its source operands in its own cluster's bank.
      if (isCopy(eo.op.op)) continue;
      for (VirtReg s : eo.op.srcs()) {
        const int bank = bankOf(code, partition, s, where, rep);
        if (bank >= 0 && bank != cluster) {
          rep.add(where + ": reads " + regName(s) + " from bank " +
                  std::to_string(bank) + " on cluster " + std::to_string(cluster));
        }
      }
    }
    if (rep.truncated) return rep;
  }
  return rep;
}

}  // namespace rapt
