// Independent partition/copy legality oracle (docs/verification.md).
//
// After partitioning and copy insertion, every operation of the emitted
// stream must read and write registers that are RESIDENT in the register
// bank of the cluster it executes on:
//
//  * a non-copy op issued on functional unit f may only touch registers whose
//    bank is clusterOfFu(f) — copy insertion must have routed every
//    cross-bank operand through an explicit copy;
//  * an embedded copy (issued on an FU of the destination cluster) writes
//    into its own cluster's bank but is the one op class allowed to READ a
//    different bank — that cross-bank read is its purpose;
//  * a copy-unit copy (fu == -1) moves a value between two DIFFERENT banks
//    over a bus; same-bank copy-unit copies are rejected by the machine
//    model (see docs/verification.md "Same-bank copies").
//
// Residence is checked on the emitted stream, i.e. per concrete use: MVE
// rotating names are mapped back to their original register via
// PipelinedCode::originalOf, so a renaming bug that pulls in a name of the
// wrong value's bank is caught too.
#pragma once

#include "machine/MachineDesc.h"
#include "partition/Partition.h"
#include "sched/PipelinedCode.h"
#include "verify/VerifyReport.h"

namespace rapt {

/// Checks every operand of every emitted op of `code` for bank residence
/// under `partition` (which must cover every register the stream mentions,
/// copies included).
[[nodiscard]] VerifyReport verifyPartition(const PipelinedCode& code,
                                           const Partition& partition,
                                           const MachineDesc& machine);

}  // namespace rapt
