#include "verify/ScheduleVerifier.h"

#include <sstream>
#include <vector>

namespace rapt {
namespace {

[[nodiscard]] int moduloSlot(int cycle, int ii) { return ((cycle % ii) + ii) % ii; }

/// Per-slot (or per-cycle) resource recount shared by both verifiers. Keys
/// are formatted into `where` ("slot 3" / "cycle 17") for messages.
class ResourceCounter {
 public:
  ResourceCounter(const MachineDesc& machine, VerifyReport& rep)
      : machine_(machine),
        rep_(rep),
        fuTaken_(machine.width(), false),
        fuPerCluster_(machine.numClusters, 0),
        portPerBank_(machine.numBanks(), 0) {}

  void reset() {
    std::fill(fuTaken_.begin(), fuTaken_.end(), false);
    std::fill(fuPerCluster_.begin(), fuPerCluster_.end(), 0);
    std::fill(portPerBank_.begin(), portPerBank_.end(), 0);
    copyUnitOps_ = 0;
  }

  /// Accounts one op; `label` identifies it in messages.
  void addOp(const OpConstraint& c, int fu, const std::string& where,
             const std::string& label) {
    if (c.usesCopyUnit) {
      if (machine_.copyModel != CopyModel::CopyUnit) {
        rep_.add(where + ": " + label + " uses the copy unit on a machine without one");
        return;
      }
      if (fu >= 0) {
        rep_.add(where + ": copy-unit " + label + " also occupies FU " +
                 std::to_string(fu));
      }
      ++copyUnitOps_;
      if (!bankInRange(c.srcBank, where, label) || !bankInRange(c.dstBank, where, label))
        return;
      if (c.srcBank == c.dstBank) {
        rep_.add(where + ": " + label + " is a same-bank copy-unit copy (bank " +
                 std::to_string(c.srcBank) + "), which the machine model rejects");
        return;
      }
      ++portPerBank_[c.srcBank];
      ++portPerBank_[c.dstBank];
      return;
    }
    if (fu < 0 || fu >= machine_.width()) {
      rep_.add(where + ": " + label + " has functional unit " + std::to_string(fu) +
               " outside [0, " + std::to_string(machine_.width()) + ")");
      return;
    }
    const int cluster = machine_.clusterOfFu(fu);
    if (c.cluster >= 0 && cluster != c.cluster) {
      rep_.add(where + ": " + label + " is anchored to cluster " +
               std::to_string(c.cluster) + " but issues on FU " + std::to_string(fu) +
               " of cluster " + std::to_string(cluster));
    }
    if (fuTaken_[fu]) {
      rep_.add(where + ": FU " + std::to_string(fu) + " double-booked by " + label);
      return;
    }
    fuTaken_[fu] = true;
    ++fuPerCluster_[cluster];
  }

  /// Emits capacity violations for the counts accumulated since reset().
  void check(const std::string& where) {
    for (int cl = 0; cl < machine_.numClusters; ++cl) {
      if (fuPerCluster_[cl] > machine_.fusPerCluster) {
        rep_.add(where + ": cluster " + std::to_string(cl) + " issues " +
                 std::to_string(fuPerCluster_[cl]) + " ops (width " +
                 std::to_string(machine_.fusPerCluster) + ")");
      }
    }
    if (copyUnitOps_ > machine_.busCount) {
      rep_.add(where + ": " + std::to_string(copyUnitOps_) + " copy-unit copies on " +
               std::to_string(machine_.busCount) + " buses");
    }
    for (int b = 0; b < machine_.numBanks(); ++b) {
      if (portPerBank_[b] > machine_.copyPortsPerBank) {
        rep_.add(where + ": bank " + std::to_string(b) + " uses " +
                 std::to_string(portPerBank_[b]) + " copy ports (limit " +
                 std::to_string(machine_.copyPortsPerBank) + ")");
      }
    }
  }

 private:
  bool bankInRange(int bank, const std::string& where, const std::string& label) {
    if (bank >= 0 && bank < machine_.numBanks()) return true;
    rep_.add(where + ": " + label + " references bank " + std::to_string(bank) +
             " outside [0, " + std::to_string(machine_.numBanks()) + ")");
    return false;
  }

  const MachineDesc& machine_;
  VerifyReport& rep_;
  std::vector<bool> fuTaken_;
  std::vector<int> fuPerCluster_;
  std::vector<int> portPerBank_;
  int copyUnitOps_ = 0;
};

std::string opLabel(int op) { return "op " + std::to_string(op); }

}  // namespace

VerifyReport verifySchedule(const Ddg& ddg, const MachineDesc& machine,
                            std::span<const OpConstraint> constraints,
                            const ModuloSchedule& sched) {
  VerifyReport rep;
  if (sched.numOps() != ddg.numOps() ||
      static_cast<int>(constraints.size()) != ddg.numOps()) {
    rep.add("schedule/constraints cover " + std::to_string(sched.numOps()) + "/" +
            std::to_string(constraints.size()) + " ops, DDG has " +
            std::to_string(ddg.numOps()));
    return rep;
  }
  if (ddg.numOps() == 0) return rep;
  if (sched.ii <= 0) {
    rep.add("non-positive II " + std::to_string(sched.ii));
    return rep;
  }
  if (static_cast<int>(sched.fu.size()) != ddg.numOps()) {
    rep.add("schedule has " + std::to_string(sched.fu.size()) + " FU entries for " +
            std::to_string(ddg.numOps()) + " ops");
    return rep;
  }

  // ---- Dependences: time[to] >= time[from] + latency - II*distance. ----
  for (int ei = 0; ei < static_cast<int>(ddg.edges().size()); ++ei) {
    const DdgEdge& e = ddg.edge(ei);
    const int earliest = sched.cycle[e.from] + e.latency - sched.ii * e.distance;
    if (sched.cycle[e.to] < earliest) {
      std::ostringstream os;
      os << depKindName(e.kind) << " dependence " << e.from << "->" << e.to
         << " (lat " << e.latency << ", dist " << e.distance << ") violated: op "
         << e.to << " at cycle " << sched.cycle[e.to] << ", earliest legal "
         << earliest;
      rep.add(os.str());
    }
  }

  // ---- Resources, re-counted per modulo slot. ----
  ResourceCounter counter(machine, rep);
  for (int slot = 0; slot < sched.ii; ++slot) {
    counter.reset();
    const std::string where = "slot " + std::to_string(slot);
    for (int op = 0; op < ddg.numOps(); ++op) {
      if (moduloSlot(sched.cycle[op], sched.ii) != slot) continue;
      counter.addOp(constraints[op], sched.fu[op], where, opLabel(op));
    }
    counter.check(where);
    if (rep.truncated) break;
  }
  return rep;
}

VerifyReport verifyStream(const PipelinedCode& code, const Ddg& ddg,
                          const MachineDesc& machine,
                          std::span<const OpConstraint> constraints) {
  VerifyReport rep;
  const int numOps = ddg.numOps();
  if (static_cast<int>(constraints.size()) != numOps) {
    rep.add("constraints cover " + std::to_string(constraints.size()) +
            " ops, DDG has " + std::to_string(numOps));
    return rep;
  }
  if (code.trip <= 0) {
    rep.add("non-positive trip count " + std::to_string(code.trip));
    return rep;
  }

  // ---- Instance coverage + per-cycle resource recount. ----
  // issueCycle[iter * numOps + bodyIndex] = cycle, -1 while unseen.
  std::vector<std::int64_t> issueCycle(
      static_cast<std::size_t>(code.trip) * numOps, -1);
  ResourceCounter counter(machine, rep);
  for (std::int64_t c = 0; c < static_cast<std::int64_t>(code.instrs.size()); ++c) {
    const VliwInstr& instr = code.instrs[static_cast<std::size_t>(c)];
    if (instr.ops.empty()) continue;
    counter.reset();
    const std::string where = "cycle " + std::to_string(c);
    for (const EmittedOp& eo : instr.ops) {
      if (eo.bodyIndex < 0 || eo.bodyIndex >= numOps) {
        rep.add(where + ": body index " + std::to_string(eo.bodyIndex) +
                " outside [0, " + std::to_string(numOps) + ")");
        continue;
      }
      if (eo.iteration < 0 || eo.iteration >= code.trip) {
        rep.add(where + ": op " + std::to_string(eo.bodyIndex) + " of iteration " +
                std::to_string(eo.iteration) + " outside [0, " +
                std::to_string(code.trip) + ")");
        continue;
      }
      std::int64_t& cell =
          issueCycle[static_cast<std::size_t>(eo.iteration) * numOps + eo.bodyIndex];
      if (cell >= 0) {
        rep.add(where + ": op " + std::to_string(eo.bodyIndex) + " of iteration " +
                std::to_string(eo.iteration) + " issued twice (also at cycle " +
                std::to_string(cell) + ")");
      } else {
        cell = c;
      }
      counter.addOp(constraints[eo.bodyIndex], eo.fu, where,
                    "op " + std::to_string(eo.bodyIndex) + "/it" +
                        std::to_string(eo.iteration));
    }
    counter.check(where);
    if (rep.truncated) return rep;
  }

  for (std::int64_t iter = 0; iter < code.trip; ++iter) {
    for (int op = 0; op < numOps; ++op) {
      if (issueCycle[static_cast<std::size_t>(iter) * numOps + op] < 0) {
        rep.add("op " + std::to_string(op) + " of iteration " + std::to_string(iter) +
                " never issued");
        if (rep.truncated) return rep;
      }
    }
  }

  // ---- Dependences between concrete instances across the whole stream. ----
  for (int ei = 0; ei < static_cast<int>(ddg.edges().size()); ++ei) {
    const DdgEdge& e = ddg.edge(ei);
    for (std::int64_t iter = 0; iter + e.distance < code.trip; ++iter) {
      const std::int64_t tFrom =
          issueCycle[static_cast<std::size_t>(iter) * numOps + e.from];
      const std::int64_t tTo =
          issueCycle[static_cast<std::size_t>(iter + e.distance) * numOps + e.to];
      if (tFrom < 0 || tTo < 0) continue;  // coverage violation already reported
      if (tTo < tFrom + e.latency) {
        std::ostringstream os;
        os << depKindName(e.kind) << " dependence " << e.from << "(it" << iter
           << ")->" << e.to << "(it" << iter + e.distance << ") violated: issued at "
           << tFrom << " and " << tTo << ", latency " << e.latency;
        rep.add(os.str());
        if (rep.truncated) return rep;
      }
    }
  }
  return rep;
}

}  // namespace rapt
