// Independent modulo-schedule legality oracle (docs/verification.md).
//
// The scheduler already self-checks with findViolatedEdge, but that check
// shares the scheduler's own model of time and resources. This verifier
// re-derives legality from first principles and from different inputs:
//
//  * verifySchedule re-checks every DDG dependence on the flat schedule
//    (time[to] >= time[from] + latency - II*distance) and re-counts resource
//    usage per modulo slot — functional units per cluster, machine-wide copy
//    buses, copy ports per register bank — directly against MachineDesc,
//    without consulting the MRT.
//  * verifyStream re-checks the same properties on the EMITTED instruction
//    stream (prologue, kernel, and epilogue of a PipelinedCode): every
//    (iteration, body-op) instance must be issued exactly once, every
//    dependence must hold between concrete instances, and every cycle's
//    resource usage must fit the machine.
//
// Neither function aborts on malformed input; every problem becomes a
// violation string in the report.
#pragma once

#include <span>

#include "ddg/Ddg.h"
#include "machine/MachineDesc.h"
#include "sched/PipelinedCode.h"
#include "sched/Schedule.h"
#include "verify/VerifyReport.h"

namespace rapt {

/// Re-checks `sched` (flat, one iteration) against dependences and per-slot
/// resource capacities. `constraints` must have one entry per body op.
[[nodiscard]] VerifyReport verifySchedule(const Ddg& ddg, const MachineDesc& machine,
                                          std::span<const OpConstraint> constraints,
                                          const ModuloSchedule& sched);

/// Re-checks the emitted stream `code` end to end: instance coverage,
/// inter-iteration dependences, and per-cycle resource usage. `ddg` and
/// `constraints` describe the body the stream was emitted from.
[[nodiscard]] VerifyReport verifyStream(const PipelinedCode& code, const Ddg& ddg,
                                        const MachineDesc& machine,
                                        std::span<const OpConstraint> constraints);

}  // namespace rapt
