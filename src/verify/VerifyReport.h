// Shared result type of the independent verification oracles (ScheduleVerifier
// and PartitionVerifier, docs/verification.md).
//
// A verifier never aborts and never stops at the first problem: it accumulates
// human-readable violation strings (capped, so a systematically broken input
// does not produce megabytes of text) and leaves acting on them to the caller.
// The pipeline turns a non-empty report into a LoopResult error; the fuzzer
// feeds it to the minimizer; tests assert on substrings.
#pragma once

#include <string>
#include <vector>

namespace rapt {

struct VerifyReport {
  /// Hard cap on recorded violations; `truncated` is set when it is hit.
  static constexpr int kMaxViolations = 32;

  std::vector<std::string> violations;
  bool truncated = false;

  [[nodiscard]] bool ok() const { return violations.empty(); }

  /// Records a violation unless the cap was reached.
  void add(std::string what) {
    if (static_cast<int>(violations.size()) >= kMaxViolations) {
      truncated = true;
      return;
    }
    violations.push_back(std::move(what));
  }

  /// First violation (or "" when ok) — the one-line form the pipeline reports.
  [[nodiscard]] std::string first() const {
    return violations.empty() ? std::string{} : violations.front();
  }

  /// All violations joined by "; " (for logs and test failure messages).
  [[nodiscard]] std::string joined() const {
    std::string out;
    for (const std::string& v : violations) {
      if (!out.empty()) out += "; ";
      out += v;
    }
    if (truncated) out += "; ...(truncated)";
    return out;
  }

  /// Merge another report into this one (respecting the cap).
  void merge(const VerifyReport& other) {
    for (const std::string& v : other.violations) add(v);
    truncated = truncated || other.truncated;
  }
};

}  // namespace rapt
