#include "vliwsim/Equivalence.h"

#include <cstring>
#include <sstream>

#include "ir/Printer.h"

namespace rapt {

EquivalenceReport checkEquivalence(const Loop& original, const PipelinedCode& code,
                                   const SimResult& sim) {
  EquivalenceReport rep;
  if (!sim.ok) {
    rep.detail = "simulation failed: " + sim.error;
    return rep;
  }
  const ReferenceResult ref = runReference(original, code.trip);

  if (!ref.memory.equals(sim.memory)) {
    rep.detail = "array memory differs from sequential reference";
    return rep;
  }

  for (const Operation& o : original.body) {
    if (!o.def.isValid()) continue;
    auto it = code.namesOf.find(o.def.key());
    if (it == code.namesOf.end()) continue;
    const auto& names = it->second;
    const std::int64_t q = static_cast<std::int64_t>(names.size());
    const VirtReg finalName = names[static_cast<std::size_t>(((code.trip - 1) % q + q) % q)];
    std::ostringstream os;
    if (o.def.cls() == RegClass::Int) {
      const std::int64_t want = ref.regs.readInt(o.def);
      const std::int64_t got = sim.regs.readInt(finalName);
      if (want != got) {
        os << "register " << regName(o.def) << ": reference " << want
           << ", pipelined " << got << " (name " << regName(finalName) << ")";
        rep.detail = os.str();
        return rep;
      }
    } else {
      const double want = ref.regs.readFlt(o.def);
      const double got = sim.regs.readFlt(finalName);
      std::uint64_t wantBits, gotBits;  // bitwise: NaN payloads compare equal
      std::memcpy(&wantBits, &want, sizeof want);
      std::memcpy(&gotBits, &got, sizeof got);
      if (wantBits != gotBits) {
        os << "register " << regName(o.def) << ": reference " << want
           << ", pipelined " << got << " (name " << regName(finalName) << ")";
        rep.detail = os.str();
        return rep;
      }
    }
  }

  rep.equal = true;
  return rep;
}

}  // namespace rapt
