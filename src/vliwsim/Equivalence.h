// Semantic equivalence checking between the sequential reference execution of
// the ORIGINAL loop and the simulated pipelined/partitioned stream.
//
// Both executions apply identical operation semantics in an identical
// per-element dataflow order, so results — including floating point — must
// match bit-for-bit. Checked state: every array, and the final value of every
// register the original loop body defines (the value produced by the last
// iteration).
#pragma once

#include <string>

#include "ir/Loop.h"
#include "sched/PipelinedCode.h"
#include "vliwsim/Interpreter.h"
#include "vliwsim/VliwSimulator.h"

namespace rapt {

struct EquivalenceReport {
  bool equal = false;
  std::string detail;  ///< first mismatch, when not equal
};

/// `original` is the pre-partitioning loop; `code`/`sim` the compiled and
/// simulated stream (possibly with copies and MVE renaming). Register finals
/// are always compared. PHYSICAL streams reuse registers, so their finals are
/// not addressable by name directly — run them through certify/SsaRename.h
/// first, which renames every value instance apart and rebuilds `namesOf` to
/// point at final instances; simulating the renamed stream makes the full
/// register comparison sound (there is no memory-only mode anymore).
[[nodiscard]] EquivalenceReport checkEquivalence(const Loop& original,
                                                 const PipelinedCode& code,
                                                 const SimResult& sim);

}  // namespace rapt
