#include "vliwsim/FunctionInterpreter.h"

#include <set>
#include <sstream>

#include "ir/Printer.h"
#include "vliwsim/Interpreter.h"

namespace rapt {
namespace {

void executeOp(const Operation& op, RegFile& regs, ArrayMemory& memory) {
  if (isMemory(op.op)) {
    const std::int64_t idx = wrapAdd(regs.readInt(op.src[0]), op.imm);
    switch (op.op) {
      case Opcode::ILoad: regs.writeInt(op.def, memory.loadInt(op.array, idx)); break;
      case Opcode::FLoad: regs.writeFlt(op.def, memory.loadFlt(op.array, idx)); break;
      case Opcode::IStore: memory.storeInt(op.array, idx, regs.readInt(op.src[1])); break;
      case Opcode::FStore: memory.storeFlt(op.array, idx, regs.readFlt(op.src[1])); break;
      default: RAPT_UNREACHABLE("bad memory opcode");
    }
    return;
  }
  OperandValues in;
  for (int s = 0; s < op.numSrcs(); ++s) {
    if (op.src[s].cls() == RegClass::Int)
      in.i[s] = regs.readInt(op.src[s]);
    else
      in.f[s] = regs.readFlt(op.src[s]);
  }
  const ResultValue out = evalArith(op, in);
  if (op.def.isValid()) {
    if (op.def.cls() == RegClass::Int)
      regs.writeInt(op.def, out.i);
    else
      regs.writeFlt(op.def, out.f);
  }
}

}  // namespace

FunctionRunResult runFunctionPath(const Function& fn, int selector) {
  FunctionRunResult st{false, {}, RegFile{}, ArrayMemory{fn.arrays}, {}};
  if (fn.blocks.empty()) {
    st.ok = true;
    return st;
  }
  int cur = 0;
  int steps = 0;
  while (true) {
    if (++steps > fn.numBlocks()) {
      st.error = "path did not terminate (cyclic CFG?)";
      return st;
    }
    st.blocksVisited.push_back(cur);
    for (const Operation& op : fn.blocks[cur].ops) executeOp(op, st.regs, st.memory);
    const auto& succs = fn.blocks[cur].succs;
    if (succs.empty()) break;
    cur = succs[static_cast<std::size_t>(selector) % succs.size()];
  }
  st.ok = true;
  return st;
}

FunctionEquivalenceReport checkFunctionEquivalence(const Function& original,
                                                   const Function& rewritten,
                                                   int selector) {
  FunctionEquivalenceReport rep;
  const FunctionRunResult a = runFunctionPath(original, selector);
  const FunctionRunResult b = runFunctionPath(rewritten, selector);
  if (!a.ok || !b.ok) {
    rep.detail = !a.ok ? a.error : b.error;
    return rep;
  }
  if (a.blocksVisited != b.blocksVisited) {
    rep.detail = "rewritten function visits different blocks";
    return rep;
  }
  if (!a.memory.equalsFirstArrays(b.memory, original.arrays.size())) {
    rep.detail = "array memory differs along the path";
    return rep;
  }
  // Original registers that still exist must hold identical final values.
  const std::vector<VirtReg> survivors = rewritten.allRegs();
  const std::set<VirtReg> surviving(survivors.begin(), survivors.end());
  for (VirtReg r : original.allRegs()) {
    if (surviving.count(r) == 0) continue;  // spilled away
    std::ostringstream os;
    if (r.cls() == RegClass::Int) {
      if (a.regs.readInt(r) != b.regs.readInt(r)) {
        os << "register " << regName(r) << ": " << a.regs.readInt(r) << " vs "
           << b.regs.readInt(r);
        rep.detail = os.str();
        return rep;
      }
    } else {
      const double x = a.regs.readFlt(r);
      const double y = b.regs.readFlt(r);
      std::uint64_t xb, yb;
      std::memcpy(&xb, &x, sizeof x);
      std::memcpy(&yb, &y, sizeof y);
      if (xb != yb) {
        os << "register " << regName(r) << ": " << x << " vs " << y;
        rep.detail = os.str();
        return rep;
      }
    }
  }
  rep.equal = true;
  return rep;
}

}  // namespace rapt
