// Path-based execution of whole functions, for validating the function
// pipeline's rewrites (cross-bank copies, constant replication, spill code).
//
// The IR carries no branch predicates — control flow is abstract successor
// edges — so a "path selector" stands in for the branch outcomes: at every
// block with multiple successors the selector picks which one to follow.
// Executing the ORIGINAL function and the REWRITTEN function along the same
// selector must produce identical memory contents and identical values for
// every surviving original register: all the rewrites the function pipeline
// performs are control-flow-insensitive, so checking a few distinct paths
// through each diamond exercises every rewritten block.
//
// Functions must be acyclic along any selected path (series-parallel CFGs
// are; the executor aborts a path after numBlocks steps as a safety net).
#pragma once

#include <string>

#include "ir/Function.h"
#include "vliwsim/State.h"

namespace rapt {

struct FunctionRunResult {
  bool ok = false;
  std::string error;
  RegFile regs;
  ArrayMemory memory;
  std::vector<int> blocksVisited;
};

/// Runs `fn` from its entry block, following `succs[selector % succs.size()]`
/// at every multi-successor block. Register state starts at zero; arrays get
/// the deterministic fill.
[[nodiscard]] FunctionRunResult runFunctionPath(const Function& fn, int selector);

/// Compares original vs rewritten function along `selector`. Checks every
/// array that exists in the ORIGINAL function (spill arrays are internal to
/// the rewritten one) and the final value of every original register that
/// still exists in the rewritten function.
struct FunctionEquivalenceReport {
  bool equal = false;
  std::string detail;
};
[[nodiscard]] FunctionEquivalenceReport checkFunctionEquivalence(
    const Function& original, const Function& rewritten, int selector);

}  // namespace rapt
