#include "vliwsim/Interpreter.h"

#include <cmath>

#include "support/Assert.h"

namespace rapt {

ResultValue evalArith(const Operation& op, const OperandValues& in) {
  ResultValue out;
  switch (op.op) {
    case Opcode::IConst: out.i = op.imm; break;
    case Opcode::IMov:
    case Opcode::ICopy: out.i = in.i[0]; break;
    case Opcode::IAdd: out.i = wrapAdd(in.i[0], in.i[1]); break;
    case Opcode::ISub: out.i = wrapSub(in.i[0], in.i[1]); break;
    case Opcode::IMul: out.i = wrapMul(in.i[0], in.i[1]); break;
    case Opcode::IDiv: out.i = (in.i[1] == 0) ? 0 : in.i[0] / in.i[1]; break;
    case Opcode::IAnd: out.i = in.i[0] & in.i[1]; break;
    case Opcode::IOr: out.i = in.i[0] | in.i[1]; break;
    case Opcode::IXor: out.i = in.i[0] ^ in.i[1]; break;
    case Opcode::IShl:
      out.i = static_cast<std::int64_t>(static_cast<std::uint64_t>(in.i[0])
                                        << (in.i[1] & 63));
      break;
    case Opcode::IShr: out.i = in.i[0] >> (in.i[1] & 63); break;
    case Opcode::IAddImm: out.i = wrapAdd(in.i[0], op.imm); break;
    case Opcode::IToF: out.f = static_cast<double>(in.i[0]); break;
    case Opcode::FToI:
      out.i = std::isnan(in.f[0]) ? 0 : static_cast<std::int64_t>(in.f[0]);
      break;
    case Opcode::FConst: out.f = op.fimm; break;
    case Opcode::FMov:
    case Opcode::FCopy: out.f = in.f[0]; break;
    case Opcode::FAdd: out.f = in.f[0] + in.f[1]; break;
    case Opcode::FSub: out.f = in.f[0] - in.f[1]; break;
    case Opcode::FMul: out.f = in.f[0] * in.f[1]; break;
    case Opcode::FDiv: out.f = in.f[0] / in.f[1]; break;
    default:
      RAPT_UNREACHABLE("evalArith on memory opcode");
  }
  return out;
}

ReferenceResult runReference(const Loop& loop, std::int64_t trip) {
  ReferenceResult st{RegFile{}, ArrayMemory{loop}};
  st.regs.initFromLiveIns(loop);

  for (std::int64_t iter = 0; iter < trip; ++iter) {
    for (const Operation& op : loop.body) {
      if (isMemory(op.op)) {
        const std::int64_t idx = wrapAdd(st.regs.readInt(op.src[0]), op.imm);
        switch (op.op) {
          case Opcode::ILoad: st.regs.writeInt(op.def, st.memory.loadInt(op.array, idx)); break;
          case Opcode::FLoad: st.regs.writeFlt(op.def, st.memory.loadFlt(op.array, idx)); break;
          case Opcode::IStore: st.memory.storeInt(op.array, idx, st.regs.readInt(op.src[1])); break;
          case Opcode::FStore: st.memory.storeFlt(op.array, idx, st.regs.readFlt(op.src[1])); break;
          default: RAPT_UNREACHABLE("bad memory opcode");
        }
        continue;
      }
      OperandValues in;
      for (int s = 0; s < op.numSrcs(); ++s) {
        if (op.src[s].cls() == RegClass::Int)
          in.i[s] = st.regs.readInt(op.src[s]);
        else
          in.f[s] = st.regs.readFlt(op.src[s]);
      }
      const ResultValue out = evalArith(op, in);
      if (op.def.isValid()) {
        if (op.def.cls() == RegClass::Int)
          st.regs.writeInt(op.def, out.i);
        else
          st.regs.writeFlt(op.def, out.f);
      }
    }
  }
  return st;
}

}  // namespace rapt
