// Sequential reference interpreter.
//
// Executes a loop body in program order, iteration by iteration — the
// semantics every schedule must preserve. Used as the oracle in equivalence
// checking: the pipelined, partitioned, register-allocated stream must leave
// memory and the loop's registers in exactly this state.
#pragma once

#include "ir/Loop.h"
#include "vliwsim/State.h"

namespace rapt {

struct ReferenceResult {
  RegFile regs;
  ArrayMemory memory;
};

/// Runs `trip` iterations of `loop` sequentially.
[[nodiscard]] ReferenceResult runReference(const Loop& loop, std::int64_t trip);

/// Two's-complement wraparound arithmetic. Generated loops routinely build
/// imul/iadd chains whose values exceed int64 range; signed overflow is UB in
/// C++, so every interpreter and the simulator must go through these helpers
/// to get the same well-defined wrapped result.
[[nodiscard]] inline std::int64_t wrapAdd(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
[[nodiscard]] inline std::int64_t wrapSub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
[[nodiscard]] inline std::int64_t wrapMul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

/// Evaluates one non-memory operation on explicit operand values. Shared by
/// the reference interpreter and the VLIW simulator so both apply identical
/// semantics (integer arithmetic wraps; integer division by zero yields zero;
/// shifts use the low six bits of the count; float->int truncates, with NaN
/// mapping to zero).
struct OperandValues {
  std::int64_t i[2] = {0, 0};
  double f[2] = {0.0, 0.0};
};
struct ResultValue {
  std::int64_t i = 0;
  double f = 0.0;
};
[[nodiscard]] ResultValue evalArith(const Operation& op, const OperandValues& in);

}  // namespace rapt
