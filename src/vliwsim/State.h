// Machine state for simulation: register file contents and array memory.
#pragma once

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "ir/Loop.h"
#include "support/Assert.h"

namespace rapt {

/// Register contents, split by class. Unwritten registers read as zero.
class RegFile {
 public:
  [[nodiscard]] std::int64_t readInt(VirtReg r) const {
    RAPT_ASSERT(r.cls() == RegClass::Int, "class mismatch");
    auto it = ints_.find(r.key());
    return it == ints_.end() ? 0 : it->second;
  }
  [[nodiscard]] double readFlt(VirtReg r) const {
    RAPT_ASSERT(r.cls() == RegClass::Flt, "class mismatch");
    auto it = flts_.find(r.key());
    return it == flts_.end() ? 0.0 : it->second;
  }
  void writeInt(VirtReg r, std::int64_t v) {
    RAPT_ASSERT(r.cls() == RegClass::Int, "class mismatch");
    ints_[r.key()] = v;
  }
  void writeFlt(VirtReg r, double v) {
    RAPT_ASSERT(r.cls() == RegClass::Flt, "class mismatch");
    flts_[r.key()] = v;
  }

  /// Seed from a loop's live-in list (all other registers stay zero).
  void initFromLiveIns(const Loop& loop) {
    for (const LiveInValue& lv : loop.liveInValues) {
      if (lv.reg.cls() == RegClass::Int)
        writeInt(lv.reg, lv.i);
      else
        writeFlt(lv.reg, lv.f);
    }
  }

 private:
  std::unordered_map<std::uint32_t, std::int64_t> ints_;
  std::unordered_map<std::uint32_t, double> flts_;
};

/// Array memory with a guard band: loops legitimately access a few elements
/// past either end (e.g. `y[i0 - 1]` on iteration 0), as their Fortran
/// originals would into surrounding storage.
class ArrayMemory {
 public:
  static constexpr std::int64_t kGuard = 64;

  explicit ArrayMemory(const Loop& loop) : ArrayMemory(loop.arrays) {}

  explicit ArrayMemory(const std::vector<ArrayDecl>& arrays) {
    for (const ArrayDecl& a : arrays) {
      if (a.isFloat)
        flt_.emplace_back(static_cast<std::size_t>(a.size + 2 * kGuard), 0.0);
      else
        int_.emplace_back(static_cast<std::size_t>(a.size + 2 * kGuard), 0);
      isFloat_.push_back(a.isFloat);
      sizes_.push_back(a.size);
      fltIndex_.push_back(a.isFloat ? static_cast<int>(flt_.size()) - 1
                                    : static_cast<int>(int_.size()) - 1);
    }
    initDeterministic();
  }

  [[nodiscard]] std::int64_t loadInt(ArrayId id, std::int64_t idx) const {
    return int_[slot(id, idx, false)].at(offset(id, idx));
  }
  [[nodiscard]] double loadFlt(ArrayId id, std::int64_t idx) const {
    return flt_[slot(id, idx, true)].at(offset(id, idx));
  }
  void storeInt(ArrayId id, std::int64_t idx, std::int64_t v) {
    int_[slot(id, idx, false)].at(offset(id, idx)) = v;
  }
  void storeFlt(ArrayId id, std::int64_t idx, double v) {
    flt_[slot(id, idx, true)].at(offset(id, idx)) = v;
  }

  /// Bitwise equality: identical dataflow must produce identical bits, and
  /// NaN payloads compare equal to themselves (operator== on double would
  /// flag two equal NaNs as a mismatch).
  [[nodiscard]] bool equals(const ArrayMemory& o) const {
    if (int_ != o.int_ || flt_.size() != o.flt_.size()) return false;
    for (std::size_t a = 0; a < flt_.size(); ++a) {
      if (!fltArrayEquals(o, a)) return false;
    }
    return true;
  }

  /// Bitwise equality restricted to the first `count` declared arrays (used
  /// when the other memory has extra internal arrays, e.g. spill slots).
  [[nodiscard]] bool equalsFirstArrays(const ArrayMemory& o, std::size_t count) const {
    for (std::size_t id = 0; id < count; ++id) {
      if (id >= isFloat_.size() || id >= o.isFloat_.size()) return false;
      if (isFloat_[id] != o.isFloat_[id] || sizes_[id] != o.sizes_[id]) return false;
      const std::size_t mine = static_cast<std::size_t>(fltIndex_[id]);
      const std::size_t theirs = static_cast<std::size_t>(o.fltIndex_[id]);
      if (isFloat_[id]) {
        if (flt_[mine].size() != o.flt_[theirs].size() ||
            std::memcmp(flt_[mine].data(), o.flt_[theirs].data(),
                        flt_[mine].size() * sizeof(double)) != 0)
          return false;
      } else {
        if (int_[mine] != o.int_[theirs]) return false;
      }
    }
    return true;
  }

 private:
  [[nodiscard]] bool fltArrayEquals(const ArrayMemory& o, std::size_t a) const {
    return flt_[a].size() == o.flt_[a].size() &&
           std::memcmp(flt_[a].data(), o.flt_[a].data(),
                       flt_[a].size() * sizeof(double)) == 0;
  }

  void initDeterministic() {
    // Reproducible nonzero contents so dataflow mistakes show up.
    for (std::size_t a = 0; a < int_.size(); ++a)
      for (std::size_t i = 0; i < int_[a].size(); ++i)
        int_[a][i] = static_cast<std::int64_t>((i * 7 + a * 13) % 101) - 50;
    for (std::size_t a = 0; a < flt_.size(); ++a)
      for (std::size_t i = 0; i < flt_[a].size(); ++i)
        flt_[a][i] = static_cast<double>((i * 31 + a * 17) % 97) / 7.0 - 6.0;
  }

  [[nodiscard]] std::size_t slot(ArrayId id, std::int64_t idx, bool wantFloat) const {
    RAPT_ASSERT(id < isFloat_.size(), "bad array id");
    RAPT_ASSERT(isFloat_[id] == wantFloat, "array element type mismatch");
    RAPT_ASSERT(idx >= -kGuard && idx < sizes_[id] + kGuard,
                "array index outside guard band");
    return static_cast<std::size_t>(fltIndex_[id]);
  }
  [[nodiscard]] std::size_t offset(ArrayId /*id*/, std::int64_t idx) const {
    return static_cast<std::size_t>(idx + kGuard);
  }

  std::vector<std::vector<std::int64_t>> int_;
  std::vector<std::vector<double>> flt_;
  std::vector<bool> isFloat_;
  std::vector<std::int64_t> sizes_;
  std::vector<int> fltIndex_;  ///< index into int_ or flt_ per array
};

}  // namespace rapt
