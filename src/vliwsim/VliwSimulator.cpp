#include "vliwsim/VliwSimulator.h"

#include <algorithm>
#include <sstream>

#include "support/Assert.h"
#include "vliwsim/Interpreter.h"

namespace rapt {
namespace {

struct RegWrite {
  VirtReg reg;
  std::int64_t i;
  double f;
};
struct MemWrite {
  ArrayId array;
  std::int64_t idx;
  std::int64_t i;
  double f;
  bool isFloat;
};

/// Checks one instruction's resource usage; returns an error string or "".
std::string checkResources(const VliwInstr& instr, const MachineDesc& machine,
                           const Partition* partition, const PipelinedCode& code,
                           std::int64_t cycle) {
  std::vector<int> fuPerCluster(machine.numClusters, 0);
  std::vector<bool> fuTaken(machine.width(), false);
  int copyUnitOps = 0;
  // Copy ports are a per-BANK resource, distinct from the per-CLUSTER FU
  // width even though the paper pairs banks and clusters 1:1.
  std::vector<int> portPerBank(machine.numBanks(), 0);
  std::ostringstream err;

  for (const EmittedOp& eo : instr.ops) {
    if (eo.fu >= 0) {
      if (eo.fu >= machine.width()) {
        err << "cycle " << cycle << ": FU index " << eo.fu << " out of range";
        return err.str();
      }
      if (fuTaken[eo.fu]) {
        err << "cycle " << cycle << ": FU " << eo.fu << " double-booked";
        return err.str();
      }
      fuTaken[eo.fu] = true;
      ++fuPerCluster[machine.clusterOfFu(eo.fu)];
    } else {
      if (machine.copyModel != CopyModel::CopyUnit || !isCopy(eo.op.op)) {
        err << "cycle " << cycle << ": non-copy op without a functional unit";
        return err.str();
      }
      ++copyUnitOps;
      if (partition != nullptr) {
        const int srcBank = partition->bankOf(code.originalOf(eo.op.src[0]));
        const int dstBank = partition->bankOf(code.originalOf(eo.op.def));
        if (srcBank < 0 || srcBank >= machine.numBanks() || dstBank < 0 ||
            dstBank >= machine.numBanks()) {
          err << "cycle " << cycle << ": copy references bank outside [0, "
              << machine.numBanks() << ")";
          return err.str();
        }
        // Rejected by the machine model, exactly as the scheduler's MRT
        // refuses to place one (docs/verification.md "Same-bank copies").
        if (srcBank == dstBank) {
          err << "cycle " << cycle << ": same-bank copy-unit copy (bank " << srcBank
              << ")";
          return err.str();
        }
        ++portPerBank[srcBank];
        ++portPerBank[dstBank];
      }
    }
  }
  for (int c = 0; c < machine.numClusters; ++c) {
    if (fuPerCluster[c] > machine.fusPerCluster) {
      err << "cycle " << cycle << ": cluster " << c << " issues " << fuPerCluster[c]
          << " ops (width " << machine.fusPerCluster << ")";
      return err.str();
    }
  }
  if (partition != nullptr) {
    for (int b = 0; b < machine.numBanks(); ++b) {
      if (portPerBank[b] > machine.copyPortsPerBank) {
        err << "cycle " << cycle << ": bank " << b << " uses " << portPerBank[b]
            << " copy ports (limit " << machine.copyPortsPerBank << ")";
        return err.str();
      }
    }
  }
  if (copyUnitOps > machine.busCount) {
    err << "cycle " << cycle << ": " << copyUnitOps << " copies on "
        << machine.busCount << " buses";
    return err.str();
  }
  return {};
}

}  // namespace

SimResult simulate(const PipelinedCode& code, const Loop& loop,
                   const MachineDesc& machine, const Partition* partition) {
  SimResult st{false, {}, RegFile{}, ArrayMemory{loop}, 0, 0};
  st.regs.initFromLiveIns(loop);
  // Rotating names whose initial contents the stream actually reads (the
  // emitter computed exactly which) start at their value's live-in.
  for (const LiveInValue& lv : code.nameInits) {
    if (lv.reg.cls() == RegClass::Int)
      st.regs.writeInt(lv.reg, lv.i);
    else
      st.regs.writeFlt(lv.reg, lv.f);
  }

  const std::int64_t n = static_cast<std::int64_t>(code.instrs.size());
  std::int64_t horizonEnd = n;
  // Event buckets: pending register/memory writes landing at a given cycle.
  std::vector<std::vector<RegWrite>> regEvents;
  std::vector<std::vector<MemWrite>> memEvents;
  auto ensure = [&](std::int64_t cycle) {
    if (static_cast<std::int64_t>(regEvents.size()) <= cycle) {
      regEvents.resize(static_cast<std::size_t>(cycle) + 1);
      memEvents.resize(static_cast<std::size_t>(cycle) + 1);
    }
    horizonEnd = std::max(horizonEnd, cycle + 1);
  };
  ensure(n);

  for (std::int64_t c = 0; c < horizonEnd; ++c) {
    ensure(c);
    // Commit everything landing this cycle before any reads.
    for (const RegWrite& w : regEvents[static_cast<std::size_t>(c)]) {
      if (w.reg.cls() == RegClass::Int)
        st.regs.writeInt(w.reg, w.i);
      else
        st.regs.writeFlt(w.reg, w.f);
    }
    for (const MemWrite& w : memEvents[static_cast<std::size_t>(c)]) {
      if (w.isFloat)
        st.memory.storeFlt(w.array, w.idx, w.f);
      else
        st.memory.storeInt(w.array, w.idx, w.i);
    }

    if (c >= n) continue;  // drain phase
    const VliwInstr& instr = code.instrs[static_cast<std::size_t>(c)];
    if (std::string err = checkResources(instr, machine, partition, code, c);
        !err.empty()) {
      st.error = std::move(err);
      return st;
    }

    for (const EmittedOp& eo : instr.ops) {
      const Operation& op = eo.op;
      const int lat = machine.lat.of(op.op);
      if (isMemory(op.op)) {
        const std::int64_t idx = wrapAdd(st.regs.readInt(op.src[0]), op.imm);
        switch (op.op) {
          case Opcode::ILoad:
            ensure(c + lat);
            regEvents[static_cast<std::size_t>(c + lat)].push_back(
                {op.def, st.memory.loadInt(op.array, idx), 0.0});
            break;
          case Opcode::FLoad:
            ensure(c + lat);
            regEvents[static_cast<std::size_t>(c + lat)].push_back(
                {op.def, 0, st.memory.loadFlt(op.array, idx)});
            break;
          case Opcode::IStore:
            ensure(c + lat);
            memEvents[static_cast<std::size_t>(c + lat)].push_back(
                {op.array, idx, st.regs.readInt(op.src[1]), 0.0, false});
            break;
          case Opcode::FStore:
            ensure(c + lat);
            memEvents[static_cast<std::size_t>(c + lat)].push_back(
                {op.array, idx, 0, st.regs.readFlt(op.src[1]), true});
            break;
          default:
            RAPT_UNREACHABLE("bad memory opcode");
        }
        continue;
      }
      OperandValues in;
      for (int s = 0; s < op.numSrcs(); ++s) {
        if (op.src[s].cls() == RegClass::Int)
          in.i[s] = st.regs.readInt(op.src[s]);
        else
          in.f[s] = st.regs.readFlt(op.src[s]);
      }
      const ResultValue out = evalArith(op, in);
      if (op.def.isValid()) {
        ensure(c + lat);
        regEvents[static_cast<std::size_t>(c + lat)].push_back({op.def, out.i, out.f});
      }
    }
  }

  st.ok = true;
  st.issueCycles = n;
  st.totalCycles = horizonEnd;
  return st;
}

}  // namespace rapt
