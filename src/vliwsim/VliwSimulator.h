// Cycle-accurate simulation of a pipelined VLIW instruction stream.
//
// Models the latency semantics the schedulers assume: an operation issued at
// cycle t reads its register operands and (for loads) memory as of the start
// of cycle t, and its result — register write or store — lands at cycle
// t + latency, visible to operations issued at or after that cycle. Any
// scheduling, renaming, copy-insertion, or allocation bug therefore surfaces
// as a wrong final state when checked against the sequential reference.
//
// The simulator also validates per-cycle resource legality against the
// machine description (functional units per cluster, copy buses, copy ports
// per bank) — the static counterpart of what the MRT promised.
#pragma once

#include <string>

#include "machine/MachineDesc.h"
#include "partition/Partition.h"
#include "sched/PipelinedCode.h"
#include "vliwsim/State.h"

namespace rapt {

struct SimResult {
  bool ok = false;
  std::string error;            ///< first detected violation, if any
  RegFile regs;
  ArrayMemory memory;
  std::int64_t issueCycles = 0; ///< instruction-stream length
  std::int64_t totalCycles = 0; ///< through the last in-flight result
};

/// Executes `code`. `loop` is the (possibly copy-augmented) loop the code
/// was emitted from — it supplies array shapes and live-in values. If
/// `partition` is non-null, copy-port usage per bank is validated too.
[[nodiscard]] SimResult simulate(const PipelinedCode& code, const Loop& loop,
                                 const MachineDesc& machine,
                                 const Partition* partition = nullptr);

}  // namespace rapt
