#include "workload/CorpusManifest.h"

#include <cstdio>

#include "support/Assert.h"

namespace rapt {
namespace {

// The fixed stratification table: 3 sizes x {plain, recurrence} x {int, flt}
// plus two alias-heavy ("mem") and two deep-recurrence strata at the large
// end — the tails ROADMAP item 5 calls out. Row order is part of the
// manifest contract (stratumOf is index % table size); reordering or
// retuning any entry changes CorpusManifest::hash() and invalidates every
// journal written against the old recipe, which is exactly the point.
constexpr ManifestStratum kStrata[] = {
    // name              ops        flt% rec% nRec len  ld% st%
    {"small-int",        8,   20,   15,   0,   1,   1,  28, 12},
    {"small-flt",        8,   20,   85,   0,   1,   1,  28, 12},
    {"small-int-rec",    8,   20,   15, 100,   1,   2,  22, 10},
    {"small-flt-rec",    8,   20,   85, 100,   1,   2,  22, 10},
    {"mid-int",         20,  60,    15,   0,   1,   1,  28, 12},
    {"mid-flt",         20,  60,    85,   0,   1,   1,  28, 12},
    {"mid-int-rec",     20,  60,    15, 100,   2,   2,  22, 10},
    {"mid-flt-rec",     20,  60,    85, 100,   2,   2,  22, 10},
    {"large-mem-int",   60, 140,    15,   0,   1,   1,  42, 20},
    {"large-mem-flt",   60, 140,    85,   0,   1,   1,  42, 20},
    {"large-deeprec-int", 60, 140,  15, 100,   3,   3,  20,  8},
    {"large-deeprec-flt", 60, 140,  85, 100,   3,   3,  20,  8},
};
constexpr int kNumStrata = static_cast<int>(sizeof kStrata / sizeof kStrata[0]);

std::uint64_t fnv1aInit() { return 0xcbf29ce484222325ull; }

void fnv1aMix(std::uint64_t& h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= 0x100000001b3ull;
  }
}

void fnv1aMixStr(std::uint64_t& h, const char* s) {
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ull;
  }
  h ^= 0xff;  // terminator: "ab"+"c" never collides with "a"+"bc"
  h *= 0x100000001b3ull;
}

/// The GeneratorParams a stratum induces under a manifest. The per-stratum
/// seed folds the stratum INDEX into the manifest seed so two strata never
/// share a SplitMix64 stream even where their parameter shapes agree.
GeneratorParams stratumParams(const ManifestParams& mp, int s) {
  const ManifestStratum& st = kStrata[s];
  GeneratorParams g;
  g.seed = mp.seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(s + 1));
  g.count = 0;  // unused: manifests generate by index, never as a batch
  g.minOps = st.minOps;
  g.maxOps = st.maxOps;
  g.pctFloatLoop = st.pctFloatLoop;
  g.pctLoadOp = st.pctLoadOp;
  g.pctStoreOp = st.pctStoreOp;
  g.pctRecurrenceLoop = st.pctRecurrenceLoop;
  g.maxRecurrences = st.maxRecurrences;
  g.maxRecurrenceLen = st.maxRecurrenceLen;
  g.trip = mp.trip;
  return g;
}

}  // namespace

CorpusManifest::CorpusManifest(ManifestParams params) : params_(params) {
  RAPT_ASSERT(params_.count >= 0, "negative manifest count");
}

int CorpusManifest::numStrata() { return kNumStrata; }

const ManifestStratum& CorpusManifest::stratum(int s) {
  RAPT_ASSERT(s >= 0 && s < kNumStrata, "stratum out of range");
  return kStrata[s];
}

int CorpusManifest::stratumOf(int index) const {
  RAPT_ASSERT(index >= 0 && index < params_.count, "manifest index out of range");
  return index % kNumStrata;
}

const char* CorpusManifest::stratumNameOf(int index) const {
  return kStrata[stratumOf(index)].name;
}

Loop CorpusManifest::materialize(int index) const {
  const int s = stratumOf(index);
  Loop loop = generateLoop(stratumParams(params_, s), index / kNumStrata);
  // Globally unique, shard-independent, self-describing name: the generator's
  // own "synth<k>" repeats across strata.
  loop.name = "m" + std::to_string(index) + "_" + kStrata[s].name;
  return loop;
}

std::uint64_t CorpusManifest::hash() const {
  std::uint64_t h = fnv1aInit();
  fnv1aMixStr(h, "rapt-manifest-v1");
  fnv1aMix(h, params_.seed);
  fnv1aMix(h, static_cast<std::uint64_t>(params_.count));
  fnv1aMix(h, static_cast<std::uint64_t>(params_.trip));
  for (const ManifestStratum& st : kStrata) {
    fnv1aMixStr(h, st.name);
    fnv1aMix(h, static_cast<std::uint64_t>(st.minOps));
    fnv1aMix(h, static_cast<std::uint64_t>(st.maxOps));
    fnv1aMix(h, static_cast<std::uint64_t>(st.pctFloatLoop));
    fnv1aMix(h, static_cast<std::uint64_t>(st.pctRecurrenceLoop));
    fnv1aMix(h, static_cast<std::uint64_t>(st.maxRecurrences));
    fnv1aMix(h, static_cast<std::uint64_t>(st.maxRecurrenceLen));
    fnv1aMix(h, static_cast<std::uint64_t>(st.pctLoadOp));
    fnv1aMix(h, static_cast<std::uint64_t>(st.pctStoreOp));
  }
  return h;
}

std::string CorpusManifest::hashHex() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash()));
  return buf;
}

}  // namespace rapt
