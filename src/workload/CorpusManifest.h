// Streaming stratified mega-corpus manifest (docs/sharding.md "Manifest").
//
// The ROADMAP's 100k+-loop workload cannot be a std::vector<Loop>: at that
// scale the corpus must never be materialized in memory or on disk. A
// CorpusManifest is the seeded RECIPE instead — a pure function from global
// index to loop. Row i deterministically selects a stratum (round-robin over
// a fixed stratification table) and an index within it, and materialize(i)
// regenerates that loop on demand through workload/LoopGenerator. The
// invariants everything downstream leans on:
//
//   * materialize(i) is byte-identical (printLoop text) across runs, thread
//     counts, and shard boundaries — it depends only on (params, i), pinned
//     by a golden corpus hash in tests/workload/ManifestTest.cpp;
//   * loop names are globally unique ("m<i>_<stratum>") and carry their
//     stratum, so any journal row or failure report is self-describing;
//   * hash() covers the seed, the count, and every stratification parameter,
//     so a shard journal written against one manifest can never silently
//     seed a resume against another (the manifest analogue of
//     suiteConfigHash).
//
// The stratification axes follow ROADMAP item 5: loop size, recurrence
// depth, memory pressure (load/store density — the aliasing knob), and
// INT/FLT mix. Strata are interleaved round-robin so ANY contiguous index
// range — a shard — sees the same mix, which keeps shard wall times
// comparable and makes the orchestrator's p95-based straggler deadline
// meaningful (docs/sharding.md "Stragglers").
#pragma once

#include <cstdint>
#include <string>

#include "ir/Loop.h"
#include "workload/LoopGenerator.h"

namespace rapt {

struct ManifestParams {
  std::uint64_t seed = 0x52415054;  // "RAPT"
  int count = 100'000;
  std::int64_t trip = 64;  ///< simulation trip count of every generated loop
};

/// One stratum of the fixed stratification table: a named GeneratorParams
/// shape. Exposed so reports can enumerate the axes.
struct ManifestStratum {
  const char* name;
  int minOps, maxOps;        ///< size axis
  int pctFloatLoop;          ///< INT/FLT mix axis
  int pctRecurrenceLoop;     ///< recurrence axis (0 or 100: strata are pure)
  int maxRecurrences;
  int maxRecurrenceLen;      ///< recurrence depth
  int pctLoadOp, pctStoreOp; ///< memory pressure / aliasing density axis
};

class CorpusManifest {
 public:
  explicit CorpusManifest(ManifestParams params = {});

  [[nodiscard]] int size() const { return params_.count; }
  [[nodiscard]] const ManifestParams& params() const { return params_; }

  [[nodiscard]] static int numStrata();
  [[nodiscard]] static const ManifestStratum& stratum(int s);

  /// The stratum row `index` belongs to (round-robin interleave).
  [[nodiscard]] int stratumOf(int index) const;
  [[nodiscard]] const char* stratumNameOf(int index) const;

  /// Regenerates row `index`'s loop. Pure: depends only on (params, index).
  [[nodiscard]] Loop materialize(int index) const;

  /// FNV-1a over the seed, count, trip, and the full stratification table —
  /// the journal-header key that detects manifest drift on resume.
  [[nodiscard]] std::uint64_t hash() const;
  [[nodiscard]] std::string hashHex() const;

 private:
  ManifestParams params_;
};

}  // namespace rapt
