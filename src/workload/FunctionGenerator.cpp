#include "workload/FunctionGenerator.h"

#include <algorithm>
#include <span>

#include "support/Assert.h"

namespace rapt {
namespace {

class FunctionBuilder {
 public:
  FunctionBuilder(const FunctionGenParams& p, SplitMix64 rng, int index)
      : p_(p), rng_(rng), index_(index) {}

  Function build() {
    fn_.name = "fn" + std::to_string(index_);
    const ArrayId a0 = fn_.addArray("g0", 256, true);
    const ArrayId a1 = fn_.addArray("g1", 256, false);
    arrays_ = {a0, a1};

    // Seed coefficient/index values in the entry block; these play the role
    // of loop invariants and ABI-provided arguments.
    const int entry = newBlock(0);
    for (int i = 0; i < 3; ++i) {
      const VirtReg r = newInt();
      emitInto(entry, makeIConst(r, rng_.range(0, 30)));
      coeffInt_.push_back(r);
    }
    for (int i = 0; i < 3; ++i) {
      const VirtReg r = newFlt();
      emitInto(entry, makeFConst(r, 0.5 + rng_.uniform01()));
      coeffFlt_.push_back(r);
    }

    // Series-parallel middle: chains and diamonds.
    int tail = entry;
    const int segments =
        static_cast<int>(rng_.range(p_.minBlocks, p_.maxBlocks)) - 2;
    for (int s = 0; s < std::max(1, segments); ++s) {
      if (rng_.chancePercent(p_.pctDiamond)) {
        const int depth = static_cast<int>(rng_.range(0, p_.maxDepth));
        const int left = newBlock(depth);
        const int right = newBlock(depth);
        const int join = newBlock(std::max(0, depth - 1));
        fn_.blocks[tail].succs = {left, right};
        fillBlock(left);
        fillBlock(right);
        fn_.blocks[left].succs = {join};
        fn_.blocks[right].succs = {join};
        tail = join;
      } else {
        const int next = newBlock(static_cast<int>(rng_.range(0, p_.maxDepth)));
        fn_.blocks[tail].succs = {next};
        fillBlock(next);
        tail = next;
      }
    }
    // Exit block consumes a couple of values. The store index must be an
    // index-like (bounded) value — arbitrary chain results would address far
    // outside the arrays.
    const int exit = newBlock(0);
    fn_.blocks[tail].succs.push_back(exit);
    fillBlock(exit);
    emitInto(exit, makeStore(Opcode::FStore, arrays_[0],
                             rng_.pick(std::span<const VirtReg>(coeffInt_)),
                             pickFlt(exit)));
    return fn_;
  }

 private:
  int newBlock(int depth) {
    fn_.blocks.emplace_back();
    fn_.blocks.back().nestingDepth = depth;
    return fn_.numBlocks() - 1;
  }

  VirtReg newInt() {
    const VirtReg r(RegClass::Int, nextIdx_[0]++);
    intVals_.push_back(r);
    return r;
  }
  VirtReg newFlt() {
    const VirtReg r(RegClass::Flt, nextIdx_[1]++);
    fltVals_.push_back(r);
    return r;
  }

  void emitInto(int block, Operation op) { fn_.blocks[block].ops.push_back(op); }

  /// Pick an operand; prefers recent values (cross-block flow by design).
  VirtReg pickFrom(std::vector<VirtReg>& pool, RegClass rc, int block) {
    if (pool.empty()) {
      // Materialize a constant (newInt/newFlt also registers it in the pool).
      const VirtReg r = rc == RegClass::Int ? newInt() : newFlt();
      emitInto(block, rc == RegClass::Int ? makeIConst(r, rng_.range(1, 9))
                                          : makeFConst(r, 1.0 + rng_.uniform01()));
      return r;
    }
    const std::int64_t hi = static_cast<std::int64_t>(pool.size()) - 1;
    return pool[static_cast<std::size_t>(rng_.range(std::max<std::int64_t>(0, hi - 15), hi))];
  }
  VirtReg pickInt(int block) { return pickFrom(intVals_, RegClass::Int, block); }
  VirtReg pickFlt(int block) { return pickFrom(fltVals_, RegClass::Flt, block); }

  /// Whole-program code is dominated by a few mostly-serial dependence
  /// chains (that is why its achievable ILP is low and why it partitions
  /// with little copying — a chain lives happily in one bank). Each block
  /// grows 2-4 such chains; an op extends one chain and only occasionally
  /// (pctCross) reads across chains, which is what forces copies.
  void fillBlock(int block) {
    const int n = static_cast<int>(rng_.range(p_.minOpsPerBlock, p_.maxOpsPerBlock));
    const int numChains = static_cast<int>(rng_.range(2, 4));
    std::vector<VirtReg> chainTail(numChains);
    for (int c = 0; c < numChains; ++c) {
      // Seed each chain from memory (the common "load; compute; store" shape).
      const ArrayId a = rng_.chancePercent(60) ? arrays_[0] : arrays_[1];
      const bool isFloat = fn_.arrays[a].isFloat;
      const VirtReg def = isFloat ? newFlt() : newInt();
      emitInto(block, makeLoad(isFloat ? Opcode::FLoad : Opcode::ILoad, def, a,
                               rng_.pick(std::span<const VirtReg>(coeffInt_)),
                               rng_.range(0, 3)));
      chainTail[c] = def;
    }
    constexpr int pctCross = 8;
    for (int i = 0; i < n; ++i) {
      const int c = static_cast<int>(rng_.range(0, numChains - 1));
      const VirtReg cur = chainTail[c];
      VirtReg other;
      if (rng_.chancePercent(pctCross)) {
        other = chainTail[static_cast<int>(rng_.range(0, numChains - 1))];
        if (other.cls() != cur.cls()) other = VirtReg{};
      }
      if (!other.isValid())
        other = cur.cls() == RegClass::Int ? rng_.pick(std::span<const VirtReg>(coeffInt_))
                                           : rng_.pick(std::span<const VirtReg>(coeffFlt_));
      if (other.cls() != cur.cls())
        other = cur;  // degenerate but well-typed
      const Opcode op = cur.cls() == RegClass::Flt
                            ? (rng_.chancePercent(60) ? Opcode::FAdd : Opcode::FMul)
                            : (rng_.chancePercent(60) ? Opcode::IAdd : Opcode::IXor);
      const VirtReg def = cur.cls() == RegClass::Flt ? newFlt() : newInt();
      emitInto(block, makeBinary(op, def, cur, other));
      chainTail[c] = def;
    }
    // Store each chain's result.
    for (int c = 0; c < numChains; ++c) {
      const bool isFloat = chainTail[c].cls() == RegClass::Flt;
      const ArrayId a = isFloat ? arrays_[0] : arrays_[1];
      emitInto(block, makeStore(isFloat ? Opcode::FStore : Opcode::IStore, a,
                                rng_.pick(std::span<const VirtReg>(coeffInt_)),
                                chainTail[c], rng_.range(0, 3)));
    }
  }

  const FunctionGenParams& p_;
  SplitMix64 rng_;
  int index_;
  Function fn_;
  std::vector<ArrayId> arrays_;
  std::uint32_t nextIdx_[2] = {0, 0};
  std::vector<VirtReg> intVals_, fltVals_;
  std::vector<VirtReg> coeffInt_, coeffFlt_;
};

}  // namespace

Function generateFunction(const FunctionGenParams& params, int index) {
  SplitMix64 seeder(params.seed);
  SplitMix64 rng(seeder.next() ^
                 (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1)));
  return FunctionBuilder(params, rng, index).build();
}

std::vector<Function> generateFunctionCorpus(const FunctionGenParams& params) {
  std::vector<Function> out;
  out.reserve(static_cast<std::size_t>(params.count));
  for (int i = 0; i < params.count; ++i) out.push_back(generateFunction(params, i));
  return out;
}

}  // namespace rapt
