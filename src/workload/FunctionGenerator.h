// Synthetic whole-function workload for the global (non-loop) pipeline.
//
// Functions are series-parallel CFGs whose basic blocks are drawn from the
// same operation distribution as the loop corpus: straight-line chains of
// arithmetic, loads and stores with occasional diamond (if/else) splits, and
// nesting depths marking the blocks that would sit inside loops. Registers
// are function-global, so values defined in early blocks are consumed in
// later ones — exactly the cross-block live ranges whole-function
// partitioning and Chaitin/Briggs must handle.
#pragma once

#include <vector>

#include "ir/Function.h"
#include "support/Rng.h"

namespace rapt {

struct FunctionGenParams {
  std::uint64_t seed = 0x464e4743;  // "FNGC"
  int count = 40;
  int minBlocks = 3;
  int maxBlocks = 9;
  int minOpsPerBlock = 10;
  int maxOpsPerBlock = 40;
  int pctDiamond = 40;   ///< chance a segment is an if/else diamond
  int maxDepth = 2;      ///< nesting depth assigned to "hot" blocks
};

[[nodiscard]] Function generateFunction(const FunctionGenParams& params, int index);
[[nodiscard]] std::vector<Function> generateFunctionCorpus(
    const FunctionGenParams& params = {});

}  // namespace rapt
