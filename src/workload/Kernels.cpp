#include "workload/Kernels.h"

#include "ir/Parser.h"
#include "support/Assert.h"

namespace rapt {
namespace {

// Each kernel is written in the loop text format (ir/Parser.h). Indices use
// the canonical induction register i0; coefficients are loop-invariant
// live-ins.
constexpr const char* kKernelText = R"(
# y[i] += alpha * x[i]        (Level-1 BLAS daxpy)
loop daxpy depth 1 trip 64 {
  array x[72] flt
  array y[72] flt
  induction i0
  livein f0 = 2.5
  f1 = fload x[i0]
  f2 = fmul f1, f0
  f3 = fload y[i0]
  f4 = fadd f2, f3
  fstore y[i0], f4
}

# s += x[i] * y[i]            (dot product: a true fp recurrence)
loop dot depth 1 trip 64 {
  array x[72] flt
  array y[72] flt
  induction i0
  livein f0 = 0.0
  f1 = fload x[i0]
  f2 = fload y[i0]
  f3 = fmul f1, f2
  f0 = fadd f0, f3
}

# y[i] = alpha * x[i]
loop scale depth 1 trip 64 {
  array x[72] flt
  array y[72] flt
  induction i0
  livein f0 = 0.75
  f1 = fload x[i0]
  f2 = fmul f1, f0
  fstore y[i0], f2
}

# y[i] = (x[i-1] + x[i] + x[i+1]) / 3
loop stencil3 depth 2 trip 64 {
  array x[72] flt
  array y[72] flt
  induction i0
  livein f0 = 3.0
  f1 = fload x[i0 - 1]
  f2 = fload x[i0]
  f3 = fload x[i0 + 1]
  f4 = fadd f1, f2
  f5 = fadd f4, f3
  f6 = fdiv f5, f0
  fstore y[i0], f6
}

# y[i] = c0*x[i] + c1*x[i+1] + c2*x[i+2] + c3*x[i+3]   (4-tap FIR)
loop fir4 depth 1 trip 64 {
  array x[72] flt
  array y[72] flt
  induction i0
  livein f0 = 0.25
  livein f1 = 0.5
  livein f2 = 0.125
  livein f3 = 0.0625
  f4 = fload x[i0]
  f5 = fload x[i0 + 1]
  f6 = fload x[i0 + 2]
  f7 = fload x[i0 + 3]
  f8 = fmul f4, f0
  f9 = fmul f5, f1
  f10 = fmul f6, f2
  f11 = fmul f7, f3
  f12 = fadd f8, f9
  f13 = fadd f10, f11
  f14 = fadd f12, f13
  fstore y[i0], f14
}

# x[i] = q + y[i] * (r*z[i+10] + t*z[i+11])    (Livermore kernel 1, hydro)
loop hydro depth 1 trip 48 {
  array x[64] flt
  array y[64] flt
  array z[64] flt
  induction i0
  livein f0 = 0.5
  livein f1 = 1.5
  livein f2 = 2.0
  f3 = fload z[i0 + 10]
  f4 = fload z[i0 + 11]
  f5 = fmul f3, f1
  f6 = fmul f4, f2
  f7 = fadd f5, f6
  f8 = fload y[i0]
  f9 = fmul f8, f7
  f10 = fadd f9, f0
  fstore x[i0], f10
}

# x[i] = z[i] * (y[i] - x[i-1])   (first-order linear recurrence through memory)
loop tridiag depth 1 trip 48 {
  array x[64] flt
  array y[64] flt
  array z[64] flt
  induction i0
  f1 = fload y[i0]
  f2 = fload x[i0 - 1]
  f3 = fsub f1, f2
  f4 = fload z[i0]
  f5 = fmul f4, f3
  fstore x[i0], f5
}

# integer saturation-ish pipeline: b[i] = ((a[i]*3) >> 1) & mask, s ^= b[i]
loop saturate depth 1 trip 64 {
  array a[72] int
  array b[72] int
  induction i0
  livein i1 = 3
  livein i2 = 1
  livein i3 = 255
  livein i4 = 0
  i5 = iload a[i0]
  i6 = imul i5, i1
  i7 = ishr i6, i2
  i8 = iand i7, i3
  istore b[i0], i8
  i4 = ixor i4, i8
}

# complex multiply: (cr + i*ci) = (ar + i*ai) * (br + i*bi)
loop cmul depth 1 trip 64 {
  array ar[72] flt
  array ai[72] flt
  array br[72] flt
  array bi[72] flt
  array cr[72] flt
  array ci[72] flt
  induction i0
  f1 = fload ar[i0]
  f2 = fload ai[i0]
  f3 = fload br[i0]
  f4 = fload bi[i0]
  f5 = fmul f1, f3
  f6 = fmul f2, f4
  f7 = fsub f5, f6
  f8 = fmul f1, f4
  f9 = fmul f2, f3
  f10 = fadd f8, f9
  fstore cr[i0], f7
  fstore ci[i0], f10
}

# mixed int/float with conversion and an integer accumulator
loop intmix depth 2 trip 64 {
  array a[72] int
  array w[72] flt
  induction i0
  livein i1 = 7
  livein i2 = 0
  livein f0 = 1.25
  i3 = iload a[i0]
  i4 = imul i3, i1
  i2 = iadd i2, i4
  f1 = itof i4
  f2 = fmul f1, f0
  fstore w[i0], f2
}
)";

}  // namespace

std::vector<Loop> classicKernels() { return parseLoops(kKernelText); }

Loop classicKernel(const std::string& name) {
  for (Loop& loop : classicKernels()) {
    if (loop.name == name) return std::move(loop);
  }
  RAPT_ASSERT(false, "unknown classic kernel");
  return {};
}

}  // namespace rapt
