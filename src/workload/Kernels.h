// Hand-written classic loop kernels (daxpy, dot product, stencils, ...):
// the recognizable workloads the paper's Fortran corpus would contain. Used
// by examples and tests alongside the synthetic corpus.
#pragma once

#include <vector>

#include "ir/Loop.h"

namespace rapt {

/// All kernels, parsed from their textual definitions.
[[nodiscard]] std::vector<Loop> classicKernels();

/// One kernel by name (asserts existence): "daxpy", "dot", "scale",
/// "stencil3", "fir4", "hydro", "tridiag", "saturate", "cmul", "intmix".
[[nodiscard]] Loop classicKernel(const std::string& name);

}  // namespace rapt
