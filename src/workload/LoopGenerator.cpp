#include "workload/LoopGenerator.h"

#include <algorithm>

#include "support/Assert.h"

namespace rapt {
namespace {

class LoopBuilder {
 public:
  LoopBuilder(const GeneratorParams& params, SplitMix64 rng, int index)
      : p_(params), rng_(rng), index_(index) {}

  Loop build() {
    loop_.name = "synth" + std::to_string(index_);
    loop_.trip = p_.trip;
    loop_.nestingDepth = 1 + static_cast<int>(rng_.range(0, p_.maxNestingDepth - 1));
    fltLoop_ = rng_.chancePercent(p_.pctFloatLoop);

    // Induction variable and a few loop-invariant coefficients.
    induction_ = newInt();
    loop_.induction = induction_;
    intPool_.push_back(induction_);
    addInvariant(RegClass::Int, 3);
    addInvariant(RegClass::Flt, 0);  // fimm set inside
    addInvariant(RegClass::Flt, 0);

    // Arrays.
    const int nArrays = 1 + static_cast<int>(rng_.range(0, 3));
    for (int a = 0; a < nArrays; ++a) {
      const bool isFloat = rng_.chancePercent(fltLoop_ ? 80 : 30);
      loop_.addArray("a" + std::to_string(a), p_.trip + 8, isFloat);
    }

    // Reserve room for recurrence chains.
    int recOps = 0;
    std::vector<int> chainLens;
    if (rng_.chancePercent(p_.pctRecurrenceLoop)) {
      const int k = 1 + static_cast<int>(rng_.range(0, p_.maxRecurrences - 1));
      for (int c = 0; c < k; ++c) {
        chainLens.push_back(1 + static_cast<int>(rng_.range(0, p_.maxRecurrenceLen - 1)));
        recOps += chainLens.back();
      }
    }

    const int targetOps =
        static_cast<int>(rng_.range(p_.minOps, p_.maxOps)) - recOps - 1;  // -1: iv update

    // At least one load so the loop touches memory.
    emitLoad();
    while (loop_.size() < std::max(targetOps, 2)) {
      const std::int64_t roll = rng_.range(0, 99);
      if (roll < p_.pctLoadOp) {
        emitLoad();
      } else if (roll < p_.pctLoadOp + p_.pctStoreOp) {
        emitStore();
      } else {
        emitArith();
      }
    }
    for (int len : chainLens) emitRecurrence(len);

    // Store a couple of results so most computed values matter.
    emitStore();

    loop_.body.push_back(makeUnary(Opcode::IAddImm, induction_, induction_, 1));
    RAPT_ASSERT(!validate(loop_).has_value(), "generator produced invalid loop");
    return loop_;
  }

 private:
  VirtReg newInt() { return VirtReg(RegClass::Int, nextIdx_[0]++); }
  VirtReg newFlt() { return VirtReg(RegClass::Flt, nextIdx_[1]++); }
  VirtReg newReg(RegClass rc) { return rc == RegClass::Int ? newInt() : newFlt(); }

  std::vector<VirtReg>& pool(RegClass rc) {
    return rc == RegClass::Int ? intPool_ : fltPool_;
  }

  void addInvariant(RegClass rc, std::int64_t iv) {
    const VirtReg r = newReg(rc);
    LiveInValue lv;
    lv.reg = r;
    lv.i = iv;
    lv.f = 0.25 + static_cast<double>(rng_.range(1, 12)) / 4.0;
    loop_.liveInValues.push_back(lv);
    pool(rc).push_back(r);
  }

  /// Recent values make better operands: biases toward connected dataflow.
  VirtReg pickOperand(RegClass rc) {
    auto& vals = pool(rc);
    if (vals.empty()) {
      // Materialize a constant.
      const VirtReg r = newReg(rc);
      loop_.body.push_back(rc == RegClass::Int
                               ? makeIConst(r, rng_.range(1, 9))
                               : makeFConst(r, 1.0 + rng_.uniform01()));
      vals.push_back(r);
      return r;
    }
    const std::int64_t hi = static_cast<std::int64_t>(vals.size()) - 1;
    const std::int64_t lo = std::max<std::int64_t>(0, hi - 5);
    return vals[static_cast<std::size_t>(rng_.range(lo, hi))];
  }

  void emitLoad() {
    const ArrayId a = static_cast<ArrayId>(
        rng_.range(0, static_cast<std::int64_t>(loop_.arrays.size()) - 1));
    const bool isFloat = loop_.arrays[a].isFloat;
    const VirtReg def = newReg(isFloat ? RegClass::Flt : RegClass::Int);
    // Mostly forward/streaming offsets; backward offsets (which can close
    // store->load recurrences through memory, as in first-order linear
    // recurrences) appear occasionally — they populate the RecII-bound tail
    // of the corpus.
    const std::int64_t offset =
        rng_.chancePercent(10) ? rng_.range(-2, -1) : rng_.range(0, 3);
    loop_.body.push_back(
        makeLoad(isFloat ? Opcode::FLoad : Opcode::ILoad, def, a, induction_, offset));
    pool(def.cls()).push_back(def);
  }

  void emitStore() {
    const ArrayId a = static_cast<ArrayId>(
        rng_.range(0, static_cast<std::int64_t>(loop_.arrays.size()) - 1));
    const bool isFloat = loop_.arrays[a].isFloat;
    const VirtReg val = pickOperand(isFloat ? RegClass::Flt : RegClass::Int);
    loop_.body.push_back(makeStore(isFloat ? Opcode::FStore : Opcode::IStore, a,
                                   induction_, val, rng_.range(0, 1)));
  }

  Opcode rollArithOpcode(RegClass rc) {
    const std::int64_t roll = rng_.range(0, 99);
    if (rc == RegClass::Flt) {
      if (roll < 40) return Opcode::FAdd;
      if (roll < 60) return Opcode::FSub;
      if (roll < 92) return Opcode::FMul;
      return Opcode::FDiv;
    }
    if (roll < 40) return Opcode::IAdd;
    if (roll < 55) return Opcode::ISub;
    if (roll < 75) return Opcode::IMul;
    if (roll < 83) return Opcode::IAnd;
    if (roll < 91) return Opcode::IXor;
    if (roll < 98) return Opcode::IShl;
    return Opcode::IDiv;
  }

  void emitArith() {
    RegClass rc = (rng_.chancePercent(fltLoop_ ? 75 : 25)) ? RegClass::Flt
                                                           : RegClass::Int;
    // Occasional cross-class conversion keeps int and float graphs connected.
    if (rng_.chancePercent(6)) {
      if (rc == RegClass::Flt) {
        const VirtReg def = newFlt();
        loop_.body.push_back(makeUnary(Opcode::IToF, def, pickOperand(RegClass::Int)));
        fltPool_.push_back(def);
      } else {
        const VirtReg def = newInt();
        loop_.body.push_back(makeUnary(Opcode::FToI, def, pickOperand(RegClass::Flt)));
        intPool_.push_back(def);
      }
      return;
    }
    const VirtReg def = newReg(rc);
    loop_.body.push_back(
        makeBinary(rollArithOpcode(rc), def, pickOperand(rc), pickOperand(rc)));
    pool(rc).push_back(def);
  }

  /// A scalar recurrence of `len` operations: acc -> t1 -> ... -> acc, the
  /// first use of acc preceding its (unique) definition, so the dependence
  /// carries across iterations.
  void emitRecurrence(int len) {
    const RegClass rc =
        rng_.chancePercent(fltLoop_ ? 85 : 25) ? RegClass::Flt : RegClass::Int;
    const VirtReg acc = newReg(rc);
    LiveInValue lv;
    lv.reg = acc;
    lv.i = 1;
    lv.f = 0.5;
    loop_.liveInValues.push_back(lv);

    VirtReg cur = acc;
    for (int k = 0; k < len; ++k) {
      const bool last = (k == len - 1);
      const VirtReg def = last ? acc : newReg(rc);
      Opcode op;
      if (rc == RegClass::Flt) {
        op = rng_.chancePercent(70) ? Opcode::FAdd : Opcode::FMul;
      } else {
        op = rng_.chancePercent(70) ? Opcode::IAdd : Opcode::IXor;
      }
      loop_.body.push_back(makeBinary(op, def, cur, pickOperand(rc)));
      if (!last) pool(rc).push_back(def);
      cur = def;
    }
    pool(rc).push_back(acc);
  }

  const GeneratorParams& p_;
  SplitMix64 rng_;
  int index_;
  Loop loop_;
  bool fltLoop_ = true;
  VirtReg induction_;
  std::uint32_t nextIdx_[2] = {0, 0};
  std::vector<VirtReg> intPool_, fltPool_;
};

}  // namespace

Loop generateLoop(const GeneratorParams& params, int index) {
  SplitMix64 seeder(params.seed);
  SplitMix64 rng(seeder.next() ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1)));
  return LoopBuilder(params, rng, index).build();
}

std::vector<Loop> generateCorpus(const GeneratorParams& params) {
  std::vector<Loop> corpus;
  corpus.reserve(static_cast<std::size_t>(params.count));
  for (int i = 0; i < params.count; ++i) corpus.push_back(generateLoop(params, i));
  return corpus;
}

}  // namespace rapt
