// Synthetic loop corpus generator.
//
// Stand-in for the paper's 211 single-block innermost loops extracted from
// Spec 95 Fortran (see DESIGN.md "Substitutions"). The generator produces
// loops with the structural features that drive both modulo scheduling and
// partitioning behaviour:
//
//   * array traversals with induction-based addressing and small constant
//     offsets (producing exact loop-carried memory dependences),
//   * int/float arithmetic chains of configurable mix,
//   * optional scalar recurrences of 1-3 operations (the RecII-bound loops
//     that populate the degradation histograms' tails),
//   * loop-invariant operands (coefficients held in registers).
//
// All randomness is SplitMix64 under an explicit seed: corpus(i) is stable
// across runs and platforms. Default parameters are calibrated so the ideal
// 16-wide IPC of the 211-loop corpus lands near the paper's reported 8.6
// (see EXPERIMENTS.md).
#pragma once

#include <vector>

#include "ir/Loop.h"
#include "support/Rng.h"

namespace rapt {

struct GeneratorParams {
  std::uint64_t seed = 0x52415054;  // "RAPT"
  int count = 211;                  ///< paper corpus size
  int minOps = 12;
  int maxOps = 60;
  int pctFloatLoop = 70;       ///< chance a loop is float-dominated
  int pctLoadOp = 28;          ///< per-op chance of being a load
  int pctStoreOp = 12;         ///< per-op chance of being a store
  int pctRecurrenceLoop = 30;  ///< chance a loop carries >= 1 scalar recurrence
  int maxRecurrences = 2;
  int maxRecurrenceLen = 2;    ///< ops per recurrence cycle
  int maxNestingDepth = 3;
  std::int64_t trip = 64;      ///< simulation trip count of generated loops
};

/// One deterministic loop: index selects the loop within the (seeded) corpus.
[[nodiscard]] Loop generateLoop(const GeneratorParams& params, int index);

/// The full corpus (params.count loops).
[[nodiscard]] std::vector<Loop> generateCorpus(const GeneratorParams& params = {});

}  // namespace rapt
