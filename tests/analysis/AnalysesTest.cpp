#include "analysis/Analyses.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace rapt {
namespace {

bool contains(const std::vector<VirtReg>& v, VirtReg r) {
  return std::find(v.begin(), v.end(), r) != v.end();
}

/// daxpy-shaped loop: f1 = x[i]; f2 = f1*f0; f3 = y[i]; f4 = f2+f3;
/// y[i] = f4; i0++. f0 is invariant, i0 the induction.
Loop daxpyish() {
  Loop loop;
  loop.name = "daxpyish";
  const ArrayId x = loop.addArray("x", 64, true);
  const ArrayId y = loop.addArray("y", 64, true);
  loop.induction = intReg(0);
  loop.body = {
      makeLoad(Opcode::FLoad, fltReg(1), x, intReg(0)),
      makeBinary(Opcode::FMul, fltReg(2), fltReg(1), fltReg(0)),
      makeLoad(Opcode::FLoad, fltReg(3), y, intReg(0)),
      makeBinary(Opcode::FAdd, fltReg(4), fltReg(2), fltReg(3)),
      makeStore(Opcode::FStore, y, intReg(0), fltReg(4)),
      makeUnary(Opcode::IAddImm, intReg(0), intReg(0), 1),
  };
  loop.liveInValues = {{fltReg(0), 0, 2.5}};
  return loop;
}

TEST(RegKeys, CoverLargestMentionedRegister) {
  const Loop loop = daxpyish();
  // Largest key: f4 -> 2*4+1 = 9, i0 -> 0; numRegKeys = 10.
  EXPECT_EQ(numRegKeys(loop), static_cast<int>(fltReg(4).key()) + 1);
}

TEST(RegKeys, RegsOfSetSortsIntBeforeFlt) {
  BitSet s(8);
  s.set(static_cast<int>(fltReg(0).key()));  // key 1
  s.set(static_cast<int>(intReg(3).key()));  // key 6
  s.set(static_cast<int>(intReg(1).key()));  // key 2
  const std::vector<VirtReg> regs = regsOfSet(s);
  ASSERT_EQ(regs.size(), 3u);
  EXPECT_EQ(regs[0], intReg(1));
  EXPECT_EQ(regs[1], intReg(3));
  EXPECT_EQ(regs[2], fltReg(0));  // all ints sort before all floats
}

TEST(LoopLiveness, InvariantLiveEverywhere) {
  const Loop loop = daxpyish();
  const LoopLiveness live = computeLoopLiveness(loop);
  for (int i = 0; i < loop.size(); ++i) {
    EXPECT_TRUE(live.liveIn[i].test(static_cast<int>(fltReg(0).key()))) << i;
    EXPECT_TRUE(live.liveOut[i].test(static_cast<int>(fltReg(0).key()))) << i;
  }
}

TEST(LoopLiveness, ValueDeadAfterLastUse) {
  const Loop loop = daxpyish();
  const LoopLiveness live = computeLoopLiveness(loop);
  const int f1 = static_cast<int>(fltReg(1).key());
  EXPECT_TRUE(live.liveOut[0].test(f1));   // defined at 0, used at 1
  EXPECT_FALSE(live.liveOut[1].test(f1));  // dead after its only use
  // The induction is live around the back edge (next iteration reads it).
  EXPECT_TRUE(live.liveOut[5].test(static_cast<int>(intReg(0).key())));
  EXPECT_TRUE(live.liveIn[0].test(static_cast<int>(intReg(0).key())));
}

TEST(LoopLiveness, DeadDefIsNotLiveOut) {
  Loop loop = daxpyish();
  loop.body.insert(loop.body.begin() + 4,
                   makeBinary(Opcode::FSub, fltReg(5), fltReg(4), fltReg(0)));
  const LoopLiveness live = computeLoopLiveness(loop);
  EXPECT_FALSE(live.liveOut[4].test(static_cast<int>(fltReg(5).key())));
}

TEST(LoopReachingDefs, EveryDefReachesEveryOpOfAValidLoop) {
  // Single definitions + iteration back edge: nothing ever re-kills a def
  // before it wraps around, so each def op's fact is in every op's in-set.
  const Loop loop = daxpyish();
  const LoopReachingDefs rd = computeLoopReachingDefs(loop);
  for (int i = 0; i < loop.size(); ++i)
    for (int d = 0; d < loop.size(); ++d)
      if (loop.body[d].def.isValid()) {
        EXPECT_TRUE(rd.in[i].test(d) || d == i) << "def " << d << " at op " << i;
      }
}

/// Diamond: entry defines a/b, one branch defines c, the other d, join reads
/// all four (so c and d are one-path-only at the join).
Function diamond() {
  Function fn;
  fn.name = "diamond";
  fn.blocks.resize(4);
  fn.blocks[0].ops = {makeIConst(intReg(0), 1), makeIConst(intReg(1), 2)};
  fn.blocks[0].succs = {1, 2};
  fn.blocks[1].ops = {makeBinary(Opcode::IAdd, intReg(2), intReg(0), intReg(1))};
  fn.blocks[1].succs = {3};
  fn.blocks[2].ops = {makeBinary(Opcode::IMul, intReg(3), intReg(0), intReg(0))};
  fn.blocks[2].succs = {3};
  fn.blocks[3].ops = {makeBinary(Opcode::IXor, intReg(4), intReg(2), intReg(3))};
  return fn;
}

TEST(FunctionLiveness, MatchesRegallocAdapter) {
  const Function fn = diamond();
  const FunctionLiveness live = computeFunctionLiveness(fn);
  EXPECT_TRUE(live.liveOut[0].test(static_cast<int>(intReg(0).key())));
  EXPECT_TRUE(live.liveIn[3].test(static_cast<int>(intReg(2).key())));
  EXPECT_TRUE(live.liveIn[3].test(static_cast<int>(intReg(3).key())));
  EXPECT_FALSE(live.liveOut[3].any());
}

TEST(FunctionInitState, MayVersusMustAtTheJoin) {
  const Function fn = diamond();
  const FunctionInitState init = computeFunctionInitState(fn);
  const int c = static_cast<int>(intReg(2).key());
  const int a = static_cast<int>(intReg(0).key());
  EXPECT_TRUE(init.mayIn[3].test(c));    // defined on the B1 path
  EXPECT_FALSE(init.mustIn[3].test(c));  // but not on the B2 path
  EXPECT_TRUE(init.mustIn[3].test(a));   // entry defs dominate the join
}

TEST(FunctionReachingDefs, BranchDefsMergeAtTheJoin) {
  const Function fn = diamond();
  const FunctionReachingDefs rd = computeFunctionReachingDefs(fn);
  auto factOf = [&](int block, int op) {
    for (int f = 0; f < static_cast<int>(rd.defSites.size()); ++f)
      if (rd.defSites[f] == std::make_pair(block, op)) return f;
    return -1;
  };
  EXPECT_TRUE(rd.in[3].test(factOf(1, 0)));
  EXPECT_TRUE(rd.in[3].test(factOf(2, 0)));
  EXPECT_TRUE(rd.in[3].test(factOf(0, 0)));
  EXPECT_FALSE(rd.in[1].test(factOf(2, 0)));  // sibling branch can't reach
}

TEST(ReachableBlocks, FindsOrphans) {
  Function fn = diamond();
  fn.blocks.push_back({});  // no incoming edge
  fn.blocks.back().ops = {makeIConst(intReg(9), 0)};
  const std::vector<bool> reach = reachableBlocks(fn);
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[3]);
  EXPECT_FALSE(reach[4]);
}

TEST(Liveness, AdapterAgreesWithFramework) {
  // regalloc/Liveness.cpp is a thin adapter over computeFunctionLiveness;
  // spot-check the conversion (full differential coverage lives in
  // LivenessDifferentialTest.cpp).
  const Function fn = diamond();
  const FunctionLiveness live = computeFunctionLiveness(fn);
  for (int b = 0; b < fn.numBlocks(); ++b) {
    const std::vector<VirtReg> in = regsOfSet(live.liveIn[b]);
    EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
  }
  EXPECT_TRUE(contains(regsOfSet(live.liveIn[3]), intReg(2)));
}

}  // namespace
}  // namespace rapt
