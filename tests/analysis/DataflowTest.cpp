#include "analysis/Dataflow.h"

#include <gtest/gtest.h>

namespace rapt {
namespace {

TEST(BitSet, SetTestResetCount) {
  BitSet b(130);
  EXPECT_EQ(b.sizeBits(), 130);
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2);
}

TEST(BitSet, SetAllMasksTailBits) {
  BitSet b(70);
  b.setAll();
  EXPECT_EQ(b.count(), 70);
  BitSet c(70);
  for (int i = 0; i < 70; ++i) c.set(i);
  EXPECT_EQ(b, c);  // equality is exact only if tail bits stay zero
}

TEST(BitSet, UnionIntersectSubtract) {
  BitSet a(10), b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  BitSet u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3);
  BitSet i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1);
  EXPECT_TRUE(i.test(2));
  BitSet d = a;
  d.subtract(b);
  EXPECT_EQ(d.count(), 1);
  EXPECT_TRUE(d.test(1));
}

TEST(BitSet, ForEachAscending) {
  BitSet b(200);
  b.set(5);
  b.set(63);
  b.set(64);
  b.set(199);
  std::vector<int> seen;
  b.forEach([&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<int>{5, 63, 64, 199}));
}

TEST(DataflowCfg, ChainAndLoopShapes) {
  const DataflowCfg chain = DataflowCfg::chain(3);
  EXPECT_EQ(chain.succs[0], (std::vector<int>{1}));
  EXPECT_EQ(chain.succs[2], (std::vector<int>{}));
  EXPECT_EQ(chain.preds[0], (std::vector<int>{}));

  const DataflowCfg cyc = DataflowCfg::forLoopBody(3);
  EXPECT_EQ(cyc.succs[2], (std::vector<int>{0}));  // iteration back edge
  EXPECT_EQ(cyc.preds[0], (std::vector<int>{2}));
}

/// Forward/union over a chain: a fact generated at node 0 reaches node 2
/// unless some intermediate node kills it.
TEST(Dataflow, ForwardUnionPropagatesAlongChain) {
  DataflowProblem p;
  p.direction = FlowDirection::Forward;
  p.meet = MeetOp::Union;
  p.numFacts = 2;
  p.gen.assign(3, BitSet(2));
  p.kill.assign(3, BitSet(2));
  p.boundary = BitSet(2);
  p.gen[0].set(0);
  p.gen[0].set(1);
  p.kill[1].set(1);
  const DataflowSolution s = solveDataflow(DataflowCfg::chain(3), p);
  EXPECT_TRUE(s.out[2].test(0));
  EXPECT_FALSE(s.out[2].test(1));  // killed at node 1
  EXPECT_GT(s.iterations, 0);
}

/// The loop back edge carries facts around the iteration cycle: a fact
/// generated at the LAST node reaches the FIRST one.
TEST(Dataflow, BackEdgeCarriesFactsAroundTheCycle) {
  DataflowProblem p;
  p.direction = FlowDirection::Forward;
  p.meet = MeetOp::Union;
  p.numFacts = 1;
  p.gen.assign(3, BitSet(1));
  p.kill.assign(3, BitSet(1));
  p.boundary = BitSet(1);
  p.gen[2].set(0);
  const DataflowSolution s = solveDataflow(DataflowCfg::forLoopBody(3), p);
  EXPECT_TRUE(s.in[0].test(0));
  // Without the back edge the same fact never reaches node 0.
  const DataflowSolution t = solveDataflow(DataflowCfg::chain(3), p);
  EXPECT_FALSE(t.in[0].test(0));
}

/// Intersect meet (must-analyses): a diamond where only one branch generates
/// the fact must NOT report it at the join.
TEST(Dataflow, IntersectMeetRequiresAllPaths) {
  DataflowCfg cfg;
  cfg.succs = {{1, 2}, {3}, {3}, {}};
  cfg.preds = {{}, {0}, {0}, {1, 2}};
  DataflowProblem p;
  p.direction = FlowDirection::Forward;
  p.meet = MeetOp::Intersect;
  p.numFacts = 2;
  p.gen.assign(4, BitSet(2));
  p.kill.assign(4, BitSet(2));
  p.boundary = BitSet(2);
  p.gen[1].set(0);  // one branch only
  p.gen[0].set(1);  // before the split: on every path
  const DataflowSolution s = solveDataflow(cfg, p);
  EXPECT_FALSE(s.in[3].test(0));
  EXPECT_TRUE(s.in[3].test(1));
}

/// Backward/union (liveness shape): a use at the last node makes the fact
/// live at every earlier node until its kill.
TEST(Dataflow, BackwardUnionLivenessShape) {
  DataflowProblem p;
  p.direction = FlowDirection::Backward;
  p.meet = MeetOp::Union;
  p.numFacts = 1;
  p.gen.assign(3, BitSet(1));
  p.kill.assign(3, BitSet(1));
  p.boundary = BitSet(1);
  p.gen[2].set(0);   // used at node 2
  p.kill[1].set(0);  // defined at node 1
  const DataflowSolution s = solveDataflow(DataflowCfg::chain(3), p);
  EXPECT_TRUE(s.out[1].test(0));
  EXPECT_TRUE(s.in[2].test(0));
  EXPECT_FALSE(s.in[1].test(0));  // killed by the definition
  EXPECT_FALSE(s.in[0].test(0));
}

}  // namespace
}  // namespace rapt
