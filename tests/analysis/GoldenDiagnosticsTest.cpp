// Golden diagnostic-JSON fixtures: each tests/analysis/fixtures/<name> file
// has a sibling <stem>.golden.json holding the exact `rapt-lint --json`
// document for it. The test renders through the same LintDriver/lintJson path
// the CLI uses, so a drift in the taxonomy, messages, hints or JSON schema
// shows up as a readable diff here.
//
// To regenerate after an intentional change:
//   cd tests/analysis/fixtures && for f in *.loop *.fn; do
//     <build>/tools/rapt-lint --json "$f" > "${f%.*}.golden.json"; done
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/LintDriver.h"

namespace rapt {
namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void checkGolden(const std::string& fixture, const std::string& goldenStem) {
  const std::string dir = RAPT_ANALYSIS_FIXTURE_DIR;
  const LintFileResult r = lintSource(fixture, readFile(dir + "/" + fixture));
  const std::string actual = lintJson({&r, 1}).dump() + "\n";
  const std::string golden = readFile(dir + "/" + goldenStem + ".golden.json");
  EXPECT_EQ(actual, golden) << "diagnostics drifted for " << fixture
                            << "; regenerate with rapt-lint --json (see header)";
}

TEST(GoldenDiagnostics, DeadDefLoop) { checkGolden("dead_def.loop", "dead_def"); }

TEST(GoldenDiagnostics, TypeMismatchLoop) {
  checkGolden("type_mismatch.loop", "type_mismatch");
}

TEST(GoldenDiagnostics, UseBeforeDefFunction) {
  checkGolden("use_before_def.fn", "use_before_def");
}

TEST(GoldenDiagnostics, UnreachableFunction) {
  checkGolden("unreachable.fn", "unreachable");
}

/// Severity contract pinned explicitly: the loop fixtures split error/warning
/// exactly as docs/analysis.md promises.
TEST(GoldenDiagnostics, FixtureSeverities) {
  const std::string dir = RAPT_ANALYSIS_FIXTURE_DIR;
  const LintFileResult dead =
      lintSource("dead_def.loop", readFile(dir + "/dead_def.loop"));
  EXPECT_EQ(dead.errors, 0);
  EXPECT_GE(dead.warnings, 1);
  const LintFileResult mismatch =
      lintSource("type_mismatch.loop", readFile(dir + "/type_mismatch.loop"));
  EXPECT_GE(mismatch.errors, 1);
  const LintFileResult ubd =
      lintSource("use_before_def.fn", readFile(dir + "/use_before_def.fn"));
  EXPECT_GE(ubd.errors, 1);
  const LintFileResult orphan =
      lintSource("unreachable.fn", readFile(dir + "/unreachable.fn"));
  EXPECT_EQ(orphan.errors, 0);
  EXPECT_GE(orphan.warnings, 2);  // unreachable block + dead def
}

}  // namespace
}  // namespace rapt
