#include "analysis/Linter.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/LintDriver.h"
#include "pipeline/CompilerPipeline.h"
#include "pipeline/FunctionPipeline.h"
#include "workload/FunctionGenerator.h"
#include "workload/LoopGenerator.h"

namespace rapt {
namespace {

int countCode(const AnalysisReport& rep, DiagCode code) {
  int n = 0;
  for (const Diagnostic& d : rep.diagnostics)
    if (d.code == code) ++n;
  return n;
}

Loop cleanLoop() {
  Loop loop;
  loop.name = "clean";
  const ArrayId a = loop.addArray("a", 64, false);
  loop.induction = intReg(0);
  loop.body = {
      makeLoad(Opcode::ILoad, intReg(1), a, intReg(0)),
      makeBinary(Opcode::IAdd, intReg(2), intReg(1), intReg(3)),
      makeStore(Opcode::IStore, a, intReg(0), intReg(2)),
      makeUnary(Opcode::IAddImm, intReg(0), intReg(0), 1),
  };
  loop.liveInValues = {{intReg(3), 7, 0.0}};
  return loop;
}

TEST(AnalyzeLoop, CleanLoopHasNoDiagnostics) {
  const AnalysisReport rep = analyzeLoop(cleanLoop());
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.diagnostics.empty()) << formatDiagnostic(rep.diagnostics[0], "clean");
}

TEST(AnalyzeLoop, DeadDefWarns) {
  Loop loop = cleanLoop();
  loop.body.insert(loop.body.begin() + 2,
                   makeBinary(Opcode::IMul, intReg(4), intReg(2), intReg(2)));
  const AnalysisReport rep = analyzeLoop(loop);
  EXPECT_TRUE(rep.ok());  // warning, not error
  ASSERT_EQ(countCode(rep, DiagCode::DeadDef), 1);
  const Diagnostic& d = rep.diagnostics[0];
  EXPECT_EQ(d.code, DiagCode::DeadDef);
  EXPECT_EQ(d.op, 2);
  EXPECT_EQ(d.reg, intReg(4));
  EXPECT_FALSE(d.hint.empty());
}

TEST(AnalyzeLoop, MissingLiveinWarnsForInvariantAndCarriedUse) {
  Loop loop = cleanLoop();
  loop.liveInValues.clear();  // i3 (invariant) now reads an implicit zero
  const AnalysisReport rep = analyzeLoop(loop);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(countCode(rep, DiagCode::UseBeforeDef), 1);

  // A recurrence read before its definition with no iteration-0 initializer.
  Loop rec = cleanLoop();
  rec.body[1] = makeBinary(Opcode::IAdd, intReg(2), intReg(1), intReg(2));
  const AnalysisReport rep2 = analyzeLoop(rec);
  EXPECT_TRUE(rep2.ok());
  EXPECT_EQ(countCode(rep2, DiagCode::UseBeforeDef), 1);
}

TEST(AnalyzeLoop, UnusedLiveinWarns) {
  Loop loop = cleanLoop();
  loop.liveInValues.push_back({intReg(2), 1, 0.0});  // defined before every use
  const AnalysisReport rep = analyzeLoop(loop);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(countCode(rep, DiagCode::UnusedLivein), 1);

  loop.liveInValues.push_back({intReg(3), 8, 0.0});  // duplicate entry
  EXPECT_EQ(countCode(analyzeLoop(loop), DiagCode::UnusedLivein), 2);
}

TEST(AnalyzeLoop, RedefinedRegisterErrors) {
  Loop loop = cleanLoop();
  loop.body.push_back(makeBinary(Opcode::IAdd, intReg(2), intReg(1), intReg(1)));
  const AnalysisReport rep = analyzeLoop(loop);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(countCode(rep, DiagCode::RedefinedRegister), 1);
}

TEST(AnalyzeLoop, BadInductionErrors) {
  Loop loop = cleanLoop();
  loop.body[3] = makeUnary(Opcode::IAddImm, intReg(0), intReg(0), 2);  // +2
  EXPECT_EQ(countCode(analyzeLoop(loop), DiagCode::BadInduction), 1);

  Loop missing = cleanLoop();
  missing.body.erase(missing.body.begin() + 3);  // never updated
  EXPECT_EQ(countCode(analyzeLoop(missing), DiagCode::BadInduction), 1);
}

TEST(AnalyzeLoop, TypeMismatchErrors) {
  Loop loop = cleanLoop();
  loop.body[1] = makeBinary(Opcode::FAdd, intReg(2), fltReg(1), fltReg(1));
  const AnalysisReport rep = analyzeLoop(loop);
  EXPECT_FALSE(rep.ok());
  EXPECT_GE(countCode(rep, DiagCode::TypeMismatch), 1);
}

TEST(AnalyzeLoop, UnknownArrayErrors) {
  Loop loop = cleanLoop();
  loop.body[0].array = 7;  // out of range
  EXPECT_EQ(countCode(analyzeLoop(loop), DiagCode::UnknownArray), 1);
}

Function diamond() {
  Function fn;
  fn.name = "diamond";
  fn.blocks.resize(4);
  fn.blocks[0].ops = {makeIConst(intReg(0), 1), makeIConst(intReg(1), 2)};
  fn.blocks[0].succs = {1, 2};
  fn.blocks[1].ops = {makeBinary(Opcode::IAdd, intReg(2), intReg(0), intReg(1))};
  fn.blocks[1].succs = {3};
  fn.blocks[2].ops = {makeBinary(Opcode::IMul, intReg(3), intReg(0), intReg(0))};
  fn.blocks[2].succs = {3};
  fn.blocks[3].ops = {makeBinary(Opcode::IXor, intReg(4), intReg(2), intReg(3))};
  return fn;
}

TEST(AnalyzeFunction, InvalidCfgErrors) {
  Function fn = diamond();
  fn.blocks[1].succs = {9};
  const AnalysisReport rep = analyzeFunction(fn);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(countCode(rep, DiagCode::InvalidCfg), 1);
}

TEST(AnalyzeFunction, UnreachableBlockWarns) {
  Function fn = diamond();
  fn.blocks.push_back({});
  fn.blocks.back().ops = {makeIConst(intReg(9), 0)};
  const AnalysisReport rep = analyzeFunction(fn);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(countCode(rep, DiagCode::UnreachableCode), 1);
}

TEST(AnalyzeFunction, UseBeforeAnyDefIsAnError) {
  Function fn;
  fn.blocks.resize(2);
  fn.blocks[0].ops = {makeIConst(intReg(0), 1)};
  fn.blocks[0].succs = {1};
  // i1 read before its only (later) definition in the same block.
  fn.blocks[1].ops = {makeBinary(Opcode::IAdd, intReg(2), intReg(1), intReg(0)),
                      makeIConst(intReg(1), 5)};
  const AnalysisReport rep = analyzeFunction(fn);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(countCode(rep, DiagCode::UseBeforeDef), 1);
  for (const Diagnostic& d : rep.diagnostics)
    if (d.code == DiagCode::UseBeforeDef) {
      EXPECT_EQ(d.severity, DiagSeverity::Error);
    }
}

TEST(AnalyzeFunction, OnePathDefIsAWarning) {
  // In the diamond, i2/i3 are each defined on one branch only, so the join's
  // reads may be uninitialized — warning, not error.
  const AnalysisReport rep = analyzeFunction(diamond());
  EXPECT_TRUE(rep.ok());
  EXPECT_GE(countCode(rep, DiagCode::UseBeforeDef), 2);
  for (const Diagnostic& d : rep.diagnostics)
    if (d.code == DiagCode::UseBeforeDef) {
      EXPECT_EQ(d.severity, DiagSeverity::Warning);
    }
}

TEST(AnalyzeFunction, NeverDefinedRegistersAreInputsNotErrors) {
  Function fn;
  fn.blocks.resize(1);
  fn.blocks[0].ops = {makeBinary(Opcode::IAdd, intReg(1), intReg(0), intReg(0)),
                      makeBinary(Opcode::IXor, intReg(2), intReg(1), intReg(0))};
  const AnalysisReport rep = analyzeFunction(fn);
  EXPECT_EQ(countCode(rep, DiagCode::UseBeforeDef), 0);
}

// ---- Pipeline gate integration -------------------------------------------

TEST(PipelineGate, WarningsRideAlongWithoutBlocking) {
  Loop loop = cleanLoop();
  loop.liveInValues.clear();  // provokes a use-before-def warning
  const LoopResult r = compileLoop(loop, MachineDesc::paper16(2, CopyModel::Embedded));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.trace.diagErrors, 0);
  EXPECT_GE(r.trace.diagWarnings, 1);
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics[0].code, DiagCode::UseBeforeDef);
}

TEST(PipelineGate, DisabledGateLeavesNoDiagnostics) {
  Loop loop = cleanLoop();
  loop.liveInValues.clear();
  PipelineOptions opt;
  opt.staticAnalysis = false;
  const LoopResult r = compileLoop(loop, MachineDesc::paper16(2, CopyModel::Embedded), opt);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.diagnostics.empty());
  EXPECT_EQ(r.trace.diagWarnings, 0);
}

TEST(PipelineGate, FunctionGateCatchesCrossBlockUseBeforeDef) {
  // Per-block validation cannot see this: each block is individually fine,
  // only the CFG-level dataflow exposes the premature read.
  Function fn;
  fn.blocks.resize(2);
  fn.blocks[0].ops = {makeBinary(Opcode::IAdd, intReg(2), intReg(1), intReg(1)),
                      makeIConst(intReg(3), 1)};
  fn.blocks[0].succs = {1};
  fn.blocks[1].ops = {makeIConst(intReg(1), 5),
                      makeBinary(Opcode::IXor, intReg(4), intReg(2), intReg(3))};
  const FunctionResult r =
      compileFunction(fn, MachineDesc::paper16(2, CopyModel::Embedded));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.rfind("static analysis failed", 0), 0u) << r.error;
  ASSERT_FALSE(r.diagnostics.empty());

  FunctionPipelineOptions opt;
  opt.staticAnalysis = false;
  const FunctionResult off = compileFunction(fn, MachineDesc::paper16(2, CopyModel::Embedded), opt);
  EXPECT_TRUE(off.ok) << off.error;  // the old path never noticed
}

// ---- Corpus sweeps: nothing we generate or ship may produce an error. ----

TEST(Corpus, Generated211LoopCorpusGatesClean) {
  const std::vector<Loop> corpus = generateCorpus();
  ASSERT_EQ(corpus.size(), 211u);
  for (const Loop& loop : corpus) {
    const AnalysisReport rep = analyzeLoop(loop);
    EXPECT_TRUE(rep.ok()) << loop.name << ": " << rep.firstError();
  }
}

TEST(Corpus, GeneratedFunctionCorpusGatesClean) {
  for (const Function& fn : generateFunctionCorpus()) {
    const AnalysisReport rep = analyzeFunction(fn);
    EXPECT_TRUE(rep.ok()) << fn.name << ": " << rep.firstError();
  }
}

void lintDirectoryExpectNoErrors(const std::string& dir) {
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string ext = entry.path().extension().string();
    if (ext != ".loop" && ext != ".rapt" && ext != ".fn") continue;
    std::ifstream in(entry.path());
    std::ostringstream text;
    text << in.rdbuf();
    const LintFileResult r = lintSource(entry.path().filename().string(), text.str());
    EXPECT_EQ(r.errors, 0) << entry.path() << ": " << lintText(r);
    ++files;
  }
  EXPECT_GT(files, 0) << dir;
}

TEST(Corpus, ShippedExampleLoopsLintClean) { lintDirectoryExpectNoErrors(RAPT_EXAMPLES_DIR); }

TEST(Corpus, RegressionCorpusLintsClean) { lintDirectoryExpectNoErrors(RAPT_REGRESSION_DIR); }

}  // namespace
}  // namespace rapt
