// Differential test for the Liveness refactor (satellite of the analysis
// subsystem PR): regalloc/Liveness.cpp now delegates to the shared dataflow
// framework, and this file pins it against an INDEPENDENT reference — a
// deliberately naive std::set fixpoint with no shared code — across the full
// 211-loop corpus (as single-block functions) and the generated whole-function
// corpus. Any divergence in the solver, the gen/kill construction, or the
// bitset-to-sorted-vector adapter fails here with the offending unit named.
#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "regalloc/Liveness.h"
#include "workload/FunctionGenerator.h"
#include "workload/LoopGenerator.h"

namespace rapt {
namespace {

using RegSet = std::set<VirtReg>;

struct RefLiveness {
  std::vector<RegSet> liveIn;
  std::vector<RegSet> liveOut;
};

/// Textbook round-robin liveness over sets: iterate all blocks until nothing
/// changes. Quadratic and slow — that is the point; it shares nothing with
/// the worklist/bitset implementation under test.
RefLiveness referenceLiveness(const Function& fn) {
  const int n = fn.numBlocks();
  std::vector<RegSet> use(n), def(n);
  for (int b = 0; b < n; ++b) {
    for (const Operation& o : fn.blocks[b].ops) {
      for (VirtReg s : o.srcs())
        if (def[b].find(s) == def[b].end()) use[b].insert(s);
      if (o.def.isValid()) def[b].insert(o.def);
    }
  }
  RefLiveness ref;
  ref.liveIn.assign(n, {});
  ref.liveOut.assign(n, {});
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = 0; b < n; ++b) {
      RegSet out;
      for (int s : fn.blocks[b].succs)
        out.insert(ref.liveIn[s].begin(), ref.liveIn[s].end());
      RegSet in = use[b];
      for (VirtReg r : out)
        if (def[b].find(r) == def[b].end()) in.insert(r);
      if (out != ref.liveOut[b] || in != ref.liveIn[b]) {
        ref.liveOut[b] = std::move(out);
        ref.liveIn[b] = std::move(in);
        changed = true;
      }
    }
  }
  return ref;
}

void expectAgreement(const Function& fn) {
  const std::vector<BlockLiveness> got = computeLiveness(fn);
  const RefLiveness ref = referenceLiveness(fn);
  ASSERT_EQ(static_cast<int>(got.size()), fn.numBlocks()) << fn.name;
  for (int b = 0; b < fn.numBlocks(); ++b) {
    const std::vector<VirtReg> refIn(ref.liveIn[b].begin(), ref.liveIn[b].end());
    const std::vector<VirtReg> refOut(ref.liveOut[b].begin(), ref.liveOut[b].end());
    // BlockLiveness promises sorted vectors; std::set iterates sorted too.
    EXPECT_EQ(got[b].liveIn, refIn) << fn.name << " block " << b << " liveIn";
    EXPECT_EQ(got[b].liveOut, refOut) << fn.name << " block " << b << " liveOut";
  }
}

/// A loop body as a single-block function (the straight-line view: carried
/// semantics are out of scope for BLOCK liveness, which is what regalloc's
/// contract covers).
Function asFunction(const Loop& loop) {
  Function fn;
  fn.name = loop.name;
  fn.arrays = loop.arrays;
  fn.blocks.resize(1);
  fn.blocks[0].ops = loop.body;
  fn.blocks[0].nestingDepth = loop.nestingDepth;
  return fn;
}

TEST(LivenessDifferential, Full211LoopCorpusAgrees) {
  const std::vector<Loop> corpus = generateCorpus();
  ASSERT_EQ(corpus.size(), 211u);
  for (const Loop& loop : corpus) expectAgreement(asFunction(loop));
}

TEST(LivenessDifferential, GeneratedFunctionCorpusAgrees) {
  const std::vector<Function> corpus = generateFunctionCorpus();
  ASSERT_FALSE(corpus.empty());
  for (const Function& fn : corpus) expectAgreement(fn);
}

TEST(LivenessDifferential, LoopShapedCfgAgrees) {
  // A CFG with an actual cycle, where the order blocks are visited matters.
  Function fn;
  fn.name = "cycle";
  fn.blocks.resize(3);
  fn.blocks[0].ops = {makeIConst(intReg(0), 0), makeIConst(intReg(1), 1)};
  fn.blocks[0].succs = {1};
  fn.blocks[1].ops = {makeBinary(Opcode::IAdd, intReg(0), intReg(0), intReg(1))};
  fn.blocks[1].succs = {1, 2};
  fn.blocks[2].ops = {makeBinary(Opcode::IXor, intReg(2), intReg(0), intReg(0))};
  expectAgreement(fn);
}

}  // namespace
}  // namespace rapt
