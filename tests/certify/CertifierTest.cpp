// One test per defect class the ISSUE names: dropped copy, wrong MVE phase
// rename, clobbered physical reuse, cross-bank read without copy, epilogue
// off-by-one — each injected by hand-corrupting a known-good stream, with the
// clean stream certifying first so the failure is attributable to the
// corruption alone.
#include "certify/Certifier.h"

#include <gtest/gtest.h>

#include "CertifyTestUtil.h"
#include "workload/Kernels.h"

namespace rapt {
namespace {

TEST(Certifier, CleanStreamsCertifyOnAllPaperConfigs) {
  for (int clusters : {2, 4, 8}) {
    for (CopyModel model : {CopyModel::Embedded, CopyModel::CopyUnit}) {
      for (int index : {0, 1, 2}) {
        const CertifiedLoop c = compileForCertify(clusters, model, index);
        const CertifyReport virt = certifyVirtual(c, c.code);
        EXPECT_TRUE(virt.ok()) << clusters << "x" << copyModelName(model)
                               << " corpus " << index << ": " << virt.firstError();
        EXPECT_GT(virt.certifiedValues, 0);
        const PipelinedCode phys = applyPhysicalAssignment(c.code, c.alloc);
        const CertifyReport ph = certifyPhysical(c, phys);
        EXPECT_TRUE(ph.ok()) << clusters << "x" << copyModelName(model)
                             << " corpus " << index << ": " << ph.firstError();
      }
    }
  }
}

TEST(Certifier, DroppedCopyIsCaught) {
  // Erase one emitted cross-bank copy: its consumer now reads either a stale
  // rotation of the name or an uninitialized register.
  for (int index = 0; index < 20; ++index) {
    const CertifiedLoop c = compileForCertify(2, CopyModel::Embedded, index);
    if (c.clustered.bodyCopies == 0) continue;
    ASSERT_TRUE(certifyVirtual(c, c.code).ok());
    bool caught = false;
    int tried = 0;
    for (std::size_t cy = 0; cy < c.code.instrs.size() && !caught; ++cy) {
      for (std::size_t s = 0; s < c.code.instrs[cy].ops.size() && !caught; ++s) {
        if (!isCopy(c.code.instrs[cy].ops[s].op.op)) continue;
        if (++tried > 12) break;
        PipelinedCode broken = c.code;
        broken.instrs[cy].ops.erase(broken.instrs[cy].ops.begin() +
                                    static_cast<std::ptrdiff_t>(s));
        caught = !certifyVirtual(c, broken).ok();
      }
    }
    ASSERT_GT(tried, 0);
    EXPECT_TRUE(caught) << "no dropped copy caught in corpus " << index;
    return;  // one loop with copies suffices
  }
  FAIL() << "no corpus loop with body copies found";
}

TEST(Certifier, WrongMvePhaseRenameIsCaught) {
  // Rewriting a use to a different rotation of the same value makes it read
  // another iteration's instance. Some swaps are semantically neutral (truly
  // invariant values); the certifier must catch at least one real one.
  bool caught = false;
  for (int index = 0; index < 10 && !caught; ++index) {
    const CertifiedLoop c = compileForCertify(4, CopyModel::Embedded, index);
    ASSERT_TRUE(certifyVirtual(c, c.code).ok());
    int tried = 0;
    for (std::size_t cy = 0; cy < c.code.instrs.size() && !caught; ++cy) {
      for (std::size_t s = 0; s < c.code.instrs[cy].ops.size() && !caught; ++s) {
        const EmittedOp& eo = c.code.instrs[cy].ops[s];
        for (int k = 0; k < eo.op.numSrcs() && !caught; ++k) {
          const VirtReg name = eo.op.src[static_cast<std::size_t>(k)];
          if (!name.isValid()) continue;
          const auto origIt = c.code.originOf.find(name.key());
          if (origIt == c.code.originOf.end()) continue;
          const auto namesIt = c.code.namesOf.find(origIt->second.orig.key());
          if (namesIt == c.code.namesOf.end() || namesIt->second.size() < 2)
            continue;
          if (++tried > 24) break;
          const std::vector<VirtReg>& names = namesIt->second;
          const std::size_t phase =
              static_cast<std::size_t>(origIt->second.phase);
          PipelinedCode broken = c.code;
          broken.instrs[cy].ops[s].op.src[static_cast<std::size_t>(k)] =
              names[(phase + 1) % names.size()];
          caught = !certifyVirtual(c, broken).ok();
        }
      }
    }
  }
  EXPECT_TRUE(caught);
}

TEST(Certifier, ClobberedPhysicalReuseIsCaught) {
  // Collapse every register of each class onto index 0 of its bank: values
  // with overlapping lifetimes now share one physical register.
  const CertifiedLoop c = compileForCertify(2, CopyModel::Embedded, 0);
  {
    const PipelinedCode phys = applyPhysicalAssignment(c.code, c.alloc);
    ASSERT_TRUE(certifyPhysical(c, phys).ok());
  }
  BankAssignment broken = c.alloc;
  bool changed = false;
  for (auto& [key, pr] : broken.physOf) {
    if (pr.index != 0) {
      pr.index = 0;
      changed = true;
    }
  }
  ASSERT_TRUE(changed);
  const PipelinedCode phys = applyPhysicalAssignment(c.code, broken);
  const CertifyReport rep = certifyPhysical(c, phys);
  EXPECT_FALSE(rep.ok());
}

TEST(Certifier, CrossBankReadWithoutCopyIsCaught) {
  // Move an operation to a functional unit of the other cluster without
  // routing its operands there: the residence check must flag the read even
  // though the VALUE is still correct (this is a placement defect, not a
  // value defect — invisible to any simulator that ignores banks).
  const CertifiedLoop c = compileForCertify(2, CopyModel::Embedded, 0);
  ASSERT_TRUE(certifyVirtual(c, c.code).ok());
  bool caught = false;
  int tried = 0;
  for (std::size_t cy = 0; cy < c.code.instrs.size() && !caught; ++cy) {
    for (std::size_t s = 0; s < c.code.instrs[cy].ops.size() && !caught; ++s) {
      const EmittedOp& eo = c.code.instrs[cy].ops[s];
      if (eo.fu < 0 || isCopy(eo.op.op) || eo.op.numSrcs() == 0) continue;
      if (++tried > 40) break;
      PipelinedCode broken = c.code;
      broken.instrs[cy].ops[s].fu =
          (eo.fu + c.machine.fusPerCluster) % c.machine.width();
      const CertifyReport rep = certifyVirtual(c, broken);
      caught = !rep.ok() && hasDiag(rep, DiagCode::CertifyResidence);
    }
  }
  ASSERT_GT(tried, 0);
  EXPECT_TRUE(caught);
}

TEST(Certifier, EpilogueOffByOneIsCaught) {
  // Drop the LAST final-iteration definition of an original body op — the
  // classic drain-one-stage-short emission bug. The stream then never
  // computes that value's final instance.
  const CertifiedLoop c = compileForCertify(2, CopyModel::CopyUnit, 1);
  ASSERT_TRUE(certifyVirtual(c, c.code).ok());
  PipelinedCode broken = c.code;
  int lastCy = -1, lastSlot = -1;
  for (std::size_t cy = 0; cy < broken.instrs.size(); ++cy) {
    for (std::size_t s = 0; s < broken.instrs[cy].ops.size(); ++s) {
      const EmittedOp& eo = broken.instrs[cy].ops[s];
      if (!eo.op.def.isValid() || eo.iteration != broken.trip - 1) continue;
      if (eo.bodyIndex < 0 ||
          static_cast<std::size_t>(eo.bodyIndex) >= c.clustered.origIndexOf.size() ||
          c.clustered.origIndexOf[static_cast<std::size_t>(eo.bodyIndex)] < 0)
        continue;  // copies are not tracked finals; skip them
      lastCy = static_cast<int>(cy);
      lastSlot = static_cast<int>(s);
    }
  }
  ASSERT_GE(lastCy, 0);
  broken.instrs[static_cast<std::size_t>(lastCy)].ops.erase(
      broken.instrs[static_cast<std::size_t>(lastCy)].ops.begin() + lastSlot);
  const CertifyReport rep = certifyVirtual(c, broken);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(hasDiag(rep, DiagCode::CertifyDivergence)) << rep.firstError();
}

}  // namespace
}  // namespace rapt
