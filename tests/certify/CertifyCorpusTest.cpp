// The ISSUE's corpus acceptance criterion: the paper's 211-loop workload
// certifies with zero violations on all six paper machine configurations.
// The default run strides the corpus to keep the suite fast; CI's
// certify-corpus job sets RAPT_CERTIFY_FULL=1 to cover every loop.
#include <gtest/gtest.h>

#include <cstdlib>

#include "pipeline/CompilerPipeline.h"
#include "workload/LoopGenerator.h"

namespace rapt {
namespace {

struct Config {
  int clusters;
  CopyModel model;
};

class CertifyCorpus : public ::testing::TestWithParam<Config> {};

TEST_P(CertifyCorpus, ZeroViolations) {
  const GeneratorParams params;
  const int stride = std::getenv("RAPT_CERTIFY_FULL") ? 1 : 7;
  const MachineDesc machine =
      MachineDesc::paper16(GetParam().clusters, GetParam().model);
  PipelineOptions options;
  options.simulate = false;  // the purely static path
  options.certify = true;
  for (int i = 0; i < params.count; i += stride) {
    const LoopResult r = compileLoop(generateLoop(params, i), machine, options);
    ASSERT_TRUE(r.ok) << "corpus " << i << " on " << machine.name << ": "
                      << r.error;
    EXPECT_TRUE(r.certified) << "corpus " << i << " on " << machine.name;
    EXPECT_EQ(r.trace.certifyViolations, 0)
        << "corpus " << i << " on " << machine.name;
    EXPECT_GT(r.trace.certifiedValues, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperConfigs, CertifyCorpus,
    ::testing::Values(Config{2, CopyModel::Embedded}, Config{2, CopyModel::CopyUnit},
                      Config{4, CopyModel::Embedded}, Config{4, CopyModel::CopyUnit},
                      Config{8, CopyModel::Embedded}, Config{8, CopyModel::CopyUnit}),
    [](const ::testing::TestParamInfo<Config>& p) {
      return std::to_string(p.param.clusters) +
             (p.param.model == CopyModel::Embedded ? "Embedded" : "CopyUnit");
    });

}  // namespace
}  // namespace rapt
