// Shared plumbing for the certifier tests: runs the real pipeline stages by
// hand (ideal schedule -> greedy partition -> copy insertion -> clustered
// schedule -> emission -> bank assignment) so tests can corrupt any
// intermediate — the emitted stream, the MVE renaming, or the physical
// assignment — and check that the static certifier catches exactly that.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "certify/Certifier.h"
#include "ddg/Ddg.h"
#include "partition/CopyInserter.h"
#include "partition/GreedyPartitioner.h"
#include "partition/Rcg.h"
#include "pipeline/CompilerPipeline.h"
#include "regalloc/BankAssigner.h"
#include "regalloc/PhysicalRewrite.h"
#include "sched/ModuloScheduler.h"
#include "sched/PipelinedCode.h"
#include "workload/LoopGenerator.h"

#include <gtest/gtest.h>

namespace rapt {

struct CertifiedLoop {
  Loop loop;
  MachineDesc machine;
  ClusteredLoop clustered;
  Ddg cddg;
  ModuloSchedule sched;
  PipelinedCode code;      ///< virtual-name stream
  BankAssignment alloc;    ///< bank + index assignment for `code`
};

/// Compiles `loop` for `machine` through every stage the certifier audits.
/// Monolithic machines take the same path with a trivial one-bank partition.
inline CertifiedLoop compileLoopForCertify(Loop loop, MachineDesc machine,
                                           std::int64_t trip = 16) {
  const Ddg ddg = Ddg::build(loop, machine.lat);
  const MachineDesc ideal = idealCounterpart(machine);
  const std::vector<OpConstraint> freeConstraints(loop.size());
  const ModuloSchedulerResult idealRes = moduloSchedule(ddg, ideal, freeConstraints);
  EXPECT_TRUE(idealRes.success);

  const RcgWeights weights;
  const Rcg rcg = Rcg::build(loop, ddg, idealRes.schedule, weights);
  const Partition partition = greedyPartition(rcg, machine.numBanks(), weights);

  ClusteredLoop clustered = insertCopies(loop, partition, machine);
  Ddg cddg = Ddg::build(clustered.loop, machine.lat);
  ModuloSchedulerResult res = moduloSchedule(cddg, machine, clustered.constraints);
  EXPECT_TRUE(res.success);

  trip = std::max<std::int64_t>(trip, res.schedule.stageCount() + 4);
  PipelinedCode code =
      emitPipelinedCode(clustered.loop, cddg, res.schedule, trip, machine.lat);
  BankAssignment alloc = assignBanks(code, clustered.partition, machine);
  EXPECT_TRUE(alloc.success);

  return CertifiedLoop{std::move(loop),         std::move(machine),
                       std::move(clustered),    std::move(cddg),
                       std::move(res.schedule), std::move(code),
                       std::move(alloc)};
}

/// Corpus loop `index` on the given paper machine.
inline CertifiedLoop compileForCertify(int clusters, CopyModel model, int index = 0,
                                       std::int64_t trip = 16) {
  const GeneratorParams params;
  return compileLoopForCertify(generateLoop(params, index),
                               MachineDesc::paper16(clusters, model), trip);
}

[[nodiscard]] inline CertifyReport certifyVirtual(const CertifiedLoop& c,
                                                  const PipelinedCode& code) {
  return certifyStream(c.loop, c.clustered, code, c.machine, CertifyLayer::Virtual);
}

[[nodiscard]] inline CertifyReport certifyPhysical(const CertifiedLoop& c,
                                                   const PipelinedCode& phys) {
  return certifyStream(c.loop, c.clustered, phys, c.machine, CertifyLayer::Physical);
}

[[nodiscard]] inline bool hasDiag(const CertifyReport& r, DiagCode code) {
  for (const Diagnostic& d : r.diagnostics)
    if (d.code == code) return true;
  return false;
}

/// First (cycle, slot) whose EmittedOp satisfies `pred`, or (-1, -1).
[[nodiscard]] inline std::pair<int, int> findOp(
    const PipelinedCode& code,
    const std::function<bool(const EmittedOp&)>& pred) {
  for (std::size_t cy = 0; cy < code.instrs.size(); ++cy)
    for (std::size_t s = 0; s < code.instrs[cy].ops.size(); ++s)
      if (pred(code.instrs[cy].ops[s]))
        return {static_cast<int>(cy), static_cast<int>(s)};
  return {-1, -1};
}

}  // namespace rapt
