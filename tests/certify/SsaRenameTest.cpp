#include "certify/SsaRename.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "CertifyTestUtil.h"
#include "vliwsim/Equivalence.h"
#include "vliwsim/VliwSimulator.h"
#include "workload/Kernels.h"

namespace rapt {
namespace {

[[nodiscard]] int maxDefsPerName(const PipelinedCode& code) {
  std::unordered_map<std::uint32_t, int> defs;
  int worst = 0;
  for (const VliwInstr& in : code.instrs)
    for (const EmittedOp& eo : in.ops)
      if (eo.op.def.isValid()) worst = std::max(worst, ++defs[eo.op.def.key()]);
  return worst;
}

TEST(SsaRename, PhysicalStreamBecomesSingleAssignment) {
  // Physical registers are reused aggressively; after the rename every def
  // instance owns a fresh name (the property that makes the full register
  // equivalence check sound on allocated code).
  const CertifiedLoop c = compileLoopForCertify(classicKernel("daxpy"),
                                               MachineDesc::ideal16(), 24);
  const PipelinedCode phys = applyPhysicalAssignment(c.code, c.alloc);
  EXPECT_GT(maxDefsPerName(phys), 1);
  const PipelinedCode ssa = ssaRename(phys, c.loop, c.machine.lat);
  EXPECT_EQ(maxDefsPerName(ssa), 1);
}

TEST(SsaRename, VirtualMveNamesAlsoBecomeSingleAssignment) {
  // MVE names rotate: a value with q names reuses each every q iterations,
  // so even the virtual stream is not SSA over the whole window.
  const CertifiedLoop c = compileForCertify(4, CopyModel::Embedded, 3);
  ASSERT_GT(maxDefsPerName(c.code), 1);
  const PipelinedCode ssa = ssaRename(c.code, c.clustered.loop, c.machine.lat);
  EXPECT_EQ(maxDefsPerName(ssa), 1);
}

TEST(SsaRename, RenamedClusteredPhysicalStreamPassesFullEquivalence) {
  // End-to-end on a clustered machine: allocate, rename, simulate, and run
  // the FULL dynamic check (memory AND register finals) — the gap satellite 1
  // closes.
  for (int index : {0, 5, 9}) {
    const CertifiedLoop c = compileForCertify(4, CopyModel::CopyUnit, index);
    const PipelinedCode phys = applyPhysicalAssignment(c.code, c.alloc);
    const PipelinedCode ssa = ssaRename(phys, c.clustered.loop, c.machine.lat);
    const SimResult sim = simulate(ssa, c.clustered.loop, c.machine);
    const EquivalenceReport eq = checkEquivalence(c.loop, ssa, sim);
    EXPECT_TRUE(eq.equal) << "corpus " << index << ": " << eq.detail;
  }
}

TEST(SsaRename, StreamShapeIsPreserved) {
  const CertifiedLoop c = compileForCertify(2, CopyModel::Embedded, 1);
  const PipelinedCode phys = applyPhysicalAssignment(c.code, c.alloc);
  const PipelinedCode ssa = ssaRename(phys, c.clustered.loop, c.machine.lat);
  ASSERT_EQ(ssa.instrs.size(), phys.instrs.size());
  EXPECT_EQ(ssa.ii, phys.ii);
  EXPECT_EQ(ssa.trip, phys.trip);
  for (std::size_t cy = 0; cy < ssa.instrs.size(); ++cy) {
    ASSERT_EQ(ssa.instrs[cy].ops.size(), phys.instrs[cy].ops.size());
    for (std::size_t s = 0; s < ssa.instrs[cy].ops.size(); ++s) {
      const EmittedOp& a = ssa.instrs[cy].ops[s];
      const EmittedOp& b = phys.instrs[cy].ops[s];
      EXPECT_EQ(a.op.op, b.op.op);
      EXPECT_EQ(a.fu, b.fu);
      EXPECT_EQ(a.iteration, b.iteration);
      EXPECT_EQ(a.bodyIndex, b.bodyIndex);
    }
  }
}

}  // namespace
}  // namespace rapt
