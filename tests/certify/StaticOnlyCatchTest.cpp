// Pins the corruption classes the ISSUE requires to be caught ONLY by the
// static certifier: defects the concrete-input simulator + equivalence check
// provably cannot see, because the dynamic check either runs on SSA-renamed
// streams (live-out clobbers disappear in the rename) or on concrete inputs
// (two live-ins that happen to share a value are indistinguishable).
#include <gtest/gtest.h>

#include "CertifyTestUtil.h"
#include "certify/SsaRename.h"
#include "vliwsim/Equivalence.h"
#include "vliwsim/VliwSimulator.h"
#include "workload/Kernels.h"

namespace rapt {
namespace {

TEST(StaticOnlyCatch, SyntheticLiveOutClobberRaisesAWarning) {
  // Overwrite the physical register holding a live-out AFTER its final value
  // landed. Memory is untouched and every intermediate read already consumed
  // the value, so no execution trace changes — only the static residence walk
  // notices the architectural live-out is gone.
  const CertifiedLoop c = compileLoopForCertify(classicKernel("daxpy"),
                                               MachineDesc::ideal16(), 24);
  PipelinedCode phys = applyPhysicalAssignment(c.code, c.alloc);
  ASSERT_TRUE(certifyPhysical(c, phys).ok());

  // The latest-landing final-iteration def of a real body op: its physical
  // register carries that value out of the loop.
  VirtReg victim;
  int bestLand = -1;
  for (std::size_t cy = 0; cy < phys.instrs.size(); ++cy) {
    for (const EmittedOp& eo : phys.instrs[cy].ops) {
      if (!eo.op.def.isValid() || eo.iteration != phys.trip - 1) continue;
      const int land = static_cast<int>(cy) + c.machine.lat.of(eo.op.op);
      if (land > bestLand) {
        bestLand = land;
        victim = eo.op.def;
      }
    }
  }
  ASSERT_TRUE(victim.isValid());

  // Clobber far past every landing in the stream.
  for (int i = 0; i < 8; ++i) phys.instrs.emplace_back();
  EmittedOp clobber;
  clobber.op = victim.isInt() ? makeIConst(victim, 42) : makeFConst(victim, 42.0);
  clobber.fu = 0;
  clobber.iteration = 0;
  clobber.bodyIndex = -1;
  phys.instrs.emplace_back();
  phys.instrs.back().ops.push_back(clobber);

  const CertifyReport rep = certifyPhysical(c, phys);
  EXPECT_TRUE(rep.ok()) << rep.firstError();  // a warning, not an error
  ASSERT_TRUE(hasDiag(rep, DiagCode::CertifyLiveOutClobber));
  for (const Diagnostic& d : rep.diagnostics) {
    if (d.code == DiagCode::CertifyLiveOutClobber) {
      EXPECT_EQ(d.severity, DiagSeverity::Warning);
    }
  }
}

TEST(StaticOnlyCatch, RealAllocationsClobberLiveOutsInvisiblyToTheSimulator) {
  // Prefix-reuse allocations legally overwrite live-out registers after their
  // last in-loop read; the dynamic path (SSA rename + simulate + full
  // equivalence) validates such streams, so the certifier's warning is the
  // ONLY signal. Find a real one and pin both halves.
  bool found = false;
  for (int index = 0; index < 24 && !found; ++index) {
    const CertifiedLoop c = compileForCertify(4, CopyModel::Embedded, index);
    const PipelinedCode phys = applyPhysicalAssignment(c.code, c.alloc);
    const CertifyReport rep = certifyPhysical(c, phys);
    ASSERT_TRUE(rep.ok()) << rep.firstError();
    if (!hasDiag(rep, DiagCode::CertifyLiveOutClobber)) continue;
    found = true;
    const PipelinedCode ssa = ssaRename(phys, c.clustered.loop, c.machine.lat);
    const SimResult sim = simulate(ssa, c.clustered.loop, c.machine);
    const EquivalenceReport eq = checkEquivalence(c.loop, ssa, sim);
    EXPECT_TRUE(eq.equal) << eq.detail;
  }
  EXPECT_TRUE(found) << "no corpus allocation with a live-out clobber warning";
}

TEST(StaticOnlyCatch, SwappedEquallyInitializedLiveInsCaughtOnlyStatically) {
  // Two live-ins carry the SAME concrete value; a corrupted stream reads b
  // where the loop says a. Every concrete execution the simulator can run is
  // bit-identical, but the symbolic proof distinguishes init(a) from init(b).
  Loop loop;
  loop.name = "swap";
  loop.trip = 16;
  const ArrayId y = loop.addArray("y", 64, false);
  const VirtReg iv = intReg(0), a = intReg(1), b = intReg(2), s = intReg(3);
  loop.induction = iv;
  loop.body.push_back(makeBinary(Opcode::IAdd, s, a, b));
  loop.body.push_back(makeStore(Opcode::IStore, y, iv, s));
  loop.body.push_back(makeUnary(Opcode::IAddImm, iv, iv, 1));
  loop.liveInValues = {{a, 5, 0.0}, {b, 5, 0.0}, {iv, 0, 0.0}};
  ASSERT_FALSE(validate(loop).has_value());

  const CertifiedLoop c =
      compileLoopForCertify(loop, MachineDesc::ideal16(), 16);
  ASSERT_TRUE(certifyVirtual(c, c.code).ok());

  PipelinedCode broken = c.code;
  int swapped = 0;
  for (VliwInstr& in : broken.instrs) {
    for (EmittedOp& eo : in.ops) {
      if (eo.op.op == Opcode::IAdd && eo.op.src[0] == a) {
        eo.op.src[0] = b;
        ++swapped;
      }
    }
  }
  ASSERT_GT(swapped, 0);

  // Dynamic: simulation + full equivalence is blind — 5 + 5 == 5 + 5.
  const SimResult sim = simulate(broken, c.clustered.loop, c.machine);
  ASSERT_TRUE(sim.ok) << sim.error;
  const EquivalenceReport eq = checkEquivalence(c.loop, broken, sim);
  EXPECT_TRUE(eq.equal) << eq.detail;

  // Static: init(a) and init(b) are distinct symbols — caught for ALL inputs.
  const CertifyReport rep = certifyVirtual(c, broken);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(hasDiag(rep, DiagCode::CertifyDivergence)) << rep.firstError();
}

}  // namespace
}  // namespace rapt
