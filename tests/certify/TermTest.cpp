#include "certify/Term.h"

#include <gtest/gtest.h>

namespace rapt {
namespace {

// Hash-consing is the whole proof mechanism: two symbolic executions agree
// for all inputs exactly when they intern the same id. These tests pin the
// algebraic identities the certifier relies on.

TEST(Term, LeavesIntern) {
  TermArena a;
  EXPECT_EQ(a.intConst(5), a.intConst(5));
  EXPECT_NE(a.intConst(5), a.intConst(6));
  EXPECT_EQ(a.fltConst(1.5), a.fltConst(1.5));
  EXPECT_NE(a.fltConst(1.5), a.fltConst(-1.5));
  EXPECT_EQ(a.initReg(intReg(3)), a.initReg(intReg(3)));
  EXPECT_NE(a.initReg(intReg(3)), a.initReg(intReg(4)));
  EXPECT_NE(a.initReg(intReg(3)), a.initReg(fltReg(3)));
  EXPECT_EQ(a.arrayInit(0), a.arrayInit(0));
  EXPECT_NE(a.arrayInit(0), a.arrayInit(1));
}

TEST(Term, UninitNeverMatchesAnInitializer) {
  TermArena a;
  // Unique per NAME (stable within one), distinct from the init symbol of
  // the same register — an uninitialized read can never prove equal.
  EXPECT_EQ(a.uninit(intReg(7)), a.uninit(intReg(7)));
  EXPECT_NE(a.uninit(intReg(7)), a.uninit(intReg(8)));
  EXPECT_NE(a.uninit(intReg(7)), a.initReg(intReg(7)));
}

TEST(Term, CopiesAreValueTransparent) {
  TermArena a;
  const TermId v = a.initReg(fltReg(2));
  EXPECT_EQ(a.apply(makeCopy(fltReg(9), fltReg(2)), v, kNoTerm), v);
  EXPECT_EQ(a.apply(makeCopy(intReg(9), intReg(2)), a.initReg(intReg(2)), kNoTerm),
            a.initReg(intReg(2)));
  EXPECT_EQ(a.apply(makeUnary(Opcode::IMov, intReg(9), intReg(2)),
                    a.initReg(intReg(2)), kNoTerm),
            a.initReg(intReg(2)));
  EXPECT_EQ(a.apply(makeUnary(Opcode::FMov, fltReg(9), fltReg(2)), v, kNoTerm), v);
}

TEST(Term, AllConstantOperandsFold) {
  TermArena a;
  const TermId sum = a.apply(makeBinary(Opcode::IAdd, intReg(5), intReg(1), intReg(2)),
                             a.intConst(2), a.intConst(3));
  EXPECT_EQ(sum, a.intConst(5));
  const TermId shifted = a.apply(makeUnary(Opcode::IAddImm, intReg(5), intReg(1), 10),
                                 a.intConst(32), kNoTerm);
  EXPECT_EQ(shifted, a.intConst(42));
}

TEST(Term, SymbolicOpsInternStructurally) {
  TermArena a;
  const TermId x = a.initReg(intReg(1));
  const TermId y = a.initReg(intReg(2));
  const Operation add = makeBinary(Opcode::IAdd, intReg(5), intReg(1), intReg(2));
  EXPECT_EQ(a.apply(add, x, y), a.apply(add, x, y));
  EXPECT_NE(a.apply(add, x, y), a.apply(add, y, x));
  const Operation sub = makeBinary(Opcode::ISub, intReg(5), intReg(1), intReg(2));
  EXPECT_NE(a.apply(add, x, y), a.apply(sub, x, y));
}

TEST(Term, AddImmCanonicalizes) {
  TermArena a;
  const TermId x = a.initReg(intReg(1));
  EXPECT_EQ(a.addImm(x, 0), x);
  EXPECT_EQ(a.addImm(a.intConst(4), 3), a.intConst(7));
  // The affine view exposes base + offset so disaliasing can compare cells.
  const TermId x2 = a.addImm(x, 2);
  EXPECT_EQ(a.node(x2).affBase, x);
  EXPECT_EQ(a.node(x2).affOff, 2);
}

TEST(Term, DisjointStoresBubbleIntoCanonicalOrder) {
  TermArena a;
  const TermId h = a.arrayInit(0);
  const TermId i = a.initReg(intReg(1));
  const TermId i0 = a.addImm(i, 0);
  const TermId i1 = a.addImm(i, 1);
  const TermId v0 = a.initReg(fltReg(0));
  const TermId v1 = a.initReg(fltReg(1));
  // Same affine base, different constant offsets: provably distinct cells, so
  // both store orders intern to one normal form.
  EXPECT_TRUE(a.provablyDistinct(i0, i1));
  EXPECT_EQ(a.store(a.store(h, i0, v0), i1, v1),
            a.store(a.store(h, i1, v1), i0, v0));
  // Concrete indices disambiguate too.
  EXPECT_EQ(a.store(a.store(h, a.intConst(3), v0), a.intConst(4), v1),
            a.store(a.store(h, a.intConst(4), v1), a.intConst(3), v0));
}

TEST(Term, SameCellStoreOverwrites) {
  TermArena a;
  const TermId h = a.arrayInit(0);
  const TermId i = a.initReg(intReg(1));
  const TermId v0 = a.initReg(fltReg(0));
  const TermId v1 = a.initReg(fltReg(1));
  EXPECT_TRUE(a.sameCell(i, i));
  EXPECT_EQ(a.store(a.store(h, i, v0), i, v1), a.store(h, i, v1));
}

TEST(Term, SelectWalksPastDisjointStoresAndSticksOtherwise) {
  TermArena a;
  const TermId h = a.arrayInit(0);
  const TermId i = a.initReg(intReg(1));
  const TermId j = a.initReg(intReg(2));  // unrelated base: cannot disambiguate
  const TermId i1 = a.addImm(i, 1);
  const TermId v = a.initReg(fltReg(0));
  // Read of a[i] past a store to a[i+1]: provably disjoint, reads the initial
  // contents. Read of the stored cell returns the stored value.
  EXPECT_EQ(a.select(a.store(h, i1, v), i), a.select(h, i));
  EXPECT_EQ(a.select(a.store(h, i, v), i), v);
  // Read at an unrelated symbolic index sticks at the store.
  const TermId stuck = a.select(a.store(h, i, v), j);
  EXPECT_EQ(a.node(stuck).kind, TermKind::Select);
  EXPECT_EQ(a.node(stuck).a, a.store(h, i, v));
}

TEST(Term, FirstDivergencePointsAtTheDeepestDisagreement) {
  TermArena a;
  const Operation add = makeBinary(Opcode::FAdd, fltReg(5), fltReg(1), fltReg(2));
  const TermId one = a.fltConst(1.0);
  const TermId ref = a.apply(add, a.initReg(fltReg(1)), one);
  const TermId got = a.apply(add, a.initReg(fltReg(2)), one);
  const TermDivergence d = firstDivergence(a, ref, got);
  EXPECT_EQ(d.ref, a.initReg(fltReg(1)));
  EXPECT_EQ(d.got, a.initReg(fltReg(2)));
  // Equal terms have no divergence.
  const TermDivergence same = firstDivergence(a, ref, ref);
  EXPECT_EQ(same.ref, kNoTerm);
  EXPECT_EQ(same.got, kNoTerm);
}

TEST(Term, StrRendersReadably) {
  TermArena a;
  const TermId t = a.apply(makeBinary(Opcode::FAdd, fltReg(5), fltReg(1), fltReg(2)),
                           a.initReg(fltReg(1)), a.initReg(fltReg(2)));
  const std::string s = a.str(t);
  EXPECT_NE(s.find("fadd"), std::string::npos);
  EXPECT_NE(s.find("init"), std::string::npos);
}

}  // namespace
}  // namespace rapt
