#include "ddg/AffineIndex.h"

#include <gtest/gtest.h>

#include "ir/Parser.h"

namespace rapt {
namespace {

/// The affine value of the index expression of the memory op at `pos`.
AffineVal addrOf(const Loop& loop, int pos) {
  const auto accesses = analyzeMemAccesses(loop);
  EXPECT_EQ(accesses[pos].opIndex, pos);
  return accesses[pos].addr;
}

TEST(AffineIndex, InductionIsIterationNumber) {
  const Loop loop = parseLoop(R"(
    loop l { array x[8] flt
      induction i0
      f1 = fload x[i0]
    })");
  const AffineVal v = addrOf(loop, 0);
  ASSERT_TRUE(v.known);
  EXPECT_TRUE(v.hasIV);
  EXPECT_EQ(v.invKey, AffineVal::kNoInv);
  EXPECT_EQ(v.offset, 0);
}

TEST(AffineIndex, ConstantOffsetFolded) {
  const Loop loop = parseLoop(R"(
    loop l { array x[8] flt
      induction i0
      f1 = fload x[i0 + 3]
      f2 = fload x[i0 - 2]
    })");
  EXPECT_EQ(addrOf(loop, 0).offset, 3);
  EXPECT_EQ(addrOf(loop, 1).offset, -2);
}

TEST(AffineIndex, DerivedIndexThroughIAddi) {
  const Loop loop = parseLoop(R"(
    loop l { array x[8] flt
      induction i0
      i1 = iaddi i0, 5
      f1 = fload x[i1]
    })");
  const AffineVal v = addrOf(loop, 1);
  ASSERT_TRUE(v.known);
  EXPECT_TRUE(v.hasIV);
  EXPECT_EQ(v.offset, 5);
}

TEST(AffineIndex, MovAndCopyPreserveValue) {
  const Loop loop = parseLoop(R"(
    loop l { array x[8] flt
      induction i0
      i1 = imov i0
      i2 = icpy i1
      f1 = fload x[i2 + 1]
    })");
  const AffineVal v = addrOf(loop, 2);
  ASSERT_TRUE(v.known);
  EXPECT_TRUE(v.hasIV);
  EXPECT_EQ(v.offset, 1);
}

TEST(AffineIndex, InvariantBase) {
  const Loop loop = parseLoop(R"(
    loop l { array x[8] flt
      livein i5 = 3
      f1 = fload x[i5]
      f2 = fload x[i5 + 2]
    })");
  const AffineVal a = addrOf(loop, 0);
  const AffineVal b = addrOf(loop, 1);
  ASSERT_TRUE(a.known);
  EXPECT_FALSE(a.hasIV);
  EXPECT_EQ(a.invKey, intReg(5).key());
  EXPECT_TRUE(a.comparableWith(b));
  EXPECT_EQ(b.offset - a.offset, 2);
}

TEST(AffineIndex, InductionPlusInvariant) {
  const Loop loop = parseLoop(R"(
    loop l { array x[32] flt
      induction i0
      livein i1 = 4
      i2 = iadd i0, i1
      f1 = fload x[i2]
    })");
  const AffineVal v = addrOf(loop, 1);
  ASSERT_TRUE(v.known);
  EXPECT_TRUE(v.hasIV);
  EXPECT_EQ(v.invKey, intReg(1).key());
}

TEST(AffineIndex, SubtractingSameInvariantCancels) {
  const Loop loop = parseLoop(R"(
    loop l { array x[32] flt
      induction i0
      livein i1 = 4
      i2 = iadd i0, i1
      i3 = isub i2, i1
      f1 = fload x[i3]
    })");
  const AffineVal v = addrOf(loop, 2);
  ASSERT_TRUE(v.known);
  EXPECT_TRUE(v.hasIV);
  EXPECT_EQ(v.invKey, AffineVal::kNoInv);
  EXPECT_EQ(v.offset, 0);
}

TEST(AffineIndex, IvPlusIvIsUnknown) {
  const Loop loop = parseLoop(R"(
    loop l { array x[64] flt
      induction i0
      i1 = iadd i0, i0
      f1 = fload x[i1]
    })");
  EXPECT_FALSE(addrOf(loop, 1).known);
}

TEST(AffineIndex, LoadedIndexIsUnknown) {
  const Loop loop = parseLoop(R"(
    loop l { array idx[8] int
      array x[8] flt
      induction i0
      i1 = iload idx[i0]
      f1 = fload x[i1]
    })");
  EXPECT_TRUE(addrOf(loop, 0).known);
  EXPECT_FALSE(addrOf(loop, 1).known);
}

TEST(AffineIndex, CarriedUseReadsPreviousIteration) {
  // i1 = i0's value; a use of i1 placed before its def reads last iteration's
  // i1, i.e. (k-1)+0 -> offset -1 relative to this iteration's load of i0.
  const Loop loop = parseLoop(R"(
    loop l { array x[32] flt
      induction i0
      f1 = fload x[i1]
      i1 = imov i0
    })");
  const AffineVal v = addrOf(loop, 0);
  ASSERT_TRUE(v.known);
  EXPECT_TRUE(v.hasIV);
  EXPECT_EQ(v.offset, -1);
}

TEST(AffineIndex, SecondaryInductionRecognized) {
  const Loop loop = parseLoop(R"(
    loop l { array x[64] flt
      induction i0
      livein i1 = 10
      f1 = fload x[i1]
      i1 = iaddi i1, 1
    })");
  const AffineVal v = addrOf(loop, 0);
  ASSERT_TRUE(v.known);
  EXPECT_TRUE(v.hasIV);
  EXPECT_EQ(v.offset, 10);  // initial value folds into the offset
}

TEST(AffineIndex, NonUnitSelfIncrementIsUnknown) {
  const Loop loop = parseLoop(R"(
    loop l { array x[64] flt
      induction i0
      f1 = fload x[i1]
      i1 = iaddi i1, 2
    })");
  EXPECT_FALSE(addrOf(loop, 0).known);
}

TEST(AffineIndex, MultiplicationIsUnknown) {
  const Loop loop = parseLoop(R"(
    loop l { array x[64] flt
      induction i0
      livein i1 = 2
      i2 = imul i0, i1
      f1 = fload x[i2]
    })");
  EXPECT_FALSE(addrOf(loop, 1).known);
}

TEST(AffineIndex, ComparabilityRules) {
  AffineVal iv = AffineVal::constant(3);
  iv.hasIV = true;
  AffineVal iv2 = AffineVal::constant(8);
  iv2.hasIV = true;
  EXPECT_TRUE(iv.comparableWith(iv2));
  AffineVal c = AffineVal::constant(3);
  EXPECT_FALSE(iv.comparableWith(c));
  EXPECT_FALSE(AffineVal::unknown().comparableWith(c));
}

}  // namespace
}  // namespace rapt
