#include "ddg/Ddg.h"

#include <gtest/gtest.h>

#include "ir/Parser.h"
#include "workload/Kernels.h"

namespace rapt {
namespace {

const DdgEdge* findEdge(const Ddg& g, int from, int to, DepKind kind) {
  for (const DdgEdge& e : g.edges()) {
    if (e.from == from && e.to == to && e.kind == kind) return &e;
  }
  return nullptr;
}

LatencyTable paperLat() { return MachineDesc::paper16(4, CopyModel::Embedded).lat; }

TEST(Ddg, RegisterFlowSameIteration) {
  const Loop loop = parseLoop(R"(
    loop l { array x[8] flt
      induction i0
      f1 = fload x[i0]
      f2 = fmul f1, f1
    })");
  const Ddg g = Ddg::build(loop, paperLat());
  const DdgEdge* e = findEdge(g, 0, 1, DepKind::RegTrue);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->latency, 2);  // load latency
  EXPECT_EQ(e->distance, 0);
}

TEST(Ddg, RegisterFlowCarried) {
  const Loop loop = parseLoop(R"(
    loop l {
      livein f0 = 0.0
      livein f1 = 1.0
      f0 = fadd f0, f1
    })");
  const Ddg g = Ddg::build(loop, paperLat());
  const DdgEdge* e = findEdge(g, 0, 0, DepKind::RegTrue);
  ASSERT_NE(e, nullptr);  // self-recurrence
  EXPECT_EQ(e->distance, 1);
  EXPECT_EQ(e->latency, 2);  // fadd
  EXPECT_EQ(g.recII(), 2);
}

TEST(Ddg, InductionSelfEdge) {
  const Loop loop = parseLoop("loop l { array x[8] flt\n induction i0\n f1 = fload x[i0] }");
  const Ddg g = Ddg::build(loop, paperLat());
  const DdgEdge* e = findEdge(g, 1, 1, DepKind::RegTrue);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->distance, 1);
  EXPECT_EQ(e->latency, 1);  // iaddi
  EXPECT_EQ(g.recII(), 1);
}

TEST(Ddg, InvariantHasNoEdge) {
  const Loop loop = parseLoop("loop l { livein f0\n f1 = fmov f0 }");
  const Ddg g = Ddg::build(loop, paperLat());
  EXPECT_TRUE(g.edges().empty());
}

// ---- Memory dependences with exact distances. ----

struct MemCase {
  int storeOffset;
  int loadOffset;
  bool loadFirstInBody;
  // Expectation: direction ('T' store->load, 'A' load->store, 'N' none) and
  // distance.
  char kind;
  int distance;
};

class MemDistance : public ::testing::TestWithParam<MemCase> {};

TEST_P(MemDistance, ExactEdges) {
  const MemCase c = GetParam();
  Loop loop;
  const ArrayId x = loop.addArray("x", 64, true);
  loop.induction = intReg(0);
  loop.liveInValues.push_back({fltReg(0), 0, 1.0});
  int loadIdx, storeIdx;
  if (c.loadFirstInBody) {
    loadIdx = 0;
    storeIdx = 1;
    loop.body.push_back(makeLoad(Opcode::FLoad, fltReg(1), x, intReg(0), c.loadOffset));
    loop.body.push_back(makeStore(Opcode::FStore, x, intReg(0), fltReg(0), c.storeOffset));
  } else {
    storeIdx = 0;
    loadIdx = 1;
    loop.body.push_back(makeStore(Opcode::FStore, x, intReg(0), fltReg(0), c.storeOffset));
    loop.body.push_back(makeLoad(Opcode::FLoad, fltReg(1), x, intReg(0), c.loadOffset));
  }
  loop.body.push_back(makeUnary(Opcode::IAddImm, intReg(0), intReg(0), 1));
  ASSERT_FALSE(validate(loop).has_value());

  const Ddg g = Ddg::build(loop, paperLat());
  const DdgEdge* trueDep = findEdge(g, storeIdx, loadIdx, DepKind::MemTrue);
  const DdgEdge* antiDep = findEdge(g, loadIdx, storeIdx, DepKind::MemAnti);
  switch (c.kind) {
    case 'T':
      ASSERT_NE(trueDep, nullptr);
      EXPECT_EQ(trueDep->distance, c.distance);
      EXPECT_EQ(trueDep->latency, 4);  // store visibility latency
      EXPECT_EQ(antiDep, nullptr);
      break;
    case 'A':
      ASSERT_NE(antiDep, nullptr);
      EXPECT_EQ(antiDep->distance, c.distance);
      EXPECT_EQ(antiDep->latency, 1 - 4);
      EXPECT_EQ(trueDep, nullptr);
      break;
    case 'N':
      EXPECT_EQ(trueDep, nullptr);
      EXPECT_EQ(antiDep, nullptr);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MemDistance,
    ::testing::Values(
        // store x[i], later load x[i-1]: value read one iteration later.
        MemCase{0, -1, false, 'T', 1},
        // store x[i], later load x[i-3]
        MemCase{0, -3, false, 'T', 3},
        // load placed before the store, reading what the store wrote 2 back.
        MemCase{0, -2, true, 'T', 2},
        // store x[i], load x[i+2]: load ran 2 iterations earlier -> anti.
        MemCase{0, 2, false, 'A', 2},
        MemCase{0, 2, true, 'A', 2},
        // same element, same iteration: program order decides.
        MemCase{0, 0, false, 'T', 0},
        MemCase{0, 0, true, 'A', 0}));

TEST(Ddg, StoreStoreOutputDependence) {
  const Loop loop = parseLoop(R"(
    loop l { array x[64] flt
      induction i0
      livein f0
      fstore x[i0 + 1], f0
      fstore x[i0], f0
    })");
  const Ddg g = Ddg::build(loop, paperLat());
  // store x[i+1] at iter k and store x[i] at iter k+1 hit the same element.
  const DdgEdge* e = findEdge(g, 0, 1, DepKind::MemOutput);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->distance, 1);
}

TEST(Ddg, UnknownIndexIsConservative) {
  const Loop loop = parseLoop(R"(
    loop l { array idx[64] int
      array x[64] flt
      induction i0
      livein f0
      i1 = iload idx[i0]
      f1 = fload x[i1]
      fstore x[i0], f0
    })");
  const Ddg g = Ddg::build(loop, paperLat());
  // Unknown gather vs store: both a forward distance-0 edge and a backward
  // distance-1 edge must exist.
  EXPECT_NE(findEdge(g, 1, 2, DepKind::MemAnti), nullptr);
  EXPECT_NE(findEdge(g, 2, 1, DepKind::MemTrue), nullptr);
}

TEST(Ddg, ConstantAddressStoreSelfOutput) {
  const Loop loop = parseLoop(R"(
    loop l { array x[4] flt
      livein i1 = 0
      livein f0
      fstore x[i1], f0
    })");
  const Ddg g = Ddg::build(loop, paperLat());
  const DdgEdge* e = findEdge(g, 0, 0, DepKind::MemOutput);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->distance, 1);
}

TEST(Ddg, DistinctArraysNeverAlias) {
  const Loop loop = parseLoop(R"(
    loop l { array x[8] flt
      array y[8] flt
      induction i0
      livein f0
      f1 = fload x[i0]
      fstore y[i0], f0
    })");
  const Ddg g = Ddg::build(loop, paperLat());
  EXPECT_EQ(findEdge(g, 0, 1, DepKind::MemAnti), nullptr);
  EXPECT_EQ(findEdge(g, 1, 0, DepKind::MemTrue), nullptr);
}

TEST(Ddg, LoadLoadNeverDepends) {
  const Loop loop = parseLoop(R"(
    loop l { array x[8] flt
      induction i0
      f1 = fload x[i0]
      f2 = fload x[i0]
    })");
  const Ddg g = Ddg::build(loop, paperLat());
  for (const DdgEdge& e : g.edges())
    EXPECT_EQ(e.kind, DepKind::RegTrue);
}

// ---- MinII on known kernels. ----

TEST(Ddg, RecIIOfDotProduct) {
  const Ddg g = Ddg::build(classicKernel("dot"), paperLat());
  EXPECT_EQ(g.recII(), 2);  // fadd accumulator: 2 cycles / distance 1
}

TEST(Ddg, RecIIOfTridiag) {
  // load(2) -> fsub(2) -> fmul(2) -> store(4) -> load, distance 1.
  const Ddg g = Ddg::build(classicKernel("tridiag"), paperLat());
  EXPECT_EQ(g.recII(), 10);
}

TEST(Ddg, RecIIOfDaxpyIsOne) {
  const Ddg g = Ddg::build(classicKernel("daxpy"), paperLat());
  EXPECT_EQ(g.recII(), 1);
}

TEST(Ddg, ResIIScalesWithWidth) {
  const Loop daxpy = classicKernel("daxpy");  // 6 ops
  const Ddg g = Ddg::build(daxpy, paperLat());
  EXPECT_EQ(g.resII(MachineDesc::ideal16()), 1);
  MachineDesc narrow = MachineDesc::ideal16();
  narrow.fusPerCluster = 2;
  EXPECT_EQ(g.resII(narrow), 3);
}

TEST(Ddg, FeasibilityIsMonotone) {
  const Ddg g = Ddg::build(classicKernel("tridiag"), paperLat());
  const int rec = g.recII();
  EXPECT_FALSE(g.feasibleII(rec - 1));
  EXPECT_TRUE(g.feasibleII(rec));
  EXPECT_TRUE(g.feasibleII(rec + 5));
}

TEST(Ddg, HeightsDecreaseAlongCriticalPath) {
  const Loop loop = classicKernel("daxpy");
  const Ddg g = Ddg::build(loop, paperLat());
  const std::vector<int> h = g.heights(g.minII(MachineDesc::ideal16()));
  // fload x (op 0) -> fmul (1) -> fadd (3) -> fstore (4).
  EXPECT_GT(h[0], h[1]);
  EXPECT_GT(h[1], h[3]);
  EXPECT_GT(h[3], h[4]);
}

TEST(Ddg, FlexibilityOneOnCriticalPath) {
  const Loop loop = classicKernel("tridiag");
  const Ddg g = Ddg::build(loop, paperLat());
  // A legal schedule at II=10 exists with zero slack along the recurrence.
  // Build the trivially tight schedule: ASAP times.
  const std::vector<int> h = g.heights(10);
  int maxH = 0;
  for (int x : h) maxH = std::max(maxH, x);
  std::vector<int> cycle(g.numOps());
  for (int i = 0; i < g.numOps(); ++i) cycle[i] = maxH - h[i];
  const std::vector<int> flex = g.flexibility(cycle, 10, maxH);
  for (int f : flex) EXPECT_GE(f, 1);
}

}  // namespace
}  // namespace rapt
