#include <gtest/gtest.h>

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "pipeline/FunctionPipeline.h"
#include "workload/FunctionGenerator.h"

namespace rapt {
namespace {

constexpr const char* kDiamond = R"(
  function absdiff {
    array g[32] int
    block entry {
      i0 = iconst 10
      i1 = iconst 3
      i9 = iconst 0
    } -> big, small
    block big depth 1 {
      i2 = isub i0, i1
    } -> exit
    block small depth 1 {
      i3 = isub i1, i0
    } -> exit
    block exit {
      i4 = ior i2, i3
      istore g[i9], i4
    }
  })";

TEST(FunctionParser, ParsesDiamond) {
  const Function fn = parseFunction(kDiamond);
  EXPECT_EQ(fn.name, "absdiff");
  ASSERT_EQ(fn.numBlocks(), 4);
  EXPECT_EQ(fn.blocks[0].succs, (std::vector<int>{1, 2}));
  EXPECT_EQ(fn.blocks[1].succs, (std::vector<int>{3}));
  EXPECT_EQ(fn.blocks[2].succs, (std::vector<int>{3}));
  EXPECT_TRUE(fn.blocks[3].succs.empty());
  EXPECT_EQ(fn.blocks[1].nestingDepth, 1);
  EXPECT_EQ(fn.blocks[3].nestingDepth, 0);
  EXPECT_EQ(fn.arrays.size(), 1u);
  EXPECT_EQ(fn.blocks[0].ops.size(), 3u);
}

TEST(FunctionParser, ForwardReferencesResolve) {
  const Function fn = parseFunction(R"(
    function f {
      block a { i0 = iconst 1 } -> z
      block z { i1 = imov i0 }
    })");
  EXPECT_EQ(fn.blocks[0].succs, (std::vector<int>{1}));
}

TEST(FunctionParser, UnknownSuccessorThrows) {
  EXPECT_THROW((void)parseFunction(R"(
    function f {
      block a { i0 = iconst 1 } -> nowhere
    })"),
               ParseError);
}

TEST(FunctionParser, MultipleFunctions) {
  const auto fns = parseFunctions(R"(
    function f { block a { i0 = iconst 1 } }
    function g { block a { f0 = fconst 1.5 } }
  )");
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0].name, "f");
  EXPECT_EQ(fns[1].name, "g");
}

TEST(FunctionParser, RoundTripsThroughPrinter) {
  const Function fn = parseFunction(kDiamond);
  const std::string text = printFunction(fn);
  const Function reparsed = parseFunction(text);
  EXPECT_EQ(printFunction(reparsed), text);
  EXPECT_EQ(reparsed.numBlocks(), fn.numBlocks());
}

TEST(FunctionParser, GeneratedFunctionsRoundTrip) {
  for (int idx : {0, 5}) {
    const Function fn = generateFunction(FunctionGenParams{}, idx);
    const std::string text = printFunction(fn);
    const Function reparsed = parseFunction(text);
    EXPECT_EQ(printFunction(reparsed), text) << fn.name;
  }
}

TEST(FunctionParser, ParsedFunctionCompiles) {
  const Function fn = parseFunction(kDiamond);
  const FunctionResult r =
      compileFunction(fn, MachineDesc::paper16(2, CopyModel::Embedded));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.validated);
}

}  // namespace
}  // namespace rapt
