#include "ir/Loop.h"

#include <gtest/gtest.h>

namespace rapt {
namespace {

Loop simpleLoop() {
  Loop loop;
  loop.name = "t";
  const ArrayId x = loop.addArray("x", 64, true);
  loop.induction = intReg(0);
  loop.body.push_back(makeLoad(Opcode::FLoad, fltReg(1), x, intReg(0)));
  loop.body.push_back(makeBinary(Opcode::FMul, fltReg(2), fltReg(1), fltReg(0)));
  loop.body.push_back(makeStore(Opcode::FStore, x, intReg(0), fltReg(2)));
  loop.body.push_back(makeUnary(Opcode::IAddImm, intReg(0), intReg(0), 1));
  return loop;
}

TEST(Loop, ValidatesCleanLoop) {
  EXPECT_FALSE(validate(simpleLoop()).has_value());
}

TEST(Loop, DefPos) {
  const Loop loop = simpleLoop();
  EXPECT_EQ(loop.defPos(fltReg(1)), 0);
  EXPECT_EQ(loop.defPos(fltReg(2)), 1);
  EXPECT_EQ(loop.defPos(intReg(0)), 3);
  EXPECT_FALSE(loop.defPos(fltReg(0)).has_value());  // invariant
}

TEST(Loop, Invariants) {
  const Loop loop = simpleLoop();
  const auto inv = loop.invariants();
  ASSERT_EQ(inv.size(), 1u);
  EXPECT_EQ(inv[0], fltReg(0));
}

TEST(Loop, CarriedUse) {
  const Loop loop = simpleLoop();
  // Loads at position 0 use i0, defined at position 3 -> carried.
  EXPECT_TRUE(loop.isCarriedUse(0, intReg(0)));
  // fmul at position 1 uses f1 defined at position 0 -> same iteration.
  EXPECT_FALSE(loop.isCarriedUse(1, fltReg(1)));
  // The induction update uses itself -> carried.
  EXPECT_TRUE(loop.isCarriedUse(3, intReg(0)));
}

TEST(Loop, FreshRegSkipsEverything) {
  Loop loop = simpleLoop();
  EXPECT_EQ(loop.freshReg(RegClass::Flt), fltReg(3));
  EXPECT_EQ(loop.freshReg(RegClass::Int), intReg(1));
  loop.liveInValues.push_back({fltReg(9), 0, 1.0});
  EXPECT_EQ(loop.freshReg(RegClass::Flt), fltReg(10));
}

TEST(Loop, AllRegsSortedUnique) {
  const Loop loop = simpleLoop();
  const auto regs = loop.allRegs();
  EXPECT_EQ(regs.size(), 4u);  // i0, f0, f1, f2
  for (std::size_t i = 1; i < regs.size(); ++i) EXPECT_LT(regs[i - 1], regs[i]);
}

// ---- validation failures ----

TEST(LoopValidate, DoubleDefinitionRejected) {
  Loop loop = simpleLoop();
  loop.body.push_back(makeBinary(Opcode::FAdd, fltReg(2), fltReg(1), fltReg(1)));
  const auto err = validate(loop);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("more than once"), std::string::npos);
}

TEST(LoopValidate, ClassMismatchRejected) {
  Loop loop = simpleLoop();
  Operation bad = makeBinary(Opcode::FAdd, fltReg(5), fltReg(1), fltReg(2));
  bad.src[0] = intReg(0);  // wrong class
  loop.body.insert(loop.body.begin() + 2, bad);
  const auto err = validate(loop);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("class mismatch"), std::string::npos);
}

TEST(LoopValidate, MissingSourceRejected) {
  Loop loop = simpleLoop();
  Operation bad = makeBinary(Opcode::FAdd, fltReg(5), fltReg(1), fltReg(2));
  bad.src[1] = VirtReg{};
  loop.body.insert(loop.body.begin() + 2, bad);
  ASSERT_TRUE(validate(loop).has_value());
}

TEST(LoopValidate, UnknownArrayRejected) {
  Loop loop = simpleLoop();
  loop.body[0].array = 5;
  const auto err = validate(loop);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("unknown array"), std::string::npos);
}

TEST(LoopValidate, ArrayElementTypeMismatchRejected) {
  Loop loop = simpleLoop();
  loop.addArray("ints", 8, false);
  loop.body.push_back(makeLoad(Opcode::FLoad, fltReg(7), 1, intReg(0)));
  const auto err = validate(loop);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("element type"), std::string::npos);
}

TEST(LoopValidate, InductionMustBeUpdatedCanonically) {
  Loop loop = simpleLoop();
  loop.body[3].imm = 2;  // stride 2 breaks the canonical update
  const auto err = validate(loop);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("induction update"), std::string::npos);
}

TEST(LoopValidate, InductionNeverUpdatedRejected) {
  Loop loop = simpleLoop();
  loop.body.pop_back();
  const auto err = validate(loop);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("never updated"), std::string::npos);
}

TEST(LoopValidate, MissingDefRejected) {
  Loop loop = simpleLoop();
  loop.body[1].def = VirtReg{};
  ASSERT_TRUE(validate(loop).has_value());
}

TEST(LoopValidate, LoopWithoutInductionIsFine) {
  Loop loop;
  loop.body.push_back(makeBinary(Opcode::FAdd, fltReg(0), fltReg(1), fltReg(1)));
  EXPECT_FALSE(validate(loop).has_value());
}

}  // namespace
}  // namespace rapt
