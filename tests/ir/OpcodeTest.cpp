#include "ir/Opcode.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace rapt {
namespace {

std::vector<Opcode> allOpcodes() {
  std::vector<Opcode> ops;
  for (int i = 0; i < kNumOpcodes; ++i) ops.push_back(static_cast<Opcode>(i));
  return ops;
}

class EveryOpcode : public ::testing::TestWithParam<Opcode> {};

TEST_P(EveryOpcode, NameRoundTripsThroughLookup) {
  const Opcode op = GetParam();
  EXPECT_EQ(opcodeFromName(opcodeName(op)), op);
}

TEST_P(EveryOpcode, StructurallyConsistent) {
  const OpcodeInfo& info = opcodeInfo(GetParam());
  EXPECT_FALSE(info.name.empty());
  EXPECT_LE(info.numSrcs, 2);
  // Immediate flags are mutually exclusive.
  EXPECT_FALSE(info.hasImm && info.hasFimm);
  // Copies are single-source register moves with matching classes.
  if (info.kind == OpKind::Copy) {
    EXPECT_TRUE(info.hasDef);
    EXPECT_EQ(info.numSrcs, 1);
    EXPECT_EQ(info.defCls, info.srcCls[0]);
  }
  // Loads define a value from an integer index; stores define nothing.
  if (info.kind == OpKind::Load) {
    EXPECT_TRUE(info.hasDef);
    EXPECT_EQ(info.numSrcs, 1);
    EXPECT_EQ(info.srcCls[0], RegClass::Int);
  }
  if (info.kind == OpKind::Store) {
    EXPECT_FALSE(info.hasDef);
    EXPECT_EQ(info.numSrcs, 2);
    EXPECT_EQ(info.srcCls[0], RegClass::Int);
  }
  if (info.kind == OpKind::Const) {
    EXPECT_TRUE(info.hasDef);
    EXPECT_EQ(info.numSrcs, 0);
    EXPECT_TRUE(info.hasImm || info.hasFimm);
  }
}

TEST_P(EveryOpcode, LatencyClassMatchesKind) {
  const Opcode op = GetParam();
  const OpcodeInfo& info = opcodeInfo(op);
  if (info.kind == OpKind::Load) EXPECT_EQ(info.lat, LatClass::Load);
  if (info.kind == OpKind::Store) EXPECT_EQ(info.lat, LatClass::Store);
  if (info.kind == OpKind::Copy) {
    EXPECT_TRUE(info.lat == LatClass::IntCopy || info.lat == LatClass::FltCopy);
  }
}

INSTANTIATE_TEST_SUITE_P(All, EveryOpcode, ::testing::ValuesIn(allOpcodes()));

TEST(Opcode, NamesAreUnique) {
  std::set<std::string> names;
  for (Opcode op : allOpcodes()) names.insert(std::string(opcodeName(op)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumOpcodes));
}

TEST(Opcode, UnknownNameFails) {
  EXPECT_EQ(opcodeFromName("bogus"), Opcode::kCount_);
  EXPECT_EQ(opcodeFromName(""), Opcode::kCount_);
}

TEST(Opcode, Predicates) {
  EXPECT_TRUE(isLoad(Opcode::FLoad));
  EXPECT_TRUE(isStore(Opcode::IStore));
  EXPECT_TRUE(isMemory(Opcode::ILoad));
  EXPECT_TRUE(isMemory(Opcode::FStore));
  EXPECT_FALSE(isMemory(Opcode::FAdd));
  EXPECT_TRUE(isCopy(Opcode::ICopy));
  EXPECT_TRUE(isCopy(Opcode::FCopy));
  EXPECT_FALSE(isCopy(Opcode::IMov));  // IMov is a plain ALU move, not a bank copy
}

TEST(Opcode, SpecificSignatures) {
  const OpcodeInfo& fstore = opcodeInfo(Opcode::FStore);
  EXPECT_EQ(fstore.srcCls[1], RegClass::Flt);
  const OpcodeInfo& itof = opcodeInfo(Opcode::IToF);
  EXPECT_EQ(itof.defCls, RegClass::Flt);
  EXPECT_EQ(itof.srcCls[0], RegClass::Int);
  const OpcodeInfo& ftoi = opcodeInfo(Opcode::FToI);
  EXPECT_EQ(ftoi.defCls, RegClass::Int);
  EXPECT_EQ(ftoi.srcCls[0], RegClass::Flt);
}

}  // namespace
}  // namespace rapt
