#include "ir/Parser.h"

#include <gtest/gtest.h>

#include "ir/Printer.h"
#include "workload/Kernels.h"

namespace rapt {
namespace {

TEST(Parser, ParsesDaxpy) {
  const Loop loop = parseLoop(R"(
    loop daxpy depth 2 trip 100 {
      array x[128] flt
      array y[128] flt
      induction i0
      livein f0 = 2.5
      f1 = fload x[i0]
      f2 = fmul f1, f0
      f3 = fload y[i0]
      f4 = fadd f2, f3
      fstore y[i0], f4
    }
  )");
  EXPECT_EQ(loop.name, "daxpy");
  EXPECT_EQ(loop.nestingDepth, 2);
  EXPECT_EQ(loop.trip, 100);
  EXPECT_EQ(loop.arrays.size(), 2u);
  EXPECT_EQ(loop.induction, intReg(0));
  ASSERT_EQ(loop.liveInValues.size(), 1u);
  EXPECT_DOUBLE_EQ(loop.liveInValues[0].f, 2.5);
  // 5 written ops + the auto-appended induction update.
  EXPECT_EQ(loop.size(), 6);
  EXPECT_EQ(loop.body.back().op, Opcode::IAddImm);
}

TEST(Parser, ExplicitInductionUpdateNotDuplicated) {
  const Loop loop = parseLoop(R"(
    loop l trip 8 {
      induction i0
      i1 = imov i0
      i0 = iaddi i0, 1
    }
  )");
  EXPECT_EQ(loop.size(), 2);
}

TEST(Parser, MemoryOffsets) {
  const Loop loop = parseLoop(R"(
    loop l {
      array x[16] flt
      induction i0
      f1 = fload x[i0 + 3]
      f2 = fload x[i0 - 2]
      fstore x[i0], f1
    }
  )");
  EXPECT_EQ(loop.body[0].imm, 3);
  EXPECT_EQ(loop.body[1].imm, -2);
  EXPECT_EQ(loop.body[2].imm, 0);
}

TEST(Parser, CommentsAndDefaults) {
  const Loop loop = parseLoop(R"(
    # leading comment
    loop l {   # trailing comment
      f1 = fconst 1.5   # another
    }
  )");
  EXPECT_EQ(loop.nestingDepth, 1);
  EXPECT_EQ(loop.body[0].op, Opcode::FConst);
  EXPECT_DOUBLE_EQ(loop.body[0].fimm, 1.5);
}

TEST(Parser, IntImmediateForms) {
  const Loop loop = parseLoop(R"(
    loop l {
      i1 = iconst -7
      i2 = iaddi i1, 5
      i3 = ishl i1, i2
    }
  )");
  EXPECT_EQ(loop.body[0].imm, -7);
  EXPECT_EQ(loop.body[1].imm, 5);
  EXPECT_EQ(loop.body[2].op, Opcode::IShl);
}

TEST(Parser, MultipleLoops) {
  const auto loops = parseLoops(R"(
    loop a { i1 = iconst 1 }
    loop b { f1 = fconst 2.0 }
  )");
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_EQ(loops[0].name, "a");
  EXPECT_EQ(loops[1].name, "b");
}

TEST(Parser, LiveinWithoutInitializer) {
  const Loop loop = parseLoop("loop l { livein f3\n f4 = fmov f3 }");
  ASSERT_EQ(loop.liveInValues.size(), 1u);
  EXPECT_DOUBLE_EQ(loop.liveInValues[0].f, 0.0);
}

// ---- Round-trip: print -> parse -> print is a fixpoint. ----

class KernelRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(KernelRoundTrip, PrintParsePrintIsStable) {
  const std::vector<Loop> kernels = classicKernels();
  ASSERT_LT(GetParam(), static_cast<int>(kernels.size()));
  const Loop& original = kernels[GetParam()];
  const std::string text = printLoop(original);
  const Loop reparsed = parseLoop(text);
  EXPECT_EQ(printLoop(reparsed), text) << "kernel " << original.name;
  EXPECT_EQ(reparsed.size(), original.size());
  EXPECT_EQ(reparsed.nestingDepth, original.nestingDepth);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelRoundTrip, ::testing::Range(0, 10));

// ---- Error cases carry line numbers and useful messages. ----

struct BadInput {
  const char* text;
  const char* expectInMessage;
};

class ParserErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(ParserErrors, Throws) {
  try {
    (void)parseLoop(GetParam().text);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(GetParam().expectInMessage),
              std::string::npos)
        << "actual: " << e.what();
    EXPECT_GE(e.line(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrors,
    ::testing::Values(
        BadInput{"bogus", "expected 'loop'"},
        BadInput{"loop l { q1 = iconst 1 }", "destination register"},
        BadInput{"loop l { i1 = nosuchop i2 }", "unknown opcode"},
        BadInput{"loop l { i1 = iconst }", "expected integer"},
        BadInput{"loop l { fstore x[i0], f1 }", "unknown array"},
        BadInput{"loop l { array x[4] bad }", "element type"},
        BadInput{"loop l { array i0[4] flt }", "collides with register"},
        BadInput{"loop l { induction f1 }", "must be an integer"},
        BadInput{"loop l { i1 = iadd i2 }", "expected ','"},
        BadInput{"loop l { istore }", "expected array name"},
        BadInput{"loop l { i1 = iconst 1 ", "expected"},
        BadInput{"loop l { i1 = fload }", "expected array name"},
        BadInput{"loop l depth x { }", "expected integer"},
        BadInput{"loop l { f1 = fadd f1, f1 }\nloop l2 { f1 = fadd f1, f1 }\njunk",
                 "expected 'loop'"}));

TEST(Parser, DefinitionClassMismatchFailsValidation) {
  // `i1 = fadd ...` parses the opcode but validation rejects the class.
  EXPECT_THROW((void)parseLoop("loop l { i1 = fadd f1, f2 }"), ParseError);
}

TEST(Parser, ParseLoopRejectsMultiple) {
  EXPECT_THROW((void)parseLoop("loop a { i1 = iconst 1 }\nloop b { i1 = iconst 1 }"),
               ParseError);
}

}  // namespace
}  // namespace rapt
