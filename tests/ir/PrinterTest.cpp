#include "ir/Printer.h"

#include <gtest/gtest.h>

#include "ir/Parser.h"

namespace rapt {
namespace {

TEST(Printer, RegNames) {
  EXPECT_EQ(regName(intReg(0)), "i0");
  EXPECT_EQ(regName(fltReg(17)), "f17");
  EXPECT_EQ(regName(VirtReg{}), "-");
}

struct OpPrintCase {
  const char* line;  // as written in loop text (and as printed back)
};

class OperationPrinting : public ::testing::TestWithParam<OpPrintCase> {};

TEST_P(OperationPrinting, RoundTripsThroughText) {
  const std::string text = std::string("loop l {\n  array x[8] flt\n  array n[8] int\n  ") +
                           GetParam().line + "\n}";
  const Loop loop = parseLoop(text);
  ASSERT_EQ(loop.size(), 1);
  EXPECT_EQ(printOperation(loop, loop.body[0]), GetParam().line);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, OperationPrinting,
    ::testing::Values(OpPrintCase{"i1 = iconst -42"},
                      OpPrintCase{"f1 = fconst 2.5"},
                      OpPrintCase{"i2 = imov i1"},
                      OpPrintCase{"f2 = fmov f1"},
                      OpPrintCase{"i3 = iadd i1, i2"},
                      OpPrintCase{"i3 = isub i1, i2"},
                      OpPrintCase{"i3 = imul i1, i2"},
                      OpPrintCase{"i3 = idiv i1, i2"},
                      OpPrintCase{"i3 = iand i1, i2"},
                      OpPrintCase{"i3 = ior i1, i2"},
                      OpPrintCase{"i3 = ixor i1, i2"},
                      OpPrintCase{"i3 = ishl i1, i2"},
                      OpPrintCase{"i3 = ishr i1, i2"},
                      OpPrintCase{"i3 = iaddi i1, -5"},
                      OpPrintCase{"f3 = itof i1"},
                      OpPrintCase{"i4 = ftoi f1"},
                      OpPrintCase{"f4 = fadd f1, f2"},
                      OpPrintCase{"f4 = fsub f1, f2"},
                      OpPrintCase{"f4 = fmul f1, f2"},
                      OpPrintCase{"f4 = fdiv f1, f2"},
                      OpPrintCase{"i5 = icpy i1"},
                      OpPrintCase{"f5 = fcpy f1"},
                      OpPrintCase{"f6 = fload x[i1]"},
                      OpPrintCase{"f6 = fload x[i1 + 3]"},
                      OpPrintCase{"f6 = fload x[i1 - 2]"},
                      OpPrintCase{"i6 = iload n[i1]"},
                      OpPrintCase{"fstore x[i1 + 1], f2"},
                      OpPrintCase{"istore n[i1], i2"}));

TEST(Printer, LoopHeaderFields) {
  Loop loop = parseLoop("loop alpha depth 3 trip 99 { f1 = fconst 1.0 }");
  const std::string out = printLoop(loop);
  EXPECT_NE(out.find("loop alpha depth 3 trip 99 {"), std::string::npos);
}

TEST(Printer, LiveInsAndInduction) {
  const Loop loop = parseLoop(R"(
    loop l { array x[8] flt
      induction i0
      livein f0 = 2.5
      livein i1 = -3
      f1 = fload x[i0]
    })");
  const std::string out = printLoop(loop);
  EXPECT_NE(out.find("induction i0"), std::string::npos);
  EXPECT_NE(out.find("livein f0 = 2.5"), std::string::npos);
  EXPECT_NE(out.find("livein i1 = -3"), std::string::npos);
}

}  // namespace
}  // namespace rapt
