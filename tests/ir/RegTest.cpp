#include "ir/Reg.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace rapt {
namespace {

TEST(Reg, DefaultIsInvalid) {
  VirtReg r;
  EXPECT_FALSE(r.isValid());
}

TEST(Reg, ConstructedIsValid) {
  EXPECT_TRUE(intReg(0).isValid());
  EXPECT_TRUE(fltReg(12345).isValid());
}

TEST(Reg, ClassAndIndexRoundTrip) {
  const VirtReg a = intReg(7);
  EXPECT_EQ(a.cls(), RegClass::Int);
  EXPECT_EQ(a.index(), 7u);
  const VirtReg b = fltReg(0);
  EXPECT_EQ(b.cls(), RegClass::Flt);
  EXPECT_EQ(b.index(), 0u);
}

TEST(Reg, SameIndexDifferentClassDiffer) {
  EXPECT_NE(intReg(3), fltReg(3));
}

class RegKeyRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RegKeyRoundTrip, KeyIsBijective) {
  const std::uint32_t idx = GetParam();
  for (RegClass rc : {RegClass::Int, RegClass::Flt}) {
    const VirtReg r(rc, idx);
    EXPECT_EQ(VirtReg::fromKey(r.key()), r);
  }
}

INSTANTIATE_TEST_SUITE_P(Indices, RegKeyRoundTrip,
                         ::testing::Values(0u, 1u, 2u, 63u, 1000u, 99999u));

TEST(Reg, KeysAreDense) {
  EXPECT_EQ(intReg(0).key(), 0u);
  EXPECT_EQ(fltReg(0).key(), 1u);
  EXPECT_EQ(intReg(1).key(), 2u);
  EXPECT_EQ(fltReg(1).key(), 3u);
}

TEST(Reg, Hashable) {
  std::unordered_set<VirtReg> set;
  set.insert(intReg(1));
  set.insert(fltReg(1));
  set.insert(intReg(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Reg, OrderingIsTotal) {
  EXPECT_LT(intReg(1), intReg(2));
  // Ordering is stable even across classes (exact order unspecified but total).
  EXPECT_TRUE(intReg(5) < fltReg(5) || fltReg(5) < intReg(5));
}

TEST(Reg, HelpersMatch) {
  EXPECT_TRUE(intReg(0).isInt());
  EXPECT_FALSE(intReg(0).isFlt());
  EXPECT_TRUE(fltReg(0).isFlt());
}

TEST(RegClassName, Names) {
  EXPECT_STREQ(regClassName(RegClass::Int), "int");
  EXPECT_STREQ(regClassName(RegClass::Flt), "flt");
}

}  // namespace
}  // namespace rapt
