#include "machine/MachineDesc.h"

#include <gtest/gtest.h>

#include "pipeline/CompilerPipeline.h"

namespace rapt {
namespace {

TEST(LatencyTable, PaperSection61Values) {
  const LatencyTable lat;  // defaults are the paper's table
  EXPECT_EQ(lat.of(LatClass::IntCopy), 2);
  EXPECT_EQ(lat.of(LatClass::FltCopy), 3);
  EXPECT_EQ(lat.of(LatClass::Load), 2);
  EXPECT_EQ(lat.of(LatClass::IntMul), 5);
  EXPECT_EQ(lat.of(LatClass::IntDiv), 12);
  EXPECT_EQ(lat.of(LatClass::IntAlu), 1);
  EXPECT_EQ(lat.of(LatClass::FltMul), 2);
  EXPECT_EQ(lat.of(LatClass::FltDiv), 2);
  EXPECT_EQ(lat.of(LatClass::FltOther), 2);
  EXPECT_EQ(lat.of(LatClass::Store), 4);
}

TEST(LatencyTable, OpcodeDispatch) {
  const LatencyTable lat;
  EXPECT_EQ(lat.of(Opcode::IMul), 5);
  EXPECT_EQ(lat.of(Opcode::FLoad), 2);
  EXPECT_EQ(lat.of(Opcode::ICopy), 2);
  EXPECT_EQ(lat.of(Opcode::FCopy), 3);
  EXPECT_EQ(lat.of(Opcode::IConst), 1);
}

TEST(LatencyTable, UnitIsAllOnes) {
  const LatencyTable u = LatencyTable::unit();
  for (LatClass c : {LatClass::IntAlu, LatClass::IntMul, LatClass::IntDiv,
                     LatClass::Load, LatClass::Store, LatClass::FltOther,
                     LatClass::FltMul, LatClass::FltDiv, LatClass::IntCopy,
                     LatClass::FltCopy}) {
    EXPECT_EQ(u.of(c), 1);
  }
}

class PaperPreset : public ::testing::TestWithParam<std::tuple<int, CopyModel>> {};

TEST_P(PaperPreset, SixteenWideInvariants) {
  const auto [clusters, model] = GetParam();
  const MachineDesc m = MachineDesc::paper16(clusters, model);
  EXPECT_EQ(m.width(), 16);
  EXPECT_EQ(m.numClusters, clusters);
  EXPECT_EQ(m.fusPerCluster, 16 / clusters);
  EXPECT_EQ(m.intRegsPerBank, 32);
  if (model == CopyModel::CopyUnit) {
    EXPECT_EQ(m.busCount, clusters);  // N buses for N clusters
    EXPECT_FALSE(m.copiesUseFuSlots());
  } else {
    EXPECT_EQ(m.busCount, 0);
    EXPECT_TRUE(m.copiesUseFuSlots());
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, PaperPreset,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(CopyModel::Embedded, CopyModel::CopyUnit)));

TEST(MachineDesc, CopyPortReconstruction) {
  // 1 port at 2 clusters and 3 at 8 are stated in the paper's prose; 2 at 4
  // is our log2 interpolation (DESIGN.md).
  EXPECT_EQ(MachineDesc::paper16(2, CopyModel::CopyUnit).copyPortsPerBank, 1);
  EXPECT_EQ(MachineDesc::paper16(4, CopyModel::CopyUnit).copyPortsPerBank, 2);
  EXPECT_EQ(MachineDesc::paper16(8, CopyModel::CopyUnit).copyPortsPerBank, 3);
}

TEST(MachineDesc, ClusterOfFu) {
  const MachineDesc m = MachineDesc::paper16(4, CopyModel::Embedded);
  EXPECT_EQ(m.clusterOfFu(0), 0);
  EXPECT_EQ(m.clusterOfFu(3), 0);
  EXPECT_EQ(m.clusterOfFu(4), 1);
  EXPECT_EQ(m.clusterOfFu(15), 3);
  EXPECT_EQ(m.firstFuOfCluster(2), 8);
}

TEST(MachineDesc, Ideal16IsMonolithic) {
  const MachineDesc m = MachineDesc::ideal16();
  EXPECT_TRUE(m.isMonolithic());
  EXPECT_EQ(m.width(), 16);
}

TEST(MachineDesc, Example2x1MatchesSection42) {
  const MachineDesc m = MachineDesc::example2x1();
  EXPECT_EQ(m.numClusters, 2);
  EXPECT_EQ(m.fusPerCluster, 1);
  EXPECT_EQ(m.lat.fltMul, 1);  // unit latency
  EXPECT_EQ(m.lat.intCopy, 1);
  EXPECT_TRUE(m.copiesUseFuSlots());
}

TEST(MachineDesc, RegsPerBankByClass) {
  MachineDesc m = MachineDesc::paper16(2, CopyModel::Embedded);
  m.intRegsPerBank = 10;
  m.fltRegsPerBank = 20;
  EXPECT_EQ(m.regsPerBank(RegClass::Int), 10);
  EXPECT_EQ(m.regsPerBank(RegClass::Flt), 20);
}

TEST(CopyModelName, Names) {
  EXPECT_STREQ(copyModelName(CopyModel::Embedded), "Embedded");
  EXPECT_STREQ(copyModelName(CopyModel::CopyUnit), "Copy Unit");
}

TEST(PartitionerName, AllNamed) {
  for (PartitionerKind k :
       {PartitionerKind::GreedyRcg, PartitionerKind::RoundRobin,
        PartitionerKind::Random, PartitionerKind::BugLike, PartitionerKind::UasLike}) {
    EXPECT_NE(partitionerName(k), nullptr);
    EXPECT_GT(std::string(partitionerName(k)).size(), 2u);
  }
}

}  // namespace
}  // namespace rapt
