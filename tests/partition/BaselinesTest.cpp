#include "partition/Baselines.h"

#include <gtest/gtest.h>

#include "pipeline/CompilerPipeline.h"
#include "sched/ModuloScheduler.h"
#include "workload/Kernels.h"
#include "workload/LoopGenerator.h"

namespace rapt {
namespace {

TEST(RoundRobin, SpreadsEvenly) {
  const Loop loop = classicKernel("cmul");
  const Partition p = roundRobinPartition(loop, 4);
  const int total = static_cast<int>(loop.allRegs().size());
  for (int b = 0; b < 4; ++b) {
    EXPECT_GE(p.countInBank(b), total / 4 - 1);
    EXPECT_LE(p.countInBank(b), total / 4 + 1);
  }
}

TEST(RoundRobin, CoversAllRegs) {
  const Loop loop = generateLoop(GeneratorParams{}, 1);
  const Partition p = roundRobinPartition(loop, 8);
  for (VirtReg r : loop.allRegs()) EXPECT_TRUE(p.isAssigned(r));
}

TEST(Random, DeterministicPerSeed) {
  const Loop loop = classicKernel("fir4");
  SplitMix64 rng1(99), rng2(99);
  const Partition a = randomPartition(loop, 4, rng1);
  const Partition b = randomPartition(loop, 4, rng2);
  for (VirtReg r : loop.allRegs()) EXPECT_EQ(a.bankOf(r), b.bankOf(r));
}

TEST(Random, BanksWithinRange) {
  const Loop loop = generateLoop(GeneratorParams{}, 2);
  SplitMix64 rng(7);
  const Partition p = randomPartition(loop, 2, rng);
  for (VirtReg r : loop.allRegs()) {
    EXPECT_GE(p.bankOf(r), 0);
    EXPECT_LT(p.bankOf(r), 2);
  }
}

TEST(BugLike, CoversAllRegsIncludingInvariants) {
  const Loop loop = classicKernel("daxpy");  // f0 is an invariant
  const MachineDesc m = MachineDesc::ideal16();
  const Ddg ddg = Ddg::build(loop, m.lat);
  const std::vector<OpConstraint> free(loop.body.size());
  const auto ideal = moduloSchedule(ddg, m, free);
  ASSERT_TRUE(ideal.success);
  const Partition p = bugPartition(loop, ddg, ideal.schedule, 4);
  for (VirtReg r : loop.allRegs()) EXPECT_TRUE(p.isAssigned(r));
}

TEST(BugLike, KeepsTightChainsTogether) {
  // A single serial chain should not be scattered: BUG's bottom-up operand
  // affinity keeps at least some adjacency.
  const Loop loop = classicKernel("tridiag");
  const MachineDesc m = MachineDesc::ideal16();
  const Ddg ddg = Ddg::build(loop, m.lat);
  const std::vector<OpConstraint> free(loop.body.size());
  const auto ideal = moduloSchedule(ddg, m, free);
  ASSERT_TRUE(ideal.success);
  const Partition p = bugPartition(loop, ddg, ideal.schedule, 4);
  // f3 = fsub f1,f2 and f5 = fmul f4,f3 form a chain: operand affinity puts
  // f5 where f3 lives.
  EXPECT_EQ(p.bankOf(fltReg(5)), p.bankOf(fltReg(3)));
}

TEST(UasLike, CoversAllRegs) {
  const Loop loop = generateLoop(GeneratorParams{}, 4);
  const MachineDesc m = MachineDesc::paper16(4, CopyModel::Embedded);
  const Ddg ddg = Ddg::build(loop, m.lat);
  const Partition p = uasPartition(loop, ddg, m, 4);
  for (VirtReg r : loop.allRegs()) {
    EXPECT_TRUE(p.isAssigned(r));
    EXPECT_GE(p.bankOf(r), 0);
    EXPECT_LT(p.bankOf(r), 4);
  }
}

TEST(UasLike, SingleBankIsTrivial) {
  const Loop loop = classicKernel("daxpy");
  const MachineDesc m = MachineDesc::paper16(2, CopyModel::Embedded);
  const Ddg ddg = Ddg::build(loop, m.lat);
  const Partition p = uasPartition(loop, ddg, m, 1);
  for (VirtReg r : loop.allRegs()) EXPECT_EQ(p.bankOf(r), 0);
}

TEST(UasLike, KeepsChainsLocalUnderLowPressure) {
  // daxpy easily fits one 8-wide cluster at II 1: schedule-time costing
  // should avoid gratuitous copies, so the float chain stays in few banks.
  const Loop loop = classicKernel("daxpy");
  const MachineDesc m = MachineDesc::paper16(2, CopyModel::Embedded);
  const Ddg ddg = Ddg::build(loop, m.lat);
  const Partition p = uasPartition(loop, ddg, m, 2);
  // f1 (load) and f2 (fmul of f1) share a bank: the consumer was placed
  // where its operand lives.
  EXPECT_EQ(p.bankOf(fltReg(2)), p.bankOf(fltReg(1)));
}

TEST(UasLike, DeterministicAndValidThroughPipeline) {
  const MachineDesc m = MachineDesc::paper16(4, CopyModel::Embedded);
  for (int idx : {2, 9, 23}) {
    const Loop loop = generateLoop(GeneratorParams{}, idx);
    PipelineOptions opt;
    opt.partitioner = PartitionerKind::UasLike;
    const LoopResult a = compileLoop(loop, m, opt);
    const LoopResult b = compileLoop(loop, m, opt);
    ASSERT_TRUE(a.ok) << a.error;
    EXPECT_TRUE(a.validated);
    EXPECT_EQ(a.clusteredII, b.clusteredII);
    EXPECT_EQ(a.bodyCopies, b.bodyCopies);
  }
}

}  // namespace
}  // namespace rapt
