#include "partition/CopyInserter.h"

#include <gtest/gtest.h>

#include "ir/Parser.h"
#include "ir/Printer.h"

namespace rapt {
namespace {

Partition allInBank(const Loop& loop, int bank, int numBanks) {
  Partition p(numBanks);
  for (VirtReg r : loop.allRegs()) p.assign(r, bank);
  return p;
}

TEST(CopyInserter, NoCopiesWhenEverythingShares) {
  const Loop loop = parseLoop(R"(
    loop l { array x[8] flt
      induction i0
      f1 = fload x[i0]
      f2 = fmul f1, f1
      fstore x[i0], f2
    })");
  const MachineDesc m = MachineDesc::paper16(2, CopyModel::Embedded);
  const ClusteredLoop out = insertCopies(loop, allInBank(loop, 1, 2), m);
  EXPECT_EQ(out.bodyCopies, 0);
  EXPECT_EQ(out.preheaderCopies, 0);
  EXPECT_EQ(out.loop.size(), loop.size());
  for (const OpConstraint& c : out.constraints) EXPECT_EQ(c.cluster, 1);
}

TEST(CopyInserter, CrossBankOperandGetsOneCopy) {
  const Loop loop = parseLoop(R"(
    loop l { array x[8] flt
      induction i0
      f1 = fload x[i0]
      f2 = fmul f1, f1
      f3 = fadd f1, f1
    })");
  const MachineDesc m = MachineDesc::paper16(2, CopyModel::Embedded);
  Partition p(2);
  p.assign(intReg(0), 0);
  p.assign(fltReg(1), 0);
  p.assign(fltReg(2), 1);  // consumer in the other bank
  p.assign(fltReg(3), 1);  // second consumer of f1, same bank
  const ClusteredLoop out = insertCopies(loop, p, m);
  // One copy of f1 into bank 1 serves both fmul and fadd.
  EXPECT_EQ(out.bodyCopies, 1);
  // The copy op is an FCopy anchored (embedded) on the destination cluster.
  int copies = 0;
  for (int i = 0; i < out.loop.size(); ++i) {
    if (isCopy(out.loop.body[i].op)) {
      ++copies;
      EXPECT_EQ(out.origIndexOf[i], -1);
      EXPECT_EQ(out.constraints[i].cluster, 1);
      EXPECT_FALSE(out.constraints[i].usesCopyUnit);
      EXPECT_EQ(out.partition.bankOf(out.loop.body[i].def), 1);
    }
  }
  EXPECT_EQ(copies, 1);
  EXPECT_FALSE(validate(out.loop).has_value());
}

TEST(CopyInserter, CarriedAndCurrentUsesGetSeparateCopies) {
  // f1's value is used both before its definition (previous iteration) and
  // after it (current iteration) by ops in another bank: the two uses read
  // DIFFERENT values and must not share a copy.
  const Loop loop = parseLoop(R"(
    loop l {
      livein f0 = 1.0
      f2 = fmul f1, f0
      f1 = fadd f0, f0
      f3 = fsub f1, f0
    })");
  const MachineDesc m = MachineDesc::paper16(2, CopyModel::Embedded);
  Partition p(2);
  p.assign(fltReg(0), 1);
  p.assign(fltReg(1), 0);  // f1 lives in bank 0
  p.assign(fltReg(2), 1);  // consumers live in bank 1
  p.assign(fltReg(3), 1);
  const ClusteredLoop out = insertCopies(loop, p, m);
  EXPECT_EQ(out.bodyCopies, 2);
  EXPECT_FALSE(validate(out.loop).has_value());
}

TEST(CopyInserter, InvariantBecomesPreheaderAlias) {
  const Loop loop = parseLoop(R"(
    loop l {
      livein f0 = 2.5
      f1 = fmul f0, f0
      f2 = fadd f0, f0
    })");
  const MachineDesc m = MachineDesc::paper16(2, CopyModel::Embedded);
  Partition p(2);
  p.assign(fltReg(0), 0);
  p.assign(fltReg(1), 1);
  p.assign(fltReg(2), 1);
  const ClusteredLoop out = insertCopies(loop, p, m);
  EXPECT_EQ(out.bodyCopies, 0);        // no per-iteration copies
  EXPECT_EQ(out.preheaderCopies, 1);   // one alias, reused by both consumers
  EXPECT_EQ(out.loop.size(), loop.size());
  // The alias is a live-in of the new loop with the same initial value.
  bool found = false;
  for (const LiveInValue& lv : out.loop.liveInValues) {
    if (lv.reg != fltReg(0) && lv.reg.cls() == RegClass::Flt && lv.f == 2.5) {
      found = true;
      EXPECT_EQ(out.partition.bankOf(lv.reg), 1);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CopyInserter, StoreAnchorsWhereValueLives) {
  const Loop loop = parseLoop(R"(
    loop l { array x[8] flt
      induction i0
      f1 = fload x[i0]
      fstore x[i0], f1
    })");
  const MachineDesc m = MachineDesc::paper16(2, CopyModel::Embedded);
  Partition p(2);
  p.assign(intReg(0), 0);
  p.assign(fltReg(1), 1);
  const ClusteredLoop out = insertCopies(loop, p, m);
  // The store anchors at bank 1 (value) and copies the index (int, cheap)
  // OR anchors at bank 0 and copies the value; either way exactly one copy.
  EXPECT_EQ(out.bodyCopies, 1);
  // Our policy prefers the value's bank when costs tie.
  for (int i = 0; i < out.loop.size(); ++i) {
    if (isStore(out.loop.body[i].op)) EXPECT_EQ(out.constraints[i].cluster, 1);
    if (isCopy(out.loop.body[i].op))
      EXPECT_EQ(out.loop.body[i].op, Opcode::ICopy);  // the index was copied
  }
}

TEST(CopyInserter, CopyUnitModelProducesBusConstraints) {
  const Loop loop = parseLoop(R"(
    loop l {
      livein f0 = 1.0
      f1 = fadd f0, f0
      f2 = fmul f1, f1
    })");
  const MachineDesc m = MachineDesc::paper16(2, CopyModel::CopyUnit);
  Partition p(2);
  p.assign(fltReg(0), 0);
  p.assign(fltReg(1), 0);
  p.assign(fltReg(2), 1);
  const ClusteredLoop out = insertCopies(loop, p, m);
  EXPECT_EQ(out.bodyCopies, 1);
  bool sawCopy = false;
  for (int i = 0; i < out.loop.size(); ++i) {
    if (!isCopy(out.loop.body[i].op)) continue;
    sawCopy = true;
    EXPECT_TRUE(out.constraints[i].usesCopyUnit);
    EXPECT_EQ(out.constraints[i].srcBank, 0);
    EXPECT_EQ(out.constraints[i].dstBank, 1);
  }
  EXPECT_TRUE(sawCopy);
}

TEST(CopyInserter, InductionCopiedForRemoteAddressing) {
  const Loop loop = parseLoop(R"(
    loop l { array x[8] flt
      array y[8] flt
      induction i0
      f1 = fload x[i0]
      f2 = fload y[i0]
    })");
  const MachineDesc m = MachineDesc::paper16(2, CopyModel::Embedded);
  Partition p(2);
  p.assign(intReg(0), 0);
  p.assign(fltReg(1), 0);
  p.assign(fltReg(2), 1);  // second load anchored in bank 1, needs i0 there
  const ClusteredLoop out = insertCopies(loop, p, m);
  EXPECT_EQ(out.bodyCopies, 1);
  EXPECT_FALSE(validate(out.loop).has_value());
  // Affine analysis still sees through the copy: the new DDG must carry no
  // conservative memory edges (distinct arrays anyway), and the loop stays
  // canonical.
}

TEST(CopyInserter, OrigIndexMapIsConsistent) {
  const Loop loop = parseLoop(R"(
    loop l {
      livein f0 = 1.0
      f1 = fadd f0, f0
      f2 = fmul f1, f1
    })");
  const MachineDesc m = MachineDesc::paper16(4, CopyModel::Embedded);
  Partition p(4);
  p.assign(fltReg(0), 0);
  p.assign(fltReg(1), 1);
  p.assign(fltReg(2), 2);
  const ClusteredLoop out = insertCopies(loop, p, m);
  ASSERT_EQ(out.origIndexOf.size(), static_cast<std::size_t>(out.loop.size()));
  int orig = 0;
  for (int i = 0; i < out.loop.size(); ++i) {
    if (out.origIndexOf[i] >= 0) {
      EXPECT_EQ(out.origIndexOf[i], orig);
      EXPECT_EQ(out.loop.body[i].op, loop.body[orig].op);
      ++orig;
    }
  }
  EXPECT_EQ(orig, loop.size());
}

}  // namespace
}  // namespace rapt
