#include "partition/GreedyPartitioner.h"

#include <gtest/gtest.h>

#include "ir/Parser.h"
#include "sched/ModuloScheduler.h"
#include "workload/Kernels.h"
#include "workload/LoopGenerator.h"

namespace rapt {
namespace {

Rcg rcgFor(const Loop& loop, const RcgWeights& w = {}) {
  const MachineDesc m = MachineDesc::ideal16();
  const Ddg ddg = Ddg::build(loop, m.lat);
  const std::vector<OpConstraint> free(loop.body.size());
  const auto res = moduloSchedule(ddg, m, free);
  EXPECT_TRUE(res.success);
  return Rcg::build(loop, ddg, res.schedule, w);
}

TEST(GreedyPartitioner, SingleBankTakesEverything) {
  const Loop loop = classicKernel("daxpy");
  const Rcg rcg = rcgFor(loop);
  const Partition p = greedyPartition(rcg, 1, RcgWeights{});
  for (VirtReg r : loop.allRegs()) EXPECT_EQ(p.bankOf(r), 0);
}

TEST(GreedyPartitioner, CoversEveryNode) {
  const Loop loop = classicKernel("cmul");
  const Rcg rcg = rcgFor(loop);
  const Partition p = greedyPartition(rcg, 4, RcgWeights{});
  EXPECT_EQ(p.size(), rcg.nodes().size());
  for (VirtReg r : loop.allRegs()) {
    EXPECT_TRUE(p.isAssigned(r));
    EXPECT_GE(p.bankOf(r), 0);
    EXPECT_LT(p.bankOf(r), 4);
  }
}

TEST(GreedyPartitioner, Deterministic) {
  const Loop loop = generateLoop(GeneratorParams{}, 3);
  const Rcg rcg = rcgFor(loop);
  const Partition a = greedyPartition(rcg, 4, RcgWeights{});
  const Partition b = greedyPartition(rcg, 4, RcgWeights{});
  for (VirtReg r : loop.allRegs()) EXPECT_EQ(a.bankOf(r), b.bankOf(r));
}

TEST(GreedyPartitioner, PinsAreRespected) {
  const Loop loop = classicKernel("daxpy");
  const Rcg rcg = rcgFor(loop);
  BankPins pins;
  pins[fltReg(1).key()] = 3;
  pins[fltReg(4).key()] = 2;
  const Partition p = greedyPartition(rcg, 4, RcgWeights{}, pins);
  EXPECT_EQ(p.bankOf(fltReg(1)), 3);
  EXPECT_EQ(p.bankOf(fltReg(4)), 2);
}

TEST(GreedyPartitioner, StronglyConnectedPairStaysTogether) {
  const Loop loop = classicKernel("daxpy");
  Rcg rcg = rcgFor(loop);
  rcg.addExtraEdge(fltReg(1), fltReg(2), 1e9);
  const Partition p = greedyPartition(rcg, 4, RcgWeights{});
  EXPECT_EQ(p.bankOf(fltReg(1)), p.bankOf(fltReg(2)));
}

TEST(GreedyPartitioner, InfiniteNegativeEdgeSeparates) {
  // The paper's machine-idiosyncrasy mechanism (§4.1): a huge negative edge
  // guarantees two registers land in different banks.
  const Loop loop = classicKernel("daxpy");
  Rcg rcg = rcgFor(loop);
  rcg.addExtraEdge(fltReg(2), fltReg(4), -1e9);
  const Partition p = greedyPartition(rcg, 2, RcgWeights{});
  EXPECT_NE(p.bankOf(fltReg(2)), p.bankOf(fltReg(4)));
}

TEST(GreedyPartitioner, BalanceTermSpreadsIndependentChains) {
  // Four disconnected single-op chains on 4 banks: with balance active they
  // cannot all pile into one bank.
  const Loop loop = parseLoop(R"(
    loop l {
      livein f0 = 1.0
      livein f2 = 1.0
      livein f4 = 1.0
      livein f6 = 1.0
      f1 = fadd f0, f0
      f3 = fadd f2, f2
      f5 = fadd f4, f4
      f7 = fadd f6, f6
    })");
  const Rcg rcg = rcgFor(loop);
  const Partition p = greedyPartition(rcg, 4, RcgWeights{});
  int used = 0;
  for (int b = 0; b < 4; ++b) used += p.countInBank(b) > 0 ? 1 : 0;
  EXPECT_GE(used, 2);
}

TEST(GreedyPartitioner, ZeroBalanceClumps) {
  // With the balance term disabled, connected components gravitate to the
  // first bank that earns any positive benefit.
  const Loop loop = classicKernel("daxpy");
  const Rcg rcg = rcgFor(loop);
  RcgWeights w;
  w.balance = 0.0;
  const Partition p = greedyPartition(rcg, 4, w);
  // All float registers of the single dataflow chain share a bank.
  const int bank = p.bankOf(fltReg(1));
  EXPECT_EQ(p.bankOf(fltReg(2)), bank);
  EXPECT_EQ(p.bankOf(fltReg(3)), bank);
  EXPECT_EQ(p.bankOf(fltReg(4)), bank);
}

TEST(Partition, RegsInBankSortedAndCounts) {
  Partition p(2);
  p.assign(fltReg(3), 1);
  p.assign(intReg(0), 1);
  p.assign(fltReg(1), 0);
  EXPECT_EQ(p.countInBank(1), 2);
  EXPECT_EQ(p.countInBank(0), 1);
  const auto regs = p.regsInBank(1);
  ASSERT_EQ(regs.size(), 2u);
  EXPECT_EQ(regs[0], intReg(0));  // key order
  EXPECT_EQ(regs[1], fltReg(3));
}

}  // namespace
}  // namespace rapt
