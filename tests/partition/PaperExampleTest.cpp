// The worked example of paper §4.2: the statement
//     xpos = xpos + (xvel*t) + (xaccel*t*t/2.0)
// compiled for a machine with 2 single-FU clusters and unit latencies.
// Figure 1 shows a 7-cycle ideal schedule; Figure 3 shows a 9-cycle schedule
// after partitioning with two copies (r2 and r66 in the paper's numbering).
//
// Our assertions keep the robust parts of the claim: the ideal schedule takes
// 7 cycles on the 2-wide monolithic machine; partitioning splits the graph
// across both banks; the partitioned schedule needs copies and lands within
// a small constant of the paper's 9 cycles; and the compiled result stays
// semantically exact.
#include <gtest/gtest.h>

#include "ddg/Ddg.h"
#include "ir/Parser.h"
#include "partition/CopyInserter.h"
#include "partition/GreedyPartitioner.h"
#include "partition/Rcg.h"
#include "pipeline/CompilerPipeline.h"
#include "sched/ModuloScheduler.h"

namespace rapt {
namespace {

// Figure 2's intermediate code, transcribed. Scalars live in 1-element
// arrays; the final store targets xpos (the paper's figure says `store xvel`,
// an evident typo for the statement being compiled). Offsets are constant, so
// the loads use a pinned zero index register. Running it as a trip-1 loop
// reproduces the straight-line fragment.
Loop paperLoop() {
  return parseLoop(R"(
    loop xpos_update trip 1 {
      array xvel[1] flt
      array t[1] flt
      array xaccel[1] flt
      array xpos[1] flt
      livein i0 = 0
      f1 = fload xvel[i0]
      f2 = fload t[i0]
      f3 = fload xaccel[i0]
      f4 = fload xpos[i0]
      f5 = fmul f1, f2
      f6 = fadd f4, f5
      f7 = fmul f3, f2
      f8 = fconst 2.0
      f9 = fdiv f2, f8
      f10 = fmul f7, f9
      f11 = fadd f6, f10
      fstore xpos[i0], f11
    })");
}

TEST(PaperExample, IdealScheduleTakesSevenCycles) {
  const Loop loop = paperLoop();
  MachineDesc mono = MachineDesc::example2x1();
  mono.numClusters = 1;
  mono.fusPerCluster = 2;  // same width, one bank
  const Ddg ddg = Ddg::build(loop, mono.lat);
  const std::vector<OpConstraint> free(loop.body.size());
  const auto res = moduloSchedule(ddg, mono, free);
  ASSERT_TRUE(res.success);
  // 12 ops on 2 units: ResII 6; the flat schedule length is the paper's
  // "cycles to complete" for one pass. Figure 1 achieves 7.
  // (The paper's code has 11 ops; ours adds fconst for the literal 2.0.)
  EXPECT_LE(res.schedule.horizon() + 1, 8);
  EXPECT_GE(res.schedule.horizon() + 1, 7);
}

TEST(PaperExample, PartitioningSplitsAcrossBothBanks) {
  const Loop loop = paperLoop();
  const MachineDesc m = MachineDesc::example2x1();
  const Ddg ddg = Ddg::build(loop, m.lat);
  const std::vector<OpConstraint> free(loop.body.size());
  const auto ideal = moduloSchedule(ddg, idealCounterpart(m), free);
  ASSERT_TRUE(ideal.success);
  const Rcg rcg = Rcg::build(loop, ddg, ideal.schedule, RcgWeights{});
  const Partition part = greedyPartition(rcg, 2, RcgWeights{});
  EXPECT_GT(part.countInBank(0), 0);
  EXPECT_GT(part.countInBank(1), 0);
}

TEST(PaperExample, PartitionedScheduleNeedsCopiesAndStaysClose) {
  const Loop loop = paperLoop();
  const MachineDesc m = MachineDesc::example2x1();
  PipelineOptions opt;
  opt.simTrip = 1;
  const LoopResult r = compileLoop(loop, m, opt);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.validated);
  EXPECT_GE(r.bodyCopies, 1);  // the paper needed two moves
  // Paper: ideal 7 cycles -> partitioned 9 (a 2-cycle stretch on the flat
  // schedule). Our metric is the repeating kernel's II, which additionally
  // carries the xpos load/store recurrence through the inserted copies, so
  // the bound is correspondingly looser: within 2x of ideal.
  EXPECT_GE(r.clusteredII, r.idealII);
  EXPECT_LE(r.clusteredII, 2 * r.idealII);
}

TEST(PaperExample, SemanticsMatchTheFormula) {
  // xpos' = xpos + xvel*t + xaccel*t*t/2 with the deterministic array fill.
  const Loop loop = paperLoop();
  const MachineDesc m = MachineDesc::example2x1();
  PipelineOptions opt;
  opt.simTrip = 1;
  const LoopResult r = compileLoop(loop, m, opt);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.validated);
}

}  // namespace
}  // namespace rapt
